// Package repro is an open-source reproduction of "Anti-Combining for
// MapReduce" (Alper Okcan and Mirek Riedewald, SIGMOD 2014): a complete
// single-process MapReduce engine plus the Anti-Combining optimization,
// which reduces mapper-to-reducer data transfer by shifting mapper work
// to the reducers — the opposite of a Combiner.
//
// This package is the public facade. Define a Job against the Hadoop-
// style Mapper/Reducer/Combiner/Partitioner contracts, enable
// Anti-Combining with one call — the Go analogue of the paper's purely
// syntactic program transformation — and Run it:
//
//	job := &repro.Job{
//	    NewMapper:     func() repro.Mapper { return myMapper{} },
//	    NewReducer:    func() repro.Reducer { return myReducer{} },
//	    Deterministic: true, // allows LazySH (§6.2)
//	}
//	job = repro.AntiCombine(job, repro.AdaptiveInf())
//	result, err := repro.Run(job, splits)
//
// The deeper layers are importable directly: repro/internal/mr (engine),
// repro/internal/anticombine (encodings, Shared structure, wrapper),
// repro/internal/codec (map-output codecs incl. from-scratch Snappy and
// a BWT block codec), repro/internal/experiments (every table and
// figure of §7), and repro/internal/workloads/... (Query-Suggestion,
// WordCount, PageRank, 1-Bucket-Theta join, Sort).
package repro

import (
	"repro/internal/anticombine"
	"repro/internal/mr"
)

// Core engine types, re-exported for public use.
type (
	// Job configures one MapReduce execution.
	Job = mr.Job
	// Mapper is the Map-side contract.
	Mapper = mr.Mapper
	// Reducer is the Reduce-side (and Combiner) contract.
	Reducer = mr.Reducer
	// Emitter receives emitted records.
	Emitter = mr.Emitter
	// ValueIter streams one key group's values.
	ValueIter = mr.ValueIter
	// Partitioner routes keys to reduce tasks.
	Partitioner = mr.Partitioner
	// TaskInfo describes the running task to Setup hooks.
	TaskInfo = mr.TaskInfo
	// Record is a key/value pair.
	Record = mr.Record
	// Split is one map task's input.
	Split = mr.Split
	// MemSplit is an in-memory Split.
	MemSplit = mr.MemSplit
	// GenSplit generates records on demand.
	GenSplit = mr.GenSplit
	// LineSplit streams newline-separated records from a file.
	LineSplit = mr.LineSplit
	// RecordFileSplit streams framed records written by WriteRecordFile.
	RecordFileSplit = mr.RecordFileSplit
	// Result carries a finished job's output and metrics.
	Result = mr.Result
	// Stats is the job metric snapshot.
	Stats = mr.Stats
	// MapperBase and ReducerBase provide no-op Setup/Cleanup.
	MapperBase = mr.MapperBase
	// ReducerBase provides no-op Setup/Cleanup for reducers.
	ReducerBase = mr.ReducerBase
	// HashPartitioner is the default partitioner.
	HashPartitioner = mr.HashPartitioner

	// AntiOptions tunes the Anti-Combining transformation.
	AntiOptions = anticombine.Options
	// AntiStrategy restricts which encodings are considered.
	AntiStrategy = anticombine.Strategy
)

// Anti-Combining strategies.
const (
	// Adaptive is the paper's AdaptiveSH.
	Adaptive = anticombine.Adaptive
	// EagerOnly is pure EagerSH (T = 0).
	EagerOnly = anticombine.EagerOnly
	// LazyOnly is pure LazySH.
	LazyOnly = anticombine.LazyOnly
)

// Run executes a job over the given input splits.
func Run(job *Job, splits []Split) (*Result, error) { return mr.Run(job, splits) }

// AntiCombine enables Anti-Combining on a job through the paper's
// syntactic transformation (§6.1). The job's Mapper, Reducer, Combiner,
// and Partitioner are treated as black boxes.
func AntiCombine(job *Job, opts AntiOptions) *Job { return anticombine.Wrap(job, opts) }

// AdaptiveInf returns the Adaptive-∞ options: free per-partition
// encoding choice, no CPU threshold.
func AdaptiveInf() AntiOptions { return anticombine.AdaptiveInf() }

// Adaptive0 returns the Adaptive-0 options: EagerSH only, never
// re-execute Map on reducers.
func Adaptive0() AntiOptions { return anticombine.Adaptive0() }

// AdaptiveAlpha returns the paper's Adaptive-α options (T = 400 µs).
func AdaptiveAlpha() AntiOptions { return anticombine.AdaptiveAlpha() }

// SplitRecords partitions records into n in-memory splits.
func SplitRecords(recs []Record, n int) []Split { return mr.SplitRecords(recs, n) }

// NewMapFunc adapts a stateless map function to a Mapper factory.
func NewMapFunc(f mr.MapFunc) func() Mapper { return mr.NewMapFunc(f) }

// NewReduceFunc adapts a stateless reduce function to a Reducer factory.
func NewReduceFunc(f mr.ReduceFunc) func() Reducer { return mr.NewReduceFunc(f) }

// InMapperCombining wraps a Mapper factory with the in-mapper combining
// design pattern: emissions fold into a bounded table flushed at
// capacity and cleanup. combine must be associative.
func InMapperCombining(newMapper func() Mapper, combine func(acc, v []byte) []byte, maxEntries int) func() Mapper {
	return mr.InMapperCombining(newMapper, combine, maxEntries)
}

// Iterate runs an iterative dataflow (e.g. PageRank): each round's job
// consumes the previous round's output; stats are summed across rounds.
func Iterate(rounds int, initial []Record, splitsPer int, build func(round int) *Job) (*Result, Stats, error) {
	return mr.Iterate(rounds, initial, splitsPer, build)
}
