package repro

// The benchmarks below regenerate every table and figure of the paper's
// evaluation (§7) at benchmark scale and report the headline quantity of
// each as a custom metric, so `go test -bench=.` prints the same
// comparisons the paper's tables carry. EXPERIMENTS.md records the
// paper-vs-measured shapes. Per-module micro-benchmarks (codec
// throughput, Shared operations, engine pipeline) live next to their
// packages.

import (
	"testing"

	"repro/internal/anticombine"
	"repro/internal/datagen"
	"repro/internal/experiments"
	"repro/internal/mr"
	"repro/internal/workloads/scanshare"
	"repro/internal/workloads/wordcount"
)

// benchCfg keeps benchmark iterations fast while preserving every shape
// the tests assert.
func benchCfg() experiments.Config {
	return experiments.Config{Scale: 0.05, Reducers: 4, Splits: 4}
}

// BenchmarkExpOverhead is E1 (§7.1): Anti-Combining's overhead on Sort,
// where it has nothing to share. Reported metric: CPU overhead percent
// (paper: +7.8%).
func BenchmarkExpOverhead(b *testing.B) {
	var cpuPct float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Overhead(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		cpuPct = r.CPUDeltaPct
	}
	b.ReportMetric(cpuPct, "cpu-overhead-%")
}

// BenchmarkExpFig9 is E2 (Figure 9): Query-Suggestion map output size.
// Reported metric: AdaptiveSH's reduction factor under Prefix-1
// (paper: up to 27x).
func BenchmarkExpFig9(b *testing.B) {
	var reduction float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.QSMapOutput(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		orig := r.Metrics["Prefix-1"][experiments.VariantOriginal].MapOutputBytes
		anti := r.Metrics["Prefix-1"][experiments.VariantAdaptive].MapOutputBytes
		reduction = float64(orig) / float64(anti)
	}
	b.ReportMetric(reduction, "prefix1-reduction-x")
}

// BenchmarkExpQSCombiner is E3 (§7.3): the original combiner's modest
// shuffle reduction vs Anti-Combining with reduce-phase combining.
func BenchmarkExpQSCombiner(b *testing.B) {
	var spills float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.QSCombiner(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		spills = float64(r.AdaptiveNoCombiner.SharedSpills - r.AdaptiveCombiner.SharedSpills)
	}
	b.ReportMetric(spills, "shared-spills-avoided")
}

// BenchmarkExpFig10 is E4 (Figure 10): compressed map output with
// Combiner and gzip. Reported metric: AdaptiveSH/Original wire ratio
// under Prefix-5 (lower is better; paper: well below 1).
func BenchmarkExpFig10(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.QSCompression(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		orig := r.Metrics["Prefix-5"][experiments.VariantOriginal].ShuffleBytes
		anti := r.Metrics["Prefix-5"][experiments.VariantAdaptive].ShuffleBytes
		ratio = float64(anti) / float64(orig)
	}
	b.ReportMetric(ratio, "wire-ratio")
}

// BenchmarkExpTable1 is E5 (Table 1): codec cost breakdown. Reported
// metric: AdaptiveSH+gzip wire bytes over the best pure codec's (paper:
// 6 GB vs 15 GB for bzip2).
func BenchmarkExpTable1(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.QSCodecTable(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		best := int64(1) << 62
		var anti int64
		for _, m := range r.Rows {
			if m.Name == "AdaptiveSH+gzip" {
				anti = m.ShuffleBytes
			} else if m.ShuffleBytes < best {
				best = m.ShuffleBytes
			}
		}
		ratio = float64(anti) / float64(best)
	}
	b.ReportMetric(ratio, "anti-vs-best-codec")
}

// BenchmarkExpTable2 is E6 (Table 2): total cost breakdown. Reported
// metric: AdaptiveSH disk r+w reduction vs Original (paper: ~3.8-4.1x).
func BenchmarkExpTable2(b *testing.B) {
	var f float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.QSCostBreakdown(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		var orig, anti int64
		for _, m := range r.Rows {
			switch m.Name {
			case "Original":
				orig = m.DiskRead + m.DiskWrite
			case "AdaptiveSH":
				anti = m.DiskRead + m.DiskWrite
			}
		}
		f = float64(orig) / float64(anti)
	}
	b.ReportMetric(f, "disk-reduction-x")
}

// BenchmarkExpFig11 is E7 (Figure 11): CPU vs extra Map work. Reported
// metric: Adaptive-α's lazy share collapse from x=0 to x=max (paper:
// converges to Adaptive-0).
func BenchmarkExpFig11(b *testing.B) {
	var collapse float64
	for i := 0; i < b.N; i++ {
		cfg := benchCfg()
		cfg.Scale = 0.1
		r, err := experiments.CPUThreshold(cfg)
		if err != nil {
			b.Fatal(err)
		}
		s := r.LazyShare["Adaptive-a"]
		if s[0] > 0 {
			collapse = 1 - s[len(s)-1]/s[0]
		}
	}
	b.ReportMetric(collapse, "alpha-lazy-collapse")
}

// BenchmarkExpWordCount is E8 (§7.7.1). Reported metric: pre-combine map
// output record reduction (paper: 7x).
func BenchmarkExpWordCount(b *testing.B) {
	var f float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.WordCount(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		f = r.RecordsFactor
	}
	b.ReportMetric(f, "precombine-records-x")
}

// BenchmarkExpPageRank is E9 (§7.7.2). Reported metric: shuffle
// reduction over 5 iterations (paper: 2.7x).
func BenchmarkExpPageRank(b *testing.B) {
	var f float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.PageRank(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		f = r.ShuffleFactor
	}
	b.ReportMetric(f, "shuffle-reduction-x")
}

// BenchmarkExpFig12 is E10 (Figure 12). Reported metric: map output
// reduction on the 1-Bucket-Theta join (paper: 9.5x).
func BenchmarkExpFig12(b *testing.B) {
	var f float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.ThetaJoin(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		var orig, anti int64
		for _, m := range r.Variants {
			switch m.Name {
			case "Original":
				orig = m.MapOutputBytes
			case "AdaptiveSH":
				anti = m.MapOutputBytes
			}
		}
		f = float64(orig) / float64(anti)
	}
	b.ReportMetric(f, "mapout-reduction-x")
}

// BenchmarkExtScanShare measures the extension workload from §1's
// motivation: N merged queries duplicating each scanned record.
// Reported metric: map-output byte collapse under AdaptiveSH.
func BenchmarkExtScanShare(b *testing.B) {
	cloud := datagen.NewCloud(datagen.CloudConfig{Seed: 5, Records: 1500, Days: 6, Stations: 12})
	cfg := scanshare.Config{Queries: 12, Reducers: 4}
	var f float64
	for i := 0; i < b.N; i++ {
		orig, err := mr.Run(scanshare.NewJob(cfg), scanshare.Splits(cloud, 4))
		if err != nil {
			b.Fatal(err)
		}
		anti, err := mr.Run(anticombine.Wrap(scanshare.NewJob(cfg), anticombine.AdaptiveInf()),
			scanshare.Splits(cloud, 4))
		if err != nil {
			b.Fatal(err)
		}
		f = float64(orig.Stats.MapOutputBytes) / float64(anti.Stats.MapOutputBytes)
	}
	b.ReportMetric(f, "scanshare-collapse-x")
}

// BenchmarkExtCrossCallWindow measures the paper's future-work extension
// (§9): EagerSH sharing across Map calls of the same task. Reported
// metric: record reduction of a 32-call window over per-call encoding on
// WordCount.
func BenchmarkExtCrossCallWindow(b *testing.B) {
	text := datagen.NewRandomText(datagen.RandomTextConfig{
		Seed: 91, Lines: 1000, WordsPerLine: 10, VocabWords: 5000,
	})
	run := func(window int) int64 {
		job := wordcount.NewJob(4)
		job.NewCombiner = nil
		res, err := mr.Run(anticombine.Wrap(job, anticombine.Options{
			Strategy:        anticombine.EagerOnly,
			CrossCallWindow: window,
		}), wordcount.Splits(text, 4))
		if err != nil {
			b.Fatal(err)
		}
		return res.Stats.MapOutputRecords
	}
	var f float64
	for i := 0; i < b.N; i++ {
		f = float64(run(0)) / float64(run(32))
	}
	b.ReportMetric(f, "window-records-x")
}

// BenchmarkExtTCPShuffle runs the engine with the shuffle routed through
// real loopback TCP sockets (Hadoop-style fetch phase).
func BenchmarkExtTCPShuffle(b *testing.B) {
	text := datagen.NewRandomText(datagen.RandomTextConfig{Seed: 92, Lines: 2000})
	for i := 0; i < b.N; i++ {
		job := wordcount.NewJob(4)
		job.TCPShuffle = true
		job.DiscardOutput = true
		if _, err := mr.Run(job, wordcount.Splits(text, 4)); err != nil {
			b.Fatal(err)
		}
	}
}
