package repro_test

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro"
)

// wordCountJob builds a tiny word-count job against the public API.
func wordCountJob() *repro.Job {
	sum := repro.NewReduceFunc(func(key []byte, values repro.ValueIter, out repro.Emitter) error {
		total := 0
		for {
			v, ok := values.Next()
			if !ok {
				break
			}
			n, err := strconv.Atoi(string(v))
			if err != nil {
				return err
			}
			total += n
		}
		return out.Emit(key, []byte(strconv.Itoa(total)))
	})
	return &repro.Job{
		NewMapper: repro.NewMapFunc(func(key, value []byte, out repro.Emitter) error {
			for _, w := range strings.Fields(string(value)) {
				if err := out.Emit([]byte(w), []byte("1")); err != nil {
					return err
				}
			}
			return nil
		}),
		NewReducer:     sum,
		NumReduceTasks: 2,
		Deterministic:  true,
	}
}

func printSorted(res *repro.Result) {
	var rows []string
	for _, r := range res.SortedOutput() {
		rows = append(rows, fmt.Sprintf("%s=%s", r.Key, r.Value))
	}
	sort.Strings(rows)
	fmt.Println(strings.Join(rows, " "))
}

// Example runs a plain MapReduce job.
func Example() {
	recs := []repro.Record{
		{Value: []byte("to be or not to be")},
	}
	res, err := repro.Run(wordCountJob(), repro.SplitRecords(recs, 1))
	if err != nil {
		panic(err)
	}
	printSorted(res)
	// Output: be=2 not=1 or=1 to=2
}

// ExampleAntiCombine enables Anti-Combining on an existing job with one
// call — the paper's syntactic program transformation — and shows that
// the result is unchanged while the shipped map output shrinks.
func ExampleAntiCombine() {
	recs := []repro.Record{
		{Value: []byte("to be or not to be")},
		{Value: []byte("that is the question")},
	}
	original, err := repro.Run(wordCountJob(), repro.SplitRecords(recs, 1))
	if err != nil {
		panic(err)
	}
	anti, err := repro.Run(
		repro.AntiCombine(wordCountJob(), repro.AdaptiveInf()),
		repro.SplitRecords(recs, 1))
	if err != nil {
		panic(err)
	}
	printSorted(anti)
	fmt.Println("fewer bytes shipped:", anti.Stats.MapOutputBytes < original.Stats.MapOutputBytes)
	// Output:
	// be=2 is=1 not=1 or=1 question=1 that=1 the=1 to=2
	// fewer bytes shipped: true
}

// ExampleAntiCombine_strategies shows the three strategy presets.
func ExampleAntiCombine_strategies() {
	for _, opts := range []repro.AntiOptions{
		repro.Adaptive0(),     // EagerSH only (T = 0)
		repro.AdaptiveAlpha(), // adaptive with the paper's 400 µs threshold
		repro.AdaptiveInf(),   // unrestricted adaptive
	} {
		fmt.Println(opts.Strategy, opts.T)
	}
	// Output:
	// eager 0s
	// adaptive 400µs
	// adaptive 0s
}
