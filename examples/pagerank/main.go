// PageRank over a synthetic power-law web graph (§7.7.2): five
// MapReduce iterations, with every iteration's job Anti-Combined. The
// skewed out-degree distribution is where Anti-Combining shines — a
// hub's thousands of identical rank contributions collapse into one
// EagerSH record per reduce task, or the node record ships once via
// LazySH.
package main

import (
	"fmt"
	"math"
	"sort"

	"repro"
	"repro/internal/datagen"
	"repro/internal/workloads/pagerank"
)

func main() {
	g := datagen.NewGraph(datagen.GraphConfig{Seed: 7, Nodes: 5000, AvgOutDegree: 10})
	fmt.Printf("graph: %d nodes, %d edges, max out-degree %d\n",
		len(g.Out), g.Edges(), g.MaxOutDegree())

	const iterations = 5
	run := func(anti bool) (*repro.Result, int64) {
		recs := pagerank.InitialRecords(g)
		var res *repro.Result
		var shuffle int64
		for i := 0; i < iterations; i++ {
			job := pagerank.NewJob(len(g.Out), 6)
			if anti {
				job = repro.AntiCombine(job, repro.AdaptiveInf())
			}
			var err error
			res, err = repro.Run(job, repro.SplitRecords(recs, 6))
			if err != nil {
				panic(err)
			}
			shuffle += res.Stats.ShuffleBytes
			recs = res.SortedOutput()
		}
		return res, shuffle
	}

	origRes, origShuffle := run(false)
	antiRes, antiShuffle := run(true)

	origRanks, err := pagerank.RanksFromOutput(origRes)
	if err != nil {
		panic(err)
	}
	antiRanks, err := pagerank.RanksFromOutput(antiRes)
	if err != nil {
		panic(err)
	}

	type nr struct {
		node int32
		rank float64
	}
	var top []nr
	for n, r := range antiRanks {
		top = append(top, nr{n, r})
	}
	sort.Slice(top, func(i, j int) bool { return top[i].rank > top[j].rank })
	fmt.Println("\ntop 10 nodes by PageRank (Anti-Combined run):")
	for _, e := range top[:10] {
		// Summation order differs between the runs, so compare within
		// floating-point tolerance.
		agrees := math.Abs(origRanks[e.node]-e.rank) < 1e-12
		fmt.Printf("  node %5d  rank %.6f  (matches original: %v)\n",
			e.node, e.rank, agrees)
	}

	fmt.Printf("\nshuffle over %d iterations: original %d bytes, anti-combined %d bytes (%.1fx less)\n",
		iterations, origShuffle, antiShuffle, float64(origShuffle)/float64(antiShuffle))
}
