// Query-Suggestion end to end (the paper's running example, §2): build
// a synthetic search log, compute the top-5 completions for every query
// prefix, and compare the original program against the three
// Anti-Combining strategies under the Prefix-5 partitioner — a small
// live rendition of Figure 9.
package main

import (
	"fmt"
	"sort"

	"repro"
	"repro/internal/datagen"
	"repro/internal/workloads/querysuggest"
)

func main() {
	log := datagen.NewQueryLog(datagen.QueryLogConfig{
		Seed:            42,
		Queries:         5000,
		DistinctQueries: 400,
	})
	cfg := querysuggest.Config{
		Partitioner: querysuggest.PrefixPartitioner{K: 5},
		Reducers:    6,
	}

	variants := []struct {
		name string
		wrap func(*repro.Job) *repro.Job
	}{
		{"Original", func(j *repro.Job) *repro.Job { return j }},
		{"EagerSH", func(j *repro.Job) *repro.Job { return repro.AntiCombine(j, repro.Adaptive0()) }},
		{"LazySH", func(j *repro.Job) *repro.Job {
			return repro.AntiCombine(j, repro.AntiOptions{Strategy: repro.LazyOnly})
		}},
		{"AdaptiveSH", func(j *repro.Job) *repro.Job { return repro.AntiCombine(j, repro.AdaptiveInf()) }},
	}

	var suggestions map[string]string
	fmt.Println("map output size per strategy (Prefix-5 partitioner):")
	for _, v := range variants {
		job := v.wrap(querysuggest.NewJob(cfg, false))
		res, err := repro.Run(job, querysuggest.Splits(log, 6))
		if err != nil {
			panic(err)
		}
		fmt.Printf("  %-11s %9d bytes  (%d records)\n",
			v.name, res.Stats.MapOutputBytes, res.Stats.MapOutputRecords)
		if v.name == "AdaptiveSH" {
			suggestions = make(map[string]string)
			for _, r := range res.SortedOutput() {
				suggestions[string(r.Key)] = string(r.Value)
			}
		}
	}

	// Show live suggestions for a few short prefixes, like a search box.
	var prefixes []string
	for p := range suggestions {
		if len(p) == 2 {
			prefixes = append(prefixes, p)
		}
	}
	sort.Strings(prefixes)
	if len(prefixes) > 5 {
		prefixes = prefixes[:5]
	}
	fmt.Println("\nsample suggestions (prefix -> top queries with counts):")
	for _, p := range prefixes {
		fmt.Printf("  %-4q %s\n", p, suggestions[p])
	}
}
