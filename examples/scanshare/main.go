// Scan sharing: several aggregation queries merged into one job over a
// shared input scan (the multi-query optimization scenario §1 of the
// paper calls "a perfect target for Anti-Combining"). The shared
// operator duplicates each scanned record once per downstream query;
// Anti-Combining collapses the duplicates to at most one record per
// reduce task.
package main

import (
	"fmt"
	"sort"
	"strings"

	"repro"
	"repro/internal/datagen"
	"repro/internal/workloads/scanshare"
)

func main() {
	cloud := datagen.NewCloud(datagen.CloudConfig{Seed: 5, Records: 5000, Days: 6, Stations: 12})
	cfg := scanshare.Config{Queries: 12, Reducers: 4}

	run := func(name string, wrap bool) *repro.Result {
		job := scanshare.NewJob(cfg)
		if wrap {
			job = repro.AntiCombine(job, repro.AdaptiveInf())
		}
		res, err := repro.Run(job, scanshare.Splits(cloud, 4))
		if err != nil {
			panic(err)
		}
		fmt.Printf("  %-11s %8d map records  %9d bytes\n",
			name, res.Stats.MapOutputRecords, res.Stats.MapOutputBytes)
		return res
	}

	fmt.Printf("%d queries share one scan of %d records:\n", cfg.Queries, cloud.Len())
	orig := run("Original", false)
	anti := run("AdaptiveSH", true)
	fmt.Printf("\nduplication collapsed %.1fx (records), %.1fx (bytes)\n",
		float64(orig.Stats.MapOutputRecords)/float64(anti.Stats.MapOutputRecords),
		float64(orig.Stats.MapOutputBytes)/float64(anti.Stats.MapOutputBytes))

	// Show one query's result groups.
	var rows []string
	for _, r := range anti.SortedOutput() {
		if strings.HasPrefix(string(r.Key), "q00|") {
			rows = append(rows, fmt.Sprintf("  %s -> count,sumLat = %s", r.Key, r.Value))
		}
	}
	sort.Strings(rows)
	fmt.Println("\nquery q00 (reports per date):")
	for _, row := range rows {
		fmt.Println(row)
	}
}
