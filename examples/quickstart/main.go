// Quickstart: word count through the public API, run twice — original
// and Anti-Combined — printing the counts and the data-transfer
// comparison. This is the smallest complete program against the
// library: define Map and Reduce, build a Job, flip Anti-Combining on
// with one call.
package main

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro"
)

func newJob() *repro.Job {
	sum := repro.NewReduceFunc(func(key []byte, values repro.ValueIter, out repro.Emitter) error {
		total := 0
		for {
			v, ok := values.Next()
			if !ok {
				break
			}
			n, err := strconv.Atoi(string(v))
			if err != nil {
				return err
			}
			total += n
		}
		return out.Emit(key, []byte(strconv.Itoa(total)))
	})
	return &repro.Job{
		Name: "quickstart",
		NewMapper: repro.NewMapFunc(func(key, value []byte, out repro.Emitter) error {
			for _, w := range strings.Fields(string(value)) {
				if err := out.Emit([]byte(w), []byte("1")); err != nil {
					return err
				}
			}
			return nil
		}),
		NewReducer:     sum,
		NewCombiner:    sum,
		NumReduceTasks: 3,
		Deterministic:  true, // Map is a pure function: LazySH is safe
	}
}

func main() {
	lines := []string{
		"anti combining shifts mapper work to the reducers",
		"a combiner shifts reducer work to the mappers",
		"anti combining is the opposite of a combiner",
	}
	var recs []repro.Record
	for _, l := range lines {
		recs = append(recs, repro.Record{Value: []byte(l)})
	}

	original, err := repro.Run(newJob(), repro.SplitRecords(recs, 2))
	if err != nil {
		panic(err)
	}
	anti, err := repro.Run(repro.AntiCombine(newJob(), repro.AdaptiveInf()),
		repro.SplitRecords(recs, 2))
	if err != nil {
		panic(err)
	}

	type wc struct {
		word  string
		count string
	}
	var counts []wc
	for _, r := range anti.SortedOutput() {
		counts = append(counts, wc{string(r.Key), string(r.Value)})
	}
	sort.Slice(counts, func(i, j int) bool { return counts[i].word < counts[j].word })
	fmt.Println("word counts (from the Anti-Combined run):")
	for _, c := range counts {
		fmt.Printf("  %-10s %s\n", c.word, c.count)
	}

	fmt.Printf("\nmap output: original %d bytes, anti-combined %d bytes\n",
		original.Stats.MapOutputBytes, anti.Stats.MapOutputBytes)
	fmt.Printf("both runs agree: %v\n",
		original.Stats.ReduceOutputRecords == anti.Stats.ReduceOutputRecords)
}
