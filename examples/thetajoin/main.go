// Theta-join on synthetic cloud reports (§7.7.3): the band self-join
//
//	S.date = T.date AND S.longitude = T.longitude
//	AND |S.latitude - T.latitude| <= 10
//
// run with the 1-Bucket-Theta algorithm. Each input tuple is replicated
// to Rows+Cols matrix regions, so the map output explodes — and
// Anti-Combining's LazySH ships each tuple once per reduce task instead.
package main

import (
	"fmt"

	"repro"
	"repro/internal/anticombine"
	"repro/internal/datagen"
	"repro/internal/workloads/thetajoin"
)

func main() {
	cloud := datagen.NewCloud(datagen.CloudConfig{
		Seed: 9, Records: 4000, Days: 8, Stations: 25,
	})
	cfg := thetajoin.Config{Rows: 10, Cols: 10, Reducers: 8}

	run := func(name string, wrap bool) *repro.Result {
		job := thetajoin.NewJob(cfg)
		if wrap {
			job = repro.AntiCombine(job, repro.AdaptiveInf())
		}
		res, err := repro.Run(job, thetajoin.Splits(cloud, 6))
		if err != nil {
			panic(err)
		}
		fmt.Printf("  %-11s map output %9d bytes (%7d records), join rows %d\n",
			name, res.Stats.MapOutputBytes, res.Stats.MapOutputRecords,
			res.Stats.ReduceOutputRecords)
		return res
	}

	fmt.Printf("1-Bucket-Theta: %d tuples x (%d+%d) regions = %dx replication\n",
		cloud.Len(), cfg.Rows, cfg.Cols, cfg.Rows+cfg.Cols)
	orig := run("Original", false)
	anti := run("AdaptiveSH", true)

	fmt.Printf("\nmap output reduction: %.1fx\n",
		float64(orig.Stats.MapOutputBytes)/float64(anti.Stats.MapOutputBytes))
	fmt.Printf("adaptive encoding choices: lazy=%d eager=%d plain=%d\n",
		anti.Stats.Extra[anticombine.CounterLazyRecords],
		anti.Stats.Extra[anticombine.CounterEagerRecords],
		anti.Stats.Extra[anticombine.CounterPlainRecords])

	// Show a few join rows.
	fmt.Println("\nsample join results (S.date, S.longitude, S.latitude, T.latitude):")
	shown := 0
	for _, part := range anti.Output {
		for _, r := range part {
			fmt.Printf("  %s\n", r.Value)
			if shown++; shown >= 5 {
				return
			}
		}
	}
}
