#!/usr/bin/env bash
# Pipeline smoke test: boot an antserve daemon, join two antwork
# workers, and submit the iterative-PageRank dag pipeline through
# `antctl pipeline -f spec.json`. The pipeline must succeed, two
# submissions of the same spec must download byte-identical outputs
# (the stage handoff is deterministic), and a bogus pipeline reference
# must be rejected at admission. Everything must exit 0.
set -euo pipefail

cd "$(dirname "$0")/.."
workdir=$(mktemp -d)
cleanup() {
    kill $(jobs -p) 2>/dev/null || true
    rm -rf "$workdir"
}
trap cleanup EXIT

HTTP_ADDR=${HTTP_ADDR:-127.0.0.1:7097}
FLEET_ADDR=${FLEET_ADDR:-127.0.0.1:7096}

echo "== build"
go build -o "$workdir" ./cmd/antserve ./cmd/antwork ./cmd/antctl

ctl() { "$workdir/antctl" -server "http://$HTTP_ADDR" "$@"; }
job_id() { grep -o '"id": *[0-9]*' | head -1 | grep -o '[0-9]*'; }

echo "== start antserve"
"$workdir/antserve" -http "$HTTP_ADDR" -fleet "$FLEET_ADDR" &
serve_pid=$!
for i in $(seq 1 50); do
    ctl health >/dev/null 2>&1 && break
    if [ "$i" = 50 ]; then echo "antserve never became healthy" >&2; exit 1; fi
    sleep 0.2
done

echo "== join two workers"
"$workdir/antwork" -coordinator "$FLEET_ADDR" -slots 2 &
"$workdir/antwork" -coordinator "$FLEET_ADDR" -slots 2 &
for i in $(seq 1 50); do
    live=$(ctl workers | grep -c live || true)
    [ "$live" -ge 2 ] && break
    if [ "$i" = 50 ]; then echo "workers never joined" >&2; exit 1; fi
    sleep 0.2
done

echo "== submit the iterative PageRank pipeline"
nodes=400
cat > "$workdir/pipeline.json" <<EOF
{
  "name": "pagerank-iter",
  "spec": {"nodes": $nodes, "avg_degree": 6, "seed": 2014, "parts": 4, "max_iters": 4},
  "tenant": "analytics"
}
EOF
out=$(ctl pipeline -f "$workdir/pipeline.json" -wait)
id=$(echo "$out" | job_id)
echo "$out" | grep -q '"kind": *"pipeline"'
echo "   pipeline job $id succeeded"

echo "== two runs of the same spec are byte-identical"
id2=$(ctl pipeline -f "$workdir/pipeline.json" -wait | job_id)
ctl output -id "$id" > "$workdir/out1"
ctl output -id "$id2" > "$workdir/out2"
if [ ! -s "$workdir/out1" ]; then
    echo "pipeline output is empty" >&2
    exit 1
fi
cmp "$workdir/out1" "$workdir/out2"
echo "   jobs $id and $id2 agree ($(wc -c < "$workdir/out1") bytes, $nodes nodes)"

echo "== bogus pipeline reference is rejected at admission"
echo '{"name": "no-such-pipeline"}' > "$workdir/bad.json"
if ctl pipeline -f "$workdir/bad.json" 2>"$workdir/bad.err"; then
    echo "unregistered pipeline should have been rejected" >&2
    exit 1
fi
grep -qi "no pipeline registered" "$workdir/bad.err"
echo "   rejected: $(cat "$workdir/bad.err")"

echo "== clean shutdown"
kill -TERM $(jobs -p)
wait "$serve_pid" || true
echo "ok: pipeline smoke passed"
