#!/usr/bin/env bash
# Service smoke test: boot an antserve daemon, join two antwork
# workers, and drive it end to end with antctl over the HTTP API —
# one job per tenant, per-tenant queue quota enforcement (429), job
# cancellation, SIGTERM worker drain, and clean daemon shutdown.
# Everything must exit 0.
set -euo pipefail

cd "$(dirname "$0")/.."
workdir=$(mktemp -d)
cleanup() {
    kill $(jobs -p) 2>/dev/null || true
    rm -rf "$workdir"
}
trap cleanup EXIT

HTTP_ADDR=${HTTP_ADDR:-127.0.0.1:7099}
FLEET_ADDR=${FLEET_ADDR:-127.0.0.1:7098}

echo "== build"
go build -o "$workdir" ./cmd/antserve ./cmd/antwork ./cmd/antctl

ctl() { "$workdir/antctl" -server "http://$HTTP_ADDR" "$@"; }

# Extracts "id" from antctl's JSON output.
job_id() { grep -o '"id": *[0-9]*' | head -1 | grep -o '[0-9]*'; }

echo "== start antserve"
"$workdir/antserve" -http "$HTTP_ADDR" -fleet "$FLEET_ADDR" \
    -journal "$workdir/journal.jsonl" \
    -tenant 'analytics:weight=2' -tenant 'adhoc' -tenant 'batch' \
    -tenant 'limited:max_running=1,max_queued=1' &
serve_pid=$!
for i in $(seq 1 50); do
    ctl health >/dev/null 2>&1 && break
    if [ "$i" = 50 ]; then echo "antserve never became healthy" >&2; exit 1; fi
    sleep 0.2
done

echo "== join two workers"
"$workdir/antwork" -coordinator "$FLEET_ADDR" -slots 2 &
w1=$!
"$workdir/antwork" -coordinator "$FLEET_ADDR" -slots 2 &
w2=$!
for i in $(seq 1 50); do
    live=$(ctl workers | grep -c live || true)
    [ "$live" -ge 2 ] && break
    if [ "$i" = 50 ]; then echo "workers never joined" >&2; exit 1; fi
    sleep 0.2
done

echo "== one job per tenant over HTTP"
first_id=""
for tenant in analytics adhoc batch; do
    out=$(ctl submit -job exp/wordcount \
        -spec '{"Scale":0.2,"Seed":42,"Splits":6,"Reducers":4}' \
        -tenant "$tenant" -wait)
    id=$(echo "$out" | job_id)
    [ -n "$first_id" ] || first_id=$id
    echo "   tenant $tenant: job $id succeeded"
done

echo "== output endpoint"
lines=$(ctl output -id "$first_id" | wc -l)
if [ "$lines" -lt 1 ]; then echo "job $first_id output is empty" >&2; exit 1; fi
echo "   job $first_id: $lines output lines"

echo "== quota enforcement (max_running=1, max_queued=1)"
slow='{"Scale":3,"Seed":7,"Splits":8,"Reducers":4}'
l1=$(ctl submit -job exp/wordcount -spec "$slow" -tenant limited | job_id)
l2=$(ctl submit -job exp/wordcount -spec "$slow" -tenant limited | job_id)
if ctl submit -job exp/wordcount -spec "$slow" -tenant limited 2>"$workdir/quota.err"; then
    echo "third limited submission should have been rejected" >&2
    exit 1
fi
grep -qi quota "$workdir/quota.err"
echo "   third submission rejected: $(cat "$workdir/quota.err")"

echo "== cancel the limited jobs"
ctl cancel -id "$l1" >/dev/null
ctl cancel -id "$l2" >/dev/null

echo "== SIGTERM drains a worker gracefully"
kill -TERM "$w1"
wait "$w1"
echo "   worker drained and exited 0"

echo "== clean shutdown"
kill -TERM "$w2"
wait "$w2"
kill -TERM "$serve_pid"
wait "$serve_pid"
if [ ! -s "$workdir/journal.jsonl" ]; then
    echo "journal is missing or empty" >&2
    exit 1
fi
echo "ok: service smoke passed"
