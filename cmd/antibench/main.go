// Command antibench regenerates the paper's evaluation (§7): every
// table and figure has an experiment id, and each run prints a
// paper-style table built from the same metrics the paper reports.
//
// Usage:
//
//	antibench -exp fig9 -scale 1.0
//	antibench -exp all -scale 0.2
//
// Experiments: overhead (§7.1), fig9 (§7.2), combiner (§7.3),
// fig10 (§7.4), table1 (§7.4), table2 (§7.5), fig11 (§7.6),
// wordcount (§7.7.1), pagerank (§7.7.2), fig12 (§7.7.3), all.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	_ "net/http/pprof"
	"os"
	"time"

	"repro/internal/chaos"
	"repro/internal/cluster"
	"repro/internal/experiments"
	"repro/internal/obs"
)

type renderer interface{ Render(w io.Writer) }

type experiment struct {
	name string
	desc string
	run  func(experiments.Config) (renderer, error)
}

func adapt[T renderer](f func(experiments.Config) (T, error)) func(experiments.Config) (renderer, error) {
	return func(cfg experiments.Config) (renderer, error) { return f(cfg) }
}

var registry = []experiment{
	{"overhead", "E1 §7.1 Anti-Combining overhead on Sort", adapt(experiments.Overhead)},
	{"fig9", "E2 Fig.9 Query-Suggestion map output size", adapt(experiments.QSMapOutput)},
	{"combiner", "E3 §7.3 Query-Suggestion with Combiner", adapt(experiments.QSCombiner)},
	{"fig10", "E4 Fig.10 Query-Suggestion with Combiner+compression", adapt(experiments.QSCompression)},
	{"table1", "E5 Table 1 codec cost breakdown", adapt(experiments.QSCodecTable)},
	{"table2", "E6 Table 2 total cost breakdown", adapt(experiments.QSCostBreakdown)},
	{"fig11", "E7 Fig.11 CPU threshold sweep", adapt(experiments.CPUThreshold)},
	{"wordcount", "E8 §7.7.1 WordCount", adapt(experiments.WordCount)},
	{"pagerank", "E9 §7.7.2 PageRank (5 iterations)", adapt(experiments.PageRank)},
	{"fig12", "E10 Fig.12 1-Bucket-Theta join", adapt(experiments.ThetaJoin)},
	{"scanshare", "X1 extension: multi-query scan sharing (§1 motivation)", adapt(experiments.ScanShare)},
	{"window", "X2 extension: cross-call EagerSH window (§9 future work)", adapt(experiments.CrossCall)},
	{"netsweep", "X3 extension: runtime benefit vs network speed", adapt(experiments.NetworkSweep)},
	{"skew", "X4 extension: reducer load skew under LazySH (§6.2)", adapt(experiments.Skew)},
	{"skewpart", "X5 extension: skew-aware adaptive partitioning (hash/range/split)", adapt(experiments.SkewPartition)},
	{"thetashares", "X6 extension: SharesSkew allocation for 1-Bucket-Theta", adapt(experiments.ThetaShares)},
	{"pagerank-iter", "X7 extension: iterative PageRank via dag pipeline (handoff vs chaining)", adapt(experiments.PipelineHandoff)},
	{"sort", "OBS traced prefix-sort with forced Shared spilling (use with -trace)", adapt(experiments.Sort)},
}

func main() {
	// When spawned as a cluster worker (-cluster mode re-executes this
	// binary), become one and never return.
	cluster.WorkerMainIfSpawned()

	var (
		exp      = flag.String("exp", "all", "experiment id (see -list; 'all' runs everything)")
		scale    = flag.Float64("scale", 0.5, "dataset scale factor (1.0 = full default sizes)")
		seed     = flag.Uint64("seed", 2014, "dataset seed")
		reducers = flag.Int("reducers", 8, "reduce tasks per job")
		splits   = flag.Int("splits", 8, "map tasks per job")
		par      = flag.Int("parallelism", 0, "concurrent tasks (0 = GOMAXPROCS); 1 gives the most stable CPU numbers")
		spillPar = flag.Int("spill-parallelism", 0, "per-map-task spill/merge parallelism (0 = GOMAXPROCS); 1 pins the historical sequential path")
		noPool   = flag.Bool("no-pooling", false, "disable the engine's steady-state buffer pools (A/B baseline)")
		asJSON   = flag.Bool("json", false, "emit results as JSON instead of tables")
		list     = flag.Bool("list", false, "list experiments and exit")

		clusterN    = flag.Int("cluster", 0, "run cluster mode with N worker subprocesses instead of -exp (compares against the in-process engine)")
		clusterKill = flag.Bool("cluster-kill", false, "with -cluster: SIGKILL one worker mid-job to demonstrate failure recovery")
		slots       = flag.Int("cluster-slots", 2, "with -cluster: task slots per worker process")

		chaosSeed    = flag.Uint64("chaos-seed", 0, "replay one seeded chaos soak instead of -exp (prints the fault schedule)")
		chaosSeeds   = flag.Int("chaos-seeds", 0, "run N consecutive seeded chaos soaks instead of -exp (seeds 1..N in-process, 101..100+N cluster)")
		chaosProfile = flag.String("chaos-profile", "mixed", "chaos fault profile: mixed, disk, net, crash")
		chaosEngine  = flag.String("chaos-engine", "both", "chaos soak engine: inprocess, cluster, both")

		traceOut = flag.String("trace", "", "write a Chrome trace-event JSON file covering every job run")
		metrics  = flag.String("metrics", "", "write live metrics snapshots (JSONL) to this file ('-' for stderr)")
		interval = flag.Duration("metrics-interval", 500*time.Millisecond, "live metrics snapshot interval")
		pprof    = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
	)
	flag.Parse()

	if *list {
		for _, e := range registry {
			fmt.Printf("%-10s %s\n", e.name, e.desc)
		}
		return
	}

	if *pprof != "" {
		go func() {
			if err := http.ListenAndServe(*pprof, nil); err != nil {
				fmt.Fprintf(os.Stderr, "antibench: pprof server: %v\n", err)
			}
		}()
		fmt.Fprintf(os.Stderr, "antibench: pprof on http://%s/debug/pprof/\n", *pprof)
	}

	cfg := experiments.Config{
		Scale:            *scale,
		Seed:             *seed,
		Reducers:         *reducers,
		Splits:           *splits,
		Parallelism:      *par,
		SpillParallelism: *spillPar,
		DisablePooling:   *noPool,
	}

	if *traceOut != "" {
		cfg.Tracer = obs.NewTracer()
		defer writeTrace(cfg.Tracer, *traceOut)
	}
	if *metrics != "" {
		w, closeFn, err := metricsWriter(*metrics)
		if err != nil {
			fmt.Fprintf(os.Stderr, "antibench: %v\n", err)
			os.Exit(1)
		}
		cfg.Metrics = obs.NewRegistry()
		rep := obs.NewReporter(w, cfg.Metrics, *interval)
		defer closeFn()
		defer rep.Stop()
	}

	if *chaosSeed != 0 || *chaosSeeds > 0 {
		if err := runChaos(*chaosSeed, *chaosSeeds, *chaosProfile, *chaosEngine, cfg.Tracer); err != nil {
			fmt.Fprintf(os.Stderr, "antibench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *clusterN > 0 {
		start := time.Now()
		res, err := experiments.ClusterCompare(cfg, experiments.ClusterOptions{
			Workers:        *clusterN,
			SlotsPerWorker: *slots,
			Kill:           *clusterKill,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "antibench: cluster mode: %v\n", err)
			os.Exit(1)
		}
		if *asJSON {
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			if err := enc.Encode(res); err != nil {
				fmt.Fprintf(os.Stderr, "antibench: encoding JSON: %v\n", err)
				os.Exit(1)
			}
			return
		}
		res.Render(os.Stdout)
		fmt.Printf("  [completed in %v]\n", time.Since(start).Round(time.Millisecond))
		return
	}

	selected := registry[:0:0]
	for _, e := range registry {
		if *exp == "all" || *exp == e.name {
			selected = append(selected, e)
		}
	}
	if len(selected) == 0 {
		fmt.Fprintf(os.Stderr, "antibench: unknown experiment %q (use -list)\n", *exp)
		os.Exit(2)
	}
	jsonOut := map[string]any{}
	for _, e := range selected {
		if !*asJSON {
			fmt.Printf("=== %s: %s (scale %.2f) ===\n", e.name, e.desc, *scale)
		}
		start := time.Now()
		r, err := e.run(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "antibench: %s: %v\n", e.name, err)
			os.Exit(1)
		}
		if *asJSON {
			jsonOut[e.name] = r
			continue
		}
		r.Render(os.Stdout)
		fmt.Printf("  [completed in %v]\n\n", time.Since(start).Round(time.Millisecond))
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(jsonOut); err != nil {
			fmt.Fprintf(os.Stderr, "antibench: encoding JSON: %v\n", err)
			os.Exit(1)
		}
	}
}

// runChaos drives the seeded chaos soaks from the command line: one
// seed (replay mode) or a consecutive matrix, against the in-process
// engine, the cluster runtime, or both. Every run prints its injected
// fault schedule; a failing run exits nonzero with the exact replay
// command, so any failure seen in the wild is reproducible by seed.
func runChaos(seed uint64, n int, profile, engine string, tracer *obs.Tracer) error {
	prof, err := chaos.ProfileByName(profile)
	if err != nil {
		return err
	}
	type soakEngine struct {
		name string
		base uint64 // matrix start seed, mirroring the go test soak
		run  func(uint64, chaos.Profile, *obs.Tracer) (*chaos.SoakReport, error)
	}
	var engines []soakEngine
	if engine == "inprocess" || engine == "both" {
		engines = append(engines, soakEngine{"inprocess", 1, chaos.SoakInProcess})
	}
	if engine == "cluster" || engine == "both" {
		engines = append(engines, soakEngine{"cluster", 101, chaos.SoakCluster})
	}
	if len(engines) == 0 {
		return fmt.Errorf("unknown engine %q (have inprocess, cluster, both)", engine)
	}
	for _, e := range engines {
		seeds := []uint64{seed}
		if seed == 0 {
			seeds = seeds[:0]
			for i := 0; i < n; i++ {
				seeds = append(seeds, e.base+uint64(i))
			}
		}
		for _, sd := range seeds {
			start := time.Now()
			rep, err := e.run(sd, prof, tracer)
			if err != nil {
				return fmt.Errorf("%v\nreplay: antibench -chaos-seed %d -chaos-profile %s -chaos-engine %s",
					err, sd, profile, e.name)
			}
			fmt.Printf("chaos %-9s seed=%-4d profile=%s faults=%d attempts=%d [%v]\n",
				e.name, rep.Seed, rep.Profile, rep.Faults, rep.Attempts,
				time.Since(start).Round(time.Millisecond))
		}
	}
	return nil
}

// writeTrace exports the collected spans as Chrome trace-event JSON
// (open with chrome://tracing or https://ui.perfetto.dev).
func writeTrace(t *obs.Tracer, path string) {
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "antibench: creating trace file: %v\n", err)
		return
	}
	err = t.WriteChromeTrace(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "antibench: writing trace: %v\n", err)
		return
	}
	fmt.Fprintf(os.Stderr, "antibench: wrote %d spans to %s\n", len(t.Spans()), path)
}

// metricsWriter opens the live-metrics sink: a file path, or '-' for
// stderr (stdout carries the result tables).
func metricsWriter(path string) (io.Writer, func(), error) {
	if path == "-" {
		return os.Stderr, func() {}, nil
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, nil, fmt.Errorf("creating metrics file: %w", err)
	}
	return f, func() { f.Close() }, nil
}
