// Command benchjson converts `go test -bench` text output (read from
// stdin) into a machine-readable JSON report, deriving baseline-vs-
// default comparisons for benchmarks that expose `<name>/baseline` and
// `<name>/default` sub-benchmarks. The CI bench job pipes the map-path
// benchmarks through it to publish BENCH_4.json.
//
// Usage:
//
//	go test -run '^$' -bench . -benchmem ./internal/mr/ | benchjson -out BENCH_4.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Benchmark is one parsed result line.
type Benchmark struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
	// Extra holds custom b.ReportMetric units (e.g. the skew
	// benchmarks' "maxpart-B" and "skew-x"), keyed by unit.
	Extra map[string]float64 `json:"extra,omitempty"`
}

// Comparison pairs a benchmark's baseline and default variants.
type Comparison struct {
	Name              string  `json:"name"`
	SpeedupX          float64 `json:"speedup_x"`
	BytesReductionPct float64 `json:"bytes_reduction_pct,omitempty"`
	AllocReductionPct float64 `json:"alloc_reduction_pct,omitempty"`
}

// Report is the emitted document.
type Report struct {
	Goos        string       `json:"goos,omitempty"`
	Goarch      string       `json:"goarch,omitempty"`
	Pkg         string       `json:"pkg,omitempty"`
	CPU         string       `json:"cpu,omitempty"`
	Benchmarks  []Benchmark  `json:"benchmarks"`
	Comparisons []Comparison `json:"comparisons,omitempty"`
}

func main() {
	out := flag.String("out", "", "output file (default stdout)")
	flag.Parse()

	report, err := parse(bufio.NewScanner(os.Stdin))
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	report.Comparisons = compare(report.Benchmarks)

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}

// parse consumes `go test -bench` output: header key: value lines, then
// result lines of the form
//
//	BenchmarkName-8   100   12345 ns/op   678 B/op   9 allocs/op
func parse(sc *bufio.Scanner) (*Report, error) {
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	r := &Report{Benchmarks: []Benchmark{}}
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			r.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			r.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "pkg:"):
			r.Pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "cpu:"):
			r.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "Benchmark"):
			b, ok := parseResult(line)
			if ok {
				r.Benchmarks = append(r.Benchmarks, b)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(r.Benchmarks) == 0 {
		return nil, fmt.Errorf("no benchmark result lines on stdin")
	}
	return r, nil
}

func parseResult(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || fields[3] != "ns/op" {
		return Benchmark{}, false
	}
	name := fields[0]
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i] // strip the GOMAXPROCS suffix
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{Name: name, Iterations: iters}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		switch fields[i+1] {
		case "ns/op":
			b.NsPerOp = v
		case "B/op":
			b.BytesPerOp = v
		case "allocs/op":
			b.AllocsPerOp = v
		default:
			if b.Extra == nil {
				b.Extra = make(map[string]float64)
			}
			b.Extra[fields[i+1]] = v
		}
	}
	return b, true
}

// compare derives speedup and allocation reductions for each
// `X/baseline` + `X/default` sub-benchmark pair.
func compare(benches []Benchmark) []Comparison {
	byName := make(map[string]Benchmark, len(benches))
	for _, b := range benches {
		byName[b.Name] = b
	}
	var out []Comparison
	for _, b := range benches {
		root, ok := strings.CutSuffix(b.Name, "/baseline")
		if !ok {
			continue
		}
		def, ok := byName[root+"/default"]
		if !ok {
			continue
		}
		c := Comparison{Name: root}
		if def.NsPerOp > 0 {
			c.SpeedupX = b.NsPerOp / def.NsPerOp
		}
		if b.BytesPerOp > 0 {
			c.BytesReductionPct = 100 * (1 - def.BytesPerOp/b.BytesPerOp)
		}
		if b.AllocsPerOp > 0 {
			c.AllocReductionPct = 100 * (1 - def.AllocsPerOp/b.AllocsPerOp)
		}
		out = append(out, c)
	}
	return out
}
