// Command antserve is the long-lived multi-tenant job service: one
// daemon owns one worker fleet and runs many jobs over it
// concurrently. Workers (antwork) join at the fleet RPC address;
// clients (antctl, curl) submit and manage jobs over the HTTP/JSON API
// on -http. Jobs are admitted through per-tenant quotas into a
// journal-backed queue and scheduled over the shared fleet with
// per-tenant weighted fair share.
//
// Usage:
//
//	antserve -http 127.0.0.1:7070 -fleet 127.0.0.1:7071 \
//	    -journal /var/lib/antserve/journal.jsonl \
//	    -tenant 'analytics:weight=2,max_running=4' -tenant 'adhoc:weight=1'
//
// Endpoints: POST/GET /api/v1/jobs, GET/DELETE /api/v1/jobs/{id},
// GET /api/v1/jobs/{id}/output, GET /api/v1/jobs/{id}/events (SSE),
// GET /api/v1/workers, POST /api/v1/workers/{id}/drain, /healthz,
// /metrics, and /debug/pprof when -pprof.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/cluster"
	_ "repro/internal/experiments" // registers the experiment cluster jobs
	"repro/internal/serve"
)

// tenantFlags collects repeated -tenant definitions:
// "name:weight=2,priority=1,max_running=4,max_queued=16".
type tenantFlags map[string]serve.TenantConfig

func (t tenantFlags) String() string { return fmt.Sprintf("%d tenants", len(t)) }

func (t tenantFlags) Set(v string) error {
	name, opts, _ := strings.Cut(v, ":")
	if name == "" {
		return errors.New("tenant name is empty")
	}
	var tc serve.TenantConfig
	if opts != "" {
		for _, kv := range strings.Split(opts, ",") {
			k, val, ok := strings.Cut(kv, "=")
			if !ok {
				return fmt.Errorf("bad tenant option %q (want key=value)", kv)
			}
			n, err := strconv.Atoi(val)
			if err != nil {
				return fmt.Errorf("bad tenant option %q: %v", kv, err)
			}
			switch k {
			case "weight":
				tc.Weight = n
			case "priority":
				tc.Priority = n
			case "max_running":
				tc.MaxRunning = n
			case "max_queued":
				tc.MaxQueued = n
			default:
				return fmt.Errorf("unknown tenant option %q", k)
			}
		}
	}
	t[name] = tc
	return nil
}

func main() {
	tenants := tenantFlags{}
	var (
		httpAddr = flag.String("http", "127.0.0.1:7070", "HTTP API listen address")
		fleet    = flag.String("fleet", "127.0.0.1:0", "fleet RPC listen address (workers join here)")
		journal  = flag.String("journal", "", "JSONL job journal path (empty: in-memory queue only)")
		maxJobs  = flag.Int("max-jobs", 16, "max concurrently running jobs across all tenants")
		attempts = flag.Int("max-task-attempts", 4, "per-task attempt budget for every job")
		pprof    = flag.Bool("pprof", false, "expose /debug/pprof on the HTTP listener")
	)
	flag.Var(tenants, "tenant", "tenant policy, repeatable: name:weight=2,priority=1,max_running=4,max_queued=16")
	flag.Parse()

	srv, err := serve.New(serve.Config{
		Fleet:           cluster.FleetConfig{Addr: *fleet},
		Tenants:         tenants,
		MaxRunningJobs:  *maxJobs,
		MaxTaskAttempts: *attempts,
		JournalPath:     *journal,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "antserve:", err)
		os.Exit(1)
	}

	ln, err := net.Listen("tcp", *httpAddr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "antserve:", err)
		os.Exit(1)
	}
	hs := &http.Server{Handler: srv.Handler(*pprof)}
	fmt.Printf("antserve: http %s fleet %s\n", ln.Addr(), srv.FleetAddr())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()

	select {
	case <-ctx.Done():
		fmt.Fprintln(os.Stderr, "antserve: shutting down")
	case err := <-errc:
		fmt.Fprintln(os.Stderr, "antserve:", err)
	}
	sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	hs.Shutdown(sctx)
	if err := srv.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "antserve:", err)
		os.Exit(1)
	}
}
