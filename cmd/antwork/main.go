// Command antwork runs one fleet worker process: it registers with a
// fleet (a standalone coordinator or an antserve daemon), heartbeats,
// pulls task leases across every job the fleet runs, executes them
// against registry-built jobs, and serves its map output to peer
// workers over TCP. antibench spawns workers itself for local
// clusters; antwork exists for running workers under another
// supervisor or on another machine (point -data-addr at a routable
// interface so peers can fetch from it).
//
// SIGTERM (or the first SIGINT) drains gracefully: the worker
// announces the drain to the fleet, takes no new leases, finishes —
// or, after -drain-timeout, hands back — what it is running, then
// deregisters and exits 0. A second signal cancels hard (crash
// semantics: no parting report, the fleet recovers via heartbeats).
//
// Usage:
//
//	antwork -coordinator 127.0.0.1:41234 -slots 4
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"repro/internal/cluster"
	_ "repro/internal/experiments" // registers the experiment cluster jobs
)

func main() {
	var (
		coord    = flag.String("coordinator", "", "fleet RPC address (required)")
		slots    = flag.Int("slots", runtime.GOMAXPROCS(0), "concurrent task slots")
		data     = flag.String("data-addr", "127.0.0.1:0", "segment server bind address; use a routable host:0 to serve remote peers")
		drainTO  = flag.Duration("drain-timeout", 30*time.Second, "how long a drain lets running attempts finish before handing them back")
		compress = flag.Bool("wire-compress", true, "negotiate Snappy compression on shuffle fetches (output is identical; only bytes on the wire change)")
	)
	flag.Parse()
	if *coord == "" {
		fmt.Fprintln(os.Stderr, "antwork: -coordinator is required")
		flag.Usage()
		os.Exit(2)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	drain := make(chan struct{})
	sigs := make(chan os.Signal, 2)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sigs
		fmt.Fprintln(os.Stderr, "antwork: draining (signal again to exit immediately)")
		close(drain)
		<-sigs
		cancel()
	}()

	err := cluster.RunWorker(ctx, cluster.WorkerOptions{
		Coordinator:     *coord,
		Slots:           *slots,
		DataAddr:        *data,
		Drain:           drain,
		DrainTimeout:    *drainTO,
		WireCompression: *compress,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "antwork:", err)
		os.Exit(1)
	}
}
