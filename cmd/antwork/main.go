// Command antwork runs one cluster worker process: it registers with a
// coordinator, heartbeats, pulls task leases, executes them against the
// registry-built job, and serves its map output to peer workers over
// TCP. antibench spawns workers itself for local clusters; antwork
// exists for running workers under another supervisor or on another
// machine (point -data-addr at a routable interface so peers can fetch
// from it).
//
// Usage:
//
//	antwork -coordinator 127.0.0.1:41234 -slots 4
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"syscall"

	"repro/internal/cluster"
	_ "repro/internal/experiments" // registers the experiment cluster jobs
)

func main() {
	var (
		coord = flag.String("coordinator", "", "coordinator RPC address (required)")
		slots = flag.Int("slots", runtime.GOMAXPROCS(0), "concurrent task slots")
		data  = flag.String("data-addr", "127.0.0.1:0", "segment server bind address; use a routable host:0 to serve remote peers")
	)
	flag.Parse()
	if *coord == "" {
		fmt.Fprintln(os.Stderr, "antwork: -coordinator is required")
		flag.Usage()
		os.Exit(2)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	err := cluster.RunWorker(ctx, cluster.WorkerOptions{
		Coordinator: *coord,
		Slots:       *slots,
		DataAddr:    *data,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "antwork:", err)
		os.Exit(1)
	}
}
