// Command datagen writes the synthetic datasets standing in for the
// paper's inputs (QLog, RandomText, ClueWeb09-like graph, Cloud) to a
// file, one record per line, for inspection or external use.
//
// Usage:
//
//	datagen -dataset qlog -n 100000 -out qlog.tsv
//	datagen -dataset graph -n 50000 -out graph.adj
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"

	"repro/internal/datagen"
)

func main() {
	var (
		dataset = flag.String("dataset", "qlog", "dataset: qlog|randomtext|cloud|graph")
		n       = flag.Int("n", 10000, "number of records (nodes for graph)")
		seed    = flag.Uint64("seed", 2014, "generator seed")
		out     = flag.String("out", "-", "output file (- for stdout)")
	)
	flag.Parse()

	w := bufio.NewWriter(os.Stdout)
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "datagen: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		w = bufio.NewWriter(f)
	}
	defer w.Flush()

	switch *dataset {
	case "qlog":
		q := datagen.NewQueryLog(datagen.QueryLogConfig{Seed: *seed, Queries: *n})
		for i := 0; i < q.Len(); i++ {
			fmt.Fprintln(w, q.Record(i).Line())
		}
	case "randomtext":
		t := datagen.NewRandomText(datagen.RandomTextConfig{Seed: *seed, Lines: *n})
		for i := 0; i < t.Len(); i++ {
			fmt.Fprintln(w, t.Line(i))
		}
	case "cloud":
		c := datagen.NewCloud(datagen.CloudConfig{Seed: *seed, Records: *n})
		for i := 0; i < c.Len(); i++ {
			fmt.Fprintln(w, c.Record(i).Line())
		}
	case "graph":
		g := datagen.NewGraph(datagen.GraphConfig{Seed: *seed, Nodes: *n})
		for node, adj := range g.Out {
			line := strconv.Itoa(node)
			for _, dst := range adj {
				line += "\t" + strconv.Itoa(int(dst))
			}
			fmt.Fprintln(w, line)
		}
	default:
		fmt.Fprintf(os.Stderr, "datagen: unknown dataset %q\n", *dataset)
		os.Exit(2)
	}
}
