// Command antctl is the CLI for an antserve daemon: submit jobs, check
// status, tail progress, fetch output, cancel, and manage workers —
// all over the HTTP/JSON API.
//
// Usage:
//
//	antctl -server http://127.0.0.1:7070 submit -job exp/wordcount \
//	    -spec '{"Scale":0.1,"Splits":8,"Reducers":4}' -tenant analytics -wait
//	antctl pipeline -f spec.json -wait   # submit a dag pipeline from a spec file
//	antctl status           # list all jobs
//	antctl status -id 3     # one job, with progress
//	antctl tail -id 3       # follow SSE progress until done
//	antctl output -id 3     # print a finished job's output
//	antctl cancel -id 3
//	antctl workers
//	antctl drain -worker 1
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/serve"
)

func usage() {
	fmt.Fprintln(os.Stderr, `antctl: usage: antctl [-server URL] <command> [flags]
commands: submit, pipeline, status, tail, output, cancel, workers, drain, health`)
	os.Exit(2)
}

func main() {
	server := flag.String("server", "http://127.0.0.1:7070", "antserve base URL")
	flag.Parse()
	if flag.NArg() < 1 {
		usage()
	}
	c := serve.NewClient(*server)
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	cmd, args := flag.Arg(0), flag.Args()[1:]
	var err error
	switch cmd {
	case "submit":
		err = cmdSubmit(ctx, c, args)
	case "pipeline":
		err = cmdPipeline(ctx, c, args)
	case "status":
		err = cmdStatus(ctx, c, args)
	case "tail":
		err = cmdTail(ctx, c, args)
	case "output":
		err = cmdOutput(ctx, c, args)
	case "cancel":
		err = cmdCancel(ctx, c, args)
	case "workers":
		err = cmdWorkers(ctx, c)
	case "drain":
		err = cmdDrain(ctx, c, args)
	case "health":
		err = cmdHealth(ctx, c)
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "antctl:", err)
		os.Exit(1)
	}
}

func printJSON(v any) {
	b, _ := json.MarshalIndent(v, "", "  ")
	fmt.Println(string(b))
}

func cmdSubmit(ctx context.Context, c *serve.Client, args []string) error {
	fs := flag.NewFlagSet("submit", flag.ExitOnError)
	job := fs.String("job", "", "registry job name (required), e.g. exp/wordcount")
	spec := fs.String("spec", "", "JSON build spec for the job")
	tenant := fs.String("tenant", "", "tenant to account the job to")
	prio := fs.Int("priority", 0, "job priority (higher first; default: tenant's)")
	wait := fs.Bool("wait", false, "block until the job finishes; exit non-zero unless it succeeds")
	fs.Parse(args)
	if *job == "" {
		return fmt.Errorf("submit: -job is required")
	}
	req := serve.SubmitRequest{Name: *job, Spec: json.RawMessage(*spec), Tenant: *tenant}
	if *prio != 0 {
		req.Priority = prio
	}
	rec, err := c.Submit(ctx, req)
	if err != nil {
		return err
	}
	printJSON(rec)
	if !*wait {
		return nil
	}
	rec, err = c.WaitJob(ctx, rec.ID, 200*time.Millisecond)
	if err != nil {
		return err
	}
	printJSON(rec)
	if rec.State != serve.StateSucceeded {
		return fmt.Errorf("job %d %s: %s", rec.ID, rec.State, rec.Error)
	}
	return nil
}

// cmdPipeline submits a dag pipeline from a spec file. The file is a
// SubmitRequest: {"name": "pagerank-iter", "spec": {...}, "tenant": "..."} —
// name is the registered pipeline, spec its build parameters.
func cmdPipeline(ctx context.Context, c *serve.Client, args []string) error {
	fs := flag.NewFlagSet("pipeline", flag.ExitOnError)
	file := fs.String("f", "", "pipeline spec file (JSON SubmitRequest; required)")
	tenant := fs.String("tenant", "", "override the spec file's tenant")
	prio := fs.Int("priority", 0, "job priority (higher first; default: tenant's)")
	wait := fs.Bool("wait", false, "block until the pipeline finishes; exit non-zero unless it succeeds")
	fs.Parse(args)
	if *file == "" {
		return fmt.Errorf("pipeline: -f is required")
	}
	b, err := os.ReadFile(*file)
	if err != nil {
		return err
	}
	var req serve.SubmitRequest
	if err := json.Unmarshal(b, &req); err != nil {
		return fmt.Errorf("pipeline: parsing %s: %w", *file, err)
	}
	if req.Name == "" {
		return fmt.Errorf("pipeline: %s has no \"name\"", *file)
	}
	if *tenant != "" {
		req.Tenant = *tenant
	}
	if *prio != 0 {
		req.Priority = prio
	}
	rec, err := c.SubmitPipeline(ctx, req)
	if err != nil {
		return err
	}
	printJSON(rec)
	if !*wait {
		return nil
	}
	rec, err = c.WaitJob(ctx, rec.ID, 200*time.Millisecond)
	if err != nil {
		return err
	}
	printJSON(rec)
	if rec.State != serve.StateSucceeded {
		return fmt.Errorf("pipeline %d %s: %s", rec.ID, rec.State, rec.Error)
	}
	return nil
}

func cmdStatus(ctx context.Context, c *serve.Client, args []string) error {
	fs := flag.NewFlagSet("status", flag.ExitOnError)
	id := fs.Int("id", -1, "job id (default: list all)")
	tenant := fs.String("tenant", "", "list only one tenant's jobs")
	fs.Parse(args)
	if *id >= 0 {
		rec, err := c.Get(ctx, *id)
		if err != nil {
			return err
		}
		printJSON(rec)
		return nil
	}
	recs, err := c.List(ctx, *tenant)
	if err != nil {
		return err
	}
	for _, r := range recs {
		fmt.Printf("%4d  %-10s %-20s %-9s tasks %d/%d  %s\n",
			r.ID, r.Tenant, r.Name, r.State,
			r.Progress.TasksDone, r.Progress.TasksTotal, r.Error)
	}
	return nil
}

func cmdTail(ctx context.Context, c *serve.Client, args []string) error {
	fs := flag.NewFlagSet("tail", flag.ExitOnError)
	id := fs.Int("id", -1, "job id (required)")
	fs.Parse(args)
	if *id < 0 {
		return fmt.Errorf("tail: -id is required")
	}
	return c.Tail(ctx, *id, func(event string, snap serve.EventSnapshot) {
		p := snap.Job.Progress
		fmt.Printf("%s job %d %-9s maps %d/%d fetches %d/%d reduces %d/%d failures %d\n",
			event, snap.Job.ID, snap.Job.State,
			p.MapsDone, p.MapsTotal, p.FetchesDone, p.FetchesTotal,
			p.ReducesDone, p.ReducesTotal, p.FailedAttempts)
	})
}

func cmdOutput(ctx context.Context, c *serve.Client, args []string) error {
	fs := flag.NewFlagSet("output", flag.ExitOnError)
	id := fs.Int("id", -1, "job id (required)")
	fs.Parse(args)
	if *id < 0 {
		return fmt.Errorf("output: -id is required")
	}
	b, err := c.Output(ctx, *id)
	if err != nil {
		return err
	}
	os.Stdout.Write(b)
	return nil
}

func cmdCancel(ctx context.Context, c *serve.Client, args []string) error {
	fs := flag.NewFlagSet("cancel", flag.ExitOnError)
	id := fs.Int("id", -1, "job id (required)")
	fs.Parse(args)
	if *id < 0 {
		return fmt.Errorf("cancel: -id is required")
	}
	rec, err := c.Cancel(ctx, *id)
	if err != nil {
		return err
	}
	printJSON(rec)
	return nil
}

func cmdWorkers(ctx context.Context, c *serve.Client) error {
	ws, err := c.Workers(ctx)
	if err != nil {
		return err
	}
	for _, w := range ws {
		state := "live"
		if !w.Live {
			state = "dead"
		} else if w.Draining {
			state = "draining"
		}
		fmt.Printf("%4d  %-21s %-8s slots %d  running %d\n",
			w.ID, w.Addr, state, w.Slots, w.Outstanding)
	}
	return nil
}

func cmdDrain(ctx context.Context, c *serve.Client, args []string) error {
	fs := flag.NewFlagSet("drain", flag.ExitOnError)
	worker := fs.Int("worker", -1, "worker id (required)")
	fs.Parse(args)
	if *worker < 0 {
		return fmt.Errorf("drain: -worker is required")
	}
	if err := c.DrainWorker(ctx, *worker); err != nil {
		return err
	}
	fmt.Printf("worker %d draining\n", *worker)
	return nil
}

func cmdHealth(ctx context.Context, c *serve.Client) error {
	h, err := c.Healthz(ctx)
	if err != nil {
		return err
	}
	printJSON(h)
	return nil
}
