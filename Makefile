# Standard developer targets. `make verify` is the tier-1 gate plus
# vet and the race detector — run it before sending a change.

GO ?= go

.PHONY: build test vet staticcheck race verify bench bench-all test-short test-cluster test-chaos smoke-service smoke-pipeline

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# staticcheck is optional locally (CI installs it): skip with a notice
# when the binary is not on PATH.
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (go install honnef.co/go/tools/cmd/staticcheck@latest)"; \
	fi

race:
	$(GO) test -race ./...

verify: build vet staticcheck race

# Map-path benchmarks, published as BENCH_4.json (the baseline/default
# sub-benchmark pairs become speedup + allocation-reduction rows), the
# skew-partitioning benchmarks as BENCH_5.json (hash vs range vs
# split max/mean partition bytes via custom ReportMetric units), and
# the shuffle data-plane benchmarks as BENCH_7.json (raw vs sendfile
# vs compressed throughput with bytes-on-wire per op).
bench:
	$(GO) test -run '^$$' -bench 'BenchmarkMapBufferSpill|BenchmarkMapPathE2E|BenchmarkMergeIter' -benchmem ./internal/mr/ | tee /dev/stderr | $(GO) run ./cmd/benchjson -out BENCH_4.json
	$(GO) test -run '^$$' -bench 'BenchmarkSkewPartition' -benchmem ./internal/experiments/ | tee /dev/stderr | $(GO) run ./cmd/benchjson -out BENCH_5.json
	$(GO) test -run '^$$' -bench 'BenchmarkPipelineHandoff' -benchmem ./internal/experiments/ | tee /dev/stderr | $(GO) run ./cmd/benchjson -out BENCH_6.json
	$(GO) test -run '^$$' -bench 'BenchmarkShuffleDataPlane' -benchmem ./internal/mr/ | tee /dev/stderr | $(GO) run ./cmd/benchjson -out BENCH_7.json

# Every benchmark in the repository, human-readable.
bench-all:
	$(GO) test -bench=. -benchmem -run XXX ./...

# Everything except the subprocess-spawning cluster integration tests
# (they gate themselves on testing.Short).
test-short:
	$(GO) test -race -short ./...

# Cluster integration: subprocess workers, worker-kill recovery,
# byte-identical output vs the in-process engine.
test-cluster:
	$(GO) test -race -timeout 600s ./internal/cluster/

# Chaos soak: seeded deterministic fault injection over both engines.
# A failure prints its seed; replay one with
# `go test ./internal/chaos/ -run Soak -chaos-seed N`.
test-chaos:
	$(GO) test -race -timeout 600s ./internal/chaos/

# Service smoke: a real antserve daemon with two antwork workers,
# driven by antctl over the HTTP API — one job per tenant, quota
# enforcement, SIGTERM drain, clean shutdown.
smoke-service:
	./scripts/service_smoke.sh

# Pipeline smoke: submit the iterative-PageRank dag pipeline through
# antctl against a real antserve daemon with two workers.
smoke-pipeline:
	./scripts/pipeline_smoke.sh
