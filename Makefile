# Standard developer targets. `make verify` is the tier-1 gate plus
# vet and the race detector — run it before sending a change.

GO ?= go

.PHONY: build test vet race verify bench bench-all test-short test-cluster test-chaos smoke-service

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

verify: build vet race

# Map-path benchmarks, published as BENCH_4.json (the baseline/default
# sub-benchmark pairs become speedup + allocation-reduction rows), and
# the skew-partitioning benchmarks as BENCH_5.json (hash vs range vs
# split max/mean partition bytes via custom ReportMetric units).
bench:
	$(GO) test -run '^$$' -bench 'BenchmarkMapBufferSpill|BenchmarkMapPathE2E|BenchmarkMergeIter' -benchmem ./internal/mr/ | tee /dev/stderr | $(GO) run ./cmd/benchjson -out BENCH_4.json
	$(GO) test -run '^$$' -bench 'BenchmarkSkewPartition' -benchmem ./internal/experiments/ | tee /dev/stderr | $(GO) run ./cmd/benchjson -out BENCH_5.json

# Every benchmark in the repository, human-readable.
bench-all:
	$(GO) test -bench=. -benchmem -run XXX ./...

# Everything except the subprocess-spawning cluster integration tests
# (they gate themselves on testing.Short).
test-short:
	$(GO) test -race -short ./...

# Cluster integration: subprocess workers, worker-kill recovery,
# byte-identical output vs the in-process engine.
test-cluster:
	$(GO) test -race -timeout 600s ./internal/cluster/

# Chaos soak: seeded deterministic fault injection over both engines.
# A failure prints its seed; replay one with
# `go test ./internal/chaos/ -run Soak -chaos-seed N`.
test-chaos:
	$(GO) test -race -timeout 600s ./internal/chaos/

# Service smoke: a real antserve daemon with two antwork workers,
# driven by antctl over the HTTP API — one job per tenant, quota
# enforcement, SIGTERM drain, clean shutdown.
smoke-service:
	./scripts/service_smoke.sh
