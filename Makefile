# Standard developer targets. `make verify` is the tier-1 gate plus
# vet and the race detector — run it before sending a change.

GO ?= go

.PHONY: build test vet race verify bench

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

verify: build vet race

bench:
	$(GO) test -bench=. -benchmem -run XXX ./...
