package obs

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// Source produces a point-in-time view of one component's counters.
// Implementations must be safe to call concurrently with the component
// running (e.g. mr.Counters.Snapshot behind a closure). Keys should be
// stable snake_case metric names; values are monotonic counters or
// gauges.
type Source func() map[string]int64

// Registry merges independently owned metric sources — the engine's
// job counters (which themselves fold in the iokit disk meter and
// anticombine's extra counters), and anything else a caller registers —
// behind one labeled snapshot API. A nil *Registry is a valid disabled
// registry: Register and Snapshot are no-ops.
type Registry struct {
	mu      sync.Mutex
	seq     int
	sources []registered
}

type registered struct {
	id     int
	prefix string
	src    Source
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{} }

// Register adds a source under a name prefix; its metrics appear in
// snapshots as "<name>/<key>". Duplicate names are disambiguated with
// "#2", "#3", ... so successive jobs with the same name stay distinct.
// The returned func unregisters the source; sources left registered
// keep exposing their final values after the component finishes, which
// is what lets a live reporter's last line agree with a job's final
// Stats. No-op (returning a no-op func) on a nil registry.
func (r *Registry) Register(name string, src Source) (unregister func()) {
	if r == nil {
		return func() {}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.seq++
	id := r.seq
	prefix := name
	taken := func(p string) bool {
		for _, s := range r.sources {
			if s.prefix == p {
				return true
			}
		}
		return false
	}
	for n := 2; taken(prefix); n++ {
		prefix = fmt.Sprintf("%s#%d", name, n)
	}
	r.sources = append(r.sources, registered{id: id, prefix: prefix, src: src})
	return func() {
		r.mu.Lock()
		defer r.mu.Unlock()
		for i, s := range r.sources {
			if s.id == id {
				r.sources = append(r.sources[:i], r.sources[i+1:]...)
				return
			}
		}
	}
}

// MetricsSnapshot is one labeled point-in-time view of every source.
type MetricsSnapshot struct {
	// Time is when the snapshot was taken.
	Time time.Time `json:"ts"`
	// Values maps "<source>/<metric>" to its value.
	Values map[string]int64 `json:"values"`
}

// Keys returns the snapshot's metric names, sorted.
func (s MetricsSnapshot) Keys() []string {
	keys := make([]string, 0, len(s.Values))
	for k := range s.Values {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Snapshot reads every registered source. On a nil registry it returns
// an empty snapshot.
func (r *Registry) Snapshot() MetricsSnapshot {
	snap := MetricsSnapshot{Time: time.Now(), Values: map[string]int64{}}
	if r == nil {
		return snap
	}
	r.mu.Lock()
	sources := append([]registered(nil), r.sources...)
	r.mu.Unlock()
	for _, s := range sources {
		for k, v := range s.src() {
			snap.Values[s.prefix+"/"+k] = v
		}
	}
	return snap
}
