package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"
)

// chromeEvent is one entry of the Chrome trace-event format ("X" =
// complete event, "M" = metadata). Timestamps and durations are in
// microseconds relative to the trace origin, per the format spec.
type chromeEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat,omitempty"`
	Phase string         `json:"ph"`
	TS    float64        `json:"ts"`
	Dur   float64        `json:"dur,omitempty"`
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	Args  map[string]any `json:"args,omitempty"`
}

// WriteChromeTrace renders the tracer's spans as Chrome trace-event
// JSON (the array form), loadable in chrome://tracing and Perfetto.
// Spans are grouped by kind; within a kind, overlapping spans are
// packed onto separate lanes by a greedy interval assignment so
// concurrency is visible as vertically stacked rows. Each lane is a
// trace "thread" named after its kind, and kinds are ordered by the
// taxonomy (job, map, fetch, reduce, ...) so the pipeline reads top to
// bottom.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	return writeChromeTrace(w, t.Spans())
}

// kindRank orders the engine taxonomy in pipeline order; unknown kinds
// sort after, alphabetically.
func kindRank(kind string) int {
	switch kind {
	case KindJob:
		return 0
	case KindMap:
		return 1
	case KindSpill:
		return 2
	case KindCombine:
		return 3
	case KindFetch:
		return 4
	case KindReduce:
		return 5
	case KindSharedSpill:
		return 6
	case KindSharedMerge:
		return 7
	}
	return 8
}

func writeChromeTrace(w io.Writer, spans []Span) error {
	kinds := make(map[string][]Span)
	var order []string
	for _, s := range spans {
		if _, ok := kinds[s.Kind]; !ok {
			order = append(order, s.Kind)
		}
		kinds[s.Kind] = append(kinds[s.Kind], s)
	}
	sort.Slice(order, func(i, j int) bool {
		ri, rj := kindRank(order[i]), kindRank(order[j])
		if ri != rj {
			return ri < rj
		}
		return order[i] < order[j]
	})

	var origin time.Time
	for _, s := range spans {
		if origin.IsZero() || s.Start.Before(origin) {
			origin = s.Start
		}
	}

	var events []chromeEvent
	tid := 0
	for _, kind := range order {
		ks := kinds[kind]
		sort.SliceStable(ks, func(i, j int) bool { return ks[i].Start.Before(ks[j].Start) })
		// Greedy interval partitioning: each span takes the first lane
		// whose previous span has ended.
		var laneEnd []time.Time
		base := tid
		for _, s := range ks {
			lane := -1
			for l, end := range laneEnd {
				if !s.Start.Before(end) {
					lane = l
					break
				}
			}
			if lane == -1 {
				lane = len(laneEnd)
				laneEnd = append(laneEnd, time.Time{})
			}
			laneEnd[lane] = s.End
			args := make(map[string]any, len(s.Attrs))
			for _, a := range s.Attrs {
				args[a.Key] = a.Value
			}
			events = append(events, chromeEvent{
				Name:  s.Name,
				Cat:   s.Kind,
				Phase: "X",
				TS:    float64(s.Start.Sub(origin)) / float64(time.Microsecond),
				Dur:   float64(s.End.Sub(s.Start)) / float64(time.Microsecond),
				PID:   1,
				TID:   base + lane,
				Args:  args,
			})
		}
		for l := range laneEnd {
			name := kind
			if len(laneEnd) > 1 {
				name = fmt.Sprintf("%s %d", kind, l)
			}
			events = append(events, chromeEvent{
				Name:  "thread_name",
				Phase: "M",
				PID:   1,
				TID:   base + l,
				Args:  map[string]any{"name": name},
			})
		}
		tid += len(laneEnd)
	}

	enc := json.NewEncoder(w)
	return enc.Encode(events)
}
