package obs

import (
	"testing"
	"time"
)

// BenchmarkDisabledSpan measures the nil-sink fast path every
// instrumented call site pays when tracing is off: it must stay in the
// sub-nanosecond range so the engine's default (untraced) runs carry
// effectively zero overhead. Compare with BenchmarkEnabledSpan and the
// engine-level pair in internal/mr/mr_bench_test.go.
func BenchmarkDisabledSpan(b *testing.B) {
	var tr *Tracer
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := tr.Start(KindMap, "map/0")
		sp.End()
	}
}

// BenchmarkDisabledRecord measures the retroactive form's disabled path
// (what sched pays per attempt with no tracer configured).
func BenchmarkDisabledRecord(b *testing.B) {
	var tr *Tracer
	t0 := time.Now()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Record(KindMap, "map/0", t0, t0, Int("attempt", 0))
	}
}

func BenchmarkEnabledSpan(b *testing.B) {
	tr := NewTracer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := tr.Start(KindMap, "map/0")
		sp.End()
	}
}
