package obs

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// Reporter periodically snapshots a Registry and writes one JSON line
// per tick — the live-progress stream (records/sec, bytes shuffled,
// spills) a long job can be watched through. Stop writes a final line
// so the stream always ends with the job's final counter values.
type Reporter struct {
	w        io.Writer
	reg      *Registry
	interval time.Duration

	mu   sync.Mutex // serializes writes (tick goroutine vs Stop)
	prev MetricsSnapshot
	enc  *json.Encoder

	stop chan struct{}
	done chan struct{}
}

// reportLine is the JSONL schema: the raw labeled values plus per-key
// rates (delta per second since the previous line) for every metric
// that changed.
type reportLine struct {
	TS        time.Time          `json:"ts"`
	ElapsedMS int64              `json:"elapsed_ms"`
	Values    map[string]int64   `json:"values"`
	Rates     map[string]float64 `json:"rates,omitempty"`
}

// NewReporter starts reporting snapshots of reg to w every interval
// (default 1s when <= 0). Call Stop to flush the final line and halt.
func NewReporter(w io.Writer, reg *Registry, interval time.Duration) *Reporter {
	if interval <= 0 {
		interval = time.Second
	}
	r := &Reporter{
		w: w, reg: reg, interval: interval,
		enc:  json.NewEncoder(w),
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	r.prev = MetricsSnapshot{Time: time.Now()}
	go r.loop()
	return r
}

func (r *Reporter) loop() {
	defer close(r.done)
	t := time.NewTicker(r.interval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			r.report()
		case <-r.stop:
			return
		}
	}
}

// report writes one line; errors on the underlying writer are dropped
// (progress reporting must never fail the job).
func (r *Reporter) report() {
	snap := r.reg.Snapshot()
	r.mu.Lock()
	defer r.mu.Unlock()
	line := reportLine{
		TS:        snap.Time,
		ElapsedMS: snap.Time.Sub(r.prev.Time).Milliseconds(),
		Values:    snap.Values,
	}
	if dt := snap.Time.Sub(r.prev.Time).Seconds(); dt > 0 {
		for k, v := range snap.Values {
			if d := v - r.prev.Values[k]; d != 0 {
				if line.Rates == nil {
					line.Rates = map[string]float64{}
				}
				line.Rates[k] = float64(d) / dt
			}
		}
	}
	_ = r.enc.Encode(line)
	r.prev = snap
}

// Stop halts the tick loop, writes one final snapshot line, and waits
// for the reporter goroutine to exit. Safe to call once.
func (r *Reporter) Stop() {
	close(r.stop)
	<-r.done
	r.report()
}
