package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilSinkIsSafe(t *testing.T) {
	var tr *Tracer
	tr.Record(KindMap, "map/0", time.Now(), time.Now(), Int("attempt", 0))
	sp := tr.Start(KindJob, "job")
	if sp != nil {
		t.Fatalf("nil tracer Start = %v, want nil", sp)
	}
	sp.Annotate(Str("k", "v"))
	sp.End()
	if got := tr.Spans(); got != nil {
		t.Fatalf("nil tracer Spans = %v, want nil", got)
	}

	var reg *Registry
	unreg := reg.Register("x", func() map[string]int64 { return nil })
	unreg()
	if snap := reg.Snapshot(); len(snap.Values) != 0 {
		t.Fatalf("nil registry snapshot = %v, want empty", snap.Values)
	}
}

func TestTracerRecordsSpans(t *testing.T) {
	tr := NewTracer()
	sp := tr.Start(KindMap, "map/0", Int("attempt", 0))
	sp.Annotate(Bool("speculative", false))
	sp.End(Str("outcome", "success"))
	t0 := time.Now()
	tr.Record(KindSharedSpill, "spill0", t0, t0.Add(time.Millisecond), Int("bytes", 42))

	spans := tr.Spans()
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
	s := spans[0]
	if s.Kind != KindMap || s.Name != "map/0" {
		t.Fatalf("span 0 = %+v", s)
	}
	if s.Attr("attempt") != "0" || s.Attr("speculative") != "false" || s.Attr("outcome") != "success" {
		t.Fatalf("span 0 attrs = %v", s.Attrs)
	}
	if s.Attr("missing") != "" {
		t.Fatalf("missing attr should be empty")
	}
	if spans[1].Duration() != time.Millisecond {
		t.Fatalf("span 1 duration = %v", spans[1].Duration())
	}
}

func TestTracerConcurrent(t *testing.T) {
	tr := NewTracer()
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				tr.Start(KindFetch, "f").End()
			}
		}()
	}
	wg.Wait()
	if got := len(tr.Spans()); got != 1600 {
		t.Fatalf("got %d spans, want 1600", got)
	}
}

func TestOverlap(t *testing.T) {
	t0 := time.Unix(0, 0)
	spans := []Span{
		{Kind: KindMap, Start: t0, End: t0.Add(100 * time.Millisecond)},
		{Kind: KindFetch, Start: t0.Add(60 * time.Millisecond), End: t0.Add(160 * time.Millisecond)},
		{Kind: KindReduce, Start: t0.Add(200 * time.Millisecond), End: t0.Add(300 * time.Millisecond)},
	}
	if got := Overlap(spans, KindMap, KindFetch); got != 40*time.Millisecond {
		t.Fatalf("map/fetch overlap = %v, want 40ms", got)
	}
	if got := Overlap(spans, KindMap, KindReduce); got != 0 {
		t.Fatalf("map/reduce overlap = %v, want 0", got)
	}
	if got := Overlap(spans, KindMap, "absent"); got != 0 {
		t.Fatalf("overlap with absent kind = %v, want 0", got)
	}
}

func TestChromeTraceExport(t *testing.T) {
	tr := NewTracer()
	t0 := time.Now()
	// Two overlapping map spans must land on distinct lanes; the fetch
	// span gets its own thread block.
	tr.Record(KindMap, "map/0", t0, t0.Add(10*time.Millisecond), Int("attempt", 0))
	tr.Record(KindMap, "map/1", t0.Add(time.Millisecond), t0.Add(8*time.Millisecond))
	tr.Record(KindFetch, "fetch/0/0", t0.Add(5*time.Millisecond), t0.Add(12*time.Millisecond))

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("trace is not valid JSON: %v\n%s", err, buf.String())
	}
	var complete, meta int
	tids := map[string]float64{}
	for _, e := range events {
		switch e["ph"] {
		case "X":
			complete++
			tids[e["name"].(string)] = e["tid"].(float64)
		case "M":
			meta++
		}
	}
	if complete != 3 {
		t.Fatalf("got %d complete events, want 3", complete)
	}
	if meta != 3 { // map lane 0, map lane 1, fetch lane
		t.Fatalf("got %d metadata events, want 3", meta)
	}
	if tids["map/0"] == tids["map/1"] {
		t.Fatalf("overlapping map spans share tid %v", tids["map/0"])
	}
	if tids["fetch/0/0"] == tids["map/0"] || tids["fetch/0/0"] == tids["map/1"] {
		t.Fatalf("fetch span shares a map lane")
	}
}

func TestRegistrySnapshotMergesAndPrefixes(t *testing.T) {
	reg := NewRegistry()
	unregA := reg.Register("job", func() map[string]int64 { return map[string]int64{"records": 10} })
	reg.Register("job", func() map[string]int64 { return map[string]int64{"records": 20} })

	snap := reg.Snapshot()
	if snap.Values["job/records"] != 10 || snap.Values["job#2/records"] != 20 {
		t.Fatalf("snapshot = %v", snap.Values)
	}
	if got := snap.Keys(); len(got) != 2 || got[0] != "job#2/records" && got[0] != "job/records" {
		t.Fatalf("keys = %v", got)
	}

	unregA()
	snap = reg.Snapshot()
	if _, ok := snap.Values["job/records"]; ok {
		t.Fatalf("unregistered source still present: %v", snap.Values)
	}
	if snap.Values["job#2/records"] != 20 {
		t.Fatalf("surviving source lost: %v", snap.Values)
	}
}

func TestReporterWritesJSONLines(t *testing.T) {
	var n int64
	reg := NewRegistry()
	reg.Register("job", func() map[string]int64 {
		n += 5
		return map[string]int64{"records": n}
	})
	var buf bytes.Buffer
	rep := NewReporter(&buf, reg, 5*time.Millisecond)
	time.Sleep(30 * time.Millisecond)
	rep.Stop()

	sc := bufio.NewScanner(strings.NewReader(buf.String()))
	var lines int
	var last int64
	for sc.Scan() {
		var line struct {
			Values map[string]int64   `json:"values"`
			Rates  map[string]float64 `json:"rates"`
		}
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatalf("line %d is not JSON: %v\n%s", lines, err, sc.Text())
		}
		v := line.Values["job/records"]
		if v < last {
			t.Fatalf("values not monotonic: %d after %d", v, last)
		}
		if line.Rates["job/records"] <= 0 {
			t.Fatalf("rate missing for growing counter: %v", line.Rates)
		}
		last = v
		lines++
	}
	if lines < 2 {
		t.Fatalf("got %d report lines, want >= 2 (ticks + final)", lines)
	}
}
