// Package obs is the engine's observability layer: typed trace spans,
// a unified live-metrics registry, and a periodic progress reporter.
//
// The span tracer generalizes the scheduler's per-attempt timeline
// (sched.Attempt) into a shared sink every layer can feed — the engine,
// the task scheduler, the shuffle transport, and anticombine's Shared
// structure all emit spans into one Tracer, and the result exports as
// Chrome trace-event JSON loadable in chrome://tracing or Perfetto, so
// a run's pipelined overlap is visually inspectable rather than only
// derivable from aggregate counters.
//
// Every entry point is nil-safe: a nil *Tracer, *SpanRef, or *Registry
// turns the corresponding call into a no-op without branching at call
// sites, so the disabled path costs one pointer compare and production
// code paths carry no "if tracing" clutter.
package obs

import (
	"strconv"
	"sync"
	"time"
)

// Span kinds used by the engine. The tracer itself treats kinds as
// opaque strings; these constants are the taxonomy the MapReduce layers
// emit. Scheduler-driven attempt spans use the task's timeline group
// ("map", "fetch", "reduce") as their kind, so the trace vocabulary
// matches Result.Timeline.
const (
	// KindJob covers one engine Run from submit to final stats.
	KindJob = "job"
	// KindMap / KindFetch / KindReduce are per-attempt task spans.
	KindMap    = "map"
	KindFetch  = "fetch"
	KindReduce = "reduce"
	// KindCombine covers one combiner pass over a sorted run or merge.
	KindCombine = "combine"
	// KindSpill covers one map-side sort-and-spill: partition bucketing,
	// the in-bucket key sort, and the per-partition run writes. Its
	// "parallelism" attribute records the Job.SpillParallelism the spill
	// ran under.
	KindSpill = "spill"
	// KindSharedSpill / KindSharedMerge cover anticombine.Shared writing
	// a spill run and merging accumulated runs.
	KindSharedSpill = "shared-spill"
	KindSharedMerge = "shared-merge"
	// Cluster-runtime spans: KindWorker covers one worker's lifetime in
	// the coordinator's view (register to death/shutdown), KindHeartbeat
	// a missed-heartbeat detection event, KindLease one task lease from
	// grant to report, and KindReexec the scheduler re-executing an
	// already-committed task because its output was lost with a worker.
	KindWorker    = "worker"
	KindHeartbeat = "heartbeat"
	KindLease     = "lease"
	KindReexec    = "re-execute"
	// KindChaos marks one injected fault from the chaos harness
	// (internal/chaos): a zero-length span whose attributes identify the
	// layer, operation, and fault kind, so a failing seed's schedule is
	// reconstructable from the trace alone.
	KindChaos = "chaos"
	// Pipeline-runner spans (internal/dag): KindPipeline covers one
	// pipeline run end to end, KindStage one stage job attempt within an
	// iteration.
	KindPipeline = "pipeline"
	KindStage    = "stage"
)

// Attr is one key-value annotation on a span.
type Attr struct {
	Key   string
	Value string
}

// Str builds a string attribute.
func Str(key, value string) Attr { return Attr{Key: key, Value: value} }

// Int builds an integer attribute.
func Int(key string, value int64) Attr {
	return Attr{Key: key, Value: strconv.FormatInt(value, 10)}
}

// Bool builds a boolean attribute.
func Bool(key string, value bool) Attr {
	return Attr{Key: key, Value: strconv.FormatBool(value)}
}

// Span is one completed traced interval.
type Span struct {
	// Kind classifies the span (see the Kind constants).
	Kind string
	// Name identifies the specific operation, e.g. "map/3" or a spill
	// file name.
	Name string
	// Start / End bound the interval.
	Start time.Time
	End   time.Time
	// Attrs carries key-value annotations (attempt number, byte counts,
	// outcome, ...).
	Attrs []Attr
}

// Duration is the span's length.
func (s Span) Duration() time.Duration { return s.End.Sub(s.Start) }

// Attr returns the value of a named attribute, or "" when absent.
func (s Span) Attr(key string) string {
	for _, a := range s.Attrs {
		if a.Key == key {
			return a.Value
		}
	}
	return ""
}

// Tracer collects spans from concurrently running tasks. A nil Tracer
// is a valid disabled sink: Start returns nil and Record does nothing.
type Tracer struct {
	mu    sync.Mutex
	spans []Span
}

// NewTracer returns an empty enabled tracer.
func NewTracer() *Tracer { return &Tracer{} }

// Record appends one already-measured span, the retroactive form used
// by layers that have their own timestamps (e.g. the scheduler's
// completion events). No-op on a nil tracer.
func (t *Tracer) Record(kind, name string, start, end time.Time, attrs ...Attr) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.spans = append(t.spans, Span{Kind: kind, Name: name, Start: start, End: end, Attrs: attrs})
	t.mu.Unlock()
}

// Start opens a live span ending when End is called on the returned
// ref. On a nil tracer it returns nil, and a nil *SpanRef's End is a
// no-op, so the disabled path is two pointer compares.
func (t *Tracer) Start(kind, name string, attrs ...Attr) *SpanRef {
	if t == nil {
		return nil
	}
	return &SpanRef{t: t, kind: kind, name: name, start: time.Now(), attrs: attrs}
}

// Spans returns a copy of all recorded spans.
func (t *Tracer) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Span, len(t.spans))
	copy(out, t.spans)
	return out
}

// SpanRef is an open span started by Tracer.Start.
type SpanRef struct {
	t     *Tracer
	kind  string
	name  string
	start time.Time
	attrs []Attr
}

// Annotate adds attributes to the open span. No-op on nil.
func (s *SpanRef) Annotate(attrs ...Attr) {
	if s == nil {
		return
	}
	s.attrs = append(s.attrs, attrs...)
}

// End closes the span and records it, appending any final attributes.
// No-op on nil.
func (s *SpanRef) End(attrs ...Attr) {
	if s == nil {
		return
	}
	s.t.Record(s.kind, s.name, s.start, time.Now(), append(s.attrs, attrs...)...)
}

// SpanExtent reports the wall-clock interval covered by spans of one
// kind: earliest start to latest end. ok is false when no span of the
// kind exists.
func SpanExtent(spans []Span, kind string) (start, end time.Time, ok bool) {
	for _, s := range spans {
		if s.Kind != kind {
			continue
		}
		if !ok || s.Start.Before(start) {
			start = s.Start
		}
		if !ok || s.End.After(end) {
			end = s.End
		}
		ok = true
	}
	return start, end, ok
}

// Overlap reports how long the extents of two span kinds intersected —
// e.g. Overlap(spans, KindMap, KindFetch) > 0 proves shuffle fetches
// ran while map tasks were still executing. It is the span analogue of
// sched.Overlap over Result.Timeline.
func Overlap(spans []Span, kindA, kindB string) time.Duration {
	aStart, aEnd, ok := SpanExtent(spans, kindA)
	if !ok {
		return 0
	}
	bStart, bEnd, ok := SpanExtent(spans, kindB)
	if !ok {
		return 0
	}
	start, end := aStart, aEnd
	if bStart.After(start) {
		start = bStart
	}
	if bEnd.Before(end) {
		end = bEnd
	}
	if d := end.Sub(start); d > 0 {
		return d
	}
	return 0
}
