package dag

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/mr"
	"repro/internal/obs"
	"repro/internal/sched"
)

// Config tunes one pipeline run.
type Config struct {
	// Engine executes the stage jobs (InProcess or FleetEngine).
	Engine Engine
	// Tracer receives pipeline and stage spans (nil-safe).
	Tracer *obs.Tracer
	// MaxStageAttempts caps attempts per stage per iteration, counting
	// retries but not lost-input re-executions (default 1). Re-running a
	// producing stage because its handoff died follows sched's
	// DepLostError path and never charges this budget.
	MaxStageAttempts int
}

// StageStat logs one successful stage job run.
type StageStat struct {
	Iter    int           `json:"iter"`
	Stage   string        `json:"stage"`
	Attempt int           `json:"attempt"`
	Kept    bool          `json:"kept"`
	Wall    time.Duration `json:"wall_ns"`
	// ShuffleBytes is the stage job's own shuffle volume (post-codec).
	ShuffleBytes int64 `json:"shuffle_bytes"`
	// MeasuredBytes is the real network transfer on a fleet, 0 in process.
	MeasuredBytes int64 `json:"measured_bytes"`
	OutputRecords int64 `json:"output_records"`
}

// Result is a finished pipeline run.
type Result struct {
	// Iterations actually executed (≤ MaxIters; fewer when Until fired).
	Iterations int
	// Output is the Output stage's final per-partition records.
	Output [][]mr.Record
	// Stats accumulates the committed stage jobs' stats.
	Stats mr.Stats
	// Stages logs every successful stage job run in completion order.
	Stages []StageStat
	// DriverBytes counts record bytes that crossed the driver boundary:
	// inline inputs shipped in, terminal and collected outputs shipped
	// back. The re-spill traffic a naive job-per-stage chain pays — every
	// stage's full output in and out — shows up here.
	DriverBytes int64
}

// Run executes the pipeline over inputs (pre-partitioned: one record
// slice per map task of the From=="" stages) until Until fires or
// MaxIters is reached. Stage outputs flow engine-side between stages;
// only terminal stages' records visit the driver.
func Run(ctx context.Context, p *Pipeline, inputs [][]mr.Record, cfg Config) (*Result, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if cfg.Engine == nil {
		return nil, errors.New("dag: no engine configured")
	}
	maxIters := p.MaxIters
	if maxIters <= 0 {
		maxIters = 1
	}
	maxAttempts := cfg.MaxStageAttempts
	if maxAttempts <= 0 {
		maxAttempts = 1
	}

	span := cfg.Tracer.Start(obs.KindPipeline, p.Name,
		obs.Int("stages", int64(len(p.Stages))), obs.Int("max_iters", int64(maxIters)))

	res := &Result{}
	var mu sync.Mutex // guards outstanding and res.Stages during an iteration
	outstanding := make(map[*StageResult]struct{})
	release := func(sr *StageResult) {
		if sr == nil {
			return
		}
		mu.Lock()
		_, held := outstanding[sr]
		delete(outstanding, sr)
		mu.Unlock()
		if held {
			cfg.Engine.Release(sr)
		}
	}
	// Failure backstop: whatever the runner still holds — kept handoffs,
	// retained worker workspaces — is swept on every exit path, so a
	// permanently failed downstream stage cannot leak its upstreams'
	// intermediate files.
	defer func() {
		mu.Lock()
		held := make([]*StageResult, 0, len(outstanding))
		for sr := range outstanding {
			held = append(held, sr)
		}
		mu.Unlock()
		for _, sr := range held {
			release(sr)
		}
	}()

	var carry *StageResult
	for iter := 0; iter < maxIters; iter++ {
		iter := iter
		var created []*StageResult
		tasks := make([]sched.Task, 0, len(p.Stages))
		for si := range p.Stages {
			s := &p.Stages[si]
			var deps []string
			if s.From != "" {
				deps = []string{s.From}
			}
			keep := p.kept(s.Name)
			tasks = append(tasks, sched.Task{
				Name: s.Name, Group: "stage", Deps: deps,
				Run: func(ctx context.Context, tc *sched.TaskContext) (any, error) {
					run := StageRun{Pipeline: p.Name, Stage: s, Iter: iter, Keep: keep}
					switch {
					case s.From != "":
						in, ok := tc.Dep(s.From).(*StageResult)
						if !ok {
							return nil, fmt.Errorf("dag: stage %q missing input from %q", s.Name, s.From)
						}
						run.Input = in
					case carry != nil:
						run.Input = carry
					default:
						run.Inline = inputs
						mu.Lock()
						res.DriverBytes += partsBytes(inputs)
						mu.Unlock()
					}
					sp := cfg.Tracer.Start(obs.KindStage,
						fmt.Sprintf("%s/%s", p.Name, s.Name),
						obs.Int("iter", int64(iter)), obs.Int("attempt", int64(tc.Attempt)))
					t0 := time.Now()
					sr, err := cfg.Engine.RunStage(ctx, run)
					if err != nil {
						sp.End(obs.Str("outcome", "failed"), obs.Str("err", err.Error()))
						if errors.Is(err, ErrInputLost) && s.From != "" {
							// The upstream stage's retained output is gone;
							// re-running it (and then this stage) is sched's
							// DepLostError protocol, budget-free like any
							// other lost-output re-execution.
							return nil, &sched.DepLostError{Deps: []string{s.From}, Err: err}
						}
						return nil, err
					}
					sp.End(obs.Str("outcome", "success"),
						obs.Int("shuffle_bytes", sr.Stats.ShuffleBytes))
					stat := StageStat{
						Iter: iter, Stage: s.Name, Attempt: tc.Attempt, Kept: keep,
						Wall: time.Since(t0), ShuffleBytes: sr.Stats.ShuffleBytes,
						OutputRecords: sr.Stats.ReduceOutputRecords,
					}
					if sr.Measured != nil {
						stat.MeasuredBytes = sr.Measured.Bytes
					}
					mu.Lock()
					created = append(created, sr)
					outstanding[sr] = struct{}{}
					res.Stages = append(res.Stages, stat)
					mu.Unlock()
					return sr, nil
				},
			})
		}
		// Lost-input re-execution gets its own budget on top of the retry
		// cap: a stage whose handoff died with its worker re-runs even
		// when stage retries are disabled.
		scfg := sched.Config{Workers: len(tasks), MaxAttempts: maxAttempts, MaxReexecs: maxAttempts + 2}
		if maxAttempts > 1 {
			scfg.Retryable = func(err error) bool {
				return !errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded)
			}
		}
		report, err := sched.Run(ctx, tasks, scfg)
		if err != nil {
			span.End(obs.Str("outcome", "failed"), obs.Str("err", err.Error()))
			return nil, err
		}
		res.Iterations = iter + 1

		terminal := make(map[string][][]mr.Record)
		for _, s := range p.Stages {
			sr := report.Value(s.Name).(*StageResult)
			res.Stats.Accumulate(sr.Stats)
			if !p.kept(s.Name) {
				terminal[s.Name] = sr.Records
				mu.Lock()
				res.DriverBytes += partsBytes(sr.Records)
				mu.Unlock()
			}
		}

		var newCarry *StageResult
		if p.Carry != "" {
			newCarry = report.Value(p.Carry).(*StageResult)
		}
		done := iter == maxIters-1
		if p.Until != nil {
			stop, err := p.Until(iter, terminal)
			if err != nil {
				span.End(obs.Str("outcome", "failed"), obs.Str("err", err.Error()))
				return nil, err
			}
			done = done || stop
		}
		if done {
			if p.Output != "" {
				osr := report.Value(p.Output).(*StageResult)
				if osr.Records != nil {
					res.Output = osr.Records
				} else {
					out, err := cfg.Engine.Collect(ctx, osr)
					if err != nil {
						span.End(obs.Str("outcome", "failed"), obs.Str("err", err.Error()))
						return nil, err
					}
					res.Output = out
					mu.Lock()
					res.DriverBytes += partsBytes(out)
					mu.Unlock()
				}
			}
			break
		}
		// Iteration k is committed: everything produced this round except
		// the carry is dead, as is iteration k-1's carry (kept alive until
		// now so a lost-input re-run of a From=="" stage could re-read it).
		mu.Lock()
		toFree := make([]*StageResult, 0, len(created))
		for _, sr := range created {
			if sr != newCarry {
				toFree = append(toFree, sr)
			}
		}
		mu.Unlock()
		for _, sr := range toFree {
			release(sr)
		}
		if carry != nil && carry != newCarry {
			release(carry)
		}
		carry = newCarry
	}

	span.End(obs.Str("outcome", "success"),
		obs.Int("iterations", int64(res.Iterations)),
		obs.Int("driver_bytes", res.DriverBytes))
	return res, nil
}

// partsBytes sums key+value bytes across partitioned records.
func partsBytes(parts [][]mr.Record) int64 {
	var n int64
	for _, part := range parts {
		for _, r := range part {
			n += int64(len(r.Key) + len(r.Value))
		}
	}
	return n
}
