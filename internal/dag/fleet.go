package dag

import (
	"context"
	"errors"
	"fmt"
	"io"

	"repro/internal/bytesx"
	"repro/internal/cluster"
	"repro/internal/mr"
)

// FleetEngine runs stage jobs on a cluster.Fleet. Kept stages submit
// with KeepOutput+RetainWorkspace: reduce output stays on the workers
// as handoff record files, and the next stage's map leases are pinned
// to the holding workers (with the previous stage's partition homes
// seeding placement), so stage-to-stage data moves zero bytes in the
// steady state. A handoff that died with its worker surfaces as
// ErrInputLost, which the runner converts into a re-run of the
// producing stage.
type FleetEngine struct {
	Fleet *cluster.Fleet
	// Tenant is the fair-share bucket stage jobs run under (default:
	// the pipeline name).
	Tenant string
	// Weight and Priority are passed through to each stage job's spec,
	// so a pipeline competes for task leases like any other tenant work.
	Weight   int
	Priority int
	// MaxTaskAttempts is passed through to each stage job's spec.
	MaxTaskAttempts int

	pool *mr.ConnPool
}

// NewFleetEngine wraps a fleet for pipeline execution.
func NewFleetEngine(f *cluster.Fleet) *FleetEngine {
	return &FleetEngine{Fleet: f, pool: mr.NewConnPool()}
}

// Close releases the engine's collection connections.
func (e *FleetEngine) Close() {
	if e.pool != nil {
		e.pool.Close()
	}
}

// fleetKept locates a kept stage's output: the finished job whose
// retained workspace holds the handoff files, and where each
// partition landed.
type fleetKept struct {
	jobID    int
	handoffs map[int]cluster.Handoff
	homes    map[int]int
}

// RunStage implements Engine.
func (e *FleetEngine) RunStage(ctx context.Context, run StageRun) (*StageResult, error) {
	if run.Stage.Ref == nil {
		return nil, fmt.Errorf("dag: stage %q has no Ref (fleet engine)", run.Stage.Name)
	}
	tenant := e.Tenant
	if tenant == "" {
		tenant = run.Pipeline
	}
	spec := cluster.JobSpec{
		Ref:             run.Stage.Ref(run.Iter),
		Tenant:          tenant,
		Weight:          e.Weight,
		Priority:        e.Priority,
		MaxTaskAttempts: e.MaxTaskAttempts,
		KeepOutput:      run.Keep,
		RetainWorkspace: run.Keep,
	}
	if run.Input != nil {
		k, ok := run.Input.kept.(*fleetKept)
		if !ok {
			return nil, fmt.Errorf("dag: stage %q input was not kept on this fleet", run.Stage.Name)
		}
		spec.Homes = k.homes
		spec.Inputs = make([]cluster.StageInput, run.Input.Partitions)
		for p := 0; p < run.Input.Partitions; p++ {
			h, ok := k.handoffs[p]
			if !ok {
				return nil, fmt.Errorf("%w: stage %q has no handoff for partition %d",
					ErrInputLost, run.Stage.From, p)
			}
			seg := h.Seg
			spec.Inputs[p] = cluster.StageInput{Handoff: &seg, Worker: h.Worker}
		}
	} else {
		spec.Inputs = make([]cluster.StageInput, len(run.Inline))
		for i, part := range run.Inline {
			spec.Inputs[i] = cluster.StageInput{Records: part}
		}
	}
	h, err := e.Fleet.Submit(ctx, spec)
	if err != nil {
		return nil, err
	}
	res, err := h.Wait(ctx)
	if err != nil {
		if run.Keep {
			// The failed job's workspace was retained; nothing downstream
			// will ever read it, so sweep it now.
			e.Fleet.ReleaseWorkspace(h.ID())
		}
		if errors.Is(err, cluster.ErrHandoffLost) {
			return nil, fmt.Errorf("%w: %v", ErrInputLost, err)
		}
		return nil, err
	}
	sr := &StageResult{
		Stats:      res.Stats,
		Partitions: len(res.Output),
		Measured:   res.MeasuredShuffle,
	}
	if run.Keep {
		sr.kept = &fleetKept{jobID: h.ID(), handoffs: h.Handoffs(), homes: h.Homes()}
	} else {
		sr.Records = res.Output
	}
	return sr, nil
}

// Collect implements Engine: pull each partition's handoff file from
// its worker's segment server and decode the framed records.
func (e *FleetEngine) Collect(ctx context.Context, res *StageResult) ([][]mr.Record, error) {
	if res.Records != nil {
		return res.Records, nil
	}
	k, ok := res.kept.(*fleetKept)
	if !ok {
		return nil, fmt.Errorf("dag: result was not kept on this fleet")
	}
	out := make([][]mr.Record, res.Partitions)
	for p := 0; p < res.Partitions; p++ {
		h, ok := k.handoffs[p]
		if !ok {
			return nil, fmt.Errorf("%w: no handoff for partition %d", ErrInputLost, p)
		}
		recs, err := e.fetchRecords(ctx, h.Seg.Addr, h.Seg.File)
		if err != nil {
			return nil, err
		}
		out[p] = recs
	}
	return out, nil
}

func (e *FleetEngine) fetchRecords(ctx context.Context, addr, file string) ([]mr.Record, error) {
	rc, _, err := e.pool.Fetch(ctx, addr, file)
	if err != nil {
		return nil, fmt.Errorf("dag: collecting %s from %s: %w", file, addr, err)
	}
	defer rc.Close()
	var recs []mr.Record
	r := bytesx.NewReader(rc)
	for {
		key, value, err := r.ReadRecord()
		if err == io.EOF {
			return recs, nil
		}
		if err != nil {
			return nil, fmt.Errorf("dag: decoding %s from %s: %w", file, addr, err)
		}
		recs = append(recs, mr.Record{
			Key:   append([]byte(nil), key...),
			Value: append([]byte(nil), value...),
		})
	}
}

// Release implements Engine: sweep a kept result's retained job
// workspace across the fleet's workers.
func (e *FleetEngine) Release(res *StageResult) {
	if k, ok := res.kept.(*fleetKept); ok {
		e.Fleet.ReleaseWorkspace(k.jobID)
		res.kept = nil
	}
}
