package dag

import (
	"fmt"
	"sync"

	"repro/internal/mr"
)

// The pipeline registry mirrors cluster's job registry: named builders
// turn an opaque spec into a Pipeline plus its initial inputs, so a
// job service can admit and run pipelines from a wire reference
// without shipping closures. Builders must be deterministic in the
// spec, and every stage they produce must register its per-iteration
// cluster jobs too when the pipeline is meant to run on a fleet.
var (
	regMu    sync.RWMutex
	builders = make(map[string]func(spec []byte) (*Pipeline, [][]mr.Record, error))
)

// RegisterPipeline installs a pipeline builder under name. Duplicate
// registration panics, matching cluster.RegisterJob.
func RegisterPipeline(name string, build func(spec []byte) (*Pipeline, [][]mr.Record, error)) {
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := builders[name]; dup {
		panic(fmt.Sprintf("dag: pipeline %q registered twice", name))
	}
	builders[name] = build
}

// BuildPipeline materializes a registered pipeline from its spec.
func BuildPipeline(name string, spec []byte) (*Pipeline, [][]mr.Record, error) {
	regMu.RLock()
	build := builders[name]
	regMu.RUnlock()
	if build == nil {
		return nil, nil, fmt.Errorf("dag: no pipeline registered as %q", name)
	}
	return build(spec)
}

// ValidatePipeline checks that a reference builds a well-formed
// pipeline without running it — admission-time validation for job
// services. fleet additionally requires every stage to carry a fleet
// job reference.
func ValidatePipeline(name string, spec []byte, fleet bool) error {
	p, _, err := BuildPipeline(name, spec)
	if err != nil {
		return err
	}
	if err := p.Validate(); err != nil {
		return err
	}
	for _, s := range p.Stages {
		if fleet && s.Ref == nil {
			return fmt.Errorf("dag: pipeline %q stage %q cannot run on a fleet (no job ref)", name, s.Name)
		}
		if !fleet && s.Build == nil {
			return fmt.Errorf("dag: pipeline %q stage %q cannot run in process (no builder)", name, s.Name)
		}
	}
	return nil
}
