package dag

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/iokit"
	"repro/internal/mr"
)

// StageRun describes one stage job execution to an engine.
type StageRun struct {
	Pipeline string
	Stage    *Stage
	Iter     int
	// Input is the upstream stage's result; nil when Inline carries the
	// pipeline's initial records instead.
	Input  *StageResult
	Inline [][]mr.Record
	// Keep asks the engine to retain the stage's partitioned output for
	// downstream consumption instead of collecting records.
	Keep bool
}

// StageResult is one stage job's outcome. Kept results hold their
// output engine-side (in-memory partitions in process, worker handoff
// files on a fleet); collected results carry Records.
type StageResult struct {
	Stats      mr.Stats
	Partitions int
	// Records is the per-partition output when the stage was collected
	// (Keep=false); nil for kept results.
	Records [][]mr.Record
	// Measured is the real network transfer when the stage ran on a
	// fleet, nil otherwise.
	Measured *mr.ShuffleMeasurement

	kept any // engine-private handle for retained output
}

// Engine executes stage jobs. Implementations must make Release
// idempotent: the runner releases every result exactly once on the
// happy path but also sweeps everything it still holds on failure.
type Engine interface {
	RunStage(ctx context.Context, run StageRun) (*StageResult, error)
	// Collect materializes a kept result's records (used when the
	// pipeline's Output stage is also consumed downstream).
	Collect(ctx context.Context, res *StageResult) ([][]mr.Record, error)
	// Release frees a result's retained output (worker workspaces,
	// intermediate files). No-op for collected results.
	Release(res *StageResult)
}

// InProcess runs stage jobs through mr.Run in this process. A kept
// stage's output partitions stay in memory and become the next stage's
// splits directly — no re-spill, no driver round trip — and each stage
// job's workspace files are swept as soon as the job finishes, success
// or failure.
type InProcess struct {
	// FS, when non-nil, hosts every stage job's spill and shuffle files
	// (each under its own pipeline/iteration/stage workspace prefix).
	// When nil each stage job gets a private in-memory FS.
	FS iokit.FS
}

type inProcKept struct{ parts [][]mr.Record }

// RunStage implements Engine.
func (e *InProcess) RunStage(ctx context.Context, run StageRun) (*StageResult, error) {
	if run.Stage.Build == nil {
		return nil, fmt.Errorf("dag: stage %q has no Build (in-process engine)", run.Stage.Name)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	job := run.Stage.Build(run.Iter)
	job.Workspace = stageWorkspace(run.Pipeline, run.Iter, run.Stage.Name)
	if e.FS != nil {
		job.FS = e.FS
		// The stage's intermediate files (spills, shuffle segments) are
		// dead the moment the run returns — its output lives in memory —
		// so sweep them now whether the job succeeded or not.
		defer sweepPrefix(e.FS, job.Workspace+"/")
	}
	parts := run.Inline
	if run.Input != nil {
		parts = run.Input.parts()
		if parts == nil {
			return nil, fmt.Errorf("%w: stage %q input has no in-process partitions", ErrInputLost, run.Stage.Name)
		}
	}
	splits := make([]mr.Split, len(parts))
	for i := range parts {
		splits[i] = &mr.MemSplit{Recs: parts[i]}
	}
	res, err := mr.Run(job, splits)
	if err != nil {
		return nil, err
	}
	sr := &StageResult{Stats: res.Stats, Partitions: len(res.Output)}
	if run.Keep {
		sr.kept = &inProcKept{parts: res.Output}
	} else {
		sr.Records = res.Output
	}
	return sr, nil
}

// parts returns a result's per-partition records when they live in
// this process (collected, or kept by the in-process engine).
func (r *StageResult) parts() [][]mr.Record {
	if r.Records != nil {
		return r.Records
	}
	if k, ok := r.kept.(*inProcKept); ok {
		return k.parts
	}
	return nil
}

// Collect implements Engine.
func (e *InProcess) Collect(ctx context.Context, res *StageResult) ([][]mr.Record, error) {
	if p := res.parts(); p != nil {
		return p, nil
	}
	return nil, fmt.Errorf("dag: result has no in-process partitions")
}

// Release implements Engine: kept output is memory, freed by dropping
// the reference; workspace files were swept at RunStage time.
func (e *InProcess) Release(res *StageResult) { res.kept = nil }

// stageWorkspace names one stage job's file namespace.
func stageWorkspace(pipeline string, iter int, stage string) string {
	return fmt.Sprintf("%s/i%03d/%s", pipeline, iter, stage)
}

// sweepPrefix deletes every file under prefix, ignoring errors (the
// files may never have been created).
func sweepPrefix(fs iokit.FS, prefix string) {
	names, err := fs.List()
	if err != nil {
		return
	}
	for _, name := range names {
		if strings.HasPrefix(name, prefix) {
			fs.Remove(name)
		}
	}
}
