package dag_test

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math"
	"strings"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/dag"
	"repro/internal/datagen"
	"repro/internal/iokit"
	"repro/internal/mr"
	"repro/internal/workloads/pagerank"
)

// runJob is the naive job-per-stage baseline: every stage's input is
// re-materialized in the driver and re-fed as memory splits.
func runJob(t *testing.T, job *mr.Job, parts [][]mr.Record) *mr.Result {
	t.Helper()
	splits := make([]mr.Split, len(parts))
	for i := range parts {
		splits[i] = &mr.MemSplit{Recs: parts[i]}
	}
	res, err := mr.Run(job, splits)
	if err != nil {
		t.Fatalf("%s: %v", job.Name, err)
	}
	return res
}

// naiveChain runs the same iterative PageRank as independent jobs
// chained through the driver, returning the final rank partitions, the
// iteration count, and the record bytes that crossed the driver.
func naiveChain(t *testing.T, spec pagerank.IterSpec) ([][]mr.Record, int, int64) {
	t.Helper()
	parts := pagerank.IterInputs(spec)
	driverBytes := partsBytes(parts)
	iters := 0
	for i := 0; i < spec.MaxIters; i++ {
		rres := runJob(t, pagerank.NewRankJob(spec.Nodes, spec.Parts), parts)
		parts = rres.Output
		dres := runJob(t, pagerank.NewDeltaJob(spec.Parts), parts)
		nres := runJob(t, pagerank.NewNormJob(), dres.Output)
		// Chained through the driver: every stage's full output lands here.
		driverBytes += partsBytes(parts) + partsBytes(dres.Output) + partsBytes(nres.Output)
		iters = i + 1
		if spec.Epsilon > 0 {
			delta, err := pagerank.TotalDelta(map[string][][]mr.Record{"norm": nres.Output})
			if err != nil {
				t.Fatal(err)
			}
			if delta < spec.Epsilon {
				break
			}
		}
	}
	return parts, iters, driverBytes
}

func partsBytes(parts [][]mr.Record) int64 {
	var n int64
	for _, part := range parts {
		for _, r := range part {
			n += int64(len(r.Key) + len(r.Value))
		}
	}
	return n
}

func assertPartsEqual(t *testing.T, label string, got, want [][]mr.Record) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d partitions, want %d", label, len(got), len(want))
	}
	for p := range want {
		if len(got[p]) != len(want[p]) {
			t.Fatalf("%s: partition %d has %d records, want %d", label, p, len(got[p]), len(want[p]))
		}
		for i := range want[p] {
			if !bytes.Equal(got[p][i].Key, want[p][i].Key) || !bytes.Equal(got[p][i].Value, want[p][i].Value) {
				t.Fatalf("%s: partition %d record %d differs: %q=%q vs %q=%q",
					label, p, i, got[p][i].Key, got[p][i].Value, want[p][i].Key, want[p][i].Value)
			}
		}
	}
}

// TestPipelineInProcessMatchesNaiveChain is the core no-re-spill
// equivalence: the dag runner's handoff of rank partitions between
// stages (and across iterations) must be byte-identical to chaining
// the same three jobs through the driver, while moving far fewer bytes
// through the driver — and the pipeline's stage workspaces must be
// swept from the shared filesystem by the time Run returns.
func TestPipelineInProcessMatchesNaiveChain(t *testing.T) {
	spec := pagerank.IterSpec{Nodes: 240, AvgDegree: 6, Seed: 7, Parts: 4, MaxIters: 4}
	tracker := &iokit.TrackFS{Inner: iokit.NewMemFS()}

	res, err := dag.Run(context.Background(), pagerank.NewIterPipeline(spec), pagerank.IterInputs(spec),
		dag.Config{Engine: &dag.InProcess{FS: tracker}})
	if err != nil {
		t.Fatal(err)
	}
	wantParts, wantIters, naiveDriverBytes := naiveChain(t, spec)

	if res.Iterations != wantIters {
		t.Fatalf("pipeline ran %d iterations, naive chain ran %d", res.Iterations, wantIters)
	}
	assertPartsEqual(t, "final ranks", res.Output, wantParts)

	// Sanity against the sequential reference implementation.
	ranks, err := pagerank.RanksFromParts(res.Output)
	if err != nil {
		t.Fatal(err)
	}
	g := datagen.NewGraph(datagen.GraphConfig{Seed: spec.Seed, Nodes: spec.Nodes, AvgOutDegree: spec.AvgDegree})
	ref := pagerank.Reference(g, spec.MaxIters)
	if len(ranks) != len(ref) {
		t.Fatalf("pipeline produced %d ranks, reference has %d", len(ranks), len(ref))
	}
	for id, want := range ref {
		if got := ranks[id]; math.Abs(got-want) > 1e-9 {
			t.Fatalf("node %d rank %g, reference %g", id, got, want)
		}
	}

	// The entire point of the pipeline: rank output (structs + adjacency,
	// the bulk of the data) never re-spills through the driver.
	if res.DriverBytes >= naiveDriverBytes {
		t.Fatalf("pipeline moved %d driver bytes, naive chain moved %d — expected a reduction",
			res.DriverBytes, naiveDriverBytes)
	}
	if len(res.Stages) != 3*res.Iterations {
		t.Fatalf("%d stage stats, want %d", len(res.Stages), 3*res.Iterations)
	}

	files, err := tracker.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 0 {
		t.Fatalf("stage workspaces not swept: %v", files)
	}
	if n := tracker.OpenHandles(); n != 0 {
		t.Fatalf("pipeline leaked %d file handles", n)
	}
}

// TestPipelineUntilStopsEarly checks the convergence predicate: with a
// loose epsilon the norm stage's delta crosses the threshold well
// before MaxIters.
func TestPipelineUntilStopsEarly(t *testing.T) {
	spec := pagerank.IterSpec{Nodes: 200, AvgDegree: 5, Seed: 11, Parts: 3, MaxIters: 50, Epsilon: 0.05}
	res, err := dag.Run(context.Background(), pagerank.NewIterPipeline(spec), pagerank.IterInputs(spec),
		dag.Config{Engine: &dag.InProcess{}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations >= spec.MaxIters {
		t.Fatalf("ran all %d iterations; Until never fired", res.Iterations)
	}
	wantParts, wantIters, _ := naiveChain(t, spec)
	if res.Iterations != wantIters {
		t.Fatalf("pipeline converged after %d iterations, naive chain after %d", res.Iterations, wantIters)
	}
	assertPartsEqual(t, "converged ranks", res.Output, wantParts)
}

// startFleet brings up a fleet with n in-process workers on tracked
// filesystems.
func startFleet(t *testing.T, ctx context.Context, n, slots int) (*cluster.Fleet, []*iokit.TrackFS, chan error) {
	t.Helper()
	f, err := cluster.NewFleet(cluster.FleetConfig{HeartbeatEvery: 50 * time.Millisecond, HeartbeatMiss: 40})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { f.Close() })
	trackers := make([]*iokit.TrackFS, n)
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		trackers[i] = &iokit.TrackFS{Inner: iokit.NewMemFS()}
		fs := trackers[i]
		go func() {
			errs <- cluster.RunWorker(ctx, cluster.WorkerOptions{Coordinator: f.Addr(), Slots: slots, FS: fs})
		}()
	}
	if err := f.WaitWorkers(ctx, n); err != nil {
		t.Fatal(err)
	}
	return f, trackers, errs
}

// pollSwept waits for every worker filesystem to drain (cleanup
// announcements ride heartbeats) and checks for leaked handles.
func pollSwept(t *testing.T, trackers []*iokit.TrackFS) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for i, tr := range trackers {
		for {
			files, err := tr.List()
			if err != nil {
				t.Fatal(err)
			}
			if len(files) == 0 {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("worker %d still holds %d files after pipeline cleanup: %v",
					i, len(files), files[:min(len(files), 5)])
			}
			time.Sleep(20 * time.Millisecond)
		}
		if n := tr.OpenHandles(); n != 0 {
			t.Errorf("worker %d leaked %d file handles", i, n)
		}
	}
}

// TestPipelineFleetMatchesInProcess runs the same pipeline on a
// three-worker fleet — reduce output retained worker-side as handoff
// files, next stage's maps pinned to the holders — and requires the
// final ranks byte-identical to the in-process run, with every
// retained workspace swept once the pipeline finishes.
func TestPipelineFleetMatchesInProcess(t *testing.T) {
	spec := pagerank.IterSpec{Nodes: 180, AvgDegree: 5, Seed: 3, Parts: 3, MaxIters: 3}
	want, err := dag.Run(context.Background(), pagerank.NewIterPipeline(spec), pagerank.IterInputs(spec),
		dag.Config{Engine: &dag.InProcess{}})
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	f, trackers, workerErr := startFleet(t, ctx, 3, 2)
	eng := dag.NewFleetEngine(f)
	defer eng.Close()

	got, err := dag.Run(ctx, pagerank.NewIterPipeline(spec), pagerank.IterInputs(spec),
		dag.Config{Engine: eng})
	if err != nil {
		t.Fatal(err)
	}
	if got.Iterations != want.Iterations {
		t.Fatalf("fleet ran %d iterations, in-process ran %d", got.Iterations, want.Iterations)
	}
	assertPartsEqual(t, "fleet vs in-process", got.Output, want.Output)

	// rank (consumed by delta, carried) and delta (consumed by norm) are
	// kept engine-side every iteration; only norm's single record visits
	// the driver.
	var kept int
	for _, st := range got.Stages {
		if st.Kept {
			kept++
		}
	}
	if kept != 2*got.Iterations {
		t.Fatalf("kept-stage count %d over %d iterations, want %d", kept, got.Iterations, 2*got.Iterations)
	}

	pollSwept(t, trackers)
	f.Shutdown()
	for i := 0; i < 3; i++ {
		if err := <-workerErr; err != nil {
			t.Errorf("worker: %v", err)
		}
	}
}

// failSpec configures the dagtest jobs registered in init below.
const (
	genJobName  = "dagtest/gen"
	boomJobName = "dagtest/boom"
)

func init() {
	cluster.RegisterJob(genJobName, func([]byte) (*mr.Job, []mr.Split, error) {
		return genJob(), nil, nil
	})
	cluster.RegisterJob(boomJobName, func([]byte) (*mr.Job, []mr.Split, error) {
		return boomJob(), nil, nil
	})
}

// genJob passes its input through, shuffled over two partitions.
func genJob() *mr.Job {
	return &mr.Job{
		Name: "dagtest-gen",
		NewMapper: mr.NewMapFunc(func(key, value []byte, out mr.Emitter) error {
			return out.Emit(key, value)
		}),
		NewReducer: mr.NewReduceFunc(func(key []byte, values mr.ValueIter, out mr.Emitter) error {
			for {
				v, ok := values.Next()
				if !ok {
					return nil
				}
				if err := out.Emit(key, v); err != nil {
					return err
				}
			}
		}),
		NumReduceTasks: 2,
		Deterministic:  true,
	}
}

// boomJob fails every map attempt.
func boomJob() *mr.Job {
	return &mr.Job{
		Name: "dagtest-boom",
		NewMapper: mr.NewMapFunc(func(key, value []byte, out mr.Emitter) error {
			return errors.New("boom: injected stage failure")
		}),
		NewReducer: mr.NewReduceFunc(func(key []byte, values mr.ValueIter, out mr.Emitter) error {
			return nil
		}),
		NumReduceTasks: 2,
		Deterministic:  true,
	}
}

func failingPipeline() (*dag.Pipeline, [][]mr.Record) {
	p := &dag.Pipeline{
		Name: "dagtest-fail",
		Stages: []dag.Stage{
			{
				Name:  "gen",
				Build: func(int) *mr.Job { return genJob() },
				Ref:   func(int) cluster.JobRef { return cluster.JobRef{Name: genJobName} },
			},
			{
				Name: "boom", From: "gen",
				Build: func(int) *mr.Job { return boomJob() },
				Ref:   func(int) cluster.JobRef { return cluster.JobRef{Name: boomJobName} },
			},
		},
		Output: "boom",
	}
	inputs := [][]mr.Record{
		{{Key: []byte("a"), Value: []byte("1")}, {Key: []byte("b"), Value: []byte("2")}},
		{{Key: []byte("c"), Value: []byte("3")}},
	}
	return p, inputs
}

// TestPipelineSweepsOnStageFailure is the leak regression test: when a
// downstream stage fails permanently, the upstream stage's
// intermediate files must still be swept — in process, nothing may
// remain on the shared filesystem by the time Run returns.
func TestPipelineSweepsOnStageFailure(t *testing.T) {
	tracker := &iokit.TrackFS{Inner: iokit.NewMemFS()}
	p, inputs := failingPipeline()
	_, err := dag.Run(context.Background(), p, inputs, dag.Config{Engine: &dag.InProcess{FS: tracker}})
	if err == nil {
		t.Fatal("pipeline with a failing stage reported success")
	}
	if !strings.Contains(err.Error(), "boom") {
		t.Fatalf("error does not name the failing stage's fault: %v", err)
	}
	files, lerr := tracker.List()
	if lerr != nil {
		t.Fatal(lerr)
	}
	if len(files) != 0 {
		t.Fatalf("failed pipeline leaked %d intermediate files: %v", len(files), files)
	}
	if n := tracker.OpenHandles(); n != 0 {
		t.Fatalf("failed pipeline leaked %d file handles", n)
	}
}

// TestPipelineFleetSweepsOnStageFailure is the fleet variant: the gen
// stage's retained workspace (handoff files included) must be released
// even though its consumer failed permanently and the pipeline never
// reached the normal release path.
func TestPipelineFleetSweepsOnStageFailure(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	f, trackers, workerErr := startFleet(t, ctx, 2, 2)
	eng := dag.NewFleetEngine(f)
	eng.MaxTaskAttempts = 1
	defer eng.Close()

	p, inputs := failingPipeline()
	_, err := dag.Run(ctx, p, inputs, dag.Config{Engine: eng})
	if err == nil {
		t.Fatal("pipeline with a failing stage reported success")
	}
	if !strings.Contains(err.Error(), "boom") {
		t.Fatalf("error does not name the failing stage's fault: %v", err)
	}

	pollSwept(t, trackers)
	f.Shutdown()
	for i := 0; i < 2; i++ {
		if err := <-workerErr; err != nil {
			t.Errorf("worker: %v", err)
		}
	}
}

// lossyEngine wraps InProcess but reports the kept input lost on the
// consumer's first attempt — the shape of a fleet handoff dying with
// its worker. The runner must re-run the producing stage via sched's
// DepLostError protocol (without charging the retry budget) and then
// complete.
type lossyEngine struct {
	dag.InProcess
	runs    map[string]int
	dropped bool
}

func (e *lossyEngine) RunStage(ctx context.Context, run dag.StageRun) (*dag.StageResult, error) {
	e.runs[run.Stage.Name]++
	if run.Stage.From != "" && !e.dropped {
		e.dropped = true
		return nil, fmt.Errorf("%w: simulated handoff death", dag.ErrInputLost)
	}
	return e.InProcess.RunStage(ctx, run)
}

func TestRunnerRerunsProducerOnInputLost(t *testing.T) {
	p, inputs := failingPipeline()
	// Make the downstream stage viable: replace boom with gen's job.
	p.Stages[1].Build = func(int) *mr.Job { return genJob() }
	eng := &lossyEngine{runs: make(map[string]int)}

	res, err := dag.Run(context.Background(), p, inputs, dag.Config{Engine: eng})
	if err != nil {
		t.Fatal(err)
	}
	if eng.runs["gen"] != 2 {
		t.Fatalf("producing stage ran %d times, want 2 (initial + lost-input re-run)", eng.runs["gen"])
	}
	if eng.runs["boom"] != 2 {
		t.Fatalf("consuming stage ran %d times, want 2 (lost input + success)", eng.runs["boom"])
	}
	if len(res.Output) == 0 {
		t.Fatal("pipeline produced no output after recovery")
	}
}

// TestValidate covers the pipeline shape checks.
func TestValidate(t *testing.T) {
	stage := func(name, from string) dag.Stage {
		return dag.Stage{Name: name, From: from, Build: func(int) *mr.Job { return genJob() }}
	}
	cases := []struct {
		name string
		p    dag.Pipeline
		want string
	}{
		{"no name", dag.Pipeline{Stages: []dag.Stage{stage("a", "")}}, "no name"},
		{"no stages", dag.Pipeline{Name: "p"}, "no stages"},
		{"duplicate stage", dag.Pipeline{Name: "p", Stages: []dag.Stage{stage("a", ""), stage("a", "")}}, "duplicate"},
		{"forward edge", dag.Pipeline{Name: "p", Stages: []dag.Stage{stage("a", "b"), stage("b", "")}}, "earlier"},
		{"self edge", dag.Pipeline{Name: "p", Stages: []dag.Stage{stage("a", "a")}}, "earlier"},
		{"bad carry", dag.Pipeline{Name: "p", Stages: []dag.Stage{stage("a", "")}, Carry: "x"}, "carry"},
		{"bad output", dag.Pipeline{Name: "p", Stages: []dag.Stage{stage("a", "")}, Output: "x"}, "output"},
		{"iterate without carry", dag.Pipeline{Name: "p", Stages: []dag.Stage{stage("a", "")}, MaxIters: 3}, "carry"},
	}
	for _, tc := range cases {
		err := tc.p.Validate()
		if err == nil {
			t.Errorf("%s: Validate accepted an invalid pipeline", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
	ok := dag.Pipeline{Name: "p", Stages: []dag.Stage{stage("a", ""), stage("b", "a")}, Carry: "a", Output: "b", MaxIters: 2}
	if err := ok.Validate(); err != nil {
		t.Errorf("Validate rejected a well-formed pipeline: %v", err)
	}
}
