// Package dag is the multi-job pipeline runner: it executes a DAG of
// MapReduce stages — optionally iterated to convergence — over one
// engine, feeding each stage's partitioned reduce output to the next
// stage without re-spilling through the driver. In-process, a stage's
// output partitions become the next stage's splits directly; on a
// cluster fleet, reduce output is retained worker-side as handoff
// files and the next stage's map tasks are leased to the workers that
// already hold them, so stage-to-stage data never crosses the network
// (partition homes carry across stages, and a stage that declares
// mr.Job.AlignedInput skips the all-to-all shuffle entirely).
//
// The runner reuses internal/sched per iteration, so stage retries,
// backoff, and lost-input re-execution (a handoff dying with its
// worker re-runs the producing stage via DepLostError) all follow the
// same discipline as task scheduling inside a job. Stage workspaces
// are swept as soon as their output is no longer needed — including
// when a downstream stage fails permanently.
package dag

import (
	"errors"
	"fmt"

	"repro/internal/cluster"
	"repro/internal/mr"
)

// ErrInputLost marks a stage whose input data no longer exists (a
// fleet handoff died with its worker). The runner converts it into a
// sched.DepLostError against the producing stage, which re-runs it.
var ErrInputLost = errors.New("dag: stage input lost")

// Stage is one MapReduce job in a pipeline.
type Stage struct {
	// Name identifies the stage within its pipeline.
	Name string
	// From names the upstream stage whose reduce output this stage maps
	// over; "" means the pipeline's input (the initial records on
	// iteration 0, the Carry stage's previous output afterwards).
	From string
	// Build constructs the stage's job for one iteration — the
	// in-process engine's builder. The job's input arrives as one split
	// per upstream partition, so builders typically return a job whose
	// NumReduceTasks matches the upstream stage's (and may set
	// AlignedInput when the stage preserves partitioning).
	Build func(iter int) *mr.Job
	// Ref names the registered cluster job for one iteration — the
	// fleet engine's builder. The registered builder may return zero
	// splits: stage inputs travel through JobSpec.Inputs.
	Ref func(iter int) cluster.JobRef
}

// Pipeline is a DAG of stages, run once or iterated to convergence.
type Pipeline struct {
	Name   string
	Stages []Stage
	// Carry names the stage whose output becomes the next iteration's
	// pipeline input (consumed by From=="" stages). Empty for a
	// single-pass pipeline.
	Carry string
	// Output names the stage whose final-iteration records Run returns.
	Output string
	// MaxIters bounds the iteration count (default 1).
	MaxIters int
	// Until, when non-nil, is evaluated after each iteration over the
	// terminal stages' collected records (stage name → per-partition
	// records); returning true stops the loop before MaxIters.
	Until func(iter int, terminal map[string][][]mr.Record) (bool, error)
}

// consumers returns, per stage name, whether any same-iteration stage
// or the carry edge consumes its output (kept engine-side), and
// whether the stage is terminal (records collected to the driver).
func (p *Pipeline) kept(name string) bool {
	for _, s := range p.Stages {
		if s.From == name {
			return true
		}
	}
	return p.Carry == name
}

// Validate checks the pipeline's shape: unique stage names, From
// edges referencing earlier stages (the stage list is its own
// topological order), and Carry/Output naming real stages.
func (p *Pipeline) Validate() error {
	if p.Name == "" {
		return errors.New("dag: pipeline has no name")
	}
	if len(p.Stages) == 0 {
		return fmt.Errorf("dag: pipeline %q has no stages", p.Name)
	}
	seen := make(map[string]bool, len(p.Stages))
	for _, s := range p.Stages {
		if s.Name == "" {
			return fmt.Errorf("dag: pipeline %q has an unnamed stage", p.Name)
		}
		if seen[s.Name] {
			return fmt.Errorf("dag: pipeline %q: duplicate stage %q", p.Name, s.Name)
		}
		if s.From != "" && !seen[s.From] {
			// Earlier-only references keep the stage list a topological
			// order and reject cycles and self-edges in one check.
			return fmt.Errorf("dag: pipeline %q: stage %q reads %q, which is not an earlier stage",
				p.Name, s.Name, s.From)
		}
		seen[s.Name] = true
	}
	if p.Carry != "" && !seen[p.Carry] {
		return fmt.Errorf("dag: pipeline %q: carry stage %q does not exist", p.Name, p.Carry)
	}
	if p.Output != "" && !seen[p.Output] {
		return fmt.Errorf("dag: pipeline %q: output stage %q does not exist", p.Name, p.Output)
	}
	if p.MaxIters > 1 && p.Carry == "" {
		return fmt.Errorf("dag: pipeline %q iterates without a carry stage", p.Name)
	}
	return nil
}
