package sched

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestDAGOrdering: every task runs exactly once, and no task starts
// before all of its dependencies committed their values.
func TestDAGOrdering(t *testing.T) {
	var mu sync.Mutex
	finished := make(map[string]bool)
	mk := func(name string, deps ...string) Task {
		return Task{
			Name: name, Deps: deps,
			Run: func(ctx context.Context, tc *TaskContext) (any, error) {
				mu.Lock()
				for _, d := range deps {
					if !finished[d] {
						mu.Unlock()
						return nil, fmt.Errorf("task %s ran before dep %s", name, d)
					}
				}
				mu.Unlock()
				for _, d := range deps {
					if got := tc.Dep(d); got != "v:"+d {
						return nil, fmt.Errorf("task %s saw dep %s = %v", name, d, got)
					}
				}
				mu.Lock()
				finished[name] = true
				mu.Unlock()
				return "v:" + name, nil
			},
		}
	}
	// Diamond plus a long chain.
	tasks := []Task{
		mk("a"),
		mk("b", "a"),
		mk("c", "a"),
		mk("d", "b", "c"),
		mk("e", "d"),
		mk("f"),
	}
	rep, err := Run(context.Background(), tasks, Config{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Attempts) != len(tasks) {
		t.Errorf("attempts = %d, want %d", len(rep.Attempts), len(tasks))
	}
	for _, task := range tasks {
		if rep.Value(task.Name) != "v:"+task.Name {
			t.Errorf("value(%s) = %v", task.Name, rep.Value(task.Name))
		}
	}
	for _, a := range rep.Attempts {
		if a.Outcome != OutcomeSuccess {
			t.Errorf("attempt %s outcome = %s", a.Task, a.Outcome)
		}
	}
}

// TestValidation rejects malformed graphs up front.
func TestValidation(t *testing.T) {
	run := func(ts []Task) error {
		_, err := Run(context.Background(), ts, Config{})
		return err
	}
	noop := func(ctx context.Context, tc *TaskContext) (any, error) { return nil, nil }
	if err := run([]Task{{Name: "x", Run: noop}, {Name: "x", Run: noop}}); err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Errorf("duplicate name: %v", err)
	}
	if err := run([]Task{{Name: "x", Deps: []string{"ghost"}, Run: noop}}); err == nil || !strings.Contains(err.Error(), "unknown") {
		t.Errorf("unknown dep: %v", err)
	}
	if err := run([]Task{
		{Name: "x", Deps: []string{"y"}, Run: noop},
		{Name: "y", Deps: []string{"x"}, Run: noop},
	}); err == nil || !strings.Contains(err.Error(), "cycle") {
		t.Errorf("cycle: %v", err)
	}
	if err := run([]Task{{Name: "", Run: noop}}); err == nil {
		t.Error("empty name accepted")
	}
	if err := run([]Task{{Name: "x"}}); err == nil {
		t.Error("nil Run accepted")
	}
}

// TestRetryRecovers: a task failing transiently succeeds within its
// attempt budget, and the timeline records the retry.
func TestRetryRecovers(t *testing.T) {
	var calls atomic.Int64
	transient := errors.New("transient")
	tasks := []Task{{
		Name: "flaky", Group: "g",
		Run: func(ctx context.Context, tc *TaskContext) (any, error) {
			if calls.Add(1) <= 2 {
				return nil, fmt.Errorf("glitch %d: %w", tc.Attempt, transient)
			}
			return "ok", nil
		},
	}}
	rep, err := Run(context.Background(), tasks, Config{
		Workers: 2, MaxAttempts: 3, Backoff: time.Microsecond,
		Retryable: func(err error) bool { return errors.Is(err, transient) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Value("flaky") != "ok" {
		t.Errorf("value = %v", rep.Value("flaky"))
	}
	if calls.Load() != 3 {
		t.Errorf("calls = %d, want 3", calls.Load())
	}
	var outcomes []Outcome
	for _, a := range rep.Attempts {
		outcomes = append(outcomes, a.Outcome)
	}
	want := []Outcome{OutcomeRetrying, OutcomeRetrying, OutcomeSuccess}
	if fmt.Sprint(outcomes) != fmt.Sprint(want) {
		t.Errorf("outcomes = %v, want %v", outcomes, want)
	}
}

// TestRetryBudgetExhausted: a persistently failing task surfaces the
// underlying error (wrapped) once attempts run out.
func TestRetryBudgetExhausted(t *testing.T) {
	transient := errors.New("transient")
	var calls atomic.Int64
	tasks := []Task{{
		Name: "doomed",
		Run: func(ctx context.Context, tc *TaskContext) (any, error) {
			calls.Add(1)
			return nil, transient
		},
	}}
	_, err := Run(context.Background(), tasks, Config{
		MaxAttempts: 3, Backoff: time.Microsecond,
		Retryable: func(err error) bool { return errors.Is(err, transient) },
	})
	if !errors.Is(err, transient) {
		t.Fatalf("err = %v, want wrapped transient", err)
	}
	if calls.Load() != 3 {
		t.Errorf("calls = %d, want 3", calls.Load())
	}
}

// TestNonRetryableFailsFast: without a Retryable match the first
// failure is fatal and downstream tasks never run.
func TestNonRetryableFailsFast(t *testing.T) {
	boom := errors.New("boom")
	var downstream atomic.Bool
	tasks := []Task{
		{Name: "bad", Run: func(ctx context.Context, tc *TaskContext) (any, error) { return nil, boom }},
		{Name: "after", Deps: []string{"bad"}, Run: func(ctx context.Context, tc *TaskContext) (any, error) {
			downstream.Store(true)
			return nil, nil
		}},
	}
	_, err := Run(context.Background(), tasks, Config{MaxAttempts: 5})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if downstream.Load() {
		t.Error("dependent of failed task ran")
	}
}

// TestFailureCancelsInFlight: a fatal failure cancels the contexts of
// concurrently running sibling attempts before Run returns.
func TestFailureCancelsInFlight(t *testing.T) {
	boom := errors.New("boom")
	running := make(chan struct{})
	var sawCancel atomic.Bool
	tasks := []Task{
		{Name: "slow", Run: func(ctx context.Context, tc *TaskContext) (any, error) {
			close(running)
			select {
			case <-ctx.Done():
				sawCancel.Store(true)
			case <-time.After(5 * time.Second):
			}
			return nil, ctx.Err()
		}},
		{Name: "bad", Run: func(ctx context.Context, tc *TaskContext) (any, error) {
			<-running
			return nil, boom
		}},
	}
	_, err := Run(context.Background(), tasks, Config{Workers: 2})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if !sawCancel.Load() {
		t.Error("in-flight sibling not cancelled")
	}
}

// TestExternalCancellation: cancelling the caller's context aborts the
// run.
func TestExternalCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	tasks := []Task{{
		Name: "waits",
		Run: func(ctx context.Context, tc *TaskContext) (any, error) {
			cancel()
			<-ctx.Done()
			return nil, ctx.Err()
		},
	}}
	_, err := Run(ctx, tasks, Config{Workers: 1})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
}

// TestSpeculativeFirstFinisherWins: a straggling attempt is duplicated;
// the fast duplicate commits and the straggler is cancelled and logged
// as having lost the race.
func TestSpeculativeFirstFinisherWins(t *testing.T) {
	tasks := []Task{
		// Fast siblings establish the group's median duration.
		{Name: "fast1", Group: "g", Speculatable: true,
			Run: func(ctx context.Context, tc *TaskContext) (any, error) { return 1, nil }},
		{Name: "fast2", Group: "g", Speculatable: true,
			Run: func(ctx context.Context, tc *TaskContext) (any, error) { return 2, nil }},
		{Name: "straggler", Group: "g", Speculatable: true,
			Run: func(ctx context.Context, tc *TaskContext) (any, error) {
				if tc.Attempt == 0 {
					// First attempt hangs until cancelled.
					select {
					case <-ctx.Done():
						return nil, ctx.Err()
					case <-time.After(10 * time.Second):
						return "slow", nil
					}
				}
				if !tc.Speculative {
					return nil, errors.New("second attempt not marked speculative")
				}
				return "spec", nil
			}},
	}
	rep, err := Run(context.Background(), tasks, Config{
		Workers: 4, Speculate: true,
		SpeculationMin: 10 * time.Millisecond, SpeculationInterval: 2 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Value("straggler") != "spec" {
		t.Errorf("value = %v, want speculative result", rep.Value("straggler"))
	}
	var sawSpecWin, sawLoser bool
	for _, a := range rep.Attempts {
		if a.Task != "straggler" {
			continue
		}
		if a.Speculative && a.Outcome == OutcomeSuccess {
			sawSpecWin = true
		}
		if !a.Speculative && a.Outcome == OutcomeLostRace {
			sawLoser = true
		}
	}
	if !sawSpecWin || !sawLoser {
		t.Errorf("timeline missing speculative win (%v) or lost race (%v): %+v",
			sawSpecWin, sawLoser, rep.Attempts)
	}
}

// TestTimelineTimestamps: attempts carry ordered queued/start/finish
// times and dependencies never start before their dep finished.
func TestTimelineTimestamps(t *testing.T) {
	tasks := []Task{
		{Name: "first", Group: "a", Run: func(ctx context.Context, tc *TaskContext) (any, error) {
			time.Sleep(2 * time.Millisecond)
			return nil, nil
		}},
		{Name: "second", Group: "b", Deps: []string{"first"}, Run: func(ctx context.Context, tc *TaskContext) (any, error) {
			return nil, nil
		}},
	}
	rep, err := Run(context.Background(), tasks, Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	byName := make(map[string]Attempt)
	for _, a := range rep.Attempts {
		if a.Queued.After(a.Started) || a.Started.After(a.Finished) {
			t.Errorf("attempt %s has unordered timestamps: %+v", a.Task, a)
		}
		byName[a.Task] = a
	}
	if byName["second"].Started.Before(byName["first"].Finished) {
		t.Error("dependent started before dependency finished")
	}
	if d := rep.TaskDuration("first"); d <= 0 {
		t.Errorf("TaskDuration(first) = %v", d)
	}
	aStart, aEnd, ok := Span(rep.Attempts, "a")
	if !ok || !aEnd.After(aStart) {
		t.Errorf("Span(a) = %v..%v ok=%v", aStart, aEnd, ok)
	}
	if _, _, ok := Span(rep.Attempts, "missing"); ok {
		t.Error("Span of missing group reported ok")
	}
}

// TestOverlap: synthetic timelines produce the expected intersection.
func TestOverlap(t *testing.T) {
	base := time.Unix(1000, 0)
	at := func(s, e int) (time.Time, time.Time) {
		return base.Add(time.Duration(s) * time.Second), base.Add(time.Duration(e) * time.Second)
	}
	mk := func(group string, s, e int) Attempt {
		st, en := at(s, e)
		return Attempt{Task: group + "/x", Group: group, Started: st, Finished: en}
	}
	tl := []Attempt{mk("map", 0, 10), mk("fetch", 6, 12), mk("reduce", 12, 20)}
	if got := Overlap(tl, "map", "fetch"); got != 4*time.Second {
		t.Errorf("Overlap(map,fetch) = %v, want 4s", got)
	}
	if got := Overlap(tl, "map", "reduce"); got != 0 {
		t.Errorf("Overlap(map,reduce) = %v, want 0", got)
	}
	if got := Overlap(tl, "map", "missing"); got != 0 {
		t.Errorf("Overlap with missing group = %v, want 0", got)
	}
}

// TestWorkerBound: no more than Workers attempts execute at once.
func TestWorkerBound(t *testing.T) {
	const workers = 3
	var cur, peak atomic.Int64
	var tasks []Task
	for i := 0; i < 20; i++ {
		tasks = append(tasks, Task{
			Name: fmt.Sprintf("t%d", i),
			Run: func(ctx context.Context, tc *TaskContext) (any, error) {
				c := cur.Add(1)
				for {
					p := peak.Load()
					if c <= p || peak.CompareAndSwap(p, c) {
						break
					}
				}
				time.Sleep(time.Millisecond)
				cur.Add(-1)
				return nil, nil
			},
		})
	}
	if _, err := Run(context.Background(), tasks, Config{Workers: workers}); err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > workers {
		t.Errorf("peak concurrency %d exceeds %d workers", p, workers)
	}
}
