// Package sched is an event-driven DAG task scheduler: tasks declare
// dependencies, a bounded worker pool executes attempts, and a single
// coordinator goroutine reacts to completion events — dispatching each
// task the moment its last dependency commits instead of waiting for a
// phase barrier. It adds what a barrier loop cannot express:
//
//   - retry with exponential backoff for attempts that fail with an
//     error the caller classifies as transient;
//   - speculative re-execution of stragglers (Hadoop's speculative
//     tasks): a duplicate attempt is launched when a running attempt
//     exceeds a multiple of its group's median duration, the first
//     finisher wins, and the loser's context is cancelled;
//   - prompt job-wide cancellation on fatal failure, plumbed to every
//     in-flight attempt via context.Context;
//   - a structured per-attempt timeline (queued/start/finish, outcome)
//     so consumers can measure real phase overlap instead of assuming
//     serialization.
//
// The mr engine uses it to pipeline shuffle fetches against
// still-running map tasks, but the package knows nothing about
// MapReduce: tasks are opaque closures returning opaque values.
package sched

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// Task is one node of the DAG. Run is invoked once per attempt; it must
// honor ctx cancellation promptly (a loser of a speculative race or a
// sibling of a failed task is cancelled, not killed). The returned value
// is committed only for the winning attempt and is visible to dependent
// tasks via TaskContext.Dep.
type Task struct {
	// Name uniquely identifies the task and keys Dep lookups.
	Name string
	// Group labels the task for timeline analysis and speculation
	// statistics (e.g. "map", "fetch", "reduce").
	Group string
	// Deps lists task names that must commit before this task runs.
	Deps []string
	// Speculatable marks the task eligible for speculative duplicate
	// attempts when it straggles behind its group's median duration.
	Speculatable bool
	// Run executes one attempt. Attempts of one task may run
	// concurrently (speculation), so Run must not share mutable state
	// across attempts except through attempt-scoped names. Run may be
	// nil when Config.Executor is set; such tasks are dispatched to the
	// executor instead.
	Run func(ctx context.Context, tc *TaskContext) (any, error)
}

// Executor dispatches task attempts somewhere other than an in-process
// closure — the cluster coordinator implements it to lease tasks to
// remote worker processes. Execute is invoked under the same worker
// semaphore, retry, and speculation machinery as Task.Run; it must
// honor ctx cancellation (the lease should be revoked) and may return
// a *DepLostError to signal that an already-committed dependency's
// output has become unreachable and must be re-executed.
type Executor interface {
	Execute(ctx context.Context, task *Task, tc *TaskContext) (any, error)
}

// DepLostError reports that a task attempt could not run because the
// committed output of one or more dependencies no longer exists — in a
// cluster, a map task's segments died with their worker. The scheduler
// reacts by un-committing the named dependencies, re-executing them,
// and re-running the reporting task once they commit again, rather than
// charging the failure to the reporting task's retry budget.
type DepLostError struct {
	// Deps names the dependencies whose outputs were lost.
	Deps []string
	// Err is the underlying fault, e.g. the fetch error.
	Err error
}

func (e *DepLostError) Error() string {
	return fmt.Sprintf("sched: lost output of dependencies %v: %v", e.Deps, e.Err)
}

func (e *DepLostError) Unwrap() error { return e.Err }

// lostDeps extracts the lost dependency names from err, or nil.
func lostDeps(err error) []string {
	var dl *DepLostError
	if errors.As(err, &dl) {
		return dl.Deps
	}
	return nil
}

// TaskContext carries per-attempt information into Run.
type TaskContext struct {
	// Attempt is the 0-based attempt index, unique per task across
	// retries and speculative duplicates (use it to scope file names).
	Attempt int
	// Speculative reports whether this attempt is a speculative
	// duplicate of a still-running attempt.
	Speculative bool

	s *scheduler
}

// Dep returns the committed value of a completed dependency. It must
// only be called with names listed in the task's Deps.
func (tc *TaskContext) Dep(name string) any { return tc.s.value(name) }

// Config tunes a scheduler run. The zero value is usable: GOMAXPROCS
// workers, no retries, no speculation.
type Config struct {
	// Workers bounds concurrently executing attempts.
	Workers int
	// MaxAttempts caps sequential attempts per task (1 = no retries).
	MaxAttempts int
	// Retryable classifies errors worth retrying; nil disables retries
	// regardless of MaxAttempts.
	Retryable func(error) bool
	// MaxReexecs caps how many times a finished task may be re-executed
	// because a consumer reported its output lost (DepLostError).
	// Defaults to MaxAttempts, but callers whose tasks hold volatile
	// outputs (stage handoffs on remote workers) may raise it
	// independently of the retry budget.
	MaxReexecs int
	// Backoff is the delay before the first retry, doubling per
	// subsequent failure up to MaxBackoff. Defaults to 1ms / 250ms.
	Backoff    time.Duration
	MaxBackoff time.Duration
	// Speculate enables speculative duplicate attempts for tasks marked
	// Speculatable.
	Speculate bool
	// SpeculationFactor is the multiple of the group's median winning
	// duration a running attempt must exceed to be considered a
	// straggler (default 2).
	SpeculationFactor float64
	// SpeculationMin is the minimum elapsed time before speculation
	// (default 20ms), so short tasks never speculate.
	SpeculationMin time.Duration
	// SpeculationInterval is the straggler scan period (default 5ms).
	SpeculationInterval time.Duration
	// Tracer, when non-nil, receives one span per attempt (kind = the
	// task's Group, name = the task name) with attempt index,
	// speculative flag, and outcome attributes — the trace-sink
	// generalization of the Attempts timeline.
	Tracer *obs.Tracer
	// Executor, when non-nil, runs attempts of tasks whose Run is nil.
	// Tasks with a Run closure keep using it, so in-process and
	// executor-dispatched tasks can share one DAG.
	Executor Executor
}

func (c Config) normalized() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 1
	}
	if c.MaxReexecs <= 0 {
		c.MaxReexecs = c.MaxAttempts
	}
	if c.Backoff <= 0 {
		c.Backoff = time.Millisecond
	}
	if c.MaxBackoff <= 0 {
		c.MaxBackoff = 250 * time.Millisecond
	}
	if c.SpeculationFactor <= 1 {
		c.SpeculationFactor = 2
	}
	if c.SpeculationMin <= 0 {
		c.SpeculationMin = 20 * time.Millisecond
	}
	if c.SpeculationInterval <= 0 {
		c.SpeculationInterval = 5 * time.Millisecond
	}
	return c
}

// Report is the outcome of a successful Run.
type Report struct {
	// Attempts is the full per-attempt timeline in completion order.
	Attempts []Attempt

	values    map[string]any
	durations map[string]time.Duration
}

// Value returns the committed value of a task by name.
func (r *Report) Value(name string) any { return r.values[name] }

// TaskDuration returns the winning attempt's Run duration for a task.
func (r *Report) TaskDuration(name string) time.Duration { return r.durations[name] }

type node struct {
	task       Task
	waiting    int // unmet dependencies
	dependents []*node

	done         bool
	failures     int // attempts that genuinely failed (not cancelled/lost)
	attempts     int // attempts launched (numbers the next attempt)
	running      int // attempts in flight
	specLaunched bool
	retryPending bool
	cancels      map[int]context.CancelFunc
	winDur       time.Duration

	// Dependency re-execution state. everCommitted guards the one-time
	// structural unblocking of dependents; a re-commit after output loss
	// must not decrement their waiting counts again. reexecs counts
	// resets of this node (capped by MaxAttempts). waiters are nodes
	// whose attempt failed with a DepLostError naming this node; they
	// relaunch when it re-commits. redoWait is the count of lost deps a
	// waiter is still waiting on.
	everCommitted bool
	reexecs       int
	waiters       []*node
	redoWait      int

	// curStart is the unix-nano start time of the attempt currently
	// running (0 when none); written by worker goroutines, read by the
	// coordinator's straggler scan.
	curStart atomic.Int64
}

type completion struct {
	n           *node
	attempt     int
	speculative bool
	value       any
	err         error
	queued      time.Time
	started     time.Time
	finished    time.Time
}

type scheduler struct {
	cfg   Config
	nodes map[string]*node
	order []*node

	sem     chan struct{}
	events  chan completion
	retries chan *node

	mu     sync.RWMutex
	values map[string]any

	attemptsLog []Attempt
	groupDur    map[string][]time.Duration
}

func (s *scheduler) value(name string) any {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.values[name]
}

func (s *scheduler) commit(name string, v any) {
	s.mu.Lock()
	s.values[name] = v
	s.mu.Unlock()
}

// Run executes the task DAG and blocks until every task committed or
// one failed fatally (non-retryable error or retry budget exhausted).
// On failure the first fatal error is returned, every in-flight attempt
// is cancelled, and Run waits for them to drain before returning.
func Run(ctx context.Context, tasks []Task, cfg Config) (*Report, error) {
	cfg = cfg.normalized()
	s, err := newScheduler(tasks, cfg)
	if err != nil {
		return nil, err
	}
	return s.run(ctx)
}

func newScheduler(tasks []Task, cfg Config) (*scheduler, error) {
	s := &scheduler{
		cfg:      cfg,
		nodes:    make(map[string]*node, len(tasks)),
		sem:      make(chan struct{}, cfg.Workers),
		events:   make(chan completion),
		retries:  make(chan *node),
		values:   make(map[string]any, len(tasks)),
		groupDur: make(map[string][]time.Duration),
	}
	for _, t := range tasks {
		if t.Name == "" {
			return nil, fmt.Errorf("sched: task with empty name")
		}
		if t.Run == nil && cfg.Executor == nil {
			return nil, fmt.Errorf("sched: task %s has no Run and no Executor is configured", t.Name)
		}
		if _, dup := s.nodes[t.Name]; dup {
			return nil, fmt.Errorf("sched: duplicate task %s", t.Name)
		}
		n := &node{task: t, cancels: make(map[int]context.CancelFunc)}
		s.nodes[t.Name] = n
		s.order = append(s.order, n)
	}
	for _, n := range s.order {
		for _, d := range n.task.Deps {
			dep, ok := s.nodes[d]
			if !ok {
				return nil, fmt.Errorf("sched: task %s depends on unknown task %s", n.task.Name, d)
			}
			dep.dependents = append(dep.dependents, n)
			n.waiting++
		}
	}
	// Kahn's algorithm purely as cycle detection.
	indeg := make(map[*node]int, len(s.order))
	var q []*node
	for _, n := range s.order {
		indeg[n] = n.waiting
		if n.waiting == 0 {
			q = append(q, n)
		}
	}
	seen := 0
	for len(q) > 0 {
		n := q[len(q)-1]
		q = q[:len(q)-1]
		seen++
		for _, d := range n.dependents {
			if indeg[d]--; indeg[d] == 0 {
				q = append(q, d)
			}
		}
	}
	if seen != len(s.order) {
		return nil, fmt.Errorf("sched: dependency cycle among %d tasks", len(s.order)-seen)
	}
	return s, nil
}

func (s *scheduler) run(ctx context.Context) (*Report, error) {
	jobCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	var jobErr error
	fail := func(err error) {
		if jobErr == nil {
			jobErr = err
			cancel()
		}
	}

	doneCount, inflight, pendingRetries := 0, 0, 0

	launch := func(n *node, speculative bool) {
		attempt := n.attempts
		n.attempts++
		n.running++
		inflight++
		actx, acancel := context.WithCancel(jobCtx)
		n.cancels[attempt] = acancel
		queued := time.Now()
		tc := &TaskContext{Attempt: attempt, Speculative: speculative, s: s}
		go func() {
			s.sem <- struct{}{}
			started := time.Now()
			n.curStart.CompareAndSwap(0, started.UnixNano())
			var v any
			var err error
			if cerr := actx.Err(); cerr != nil {
				err = cerr // cancelled while queued for a worker slot
			} else if n.task.Run != nil {
				v, err = n.task.Run(actx, tc)
			} else {
				v, err = s.cfg.Executor.Execute(actx, &n.task, tc)
			}
			<-s.sem
			s.events <- completion{
				n: n, attempt: attempt, speculative: speculative,
				value: v, err: err,
				queued: queued, started: started, finished: time.Now(),
			}
		}()
	}

	handle := func(c completion) {
		n := c.n
		inflight--
		n.running--
		if cf, ok := n.cancels[c.attempt]; ok {
			cf()
			delete(n.cancels, c.attempt)
		}
		if n.running == 0 {
			n.curStart.Store(0)
		}
		a := Attempt{
			Task: n.task.Name, Group: n.task.Group,
			Attempt: c.attempt, Speculative: c.speculative,
			Queued: c.queued, Started: c.started, Finished: c.finished,
		}
		if c.err == nil {
			if n.done {
				a.Outcome = OutcomeLostRace
			} else {
				n.done = true
				doneCount++
				a.Outcome = OutcomeSuccess
				s.commit(n.task.Name, c.value)
				n.winDur = c.finished.Sub(c.started)
				s.groupDur[n.task.Group] = append(s.groupDur[n.task.Group], n.winDur)
				for _, cf := range n.cancels {
					cf() // first finisher wins; cancel racing attempts
				}
				if jobErr == nil && !n.everCommitted {
					n.everCommitted = true
					for _, d := range n.dependents {
						if d.waiting--; d.waiting == 0 {
							launch(d, false)
						}
					}
				}
				// Re-commit after output loss: relaunch waiters whose
				// lost dependencies are all available again.
				if len(n.waiters) > 0 {
					waiters := n.waiters
					n.waiters = nil
					for _, w := range waiters {
						if w.redoWait--; jobErr == nil && w.redoWait == 0 && !w.done && w.running == 0 && !w.retryPending {
							launch(w, false)
						}
					}
				}
			}
		} else {
			a.Err = c.err.Error()
			switch {
			case n.done:
				a.Outcome = OutcomeLostRace
			case jobErr != nil:
				a.Outcome = OutcomeCancelled
			case lostDeps(c.err) != nil:
				// The attempt could not run because committed dependency
				// output vanished (a cluster worker died with its map
				// segments). This is not the reporting task's fault: leave
				// its retry budget alone, un-commit the lost dependencies,
				// re-execute them, and relaunch this task when they have
				// all committed again.
				a.Outcome = OutcomeDepLost
				for _, name := range lostDeps(c.err) {
					dep, ok := s.nodes[name]
					if !ok {
						fail(fmt.Errorf("sched: task %s reported lost output of unknown task %s",
							n.task.Name, name))
						break
					}
					n.redoWait++
					dep.waiters = append(dep.waiters, n)
					if !dep.done {
						continue // already being re-executed for another waiter
					}
					dep.done = false
					doneCount--
					dep.reexecs++
					if dep.reexecs >= s.cfg.MaxReexecs {
						fail(fmt.Errorf("sched: task %s lost its output %d times (max %d): %w",
							dep.task.Name, dep.reexecs, s.cfg.MaxReexecs, c.err))
						break
					}
					if s.cfg.Tracer != nil {
						now := time.Now()
						s.cfg.Tracer.Record(obs.KindReexec, dep.task.Name, now, now,
							obs.Str("lost-by", n.task.Name),
							obs.Int("re-execution", int64(dep.reexecs)))
					}
					if dep.running == 0 && !dep.retryPending {
						launch(dep, false)
					}
				}
			default:
				n.failures++
				switch {
				case n.running > 0:
					// A racing attempt may still win; defer judgment.
					a.Outcome = OutcomeFailed
				case s.cfg.Retryable != nil && s.cfg.Retryable(c.err) && n.failures < s.cfg.MaxAttempts:
					a.Outcome = OutcomeRetrying
					n.retryPending = true
					pendingRetries++
					backoff := s.cfg.Backoff << (n.failures - 1)
					if backoff > s.cfg.MaxBackoff || backoff <= 0 {
						backoff = s.cfg.MaxBackoff
					}
					nn := n
					time.AfterFunc(backoff, func() { s.retries <- nn })
				default:
					a.Outcome = OutcomeFailed
					fail(fmt.Errorf("sched: task %s failed (attempt %d of %d): %w",
						n.task.Name, n.failures, s.cfg.MaxAttempts, c.err))
				}
			}
		}
		if s.cfg.Tracer != nil {
			attrs := []obs.Attr{
				obs.Int("attempt", int64(c.attempt)),
				obs.Str("outcome", string(a.Outcome)),
			}
			if c.speculative {
				attrs = append(attrs, obs.Bool("speculative", true))
			}
			if a.Err != "" {
				attrs = append(attrs, obs.Str("err", a.Err))
			}
			s.cfg.Tracer.Record(n.task.Group, n.task.Name, c.started, c.finished, attrs...)
		}
		s.attemptsLog = append(s.attemptsLog, a)
	}

	for _, n := range s.order {
		if n.waiting == 0 {
			launch(n, false)
		}
	}

	var tickCh <-chan time.Time
	if s.cfg.Speculate {
		t := time.NewTicker(s.cfg.SpeculationInterval)
		defer t.Stop()
		tickCh = t.C
	}
	extDone := ctx.Done()

	for {
		if jobErr != nil {
			if inflight == 0 && pendingRetries == 0 {
				break
			}
		} else if doneCount == len(s.order) && inflight == 0 {
			break
		}
		select {
		case c := <-s.events:
			handle(c)
		case n := <-s.retries:
			pendingRetries--
			n.retryPending = false
			if jobErr == nil && !n.done {
				launch(n, false)
			}
		case <-tickCh:
			if jobErr == nil {
				s.speculate(launch)
			}
		case <-extDone:
			fail(ctx.Err())
			extDone = nil
		}
	}

	if jobErr != nil {
		return nil, jobErr
	}
	rep := &Report{
		Attempts:  s.attemptsLog,
		values:    s.values,
		durations: make(map[string]time.Duration, len(s.order)),
	}
	for _, n := range s.order {
		rep.durations[n.task.Name] = n.winDur
	}
	return rep, nil
}

// speculate launches a duplicate attempt for each running Speculatable
// task whose elapsed time exceeds the straggler threshold for its group.
func (s *scheduler) speculate(launch func(*node, bool)) {
	now := time.Now()
	for _, n := range s.order {
		if n.done || n.specLaunched || n.retryPending || n.running != 1 || !n.task.Speculatable {
			continue
		}
		st := n.curStart.Load()
		if st == 0 {
			continue
		}
		durs := s.groupDur[n.task.Group]
		if len(durs) == 0 {
			continue // no finished sibling to compare against
		}
		threshold := time.Duration(s.cfg.SpeculationFactor * float64(median(durs)))
		if threshold < s.cfg.SpeculationMin {
			threshold = s.cfg.SpeculationMin
		}
		if now.Sub(time.Unix(0, st)) > threshold {
			n.specLaunched = true
			launch(n, true)
		}
	}
}

func median(durs []time.Duration) time.Duration {
	sorted := make([]time.Duration, len(durs))
	copy(sorted, durs)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	return sorted[len(sorted)/2]
}
