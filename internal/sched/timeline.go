package sched

import "time"

// Outcome classifies how one attempt ended.
type Outcome string

const (
	// OutcomeSuccess marks the attempt that committed the task's value.
	OutcomeSuccess Outcome = "success"
	// OutcomeFailed marks an attempt that errored with no retry
	// scheduled from it (the task may still have been saved by a racing
	// attempt, or it failed the whole job).
	OutcomeFailed Outcome = "failed"
	// OutcomeRetrying marks a failed attempt whose error was classified
	// transient and for which a retry was scheduled.
	OutcomeRetrying Outcome = "retrying"
	// OutcomeCancelled marks an attempt aborted because the job failed.
	OutcomeCancelled Outcome = "cancelled"
	// OutcomeLostRace marks an attempt that finished after another
	// attempt of the same task had already committed.
	OutcomeLostRace Outcome = "lost-race"
	// OutcomeDepLost marks an attempt that could not run because a
	// committed dependency's output had vanished (e.g. a cluster worker
	// died with its map segments); the scheduler re-executes the
	// dependency and relaunches the task without charging its budget.
	OutcomeDepLost Outcome = "dep-lost"
)

// Attempt is one entry of the per-task event timeline: a single
// execution attempt with its queued/start/finish timestamps and outcome.
type Attempt struct {
	// Task is the task name, Group its timeline group.
	Task  string
	Group string
	// Attempt is the 0-based attempt index within the task.
	Attempt int
	// Speculative reports a speculative duplicate attempt.
	Speculative bool
	// Queued is when the attempt was dispatched to the worker pool,
	// Started when a worker picked it up, Finished when Run returned.
	Queued   time.Time
	Started  time.Time
	Finished time.Time
	// Outcome classifies the attempt; Err holds the error text for
	// non-success outcomes.
	Outcome Outcome
	Err     string
}

// Duration is the attempt's execution time (excluding queue wait).
func (a Attempt) Duration() time.Duration { return a.Finished.Sub(a.Started) }

// Span reports the wall-clock interval covered by a group's attempts:
// the earliest start to the latest finish. ok is false when the group
// has no attempts.
func Span(attempts []Attempt, group string) (start, end time.Time, ok bool) {
	for _, a := range attempts {
		if a.Group != group {
			continue
		}
		if !ok || a.Started.Before(start) {
			start = a.Started
		}
		if !ok || a.Finished.After(end) {
			end = a.Finished
		}
		ok = true
	}
	return start, end, ok
}

// Overlap reports how long the spans of two groups intersected — e.g.
// Overlap(tl, "map", "fetch") > 0 proves shuffle fetches ran while map
// tasks were still executing, the overlap a barrier scheduler forbids.
func Overlap(attempts []Attempt, groupA, groupB string) time.Duration {
	aStart, aEnd, ok := Span(attempts, groupA)
	if !ok {
		return 0
	}
	bStart, bEnd, ok := Span(attempts, groupB)
	if !ok {
		return 0
	}
	start, end := aStart, aEnd
	if bStart.After(start) {
		start = bStart
	}
	if bEnd.Before(end) {
		end = bEnd
	}
	if d := end.Sub(start); d > 0 {
		return d
	}
	return 0
}
