package sched

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

// recordingExecutor runs tasks through a function, counting dispatches.
type recordingExecutor struct {
	fn    func(ctx context.Context, task *Task, tc *TaskContext) (any, error)
	calls atomic.Int64
}

func (e *recordingExecutor) Execute(ctx context.Context, task *Task, tc *TaskContext) (any, error) {
	e.calls.Add(1)
	return e.fn(ctx, task, tc)
}

// TestExecutorDispatch: tasks without Run go to the Executor; tasks
// with Run keep their closure. Dependency values flow across both.
func TestExecutorDispatch(t *testing.T) {
	ex := &recordingExecutor{fn: func(ctx context.Context, task *Task, tc *TaskContext) (any, error) {
		return "exec:" + task.Name, nil
	}}
	tasks := []Task{
		{Name: "remote"},
		{Name: "local", Deps: []string{"remote"}, Run: func(ctx context.Context, tc *TaskContext) (any, error) {
			return tc.Dep("remote").(string) + "+local", nil
		}},
	}
	rep, err := Run(context.Background(), tasks, Config{Executor: ex})
	if err != nil {
		t.Fatal(err)
	}
	if v := rep.Value("local"); v != "exec:remote+local" {
		t.Errorf("local value = %v", v)
	}
	if c := ex.calls.Load(); c != 1 {
		t.Errorf("executor ran %d tasks, want 1", c)
	}
}

// TestExecutorRequired: a Run-less task without an Executor is a
// configuration error, caught before anything launches.
func TestExecutorRequired(t *testing.T) {
	_, err := Run(context.Background(), []Task{{Name: "t"}}, Config{})
	if err == nil {
		t.Fatal("expected configuration error")
	}
}

// TestDepLostReexecutes is the lost-map-output scenario: a producer
// commits, its consumer then discovers the output is gone and fails
// with DepLostError. The scheduler must un-commit the producer, run it
// again, and re-run the consumer — which succeeds on the second pass —
// without charging the consumer's retry budget.
func TestDepLostReexecutes(t *testing.T) {
	var produced, consumed atomic.Int64
	lost := int64(1) // first consumer attempt finds the output lost
	tasks := []Task{
		{Name: "producer", Run: func(ctx context.Context, tc *TaskContext) (any, error) {
			return int(produced.Add(1)), nil
		}},
		{Name: "consumer", Deps: []string{"producer"}, Run: func(ctx context.Context, tc *TaskContext) (any, error) {
			if consumed.Add(1) <= lost {
				return nil, &DepLostError{Deps: []string{"producer"}, Err: errors.New("segment unreachable")}
			}
			return tc.Dep("producer").(int) * 10, nil
		}},
	}
	rep, err := Run(context.Background(), tasks, Config{Workers: 2, MaxAttempts: 3})
	if err != nil {
		t.Fatal(err)
	}
	if got := produced.Load(); got != 2 {
		t.Errorf("producer ran %d times, want 2 (original + re-execution)", got)
	}
	if v := rep.Value("consumer"); v != 20 {
		t.Errorf("consumer value = %v, want 20 (10 × second producer run)", v)
	}
	var outcomes []Outcome
	for _, a := range rep.Attempts {
		outcomes = append(outcomes, a.Outcome)
	}
	found := false
	for _, o := range outcomes {
		if o == OutcomeDepLost {
			found = true
		}
	}
	if !found {
		t.Errorf("timeline %v missing %s outcome", outcomes, OutcomeDepLost)
	}
}

// TestDepLostFanout: two consumers lose the same producer output
// concurrently. The producer re-executes once (not once per waiter)
// and both consumers then commit.
func TestDepLostFanout(t *testing.T) {
	var produced atomic.Int64
	var mu sync.Mutex
	failedOnce := map[string]bool{}
	mkConsumer := func(name string) Task {
		return Task{Name: name, Deps: []string{"producer"}, Run: func(ctx context.Context, tc *TaskContext) (any, error) {
			mu.Lock()
			first := !failedOnce[name]
			failedOnce[name] = true
			mu.Unlock()
			if first {
				return nil, &DepLostError{Deps: []string{"producer"}, Err: errors.New("gone")}
			}
			return tc.Dep("producer"), nil
		}}
	}
	tasks := []Task{
		{Name: "producer", Run: func(ctx context.Context, tc *TaskContext) (any, error) {
			return produced.Add(1), nil
		}},
		mkConsumer("c1"),
		mkConsumer("c2"),
	}
	rep, err := Run(context.Background(), tasks, Config{Workers: 4, MaxAttempts: 4})
	if err != nil {
		t.Fatal(err)
	}
	// Both consumers could race their dep-lost reports: the producer
	// re-executes at least once and at most once per report.
	if got := produced.Load(); got < 2 || got > 3 {
		t.Errorf("producer ran %d times, want 2 or 3", got)
	}
	for _, name := range []string{"c1", "c2"} {
		if rep.Value(name) == nil {
			t.Errorf("%s did not commit", name)
		}
	}
}

// TestDepLostBudgetExhausted: a dependency whose output keeps
// vanishing fails the job once its re-execution budget is spent,
// instead of looping forever.
func TestDepLostBudgetExhausted(t *testing.T) {
	tasks := []Task{
		{Name: "producer", Run: func(ctx context.Context, tc *TaskContext) (any, error) {
			return 1, nil
		}},
		{Name: "consumer", Deps: []string{"producer"}, Run: func(ctx context.Context, tc *TaskContext) (any, error) {
			return nil, &DepLostError{Deps: []string{"producer"}, Err: errors.New("always gone")}
		}},
	}
	_, err := Run(context.Background(), tasks, Config{Workers: 2, MaxAttempts: 3})
	if err == nil {
		t.Fatal("expected failure after re-execution budget exhausted")
	}
	if want := "lost its output"; !strings.Contains(err.Error(), want) {
		t.Errorf("err = %v, want mention of %q", err, want)
	}
}

// TestDepLostDoesNotChargeConsumerBudget: with MaxAttempts=2 the
// consumer survives two dep-lost rounds plus one genuine transient
// failure — dep-lost attempts must not consume its retry budget.
func TestDepLostDoesNotChargeConsumerBudget(t *testing.T) {
	var attempts atomic.Int64
	transient := errors.New("transient")
	tasks := []Task{
		{Name: "producer", Run: func(ctx context.Context, tc *TaskContext) (any, error) {
			return 1, nil
		}},
		{Name: "consumer", Deps: []string{"producer"}, Run: func(ctx context.Context, tc *TaskContext) (any, error) {
			switch attempts.Add(1) {
			case 1, 2:
				return nil, &DepLostError{Deps: []string{"producer"}, Err: errors.New("gone")}
			case 3:
				return nil, transient
			}
			return "ok", nil
		}},
	}
	rep, err := Run(context.Background(), tasks, Config{
		Workers: 2, MaxAttempts: 4,
		Retryable: func(err error) bool { return errors.Is(err, transient) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if v := rep.Value("consumer"); v != "ok" {
		t.Errorf("consumer value = %v", v)
	}
	if a := attempts.Load(); a != 4 {
		t.Errorf("consumer ran %d attempts, want 4", a)
	}
}

// TestDepLostChain: losing a mid-chain output re-executes it and
// re-runs only the reporting task, while the committed head of the
// chain is reused (its dependents are not structurally re-blocked).
func TestDepLostChain(t *testing.T) {
	var aRuns, bRuns atomic.Int64
	var cFailed atomic.Bool
	tasks := []Task{
		{Name: "a", Run: func(ctx context.Context, tc *TaskContext) (any, error) {
			return aRuns.Add(1), nil
		}},
		{Name: "b", Deps: []string{"a"}, Run: func(ctx context.Context, tc *TaskContext) (any, error) {
			return bRuns.Add(1), nil
		}},
		{Name: "c", Deps: []string{"b"}, Run: func(ctx context.Context, tc *TaskContext) (any, error) {
			if cFailed.CompareAndSwap(false, true) {
				return nil, &DepLostError{Deps: []string{"b"}, Err: errors.New("b's output gone")}
			}
			return fmt.Sprintf("a=%d b=%d", tc.Dep("a"), tc.Dep("b")), nil
		}},
	}
	rep, err := Run(context.Background(), tasks, Config{Workers: 2, MaxAttempts: 3})
	if err != nil {
		t.Fatal(err)
	}
	if got := aRuns.Load(); got != 1 {
		t.Errorf("a ran %d times, want 1 (not part of the lost chain)", got)
	}
	if got := bRuns.Load(); got != 2 {
		t.Errorf("b ran %d times, want 2", got)
	}
	if v := rep.Value("c"); v != "a=1 b=2" {
		t.Errorf("c value = %v", v)
	}
}
