package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/pprof"
	"strconv"
	"time"
)

// Handler returns the server's HTTP API:
//
//	POST   /api/v1/jobs              submit a job (429 over tenant quota)
//	POST   /api/v1/pipelines         submit a dag pipeline (same queue/quota)
//	GET    /api/v1/jobs[?tenant=t]   list jobs, newest first
//	GET    /api/v1/jobs/{id}         one job, with live progress
//	DELETE /api/v1/jobs/{id}         cancel (idempotent)
//	POST   /api/v1/jobs/{id}/cancel  cancel (CLI-friendly alias)
//	GET    /api/v1/jobs/{id}/output  succeeded job's output, "key\tvalue" lines
//	GET    /api/v1/jobs/{id}/events  SSE progress stream (?once=1: one JSON snapshot)
//	GET    /api/v1/workers           fleet worker listing
//	POST   /api/v1/workers/{id}/drain  graceful drain
//	GET    /healthz                  liveness + fleet summary
//	GET    /metrics                  obs registry snapshot as JSON
//	/debug/pprof/...                 when withPprof
func (s *Server) Handler(withPprof bool) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /api/v1/jobs", s.handleSubmit)
	mux.HandleFunc("POST /api/v1/pipelines", s.handleSubmitPipeline)
	mux.HandleFunc("GET /api/v1/jobs", s.handleList)
	mux.HandleFunc("GET /api/v1/jobs/{id}", s.handleGet)
	mux.HandleFunc("DELETE /api/v1/jobs/{id}", s.handleCancel)
	mux.HandleFunc("POST /api/v1/jobs/{id}/cancel", s.handleCancel)
	mux.HandleFunc("GET /api/v1/jobs/{id}/output", s.handleOutput)
	mux.HandleFunc("GET /api/v1/jobs/{id}/events", s.handleEvents)
	mux.HandleFunc("GET /api/v1/workers", s.handleWorkers)
	mux.HandleFunc("POST /api/v1/workers/{id}/drain", s.handleDrain)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	if withPprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// apiError is the JSON error envelope.
type apiError struct {
	Error string `json:"error"`
}

func writeErr(w http.ResponseWriter, err error) {
	status := http.StatusInternalServerError
	switch {
	case errors.Is(err, ErrNotFound):
		status = http.StatusNotFound
	case errors.Is(err, ErrQuota):
		status = http.StatusTooManyRequests
	}
	writeJSON(w, status, apiError{Error: err.Error()})
}

func jobID(r *http.Request) (int, error) {
	return strconv.Atoi(r.PathValue("id"))
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req SubmitRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, apiError{Error: "bad submit body: " + err.Error()})
		return
	}
	rec, err := s.Submit(req)
	if err != nil {
		if errors.Is(err, ErrQuota) {
			writeErr(w, err)
			return
		}
		writeJSON(w, http.StatusBadRequest, apiError{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusCreated, rec)
}

func (s *Server) handleSubmitPipeline(w http.ResponseWriter, r *http.Request) {
	var req SubmitRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, apiError{Error: "bad pipeline body: " + err.Error()})
		return
	}
	rec, err := s.SubmitPipeline(req)
	if err != nil {
		if errors.Is(err, ErrQuota) {
			writeErr(w, err)
			return
		}
		writeJSON(w, http.StatusBadRequest, apiError{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusCreated, rec)
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.List(r.URL.Query().Get("tenant")))
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	id, err := jobID(r)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, apiError{Error: "bad job id"})
		return
	}
	rec, err := s.Get(id)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, rec)
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	id, err := jobID(r)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, apiError{Error: "bad job id"})
		return
	}
	rec, err := s.Cancel(id)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, rec)
}

func (s *Server) handleOutput(w http.ResponseWriter, r *http.Request) {
	id, err := jobID(r)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, apiError{Error: "bad job id"})
		return
	}
	res, err := s.Result(id)
	if err != nil {
		writeErr(w, err)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	for _, part := range res.Output {
		for _, rec := range part {
			fmt.Fprintf(w, "%s\t%s\n", rec.Key, rec.Value)
		}
	}
}

// EventSnapshot is one SSE progress frame.
type EventSnapshot struct {
	Job     JobRecord        `json:"job"`
	Metrics map[string]int64 `json:"metrics,omitempty"`
}

func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	id, err := jobID(r)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, apiError{Error: "bad job id"})
		return
	}
	rec, err := s.Get(id)
	if err != nil {
		writeErr(w, err)
		return
	}
	if r.URL.Query().Get("once") != "" {
		writeJSON(w, http.StatusOK, EventSnapshot{Job: rec, Metrics: s.fleet.Metrics()})
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeJSON(w, http.StatusNotImplemented, apiError{Error: "streaming unsupported"})
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)

	send := func(event string, rec JobRecord) {
		b, _ := json.Marshal(EventSnapshot{Job: rec, Metrics: s.fleet.Metrics()})
		fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, b)
		fl.Flush()
	}
	send("progress", rec)
	j := s.get(id)
	t := time.NewTicker(150 * time.Millisecond)
	defer t.Stop()
	for {
		select {
		case <-r.Context().Done():
			return
		case <-j.done:
			rec, _ = s.Get(id)
			send("done", rec)
			return
		case <-t.C:
			rec, _ = s.Get(id)
			send("progress", rec)
		}
	}
}

func (s *Server) handleWorkers(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.fleet.Workers())
}

func (s *Server) handleDrain(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		writeJSON(w, http.StatusBadRequest, apiError{Error: "bad worker id"})
		return
	}
	if !s.fleet.DrainWorker(id) {
		writeJSON(w, http.StatusNotFound, apiError{Error: fmt.Sprintf("no live worker %d", id)})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"draining": id})
}

// healthz is the liveness payload.
type healthz struct {
	OK        bool             `json:"ok"`
	FleetAddr string           `json:"fleet_addr"`
	Fleet     map[string]int64 `json:"fleet"`
	Jobs      map[string]int64 `json:"jobs"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, healthz{
		OK: true, FleetAddr: s.fleet.Addr(), Fleet: s.fleet.Metrics(), Jobs: s.metrics(),
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.cfg.Registry.Snapshot())
}
