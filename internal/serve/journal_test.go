package serve_test

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/serve"
)

// journalLines parses every line of a journal file, failing the test on
// the first unparsable one — the "file is repaired" assertion.
func journalLines(t *testing.T, path string) []map[string]any {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var out []map[string]any
	sc := bufio.NewScanner(f)
	line := 0
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		var m map[string]any
		if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
			t.Fatalf("journal line %d unparsable after repair: %v (%q)", line, err, sc.Text())
		}
		out = append(out, m)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestServeJournalTornFinalLine covers the crash-mid-append case: the
// journal ends in a torn (half-written) line. Startup must tolerate it
// — log, truncate the tail, replay the valid prefix — re-queue the job
// caught mid-run, and run it to success; the repaired file must parse
// line by line and a reopened server must see the terminal record.
func TestServeJournalTornFinalLine(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	ref := wcRef(t, 21)

	crash := fmt.Sprintf(`{"op":"submit","job":{"id":0,"tenant":"t","name":%q,"spec":%s,"state":"queued"}}
{"op":"state","id":0,"state":"running"}
{"op":"state","id":0,"sta`, ref.Name, ref.Spec) // torn mid-append, no newline
	if err := os.WriteFile(path, []byte(crash), 0o644); err != nil {
		t.Fatal(err)
	}

	srv, err := serve.New(serve.Config{Fleet: slowHeartbeats, JournalPath: path})
	if err != nil {
		t.Fatalf("New on a torn journal: %v", err)
	}

	// The torn tail is gone: every surviving line parses.
	lines := journalLines(t, path)
	if len(lines) < 2 {
		t.Fatalf("repaired journal has %d lines, want the 2 intact ones (plus converge entries)", len(lines))
	}

	// The mid-run job was re-queued, not failed.
	rec, err := srv.Get(0)
	if err != nil {
		t.Fatal(err)
	}
	if rec.State != serve.StateQueued && rec.State != serve.StateRunning {
		t.Fatalf("replayed job 0 is %s, want queued/running (re-queued)", rec.State)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	serveWorkers(t, ctx, srv, 1, 2)
	if rec, err = srv.Wait(ctx, 0); err != nil || rec.State != serve.StateSucceeded {
		t.Fatalf("job 0 after torn-journal restart: %v state %s, want succeeded", err, rec.State)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: the terminal record replays cleanly from the repaired file.
	srv2, err := serve.New(serve.Config{Fleet: slowHeartbeats, JournalPath: path})
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()
	if rec, err = srv2.Get(0); err != nil || rec.State != serve.StateSucceeded {
		t.Fatalf("reopened job 0: %v state %s, want succeeded", err, rec.State)
	}
}

// TestServeJournalDuplicateTerminal replays a journal holding two
// terminal transitions for one job (and a stale non-terminal one after
// them). Before the terminal guard this double-closed the job's done
// channel and panicked; now the first terminal state wins.
func TestServeJournalDuplicateTerminal(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	ref := wcRef(t, 22)

	journal := fmt.Sprintf(`{"op":"submit","job":{"id":0,"tenant":"t","name":%q,"spec":%s,"state":"queued"}}
{"op":"state","id":0,"state":"succeeded"}
{"op":"state","id":0,"state":"canceled"}
{"op":"state","id":0,"state":"running"}
`, ref.Name, ref.Spec)
	if err := os.WriteFile(path, []byte(journal), 0o644); err != nil {
		t.Fatal(err)
	}

	srv, err := serve.New(serve.Config{Fleet: slowHeartbeats, JournalPath: path})
	if err != nil {
		t.Fatalf("New on duplicate terminals: %v", err)
	}
	defer srv.Close()
	rec, err := srv.Get(0)
	if err != nil {
		t.Fatal(err)
	}
	if rec.State != serve.StateSucceeded {
		t.Fatalf("job 0 is %s, want succeeded (first terminal wins)", rec.State)
	}
	// The job is terminal: Wait returns immediately instead of hanging
	// on a re-queued ghost.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if rec, err = srv.Wait(ctx, 0); err != nil || rec.State != serve.StateSucceeded {
		t.Fatalf("wait on replayed terminal job: %v state %s", err, rec.State)
	}
}

// TestServeJournalMidFileCorruption distinguishes real corruption from
// a torn tail: an unparsable line with valid entries after it must
// fail startup with the line number, not be silently dropped.
func TestServeJournalMidFileCorruption(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	ref := wcRef(t, 23)

	journal := fmt.Sprintf(`{"op":"submit","job":{"id":0,"tenant":"t","name":%q,"spec":%s,"state":"queued"}}
{"op":"state","id":0,"sta
{"op":"state","id":0,"state":"succeeded"}
`, ref.Name, ref.Spec)
	if err := os.WriteFile(path, []byte(journal), 0o644); err != nil {
		t.Fatal(err)
	}

	_, err := serve.New(serve.Config{Fleet: slowHeartbeats, JournalPath: path})
	if err == nil {
		t.Fatal("New accepted mid-file corruption")
	}
	if !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("error %q does not name the corrupt line", err)
	}
}
