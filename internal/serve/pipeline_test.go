package serve_test

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/dag"
	"repro/internal/serve"
	"repro/internal/workloads/pagerank"
)

// TestServePipeline drives the pipeline endpoint over HTTP: submit the
// registered iterative-PageRank pipeline, wait for it, and require its
// output byte-identical to the same pipeline run in process. Bad
// references must be rejected at admission.
func TestServePipeline(t *testing.T) {
	srv, err := serve.New(serve.Config{Fleet: slowHeartbeats})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler(false))
	defer ts.Close()
	c := serve.NewClient(ts.URL)

	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	serveWorkers(t, ctx, srv, 2, 3)

	iterSpec := pagerank.IterSpec{Nodes: 150, AvgDegree: 5, Seed: 9, Parts: 3, MaxIters: 3}
	specJSON, err := json.Marshal(iterSpec)
	if err != nil {
		t.Fatal(err)
	}

	// Unknown pipelines and plain-job names must fail at admission.
	if _, err := c.SubmitPipeline(ctx, serve.SubmitRequest{Name: "no-such-pipeline"}); err == nil {
		t.Fatal("SubmitPipeline accepted an unregistered pipeline")
	}

	rec, err := c.SubmitPipeline(ctx, serve.SubmitRequest{
		Name: "pagerank-iter", Spec: specJSON, Tenant: "analytics",
	})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Kind != serve.KindPipeline {
		t.Fatalf("record kind %q, want %q", rec.Kind, serve.KindPipeline)
	}

	rec, err = c.WaitJob(ctx, rec.ID, 100*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if rec.State != serve.StateSucceeded {
		t.Fatalf("pipeline %d ended %s: %s", rec.ID, rec.State, rec.Error)
	}

	// The service's retained result must match the in-process run.
	want, err := dag.Run(ctx, pagerank.NewIterPipeline(iterSpec), pagerank.IterInputs(iterSpec),
		dag.Config{Engine: &dag.InProcess{}})
	if err != nil {
		t.Fatal(err)
	}
	out, err := c.Output(ctx, rec.ID)
	if err != nil {
		t.Fatal(err)
	}
	var wantLines bytes.Buffer
	for _, part := range want.Output {
		for _, r := range part {
			wantLines.WriteString(string(r.Key) + "\t" + string(r.Value) + "\n")
		}
	}
	if !bytes.Equal(out, wantLines.Bytes()) {
		t.Fatalf("pipeline output differs from in-process run (%d vs %d bytes)", len(out), wantLines.Len())
	}

	// The record shows up in listings with its kind.
	recs, err := c.List(ctx, "analytics")
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, r := range recs {
		if r.ID == rec.ID && r.Kind == serve.KindPipeline && strings.HasPrefix(r.Name, "pagerank-iter") {
			found = true
		}
	}
	if !found {
		t.Fatalf("pipeline record missing from tenant listing: %+v", recs)
	}
}
