package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"repro/internal/cluster"
)

// Client is the HTTP client for the serve API, shared by antctl and
// tests.
type Client struct {
	base string
	hc   *http.Client
}

// NewClient targets an antserve base URL ("http://127.0.0.1:7070").
func NewClient(base string) *Client {
	return &Client{base: strings.TrimRight(base, "/"), hc: &http.Client{}}
}

// do runs one request and decodes the JSON response into out (skipped
// when out is nil). Error responses become Go errors: 404 wraps
// ErrNotFound and 429 wraps ErrQuota, so callers can errors.Is them.
func (c *Client) do(ctx context.Context, method, path string, body, out any) error {
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			return err
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 400 {
		var ae apiError
		msg := resp.Status
		if json.NewDecoder(resp.Body).Decode(&ae) == nil && ae.Error != "" {
			msg = ae.Error
		}
		switch resp.StatusCode {
		case http.StatusNotFound:
			return fmt.Errorf("%w: %s", ErrNotFound, strings.TrimPrefix(msg, ErrNotFound.Error()+": "))
		case http.StatusTooManyRequests:
			return fmt.Errorf("%w: %s", ErrQuota, strings.TrimPrefix(msg, ErrQuota.Error()+": "))
		}
		return fmt.Errorf("serve: %s %s: %s", method, path, msg)
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// Submit submits one job.
func (c *Client) Submit(ctx context.Context, req SubmitRequest) (JobRecord, error) {
	var rec JobRecord
	err := c.do(ctx, http.MethodPost, "/api/v1/jobs", req, &rec)
	return rec, err
}

// SubmitPipeline submits one registered dag pipeline; the returned
// record shares the job API (status, tail, output, cancel).
func (c *Client) SubmitPipeline(ctx context.Context, req SubmitRequest) (JobRecord, error) {
	var rec JobRecord
	err := c.do(ctx, http.MethodPost, "/api/v1/pipelines", req, &rec)
	return rec, err
}

// List lists jobs, optionally one tenant's.
func (c *Client) List(ctx context.Context, tenant string) ([]JobRecord, error) {
	path := "/api/v1/jobs"
	if tenant != "" {
		path += "?tenant=" + tenant
	}
	var recs []JobRecord
	err := c.do(ctx, http.MethodGet, path, nil, &recs)
	return recs, err
}

// Get fetches one job with live progress.
func (c *Client) Get(ctx context.Context, id int) (JobRecord, error) {
	var rec JobRecord
	err := c.do(ctx, http.MethodGet, fmt.Sprintf("/api/v1/jobs/%d", id), nil, &rec)
	return rec, err
}

// Cancel cancels a job (idempotent).
func (c *Client) Cancel(ctx context.Context, id int) (JobRecord, error) {
	var rec JobRecord
	err := c.do(ctx, http.MethodPost, fmt.Sprintf("/api/v1/jobs/%d/cancel", id), nil, &rec)
	return rec, err
}

// Output downloads a succeeded job's output ("key\tvalue" lines).
func (c *Client) Output(ctx context.Context, id int) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		fmt.Sprintf("%s/api/v1/jobs/%d/output", c.base, id), nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return nil, fmt.Errorf("serve: output %d: %s: %s", id, resp.Status, bytes.TrimSpace(b))
	}
	return io.ReadAll(resp.Body)
}

// Workers lists the fleet's workers.
func (c *Client) Workers(ctx context.Context) ([]cluster.WorkerInfo, error) {
	var ws []cluster.WorkerInfo
	err := c.do(ctx, http.MethodGet, "/api/v1/workers", nil, &ws)
	return ws, err
}

// DrainWorker asks the fleet to drain one worker.
func (c *Client) DrainWorker(ctx context.Context, id int) error {
	return c.do(ctx, http.MethodPost, fmt.Sprintf("/api/v1/workers/%d/drain", id), nil, nil)
}

// Healthz fetches the liveness payload.
func (c *Client) Healthz(ctx context.Context) (map[string]any, error) {
	var h map[string]any
	err := c.do(ctx, http.MethodGet, "/healthz", nil, &h)
	return h, err
}

// Metrics fetches the /metrics snapshot values.
func (c *Client) Metrics(ctx context.Context) (map[string]int64, error) {
	var snap struct {
		Values map[string]int64 `json:"values"`
	}
	err := c.do(ctx, http.MethodGet, "/metrics", nil, &snap)
	return snap.Values, err
}

// Tail follows a job's SSE progress stream, calling fn for each frame,
// until the job finishes (fn receives a final "done" event), the
// stream drops, or ctx ends.
func (c *Client) Tail(ctx context.Context, id int, fn func(event string, snap EventSnapshot)) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		fmt.Sprintf("%s/api/v1/jobs/%d/events", c.base, id), nil)
	if err != nil {
		return err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return fmt.Errorf("serve: events %d: %s: %s", id, resp.Status, bytes.TrimSpace(b))
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 8*1024*1024)
	event := ""
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			var snap EventSnapshot
			if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &snap); err != nil {
				return fmt.Errorf("serve: bad SSE frame: %w", err)
			}
			if fn != nil {
				fn(event, snap)
			}
			if event == "done" {
				return nil
			}
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	return fmt.Errorf("serve: events stream for job %d ended early", id)
}

// WaitJob polls until the job reaches a terminal state.
func (c *Client) WaitJob(ctx context.Context, id int, poll time.Duration) (JobRecord, error) {
	if poll <= 0 {
		poll = 100 * time.Millisecond
	}
	t := time.NewTicker(poll)
	defer t.Stop()
	for {
		rec, err := c.Get(ctx, id)
		if err != nil {
			return rec, err
		}
		switch rec.State {
		case StateSucceeded, StateFailed, StateCanceled:
			return rec, nil
		}
		select {
		case <-t.C:
		case <-ctx.Done():
			return rec, ctx.Err()
		}
	}
}
