// Package serve is the long-lived multi-tenant job service over one
// shared worker fleet (the antserve daemon's core). It owns a
// cluster.Fleet, admits jobs through per-tenant quotas into a
// persistent-enough queue (a JSONL journal replayed on restart), runs
// admitted jobs concurrently over the fleet — per-tenant weighted fair
// share arbitrates task leases between them — and exposes the whole
// thing over an HTTP/JSON API (submission, status, cancellation, SSE
// progress streams, worker listing and drain).
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"sort"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/mr"
	"repro/internal/obs"
)

// Job states.
const (
	StateQueued    = "queued"
	StateRunning   = "running"
	StateSucceeded = "succeeded"
	StateFailed    = "failed"
	StateCanceled  = "canceled"
)

// TenantConfig is one tenant's admission and scheduling policy.
type TenantConfig struct {
	// Weight is the tenant's fair-share weight at the task-lease level
	// (default 1): under contention a weight-2 tenant sustains twice the
	// running leases of a weight-1 tenant.
	Weight int `json:"weight"`
	// Priority is the default job priority for the tenant's submissions;
	// it breaks fair-share ties, higher first.
	Priority int `json:"priority"`
	// MaxRunning caps the tenant's concurrently running jobs (default 4).
	MaxRunning int `json:"max_running"`
	// MaxQueued caps the tenant's queued jobs; submissions beyond it are
	// rejected with ErrQuota — HTTP 429 (default 32).
	MaxQueued int `json:"max_queued"`
}

func (t TenantConfig) normalized() TenantConfig {
	if t.Weight <= 0 {
		t.Weight = 1
	}
	if t.MaxRunning <= 0 {
		t.MaxRunning = 4
	}
	if t.MaxQueued <= 0 {
		t.MaxQueued = 32
	}
	return t
}

// Config tunes a Server.
type Config struct {
	// Fleet configures the worker fleet the server owns; workers join at
	// the fleet's RPC address (Server.FleetAddr).
	Fleet cluster.FleetConfig
	// Tenants maps tenant names to their policies; tenants not listed
	// get DefaultTenant (zero value: weight 1, 4 running, 32 queued).
	Tenants       map[string]TenantConfig
	DefaultTenant TenantConfig
	// MaxRunningJobs caps concurrently running jobs across all tenants
	// (default 16).
	MaxRunningJobs int
	// MaxTaskAttempts is each job's per-task attempt budget (default 4).
	MaxTaskAttempts int
	// JournalPath, when non-empty, makes the queue persistent-enough: a
	// JSONL journal of submissions and state transitions, replayed on
	// startup (jobs caught mid-run are re-queued).
	//
	// Durability contract: terminal state transitions (succeeded,
	// failed, canceled) are fsynced before the write is considered
	// done — a job observed finished stays finished across a crash.
	// Submissions and non-terminal transitions are appended without
	// sync: a crash may lose the tail, which at worst forgets a
	// just-submitted job or re-queues a job caught mid-run, both safe
	// (builders are deterministic, results are never persisted). The
	// same crash can tear the final line mid-append; replay tolerates
	// exactly that — a torn *last* line is logged and truncated away,
	// while corruption earlier in the file still fails startup.
	JournalPath string
	// Registry receives the server's and fleet's metric sources (one is
	// created if nil); /metrics serves its snapshot.
	Registry *obs.Registry
}

func (c Config) normalized() Config {
	if c.MaxRunningJobs <= 0 {
		c.MaxRunningJobs = 16
	}
	if c.MaxTaskAttempts <= 0 {
		c.MaxTaskAttempts = 4
	}
	if c.Registry == nil {
		c.Registry = obs.NewRegistry()
	}
	return c
}

// ErrQuota is returned (and mapped to HTTP 429) when a submission
// exceeds its tenant's queue quota.
var ErrQuota = errors.New("serve: tenant queue quota exceeded")

// ErrNotFound is returned for unknown job IDs.
var ErrNotFound = errors.New("serve: no such job")

// KindPipeline marks a JobRecord that runs a registered dag pipeline
// (a DAG of stage jobs over the fleet) rather than a single job. The
// zero Kind is a plain job.
const KindPipeline = "pipeline"

// JobRecord is one job's externally visible state.
type JobRecord struct {
	ID     int    `json:"id"`
	Tenant string `json:"tenant"`
	// Kind distinguishes plain jobs ("") from pipelines ("pipeline").
	Kind string `json:"kind,omitempty"`
	// Name and Spec form the cluster.JobRef rebuilt by every worker —
	// or, for pipelines, the dag registry reference. Spec must be JSON
	// (every registered job in this repo uses JSON specs), which keeps
	// the journal and API human-readable.
	Name        string           `json:"name"`
	Spec        json.RawMessage  `json:"spec,omitempty"`
	Priority    int              `json:"priority"`
	State       string           `json:"state"`
	Error       string           `json:"error,omitempty"`
	SubmittedAt time.Time        `json:"submitted_at"`
	StartedAt   time.Time        `json:"started_at,omitempty"`
	FinishedAt  time.Time        `json:"finished_at,omitempty"`
	Progress    cluster.Progress `json:"progress"`
}

// SubmitRequest is one job submission.
type SubmitRequest struct {
	Name     string          `json:"name"`
	Spec     json.RawMessage `json:"spec,omitempty"`
	Tenant   string          `json:"tenant,omitempty"`
	Priority *int            `json:"priority,omitempty"` // default: tenant's
}

// job is a JobRecord plus its runtime attachments.
type job struct {
	rec    JobRecord
	cancel context.CancelFunc // non-nil while running
	handle *cluster.JobHandle // non-nil once started
	res    *mr.Result         // non-nil once succeeded
	done   chan struct{}      // closed on any terminal state
}

// Server is the job service: admission, queueing, dispatch over one
// fleet, and result retention.
type Server struct {
	cfg   Config
	fleet *cluster.Fleet

	mu      sync.Mutex
	jobs    map[int]*job
	nextID  int
	journal *os.File
	closed  bool

	unreg []func()
}

// New builds a server: fleet listener up (workers may join
// immediately), journal replayed, metric sources registered, and any
// replayed queue dispatching.
func New(cfg Config) (*Server, error) {
	cfg = cfg.normalized()
	fleet, err := cluster.NewFleet(cfg.Fleet)
	if err != nil {
		return nil, err
	}
	s := &Server{cfg: cfg, fleet: fleet, jobs: make(map[int]*job)}
	if cfg.JournalPath != "" {
		if err := s.replayJournal(); err != nil {
			fleet.Close()
			return nil, err
		}
		f, err := os.OpenFile(cfg.JournalPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			fleet.Close()
			return nil, err
		}
		s.journal = f
		// Converge the journal: anything re-queued by replay is recorded
		// as queued again, so a second replay agrees with memory.
		s.mu.Lock()
		for _, j := range s.jobs {
			if j.rec.State == StateQueued {
				s.journalLocked(journalEntry{Op: "state", ID: j.rec.ID, State: StateQueued, Time: time.Now()})
			}
		}
		s.mu.Unlock()
	}
	s.unreg = append(s.unreg,
		cfg.Registry.Register("fleet", fleet.Metrics),
		cfg.Registry.Register("serve", s.metrics),
	)
	s.mu.Lock()
	s.maybeStartLocked()
	s.mu.Unlock()
	return s, nil
}

// FleetAddr is the fleet RPC address workers join at.
func (s *Server) FleetAddr() string { return s.fleet.Addr() }

// Fleet exposes the underlying fleet (worker listing, drain).
func (s *Server) Fleet() *cluster.Fleet { return s.fleet }

// Registry is the server's metric registry (serves /metrics).
func (s *Server) Registry() *obs.Registry { return s.cfg.Registry }

// Close cancels running jobs, shuts the fleet down, and closes the
// journal. Queued jobs stay queued in the journal for the next run.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	var cancels []context.CancelFunc
	var waits []chan struct{}
	for _, j := range s.jobs {
		if j.cancel != nil {
			cancels = append(cancels, j.cancel)
		}
		if j.rec.State == StateRunning {
			waits = append(waits, j.done)
		}
	}
	s.mu.Unlock()
	for _, cancel := range cancels {
		cancel()
	}
	for _, done := range waits {
		<-done
	}
	for _, u := range s.unreg {
		u()
	}
	err := s.fleet.Close()
	s.mu.Lock()
	if s.journal != nil {
		s.journal.Close()
		s.journal = nil
	}
	s.mu.Unlock()
	return err
}

// tenant resolves a tenant's policy.
func (s *Server) tenant(name string) TenantConfig {
	if t, ok := s.cfg.Tenants[name]; ok {
		return t.normalized()
	}
	return s.cfg.DefaultTenant.normalized()
}

// Submit admits one job into the queue (or rejects it: unknown
// registry jobs fail fast with the build error, tenants over their
// queue quota get ErrQuota).
func (s *Server) Submit(req SubmitRequest) (JobRecord, error) {
	ref := cluster.JobRef{Name: req.Name, Spec: []byte(req.Spec)}
	if err := cluster.ValidateJob(ref); err != nil {
		return JobRecord{}, err
	}
	return s.admit(req, "")
}

// admit runs the shared quota/queue path for jobs and pipelines; the
// caller has already validated the registry reference.
func (s *Server) admit(req SubmitRequest, kind string) (JobRecord, error) {
	if req.Tenant == "" {
		req.Tenant = "default"
	}
	tc := s.tenant(req.Tenant)
	prio := tc.Priority
	if req.Priority != nil {
		prio = *req.Priority
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return JobRecord{}, errors.New("serve: server is shutting down")
	}
	queued := 0
	for _, j := range s.jobs {
		if j.rec.Tenant == req.Tenant && j.rec.State == StateQueued {
			queued++
		}
	}
	if queued >= tc.MaxQueued {
		return JobRecord{}, fmt.Errorf("%w: tenant %q has %d queued (max %d)",
			ErrQuota, req.Tenant, queued, tc.MaxQueued)
	}
	id := s.nextID
	s.nextID++
	j := &job{
		rec: JobRecord{
			ID: id, Tenant: req.Tenant, Kind: kind, Name: req.Name, Spec: req.Spec,
			Priority: prio, State: StateQueued, SubmittedAt: time.Now(),
		},
		done: make(chan struct{}),
	}
	s.jobs[id] = j
	s.journalLocked(journalEntry{Op: "submit", Job: &j.rec, Time: j.rec.SubmittedAt})
	s.maybeStartLocked()
	return j.rec, nil
}

// maybeStartLocked dispatches queued jobs while capacity allows:
// global running below MaxRunningJobs, tenant running below its
// MaxRunning; among eligible jobs, highest priority first, then FIFO.
func (s *Server) maybeStartLocked() {
	if s.closed {
		return
	}
	for {
		running := 0
		perTenant := make(map[string]int)
		for _, j := range s.jobs {
			if j.rec.State == StateRunning {
				running++
				perTenant[j.rec.Tenant]++
			}
		}
		if running >= s.cfg.MaxRunningJobs {
			return
		}
		var pick *job
		for _, j := range s.jobs {
			if j.rec.State != StateQueued {
				continue
			}
			if perTenant[j.rec.Tenant] >= s.tenant(j.rec.Tenant).MaxRunning {
				continue
			}
			if pick == nil || j.rec.Priority > pick.rec.Priority ||
				(j.rec.Priority == pick.rec.Priority && j.rec.ID < pick.rec.ID) {
				pick = j
			}
		}
		if pick == nil {
			return
		}
		s.startLocked(pick)
	}
}

// startLocked hands one queued job to the fleet.
func (s *Server) startLocked(j *job) {
	if j.rec.Kind == KindPipeline {
		s.startPipelineLocked(j)
		return
	}
	ctx, cancel := context.WithCancel(context.Background())
	tc := s.tenant(j.rec.Tenant)
	h, err := s.fleet.Submit(ctx, cluster.JobSpec{
		Ref:             cluster.JobRef{Name: j.rec.Name, Spec: []byte(j.rec.Spec)},
		Tenant:          j.rec.Tenant,
		Weight:          tc.Weight,
		Priority:        j.rec.Priority,
		MaxTaskAttempts: s.cfg.MaxTaskAttempts,
	})
	if err != nil {
		cancel()
		s.finishLocked(j, nil, err)
		return
	}
	j.cancel = cancel
	j.handle = h
	j.rec.State = StateRunning
	j.rec.StartedAt = time.Now()
	s.journalLocked(journalEntry{Op: "state", ID: j.rec.ID, State: StateRunning, Time: j.rec.StartedAt})
	go func() {
		res, werr := h.Wait(context.Background())
		cancel()
		s.mu.Lock()
		s.finishLocked(j, res, werr)
		s.maybeStartLocked()
		s.mu.Unlock()
	}()
}

// finishLocked moves a job to its terminal state. Terminal states are
// final: a second call (a cancel racing the job's own completion, a
// replayed journal already holding the outcome) is a no-op, so j.done
// closes exactly once and the first outcome sticks.
func (s *Server) finishLocked(j *job, res *mr.Result, err error) {
	if isTerminal(j.rec.State) {
		return
	}
	j.cancel = nil
	j.rec.FinishedAt = time.Now()
	switch {
	case err == nil:
		j.rec.State = StateSucceeded
		j.res = res
	case errors.Is(err, context.Canceled):
		j.rec.State = StateCanceled
	default:
		j.rec.State = StateFailed
		j.rec.Error = err.Error()
	}
	s.journalLocked(journalEntry{
		Op: "state", ID: j.rec.ID, State: j.rec.State, Error: j.rec.Error, Time: j.rec.FinishedAt,
	})
	close(j.done)
}

// Cancel cancels a queued or running job; terminal jobs are left as
// they ended (no error: cancellation is idempotent).
func (s *Server) Cancel(id int) (JobRecord, error) {
	s.mu.Lock()
	j := s.jobs[id]
	if j == nil {
		s.mu.Unlock()
		return JobRecord{}, ErrNotFound
	}
	switch j.rec.State {
	case StateQueued:
		s.finishLocked(j, nil, context.Canceled)
		rec := j.rec
		s.mu.Unlock()
		return rec, nil
	case StateRunning:
		cancel := j.cancel
		s.mu.Unlock()
		if cancel != nil {
			cancel()
		}
		<-j.done
		return s.Get(id)
	default:
		rec := j.rec
		s.mu.Unlock()
		return rec, nil
	}
}

func (s *Server) get(id int) *job {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.jobs[id]
}

// Get returns one job's record, with live progress for running jobs.
func (s *Server) Get(id int) (JobRecord, error) {
	s.mu.Lock()
	j := s.jobs[id]
	if j == nil {
		s.mu.Unlock()
		return JobRecord{}, ErrNotFound
	}
	rec := j.rec
	h := j.handle
	s.mu.Unlock()
	if h != nil {
		rec.Progress = h.Progress()
	}
	return rec, nil
}

// List returns all jobs (optionally one tenant's), newest first.
func (s *Server) List(tenant string) []JobRecord {
	s.mu.Lock()
	out := make([]JobRecord, 0, len(s.jobs))
	handles := make([]*cluster.JobHandle, 0, len(s.jobs))
	for _, j := range s.jobs {
		if tenant != "" && j.rec.Tenant != tenant {
			continue
		}
		out = append(out, j.rec)
		handles = append(handles, j.handle)
	}
	s.mu.Unlock()
	for i, h := range handles {
		if h != nil {
			out[i].Progress = h.Progress()
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a].ID > out[b].ID })
	return out
}

// Wait blocks until the job reaches a terminal state.
func (s *Server) Wait(ctx context.Context, id int) (JobRecord, error) {
	j := s.get(id)
	if j == nil {
		return JobRecord{}, ErrNotFound
	}
	select {
	case <-j.done:
		return s.Get(id)
	case <-ctx.Done():
		return JobRecord{}, ctx.Err()
	}
}

// Result returns a succeeded job's full result (nil error only when
// the job succeeded).
func (s *Server) Result(id int) (*mr.Result, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j := s.jobs[id]
	if j == nil {
		return nil, ErrNotFound
	}
	if j.rec.State != StateSucceeded {
		return nil, fmt.Errorf("serve: job %d is %s, not %s", id, j.rec.State, StateSucceeded)
	}
	if j.res == nil {
		// Succeeded before a restart: the journal keeps the record, not
		// the output.
		return nil, fmt.Errorf("serve: job %d's result was not retained across a restart", id)
	}
	return j.res, nil
}

// metrics is the server's obs.Source.
func (s *Server) metrics() map[string]int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	m := map[string]int64{
		"jobs_queued": 0, "jobs_running": 0, "jobs_succeeded": 0,
		"jobs_failed": 0, "jobs_canceled": 0,
		"jobs_total": int64(len(s.jobs)),
	}
	for _, j := range s.jobs {
		m["jobs_"+j.rec.State]++
	}
	return m
}
