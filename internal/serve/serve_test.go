package serve_test

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/experiments"
	"repro/internal/iokit"
	"repro/internal/mr"
	"repro/internal/serve"
)

// wcRef builds an exp/wordcount JobRef small enough for tests; seed
// varies the dataset so jobs cannot accidentally share output.
func wcRef(t *testing.T, seed uint64) cluster.JobRef {
	t.Helper()
	ref, err := experiments.ClusterRef(experiments.ClusterJobWordCount, experiments.Config{
		Scale: 0.02, Seed: seed, Splits: 4, Reducers: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	return ref
}

// baseline runs the same registry job on the in-process engine.
func baseline(t *testing.T, ref cluster.JobRef) *mr.Result {
	t.Helper()
	job, splits, err := cluster.BuildJob(ref)
	if err != nil {
		t.Fatal(err)
	}
	res, err := mr.Run(job, splits)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func assertSameOutput(t *testing.T, id int, got, want *mr.Result) {
	t.Helper()
	g, w := got.SortedOutput(), want.SortedOutput()
	if len(g) != len(w) {
		t.Fatalf("job %d: output length %d, want %d", id, len(g), len(w))
	}
	for i := range g {
		if !bytes.Equal(g[i].Key, w[i].Key) || !bytes.Equal(g[i].Value, w[i].Value) {
			t.Fatalf("job %d record %d: got %s, want %s",
				id, i, mr.FormatRecord(g[i]), mr.FormatRecord(w[i]))
		}
	}
}

// serveWorkers joins n in-process workers to the server's fleet.
func serveWorkers(t *testing.T, ctx context.Context, srv *serve.Server, n, slots int) {
	t.Helper()
	for i := 0; i < n; i++ {
		go cluster.RunWorker(ctx, cluster.WorkerOptions{
			Coordinator: srv.FleetAddr(), Slots: slots, FS: iokit.NewMemFS(),
		})
	}
	if err := srv.Fleet().WaitWorkers(ctx, n); err != nil {
		t.Fatal(err)
	}
}

// slowHeartbeats keeps -race scheduling hiccups from spuriously
// declaring a worker dead mid-test.
var slowHeartbeats = cluster.FleetConfig{HeartbeatEvery: 50 * time.Millisecond, HeartbeatMiss: 40}

// TestServeConcurrentTenantsByteIdentical drives the full service over
// HTTP: nine jobs from three tenants run concurrently over one shared
// three-worker fleet, every job's output is byte-identical to its own
// single-process run, and the status, output, workers, healthz,
// metrics, and SSE endpoints all agree with what happened.
func TestServeConcurrentTenantsByteIdentical(t *testing.T) {
	srv, err := serve.New(serve.Config{
		Fleet: slowHeartbeats,
		Tenants: map[string]serve.TenantConfig{
			"analytics": {Weight: 2, MaxRunning: 3},
			"adhoc":     {Weight: 1, MaxRunning: 3},
			"batch":     {Weight: 1, MaxRunning: 3},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler(false))
	defer ts.Close()
	c := serve.NewClient(ts.URL)

	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	serveWorkers(t, ctx, srv, 3, 3)

	tenants := []string{"analytics", "adhoc", "batch"}
	const nJobs = 9
	refs := make([]cluster.JobRef, nJobs)
	ids := make([]int, nJobs)
	for i := 0; i < nJobs; i++ {
		refs[i] = wcRef(t, uint64(100+i))
		rec, err := c.Submit(ctx, serve.SubmitRequest{
			Name: refs[i].Name, Spec: json.RawMessage(refs[i].Spec), Tenant: tenants[i%3],
		})
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		ids[i] = rec.ID
	}

	for i, id := range ids {
		rec, err := c.WaitJob(ctx, id, 50*time.Millisecond)
		if err != nil {
			t.Fatalf("wait %d: %v", id, err)
		}
		if rec.State != serve.StateSucceeded {
			t.Fatalf("job %d is %s (%s), want succeeded", id, rec.State, rec.Error)
		}
		if rec.Progress.TasksDone != rec.Progress.TasksTotal || rec.Progress.TasksTotal == 0 {
			t.Errorf("job %d progress %d/%d, want complete",
				id, rec.Progress.TasksDone, rec.Progress.TasksTotal)
		}
		res, err := srv.Result(id)
		if err != nil {
			t.Fatal(err)
		}
		assertSameOutput(t, id, res, baseline(t, refs[i]))
	}

	out, err := c.Output(ctx, ids[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(out) == 0 || !bytes.Contains(out, []byte("\t")) {
		t.Errorf("output endpoint returned %d bytes without key\\tvalue lines", len(out))
	}

	ws, err := c.Workers(ctx)
	if err != nil {
		t.Fatal(err)
	}
	live := 0
	for _, w := range ws {
		if w.Live {
			live++
		}
	}
	if live != 3 {
		t.Errorf("workers endpoint reports %d live, want 3", live)
	}

	h, err := c.Healthz(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if ok, _ := h["ok"].(bool); !ok {
		t.Errorf("healthz not ok: %v", h)
	}

	m, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if m["serve/jobs_succeeded"] < nJobs {
		t.Errorf("metrics serve/jobs_succeeded = %d, want >= %d", m["serve/jobs_succeeded"], nJobs)
	}
	if m["fleet/workers_live"] != 3 {
		t.Errorf("metrics fleet/workers_live = %d, want 3", m["fleet/workers_live"])
	}

	// Tailing a finished job yields at least one progress frame and a
	// terminal "done" frame with the succeeded record.
	var events []string
	var last serve.EventSnapshot
	if err := c.Tail(ctx, ids[nJobs-1], func(ev string, snap serve.EventSnapshot) {
		events = append(events, ev)
		last = snap
	}); err != nil {
		t.Fatal(err)
	}
	if len(events) < 2 || events[len(events)-1] != "done" {
		t.Errorf("tail events %v, want progress frames ending in done", events)
	}
	if last.Job.State != serve.StateSucceeded {
		t.Errorf("tail final state %s, want succeeded", last.Job.State)
	}
}

// TestServeQuotaAndCancel exercises admission control with no workers
// (jobs park forever): MaxRunning caps dispatch, MaxQueued rejects with
// ErrQuota over HTTP 429, bad submissions fail fast, and cancel works
// on queued and running jobs alike (idempotently).
func TestServeQuotaAndCancel(t *testing.T) {
	srv, err := serve.New(serve.Config{
		Fleet:   slowHeartbeats,
		Tenants: map[string]serve.TenantConfig{"q": {MaxRunning: 1, MaxQueued: 1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler(false))
	defer ts.Close()
	c := serve.NewClient(ts.URL)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	ref := wcRef(t, 1)
	submit := func() (serve.JobRecord, error) {
		return c.Submit(ctx, serve.SubmitRequest{
			Name: ref.Name, Spec: json.RawMessage(ref.Spec), Tenant: "q",
		})
	}
	running, err := submit()
	if err != nil {
		t.Fatal(err)
	}
	queued, err := submit()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := submit(); !errors.Is(err, serve.ErrQuota) {
		t.Fatalf("third submit err = %v, want ErrQuota (429)", err)
	}

	if _, err := c.Submit(ctx, serve.SubmitRequest{Name: "no/such-job"}); err == nil ||
		errors.Is(err, serve.ErrQuota) {
		t.Fatalf("unknown job submit err = %v, want fast build failure", err)
	}
	if _, err := c.Get(ctx, 999); !errors.Is(err, serve.ErrNotFound) {
		t.Fatalf("get 999 err = %v, want ErrNotFound (404)", err)
	}

	// The first job is running (dispatched, parked waiting for workers),
	// the second still queued behind MaxRunning=1.
	rec, err := c.Get(ctx, running.ID)
	if err != nil {
		t.Fatal(err)
	}
	if rec.State != serve.StateRunning {
		t.Fatalf("job %d is %s, want running", running.ID, rec.State)
	}
	rec, err = c.Get(ctx, queued.ID)
	if err != nil {
		t.Fatal(err)
	}
	if rec.State != serve.StateQueued {
		t.Fatalf("job %d is %s, want queued", queued.ID, rec.State)
	}

	for _, id := range []int{queued.ID, running.ID} {
		rec, err := c.Cancel(ctx, id)
		if err != nil {
			t.Fatal(err)
		}
		if rec.State != serve.StateCanceled {
			t.Fatalf("cancel %d left state %s, want canceled", id, rec.State)
		}
		// Idempotent: canceling a terminal job returns it unchanged.
		rec, err = c.Cancel(ctx, id)
		if err != nil || rec.State != serve.StateCanceled {
			t.Fatalf("re-cancel %d: %v state %s", id, err, rec.State)
		}
	}
}

// TestServeJournalReplay covers the persistent-enough queue: a journal
// describing a job caught mid-run (crash semantics: no terminal state
// recorded) is replayed into a re-queued job that then runs to success,
// ID allocation continues past replayed jobs, and a reopened server
// still sees every terminal record.
func TestServeJournalReplay(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	ref := wcRef(t, 7)

	// Hand-written crash journal: job 0 was submitted and caught running.
	crash := fmt.Sprintf(`{"op":"submit","job":{"id":0,"tenant":"t","name":%q,"spec":%s,"state":"queued"}}
{"op":"state","id":0,"state":"running"}
`, ref.Name, ref.Spec)
	if err := os.WriteFile(path, []byte(crash), 0o644); err != nil {
		t.Fatal(err)
	}

	srv, err := serve.New(serve.Config{Fleet: slowHeartbeats, JournalPath: path})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	serveWorkers(t, ctx, srv, 1, 2)

	rec, err := srv.Wait(ctx, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rec.State != serve.StateSucceeded {
		t.Fatalf("replayed job 0 is %s (%s), want succeeded", rec.State, rec.Error)
	}
	res, err := srv.Result(0)
	if err != nil {
		t.Fatal(err)
	}
	assertSameOutput(t, 0, res, baseline(t, ref))

	// New submissions allocate past the replayed ID.
	rec2, err := srv.Submit(serve.SubmitRequest{
		Name: ref.Name, Spec: json.RawMessage(ref.Spec), Tenant: "t",
	})
	if err != nil {
		t.Fatal(err)
	}
	if rec2.ID != 1 {
		t.Fatalf("post-replay submit got ID %d, want 1", rec2.ID)
	}
	if rec, err = srv.Wait(ctx, rec2.ID); err != nil || rec.State != serve.StateSucceeded {
		t.Fatalf("job %d: %v state %s", rec2.ID, err, rec.State)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: both jobs replay as terminal records (results themselves
	// are not persisted), and ID allocation continues.
	srv2, err := serve.New(serve.Config{Fleet: slowHeartbeats, JournalPath: path})
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()
	for _, id := range []int{0, 1} {
		rec, err := srv2.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		if rec.State != serve.StateSucceeded {
			t.Errorf("reopened job %d is %s, want succeeded", id, rec.State)
		}
	}
	if _, err := srv2.Result(0); err == nil {
		t.Error("results should not survive a restart")
	}
	rec3, err := srv2.Submit(serve.SubmitRequest{
		Name: ref.Name, Spec: json.RawMessage(ref.Spec), Tenant: "t",
	})
	if err != nil {
		t.Fatal(err)
	}
	if rec3.ID != 2 {
		t.Fatalf("post-reopen submit got ID %d, want 2", rec3.ID)
	}
}
