package serve

import (
	"context"
	"time"

	"repro/internal/dag"
	"repro/internal/mr"
)

// SubmitPipeline admits one dag pipeline into the same queue as plain
// jobs: it shares the tenant quotas, the journal, the dispatch caps,
// and the status/cancel/output API. Admission validates the registered
// pipeline for fleet execution (every stage must carry a cluster job
// ref), so unknown pipelines and in-process-only definitions fail fast.
func (s *Server) SubmitPipeline(req SubmitRequest) (JobRecord, error) {
	if err := dag.ValidatePipeline(req.Name, []byte(req.Spec), true); err != nil {
		return JobRecord{}, err
	}
	return s.admit(req, KindPipeline)
}

// startPipelineLocked hands one queued pipeline to a fleet engine. The
// pipeline counts as one running job against the tenant's MaxRunning;
// its stage jobs go to the fleet directly, where task-lease fair share
// arbitrates them against everything else under the same tenant
// weight.
func (s *Server) startPipelineLocked(j *job) {
	p, inputs, err := dag.BuildPipeline(j.rec.Name, []byte(j.rec.Spec))
	if err != nil {
		s.finishLocked(j, nil, err)
		return
	}
	ctx, cancel := context.WithCancel(context.Background())
	tc := s.tenant(j.rec.Tenant)
	eng := dag.NewFleetEngine(s.fleet)
	eng.Tenant = j.rec.Tenant
	eng.Weight = tc.Weight
	eng.Priority = j.rec.Priority
	eng.MaxTaskAttempts = s.cfg.MaxTaskAttempts

	j.cancel = cancel
	j.rec.State = StateRunning
	j.rec.StartedAt = time.Now()
	s.journalLocked(journalEntry{Op: "state", ID: j.rec.ID, State: StateRunning, Time: j.rec.StartedAt})
	go func() {
		res, rerr := dag.Run(ctx, p, inputs, dag.Config{Engine: eng})
		eng.Close()
		cancel()
		var out *mr.Result
		if rerr == nil {
			// The pipeline's result takes the same shape as a job's, so
			// Result/output retrieval is kind-agnostic.
			out = &mr.Result{Stats: res.Stats, Output: res.Output}
		}
		s.mu.Lock()
		s.finishLocked(j, out, rerr)
		s.maybeStartLocked()
		s.mu.Unlock()
	}()
}
