package serve

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"time"
)

// journalEntry is one JSONL journal line: a submission (Op "submit",
// Job set) or a state transition (Op "state", ID/State/Error set).
type journalEntry struct {
	Op    string     `json:"op"`
	Time  time.Time  `json:"time"`
	Job   *JobRecord `json:"job,omitempty"`
	ID    int        `json:"id,omitempty"`
	State string     `json:"state,omitempty"`
	Error string     `json:"error,omitempty"`
}

// journalLocked appends one entry; persistence failures are surfaced
// on stderr but never fail the operation (the queue keeps working
// in-memory, merely less durable).
func (s *Server) journalLocked(e journalEntry) {
	if s.journal == nil {
		return
	}
	b, err := json.Marshal(e)
	if err == nil {
		_, err = s.journal.Write(append(b, '\n'))
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "serve: journal write failed: %v\n", err)
	}
}

// replayJournal rebuilds the job table from the journal. Jobs whose
// last state was queued or running are re-queued: a job caught mid-run
// left no durable output, and re-running a registry job is safe by
// construction (builders are deterministic in the spec). Terminal jobs
// keep their records (results themselves are not persisted).
func (s *Server) replayJournal() error {
	f, err := os.Open(s.cfg.JournalPath)
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 8*1024*1024)
	line := 0
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		var e journalEntry
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			return fmt.Errorf("serve: journal %s line %d: %w", s.cfg.JournalPath, line, err)
		}
		switch e.Op {
		case "submit":
			if e.Job == nil {
				return fmt.Errorf("serve: journal %s line %d: submit without job", s.cfg.JournalPath, line)
			}
			rec := *e.Job
			rec.State = StateQueued
			s.jobs[rec.ID] = &job{rec: rec, done: make(chan struct{})}
			if rec.ID >= s.nextID {
				s.nextID = rec.ID + 1
			}
		case "state":
			j := s.jobs[e.ID]
			if j == nil {
				continue // state for a job whose submit line was lost
			}
			switch e.State {
			case StateQueued, StateRunning:
				// Non-terminal: replay leaves the job queued for re-dispatch.
				j.rec.State = StateQueued
			case StateSucceeded, StateFailed, StateCanceled:
				j.rec.State = e.State
				j.rec.Error = e.Error
				j.rec.FinishedAt = e.Time
				close(j.done)
			}
		}
	}
	return sc.Err()
}
