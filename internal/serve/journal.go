package serve

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"time"
)

// journalEntry is one JSONL journal line: a submission (Op "submit",
// Job set) or a state transition (Op "state", ID/State/Error set).
type journalEntry struct {
	Op    string     `json:"op"`
	Time  time.Time  `json:"time"`
	Job   *JobRecord `json:"job,omitempty"`
	ID    int        `json:"id,omitempty"`
	State string     `json:"state,omitempty"`
	Error string     `json:"error,omitempty"`
}

// journalLocked appends one entry; persistence failures are surfaced
// on stderr but never fail the operation (the queue keeps working
// in-memory, merely less durable). Terminal state transitions are
// fsynced — see Config.JournalPath for the durability contract.
func (s *Server) journalLocked(e journalEntry) {
	if s.journal == nil {
		return
	}
	b, err := json.Marshal(e)
	if err == nil {
		_, err = s.journal.Write(append(b, '\n'))
	}
	if err == nil && e.Op == "state" && isTerminal(e.State) {
		err = s.journal.Sync()
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "serve: journal write failed: %v\n", err)
	}
}

// isTerminal reports whether a job state is final.
func isTerminal(state string) bool {
	switch state {
	case StateSucceeded, StateFailed, StateCanceled:
		return true
	}
	return false
}

// replayJournal rebuilds the job table from the journal. Jobs whose
// last state was queued or running are re-queued: a job caught mid-run
// left no durable output, and re-running a registry job is safe by
// construction (builders are deterministic in the spec). Terminal jobs
// keep their records (results themselves are not persisted).
//
// A crash mid-append leaves a torn final line (non-terminal appends
// are not fsynced); that is expected damage, so an unparsable *last*
// line is logged, truncated away — the journal is reopened in append
// mode, so the torn bytes must not remain to corrupt the next entry —
// and replay succeeds on the valid prefix. An unparsable line with
// valid entries after it is not a torn append but real corruption, and
// replay fails with the line number.
func (s *Server) replayJournal() error {
	f, err := os.Open(s.cfg.JournalPath)
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 8*1024*1024)
	line := 0
	var validEnd int64 // byte offset past the last intact line
	tornLine := 0
	var tornErr error
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			validEnd += 1
			continue
		}
		if tornLine != 0 {
			// Content after the unparsable line: mid-file corruption,
			// not a torn final append.
			return fmt.Errorf("serve: journal %s line %d: %w (followed by %d more line(s) — not a torn tail)",
				s.cfg.JournalPath, tornLine, tornErr, line-tornLine)
		}
		var e journalEntry
		if err := json.Unmarshal(raw, &e); err != nil {
			tornLine, tornErr = line, err
			continue
		}
		validEnd += int64(len(raw)) + 1
		switch e.Op {
		case "submit":
			if e.Job == nil {
				return fmt.Errorf("serve: journal %s line %d: submit without job", s.cfg.JournalPath, line)
			}
			rec := *e.Job
			rec.State = StateQueued
			s.jobs[rec.ID] = &job{rec: rec, done: make(chan struct{})}
			if rec.ID >= s.nextID {
				s.nextID = rec.ID + 1
			}
		case "state":
			j := s.jobs[e.ID]
			if j == nil {
				continue // state for a job whose submit line was lost
			}
			if isTerminal(j.rec.State) {
				// First terminal transition wins: a duplicate terminal
				// line (or a stale non-terminal one after it) must not
				// re-close j.done or overwrite the outcome.
				continue
			}
			switch e.State {
			case StateQueued, StateRunning:
				// Non-terminal: replay leaves the job queued for re-dispatch.
				j.rec.State = StateQueued
			case StateSucceeded, StateFailed, StateCanceled:
				j.rec.State = e.State
				j.rec.Error = e.Error
				j.rec.FinishedAt = e.Time
				close(j.done)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if tornLine != 0 {
		fmt.Fprintf(os.Stderr, "serve: journal %s line %d torn (%v); truncating to the %d intact bytes\n",
			s.cfg.JournalPath, tornLine, tornErr, validEnd)
		if err := os.Truncate(s.cfg.JournalPath, validEnd); err != nil {
			return fmt.Errorf("serve: repairing torn journal %s: %w", s.cfg.JournalPath, err)
		}
	}
	return nil
}
