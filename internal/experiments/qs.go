package experiments

import (
	"io"
	"strconv"

	"repro/internal/anticombine"
	"repro/internal/codec"
	"repro/internal/datagen"
	"repro/internal/mr"
	"repro/internal/workloads/querysuggest"
)

// qsPartitioners are §7.2's three partition functions, in figure order.
var qsPartitioners = []string{"Hash", "Prefix-5", "Prefix-1"}

// qsStrategies are the figure's four bars.
var qsStrategies = []string{VariantOriginal, VariantEager, VariantLazy, VariantAdaptive}

func qsPartitioner(name string) mr.Partitioner {
	switch name {
	case "Hash":
		return mr.HashPartitioner{}
	case "Prefix-5":
		return querysuggest.PrefixPartitioner{K: 5}
	case "Prefix-1":
		return querysuggest.PrefixPartitioner{K: 1}
	}
	panic("experiments: unknown partitioner " + name)
}

func qsLog(cfg Config) *datagen.QueryLog {
	return datagen.NewQueryLog(datagen.QueryLogConfig{
		Seed:    cfg.Seed,
		Queries: cfg.n(20000),
	})
}

// qsSplits materializes the query log once per experiment.
func qsSplits(cfg Config, log *datagen.QueryLog) []mr.Split {
	return materialize(querysuggest.Splits(log, cfg.Splits))
}

// qsBaseJob builds the unwrapped Query-Suggestion job.
func qsBaseJob(cfg Config, partitioner string, withCombiner bool) *mr.Job {
	return querysuggest.NewJob(querysuggest.Config{
		Partitioner: qsPartitioner(partitioner),
		Reducers:    cfg.Reducers,
	}, withCombiner)
}

// qsRun executes one Query-Suggestion configuration.
func qsRun(cfg Config, splits []mr.Split, partitioner, variant string,
	withCombiner bool, mutate func(*mr.Job)) (RunMetrics, error) {
	job := qsJob(cfg, partitioner, variant, withCombiner, mutate)
	m, _, err := runJob(cfg, variant, job, splits)
	return m, err
}

// QSMapOutputResult is Figure 9: total Map output size per partitioner
// and strategy (no combiner, no compression). The paper observed up to
// 27× reduction, AdaptiveSH best everywhere except Prefix-1 where pure
// LazySH wins by the flag bytes.
type QSMapOutputResult struct {
	Partitioners []string
	Strategies   []string
	// Metrics[partitioner][strategy]
	Metrics map[string]map[string]RunMetrics
}

// QSMapOutput runs E2 (Figure 9).
func QSMapOutput(cfg Config) (*QSMapOutputResult, error) {
	cfg = cfg.normalized()
	log := qsLog(cfg)
	splits := qsSplits(cfg, log)
	out := &QSMapOutputResult{
		Partitioners: qsPartitioners,
		Strategies:   qsStrategies,
		Metrics:      map[string]map[string]RunMetrics{},
	}
	for _, p := range qsPartitioners {
		out.Metrics[p] = map[string]RunMetrics{}
		for _, s := range qsStrategies {
			m, err := qsRun(cfg, splits, p, s, false, nil)
			if err != nil {
				return nil, err
			}
			out.Metrics[p][s] = m
		}
	}
	return out, nil
}

// Render writes the figure as a table of map output sizes.
func (r *QSMapOutputResult) Render(w io.Writer) {
	t := Table{
		Title:  "E2 (Fig. 9) Query-Suggestion total Map output size",
		Header: append([]string{"partitioner"}, r.Strategies...),
	}
	for _, p := range r.Partitioners {
		row := []string{p}
		for _, s := range r.Strategies {
			row = append(row, Bytes(r.Metrics[p][s].MapOutputBytes))
		}
		t.AddRow(row...)
	}
	t.Render(w)
	t2 := Table{
		Title:  "reduction vs Original",
		Header: append([]string{"partitioner"}, r.Strategies[1:]...),
	}
	for _, p := range r.Partitioners {
		row := []string{p}
		orig := r.Metrics[p][VariantOriginal].MapOutputBytes
		for _, s := range r.Strategies[1:] {
			row = append(row, F(factor(orig, r.Metrics[p][s].MapOutputBytes)))
		}
		t2.AddRow(row...)
	}
	t2.Render(w)
}

// QSCombinerResult is §7.3: the original program's combiner is barely
// effective (~12% in the paper) because map task inputs hold many
// distinct queries, while Anti-Combining (with C=0) keeps its full
// reduction and the combiner instead collapses Shared in the reduce
// phase, eliminating Shared spills.
type QSCombinerResult struct {
	Original           RunMetrics
	OriginalCombiner   RunMetrics
	AdaptiveNoCombiner RunMetrics // no combiner available at all
	AdaptiveCombiner   RunMetrics // combiner present, C=0, Shared combine on

	CombinerReductionPct float64
}

// QSCombiner runs E3 (§7.3). A small Shared memory budget is used so
// the Shared-spill effect is visible at laptop scale.
func QSCombiner(cfg Config) (*QSCombinerResult, error) {
	cfg = cfg.normalized()
	log := qsLog(cfg)
	splits := qsSplits(cfg, log)
	const part = "Prefix-5"

	orig, err := qsRun(cfg, splits, part, VariantOriginal, false, nil)
	if err != nil {
		return nil, err
	}
	origCB, err := qsRun(cfg, splits, part, VariantOriginal, true, nil)
	if err != nil {
		return nil, err
	}

	smallShared := anticombine.Options{Strategy: anticombine.Adaptive, SharedMemLimitBytes: 64 << 10}
	antiJob := func(withCombiner bool) *mr.Job {
		job := querysuggest.NewJob(querysuggest.Config{
			Partitioner: qsPartitioner(part), Reducers: cfg.Reducers,
		}, withCombiner)
		w := anticombine.Wrap(job, smallShared)
		w.DiscardOutput = true
		return w
	}
	antiNo, _, err := runJob(cfg, "AdaptiveSH", antiJob(false), splits)
	if err != nil {
		return nil, err
	}
	antiCB, _, err := runJob(cfg, "AdaptiveSH-CB", antiJob(true), splits)
	if err != nil {
		return nil, err
	}
	return &QSCombinerResult{
		Original:             orig,
		OriginalCombiner:     origCB,
		AdaptiveNoCombiner:   antiNo,
		AdaptiveCombiner:     antiCB,
		CombinerReductionPct: -pct(origCB.ShuffleBytes, orig.ShuffleBytes),
	}, nil
}

// Render writes the §7.3 comparison.
func (r *QSCombinerResult) Render(w io.Writer) {
	t := Table{
		Title:  "E3 (§7.3) Query-Suggestion with Combiner (Prefix-5)",
		Header: []string{"variant", "mapOutBytes", "transfer", "sharedSpills"},
	}
	rows := []struct {
		name string
		m    RunMetrics
	}{
		{"Original", r.Original},
		{"Original+CB", r.OriginalCombiner},
		{"AdaptiveSH (C=0, no combiner)", r.AdaptiveNoCombiner},
		{"AdaptiveSH-CB (C=0, Shared combine)", r.AdaptiveCombiner},
	}
	for _, row := range rows {
		t.AddRow(row.name, Bytes(row.m.MapOutputBytes), Bytes(row.m.ShuffleBytes),
			itoa(row.m.SharedSpills))
	}
	t.Render(w)
}

// QSCompressionResult is Figure 10: map output (on-the-wire, i.e.
// compressed) sizes with Combiner and gzip compression enabled.
// Anti-Combining still beats Original for every partitioner.
type QSCompressionResult struct {
	Partitioners []string
	Strategies   []string
	Metrics      map[string]map[string]RunMetrics
}

// QSCompression runs E4 (Figure 10).
func QSCompression(cfg Config) (*QSCompressionResult, error) {
	cfg = cfg.normalized()
	log := qsLog(cfg)
	splits := qsSplits(cfg, log)
	out := &QSCompressionResult{
		Partitioners: qsPartitioners,
		Strategies:   qsStrategies,
		Metrics:      map[string]map[string]RunMetrics{},
	}
	gz := codec.Gzip{}
	for _, p := range qsPartitioners {
		out.Metrics[p] = map[string]RunMetrics{}
		for _, s := range qsStrategies {
			// The original runs with its combiner; Anti-Combining sets
			// C=0 (§7.3) so the variants run without the map-phase
			// combiner but with compressed output.
			withCombiner := s == VariantOriginal
			m, err := qsRun(cfg, splits, p, s, withCombiner, func(j *mr.Job) { j.Codec = gz })
			if err != nil {
				return nil, err
			}
			out.Metrics[p][s] = m
		}
	}
	return out, nil
}

// Render writes the compressed transfer sizes.
func (r *QSCompressionResult) Render(w io.Writer) {
	t := Table{
		Title:  "E4 (Fig. 10) Query-Suggestion compressed map output (Combiner + gzip)",
		Header: append([]string{"partitioner"}, r.Strategies...),
	}
	for _, p := range r.Partitioners {
		row := []string{p}
		for _, s := range r.Strategies {
			row = append(row, Bytes(r.Metrics[p][s].ShuffleBytes))
		}
		t.AddRow(row...)
	}
	t.Render(w)
}

// QSCodecTableResult is Table 1: cost breakdown under different
// compression codecs for Prefix-5. The paper's spectrum: bzip2 (here
// BWSC) best ratio / worst CPU, snappy the reverse, AdaptiveSH+gzip
// beating all on every column.
type QSCodecTableResult struct {
	Rows []RunMetrics
}

// QSCodecTable runs E5 (Table 1).
func QSCodecTable(cfg Config) (*QSCodecTableResult, error) {
	cfg = cfg.normalized()
	log := qsLog(cfg)
	splits := qsSplits(cfg, log)
	const part = "Prefix-5"
	var rows []RunMetrics
	for _, name := range []string{"deflate", "gzip", "bwsc", "snappy"} {
		c, err := codec.ByName(name)
		if err != nil {
			return nil, err
		}
		label := name
		if name == "bwsc" {
			label = "bwsc(bzip2)"
		}
		m, err := qsRun(cfg, splits, part, VariantOriginal, true, func(j *mr.Job) { j.Codec = c })
		if err != nil {
			return nil, err
		}
		m.Name = label
		rows = append(rows, m)
	}
	m, err := qsRun(cfg, splits, part, VariantAdaptive, false, func(j *mr.Job) { j.Codec = codec.Gzip{} })
	if err != nil {
		return nil, err
	}
	m.Name = "AdaptiveSH+gzip"
	rows = append(rows, m)
	return &QSCodecTableResult{Rows: rows}, nil
}

// Render writes Table 1.
func (r *QSCodecTableResult) Render(w io.Writer) {
	t := Table{
		Title:  "E5 (Table 1) Prefix-5 cost breakdown per compression technique",
		Header: []string{"codec", "diskRead", "diskWrite", "mapOutSize(wire)", "CPU"},
	}
	for _, m := range r.Rows {
		t.AddRow(m.Name, Bytes(m.DiskRead), Bytes(m.DiskWrite), Bytes(m.ShuffleBytes), Dur(m.CPU))
	}
	t.Render(w)
}

// QSCostBreakdownResult is Table 2: total CPU and disk for Original and
// AdaptiveSH, plain / with Combiner (-CB) / with compression (-CP), plus
// the Shared spill counts §7.5 discusses (many for AdaptiveSH, ~none for
// AdaptiveSH-CB).
type QSCostBreakdownResult struct {
	Rows []RunMetrics
}

// QSCostBreakdown runs E6 (Table 2).
func QSCostBreakdown(cfg Config) (*QSCostBreakdownResult, error) {
	cfg = cfg.normalized()
	log := qsLog(cfg)
	splits := qsSplits(cfg, log)
	const part = "Prefix-5"
	gz := codec.Gzip{}
	smallShared := func(base anticombine.Options) anticombine.Options {
		base.SharedMemLimitBytes = 64 << 10
		return base
	}

	type spec struct {
		name         string
		variant      string
		withCombiner bool
		mutate       func(*mr.Job)
		opts         *anticombine.Options
	}
	specs := []spec{
		{name: "Original", variant: VariantOriginal},
		{name: "Original-CB", variant: VariantOriginal, withCombiner: true},
		{name: "Original-CP", variant: VariantOriginal, mutate: func(j *mr.Job) { j.Codec = gz }},
		{name: "AdaptiveSH", variant: VariantAdaptive,
			opts: ptr(smallShared(anticombine.AdaptiveInf()))},
		{name: "AdaptiveSH-CB", variant: VariantAdaptive, withCombiner: true,
			opts: ptr(smallShared(anticombine.AdaptiveInf()))},
		{name: "AdaptiveSH-CP", variant: VariantAdaptive, mutate: func(j *mr.Job) { j.Codec = gz },
			opts: ptr(smallShared(anticombine.AdaptiveInf()))},
	}
	var rows []RunMetrics
	for _, s := range specs {
		job := querysuggest.NewJob(querysuggest.Config{
			Partitioner: qsPartitioner(part), Reducers: cfg.Reducers,
		}, s.withCombiner)
		if s.opts != nil {
			job = anticombine.Wrap(job, *s.opts)
		}
		job.DiscardOutput = true
		if s.mutate != nil {
			s.mutate(job)
		}
		m, _, err := runJob(cfg, s.name, job, splits)
		if err != nil {
			return nil, err
		}
		rows = append(rows, m)
	}
	return &QSCostBreakdownResult{Rows: rows}, nil
}

// Render writes Table 2.
func (r *QSCostBreakdownResult) Render(w io.Writer) {
	t := Table{
		Title:  "E6 (Table 2) Query-Suggestion total cost breakdown (Prefix-5)",
		Header: []string{"algorithm", "CPU", "diskRead", "diskWrite", "sharedSpills"},
	}
	for _, m := range r.Rows {
		t.AddRow(m.Name, Dur(m.CPU), Bytes(m.DiskRead), Bytes(m.DiskWrite), itoa(m.SharedSpills))
	}
	t.Render(w)
}

func itoa(n int64) string { return strconv.FormatInt(n, 10) }

func ptr[T any](v T) *T { return &v }
