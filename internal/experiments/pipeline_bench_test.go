package experiments

import (
	"context"
	"testing"

	"repro/internal/dag"
	"repro/internal/mr"
	"repro/internal/workloads/pagerank"
)

// BenchmarkPipelineHandoff times iterative PageRank under both
// execution strategies and reports the driver-boundary traffic as a
// custom metric (driver-B) — the BENCH_6 numbers the CI bench job
// publishes via benchjson. The input partitions are generated once;
// each timed run re-executes all five iterations.
func BenchmarkPipelineHandoff(b *testing.B) {
	spec := pagerank.IterSpec{Nodes: 2000, AvgDegree: 8, Seed: 2014, Parts: 4, MaxIters: 5}
	inputs := pagerank.IterInputs(spec)

	b.Run("chained", func(b *testing.B) {
		var driverBytes int64
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			parts := inputs
			driverBytes = recordPartsBytes(parts)
			for iter := 0; iter < spec.MaxIters; iter++ {
				rres := benchRun(b, pagerank.NewRankJob(spec.Nodes, spec.Parts), parts)
				parts = rres.Output
				dres := benchRun(b, pagerank.NewDeltaJob(spec.Parts), parts)
				nres := benchRun(b, pagerank.NewNormJob(), dres.Output)
				driverBytes += recordPartsBytes(parts) + recordPartsBytes(dres.Output) + recordPartsBytes(nres.Output)
			}
		}
		b.ReportMetric(float64(driverBytes), "driver-B")
	})

	b.Run("pipeline", func(b *testing.B) {
		var driverBytes int64
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			res, err := dag.Run(context.Background(), pagerank.NewIterPipeline(spec), inputs,
				dag.Config{Engine: &dag.InProcess{}})
			if err != nil {
				b.Fatal(err)
			}
			driverBytes = res.DriverBytes
		}
		b.ReportMetric(float64(driverBytes), "driver-B")
	})
}

func benchRun(b *testing.B, job *mr.Job, parts [][]mr.Record) *mr.Result {
	b.Helper()
	splits := make([]mr.Split, len(parts))
	for i := range parts {
		splits[i] = &mr.MemSplit{Recs: parts[i]}
	}
	res, err := mr.Run(job, splits)
	if err != nil {
		b.Fatal(err)
	}
	return res
}
