package experiments

import (
	"fmt"
	"io"
	"time"

	"repro/internal/anticombine"
	"repro/internal/costmodel"
	"repro/internal/datagen"
	"repro/internal/partition"
	"repro/internal/workloads/thetajoin"
)

// ThetaSharesResult is extension experiment X6: SharesSkew-style share
// allocation for the 1-Bucket-Theta join under placement skew. With
// PlacementSkew warping row/column assignment, the grid's low regions
// concentrate most of the join matrix and the contiguous block
// partitioner overloads whichever reducer owns them. The experiment
// samples region weights into a sketch, builds a SharesPlan (hot
// regions sub-tiled into a×b sub-grids, everything LPT-packed by
// weight), and compares block vs shares — alone and under AdaptiveSH,
// since share allocation reshapes exactly the replicated flows
// anti-combining compresses. Join output must be record-identical
// across all four runs.
type ThetaSharesResult struct {
	// Rows holds block/shares × plain/AdaptiveSH.
	Rows []ThetaSharesRow
	// SubTiled is how many regions the plan split into sub-grids.
	SubTiled int
	// Digests maps each run to its sorted-records digest; Identical is
	// whether all are equal.
	Digests   map[string]string
	Identical bool
}

// ThetaSharesRow is one run's measured balance.
type ThetaSharesRow struct {
	Name              string
	MaxPart, MeanPart int64
	Skew              float64
	NetTime           time.Duration
	EstRuntime        time.Duration
	MapOutputBytes    int64
}

// ThetaShares runs X6.
func ThetaShares(cfg Config) (*ThetaSharesResult, error) {
	cfg = cfg.normalized()
	cloud := datagen.NewCloud(datagen.CloudConfig{
		Seed:    cfg.Seed,
		Records: cfg.n(1500),
	})
	// A small grid with strong placement skew: region (0,0) alone draws
	// most of both roles' replication, the adversarial case for the
	// uniform block assignment.
	jcfg := thetajoin.Config{Rows: 6, Cols: 6, Reducers: cfg.Reducers, PlacementSkew: 6}
	splits := materialize(thetajoin.Splits(cloud, cfg.Splits))

	// Region weights from a sampling sketch over the block job's map
	// output (36 region keys — exact at default sketch capacity).
	sk, err := partition.Sample(thetajoin.NewJob(jcfg), splits, partition.SampleOptions{})
	if err != nil {
		return nil, err
	}
	plan := thetajoin.BuildSharesPlan(jcfg, thetajoin.RegionWeights(sk, jcfg), cfg.Reducers, 1)

	scfg := jcfg
	scfg.Shares = plan
	out := &ThetaSharesResult{
		SubTiled:  plan.SubTiled(),
		Digests:   make(map[string]string, 4),
		Identical: true,
	}
	var first string
	run := func(name string, c thetajoin.Config, adaptive bool) error {
		job := thetajoin.NewJob(c)
		if adaptive {
			opts := anticombine.AdaptiveInf()
			opts.SharedMemLimitBytes = 64 << 20
			job = anticombine.Wrap(job, opts)
		}
		m, res, err := runJob(cfg, "thetashares/"+name, job, splits)
		if err != nil {
			return err
		}
		maxB, meanB, ratio := costmodel.PartitionSkew(res.ShufflePerPartition)
		out.Rows = append(out.Rows, ThetaSharesRow{
			Name:           name,
			MaxPart:        maxB,
			MeanPart:       meanB,
			Skew:           ratio,
			NetTime:        m.Est.NetTime,
			EstRuntime:     m.Est.Runtime,
			MapOutputBytes: m.MapOutputBytes,
		})
		d := RecordsDigest(res)
		out.Digests[name] = d
		if first == "" {
			first = d
		} else if d != first {
			out.Identical = false
		}
		return nil
	}
	specs := []struct {
		name     string
		cfg      thetajoin.Config
		adaptive bool
	}{
		{"block", jcfg, false},
		{"shares", scfg, false},
		{"block+AdaptiveSH", jcfg, true},
		{"shares+AdaptiveSH", scfg, true},
	}
	for _, s := range specs {
		if err := run(s.name, s.cfg, s.adaptive); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Render writes X6.
func (r *ThetaSharesResult) Render(w io.Writer) {
	t := Table{
		Title:  "X6 (extension) SharesSkew allocation for 1-Bucket-Theta under placement skew",
		Header: []string{"variant", "maxPart", "meanPart", "skew", "netTime", "est runtime", "mapOutBytes"},
	}
	for _, row := range r.Rows {
		t.AddRow(row.Name, Bytes(row.MaxPart), Bytes(row.MeanPart), F(row.Skew),
			Dur(row.NetTime), Dur(row.EstRuntime), Bytes(row.MapOutputBytes))
	}
	t.Render(w)
	t2 := Table{Header: []string{"metric", "value"}}
	t2.AddRow("sub-tiled regions", fmt.Sprintf("%d", r.SubTiled))
	if r.Identical {
		t2.AddRow("output identity", "identical across variants")
	} else {
		t2.AddRow("output identity", "MISMATCH")
	}
	t2.Render(w)
}
