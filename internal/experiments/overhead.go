package experiments

import (
	"io"

	"repro/internal/datagen"
	"repro/internal/workloads/sortwl"
)

// OverheadResult is §7.1: Anti-Combining's cost on the Sort workload,
// where no sharing opportunities exist. The paper measured +0.2% disk,
// +0.15% transfer, +7.8% CPU, +1.7% runtime.
type OverheadResult struct {
	Original RunMetrics
	Adaptive RunMetrics

	DiskDeltaPct     float64
	TransferDeltaPct float64
	CPUDeltaPct      float64
	RuntimeDeltaPct  float64
}

// Overhead runs E1.
func Overhead(cfg Config) (*OverheadResult, error) {
	cfg = cfg.normalized()
	text := datagen.NewRandomText(datagen.RandomTextConfig{
		Seed:  cfg.Seed,
		Lines: cfg.n(20000),
	})
	splits := materialize(sortwl.Splits(text, cfg.Splits))
	run := func(name, variant string) (RunMetrics, error) {
		job := wrapVariant(sortwl.NewJob(cfg.Reducers), variant)
		job.DiscardOutput = true
		m, _, err := runJob(cfg, name, job, splits)
		return m, err
	}
	orig, err := run(VariantOriginal, VariantOriginal)
	if err != nil {
		return nil, err
	}
	adaptive, err := run(VariantAdaptive, VariantAdaptive)
	if err != nil {
		return nil, err
	}
	return &OverheadResult{
		Original:         orig,
		Adaptive:         adaptive,
		DiskDeltaPct:     pct(adaptive.DiskRead+adaptive.DiskWrite, orig.DiskRead+orig.DiskWrite),
		TransferDeltaPct: pct(adaptive.ShuffleBytes, orig.ShuffleBytes),
		CPUDeltaPct:      pct(int64(adaptive.CPU), int64(orig.CPU)),
		RuntimeDeltaPct:  pct(int64(adaptive.Est.Runtime), int64(orig.Est.Runtime)),
	}, nil
}

// Render writes the paper-style comparison.
func (r *OverheadResult) Render(w io.Writer) {
	t := Table{
		Title:  "E1 (§7.1) Anti-Combining overhead on Sort (no sharing opportunities)",
		Header: []string{"variant", "mapOutBytes", "transfer", "disk r+w", "CPU", "est runtime"},
	}
	for _, m := range []RunMetrics{r.Original, r.Adaptive} {
		t.AddRow(m.Name, Bytes(m.MapOutputBytes), Bytes(m.ShuffleBytes),
			Bytes(m.DiskRead+m.DiskWrite), Dur(m.CPU), Dur(m.Est.Runtime))
	}
	t.AddRow("delta", "", Pct(r.TransferDeltaPct), Pct(r.DiskDeltaPct),
		Pct(r.CPUDeltaPct), Pct(r.RuntimeDeltaPct))
	t.Render(w)
}
