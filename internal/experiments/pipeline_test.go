package experiments

import "testing"

// TestPipelineHandoff asserts X7's claims: the dag pipeline produces
// byte-identical ranks to job-per-iteration chaining while moving a
// fraction of the driver traffic.
func TestPipelineHandoff(t *testing.T) {
	res, err := PipelineHandoff(Config{Scale: 0.1, Reducers: 4, Splits: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Identical {
		t.Fatal("pipeline and chained outputs differ")
	}
	if res.Iterations != 5 {
		t.Fatalf("ran %d iterations, want 5", res.Iterations)
	}
	chained, pipeline := res.Rows[0], res.Rows[1]
	if pipeline.DriverBytes >= chained.DriverBytes {
		t.Fatalf("pipeline moved %d driver bytes, chained moved %d — expected a reduction",
			pipeline.DriverBytes, chained.DriverBytes)
	}
	// The rank structs dominate the data; deleting their per-iteration
	// driver round trips should cut driver traffic by well over half.
	if res.DriverSavedFactor < 2 {
		t.Fatalf("driver re-spill reduction %.2fx, want ≥ 2x", res.DriverSavedFactor)
	}
	// Shuffle volume is a property of the jobs, not the chaining
	// strategy: both executions run the same map→reduce work.
	if pipeline.ShuffleBytes != chained.ShuffleBytes {
		t.Fatalf("shuffle bytes differ: pipeline %d, chained %d", pipeline.ShuffleBytes, chained.ShuffleBytes)
	}
}
