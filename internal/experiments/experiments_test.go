package experiments

import (
	"bytes"
	"strings"
	"testing"
)

// tiny is a fast configuration for CI-style runs; the shape assertions
// below must hold even at this scale.
func tiny() Config { return Config{Scale: 0.05, Reducers: 4, Splits: 4} }

func TestOverheadShape(t *testing.T) {
	r, err := Overhead(tiny())
	if err != nil {
		t.Fatal(err)
	}
	// §7.1's shape: tiny byte overhead (flag bits), bounded CPU overhead.
	if r.TransferDeltaPct < 0 || r.TransferDeltaPct > 15 {
		t.Errorf("transfer delta = %+.2f%%, want small positive", r.TransferDeltaPct)
	}
	if r.DiskDeltaPct < 0 || r.DiskDeltaPct > 15 {
		t.Errorf("disk delta = %+.2f%%", r.DiskDeltaPct)
	}
	if r.Adaptive.MapOutputRecords != r.Original.MapOutputRecords {
		t.Error("record counts must match on Sort")
	}
	var buf bytes.Buffer
	r.Render(&buf)
	if !strings.Contains(buf.String(), "Sort") {
		t.Error("render missing title")
	}
}

func TestQSMapOutputShape(t *testing.T) {
	r, err := QSMapOutput(tiny())
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range r.Partitioners {
		orig := r.Metrics[p][VariantOriginal].MapOutputBytes
		eager := r.Metrics[p][VariantEager].MapOutputBytes
		lazy := r.Metrics[p][VariantLazy].MapOutputBytes
		adaptive := r.Metrics[p][VariantAdaptive].MapOutputBytes
		if eager >= orig {
			t.Errorf("%s: eager %d not below original %d", p, eager, orig)
		}
		if lazy >= orig {
			t.Errorf("%s: lazy %d not below original %d", p, lazy, orig)
		}
		// AdaptiveSH picks the best encoding per partition, so it can
		// only lose to the pure strategies by flag bytes (Prefix-1 in
		// the paper); never by more than 2%.
		best := min(eager, lazy)
		if float64(adaptive) > float64(best)*1.02 {
			t.Errorf("%s: adaptive %d worse than best pure %d", p, adaptive, best)
		}
	}
	// Prefix partitioners share more than hash for the anti variants.
	hashRed := factor(r.Metrics["Hash"][VariantOriginal].MapOutputBytes,
		r.Metrics["Hash"][VariantAdaptive].MapOutputBytes)
	p1Red := factor(r.Metrics["Prefix-1"][VariantOriginal].MapOutputBytes,
		r.Metrics["Prefix-1"][VariantAdaptive].MapOutputBytes)
	if p1Red <= hashRed {
		t.Errorf("Prefix-1 reduction %.2f not above Hash %.2f", p1Red, hashRed)
	}
	var buf bytes.Buffer
	r.Render(&buf)
	if !strings.Contains(buf.String(), "Fig. 9") {
		t.Error("render missing title")
	}
}

func TestQSCombinerShape(t *testing.T) {
	r, err := QSCombiner(tiny())
	if err != nil {
		t.Fatal(err)
	}
	// §7.3: the combiner barely helps the original program...
	if r.CombinerReductionPct < 0 || r.CombinerReductionPct > 60 {
		t.Errorf("combiner reduction = %.2f%%", r.CombinerReductionPct)
	}
	// ...but collapses Shared in the reduce phase: fewer (ideally zero)
	// Shared spills than the combiner-less Anti-Combining run.
	if r.AdaptiveNoCombiner.SharedSpills == 0 {
		t.Skip("scale too small to trigger Shared spills")
	}
	if r.AdaptiveCombiner.SharedSpills >= r.AdaptiveNoCombiner.SharedSpills {
		t.Errorf("Shared spills with combiner (%d) not below without (%d)",
			r.AdaptiveCombiner.SharedSpills, r.AdaptiveNoCombiner.SharedSpills)
	}
	var buf bytes.Buffer
	r.Render(&buf)
}

func TestQSCompressionShape(t *testing.T) {
	r, err := QSCompression(tiny())
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range r.Partitioners {
		orig := r.Metrics[p][VariantOriginal].ShuffleBytes
		adaptive := r.Metrics[p][VariantAdaptive].ShuffleBytes
		if adaptive >= orig {
			t.Errorf("%s: compressed adaptive %d not below compressed original %d",
				p, adaptive, orig)
		}
	}
	var buf bytes.Buffer
	r.Render(&buf)
}

func TestQSCodecTableShape(t *testing.T) {
	r, err := QSCodecTable(tiny())
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]RunMetrics{}
	for _, m := range r.Rows {
		byName[m.Name] = m
	}
	// Table 1's spectrum: the block-sorting codec compresses best but
	// burns the most CPU; snappy is the cheap/weak end; AdaptiveSH+gzip
	// ships the least data of all.
	if byName["bwsc(bzip2)"].ShuffleBytes >= byName["snappy"].ShuffleBytes {
		t.Errorf("bwsc (%d) should out-compress snappy (%d)",
			byName["bwsc(bzip2)"].ShuffleBytes, byName["snappy"].ShuffleBytes)
	}
	if byName["bwsc(bzip2)"].CPU <= byName["snappy"].CPU {
		t.Errorf("bwsc CPU (%v) should exceed snappy (%v)",
			byName["bwsc(bzip2)"].CPU, byName["snappy"].CPU)
	}
	for _, other := range []string{"deflate", "gzip", "bwsc(bzip2)", "snappy"} {
		if byName["AdaptiveSH+gzip"].ShuffleBytes >= byName[other].ShuffleBytes {
			t.Errorf("AdaptiveSH+gzip (%d) should ship less than %s (%d)",
				byName["AdaptiveSH+gzip"].ShuffleBytes, other, byName[other].ShuffleBytes)
		}
	}
	var buf bytes.Buffer
	r.Render(&buf)
}

func TestQSCostBreakdownShape(t *testing.T) {
	r, err := QSCostBreakdown(tiny())
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]RunMetrics{}
	for _, m := range r.Rows {
		byName[m.Name] = m
	}
	// Table 2's shape: every AdaptiveSH variant reads and writes less
	// disk than its Original counterpart.
	pairs := [][2]string{
		{"AdaptiveSH", "Original"},
		{"AdaptiveSH-CB", "Original-CB"},
		{"AdaptiveSH-CP", "Original-CP"},
	}
	for _, p := range pairs {
		a, o := byName[p[0]], byName[p[1]]
		if a.DiskRead+a.DiskWrite >= o.DiskRead+o.DiskWrite {
			t.Errorf("%s disk (%d) not below %s (%d)", p[0],
				a.DiskRead+a.DiskWrite, p[1], o.DiskRead+o.DiskWrite)
		}
	}
	// The CB variant's Shared stays (almost) in memory.
	if byName["AdaptiveSH-CB"].SharedSpills > byName["AdaptiveSH"].SharedSpills {
		t.Errorf("AdaptiveSH-CB spills (%d) above AdaptiveSH (%d)",
			byName["AdaptiveSH-CB"].SharedSpills, byName["AdaptiveSH"].SharedSpills)
	}
	var buf bytes.Buffer
	r.Render(&buf)
}

func TestCPUThresholdShape(t *testing.T) {
	cfg := tiny()
	cfg.Scale = 0.1 // CPUThreshold divides scale internally
	r, err := CPUThreshold(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Adaptive-0 never uses LazySH.
	for i, share := range r.LazyShare["Adaptive-0"] {
		if share != 0 {
			t.Errorf("Adaptive-0 lazy share at x=%d is %f", r.Xs[i], share)
		}
	}
	// Adaptive-∞ keeps using LazySH regardless of Map cost.
	last := len(r.Xs) - 1
	if r.LazyShare["Adaptive-inf"][last] == 0 {
		t.Error("Adaptive-inf should still choose lazy at high x")
	}
	// Adaptive-α's threshold suppresses LazySH as Map calls get
	// expensive: its lazy share at the largest x must be far below its
	// share at x=0 (the paper's convergence to Adaptive-0).
	if r.LazyShare["Adaptive-a"][0] == 0 {
		t.Error("Adaptive-a should use lazy at x=0")
	}
	if r.LazyShare["Adaptive-a"][last] > r.LazyShare["Adaptive-a"][0]/2 {
		t.Errorf("Adaptive-a lazy share did not fall: x=0 %.3f vs x=%d %.3f",
			r.LazyShare["Adaptive-a"][0], r.Xs[last], r.LazyShare["Adaptive-a"][last])
	}
	// CPU grows with x for every variant.
	for _, v := range r.Variants {
		if r.CPU[v][last] <= r.CPU[v][0] {
			t.Errorf("%s CPU did not grow with x: %v vs %v", v, r.CPU[v][0], r.CPU[v][last])
		}
	}
	var buf bytes.Buffer
	r.Render(&buf)
}

func TestWordCountShape(t *testing.T) {
	r, err := WordCount(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if r.RecordsFactor < 1.5 {
		t.Errorf("pre-combine record factor = %.2f, want > 1.5 (paper: 7)", r.RecordsFactor)
	}
	// Shuffle stays tiny either way (the combiner is effective); the
	// delta must be small relative to map output.
	if abs64(r.ShuffleDeltaBytes) > r.Original.MapOutputBytes/10 {
		t.Errorf("shuffle delta %d too large", r.ShuffleDeltaBytes)
	}
	var buf bytes.Buffer
	r.Render(&buf)
}

func TestPageRankShape(t *testing.T) {
	r, err := PageRank(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if r.ShuffleFactor < 1.3 {
		t.Errorf("shuffle factor = %.2f, want > 1.3 (paper: 2.7)", r.ShuffleFactor)
	}
	if r.DiskWriteFactor < 1.2 {
		t.Errorf("disk write factor = %.2f", r.DiskWriteFactor)
	}
	var buf bytes.Buffer
	r.Render(&buf)
}

func TestThetaJoinShape(t *testing.T) {
	r, err := ThetaJoin(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if r.ReplicationFactor != 66 {
		t.Errorf("replication factor = %.1f, want 66 (33+33 grid, paper: ~67)", r.ReplicationFactor)
	}
	if r.AdaptiveLazyShare < 0.9 {
		t.Errorf("adaptive lazy share = %.2f, want ~1 (paper: all lazy)", r.AdaptiveLazyShare)
	}
	byName := map[string]RunMetrics{}
	for _, m := range r.Variants {
		byName[m.Name] = m
	}
	if f := factor(byName["Original"].MapOutputBytes, byName["AdaptiveSH"].MapOutputBytes); f < 3 {
		t.Errorf("map output reduction = %.2f, want > 3 (paper: 9.5)", f)
	}
	if byName["AdaptiveSH-CP"].ShuffleBytes >= byName["Original-CP"].ShuffleBytes {
		t.Error("compressed AdaptiveSH should still beat compressed Original")
	}
	var buf bytes.Buffer
	r.Render(&buf)
}

func abs64(x int64) int64 {
	if x < 0 {
		return -x
	}
	return x
}
