package experiments

import (
	"io"
	"time"

	"repro/internal/anticombine"
	"repro/internal/costmodel"
	"repro/internal/datagen"
	"repro/internal/mr"
	"repro/internal/workloads/querysuggest"
)

// prefixSortMapper turns a query-log line into every prefix of the
// query, each under a nil value: a Sort of the prefix multiset. One Map
// call emitting the same value under many keys is exactly the shape
// Anti-Combining's EagerSH exploits, so — unlike plain Sort, where each
// Reduce call drains Shared immediately — decoded future keys pile up
// in Shared between Reduce calls and a small memory limit forces real
// spills and merges.
type prefixSortMapper struct{ mr.MapperBase }

// Map implements mr.Mapper.
func (prefixSortMapper) Map(key, value []byte, out mr.Emitter) error {
	query := datagen.ParseQueryLine(value)
	for i := 1; i <= len(query); i++ {
		if err := out.Emit(query[:i], nil); err != nil {
			return err
		}
	}
	return nil
}

// prefixSortReducer re-emits each key once per occurrence, like the
// Sort workload's reducer: the job's output is the sorted multiset of
// prefixes.
type prefixSortReducer struct{ mr.ReducerBase }

// Reduce implements mr.Reducer.
func (prefixSortReducer) Reduce(key []byte, values mr.ValueIter, out mr.Emitter) error {
	for {
		if _, ok := values.Next(); !ok {
			return nil
		}
		if err := out.Emit(key, nil); err != nil {
			return err
		}
	}
}

// SortResult is the observability demo run: an AdaptiveSH prefix-sort
// job configured so the Shared structure actually spills (a tiny memory
// limit and an aggressive merge factor), reported together with the
// map/fetch overlap measured from the job's own timeline. With
// antibench's -trace flag this run produces a Chrome trace containing
// job, map, fetch, and reduce spans plus shared-spill and shared-merge
// spans from the forced spilling.
type SortResult struct {
	Run RunMetrics
	// SharedMerges counts Shared's on-disk run merges.
	SharedMerges int64
	// Overlap is how long shuffle fetches ran concurrently with
	// still-executing map tasks (costmodel.ObservedOverlap).
	Overlap time.Duration
}

// Sort runs the traced prefix-sort job.
func Sort(cfg Config) (*SortResult, error) {
	cfg = cfg.normalized()
	log := datagen.NewQueryLog(datagen.QueryLogConfig{
		Seed:    cfg.Seed,
		Queries: cfg.n(20000),
	})
	splits := materialize(querysuggest.Splits(log, cfg.Splits))
	base := &mr.Job{
		Name:       "prefixsort",
		NewMapper:  func() mr.Mapper { return prefixSortMapper{} },
		NewReducer: func() mr.Reducer { return prefixSortReducer{} },
		// Prefix-1 routing keeps every prefix of a query on one reduce
		// task, maximizing per-partition sharing (§7.2's trick) and so
		// the pressure on Shared.
		Partitioner:    querysuggest.PrefixPartitioner{K: 1},
		NumReduceTasks: cfg.Reducers,
		Deterministic:  true,
	}
	// Force Shared onto disk: a 1 KiB cap spills near-constantly and
	// merge factor 2 triggers run merges early.
	job := anticombine.Wrap(base, anticombine.Options{
		Strategy:            anticombine.Adaptive,
		SharedMemLimitBytes: 1 << 10,
		SharedMergeFactor:   2,
	})
	job.DiscardOutput = true
	m, res, err := runJob(cfg, "prefixsort(AdaptiveSH,spilling)", job, splits)
	if err != nil {
		return nil, err
	}
	return &SortResult{
		Run:          m,
		SharedMerges: m.Extra[anticombine.CounterSharedMerges],
		Overlap:      costmodel.ObservedOverlap(res.Timeline),
	}, nil
}

// Render writes the run summary.
func (r *SortResult) Render(w io.Writer) {
	t := Table{
		Title: "OBS traced prefix-sort (AdaptiveSH, Shared forced to spill)",
		Header: []string{"variant", "mapOutBytes", "transfer", "disk r+w",
			"sharedSpills", "sharedMerges", "map/fetch overlap", "wall"},
	}
	m := r.Run
	t.AddRow(m.Name, Bytes(m.MapOutputBytes), Bytes(m.ShuffleBytes),
		Bytes(m.DiskRead+m.DiskWrite), itoa(m.SharedSpills), itoa(r.SharedMerges),
		Dur(r.Overlap), Dur(m.Wall))
	t.Render(w)
}
