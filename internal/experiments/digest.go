package experiments

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"sort"
	"sync"

	"repro/internal/mr"
)

// OutputDigests fingerprints job runs for A/B identity checks: two
// engine configurations that claim byte-identical behaviour must record
// equal digest sequences for every job of the experiment suite. The
// digest folds in the sorted output records (when the job collected
// them), the logical byte/record counters, and the per-partition
// shuffle flows — so a map-path change that altered even one shuffled
// byte, spilled once more or less, or reordered equal-key output shows
// up as a digest mismatch. Safe for concurrent recording.
type OutputDigests struct {
	mu     sync.Mutex
	byName map[string][]string
}

// NewOutputDigests returns an empty digest recorder.
func NewOutputDigests() *OutputDigests {
	return &OutputDigests{byName: make(map[string][]string)}
}

// Record fingerprints one finished run under the job's experiment name.
// Jobs run repeatedly under one name (e.g. PageRank iterations) append
// in order. No-op on a nil receiver, so recording is opt-in.
func (d *OutputDigests) Record(name string, res *mr.Result) {
	if d == nil {
		return
	}
	h := sha256.New()
	var buf [8]byte
	writeInt := func(v int64) {
		binary.LittleEndian.PutUint64(buf[:], uint64(v))
		h.Write(buf[:])
	}
	s := res.Stats
	for _, v := range []int64{
		s.MapInputRecords, s.MapOutputRecords, s.MapOutputBytes,
		s.Spills, s.CombineInputRecords, s.CombineOutputRecords,
		s.ShuffleBytes, s.ReduceInputRecords, s.ReduceOutputRecords,
	} {
		writeInt(v)
	}
	for _, v := range res.ShufflePerPartition {
		writeInt(v)
	}
	for _, r := range res.SortedOutput() {
		writeInt(int64(len(r.Key)))
		h.Write(r.Key)
		writeInt(int64(len(r.Value)))
		h.Write(r.Value)
	}
	sum := hex.EncodeToString(h.Sum(nil))
	d.mu.Lock()
	d.byName[name] = append(d.byName[name], sum)
	d.mu.Unlock()
}

// RecordsDigest fingerprints only a run's output record multiset —
// unlike OutputDigests.Record it deliberately excludes shuffle flows
// and counters, which legitimately differ across partitioning
// strategies, and it sorts records globally rather than per partition,
// because different partitioners lay the same records out differently.
// It is the cross-strategy identity check: hash, range, and split runs
// of the same job must produce equal RecordsDigests even though their
// per-partition flows are the whole point of the comparison.
func RecordsDigest(res *mr.Result) string {
	recs := res.SortedOutput()
	sort.Slice(recs, func(i, j int) bool {
		if c := bytes.Compare(recs[i].Key, recs[j].Key); c != 0 {
			return c < 0
		}
		return bytes.Compare(recs[i].Value, recs[j].Value) < 0
	})
	h := sha256.New()
	var buf [8]byte
	writeInt := func(v int64) {
		binary.LittleEndian.PutUint64(buf[:], uint64(v))
		h.Write(buf[:])
	}
	for _, r := range recs {
		writeInt(int64(len(r.Key)))
		h.Write(r.Key)
		writeInt(int64(len(r.Value)))
		h.Write(r.Value)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// Snapshot copies the recorded digests, keyed by job name in recording
// order.
func (d *OutputDigests) Snapshot() map[string][]string {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make(map[string][]string, len(d.byName))
	for name, sums := range d.byName {
		out[name] = append([]string(nil), sums...)
	}
	return out
}
