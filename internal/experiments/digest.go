package experiments

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"sync"

	"repro/internal/mr"
)

// OutputDigests fingerprints job runs for A/B identity checks: two
// engine configurations that claim byte-identical behaviour must record
// equal digest sequences for every job of the experiment suite. The
// digest folds in the sorted output records (when the job collected
// them), the logical byte/record counters, and the per-partition
// shuffle flows — so a map-path change that altered even one shuffled
// byte, spilled once more or less, or reordered equal-key output shows
// up as a digest mismatch. Safe for concurrent recording.
type OutputDigests struct {
	mu     sync.Mutex
	byName map[string][]string
}

// NewOutputDigests returns an empty digest recorder.
func NewOutputDigests() *OutputDigests {
	return &OutputDigests{byName: make(map[string][]string)}
}

// Record fingerprints one finished run under the job's experiment name.
// Jobs run repeatedly under one name (e.g. PageRank iterations) append
// in order. No-op on a nil receiver, so recording is opt-in.
func (d *OutputDigests) Record(name string, res *mr.Result) {
	if d == nil {
		return
	}
	h := sha256.New()
	var buf [8]byte
	writeInt := func(v int64) {
		binary.LittleEndian.PutUint64(buf[:], uint64(v))
		h.Write(buf[:])
	}
	s := res.Stats
	for _, v := range []int64{
		s.MapInputRecords, s.MapOutputRecords, s.MapOutputBytes,
		s.Spills, s.CombineInputRecords, s.CombineOutputRecords,
		s.ShuffleBytes, s.ReduceInputRecords, s.ReduceOutputRecords,
	} {
		writeInt(v)
	}
	for _, v := range res.ShufflePerPartition {
		writeInt(v)
	}
	for _, r := range res.SortedOutput() {
		writeInt(int64(len(r.Key)))
		h.Write(r.Key)
		writeInt(int64(len(r.Value)))
		h.Write(r.Value)
	}
	sum := hex.EncodeToString(h.Sum(nil))
	d.mu.Lock()
	d.byName[name] = append(d.byName[name], sum)
	d.mu.Unlock()
}

// Snapshot copies the recorded digests, keyed by job name in recording
// order.
func (d *OutputDigests) Snapshot() map[string][]string {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make(map[string][]string, len(d.byName))
	for name, sums := range d.byName {
		out[name] = append([]string(nil), sums...)
	}
	return out
}
