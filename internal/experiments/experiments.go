// Package experiments regenerates every table and figure of the paper's
// evaluation (§7) on the synthetic substrates: each experiment is a
// function from a scaled Config to a typed result that renders a
// paper-style table. The same runners back cmd/antibench and the
// repository's benchmarks, and EXPERIMENTS.md records paper-vs-measured
// shapes for each.
package experiments

import (
	"fmt"
	"time"

	"repro/internal/anticombine"
	"repro/internal/costmodel"
	"repro/internal/mr"
	"repro/internal/obs"
)

// Config scales and seeds an experiment run.
type Config struct {
	// Scale multiplies every dataset's default size. 1.0 is the quick
	// benchmark scale; the CLI default is larger.
	Scale float64
	// Seed makes datasets reproducible.
	Seed uint64
	// Reducers is the number of reduce tasks. Defaults to 8 (the
	// paper's 44 scaled to a laptop).
	Reducers int
	// Splits is the number of map tasks. Defaults to 8.
	Splits int
	// Parallelism caps concurrent tasks inside the engine.
	Parallelism int
	// Cluster parameterizes the runtime cost model. Defaults to the
	// paper's testbed.
	Cluster costmodel.Cluster
	// Tracer, when non-nil, receives every job's trace spans (see
	// internal/obs); antibench wires it from -trace.
	Tracer *obs.Tracer
	// Metrics, when non-nil, gets every job's live counters registered;
	// antibench wires it from -metrics.
	Metrics *obs.Registry
	// SpillParallelism overrides mr.Job.SpillParallelism on every job
	// (0 keeps the engine default). 1 pins the historical sequential
	// spill/merge path; antibench wires it from -spill-parallelism.
	SpillParallelism int
	// DisablePooling opts every job out of the engine's steady-state
	// buffer pools — the A/B baseline for the pooled map path.
	DisablePooling bool
	// Digests, when non-nil, records a per-job fingerprint of each run's
	// logical output (output records when collected, byte-level counters,
	// per-partition shuffle flows). The A/B harness runs the experiment
	// suite under two engine configurations and requires equal digests.
	Digests *OutputDigests
}

func (c Config) normalized() Config {
	if c.Scale <= 0 {
		c.Scale = 1
	}
	if c.Seed == 0 {
		c.Seed = 2014
	}
	if c.Reducers <= 0 {
		c.Reducers = 8
	}
	if c.Splits <= 0 {
		c.Splits = 8
	}
	if c.Cluster.Workers == 0 {
		c.Cluster = costmodel.Paper()
	}
	return c
}

// n scales a base dataset size.
func (c Config) n(base int) int {
	n := int(float64(base) * c.Scale)
	if n < 1 {
		return 1
	}
	return n
}

// RunMetrics summarizes one job execution with the quantities the
// paper's evaluation reports.
type RunMetrics struct {
	Name             string
	MapOutputRecords int64
	MapOutputBytes   int64
	ShuffleBytes     int64
	DiskRead         int64
	DiskWrite        int64
	Spills           int64
	SharedSpills     int64
	CPU              time.Duration
	Wall             time.Duration
	Est              costmodel.Estimate
	Extra            map[string]int64
}

// runJob executes a job and gathers metrics plus the modeled runtime.
func runJob(cfg Config, name string, job *mr.Job, splits []mr.Split) (RunMetrics, *mr.Result, error) {
	if cfg.Parallelism > 0 {
		job.Parallelism = cfg.Parallelism
	}
	if cfg.SpillParallelism > 0 {
		job.SpillParallelism = cfg.SpillParallelism
	}
	if cfg.DisablePooling {
		job.DisablePooling = true
	}
	// Only override when configured, so an experiment can pre-wire its
	// own tracer or registry on the job.
	if cfg.Tracer != nil {
		job.Tracer = cfg.Tracer
	}
	if cfg.Metrics != nil {
		job.Metrics = cfg.Metrics
	}
	res, err := mr.Run(job, splits)
	if err != nil {
		return RunMetrics{}, nil, fmt.Errorf("experiment job %s: %w", name, err)
	}
	cfg.Digests.Record(name, res)
	m, err := metricsFrom(cfg, name, res)
	return m, res, err
}

func metricsFrom(cfg Config, name string, res *mr.Result) (RunMetrics, error) {
	est, err := cfg.Cluster.Estimate(res.Stats, res.ShufflePerPartition)
	if err != nil {
		return RunMetrics{}, err
	}
	s := res.Stats
	return RunMetrics{
		Name:             name,
		MapOutputRecords: s.MapOutputRecords,
		MapOutputBytes:   s.MapOutputBytes,
		ShuffleBytes:     s.ShuffleBytes,
		DiskRead:         s.DiskReadBytes,
		DiskWrite:        s.DiskWriteBytes,
		Spills:           s.Spills,
		SharedSpills:     s.Extra[anticombine.CounterSharedSpills],
		CPU:              s.TotalCPU(),
		Wall:             s.WallTime,
		Est:              est,
		Extra:            s.Extra,
	}, nil
}

// accumulate folds another run's metrics into m (iterative jobs).
func (m *RunMetrics) accumulate(o RunMetrics) {
	m.MapOutputRecords += o.MapOutputRecords
	m.MapOutputBytes += o.MapOutputBytes
	m.ShuffleBytes += o.ShuffleBytes
	m.DiskRead += o.DiskRead
	m.DiskWrite += o.DiskWrite
	m.Spills += o.Spills
	m.SharedSpills += o.SharedSpills
	m.CPU += o.CPU
	m.Wall += o.Wall
	m.Est.CPUTime += o.Est.CPUTime
	m.Est.DiskTime += o.Est.DiskTime
	m.Est.NetTime += o.Est.NetTime
	m.Est.Runtime += o.Est.Runtime
}

// Strategy variants used across the experiments, in the paper's naming.
const (
	VariantOriginal = "Original"
	VariantEager    = "EagerSH"
	VariantLazy     = "LazySH"
	VariantAdaptive = "AdaptiveSH"
)

// wrapVariant applies the named Anti-Combining variant to a job.
func wrapVariant(job *mr.Job, variant string) *mr.Job {
	switch variant {
	case VariantOriginal:
		return job
	case VariantEager:
		return anticombine.Wrap(job, anticombine.Adaptive0())
	case VariantLazy:
		return anticombine.Wrap(job, anticombine.Options{Strategy: anticombine.LazyOnly})
	case VariantAdaptive:
		return anticombine.Wrap(job, anticombine.AdaptiveInf())
	}
	panic("experiments: unknown variant " + variant)
}

// materialize pre-generates splits into memory so map-task CPU measures
// the job rather than the synthetic data generator (reading input is
// I/O on a real cluster, not mapper CPU).
func materialize(splits []mr.Split) []mr.Split {
	out := make([]mr.Split, len(splits))
	for i, s := range splits {
		var recs []mr.Record
		err := s.Records(func(k, v []byte) error {
			recs = append(recs, mr.Record{Key: append([]byte(nil), k...), Value: append([]byte(nil), v...)})
			return nil
		})
		if err != nil {
			panic("experiments: materializing generated split: " + err.Error())
		}
		out[i] = &mr.MemSplit{Recs: recs}
	}
	return out
}

// factor renders a/b as the "reduction by a factor of" number the paper
// uses.
func factor(a, b int64) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}

// pct renders (a-b)/b as a percentage delta.
func pct(a, b int64) float64 {
	if b == 0 {
		return 0
	}
	return 100 * float64(a-b) / float64(b)
}
