package experiments

import (
	"testing"

	"repro/internal/costmodel"
	"repro/internal/mr"
	"repro/internal/partition"
	"repro/internal/workloads/skewagg"
)

// BenchmarkSkewPartition times one full skewagg run per partitioning
// strategy and reports the measured partition balance as custom
// metrics (maxpart-B, meanpart-B, skew-x) — the BENCH_5 numbers the CI
// bench job publishes via benchjson. Plan construction (sample +
// build) happens once outside the timed loop: the plan is reusable
// across runs, and the per-run cost under study is the engine
// executing a balanced vs imbalanced shuffle.
func BenchmarkSkewPartition(b *testing.B) {
	scfg := skewagg.Config{Records: 8000, Reducers: 8, Seed: 2014}
	gen := skewagg.NewGen(scfg)
	splits := materialize(skewagg.Splits(gen, 8))
	sk, err := partition.Sample(skewagg.NewJob(scfg), splits, partition.SampleOptions{})
	if err != nil {
		b.Fatal(err)
	}
	for _, strat := range []partition.Strategy{partition.StrategyHash, partition.StrategyRange, partition.StrategySplit} {
		b.Run(strat.String(), func(b *testing.B) {
			var maxB, meanB int64
			var ratio float64
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				base := skewagg.NewJob(scfg)
				var job *mr.Job
				var plan *partition.SplitPlan
				var err error
				if strat == partition.StrategySplit {
					plan, err = partition.BuildSplit(sk, scfg.Reducers, nil, partition.SplitOptions{})
					if err != nil {
						b.Fatal(err)
					}
					job, err = partition.SplitJob(base, plan, skewagg.NewCombiner)
				} else {
					job, plan, err = partition.Apply(base, strat, sk, partition.DecideOptions{})
				}
				if err != nil {
					b.Fatal(err)
				}
				res, err := mr.Run(job, splits)
				if err != nil {
					b.Fatal(err)
				}
				if err := partition.Recombine(base, plan, res); err != nil {
					b.Fatal(err)
				}
				maxB, meanB, ratio = costmodel.PartitionSkew(res.ShufflePerPartition)
			}
			b.ReportMetric(float64(maxB), "maxpart-B")
			b.ReportMetric(float64(meanB), "meanpart-B")
			b.ReportMetric(ratio, "skew-x")
		})
	}
}
