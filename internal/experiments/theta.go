package experiments

import (
	"io"

	"repro/internal/anticombine"
	"repro/internal/codec"
	"repro/internal/datagen"
	"repro/internal/workloads/thetajoin"
)

// ThetaJoinResult is Figure 12: 1-Bucket-Theta band self-join over
// Cloud, map output size and runtime for Original / EagerSH /
// AdaptiveSH with and without compression. The paper saw ~67× input
// replication, AdaptiveSH (choosing LazySH everywhere) cutting map
// output ×9.5 and runtime ×9.6 (×6 with compression).
type ThetaJoinResult struct {
	// Variants holds the six bars in figure order.
	Variants []RunMetrics
	// ReplicationFactor is Original map-output records per input record.
	ReplicationFactor float64
	// AdaptiveLazyShare is the fraction of AdaptiveSH partitions
	// encoded as LazySH (the paper: all of them).
	AdaptiveLazyShare float64
}

// ThetaJoin runs E10 (Figure 12).
func ThetaJoin(cfg Config) (*ThetaJoinResult, error) {
	cfg = cfg.normalized()
	cloud := datagen.NewCloud(datagen.CloudConfig{
		Seed:    cfg.Seed,
		Records: cfg.n(3000),
	})
	// A 33×33 grid reproduces the paper's ~67× replication (1089
	// memory-sized regions spread over the reduce tasks).
	jcfg := thetajoin.Config{Rows: 33, Cols: 33, Reducers: cfg.Reducers}

	splits := materialize(thetajoin.Splits(cloud, cfg.Splits))
	run := func(name, variant string, compressed bool) (RunMetrics, error) {
		job := thetajoin.NewJob(jcfg)
		if variant != VariantOriginal {
			// The memory-aware 1-Bucket-Theta sizes region chunks to fit
			// reducer memory (2 GB/core in the paper), so Shared must be
			// given a chunk-sized budget; the default 1 MiB would spill
			// the regenerated region data and turn the job disk-bound.
			opts := anticombine.AdaptiveInf()
			if variant == VariantEager {
				opts = anticombine.Adaptive0()
			}
			opts.SharedMemLimitBytes = 64 << 20
			job = anticombine.Wrap(job, opts)
		}
		job.DiscardOutput = true
		if compressed {
			job.Codec = codec.Gzip{}
		}
		m, _, err := runJob(cfg, name, job, splits)
		return m, err
	}

	out := &ThetaJoinResult{}
	specs := []struct {
		name, variant string
		compressed    bool
	}{
		{"Original", VariantOriginal, false},
		{"EagerSH", VariantEager, false},
		{"AdaptiveSH", VariantAdaptive, false},
		{"Original-CP", VariantOriginal, true},
		{"EagerSH-CP", VariantEager, true},
		{"AdaptiveSH-CP", VariantAdaptive, true},
	}
	inputRecords := int64(cloud.Len())
	for _, s := range specs {
		m, err := run(s.name, s.variant, s.compressed)
		if err != nil {
			return nil, err
		}
		if s.name == "Original" {
			out.ReplicationFactor = factor(m.MapOutputRecords, inputRecords)
		}
		if s.name == "AdaptiveSH" {
			lazy := m.Extra["anti.lazyRecords"]
			total := lazy + m.Extra["anti.eagerRecords"] + m.Extra["anti.plainRecords"]
			if total > 0 {
				out.AdaptiveLazyShare = float64(lazy) / float64(total)
			}
		}
		out.Variants = append(out.Variants, m)
	}
	return out, nil
}

// Render writes Figure 12's two panels.
func (r *ThetaJoinResult) Render(w io.Writer) {
	t := Table{
		Title:  "E10 (Fig. 12) 1-Bucket-Theta band self-join on Cloud",
		Header: []string{"variant", "mapOutBytes", "transfer", "CPU", "est runtime"},
	}
	for _, m := range r.Variants {
		t.AddRow(m.Name, Bytes(m.MapOutputBytes), Bytes(m.ShuffleBytes), Dur(m.CPU), Dur(m.Est.Runtime))
	}
	t.Render(w)
	t2 := Table{Header: []string{"metric", "value"}}
	t2.AddRow("input replication factor", F(r.ReplicationFactor))
	t2.AddRow("AdaptiveSH lazy share", Pct(100*r.AdaptiveLazyShare))
	orig, anti := r.Variants[0], r.Variants[2]
	t2.AddRow("map output reduction", F(factor(orig.MapOutputBytes, anti.MapOutputBytes)))
	t2.AddRow("est runtime improvement", F(factor(int64(orig.Est.Runtime), int64(anti.Est.Runtime))))
	t2.Render(w)
}
