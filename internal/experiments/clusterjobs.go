package experiments

import (
	"encoding/json"
	"fmt"

	"repro/internal/anticombine"
	"repro/internal/cluster"
	"repro/internal/datagen"
	"repro/internal/mr"
	"repro/internal/workloads/querysuggest"
	"repro/internal/workloads/wordcount"
)

// ClusterSpec is the wire-level parameterization of the experiment
// jobs registered for cluster mode. Coordinator and worker processes
// rebuild identical jobs and splits from it (datagen is seeded, so
// every process derives the same input).
type ClusterSpec struct {
	Scale    float64
	Seed     uint64
	Splits   int
	Reducers int
}

// Cluster-registered experiment job names.
const (
	ClusterJobWordCount  = "exp/wordcount"
	ClusterJobPrefixSort = "exp/prefixsort"
)

func init() {
	cluster.RegisterJob(ClusterJobWordCount, buildClusterWordCount)
	cluster.RegisterJob(ClusterJobPrefixSort, buildClusterPrefixSort)
}

func clusterConfig(spec []byte) (Config, error) {
	var s ClusterSpec
	if err := json.Unmarshal(spec, &s); err != nil {
		return Config{}, fmt.Errorf("experiments: bad cluster spec: %w", err)
	}
	return Config{Scale: s.Scale, Seed: s.Seed, Splits: s.Splits, Reducers: s.Reducers}.normalized(), nil
}

// ClusterRef builds a JobRef for one of the cluster-registered jobs.
func ClusterRef(name string, cfg Config) (cluster.JobRef, error) {
	cfg = cfg.normalized()
	spec, err := json.Marshal(ClusterSpec{
		Scale: cfg.Scale, Seed: cfg.Seed, Splits: cfg.Splits, Reducers: cfg.Reducers,
	})
	if err != nil {
		return cluster.JobRef{}, err
	}
	return cluster.JobRef{Name: name, Spec: spec}, nil
}

// buildClusterWordCount is §7.7.1's WordCount (with its combiner) kept
// with output, so cluster and single-process runs can be compared
// byte for byte.
func buildClusterWordCount(spec []byte) (*mr.Job, []mr.Split, error) {
	cfg, err := clusterConfig(spec)
	if err != nil {
		return nil, nil, err
	}
	text := datagen.NewRandomText(datagen.RandomTextConfig{
		Seed:         cfg.Seed,
		Lines:        cfg.n(4000),
		WordsPerLine: 60,
	})
	return wordcount.NewJob(cfg.Reducers), materialize(wordcount.Splits(text, cfg.Splits)), nil
}

// buildClusterPrefixSort is the prefix-sort workload under AdaptiveSH
// Anti-Combining, so cluster mode also exercises the paper's codec
// across a real network shuffle.
func buildClusterPrefixSort(spec []byte) (*mr.Job, []mr.Split, error) {
	cfg, err := clusterConfig(spec)
	if err != nil {
		return nil, nil, err
	}
	log := datagen.NewQueryLog(datagen.QueryLogConfig{
		Seed:    cfg.Seed,
		Queries: cfg.n(5000),
	})
	base := &mr.Job{
		Name:           "prefixsort",
		NewMapper:      func() mr.Mapper { return prefixSortMapper{} },
		NewReducer:     func() mr.Reducer { return prefixSortReducer{} },
		Partitioner:    querysuggest.PrefixPartitioner{K: 1},
		NumReduceTasks: cfg.Reducers,
		Deterministic:  true,
	}
	job := anticombine.Wrap(base, anticombine.AdaptiveInf())
	return job, materialize(querysuggest.Splits(log, cfg.Splits)), nil
}
