package experiments

import (
	"io"
	"time"

	"repro/internal/anticombine"
	"repro/internal/workloads/cpuwork"
	"repro/internal/workloads/querysuggest"
)

// CPUThresholdResult is Figure 11: total CPU time as the Map function
// gets artificially more expensive (the first 25000·x Fibonacci numbers
// per call). Adaptive-∞ wins at low Map cost by optimizing output size,
// loses at high Map cost where LazySH's reducer-side re-execution
// doubles the expensive calls; Adaptive-α (T = 400 µs) tracks the better
// of the two, converging to Adaptive-0 as calls get pricier.
type CPUThresholdResult struct {
	// Xs are the busy-work multipliers.
	Xs []int
	// Variants are the threshold configurations, in plot order.
	Variants []string
	// CPU[variant][i] is the total CPU for Xs[i].
	CPU map[string][]time.Duration
	// LazyShare[variant][i] is the fraction of encoded partitions that
	// chose LazySH, showing the threshold at work.
	LazyShare map[string][]float64
}

// cpuVariants maps plot names to Anti-Combining options.
func cpuVariants() (names []string, opts map[string]anticombine.Options) {
	names = []string{"Adaptive-0", "Adaptive-a", "Adaptive-inf"}
	opts = map[string]anticombine.Options{
		"Adaptive-0":   anticombine.Adaptive0(),
		"Adaptive-a":   anticombine.AdaptiveAlpha(),
		"Adaptive-inf": anticombine.AdaptiveInf(),
	}
	return names, opts
}

// CPUThreshold runs E7 (Figure 11).
func CPUThreshold(cfg Config) (*CPUThresholdResult, error) {
	cfg = cfg.normalized()
	// The paper sweeps x = 0..16 on a 2011-era Xeon; today's cores run
	// the Fibonacci loop roughly an order of magnitude faster, so the
	// sweep extends to x = 64 to cross the same 400 µs threshold, on a
	// smaller log.
	log := qsLog(Config{Scale: cfg.Scale / 4, Seed: cfg.Seed, Reducers: cfg.Reducers}.normalized())
	splits := qsSplits(cfg, log)
	xs := []int{0, 2, 8, 32, 64}

	names, opts := cpuVariants()
	out := &CPUThresholdResult{
		Xs:        xs,
		Variants:  names,
		CPU:       map[string][]time.Duration{},
		LazyShare: map[string][]float64{},
	}
	for _, name := range names {
		for _, x := range xs {
			job := querysuggest.NewJob(querysuggest.Config{
				Partitioner: querysuggest.PrefixPartitioner{K: 5},
				Reducers:    cfg.Reducers,
			}, false)
			job = cpuwork.WrapJob(job, x)
			job = anticombine.Wrap(job, opts[name])
			job.DiscardOutput = true
			m, _, err := runJob(cfg, name, job, splits)
			if err != nil {
				return nil, err
			}
			out.CPU[name] = append(out.CPU[name], m.CPU)
			lazy := m.Extra[anticombine.CounterLazyRecords]
			total := lazy + m.Extra[anticombine.CounterEagerRecords] +
				m.Extra[anticombine.CounterPlainRecords]
			share := 0.0
			if total > 0 {
				share = float64(lazy) / float64(total)
			}
			out.LazyShare[name] = append(out.LazyShare[name], share)
		}
	}
	return out, nil
}

// Render writes the figure as one series per variant.
func (r *CPUThresholdResult) Render(w io.Writer) {
	t := Table{
		Title:  "E7 (Fig. 11) total CPU time vs extra Map work (Fibonacci x)",
		Header: []string{"x"},
	}
	for _, v := range r.Variants {
		t.Header = append(t.Header, v, v+" lazy%")
	}
	for i, x := range r.Xs {
		row := []string{itoa(int64(x))}
		for _, v := range r.Variants {
			row = append(row, Dur(r.CPU[v][i]), Pct(100*r.LazyShare[v][i]))
		}
		t.AddRow(row...)
	}
	t.Render(w)
}
