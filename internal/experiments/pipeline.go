package experiments

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"time"

	"repro/internal/dag"
	"repro/internal/mr"
	"repro/internal/workloads/pagerank"
)

// PipelineHandoffResult is extension experiment X7: iterative PageRank
// as a 3-stage-per-iteration dag pipeline versus the same three jobs
// chained through the driver, one Submit per job per iteration. The
// chained baseline re-materializes every stage's full output in the
// driver and re-feeds it as the next job's splits — the per-iteration
// re-spill a pipeline exists to delete. The dag runner instead hands
// each stage's partitions to the next stage in place (in process:
// memory partitions become splits; on a fleet: worker-side handoff
// files plus pinned leases), so only the norm stage's single delta
// record and the final ranks ever cross the driver boundary. Both
// executions must produce byte-identical final ranks.
type PipelineHandoffResult struct {
	// Rows holds the chained baseline and the pipeline run.
	Rows []PipelineHandoffRow
	// Iterations both executions ran (they must agree).
	Iterations int
	// DriverSavedFactor is chained driver bytes over pipeline driver
	// bytes — how much re-spill traffic the handoff deletes.
	DriverSavedFactor float64
	// WallSavedPct is the wall-clock reduction of the pipeline run
	// relative to the chained baseline, in percent.
	WallSavedPct float64
	// Identical is whether the final rank partitions match byte-for-byte.
	Identical bool
}

// PipelineHandoffRow is one execution strategy's measured totals.
type PipelineHandoffRow struct {
	Name string
	// DriverBytes is the record volume that crossed the driver boundary
	// (inputs fed in, stage outputs collected back).
	DriverBytes int64
	// ShuffleBytes is the jobs' own total shuffle volume (identical
	// map→reduce work in both strategies).
	ShuffleBytes int64
	// Wall is the measured end-to-end wall time.
	Wall time.Duration
}

// PipelineHandoff runs X7.
func PipelineHandoff(cfg Config) (*PipelineHandoffResult, error) {
	cfg = cfg.normalized()
	spec := pagerank.IterSpec{
		Nodes:     cfg.n(4000),
		AvgDegree: 8,
		Seed:      cfg.Seed,
		Parts:     cfg.Reducers,
		MaxIters:  5,
	}
	inputs := pagerank.IterInputs(spec)

	// Chained baseline: one driver round trip per stage per iteration.
	chained := PipelineHandoffRow{Name: "chained jobs"}
	start := time.Now()
	parts := inputs
	chained.DriverBytes += recordPartsBytes(parts)
	chainIters := 0
	for i := 0; i < spec.MaxIters; i++ {
		rres, err := chainStage(cfg, fmt.Sprintf("x7/chain/rank/%d", i), pagerank.NewRankJob(spec.Nodes, spec.Parts), parts)
		if err != nil {
			return nil, err
		}
		parts = rres.Output
		dres, err := chainStage(cfg, fmt.Sprintf("x7/chain/delta/%d", i), pagerank.NewDeltaJob(spec.Parts), parts)
		if err != nil {
			return nil, err
		}
		nres, err := chainStage(cfg, fmt.Sprintf("x7/chain/norm/%d", i), pagerank.NewNormJob(), dres.Output)
		if err != nil {
			return nil, err
		}
		chained.DriverBytes += recordPartsBytes(parts) + recordPartsBytes(dres.Output) + recordPartsBytes(nres.Output)
		chained.ShuffleBytes += rres.Stats.ShuffleBytes + dres.Stats.ShuffleBytes + nres.Stats.ShuffleBytes
		chainIters = i + 1
	}
	chained.Wall = time.Since(start)

	// Pipeline: same jobs, stage outputs handed off engine-side.
	p := pagerank.NewIterPipeline(spec)
	for si := range p.Stages {
		build := p.Stages[si].Build
		p.Stages[si].Build = func(iter int) *mr.Job {
			job := build(iter)
			applyConfig(cfg, job)
			return job
		}
	}
	start = time.Now()
	pres, err := dag.Run(context.Background(), p, inputs, dag.Config{Engine: &dag.InProcess{}, Tracer: cfg.Tracer})
	if err != nil {
		return nil, fmt.Errorf("experiment x7 pipeline: %w", err)
	}
	pipeline := PipelineHandoffRow{
		Name:         "dag pipeline",
		DriverBytes:  pres.DriverBytes,
		ShuffleBytes: pres.Stats.ShuffleBytes,
		Wall:         time.Since(start),
	}

	out := &PipelineHandoffResult{
		Rows:              []PipelineHandoffRow{chained, pipeline},
		Iterations:        pres.Iterations,
		DriverSavedFactor: factor(chained.DriverBytes, pipeline.DriverBytes),
		WallSavedPct:      -pct(int64(pipeline.Wall), int64(chained.Wall)),
		Identical:         chainIters == pres.Iterations && samePartitions(parts, pres.Output),
	}
	return out, nil
}

// chainStage runs one baseline job over driver-held partitions.
func chainStage(cfg Config, name string, job *mr.Job, parts [][]mr.Record) (*mr.Result, error) {
	applyConfig(cfg, job)
	splits := make([]mr.Split, len(parts))
	for i := range parts {
		splits[i] = &mr.MemSplit{Recs: parts[i]}
	}
	res, err := mr.Run(job, splits)
	if err != nil {
		return nil, fmt.Errorf("experiment job %s: %w", name, err)
	}
	cfg.Digests.Record(name, res)
	return res, nil
}

// applyConfig applies the experiment-wide engine knobs to a stage job.
func applyConfig(cfg Config, job *mr.Job) {
	if cfg.Parallelism > 0 {
		job.Parallelism = cfg.Parallelism
	}
	if cfg.SpillParallelism > 0 {
		job.SpillParallelism = cfg.SpillParallelism
	}
	if cfg.DisablePooling {
		job.DisablePooling = true
	}
	if cfg.Tracer != nil {
		job.Tracer = cfg.Tracer
	}
	if cfg.Metrics != nil {
		job.Metrics = cfg.Metrics
	}
}

func recordPartsBytes(parts [][]mr.Record) int64 {
	var n int64
	for _, part := range parts {
		for _, r := range part {
			n += int64(len(r.Key) + len(r.Value))
		}
	}
	return n
}

func samePartitions(a, b [][]mr.Record) bool {
	if len(a) != len(b) {
		return false
	}
	for p := range a {
		if len(a[p]) != len(b[p]) {
			return false
		}
		for i := range a[p] {
			if !bytes.Equal(a[p][i].Key, b[p][i].Key) || !bytes.Equal(a[p][i].Value, b[p][i].Value) {
				return false
			}
		}
	}
	return true
}

// Render writes X7.
func (r *PipelineHandoffResult) Render(w io.Writer) {
	t := Table{
		Title:  "X7 (extension) iterative PageRank: dag pipeline handoff vs job-per-iteration chaining",
		Header: []string{"strategy", "driverBytes", "shuffleBytes", "wall"},
	}
	for _, row := range r.Rows {
		t.AddRow(row.Name, Bytes(row.DriverBytes), Bytes(row.ShuffleBytes), Dur(row.Wall))
	}
	t.Render(w)
	t2 := Table{Header: []string{"metric", "value"}}
	t2.AddRow("iterations", fmt.Sprintf("%d", r.Iterations))
	t2.AddRow("driver re-spill reduction", fmt.Sprintf("%.1fx", r.DriverSavedFactor))
	t2.AddRow("wall-time delta", fmt.Sprintf("%+.1f%%", r.WallSavedPct))
	if r.Identical {
		t2.AddRow("output identity", "identical across strategies")
	} else {
		t2.AddRow("output identity", "MISMATCH")
	}
	t2.Render(w)
}
