package experiments

import (
	"fmt"
	"io"
	"strings"
	"time"
)

// Table is a simple aligned text table for paper-style output.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// AddRow appends one row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Render writes the table with aligned columns.
func (t *Table) Render(w io.Writer) {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	if t.Title != "" {
		fmt.Fprintf(w, "%s\n", t.Title)
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		fmt.Fprintf(w, "  %s\n", strings.Join(parts, "  "))
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// Bytes renders a byte count with a binary unit.
func Bytes(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.2fGiB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.2fMiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.2fKiB", float64(n)/(1<<10))
	}
	return fmt.Sprintf("%dB", n)
}

// Dur renders a duration rounded for tables.
func Dur(d time.Duration) string {
	if d < 10*time.Millisecond {
		return d.Round(time.Microsecond).String()
	}
	return d.Round(time.Millisecond).String()
}

// F renders a factor like "4.2x".
func F(f float64) string { return fmt.Sprintf("%.2fx", f) }

// Pct renders a percentage delta like "+1.7%".
func Pct(p float64) string { return fmt.Sprintf("%+.2f%%", p) }
