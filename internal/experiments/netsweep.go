package experiments

import (
	"io"
	"strconv"

	"repro/internal/costmodel"
	"repro/internal/mr"
	"repro/internal/netsim"
)

// NetworkSweepResult is an extension experiment (X3) built on the
// synthetic network evaluation: the same two Query-Suggestion runs
// (Original and AdaptiveSH, Prefix-5) are projected onto clusters with
// increasingly fast fabrics. §7's setup remark predicts the trend —
// "this configuration of comparably few machines connected to a fast
// network ... is a challenging setup for Anti-Combining ... In larger
// data centers ... Anti-Combining will deliver even more benefits" — so
// the runtime benefit must be largest on slow shared links and erode as
// the network stops being the bottleneck.
type NetworkSweepResult struct {
	// GbpsSteps are the modeled NIC speeds.
	GbpsSteps []float64
	// Original and Adaptive hold per-step runtime estimates.
	Original []costmodel.Estimate
	Adaptive []costmodel.Estimate
	// Ratio is Original/Adaptive estimated runtime per step.
	Ratio []float64
}

// NetworkSweep runs X3: one pair of measured jobs, many modeled fabrics.
func NetworkSweep(cfg Config) (*NetworkSweepResult, error) {
	cfg = cfg.normalized()
	log := qsLog(cfg)
	splits := qsSplits(cfg, log)

	measure := func(variant string) (*mr.Result, error) {
		job := qsJob(cfg, "Prefix-5", variant, false, nil)
		_, res, err := runJob(cfg, variant, job, splits)
		return res, err
	}
	orig, err := measure(VariantOriginal)
	if err != nil {
		return nil, err
	}
	anti, err := measure(VariantAdaptive)
	if err != nil {
		return nil, err
	}

	out := &NetworkSweepResult{GbpsSteps: []float64{0.1, 0.5, 1, 10, 40}}
	for _, gbps := range out.GbpsSteps {
		cluster := costmodel.Paper()
		cluster.Net = netsim.Network{Nodes: cluster.Workers, NICBps: gbps * 1e9 / 8}
		eo, err := cluster.Estimate(orig.Stats, orig.ShufflePerPartition)
		if err != nil {
			return nil, err
		}
		ea, err := cluster.Estimate(anti.Stats, anti.ShufflePerPartition)
		if err != nil {
			return nil, err
		}
		out.Original = append(out.Original, eo)
		out.Adaptive = append(out.Adaptive, ea)
		r := 0.0
		if ea.Runtime > 0 {
			r = float64(eo.Runtime) / float64(ea.Runtime)
		}
		out.Ratio = append(out.Ratio, r)
	}
	return out, nil
}

// qsJob builds a Query-Suggestion job variant (shared with qsRun but
// returning the job for callers that need the raw result).
func qsJob(cfg Config, partitioner, variant string, withCombiner bool, mutate func(*mr.Job)) *mr.Job {
	job := qsBaseJob(cfg, partitioner, withCombiner)
	job = wrapVariant(job, variant)
	job.DiscardOutput = true
	if mutate != nil {
		mutate(job)
	}
	return job
}

// Render writes the sweep.
func (r *NetworkSweepResult) Render(w io.Writer) {
	t := Table{
		Title:  "X3 (extension) runtime benefit vs network speed (Query-Suggestion, Prefix-5)",
		Header: []string{"NIC", "Original est", "AdaptiveSH est", "benefit", "bottleneck"},
	}
	for i, gbps := range r.GbpsSteps {
		t.AddRow(Fgbps(gbps),
			Dur(r.Original[i].Runtime), Dur(r.Adaptive[i].Runtime),
			F(r.Ratio[i]), bottleneck(r.Original[i]))
	}
	t.Render(w)
}

// Fgbps renders a link speed.
func Fgbps(g float64) string {
	return strconv.FormatFloat(g, 'g', -1, 64) + "Gbps"
}

func bottleneck(e costmodel.Estimate) string {
	switch e.Runtime {
	case e.NetTime:
		return "network"
	case e.DiskTime:
		return "disk"
	default:
		return "cpu"
	}
}
