package experiments

import (
	"io"

	"repro/internal/anticombine"
	"repro/internal/datagen"
	"repro/internal/mr"
	"repro/internal/workloads/pagerank"
	"repro/internal/workloads/wordcount"
)

// WordCountResult is §7.7.1: WordCount with its highly effective
// combiner. The paper measured disk reads ÷9.1 and writes ÷6.3,
// pre-combine map output records ÷7, CPU ÷1.7, runtime ÷1.44, and a
// shuffle only a few flag bytes larger than Original's.
type WordCountResult struct {
	Original RunMetrics
	Adaptive RunMetrics

	DiskReadFactor    float64
	DiskWriteFactor   float64
	RecordsFactor     float64 // pre-combine map output records
	CPUFactor         float64
	RuntimeFactor     float64
	ShuffleDeltaBytes int64
}

// WordCount runs E8 (§7.7.1): the original keeps its combiner; the
// Anti-Combined variant keeps it too (C=1, transformed), since §6.2
// found highly effective combiners still benefit.
func WordCount(cfg Config) (*WordCountResult, error) {
	cfg = cfg.normalized()
	// Hadoop's RandomTextWriter emits long multi-word records; the line
	// length controls how many words a single Map call contributes per
	// partition, which is exactly EagerSH's sharing opportunity.
	text := datagen.NewRandomText(datagen.RandomTextConfig{
		Seed:         cfg.Seed,
		Lines:        cfg.n(4000),
		WordsPerLine: 60,
	})
	splits := materialize(wordcount.Splits(text, cfg.Splits))
	run := func(name string, wrap bool) (RunMetrics, error) {
		job := wordcount.NewJob(cfg.Reducers)
		if wrap {
			job = anticombine.Wrap(job, anticombine.Options{
				Strategy:    anticombine.Adaptive,
				MapCombiner: true,
			})
		}
		job.DiscardOutput = true
		// The paper's 360 GB input dwarfed Hadoop's sort buffers, so map
		// tasks spilled and merged repeatedly; scale the buffer down with
		// the data so the same pressure (and Anti-Combining's fewer
		// records per spill) shows at laptop scale.
		job.SortBufferBytes = 32 << 10
		m, _, err := runJob(cfg, name, job, splits)
		return m, err
	}
	orig, err := run(VariantOriginal, false)
	if err != nil {
		return nil, err
	}
	anti, err := run(VariantAdaptive, true)
	if err != nil {
		return nil, err
	}
	return &WordCountResult{
		Original:        orig,
		Adaptive:        anti,
		DiskReadFactor:  factor(orig.DiskRead, anti.DiskRead),
		DiskWriteFactor: factor(orig.DiskWrite, anti.DiskWrite),
		// Original's pre-combine records vs the encoded records
		// AdaptiveSH hands the (transformed) combiner.
		RecordsFactor:     factor(orig.MapOutputRecords, anti.MapOutputRecords),
		CPUFactor:         factor(int64(orig.CPU), int64(anti.CPU)),
		RuntimeFactor:     factor(int64(orig.Est.Runtime), int64(anti.Est.Runtime)),
		ShuffleDeltaBytes: anti.ShuffleBytes - orig.ShuffleBytes,
	}, nil
}

// Render writes the §7.7.1 comparison.
func (r *WordCountResult) Render(w io.Writer) {
	t := Table{
		Title:  "E8 (§7.7.1) WordCount with effective Combiner",
		Header: []string{"variant", "mapOutRecs(preCB)", "transfer", "diskRead", "diskWrite", "CPU", "est runtime"},
	}
	for _, m := range []RunMetrics{r.Original, r.Adaptive} {
		t.AddRow(m.Name, itoa(m.MapOutputRecords), Bytes(m.ShuffleBytes),
			Bytes(m.DiskRead), Bytes(m.DiskWrite), Dur(m.CPU), Dur(m.Est.Runtime))
	}
	t.AddRow("factor", F(r.RecordsFactor), Bytes(r.ShuffleDeltaBytes)+" delta",
		F(r.DiskReadFactor), F(r.DiskWriteFactor), F(r.CPUFactor), F(r.RuntimeFactor))
	t.Render(w)
}

// PageRankResult is §7.7.2: five PageRank iterations on a skewed graph.
// The paper measured shuffle ÷2.7, disk reads ÷3.5, writes ÷3.2,
// CPU ÷2.8, runtime ÷2.4.
type PageRankResult struct {
	Original RunMetrics
	Adaptive RunMetrics

	ShuffleFactor   float64
	DiskReadFactor  float64
	DiskWriteFactor float64
	CPUFactor       float64
	RuntimeFactor   float64
}

// PageRank runs E9 (§7.7.2), accumulating metrics across iterations.
func PageRank(cfg Config) (*PageRankResult, error) {
	cfg = cfg.normalized()
	g := datagen.NewGraph(datagen.GraphConfig{
		Seed:  cfg.Seed,
		Nodes: cfg.n(3000),
	})
	const iterations = 5
	run := func(name string, wrap bool) (RunMetrics, error) {
		recs := pagerank.InitialRecords(g)
		var total RunMetrics
		total.Name = name
		for it := 0; it < iterations; it++ {
			job := pagerank.NewJob(len(g.Out), cfg.Reducers)
			if wrap {
				job = anticombine.Wrap(job, anticombine.AdaptiveInf())
			}
			// Like §7.7.1, buffer pressure is scaled with the data so the
			// paper's spill/merge disk traffic exists at laptop scale.
			job.SortBufferBytes = 32 << 10
			m, res, err := runJob(cfg, name, job, mr.SplitRecords(recs, cfg.Splits))
			if err != nil {
				return RunMetrics{}, err
			}
			total.accumulate(m)
			recs = res.SortedOutput()
		}
		return total, nil
	}
	orig, err := run(VariantOriginal, false)
	if err != nil {
		return nil, err
	}
	anti, err := run(VariantAdaptive, true)
	if err != nil {
		return nil, err
	}
	return &PageRankResult{
		Original:        orig,
		Adaptive:        anti,
		ShuffleFactor:   factor(orig.ShuffleBytes, anti.ShuffleBytes),
		DiskReadFactor:  factor(orig.DiskRead, anti.DiskRead),
		DiskWriteFactor: factor(orig.DiskWrite, anti.DiskWrite),
		CPUFactor:       factor(int64(orig.CPU), int64(anti.CPU)),
		RuntimeFactor:   factor(int64(orig.Est.Runtime), int64(anti.Est.Runtime)),
	}, nil
}

// Render writes the §7.7.2 comparison.
func (r *PageRankResult) Render(w io.Writer) {
	t := Table{
		Title:  "E9 (§7.7.2) PageRank, 5 iterations on a power-law graph",
		Header: []string{"variant", "transfer", "diskRead", "diskWrite", "CPU", "est runtime"},
	}
	for _, m := range []RunMetrics{r.Original, r.Adaptive} {
		t.AddRow(m.Name, Bytes(m.ShuffleBytes), Bytes(m.DiskRead), Bytes(m.DiskWrite),
			Dur(m.CPU), Dur(m.Est.Runtime))
	}
	t.AddRow("factor", F(r.ShuffleFactor), F(r.DiskReadFactor), F(r.DiskWriteFactor),
		F(r.CPUFactor), F(r.RuntimeFactor))
	t.Render(w)
}
