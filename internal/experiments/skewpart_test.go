package experiments

import (
	"strings"
	"testing"

	"repro/internal/partition"
)

// TestSkewPartition asserts the PR's acceptance numbers on X5. On the
// zipf-hot profile one key dominates: hash collapses (>= 3x) and only
// splitting balances it, so Decide must pick split. On colliding-heads
// several packable keys collide under hash: hash still breaks but range
// packing balances, so Decide must pick range. Both profiles' sorted
// reduce output must be byte-identical across all three strategies.
func TestSkewPartition(t *testing.T) {
	r, err := SkewPartition(Config{Scale: 0.4, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	profs := make(map[string]SkewPartitionProfile, len(r.Profiles))
	for _, p := range r.Profiles {
		profs[p.Name] = p
	}

	rowsOf := func(p SkewPartitionProfile) map[string]SkewPartitionRow {
		out := make(map[string]SkewPartitionRow, len(p.Rows))
		for _, row := range p.Rows {
			out[row.Strategy] = row
		}
		return out
	}

	zipf, ok := profs["zipf-hot"]
	if !ok {
		t.Fatal("missing zipf-hot profile")
	}
	if !zipf.Identical {
		t.Fatalf("zipf-hot output differs across strategies: %v", zipf.Digests)
	}
	zr := rowsOf(zipf)
	if s := zr["hash"].Skew; s < 3 {
		t.Errorf("zipf-hot hash skew = %.2f, want >= 3", s)
	}
	if s := zr["split"].Skew; s > 1.25 {
		t.Errorf("zipf-hot split skew = %.2f, want <= 1.25", s)
	}
	if zipf.Decision.Strategy != partition.StrategySplit {
		t.Errorf("zipf-hot decision = %v (%s), want split", zipf.Decision.Strategy, zipf.Decision.Reason)
	}
	if zipf.HotKeys < 1 {
		t.Errorf("zipf-hot split plan fanned out %d keys, want >= 1", zipf.HotKeys)
	}
	if zr["split"].NetTime > zr["hash"].NetTime {
		t.Errorf("zipf-hot split net time %v exceeds hash %v — balancing should shrink the shuffle makespan",
			zr["split"].NetTime, zr["hash"].NetTime)
	}

	coll, ok := profs["colliding-heads"]
	if !ok {
		t.Fatal("missing colliding-heads profile")
	}
	if !coll.Identical {
		t.Fatalf("colliding-heads output differs across strategies: %v", coll.Digests)
	}
	cr := rowsOf(coll)
	if s := cr["hash"].Skew; s < 3 {
		t.Errorf("colliding-heads hash skew = %.2f, want >= 3", s)
	}
	if s := cr["range"].Skew; s > 1.25 {
		t.Errorf("colliding-heads range skew = %.2f, want <= 1.25", s)
	}
	if s := cr["split"].Skew; s > 1.25 {
		t.Errorf("colliding-heads split skew = %.2f, want <= 1.25", s)
	}
	if coll.Decision.Strategy != partition.StrategyRange {
		t.Errorf("colliding-heads decision = %v (%s), want range", coll.Decision.Strategy, coll.Decision.Reason)
	}

	var sb strings.Builder
	r.Render(&sb)
	if !strings.Contains(sb.String(), "identical across strategies") {
		t.Errorf("render missing identity line:\n%s", sb.String())
	}
}

// TestThetaShares asserts X6: under placement skew the contiguous block
// assignment overloads one reducer while the SharesSkew-style plan
// (sub-tiled hot regions, LPT-packed) balances, with the join output
// record-identical across variants including under AdaptiveSH.
func TestThetaShares(t *testing.T) {
	r, err := ThetaShares(Config{Scale: 0.5, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Identical {
		t.Fatalf("join output differs across variants: %v", r.Digests)
	}
	if r.SubTiled < 1 {
		t.Errorf("share plan sub-tiled %d regions, want >= 1 under placement skew", r.SubTiled)
	}
	rows := make(map[string]ThetaSharesRow, len(r.Rows))
	for _, row := range r.Rows {
		rows[row.Name] = row
	}
	block, shares := rows["block"], rows["shares"]
	if block.Skew < 2 {
		t.Errorf("block skew = %.2f, want >= 2 under placement skew", block.Skew)
	}
	if shares.Skew > 1.5 {
		t.Errorf("shares skew = %.2f, want <= 1.5", shares.Skew)
	}
	if shares.Skew >= block.Skew {
		t.Errorf("shares skew %.2f not better than block %.2f", shares.Skew, block.Skew)
	}
}
