package experiments

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"strings"
	"time"

	"repro/internal/cluster"
	"repro/internal/mr"
)

// ClusterOptions configures the multi-process comparison run.
type ClusterOptions struct {
	// Workers is the number of worker subprocesses (antibench -cluster N).
	Workers int
	// SlotsPerWorker is each worker's concurrent task slots (default 2).
	SlotsPerWorker int
	// Kill, when set, SIGKILLs one worker right after it commits its
	// first map task, demonstrating failure recovery end to end.
	Kill bool
}

// ClusterRun is one experiment executed both in-process and across
// worker subprocesses with a real TCP shuffle.
type ClusterRun struct {
	Name    string
	Single  RunMetrics
	Cluster RunMetrics
	// Identical reports whether the two runs' sorted outputs matched
	// byte for byte.
	Identical bool
	// Measured is the cluster run's real shuffle (loopback TCP).
	Measured mr.ShuffleMeasurement
	// PredictedNet is the netsim fair-share prediction for the same
	// shuffle volume on the modeled cluster fabric.
	PredictedNet time.Duration
	// KilledWorker is the worker id killed mid-run (-1 when none).
	KilledWorker int
	// Reexecs counts task attempts beyond the first — retries and
	// re-executions after the kill (0 in an undisturbed run).
	Reexecs int
}

// ClusterCompareResult is the `antibench -cluster N` report.
type ClusterCompareResult struct {
	Workers int
	Runs    []ClusterRun
}

// ClusterCompare runs the cluster-registered experiment jobs twice
// each — once with the in-process engine, once across opts.Workers
// subprocesses — and verifies the outputs are byte-identical. The
// cluster run reports its measured shuffle next to the netsim
// prediction for the same volume, which is what grounds the cost
// model: the simulator's flow accounting can be checked against real
// sockets, not just against itself.
func ClusterCompare(cfg Config, opts ClusterOptions) (*ClusterCompareResult, error) {
	cfg = cfg.normalized()
	if opts.Workers <= 0 {
		opts.Workers = 3
	}
	if opts.SlotsPerWorker <= 0 {
		opts.SlotsPerWorker = 2
	}
	out := &ClusterCompareResult{Workers: opts.Workers}
	for _, name := range []string{ClusterJobWordCount, ClusterJobPrefixSort} {
		run, err := clusterRun(cfg, opts, name)
		if err != nil {
			return nil, fmt.Errorf("cluster compare %s: %w", name, err)
		}
		out.Runs = append(out.Runs, run)
	}
	return out, nil
}

func clusterRun(cfg Config, opts ClusterOptions, name string) (ClusterRun, error) {
	ref, err := ClusterRef(name, cfg)
	if err != nil {
		return ClusterRun{}, err
	}

	// Reference: the same registry job through the in-process engine.
	job, splits, err := cluster.BuildJob(ref)
	if err != nil {
		return ClusterRun{}, err
	}
	single, singleRes, err := runJob(cfg, name+" single", job, splits)
	if err != nil {
		return ClusterRun{}, err
	}

	events := make(chan cluster.Event, 4096)
	coord, err := cluster.New(cluster.Config{
		Job:        ref,
		MinWorkers: opts.Workers,
		Tracer:     cfg.Tracer,
		OnEvent: func(e cluster.Event) {
			select {
			case events <- e:
			default:
			}
		},
	})
	if err != nil {
		return ClusterRun{}, err
	}
	defer coord.Close()

	// Spawn workers one at a time, waiting for each registration, so
	// worker id i is procs[i] and the kill injector knows whom to shoot.
	procs := make([]*cluster.Process, opts.Workers)
	defer func() {
		for _, p := range procs {
			if p != nil {
				p.Kill()
			}
		}
	}()
	for i := range procs {
		p, serr := cluster.SpawnSelf(coord.Addr(), opts.SlotsPerWorker)
		if serr != nil {
			return ClusterRun{}, fmt.Errorf("spawning worker: %w", serr)
		}
		procs[i] = p
		if werr := awaitRegistration(events, i); werr != nil {
			return ClusterRun{}, werr
		}
	}

	killed := make(chan int, 1)
	watchCtx, stopWatch := context.WithCancel(context.Background())
	defer stopWatch()
	go func() {
		armed := opts.Kill
		for {
			select {
			case e := <-events:
				if armed && e.Kind == "task-done" && strings.HasPrefix(e.Task, "map/") {
					armed = false
					procs[e.Worker].Kill()
					killed <- e.Worker
				}
			case <-watchCtx.Done():
				return
			}
		}
	}()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Minute)
	defer cancel()
	clusterRes, err := coord.Run(ctx)
	if err != nil {
		return ClusterRun{}, err
	}
	clusterM, err := metricsFrom(cfg, fmt.Sprintf("%s cluster(%dw)", name, opts.Workers), clusterRes)
	if err != nil {
		return ClusterRun{}, err
	}
	if clusterRes.MeasuredShuffle == nil {
		return ClusterRun{}, fmt.Errorf("cluster run produced no shuffle measurement")
	}

	run := ClusterRun{
		Name:         name,
		Single:       single,
		Cluster:      clusterM,
		Identical:    sameOutput(singleRes, clusterRes),
		Measured:     *clusterRes.MeasuredShuffle,
		PredictedNet: clusterM.Est.NetTime,
		KilledWorker: -1,
	}
	for _, a := range clusterRes.Timeline {
		if a.Attempt > 0 {
			run.Reexecs++
		}
	}
	select {
	case w := <-killed:
		run.KilledWorker = w
	default:
		if opts.Kill {
			return ClusterRun{}, fmt.Errorf("kill was requested but the job finished before any map commit")
		}
	}
	return run, nil
}

func awaitRegistration(events <-chan cluster.Event, worker int) error {
	deadline := time.After(30 * time.Second)
	for {
		select {
		case e := <-events:
			if e.Kind == "register" && e.Worker == worker {
				return nil
			}
		case <-deadline:
			return fmt.Errorf("worker %d did not register within 30s", worker)
		}
	}
}

func sameOutput(a, b *mr.Result) bool {
	ra, rb := a.SortedOutput(), b.SortedOutput()
	if len(ra) != len(rb) {
		return false
	}
	for i := range ra {
		if !bytes.Equal(ra[i].Key, rb[i].Key) || !bytes.Equal(ra[i].Value, rb[i].Value) {
			return false
		}
	}
	return true
}

// Render writes the single-vs-cluster comparison and the
// measured-vs-predicted shuffle table.
func (r *ClusterCompareResult) Render(w io.Writer) {
	t := Table{
		Title:  fmt.Sprintf("Cluster mode: %d worker processes vs in-process engine", r.Workers),
		Header: []string{"experiment", "mode", "transfer", "disk r+w", "wall", "output", "reexec attempts"},
	}
	for _, run := range r.Runs {
		t.AddRow(run.Name, "single", Bytes(run.Single.ShuffleBytes),
			Bytes(run.Single.DiskRead+run.Single.DiskWrite), Dur(run.Single.Wall), "reference", "-")
		verdict := "IDENTICAL"
		if !run.Identical {
			verdict = "MISMATCH"
		}
		mode := fmt.Sprintf("cluster(%dw)", r.Workers)
		if run.KilledWorker >= 0 {
			mode += fmt.Sprintf(" kill w%d", run.KilledWorker)
		}
		t.AddRow(run.Name, mode, Bytes(run.Cluster.ShuffleBytes),
			Bytes(run.Cluster.DiskRead+run.Cluster.DiskWrite), Dur(run.Cluster.Wall),
			verdict, itoa(int64(run.Reexecs)))
	}
	t.Render(w)

	p := Table{
		Title: "Measured shuffle (loopback TCP) vs netsim prediction (modeled gigabit fabric)",
		Header: []string{"experiment", "bytes", "fetches", "dials",
			"fetch Σ", "extent", "measured MB/s", "netsim predicted", "predicted MB/s"},
	}
	for _, run := range r.Runs {
		m := run.Measured
		p.AddRow(run.Name, Bytes(m.Bytes), itoa(int64(m.Fetches)), itoa(m.Dials),
			Dur(m.FetchTime), Dur(m.Extent), mbps(m.Bytes, m.Extent),
			Dur(run.PredictedNet), mbps(m.Bytes, run.PredictedNet))
	}
	p.Render(w)
}

func mbps(b int64, d time.Duration) string {
	if d <= 0 {
		return "-"
	}
	return fmt.Sprintf("%.1f", float64(b)/d.Seconds()/1e6)
}
