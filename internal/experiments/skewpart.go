package experiments

import (
	"fmt"
	"io"
	"time"

	"repro/internal/costmodel"
	"repro/internal/partition"
	"repro/internal/workloads/skewagg"
)

// SkewPartitionResult is extension experiment X5: skew-aware adaptive
// partitioning (internal/partition) on the adversarial skewagg
// workload, run over two skew shapes:
//
//   - zipf-hot: the default Zipf head — one key carrying most of the
//     map output. Nothing short of splitting can balance it, so Decide
//     must pick StrategySplit.
//   - colliding-heads: several mid-weight keys, each below a reducer's
//     worth, that collide under hash. Range packing separates them, so
//     Decide must pick StrategyRange.
//
// For each profile all three strategies run and the table compares
// max/mean partition bytes (measured vs sketch-predicted), modeled
// network time (the shared-fabric makespan tracks the max flow),
// reduce-task time skew, and output identity: sorted records must be
// byte-equal across strategies (split runs through Recombine first).
type SkewPartitionResult struct {
	Profiles []SkewPartitionProfile
}

// SkewPartitionProfile is one skew shape's decision plus measured runs.
type SkewPartitionProfile struct {
	Name string
	// Decision is the sketch-driven choice with per-strategy
	// predictions; LazyCaution flags the §6.2 anti-combining
	// interaction (residual skew + LazySH available → prefer EagerSH).
	Decision partition.Decision
	// SketchKeys is the sketch's tracked key count (exact here: the
	// workload's key space fits the default capacity).
	SketchKeys int
	// HotKeys is the split plan's fanned-out key count.
	HotKeys int
	// Rows holds one measured run per strategy.
	Rows []SkewPartitionRow
	// Digests maps each strategy to its sorted-records digest;
	// Identical is whether all three are equal.
	Digests   map[string]string
	Identical bool
}

// SkewPartitionRow is one strategy's measured balance.
type SkewPartitionRow struct {
	Strategy string
	// MaxPart, MeanPart, and Skew summarize measured per-partition
	// shuffle bytes (costmodel.PartitionSkew over
	// Result.ShufflePerPartition).
	MaxPart, MeanPart int64
	Skew              float64
	// Predicted is the sketch's predicted max/mean for the strategy.
	Predicted float64
	// NetTime and EstRuntime are the cluster model's shuffle makespan
	// and bottleneck runtime.
	NetTime    time.Duration
	EstRuntime time.Duration
	// ReduceSkew is measured reduce-task time max/mean.
	ReduceSkew float64
	// MapOutputBytes differs only for split (salting adds 2 bytes per
	// hot-key record).
	MapOutputBytes int64
}

// SkewPartition runs X5.
func SkewPartition(cfg Config) (*SkewPartitionResult, error) {
	cfg = cfg.normalized()
	profiles := []struct {
		name string
		scfg skewagg.Config
	}{
		{"zipf-hot", skewagg.Config{
			Records:  cfg.n(20000),
			Reducers: cfg.Reducers,
			Seed:     cfg.Seed,
		}},
		{"colliding-heads", skewagg.Config{
			Records:  cfg.n(20000),
			Reducers: cfg.Reducers,
			Seed:     cfg.Seed,
			// Ranks 4/17/22 hash to one partition of 8; each carries
			// ~13% of the records — heavy, but packable.
			HeavyRanks: []int{4, 17, 22},
			Exponent:   1.0,
		}},
	}
	out := &SkewPartitionResult{}
	for _, p := range profiles {
		prof, err := runSkewProfile(cfg, p.name, p.scfg)
		if err != nil {
			return nil, err
		}
		out.Profiles = append(out.Profiles, *prof)
	}
	return out, nil
}

func runSkewProfile(cfg Config, name string, scfg skewagg.Config) (*SkewPartitionProfile, error) {
	gen := skewagg.NewGen(scfg)
	splits := materialize(skewagg.Splits(gen, cfg.Splits))

	// Sampling pass: exact (splits are materialized in memory).
	sk, err := partition.Sample(skewagg.NewJob(scfg), splits, partition.SampleOptions{})
	if err != nil {
		return nil, err
	}
	opts := partition.DecideOptions{LazyAllowed: true}
	dec, err := partition.Decide(sk, cfg.Reducers, nil, opts)
	if err != nil {
		return nil, err
	}

	out := &SkewPartitionProfile{
		Name:       name,
		Decision:   dec,
		SketchKeys: sk.Len(),
		Digests:    make(map[string]string, 3),
		Identical:  true,
	}

	run := func(strat partition.Strategy) error {
		base := skewagg.NewJob(scfg)
		job := base
		var plan *partition.SplitPlan
		switch strat {
		case partition.StrategySplit:
			// SplitJob gets the monoid combiner explicitly instead of
			// setting base.NewCombiner: a map-side combiner would
			// collapse the shuffle for this strategy only and skew the
			// A/B comparison.
			plan, err = partition.BuildSplit(sk, cfg.Reducers, nil, opts.Split)
			if err != nil {
				return err
			}
			job, err = partition.SplitJob(base, plan, skewagg.NewCombiner)
			if err != nil {
				return err
			}
			out.HotKeys = len(plan.HotKeys())
		default:
			job, plan, err = partition.Apply(base, strat, sk, opts)
			if err != nil {
				return err
			}
		}
		m, res, err := runJob(cfg, "skewpart/"+name+"/"+strat.String(), job, splits)
		if err != nil {
			return err
		}
		if err := partition.Recombine(base, plan, res); err != nil {
			return err
		}
		maxB, meanB, ratio := costmodel.PartitionSkew(res.ShufflePerPartition)
		_, _, redSkew := taskSkew(res.ReduceTaskTimes)
		out.Rows = append(out.Rows, SkewPartitionRow{
			Strategy:       strat.String(),
			MaxPart:        maxB,
			MeanPart:       meanB,
			Skew:           ratio,
			Predicted:      dec.Predicted[strat],
			NetTime:        m.Est.NetTime,
			EstRuntime:     m.Est.Runtime,
			ReduceSkew:     redSkew,
			MapOutputBytes: m.MapOutputBytes,
		})
		out.Digests[strat.String()] = RecordsDigest(res)
		if out.Digests[strat.String()] != out.Digests[partition.StrategyHash.String()] {
			out.Identical = false
		}
		return nil
	}
	for _, strat := range []partition.Strategy{partition.StrategyHash, partition.StrategyRange, partition.StrategySplit} {
		if err := run(strat); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Render writes X5.
func (r *SkewPartitionResult) Render(w io.Writer) {
	for _, p := range r.Profiles {
		t := Table{
			Title:  fmt.Sprintf("X5 (extension) skew-aware partitioning on skewagg, profile %s", p.Name),
			Header: []string{"strategy", "maxPart", "meanPart", "skew", "predicted", "netTime", "est runtime", "redSkew", "mapOutBytes"},
		}
		for _, row := range p.Rows {
			t.AddRow(row.Strategy, Bytes(row.MaxPart), Bytes(row.MeanPart), F(row.Skew), F(row.Predicted),
				Dur(row.NetTime), Dur(row.EstRuntime), F(row.ReduceSkew), Bytes(row.MapOutputBytes))
		}
		t.Render(w)
		t2 := Table{Header: []string{"metric", "value"}}
		t2.AddRow("decision", p.Decision.Strategy.String())
		t2.AddRow("reason", p.Decision.Reason)
		t2.AddRow("sketch keys", fmt.Sprintf("%d", p.SketchKeys))
		t2.AddRow("split hot keys", fmt.Sprintf("%d", p.HotKeys))
		if p.Identical {
			t2.AddRow("output identity", "identical across strategies")
		} else {
			t2.AddRow("output identity", "MISMATCH")
		}
		t2.Render(w)
	}
}
