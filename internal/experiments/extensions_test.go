package experiments

import (
	"bytes"
	"testing"
)

func TestScanShareShape(t *testing.T) {
	r, err := ScanShare(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if r.Original.MapOutputRecords != r.Adaptive.MapOutputRecords*int64(r.Queries)/int64(tiny().Reducers) &&
		r.RecordsFactor < 1.5 {
		t.Errorf("records factor = %.2f; duplicates should collapse", r.RecordsFactor)
	}
	if r.BytesFactor < 1.5 {
		t.Errorf("bytes factor = %.2f", r.BytesFactor)
	}
	var buf bytes.Buffer
	r.Render(&buf)
}

func TestCrossCallShape(t *testing.T) {
	r, err := CrossCall(tiny())
	if err != nil {
		t.Fatal(err)
	}
	// Records must never grow as the window grows (windows larger than a
	// task's call count tie), bytes must never increase, and the largest
	// window must be well below per-call encoding.
	for i := 1; i < len(r.Windows); i++ {
		if r.Metrics[i].MapOutputRecords > r.Metrics[i-1].MapOutputRecords {
			t.Errorf("window %d records (%d) above window %d (%d)",
				r.Windows[i], r.Metrics[i].MapOutputRecords,
				r.Windows[i-1], r.Metrics[i-1].MapOutputRecords)
		}
		if r.Metrics[i].MapOutputBytes > r.Metrics[i-1].MapOutputBytes {
			t.Errorf("window %d bytes grew", r.Windows[i])
		}
	}
	last := len(r.Windows) - 1
	if r.Metrics[last].MapOutputRecords*4 > r.Metrics[0].MapOutputRecords {
		t.Errorf("largest window records (%d) not well below per-call (%d)",
			r.Metrics[last].MapOutputRecords, r.Metrics[0].MapOutputRecords)
	}
	var buf bytes.Buffer
	r.Render(&buf)
}

func TestNetworkSweepShape(t *testing.T) {
	r, err := NetworkSweep(tiny())
	if err != nil {
		t.Fatal(err)
	}
	// The runtime benefit must be non-increasing as the network speeds
	// up (it can flatten once another resource dominates), and the
	// slowest fabric must show the largest benefit.
	for i := 1; i < len(r.GbpsSteps); i++ {
		if r.Ratio[i] > r.Ratio[i-1]*1.0001 {
			t.Errorf("benefit grew with faster network: %.2f @%.1fGbps -> %.2f @%.1fGbps",
				r.Ratio[i-1], r.GbpsSteps[i-1], r.Ratio[i], r.GbpsSteps[i])
		}
	}
	if r.Ratio[0] <= 1 {
		t.Errorf("slowest fabric benefit = %.2f, want > 1", r.Ratio[0])
	}
	var buf bytes.Buffer
	r.Render(&buf)
}

func TestSkewShape(t *testing.T) {
	r, err := Skew(tiny())
	if err != nil {
		t.Fatal(err)
	}
	idx := map[string]int{}
	for i, v := range r.Variants {
		idx[v] = i
	}
	// §6.2's trade-off: LazySH slashes transfer but concentrates
	// re-executed Map work on reducers; T=0 (EagerSH) avoids it.
	if r.MapOutputBytes[idx[VariantLazy]]*2 > r.MapOutputBytes[idx[VariantEager]] {
		t.Errorf("lazy transfer %d not well below eager %d",
			r.MapOutputBytes[idx[VariantLazy]], r.MapOutputBytes[idx[VariantEager]])
	}
	// At least +25% even under instrumented (-race) builds; the
	// uninstrumented effect at scale is far larger (see EXPERIMENTS.md).
	if float64(r.MaxTask[idx[VariantLazy]]) < 1.25*float64(r.MaxTask[idx[VariantEager]]) {
		t.Errorf("lazy max task %v not above eager %v: skew effect missing",
			r.MaxTask[idx[VariantLazy]], r.MaxTask[idx[VariantEager]])
	}
	var buf bytes.Buffer
	r.Render(&buf)
}
