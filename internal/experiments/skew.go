package experiments

import (
	"io"
	"time"

	"repro/internal/datagen"
	"repro/internal/workloads/cpuwork"
	"repro/internal/workloads/querysuggest"
)

// SkewResult is extension experiment X4, quantifying §6.2's "Total cost
// versus running time" discussion: a reducer dealing with many LazySH
// records pays the re-executed Map calls, so LazySH-heavy plans can be
// slower to *complete* even when total cost drops — acceptable when
// optimizing throughput, and boundable via the threshold T. The
// experiment measures per-reduce-task time skew (max/mean) for
// Adaptive-0 (no re-execution), Adaptive-∞, and pure LazySH on a
// Query-Suggestion job whose Map calls are made expensive with the
// §7.6 Fibonacci busy-work, concentrated by the Prefix-1 partitioner —
// a lazy-heavy reducer re-executes its letter's entire Map workload.
type SkewResult struct {
	Variants []string
	// MaxTask and MeanTask are per-variant reduce-task durations.
	MaxTask  []time.Duration
	MeanTask []time.Duration
	// Skew is max/mean per variant.
	Skew []float64
	// MaxMapTask, MeanMapTask, and MapSkew are the map-phase analogues,
	// from mr.Result.MapTaskTimes: LazySH shifts work from map to
	// reduce, so map-side skew should stay flat while reduce-side skew
	// grows.
	MaxMapTask  []time.Duration
	MeanMapTask []time.Duration
	MapSkew     []float64
	// CPU is the variant's total CPU (the throughput side of the
	// trade-off).
	CPU []time.Duration
	// MapOutputBytes is the transfer side.
	MapOutputBytes []int64
}

// Skew runs X4.
func Skew(cfg Config) (*SkewResult, error) {
	cfg = cfg.normalized()
	log := datagen.NewQueryLog(datagen.QueryLogConfig{
		Seed:    cfg.Seed,
		Queries: cfg.n(6000),
	})
	splits := materialize(querysuggest.Splits(log, cfg.Splits))

	out := &SkewResult{Variants: []string{VariantOriginal, VariantEager, VariantAdaptive, VariantLazy}}
	for _, variant := range out.Variants {
		job := querysuggest.NewJob(querysuggest.Config{
			// Prefix-1 concentrates each first letter's whole workload —
			// and all its LazySH re-execution — on one reduce task.
			Partitioner: querysuggest.PrefixPartitioner{K: 1},
			Reducers:    cfg.Reducers,
		}, false)
		job = cpuwork.WrapJob(job, 4) // expensive Map calls (§7.6 busy-work)
		job = wrapVariant(job, variant)
		job.DiscardOutput = true
		_, res, err := runJob(cfg, "skew/"+variant, job, splits)
		if err != nil {
			return nil, err
		}
		maxT, mean, skew := taskSkew(res.ReduceTaskTimes)
		out.MaxTask = append(out.MaxTask, maxT)
		out.MeanTask = append(out.MeanTask, mean)
		out.Skew = append(out.Skew, skew)
		maxM, meanM, skewM := taskSkew(res.MapTaskTimes)
		out.MaxMapTask = append(out.MaxMapTask, maxM)
		out.MeanMapTask = append(out.MeanMapTask, meanM)
		out.MapSkew = append(out.MapSkew, skewM)
		out.CPU = append(out.CPU, res.Stats.TotalCPU())
		out.MapOutputBytes = append(out.MapOutputBytes, res.Stats.MapOutputBytes)
	}
	return out, nil
}

// taskSkew summarizes a per-task duration slice as (max, mean,
// max/mean).
func taskSkew(times []time.Duration) (time.Duration, time.Duration, float64) {
	var maxT, sum time.Duration
	for _, d := range times {
		if d > maxT {
			maxT = d
		}
		sum += d
	}
	var mean time.Duration
	if len(times) > 0 {
		mean = sum / time.Duration(len(times))
	}
	skew := 0.0
	if mean > 0 {
		skew = float64(maxT) / float64(mean)
	}
	return maxT, mean, skew
}

// Render writes X4.
func (r *SkewResult) Render(w io.Writer) {
	t := Table{
		Title:  "X4 (extension, §6.2) reducer load skew under LazySH (Query-Suggestion, Prefix-1)",
		Header: []string{"variant", "mapOutBytes", "totalCPU", "maxRed", "meanRed", "redSkew", "maxMap", "meanMap", "mapSkew"},
	}
	for i, v := range r.Variants {
		t.AddRow(v, Bytes(r.MapOutputBytes[i]), Dur(r.CPU[i]),
			Dur(r.MaxTask[i]), Dur(r.MeanTask[i]), F(r.Skew[i]),
			Dur(r.MaxMapTask[i]), Dur(r.MeanMapTask[i]), F(r.MapSkew[i]))
	}
	t.Render(w)
}
