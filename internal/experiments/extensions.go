package experiments

import (
	"io"

	"repro/internal/anticombine"
	"repro/internal/datagen"
	"repro/internal/workloads/scanshare"
	"repro/internal/workloads/wordcount"
)

// ScanShareResult is extension experiment X1, the scan-sharing scenario
// §1 motivates: N merged queries each duplicate every scanned record;
// Anti-Combining collapses the duplicates to at most one record per
// touched reduce task.
type ScanShareResult struct {
	Queries  int
	Original RunMetrics
	Adaptive RunMetrics

	RecordsFactor float64
	BytesFactor   float64
}

// ScanShare runs X1.
func ScanShare(cfg Config) (*ScanShareResult, error) {
	cfg = cfg.normalized()
	cloud := datagen.NewCloud(datagen.CloudConfig{Seed: cfg.Seed, Records: cfg.n(5000)})
	scfg := scanshare.Config{Queries: 12, Reducers: cfg.Reducers}
	splits := materialize(scanshare.Splits(cloud, cfg.Splits))

	run := func(name string, wrap bool) (RunMetrics, error) {
		job := scanshare.NewJob(scfg)
		if wrap {
			job = anticombine.Wrap(job, anticombine.AdaptiveInf())
		}
		job.DiscardOutput = true
		m, _, err := runJob(cfg, name, job, splits)
		return m, err
	}
	orig, err := run(VariantOriginal, false)
	if err != nil {
		return nil, err
	}
	anti, err := run(VariantAdaptive, true)
	if err != nil {
		return nil, err
	}
	return &ScanShareResult{
		Queries:       scfg.Queries,
		Original:      orig,
		Adaptive:      anti,
		RecordsFactor: factor(orig.MapOutputRecords, anti.MapOutputRecords),
		BytesFactor:   factor(orig.MapOutputBytes, anti.MapOutputBytes),
	}, nil
}

// Render writes X1.
func (r *ScanShareResult) Render(w io.Writer) {
	t := Table{
		Title:  "X1 (extension, §1 motivation) scan sharing across merged queries",
		Header: []string{"variant", "mapOutRecords", "mapOutBytes", "CPU", "est runtime"},
	}
	for _, m := range []RunMetrics{r.Original, r.Adaptive} {
		t.AddRow(m.Name, itoa(m.MapOutputRecords), Bytes(m.MapOutputBytes), Dur(m.CPU), Dur(m.Est.Runtime))
	}
	t.AddRow("factor", F(r.RecordsFactor), F(r.BytesFactor), "", "")
	t.Render(w)
}

// CrossCallResult is extension experiment X2, the paper's future work
// (§9): EagerSH sharing across the Map calls of one task.
type CrossCallResult struct {
	Windows []int
	Metrics []RunMetrics
}

// CrossCall runs X2 over a WordCount without combiner (to isolate the
// encoding effect).
func CrossCall(cfg Config) (*CrossCallResult, error) {
	cfg = cfg.normalized()
	text := datagen.NewRandomText(datagen.RandomTextConfig{
		Seed: cfg.Seed, Lines: cfg.n(4000), WordsPerLine: 10, VocabWords: 5000,
	})
	splits := materialize(wordcount.Splits(text, cfg.Splits))
	out := &CrossCallResult{Windows: []int{0, 4, 16, 64, 256}}
	for _, window := range out.Windows {
		job := wordcount.NewJob(cfg.Reducers)
		job.NewCombiner = nil
		job = anticombine.Wrap(job, anticombine.Options{
			Strategy:        anticombine.EagerOnly,
			CrossCallWindow: window,
		})
		job.DiscardOutput = true
		m, _, err := runJob(cfg, itoa(int64(window)), job, splits)
		if err != nil {
			return nil, err
		}
		out.Metrics = append(out.Metrics, m)
	}
	return out, nil
}

// Render writes X2.
func (r *CrossCallResult) Render(w io.Writer) {
	t := Table{
		Title:  "X2 (extension, §9 future work) EagerSH sharing across Map calls (WordCount, no combiner)",
		Header: []string{"window", "mapOutRecords", "mapOutBytes", "vs per-call"},
	}
	base := r.Metrics[0].MapOutputBytes
	for i, window := range r.Windows {
		m := r.Metrics[i]
		t.AddRow(itoa(int64(window)), itoa(m.MapOutputRecords), Bytes(m.MapOutputBytes),
			F(factor(base, m.MapOutputBytes)))
	}
	t.Render(w)
}
