package chaos

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"

	"repro/internal/iokit"
	"repro/internal/obs"
)

// TestScheduleDeterministic pins the replay property: two schedules
// with the same seed and profile, driven through the same operation
// sequence, inject exactly the same faults.
func TestScheduleDeterministic(t *testing.T) {
	drive := func(s *Schedule) []Event {
		for i := 0; i < 500; i++ {
			s.decide("fs", "readFail", 0.01)
			s.decide("fs", "writeFail", 0.01)
			s.decide("net", "bitFlip", 0.05)
		}
		for i := 0; i < 4; i++ {
			s.PlanWorker(i)
		}
		return s.Events()
	}
	a, b := drive(New(42, Mixed())), drive(New(42, Mixed()))
	if len(a) == 0 {
		t.Fatal("seed 42 injected no faults; oracle is dead")
	}
	if len(a) != len(b) {
		t.Fatalf("replay diverged: %d vs %d events", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("replay diverged at event %d: %v vs %v", i, a[i], b[i])
		}
	}
	// A different seed must yield a different schedule (overwhelmingly).
	c := drive(New(43, Mixed()))
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("seeds 42 and 43 produced identical schedules")
	}
}

// TestScheduleBudget pins the fault cap: with certainty-probability
// faults, exactly MaxFaults inject and every later decision is "no".
func TestScheduleBudget(t *testing.T) {
	s := New(7, Profile{Name: "budget", ReadFail: 1.0, MaxFaults: 3})
	fired := 0
	for i := 0; i < 100; i++ {
		if s.decide("fs", "readFail", 1.0) {
			fired++
		}
	}
	if fired != 3 {
		t.Fatalf("%d faults fired, budget is 3", fired)
	}
	if got := s.InjectedFaults(); got != 3 {
		t.Fatalf("InjectedFaults() = %d, want 3", got)
	}
}

// TestScheduleTracesFaults checks every injected fault lands in the
// trace as a chaos-kind span.
func TestScheduleTracesFaults(t *testing.T) {
	tracer := obs.NewTracer()
	s := New(7, Profile{Name: "t", WriteFail: 1.0, MaxFaults: 2})
	s.SetTracer(tracer)
	for i := 0; i < 10; i++ {
		s.decide("fs", "writeFail", 1.0)
	}
	n := 0
	for _, sp := range tracer.Spans() {
		if sp.Kind == obs.KindChaos {
			n++
		}
	}
	if n != 2 {
		t.Fatalf("%d chaos spans recorded, want 2", n)
	}
}

// TestWrapFSInjectsTypedFaults drives reads and writes through a
// hostile profile: injected failures must wrap iokit.ErrInjected (the
// engine's transient class), and with a zero profile the wrapper must
// be transparent.
func TestWrapFSInjectsTypedFaults(t *testing.T) {
	s := New(3, Profile{Name: "fs", WriteFail: 1.0, MaxFaults: 1})
	fs := s.WrapFS(iokit.NewMemFS())
	w, err := fs.Create("f")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write([]byte("boom")); !errors.Is(err, iokit.ErrInjected) {
		t.Fatalf("injected write fault is not ErrInjected: %v", err)
	}
	// Budget spent: the same writer now succeeds.
	if _, err := w.Write([]byte("data")); err != nil {
		t.Fatalf("post-budget write failed: %v", err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	// Transparent pass-through under a zero profile.
	quiet := New(3, Profile{Name: "quiet"}).WrapFS(iokit.NewMemFS())
	w, err = quiet.Create("g")
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte(strings.Repeat("pass through ", 50))
	if _, err := w.Write(payload); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := quiet.Open("g")
	if err != nil {
		t.Fatal(err)
	}
	got, err := io.ReadAll(r)
	if err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("zero-profile round trip broken: err=%v, %d bytes", err, len(got))
	}
	r.Close()
}

// TestWrapFSTornWrite checks a torn write persists a strict prefix and
// reports an injected error — the shape checksummed readers must catch.
func TestWrapFSTornWrite(t *testing.T) {
	s := New(11, Profile{Name: "torn", TornWrite: 1.0, MaxFaults: 1})
	mem := iokit.NewMemFS()
	fs := s.WrapFS(mem)
	w, err := fs.Create("f")
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte("x"), 1000)
	if _, err := w.Write(payload); !errors.Is(err, iokit.ErrInjected) {
		t.Fatalf("torn write error: %v", err)
	}
	w.Close()
	size, err := mem.Size("f")
	if err != nil {
		t.Fatal(err)
	}
	if size <= 0 || size >= int64(len(payload)) {
		t.Fatalf("torn write persisted %d bytes of %d; want a strict prefix", size, len(payload))
	}
}

// TestProfileByName resolves every preset and rejects junk.
func TestProfileByName(t *testing.T) {
	for _, name := range []string{"mixed", "disk", "net", "crash"} {
		p, err := ProfileByName(name)
		if err != nil || p.Name != name {
			t.Fatalf("ProfileByName(%q) = %+v, %v", name, p, err)
		}
	}
	if _, err := ProfileByName("nope"); err == nil {
		t.Fatal("unknown profile accepted")
	}
}
