package chaos

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"os"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/mr"
	"repro/internal/sched"
)

// -chaos-seed replays a single failing seed from a soak report instead
// of the full matrix: `go test ./internal/chaos/ -run Soak -chaos-seed 7`.
var chaosSeed = flag.Uint64("chaos-seed", 0, "replay one chaos soak seed instead of the full matrix")

// failureArtifact writes a machine-readable reproduction recipe (the
// detail string embeds the full fault schedule) into the test's working
// directory, which CI uploads on failure.
func failureArtifact(t *testing.T, engine string, seed uint64, detail string) {
	t.Helper()
	art := map[string]any{
		"engine": engine,
		"seed":   seed,
		"detail": detail,
		"replay": fmt.Sprintf("go test ./internal/chaos/ -run Soak -chaos-seed %d", seed),
	}
	b, err := json.MarshalIndent(art, "", "  ")
	if err != nil {
		return
	}
	name := fmt.Sprintf("chaos-failure-%s-%d.json", engine, seed)
	if werr := os.WriteFile(name, b, 0o644); werr == nil {
		t.Logf("failure artifact written to %s", name)
	}
}

// soakSeeds picks the seed matrix: the replay flag narrows to one seed.
func soakSeeds(base uint64, n int) []uint64 {
	if *chaosSeed != 0 {
		return []uint64{*chaosSeed}
	}
	seeds := make([]uint64, n)
	for i := range seeds {
		seeds[i] = base + uint64(i)
	}
	return seeds
}

// TestSoakInProcess replays 12 seeded mixed-profile schedules against
// the in-process engine. Each must finish with byte-identical output,
// zero leaked handles, zero orphan files, and bounded attempts; a
// failure names the seed and full fault schedule for replay.
func TestSoakInProcess(t *testing.T) {
	for _, seed := range soakSeeds(1, 12) {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			rep, err := SoakInProcess(seed, Mixed(), nil)
			if err != nil {
				failureArtifact(t, "inprocess", seed, err.Error())
				t.Fatalf("seed %d: %v\nreplay: go test ./internal/chaos/ -run SoakInProcess -chaos-seed %d", seed, err, seed)
			}
			t.Logf("seed %d: %d faults, %d attempts (%s)", seed, rep.Faults, rep.Attempts, rep.Schedule)
		})
	}
}

// TestSoakCluster replays 8 seeded mixed-profile schedules against the
// coordinator/worker runtime (in-process workers, real sockets), with
// worker crashes and stragglers in play.
func TestSoakCluster(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-worker soak; skipped in -short mode")
	}
	for _, seed := range soakSeeds(101, 8) {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rep, err := SoakCluster(seed, Mixed(), nil)
			if err != nil {
				failureArtifact(t, "cluster", seed, err.Error())
				t.Fatalf("seed %d: %v\nreplay: go test ./internal/chaos/ -run SoakCluster -chaos-seed %d", seed, err, seed)
			}
			t.Logf("seed %d: %d faults, %d attempts (%s)", seed, rep.Faults, rep.Attempts, rep.Schedule)
		})
	}
}

// TestSoakSomeFaultsFire guards the whole exercise against a silently
// dead oracle: across the in-process seed matrix, at least one schedule
// must actually inject faults.
func TestSoakSomeFaultsFire(t *testing.T) {
	total := 0
	for _, seed := range soakSeeds(1, 12) {
		rep, err := SoakInProcess(seed, Mixed(), nil)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		total += rep.Faults
	}
	if total == 0 {
		t.Fatal("no faults injected across the whole seed matrix; the chaos plane is disconnected")
	}
}

// TestClusterCorruptionRecovery is the targeted end-to-end acceptance
// check: one worker's segment server deliberately flips a bit in every
// large payload write. Fetches from it must fail checksum verification
// (never poison a reduce), the repeated failures must blacklist the
// worker (fetch-failure path → worker dead → DepLostError
// re-execution), and the job must still finish with byte-identical
// output.
func TestClusterCorruptionRecovery(t *testing.T) {
	spec, err := json.Marshal(defaultSoakSpec())
	if err != nil {
		t.Fatal(err)
	}
	ref := cluster.JobRef{Name: SoakJobName, Spec: spec}

	cleanJob, cleanSplits, err := buildSoakJob(spec)
	if err != nil {
		t.Fatal(err)
	}
	clean, err := mr.Run(cleanJob, cleanSplits)
	if err != nil {
		t.Fatal(err)
	}

	coord, err := cluster.New(cluster.Config{
		Job: ref, MinWorkers: 3, MaxTaskAttempts: 8,
		HeartbeatEvery: 25 * time.Millisecond, HeartbeatMiss: 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	workerErr := make(chan error, 3)
	for i := 0; i < 3; i++ {
		opts := cluster.WorkerOptions{Coordinator: coord.Addr(), Slots: 2}
		if i == 0 {
			// Worker 0 serves corrupted segment payloads, always.
			opts.WrapListener = flipBitsListener
		}
		go func() { workerErr <- cluster.RunWorker(ctx, opts) }()
	}

	res, err := coord.Run(ctx)
	for i := 0; i < 3; i++ {
		<-workerErr
	}
	if err != nil {
		t.Fatalf("job did not survive a corrupting worker: %v", err)
	}

	co, ro := clean.SortedOutput(), res.SortedOutput()
	if len(co) != len(ro) {
		t.Fatalf("output length differs: clean %d, corrupted-worker %d", len(co), len(ro))
	}
	for i := range co {
		if !bytes.Equal(co[i].Key, ro[i].Key) || !bytes.Equal(co[i].Value, ro[i].Value) {
			t.Fatalf("record %d differs: clean %s, corrupted-worker %s",
				i, mr.FormatRecord(co[i]), mr.FormatRecord(ro[i]))
		}
	}
	// The integrity counter proves detection happened via checksums, and
	// the timeline must show the re-execution path ran.
	if got := res.Stats.Extra[mr.CounterFetchIntegrity]; got == 0 {
		t.Error("no fetch integrity faults counted; corruption was not detected by checksums")
	}
	sawRecovery := false
	for _, a := range res.Timeline {
		if a.Outcome == sched.OutcomeDepLost || a.Outcome == sched.OutcomeRetrying {
			sawRecovery = true
			break
		}
	}
	if !sawRecovery {
		t.Error("timeline shows no retry or dep-lost attempt; recovery path did not run")
	}
}

// flipBitsListener corrupts one bit of every large payload write — a
// worker whose disk or NIC silently lies, persistently.
func flipBitsListener(ln net.Listener) net.Listener {
	return &flipListener{Listener: ln}
}

type flipListener struct {
	net.Listener
	writes atomic.Int64
}

func (l *flipListener) Accept() (net.Conn, error) {
	conn, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	return &flipConn{Conn: conn, l: l}, nil
}

type flipConn struct {
	net.Conn
	l *flipListener
}

func (c *flipConn) Write(p []byte) (int, error) {
	if len(p) >= 1024 {
		c.l.writes.Add(1)
		tampered := append([]byte(nil), p...)
		tampered[len(tampered)/3] ^= 0x01
		return c.Conn.Write(tampered)
	}
	return c.Conn.Write(p)
}

// TestSoakSeedStability pins the printed schedule of one seed so
// accidental changes to the oracle (which would invalidate recorded
// failing seeds) are caught in review.
func TestSoakSeedStability(t *testing.T) {
	s := New(42, Mixed())
	for i := 0; i < 200; i++ {
		s.decide("fs", "readFail", s.Profile().ReadFail)
		s.decide("net", "bitFlip", s.Profile().BitFlip)
	}
	desc := s.Describe()
	if !strings.HasPrefix(desc, "chaos seed=42 profile=mixed") {
		t.Fatalf("Describe() = %q", desc)
	}
	again := New(42, Mixed())
	for i := 0; i < 200; i++ {
		again.decide("fs", "readFail", again.Profile().ReadFail)
		again.decide("net", "bitFlip", again.Profile().BitFlip)
	}
	if got := again.Describe(); got != desc {
		t.Fatalf("schedule not stable:\n first %s\nsecond %s", desc, got)
	}
}
