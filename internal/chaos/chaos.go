// Package chaos is the deterministic fault-injection plane: one seeded
// Schedule decides every injected fault across three layers — the task
// filesystem (failed/short/torn/delayed reads and writes, via WrapFS),
// the shuffle data plane (dropped/stalled/truncated/bit-flipped segment
// serving, via WrapListener), and the process level (worker crashes and
// stragglers, via PlanWorker). Fault placement is a pure function of
// (seed, layer, fault kind, per-kind operation sequence number), so
// replaying the same seed against the same job reproduces the same
// fault pattern relative to each layer's operation counts — no global
// RNG, no time dependence — and a failing soak seed is a reproducible
// bug report. Every injected fault is recorded as an event and,
// when a tracer is attached, as a zero-length obs span of kind
// "chaos", so a failing run's schedule is reconstructable from its
// trace alone.
package chaos

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/obs"
)

// Profile sets per-operation fault probabilities and shapes for one
// chaos schedule. Zero fields inject nothing, so a zero Profile is a
// no-op and presets enable only their layer.
type Profile struct {
	// Name identifies the profile in logs and flags.
	Name string

	// Filesystem layer: probability per byte-level operation.
	ReadFail   float64 // read op returns an injected error
	WriteFail  float64 // write op returns an injected error
	ShortRead  float64 // read op returns fewer bytes than asked
	TornWrite  float64 // write op persists a prefix, then fails
	ReadDelay  float64 // read op sleeps Delay first
	WriteDelay float64 // write op sleeps Delay first

	// Shuffle data plane: ConnDrop is per accepted connection; the rest
	// are per payload write (>= corruptThreshold bytes, so the wire
	// protocol's small header frames are never hit — corruption lands on
	// segment payload, which exactly the checksum layer must catch).
	ConnDrop float64 // accepted connection is closed immediately
	Stall    float64 // payload write sleeps StallFor first
	Truncate float64 // payload write sends a prefix, then closes the conn
	BitFlip  float64 // payload write flips one bit and succeeds

	// Process layer: probability per worker.
	CrashWorker float64 // worker's context is cancelled mid-job
	Straggle    float64 // worker's filesystem gets a per-op delay

	// Shapes.
	Delay    time.Duration // filesystem delay (default 1ms)
	StallFor time.Duration // data-plane stall (default 5ms)
	// MaxFaults caps injected faults per layer (default 6), so a
	// chaotic run stays within the job's retry budget; a layer's
	// decisions after its budget is spent are always "no fault". The
	// cap is per layer, not global: filesystem operations outnumber
	// data-plane writes by orders of magnitude, and a shared budget
	// would be gone before the first segment ever crossed a socket.
	MaxFaults int
}

const (
	defaultMaxFaults = 6
	defaultDelay     = time.Millisecond
	defaultStall     = 5 * time.Millisecond

	// corruptThreshold gates data-plane payload faults: only writes at
	// least this large are eligible, which skips the protocol's uvarint
	// header frames (<= 10 bytes) and error frames.
	corruptThreshold = 1024

	// maxEvents caps the per-schedule event log.
	maxEvents = 256
)

// Mixed exercises every layer at modest rates — the default soak diet.
func Mixed() Profile {
	return Profile{
		Name:     "mixed",
		ReadFail: 0.002, WriteFail: 0.002, ShortRead: 0.01, TornWrite: 0.001,
		ReadDelay: 0.002, WriteDelay: 0.002,
		ConnDrop: 0.10, Stall: 0.03, Truncate: 0.03, BitFlip: 0.03,
		CrashWorker: 0.25, Straggle: 0.25,
	}
}

// Disk injects only filesystem faults.
func Disk() Profile {
	return Profile{
		Name:     "disk",
		ReadFail: 0.004, WriteFail: 0.004, ShortRead: 0.02, TornWrite: 0.002,
		ReadDelay: 0.004, WriteDelay: 0.004,
	}
}

// Net injects only data-plane faults.
func Net() Profile {
	return Profile{
		Name:     "net",
		ConnDrop: 0.15, Stall: 0.05, Truncate: 0.06, BitFlip: 0.06,
	}
}

// Crash injects only process-level faults.
func Crash() Profile {
	return Profile{Name: "crash", CrashWorker: 0.5, Straggle: 0.5}
}

// ProfileByName resolves a preset by its Name, for flags.
func ProfileByName(name string) (Profile, error) {
	for _, p := range []Profile{Mixed(), Disk(), Net(), Crash()} {
		if p.Name == name {
			return p, nil
		}
	}
	return Profile{}, fmt.Errorf("chaos: unknown profile %q (have mixed, disk, net, crash)", name)
}

func (p Profile) normalized() Profile {
	if p.Delay <= 0 {
		p.Delay = defaultDelay
	}
	if p.StallFor <= 0 {
		p.StallFor = defaultStall
	}
	if p.MaxFaults <= 0 {
		p.MaxFaults = defaultMaxFaults
	}
	return p
}

// Event is one injected fault: which layer and fault kind, and the
// per-kind operation sequence number it fired at.
type Event struct {
	Layer string // "fs", "net", or "proc"
	Kind  string // e.g. "readFail", "bitFlip", "crash"
	Seq   uint64 // per-(layer,kind) operation counter at injection
}

func (e Event) String() string { return fmt.Sprintf("%s/%s@%d", e.Layer, e.Kind, e.Seq) }

// WorkerPlan is the process-layer fault assignment for one worker.
type WorkerPlan struct {
	// Crash: cancel the worker's context CrashAfter into the job. The
	// cluster must finish correctly without it.
	Crash      bool
	CrashAfter time.Duration
	// SlowEvery: when > 0, the worker is a straggler — every filesystem
	// operation sleeps the profile's Delay (apply via WrapFSDelayed).
	SlowEvery time.Duration
}

// Schedule is one seeded, deterministic fault plan. It is safe for
// concurrent use; wrap the layers you want faulted and run the job.
type Schedule struct {
	seed   uint64
	prof   Profile
	tracer *obs.Tracer

	mu          sync.Mutex
	seq         map[string]uint64
	layerFaults map[string]int
	counts      map[string]int
	events      []Event
}

// New builds a schedule for seed under prof.
func New(seed uint64, prof Profile) *Schedule {
	return &Schedule{
		seed:        seed,
		prof:        prof.normalized(),
		seq:         make(map[string]uint64),
		layerFaults: make(map[string]int),
		counts:      make(map[string]int),
	}
}

// SetTracer attaches a tracer; each injected fault is recorded as a
// zero-length span of kind obs.KindChaos named "layer/kind".
func (s *Schedule) SetTracer(t *obs.Tracer) { s.tracer = t }

// Seed reports the schedule's seed.
func (s *Schedule) Seed() uint64 { return s.seed }

// Profile reports the schedule's (normalized) profile.
func (s *Schedule) Profile() Profile { return s.prof }

// decide is the single fault oracle: the prob-weighted decision for the
// next operation of (layer, kind) is a pure function of the seed, the
// layer/kind name, and that pair's operation counter. A "yes" consumes
// one unit of the fault budget; once the budget is spent every answer
// is "no", so chaos cannot outlast the job's retry allowance.
func (s *Schedule) decide(layer, kind string, prob float64) bool {
	if prob <= 0 {
		return false
	}
	key := layer + "/" + kind
	s.mu.Lock()
	n := s.seq[key]
	s.seq[key] = n + 1
	if s.layerFaults[layer] >= s.prof.MaxFaults {
		s.mu.Unlock()
		return false
	}
	h := splitmix64(s.seed ^ splitmix64(hashString(key)^(n+1)*0x9E3779B97F4A7C15))
	if float64(h>>11)/(1<<53) >= prob {
		s.mu.Unlock()
		return false
	}
	s.layerFaults[layer]++
	s.counts[key]++
	if len(s.events) < maxEvents {
		s.events = append(s.events, Event{Layer: layer, Kind: kind, Seq: n})
	}
	tracer := s.tracer
	s.mu.Unlock()
	if tracer != nil {
		now := time.Now()
		tracer.Record(obs.KindChaos, key, now, now,
			obs.Str("layer", layer), obs.Str("kind", kind), obs.Int("seq", int64(n)))
	}
	return true
}

// PlanWorker assigns process-layer faults to worker i. Deterministic in
// (seed, i) and does not consume per-op sequence state, so calling it
// in any order yields the same plans.
func (s *Schedule) PlanWorker(i int) WorkerPlan {
	var plan WorkerPlan
	base := splitmix64(s.seed ^ splitmix64(hashString("proc")^uint64(i+1)*0x9E3779B97F4A7C15))
	if probOf(base) < s.prof.CrashWorker {
		plan.Crash = true
		// 25–100ms in, derived from the same hash: early enough to catch
		// in-flight work, late enough that the worker has registered.
		plan.CrashAfter = 25*time.Millisecond + time.Duration(base%4)*25*time.Millisecond
		s.note("proc", "crash", uint64(i))
	} else if probOf(splitmix64(base)) < s.prof.Straggle {
		plan.SlowEvery = s.prof.Delay
		s.note("proc", "straggle", uint64(i))
	}
	return plan
}

// note records a fault decided outside the per-op oracle (process-layer
// plans), keeping the event log and counts complete.
func (s *Schedule) note(layer, kind string, seq uint64) {
	key := layer + "/" + kind
	s.mu.Lock()
	s.layerFaults[layer]++
	s.counts[key]++
	if len(s.events) < maxEvents {
		s.events = append(s.events, Event{Layer: layer, Kind: kind, Seq: seq})
	}
	tracer := s.tracer
	s.mu.Unlock()
	if tracer != nil {
		now := time.Now()
		tracer.Record(obs.KindChaos, key, now, now,
			obs.Str("layer", layer), obs.Str("kind", kind), obs.Int("seq", int64(seq)))
	}
}

// InjectedFaults reports how many faults fired so far, over all layers.
func (s *Schedule) InjectedFaults() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	total := 0
	for _, n := range s.layerFaults {
		total += n
	}
	return total
}

// Counts returns a copy of the per-(layer/kind) fault counts.
func (s *Schedule) Counts() map[string]int {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]int, len(s.counts))
	for k, v := range s.counts {
		out[k] = v
	}
	return out
}

// Events returns a copy of the injected-fault log (capped at 256).
func (s *Schedule) Events() []Event {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Event(nil), s.events...)
}

// Describe renders the schedule for failure reports: the seed, the
// profile, and every fault injected so far — everything needed to file
// or replay a failing run.
func (s *Schedule) Describe() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	total := 0
	for _, n := range s.layerFaults {
		total += n
	}
	var b strings.Builder
	fmt.Fprintf(&b, "chaos seed=%d profile=%s faults=%d", s.seed, s.prof.Name, total)
	keys := make([]string, 0, len(s.counts))
	for k := range s.counts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(&b, " %s=%d", k, s.counts[k])
	}
	if len(s.events) > 0 {
		b.WriteString(" events=[")
		for i, e := range s.events {
			if i > 0 {
				b.WriteByte(' ')
			}
			b.WriteString(e.String())
		}
		b.WriteByte(']')
	}
	return b.String()
}

// probOf maps a hash to [0, 1).
func probOf(h uint64) float64 { return float64(h>>11) / (1 << 53) }

// splitmix64 is the SplitMix64 finalizer: a bijective avalanche mixer,
// the standard seed-expansion primitive.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	z := x
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// hashString is 64-bit FNV-1a.
func hashString(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}
