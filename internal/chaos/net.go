package chaos

import (
	"net"
	"time"
)

// WrapListener interposes the schedule on a shuffle data-plane
// listener: accepted connections may be dropped at birth (a transient
// partition — the fetcher redials and usually lands on a healthy
// decision), and served payload writes may stall, truncate
// mid-segment, or have one bit flipped. Only writes of at least
// corruptThreshold bytes are eligible for payload faults, so the wire
// protocol's small header frames always survive — corruption lands on
// segment bytes, which the CRC32C framing (and nothing else) must
// catch. The wrapper never fails Accept itself: a listener error would
// stop the segment server for good, which is a bigger hammer than any
// real network fault.
func (s *Schedule) WrapListener(ln net.Listener) net.Listener {
	return &chaosListener{Listener: ln, s: s}
}

type chaosListener struct {
	net.Listener
	s *Schedule
}

// Accept implements net.Listener.
func (l *chaosListener) Accept() (net.Conn, error) {
	conn, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	if l.s.decide("net", "connDrop", l.s.prof.ConnDrop) {
		// Close immediately: the peer sees a reset/EOF, classified as a
		// transient fetch failure. Still hand the dead conn to the server;
		// its handler fails the first frame read and moves on.
		conn.Close()
		return conn, nil
	}
	return &chaosConn{Conn: conn, s: l.s}, nil
}

type chaosConn struct {
	net.Conn
	s *Schedule
}

// Write implements net.Conn with payload-write fault injection.
func (c *chaosConn) Write(p []byte) (int, error) {
	s := c.s
	if len(p) < corruptThreshold {
		return c.Conn.Write(p)
	}
	if s.decide("net", "stall", s.prof.Stall) {
		time.Sleep(s.prof.StallFor)
	}
	if s.decide("net", "truncate", s.prof.Truncate) {
		n, err := c.Conn.Write(p[:len(p)/2])
		c.Conn.Close()
		if err == nil {
			err = net.ErrClosed
		}
		return n, err
	}
	if s.decide("net", "bitFlip", s.prof.BitFlip) {
		tampered := append([]byte(nil), p...)
		tampered[len(tampered)/2] ^= 0x10
		return c.Conn.Write(tampered)
	}
	return c.Conn.Write(p)
}
