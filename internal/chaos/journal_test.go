package chaos

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/datagen"
	"repro/internal/experiments"
	"repro/internal/iokit"
	"repro/internal/serve"
)

// journalWcRef builds a small exp/wordcount JobRef for the service
// journal crash matrix.
func journalWcRef(t *testing.T, seed uint64) cluster.JobRef {
	t.Helper()
	ref, err := experiments.ClusterRef(experiments.ClusterJobWordCount, experiments.Config{
		Scale: 0.02, Seed: seed, Splits: 4, Reducers: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	return ref
}

func journalTerminal(state string) bool {
	return state == serve.StateSucceeded || state == serve.StateFailed || state == serve.StateCanceled
}

// journalOracle replays the same semantics the server promises over a
// truncated journal prefix: submits queue, the first terminal state per
// job wins, non-terminal transitions leave the job queued, and a torn
// (unparsable) tail is dropped. Truncating a valid journal can only
// tear the final line, so parsing stops at the first failure.
func journalOracle(data []byte) map[int]string {
	states := make(map[int]string)
	for _, ln := range bytes.Split(data, []byte("\n")) {
		if len(ln) == 0 {
			continue
		}
		var e struct {
			Op    string           `json:"op"`
			Job   *serve.JobRecord `json:"job"`
			ID    int              `json:"id"`
			State string           `json:"state"`
		}
		if err := json.Unmarshal(ln, &e); err != nil {
			return states // torn tail
		}
		switch e.Op {
		case "submit":
			if e.Job != nil {
				states[e.Job.ID] = serve.StateQueued
			}
		case "state":
			cur, ok := states[e.ID]
			if !ok || journalTerminal(cur) {
				continue
			}
			if journalTerminal(e.State) {
				states[e.ID] = e.State
			} else {
				states[e.ID] = serve.StateQueued
			}
		}
	}
	return states
}

// TestJournalCrashMatrix is the fs-fault seed test for the service
// journal: a donor journal is recorded by driving a real server
// (successes, a cancellation, a job caught queued at shutdown), then
// each seed kills the server "mid-append" by truncating the donor at a
// random byte offset. Every truncation — mid-line or between lines —
// must restart cleanly: terminal outcomes preserved, in-flight jobs
// re-queued, new submissions accepted with a fresh ID, and a second
// reopen after Close still coherent.
func TestJournalCrashMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("journal crash matrix spawns real jobs; skipped in -short mode")
	}
	dir := t.TempDir()
	donorPath := filepath.Join(dir, "donor.jsonl")

	// Record the donor journal with a real server run.
	srv, err := serve.New(serve.Config{Fleet: slowServeHeartbeats, JournalPath: donorPath})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	for i := uint64(0); i < 2; i++ {
		ref := journalWcRef(t, 61+i)
		if _, err := srv.Submit(serve.SubmitRequest{
			Name: ref.Name, Spec: json.RawMessage(ref.Spec), Tenant: "t",
		}); err != nil {
			t.Fatal(err)
		}
	}
	go cluster.RunWorker(ctx, cluster.WorkerOptions{
		Coordinator: srv.FleetAddr(), Slots: 2, FS: iokit.NewMemFS(),
	})
	if err := srv.Fleet().WaitWorkers(ctx, 1); err != nil {
		t.Fatal(err)
	}
	for id := 0; id < 2; id++ {
		if rec, err := srv.Wait(ctx, id); err != nil || rec.State != serve.StateSucceeded {
			t.Fatalf("donor job %d: %v state %s", id, err, rec.State)
		}
	}
	ref := journalWcRef(t, 63)
	rec, err := srv.Submit(serve.SubmitRequest{
		Name: ref.Name, Spec: json.RawMessage(ref.Spec), Tenant: "t",
	})
	if err != nil {
		t.Fatal(err)
	}
	if rec, err = srv.Cancel(rec.ID); err != nil || rec.State != serve.StateCanceled {
		t.Fatalf("donor cancel: %v state %s", err, rec.State)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	donor, err := os.ReadFile(donorPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(donor) < 64 {
		t.Fatalf("donor journal suspiciously small (%d bytes)", len(donor))
	}

	for _, seed := range soakSeeds(201, 12) {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := datagen.NewRNG(seed)
			cut := 1 + rng.Intn(len(donor)-1)
			path := filepath.Join(dir, fmt.Sprintf("seed%d.jsonl", seed))
			if err := os.WriteFile(path, donor[:cut], 0o644); err != nil {
				t.Fatal(err)
			}
			want := journalOracle(donor[:cut])

			srv, err := serve.New(serve.Config{Fleet: slowServeHeartbeats, JournalPath: path})
			if err != nil {
				t.Fatalf("cut@%d: New: %v\nreplay: go test ./internal/chaos/ -run JournalCrashMatrix -chaos-seed %d", cut, err, seed)
			}
			maxID := -1
			for id, st := range want {
				if id > maxID {
					maxID = id
				}
				got, err := srv.Get(id)
				if err != nil {
					t.Fatalf("cut@%d: job %d lost on replay: %v", cut, id, err)
				}
				switch {
				case journalTerminal(st):
					if got.State != st {
						t.Fatalf("cut@%d: job %d state %s, want terminal %s preserved", cut, id, got.State, st)
					}
				default:
					if got.State != serve.StateQueued && got.State != serve.StateRunning {
						t.Fatalf("cut@%d: job %d state %s, want re-queued", cut, id, got.State)
					}
				}
			}
			if got := len(srv.List("t")); got != len(want) {
				t.Fatalf("cut@%d: replay resurrected %d jobs, want %d", cut, got, len(want))
			}

			// The server keeps accepting work after crash recovery, and
			// IDs continue past everything the journal mentioned.
			ref := journalWcRef(t, 90+seed)
			rec, err := srv.Submit(serve.SubmitRequest{
				Name: ref.Name, Spec: json.RawMessage(ref.Spec), Tenant: "t",
			})
			if err != nil {
				t.Fatalf("cut@%d: submit after recovery: %v", cut, err)
			}
			if rec.ID != maxID+1 {
				t.Fatalf("cut@%d: post-recovery ID %d, want %d", cut, rec.ID, maxID+1)
			}
			if err := srv.Close(); err != nil {
				t.Fatalf("cut@%d: close: %v", cut, err)
			}

			// The repaired-and-extended journal must replay again.
			srv2, err := serve.New(serve.Config{Fleet: slowServeHeartbeats, JournalPath: path})
			if err != nil {
				t.Fatalf("cut@%d: reopen: %v", cut, err)
			}
			for id, st := range want {
				if !journalTerminal(st) {
					continue
				}
				if got, err := srv2.Get(id); err != nil || got.State != st {
					t.Fatalf("cut@%d: reopened job %d: %v state %s, want %s", cut, id, err, got.State, st)
				}
			}
			if err := srv2.Close(); err != nil {
				t.Fatalf("cut@%d: second close: %v", cut, err)
			}
		})
	}
}

// slowServeHeartbeats mirrors the serve test fleet tuning: heartbeat
// misses never declare the single in-process worker dead mid-test.
var slowServeHeartbeats = cluster.FleetConfig{HeartbeatEvery: 50 * time.Millisecond, HeartbeatMiss: 40}
