package chaos

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/cluster"
	"repro/internal/iokit"
	"repro/internal/mr"
	"repro/internal/obs"
	"repro/internal/sched"
)

// The chaos soak: run the same deterministic word-count job twice —
// once clean, once under a seeded fault schedule — and hold the chaotic
// run to three invariants:
//
//  1. output byte-identical to the clean run (corruption may slow the
//     job, never change its answer);
//  2. zero leaked file handles and zero orphan files (failed attempts
//     clean up completely);
//  3. bounded attempts (retries stay within the task budget; chaos
//     cannot spin the scheduler).
//
// Any violation surfaces as an error that embeds the seed and the full
// injected-fault schedule, so a failing soak is a reproducible bug
// report: re-run with the same seed and the same faults fire.

// SoakJobName is the registry name of the soak job, shared by the
// coordinator and (in-process) workers of cluster soaks.
const SoakJobName = "chaos-soak"

// soakSpec parameterizes the soak job. Sized so each map task spills
// several runs under the small sort buffer and per-(map, partition)
// segments clear the data plane's corruption threshold.
type soakSpec struct {
	Splits   int
	Lines    int
	Reducers int
}

func defaultSoakSpec() soakSpec { return soakSpec{Splits: 6, Lines: 300, Reducers: 4} }

func init() {
	cluster.RegisterJob(SoakJobName, buildSoakJob)
}

// buildSoakJob is the registered soak job builder: deterministic LCG
// word data (identical in every process), word-count map/reduce, a
// small sort buffer and merge factor so spill, multi-pass merge, and
// shuffle paths all run, and a retry budget wide enough to outlast the
// fault budget.
func buildSoakJob(spec []byte) (*mr.Job, []mr.Split, error) {
	var s soakSpec
	if err := json.Unmarshal(spec, &s); err != nil {
		return nil, nil, err
	}
	words := []string{
		"anti", "combine", "map", "reduce", "shuffle", "spill", "merge",
		"segment", "lease", "worker", "fault", "chaos", "seed", "frame",
		"verify", "retry",
	}
	seed := uint64(0xc4a05)
	next := func() uint64 {
		seed = seed*6364136223846793005 + 1442695040888963407
		return seed >> 33
	}
	splits := make([]mr.Split, s.Splits)
	for i := range splits {
		recs := make([]mr.Record, s.Lines)
		for l := range recs {
			var b strings.Builder
			for w := 0; w < 10; w++ {
				if w > 0 {
					b.WriteByte(' ')
				}
				b.WriteString(words[next()%uint64(len(words))])
			}
			recs[l] = mr.Record{Value: []byte(b.String())}
		}
		splits[i] = &mr.MemSplit{Recs: recs}
	}
	job := &mr.Job{
		Name: SoakJobName,
		NewMapper: mr.NewMapFunc(func(key, value []byte, out mr.Emitter) error {
			for _, w := range strings.Fields(string(value)) {
				if err := out.Emit([]byte(w), []byte("1")); err != nil {
					return err
				}
			}
			return nil
		}),
		NewReducer: mr.NewReduceFunc(func(key []byte, values mr.ValueIter, out mr.Emitter) error {
			total := 0
			for {
				v, ok := values.Next()
				if !ok {
					break
				}
				n, err := strconv.Atoi(string(v))
				if err != nil {
					return err
				}
				total += n
			}
			return out.Emit(key, []byte(strconv.Itoa(total)))
		}),
		NumReduceTasks:  s.Reducers,
		Deterministic:   true,
		SortBufferBytes: 16 << 10,
		MergeFactor:     3,
		MaxTaskAttempts: 8,
		RetryBackoff:    time.Millisecond,
	}
	return job, splits, nil
}

// SoakReport summarizes one surviving soak run.
type SoakReport struct {
	Seed     uint64
	Profile  string
	Faults   int
	Counts   map[string]int
	Attempts int
	Schedule string // full Describe() of the schedule
}

// soakErr wraps an invariant violation with the reproduction recipe.
func soakErr(s *Schedule, format string, args ...any) error {
	return fmt.Errorf("%s [%s]", fmt.Sprintf(format, args...), s.Describe())
}

// SoakInProcess runs one seeded soak on the in-process engine: chaos on
// the task filesystem and the TCP shuffle data plane, invariants
// checked against a clean run of the identical job.
func SoakInProcess(seed uint64, prof Profile, tracer *obs.Tracer) (*SoakReport, error) {
	spec, err := json.Marshal(defaultSoakSpec())
	if err != nil {
		return nil, err
	}

	cleanJob, cleanSplits, err := buildSoakJob(spec)
	if err != nil {
		return nil, err
	}
	cleanFS := iokit.NewMemFS()
	cleanJob.FS = cleanFS
	// Same transport as the chaotic run, so the two leave the same
	// on-disk layout (fetch files included) for the orphan comparison.
	cleanJob.TCPShuffle = true
	clean, err := mr.Run(cleanJob, cleanSplits)
	if err != nil {
		return nil, fmt.Errorf("chaos: clean reference run failed: %w", err)
	}
	cleanFiles, err := cleanFS.List()
	if err != nil {
		return nil, err
	}

	s := New(seed, prof)
	s.SetTracer(tracer)
	job, splits, err := buildSoakJob(spec)
	if err != nil {
		return nil, err
	}
	mem := iokit.NewMemFS()
	tracked := &iokit.TrackFS{Inner: s.WrapFS(mem)}
	job.FS = tracked
	job.TCPShuffle = true
	job.WrapShuffleListener = s.WrapListener
	// Compression is negotiated only on the chaotic run: output must
	// stay byte-identical to the uncompressed clean reference, which is
	// exactly the transparency the wire codec promises — and it puts
	// compressed frames in the fault path.
	job.WireCompression = true
	job.Tracer = tracer

	res, err := mr.Run(job, splits)
	if err != nil {
		return nil, soakErr(s, "chaos: job failed under injected faults: %v", err)
	}
	if err := compareOutput(clean, res); err != nil {
		return nil, soakErr(s, "%v", err)
	}
	if n := tracked.OpenHandles(); n != 0 {
		return nil, soakErr(s, "chaos: %d file handles leaked", n)
	}
	files, err := mem.List()
	if err != nil {
		return nil, err
	}
	if err := compareFiles(cleanFiles, files); err != nil {
		return nil, soakErr(s, "%v", err)
	}
	if err := checkAttempts(res.Timeline, job.MaxTaskAttempts, s); err != nil {
		return nil, err
	}
	return &SoakReport{
		Seed: seed, Profile: s.prof.Name, Faults: s.InjectedFaults(),
		Counts: s.Counts(), Attempts: len(res.Timeline), Schedule: s.Describe(),
	}, nil
}

// SoakCluster runs one seeded soak on the multi-process runtime shape:
// a coordinator and three in-process workers over real sockets, with
// chaos on every worker's filesystem and data-plane listener, plus at
// most one scheduled worker crash and any number of stragglers.
func SoakCluster(seed uint64, prof Profile, tracer *obs.Tracer) (*SoakReport, error) {
	const nWorkers = 3
	spec, err := json.Marshal(defaultSoakSpec())
	if err != nil {
		return nil, err
	}
	ref := cluster.JobRef{Name: SoakJobName, Spec: spec}

	cleanJob, cleanSplits, err := buildSoakJob(spec)
	if err != nil {
		return nil, err
	}
	clean, err := mr.Run(cleanJob, cleanSplits)
	if err != nil {
		return nil, fmt.Errorf("chaos: clean reference run failed: %w", err)
	}

	s := New(seed, prof)
	s.SetTracer(tracer)
	// Fast heartbeats find scheduled crashes quickly; the wide miss
	// budget keeps slow-but-alive workers (race detector, loaded CI)
	// from being declared dead spuriously.
	coord, err := cluster.New(cluster.Config{
		Job: ref, MinWorkers: nWorkers, MaxTaskAttempts: 8,
		HeartbeatEvery: 25 * time.Millisecond, HeartbeatMiss: 20,
		Tracer: tracer,
	})
	if err != nil {
		return nil, err
	}
	defer coord.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()

	// Process-layer plans. At most one worker crashes: the soak proves
	// recovery, not survival of a fully dead cluster.
	plans := make([]WorkerPlan, nWorkers)
	crashed := -1
	for i := range plans {
		plans[i] = s.PlanWorker(i)
		if plans[i].Crash {
			if crashed >= 0 {
				plans[i].Crash = false
			} else {
				crashed = i
			}
		}
	}

	trackers := make([]*iokit.TrackFS, nWorkers)
	workerErr := make(chan error, nWorkers)
	for i := 0; i < nWorkers; i++ {
		fs := s.WrapFS(iokit.NewMemFS())
		if plans[i].SlowEvery > 0 {
			fs = s.WrapFSDelayed(fs, plans[i].SlowEvery)
		}
		trackers[i] = &iokit.TrackFS{Inner: fs}
		wctx := ctx
		if plans[i].Crash {
			var wcancel context.CancelFunc
			wctx, wcancel = context.WithCancel(ctx)
			defer wcancel()
			time.AfterFunc(plans[i].CrashAfter, wcancel)
		}
		opts := cluster.WorkerOptions{
			Coordinator:     coord.Addr(),
			Slots:           2,
			FS:              trackers[i],
			WrapListener:    s.WrapListener,
			WireCompression: true,
		}
		go func() { workerErr <- cluster.RunWorker(wctx, opts) }()
	}

	res, err := coord.Run(ctx)
	for i := 0; i < nWorkers; i++ {
		<-workerErr // workers exit on shutdown, crash, or coordinator close
	}
	if err != nil {
		return nil, soakErr(s, "chaos: cluster job failed under injected faults: %v", err)
	}
	if err := compareOutput(clean, res); err != nil {
		return nil, soakErr(s, "%v", err)
	}
	for i, tr := range trackers {
		if n := tr.OpenHandles(); n != 0 {
			return nil, soakErr(s, "chaos: worker %d leaked %d file handles", i, n)
		}
		files, err := tr.List()
		if err != nil {
			return nil, err
		}
		for _, f := range files {
			if strings.Contains(f, ".pass") {
				return nil, soakErr(s, "chaos: worker %d orphaned merge intermediate %s", i, f)
			}
		}
	}
	if err := checkAttempts(res.Timeline, 8, s); err != nil {
		return nil, err
	}
	return &SoakReport{
		Seed: seed, Profile: s.prof.Name, Faults: s.InjectedFaults(),
		Counts: s.Counts(), Attempts: len(res.Timeline), Schedule: s.Describe(),
	}, nil
}

// compareOutput checks byte-identical sorted output between the clean
// reference and the chaotic run.
func compareOutput(clean, chaotic *mr.Result) error {
	co, ro := clean.SortedOutput(), chaotic.SortedOutput()
	if len(co) != len(ro) {
		return fmt.Errorf("chaos: output length differs: clean %d, chaotic %d", len(co), len(ro))
	}
	for i := range co {
		if !bytes.Equal(co[i].Key, ro[i].Key) || !bytes.Equal(co[i].Value, ro[i].Value) {
			return fmt.Errorf("chaos: output record %d differs: clean %s, chaotic %s",
				i, mr.FormatRecord(co[i]), mr.FormatRecord(ro[i]))
		}
	}
	return nil
}

// attemptMarker strips per-attempt name decorations (".a<n>"), mapping
// any attempt's files onto the attempt-0 layout.
var attemptMarker = regexp.MustCompile(`\.a\d+`)

// compareFiles demands the chaotic run's surviving files be exactly the
// clean run's, modulo attempt markers: every failed attempt must have
// removed everything it wrote, and nothing a successful attempt needs
// may be missing.
func compareFiles(clean, chaotic []string) error {
	norm := func(files []string) []string {
		out := make([]string, len(files))
		for i, f := range files {
			out[i] = attemptMarker.ReplaceAllString(f, "")
		}
		sort.Strings(out)
		return out
	}
	c, g := norm(clean), norm(chaotic)
	if len(c) != len(g) {
		return fmt.Errorf("chaos: %d files survive, clean run leaves %d (orphans or missing output)", len(g), len(c))
	}
	for i := range c {
		if c[i] != g[i] {
			return fmt.Errorf("chaos: surviving file set diverges at %q (clean has %q)", g[i], c[i])
		}
	}
	return nil
}

// checkAttempts bounds scheduler work: per task, attempts that charge
// the budget (everything but dep-lost relaunches) must stay within
// maxAttempts.
func checkAttempts(timeline []sched.Attempt, maxAttempts int, s *Schedule) error {
	perTask := make(map[string]int)
	for _, a := range timeline {
		if a.Outcome == sched.OutcomeDepLost {
			continue
		}
		perTask[a.Task]++
	}
	for task, n := range perTask {
		if n > maxAttempts {
			return soakErr(s, "chaos: task %s ran %d budgeted attempts, cap is %d", task, n, maxAttempts)
		}
	}
	return nil
}
