package chaos

import (
	"fmt"
	"io"
	"time"

	"repro/internal/iokit"
)

// WrapFS interposes the schedule on a filesystem: reads and writes may
// be delayed, fail outright, return short, or tear (persist a prefix,
// then fail). Injected failures wrap iokit.ErrInjected, so the engine's
// transient-fault classification treats them exactly like the
// deterministic FlakyFS faults the unit tests use.
func (s *Schedule) WrapFS(fs iokit.FS) iokit.FS { return s.WrapFSDelayed(fs, 0) }

// WrapFSDelayed is WrapFS plus a fixed extra sleep on every operation —
// how a straggler worker (WorkerPlan.SlowEvery) is realized.
func (s *Schedule) WrapFSDelayed(fs iokit.FS, perOp time.Duration) iokit.FS {
	return &chaosFS{s: s, inner: fs, perOp: perOp}
}

type chaosFS struct {
	s     *Schedule
	inner iokit.FS
	perOp time.Duration
}

// Create implements iokit.FS.
func (f *chaosFS) Create(name string) (io.WriteCloser, error) {
	w, err := f.inner.Create(name)
	if err != nil {
		return nil, err
	}
	return &chaosWriter{fs: f, name: name, w: w}, nil
}

// Open implements iokit.FS.
func (f *chaosFS) Open(name string) (io.ReadCloser, error) {
	r, err := f.inner.Open(name)
	if err != nil {
		return nil, err
	}
	return &chaosReader{fs: f, name: name, r: r}, nil
}

// Remove implements iokit.FS.
func (f *chaosFS) Remove(name string) error { return f.inner.Remove(name) }

// Size implements iokit.FS.
func (f *chaosFS) Size(name string) (int64, error) { return f.inner.Size(name) }

// List implements iokit.FS.
func (f *chaosFS) List() ([]string, error) { return f.inner.List() }

type chaosWriter struct {
	fs   *chaosFS
	name string
	w    io.WriteCloser
}

func (w *chaosWriter) Write(p []byte) (int, error) {
	s := w.fs.s
	if w.fs.perOp > 0 {
		time.Sleep(w.fs.perOp)
	}
	if s.decide("fs", "writeDelay", s.prof.WriteDelay) {
		time.Sleep(s.prof.Delay)
	}
	if len(p) > 1 && s.decide("fs", "tornWrite", s.prof.TornWrite) {
		// Persist a prefix, then fail: the caller sees an error, but the
		// file now holds bytes no reader may trust without a checksum.
		n, _ := w.w.Write(p[:len(p)/2])
		return n, fmt.Errorf("chaos: torn write to %s: %w", w.name, iokit.ErrInjected)
	}
	if s.decide("fs", "writeFail", s.prof.WriteFail) {
		return 0, fmt.Errorf("chaos: write to %s: %w", w.name, iokit.ErrInjected)
	}
	return w.w.Write(p)
}

func (w *chaosWriter) Close() error { return w.w.Close() }

type chaosReader struct {
	fs   *chaosFS
	name string
	r    io.ReadCloser
}

func (r *chaosReader) Read(p []byte) (int, error) {
	s := r.fs.s
	if r.fs.perOp > 0 {
		time.Sleep(r.fs.perOp)
	}
	if s.decide("fs", "readDelay", s.prof.ReadDelay) {
		time.Sleep(s.prof.Delay)
	}
	if s.decide("fs", "readFail", s.prof.ReadFail) {
		return 0, fmt.Errorf("chaos: read of %s: %w", r.name, iokit.ErrInjected)
	}
	if len(p) > 1 && s.decide("fs", "shortRead", s.prof.ShortRead) {
		p = p[:(len(p)+1)/2] // legal for io.Reader; exercises refill paths
	}
	return r.r.Read(p)
}

func (r *chaosReader) Close() error { return r.r.Close() }
