// Package netsim provides a synthetic network evaluation for the
// shuffle phase: a max-min fair-share model of a cluster of nodes
// attached to one shared switch, the configuration of the paper's
// testbed ("all machines are directly connected to the same Gigabit
// network switch"). Given the shuffle's flows it computes transfer
// completion times under three capacity constraints — each source NIC's
// egress, each destination NIC's ingress, and the switch backplane —
// using progressive filling. The cost model uses it to turn measured
// shuffle bytes into estimated network time, which is how this
// reproduction regenerates the paper's runtime comparisons without
// physical machines.
package netsim

import (
	"errors"
	"math"
	"time"
)

// Flow is one mapper-to-reducer transfer.
type Flow struct {
	// Src and Dst are node indices.
	Src, Dst int
	// Bytes is the transfer size.
	Bytes int64
}

// Network describes the shared-switch fabric.
type Network struct {
	// Nodes is the machine count.
	Nodes int
	// NICBps is each node's link speed in bytes/second, applied
	// independently to egress and ingress (full duplex).
	NICBps float64
	// BackplaneBps caps the switch's aggregate forwarding rate in
	// bytes/second. Zero means non-blocking.
	BackplaneBps float64
}

// Gigabit builds the paper's fabric: n nodes on one non-blocking
// gigabit switch.
func Gigabit(n int) Network {
	return Network{Nodes: n, NICBps: 1e9 / 8}
}

// ErrBadFlow reports a flow referencing an unknown node.
var ErrBadFlow = errors.New("netsim: flow references unknown node")

// Makespan simulates all flows starting simultaneously and returns the
// time until the last one completes under max-min fair sharing.
func (n Network) Makespan(flows []Flow) (time.Duration, error) {
	remaining := make([]float64, len(flows))
	active := 0
	for i, f := range flows {
		if f.Src < 0 || f.Src >= n.Nodes || f.Dst < 0 || f.Dst >= n.Nodes {
			return 0, ErrBadFlow
		}
		if f.Bytes > 0 {
			remaining[i] = float64(f.Bytes)
			active++
		}
	}
	elapsed := 0.0
	for active > 0 {
		rates := n.fairRates(flows, remaining)
		// Advance to the earliest completion among active flows.
		step := math.Inf(1)
		for i := range flows {
			if remaining[i] > 0 && rates[i] > 0 {
				if t := remaining[i] / rates[i]; t < step {
					step = t
				}
			}
		}
		if math.IsInf(step, 1) {
			return 0, errors.New("netsim: no progress (zero capacity?)")
		}
		elapsed += step
		for i := range flows {
			if remaining[i] <= 0 {
				continue
			}
			remaining[i] -= rates[i] * step
			if remaining[i] < 1e-6 {
				remaining[i] = 0
				active--
			}
		}
	}
	return time.Duration(elapsed * float64(time.Second)), nil
}

// fairRates computes max-min fair rates for the active flows under the
// egress, ingress, and backplane constraints by progressive filling:
// repeatedly find the tightest constraint, freeze its flows at the fair
// share, and release the capacity they consume elsewhere.
func (n Network) fairRates(flows []Flow, remaining []float64) []float64 {
	type constraint struct {
		capacity float64
		members  []int
	}
	var cons []constraint
	egress := make([]constraint, n.Nodes)
	ingress := make([]constraint, n.Nodes)
	for i := range egress {
		egress[i].capacity = n.NICBps
		ingress[i].capacity = n.NICBps
	}
	backplane := constraint{capacity: n.BackplaneBps}
	for i, f := range flows {
		if remaining[i] <= 0 {
			continue
		}
		// Local traffic does not cross the network.
		if f.Src == f.Dst {
			continue
		}
		egress[f.Src].members = append(egress[f.Src].members, i)
		ingress[f.Dst].members = append(ingress[f.Dst].members, i)
		backplane.members = append(backplane.members, i)
	}
	for i := range egress {
		if len(egress[i].members) > 0 {
			cons = append(cons, egress[i])
		}
		if len(ingress[i].members) > 0 {
			cons = append(cons, ingress[i])
		}
	}
	if n.BackplaneBps > 0 && len(backplane.members) > 0 {
		cons = append(cons, backplane)
	}

	rates := make([]float64, len(flows))
	// Local flows transfer at (effectively) memory speed; model them as
	// one NIC's worth so they still take nonzero time.
	for i, f := range flows {
		if remaining[i] > 0 && f.Src == f.Dst {
			rates[i] = n.NICBps
		}
	}
	frozen := make([]bool, len(flows))
	for {
		// Tightest constraint: smallest capacity / unfrozen member count.
		best, bestShare := -1, math.Inf(1)
		for ci := range cons {
			unfrozen := 0
			used := 0.0
			for _, fi := range cons[ci].members {
				if frozen[fi] {
					used += rates[fi]
				} else {
					unfrozen++
				}
			}
			if unfrozen == 0 {
				continue
			}
			share := (cons[ci].capacity - used) / float64(unfrozen)
			if share < bestShare {
				bestShare = share
				best = ci
			}
		}
		if best < 0 {
			break
		}
		if bestShare < 0 {
			bestShare = 0
		}
		for _, fi := range cons[best].members {
			if !frozen[fi] {
				frozen[fi] = true
				rates[fi] = bestShare
			}
		}
	}
	return rates
}

// ShuffleFlows spreads per-reduce-partition shuffle volumes over a
// cluster: partition p's reducer runs on node p mod Nodes and pulls an
// equal share of its bytes from every node (map tasks are uniformly
// spread in a balanced job).
func (n Network) ShuffleFlows(perPartition []int64) []Flow {
	var flows []Flow
	for p, total := range perPartition {
		if total <= 0 {
			continue
		}
		dst := p % n.Nodes
		share := total / int64(n.Nodes)
		rem := total - share*int64(n.Nodes)
		for src := 0; src < n.Nodes; src++ {
			b := share
			if src == 0 {
				b += rem
			}
			if b > 0 {
				flows = append(flows, Flow{Src: src, Dst: dst, Bytes: b})
			}
		}
	}
	return flows
}
