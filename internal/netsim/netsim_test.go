package netsim

import (
	"math"
	"testing"
	"time"
)

func seconds(d time.Duration) float64 { return d.Seconds() }

func TestSingleFlowNICBound(t *testing.T) {
	n := Network{Nodes: 2, NICBps: 100}
	d, err := n.Makespan([]Flow{{Src: 0, Dst: 1, Bytes: 1000}})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(seconds(d)-10) > 0.01 {
		t.Errorf("makespan = %v, want 10s", d)
	}
}

func TestTwoFlowsShareEgress(t *testing.T) {
	// Both flows leave node 0: each gets half the NIC.
	n := Network{Nodes: 3, NICBps: 100}
	d, err := n.Makespan([]Flow{
		{Src: 0, Dst: 1, Bytes: 500},
		{Src: 0, Dst: 2, Bytes: 500},
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(seconds(d)-10) > 0.01 {
		t.Errorf("makespan = %v, want 10s (50 Bps each)", d)
	}
}

func TestShorterFlowReleasesCapacity(t *testing.T) {
	// Flow B finishes at t=2 (rate 50); flow A then speeds up to 100:
	// 500 bytes total = 100 at t=2, then 400 more at 100 Bps -> t=6.
	n := Network{Nodes: 3, NICBps: 100}
	d, err := n.Makespan([]Flow{
		{Src: 0, Dst: 1, Bytes: 500},
		{Src: 0, Dst: 2, Bytes: 100},
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(seconds(d)-6) > 0.01 {
		t.Errorf("makespan = %v, want 6s", d)
	}
}

func TestIngressContention(t *testing.T) {
	// Two sources into one destination NIC: shared 100 Bps.
	n := Network{Nodes: 3, NICBps: 100}
	d, err := n.Makespan([]Flow{
		{Src: 0, Dst: 2, Bytes: 500},
		{Src: 1, Dst: 2, Bytes: 500},
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(seconds(d)-10) > 0.01 {
		t.Errorf("makespan = %v, want 10s", d)
	}
}

func TestBackplaneLimit(t *testing.T) {
	// Four disjoint flows, each could do 100, but the backplane caps the
	// aggregate at 200 -> 50 each.
	n := Network{Nodes: 8, NICBps: 100, BackplaneBps: 200}
	flows := []Flow{
		{Src: 0, Dst: 1, Bytes: 500},
		{Src: 2, Dst: 3, Bytes: 500},
		{Src: 4, Dst: 5, Bytes: 500},
		{Src: 6, Dst: 7, Bytes: 500},
	}
	d, err := n.Makespan(flows)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(seconds(d)-10) > 0.01 {
		t.Errorf("makespan = %v, want 10s", d)
	}
}

func TestLocalFlowBypassesNetwork(t *testing.T) {
	n := Network{Nodes: 2, NICBps: 100}
	d, err := n.Makespan([]Flow{
		{Src: 0, Dst: 0, Bytes: 1000}, // local
		{Src: 0, Dst: 1, Bytes: 1000}, // remote, full NIC
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(seconds(d)-10) > 0.01 {
		t.Errorf("makespan = %v, want 10s (local flow must not contend)", d)
	}
}

func TestEmptyAndZeroFlows(t *testing.T) {
	n := Gigabit(4)
	d, err := n.Makespan(nil)
	if err != nil || d != 0 {
		t.Errorf("empty: %v, %v", d, err)
	}
	d, err = n.Makespan([]Flow{{Src: 0, Dst: 1, Bytes: 0}})
	if err != nil || d != 0 {
		t.Errorf("zero bytes: %v, %v", d, err)
	}
}

func TestBadFlow(t *testing.T) {
	n := Gigabit(2)
	if _, err := n.Makespan([]Flow{{Src: 0, Dst: 5, Bytes: 1}}); err == nil {
		t.Error("out-of-range node should error")
	}
}

func TestMoreBytesTakeLonger(t *testing.T) {
	n := Gigabit(11)
	small := n.ShuffleFlows([]int64{1 << 20, 1 << 20, 1 << 20})
	large := n.ShuffleFlows([]int64{100 << 20, 100 << 20, 100 << 20})
	ds, err := n.Makespan(small)
	if err != nil {
		t.Fatal(err)
	}
	dl, err := n.Makespan(large)
	if err != nil {
		t.Fatal(err)
	}
	if dl < ds*50 {
		t.Errorf("100x bytes took %v vs %v; want ~100x", dl, ds)
	}
}

func TestShuffleFlowsConserveBytes(t *testing.T) {
	n := Gigabit(5)
	per := []int64{1000, 0, 777, 123456}
	flows := n.ShuffleFlows(per)
	var want, got int64
	for _, b := range per {
		want += b
	}
	for _, f := range flows {
		got += f.Bytes
	}
	if got != want {
		t.Errorf("flows carry %d bytes, want %d", got, want)
	}
}
