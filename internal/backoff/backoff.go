// Package backoff is the shared retry-delay policy for the cluster
// control plane and the shuffle data plane: exponential growth with
// full jitter and a hard ceiling. Jitter keeps a fleet of workers that
// failed together from retrying together (a synchronized thundering
// herd against the component that just hiccuped); the ceiling keeps a
// long retry loop from backing off into uselessness.
package backoff

import (
	"math/rand/v2"
	"time"
)

// Exp returns the delay before the retry-th retry (1-based): the base
// doubles per retry and the result is drawn uniformly from [d, 2d) —
// "full jitter" on top of the exponential floor. The pre-jitter delay
// is capped at ceiling, so the returned delay is always below
// 2*ceiling no matter how many retries have accumulated.
func Exp(base time.Duration, retry int, ceiling time.Duration) time.Duration {
	if base <= 0 {
		base = time.Millisecond
	}
	if ceiling < base {
		ceiling = base
	}
	d := base
	for i := 1; i < retry && d < ceiling; i++ {
		d <<= 1
	}
	if d > ceiling {
		d = ceiling
	}
	return d + rand.N(d)
}
