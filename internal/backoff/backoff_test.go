package backoff

import (
	"testing"
	"time"
)

func TestExpGrowsAndJitters(t *testing.T) {
	base := 2 * time.Millisecond
	ceiling := 250 * time.Millisecond
	for retry := 1; retry <= 12; retry++ {
		floor := base << (retry - 1)
		if floor > ceiling || floor <= 0 {
			floor = ceiling
		}
		for i := 0; i < 50; i++ {
			d := Exp(base, retry, ceiling)
			if d < floor {
				t.Fatalf("retry %d: delay %v below exponential floor %v", retry, d, floor)
			}
			if d >= 2*floor {
				t.Fatalf("retry %d: delay %v outside full-jitter range [%v, %v)", retry, d, floor, 2*floor)
			}
		}
	}
}

func TestExpCeiling(t *testing.T) {
	// Far past the doubling range, delays must stay below 2*ceiling
	// instead of overflowing or growing unboundedly.
	for i := 0; i < 100; i++ {
		d := Exp(time.Millisecond, 60, 100*time.Millisecond)
		if d < 100*time.Millisecond || d >= 200*time.Millisecond {
			t.Fatalf("capped delay %v outside [ceiling, 2*ceiling)", d)
		}
	}
}

func TestExpDegenerateInputs(t *testing.T) {
	if d := Exp(0, 0, 0); d <= 0 {
		t.Fatalf("zero inputs produced non-positive delay %v", d)
	}
	if d := Exp(-time.Second, -3, -time.Second); d <= 0 {
		t.Fatalf("negative inputs produced non-positive delay %v", d)
	}
}

func TestExpActuallyJitters(t *testing.T) {
	seen := make(map[time.Duration]bool)
	for i := 0; i < 64; i++ {
		seen[Exp(time.Millisecond, 3, time.Second)] = true
	}
	if len(seen) < 2 {
		t.Fatal("64 draws produced a single delay; jitter is not applied")
	}
}
