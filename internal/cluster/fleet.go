package cluster

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/rpc"
	"sync"
	"time"

	"repro/internal/obs"
)

// FleetConfig tunes a fleet.
type FleetConfig struct {
	// Addr is the RPC listen address (default "127.0.0.1:0").
	Addr string
	// HeartbeatEvery is the worker heartbeat interval (default 50ms);
	// HeartbeatMiss is how many missed intervals declare a worker dead
	// (default 4).
	HeartbeatEvery time.Duration
	HeartbeatMiss  int
	// Tracer, when non-nil, receives job/worker/heartbeat/lease spans in
	// addition to each job scheduler's per-attempt spans.
	Tracer *obs.Tracer
	// OnEvent, when non-nil, observes fleet lifecycle events (worker
	// registration, drain, and death; task reports across all jobs).
	// Tests use it to synchronize fault injection with job progress; it
	// must not call back into the fleet.
	OnEvent func(Event)
}

// Event is one fleet lifecycle observation.
type Event struct {
	// Kind is "register", "worker-drained", "worker-dead", "task-done",
	// or "task-failed".
	Kind    string
	Worker  int
	Job     int
	Task    string
	Attempt int
	Detail  string
}

func (c FleetConfig) normalized() FleetConfig {
	if c.Addr == "" {
		c.Addr = "127.0.0.1:0"
	}
	if c.HeartbeatEvery <= 0 {
		c.HeartbeatEvery = 50 * time.Millisecond
	}
	if c.HeartbeatMiss <= 0 {
		c.HeartbeatMiss = 4
	}
	return c
}

// unreachableThreshold is how many distinct fetch-failure reports
// against one worker's segment server declare that worker dead even
// while its heartbeats still arrive (a half-dead worker: alive control
// plane, wedged data plane) — Hadoop's fetch-failure blacklisting.
const unreachableThreshold = 3

// leasePollTimeout bounds one Lease long-poll on the server side.
const leasePollTimeout = 200 * time.Millisecond

// taskError is a worker-reported attempt failure; Transient ones are
// retried by the scheduler.
type taskError struct {
	Msg       string
	Transient bool
}

func (e *taskError) Error() string { return e.Msg }

// errWorkerLost is the synthetic failure delivered to leases
// outstanding on a worker declared dead.
var errWorkerLost = errors.New("cluster: worker lost")

type workerState struct {
	id       int
	dataAddr string
	slots    int

	dead        bool
	draining    bool
	lastBeat    time.Time
	outstanding int         // granted leases not yet reported
	cancels     []AttemptID // delivered on next heartbeat
	cleanups    []int       // finished job IDs, delivered on next heartbeat
	unreachable int         // fetch-failure reports against this worker

	// pinned holds queued leases that must run on this worker (fetch
	// and reduce leases bound to a partition home). wake is signaled
	// when a lease this worker could take is enqueued.
	pinned []*queuedLease
	wake   chan struct{}

	// Last-observed cumulative gauges from this worker's reports.
	lastDials      int64
	lastServed     int64
	lastRPCRetries int64
	lastIntegrity  int64

	span *obs.SpanRef
}

// queuedLease is one task attempt waiting for a worker slot. It sits in
// the fleet's dispatch queues until a worker's long-poll claims it (or
// its worker dies / its Execute is cancelled first).
type queuedLease struct {
	job       *jobRun
	lease     TaskLease
	pin       int // worker id the lease must run on, or -1 for any
	pend      *pendingLease
	seq       int64 // FIFO tie-break within a tenant share level
	cancelled bool  // skipped (and pruned) by grant
}

// pendingLease tracks one Execute call from enqueue to report. worker
// is -1 while the lease is queued and the granted worker's id after
// dispatch; ch delivers the (possibly synthetic) report exactly once.
type pendingLease struct {
	job     *jobRun
	worker  int
	granted time.Time
	ch      chan *ReportArgs
	ql      *queuedLease // non-nil while queued
}

// Fleet owns one pool of worker processes and runs many jobs over it
// concurrently. It is the shared half of the old single-job
// coordinator: worker registry, heartbeats, lease dispatch (now with
// per-tenant weighted fair share across jobs), segment-server
// blacklisting, and graceful drain/join. Per-job state — task graph,
// partition homes, stats, DepLostError recovery — lives in jobRun.
type Fleet struct {
	cfg FleetConfig
	ln  net.Listener

	stopMon context.CancelFunc

	mu         sync.Mutex
	workers    map[int]*workerState
	nextWorker int
	registered chan struct{} // signaled once per registration

	jobs     map[int]*jobRun
	nextJob  int
	unpinned []*queuedLease
	pending  map[AttemptID]*pendingLease
	// running counts granted (not yet reported) leases per tenant — the
	// quantity fair share equalizes, weighted by each job's Weight.
	running  map[string]int
	seq      int64
	shutdown bool
}

// NewFleet starts a fleet: RPC listener up (so Addr is dialable and
// workers may join immediately) and the heartbeat monitor running.
func NewFleet(cfg FleetConfig) (*Fleet, error) {
	cfg = cfg.normalized()
	f := &Fleet{
		cfg:        cfg,
		workers:    make(map[int]*workerState),
		registered: make(chan struct{}, 64),
		jobs:       make(map[int]*jobRun),
		pending:    make(map[AttemptID]*pendingLease),
		running:    make(map[string]int),
	}
	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		return nil, err
	}
	f.ln = ln
	srv := rpc.NewServer()
	if err := srv.RegisterName("Cluster", &clusterRPC{f: f}); err != nil {
		ln.Close()
		return nil, err
	}
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go srv.ServeConn(conn)
		}
	}()
	monCtx, stopMon := context.WithCancel(context.Background())
	f.stopMon = stopMon
	go f.monitorHeartbeats(monCtx)
	return f, nil
}

// Addr is the fleet's dialable RPC address.
func (f *Fleet) Addr() string { return f.ln.Addr().String() }

// Shutdown marks the fleet shut down: workers learn of it through
// their next lease or heartbeat and exit. The listener stays up so
// those final polls get an orderly Shutdown reply.
func (f *Fleet) Shutdown() {
	f.mu.Lock()
	f.shutdown = true
	for _, w := range f.workers {
		wakeLocked(w)
	}
	f.mu.Unlock()
}

// Close shuts the fleet down and stops its RPC listener and heartbeat
// monitor.
func (f *Fleet) Close() error {
	f.Shutdown()
	f.stopMon()
	return f.ln.Close()
}

func (f *Fleet) event(e Event) {
	if f.cfg.OnEvent != nil {
		f.cfg.OnEvent(e)
	}
}

// WaitWorkers blocks until n live workers are registered.
func (f *Fleet) WaitWorkers(ctx context.Context, n int) error {
	for {
		f.mu.Lock()
		live := 0
		for _, w := range f.workers {
			if !w.dead && !w.draining {
				live++
			}
		}
		f.mu.Unlock()
		if live >= n {
			return nil
		}
		select {
		case <-f.registered:
		case <-ctx.Done():
			return fmt.Errorf("cluster: waiting for %d workers: %w", n, ctx.Err())
		}
	}
}

// totalSlotsLocked is the fleet's live task capacity.
func (f *Fleet) totalSlotsLocked() int {
	slots := 0
	for _, w := range f.workers {
		if !w.dead && !w.draining {
			slots += w.slots
		}
	}
	if slots < 1 {
		slots = 1
	}
	return slots
}

// WorkerInfo is one worker's externally visible state.
type WorkerInfo struct {
	ID          int       `json:"id"`
	Addr        string    `json:"addr"`
	Slots       int       `json:"slots"`
	Live        bool      `json:"live"`
	Draining    bool      `json:"draining"`
	Outstanding int       `json:"outstanding"`
	LastBeat    time.Time `json:"last_beat"`
}

// Workers lists every worker the fleet has seen, dead ones included.
func (f *Fleet) Workers() []WorkerInfo {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]WorkerInfo, 0, len(f.workers))
	for _, w := range f.workers {
		out = append(out, WorkerInfo{
			ID: w.id, Addr: w.dataAddr, Slots: w.slots,
			Live: !w.dead, Draining: w.draining,
			Outstanding: w.outstanding, LastBeat: w.lastBeat,
		})
	}
	return out
}

// DrainWorker asks a worker to drain gracefully: no new leases, queued
// leases pinned to it are re-placed, and the worker — told via its
// next poll — finishes its running attempts, deregisters, and exits.
// Unknown or already-dead workers are a no-op returning false.
func (f *Fleet) DrainWorker(id int) bool {
	f.mu.Lock()
	w := f.workers[id]
	if w == nil || w.dead {
		f.mu.Unlock()
		return false
	}
	f.markDrainingLocked(w)
	f.mu.Unlock()
	return true
}

// markDrainingLocked stops lease grants to w and synthetically fails
// its queued (not yet granted) pinned leases so the schedulers re-place
// them; running attempts are left to finish.
func (f *Fleet) markDrainingLocked(w *workerState) {
	if w.draining {
		return
	}
	w.draining = true
	for _, ql := range w.pinned {
		f.failQueuedLocked(ql, fmt.Sprintf("cluster: worker %d draining", w.id))
	}
	w.pinned = nil
	wakeLocked(w)
}

// failQueuedLocked delivers a synthetic transient failure to a queued
// lease (its worker died or is draining before dispatch).
func (f *Fleet) failQueuedLocked(ql *queuedLease, why string) {
	if ql.cancelled {
		return
	}
	ql.cancelled = true
	key := AttemptID{Job: ql.lease.JobID, Task: ql.lease.Task, Attempt: ql.lease.Attempt}
	if cur, ok := f.pending[key]; !ok || cur != ql.pend {
		return
	}
	delete(f.pending, key)
	ql.pend.ch <- &ReportArgs{
		WorkerID: ql.pin, JobID: ql.lease.JobID, Task: ql.lease.Task, Attempt: ql.lease.Attempt,
		Errmsg: why, Transient: true,
	}
}

// wakeLocked nudges one of w's parked lease long-polls.
func wakeLocked(w *workerState) {
	select {
	case w.wake <- struct{}{}:
	default:
	}
}

// wakeAllLocked nudges every live worker (an any-worker lease arrived).
func (f *Fleet) wakeAllLocked() {
	for _, w := range f.workers {
		if !w.dead && !w.draining {
			wakeLocked(w)
		}
	}
}

// enqueueLocked queues a lease for dispatch and wakes candidates.
func (f *Fleet) enqueueLocked(ql *queuedLease) {
	if ql.pin >= 0 {
		w := f.workers[ql.pin]
		w.pinned = append(w.pinned, ql)
		wakeLocked(w)
		return
	}
	f.unpinned = append(f.unpinned, ql)
	f.wakeAllLocked()
}

// betterLocked reports whether a should dispatch before b under
// weighted fair share: the lease whose tenant currently holds the
// smaller share of running leases (running/weight, compared
// cross-multiplied to stay in integers) wins; ties go to the higher
// job priority, then FIFO.
func (f *Fleet) betterLocked(a, b *queuedLease) bool {
	ra, wa := int64(f.running[a.job.spec.Tenant]), int64(a.job.weight)
	rb, wb := int64(f.running[b.job.spec.Tenant]), int64(b.job.weight)
	if ra*wb != rb*wa {
		return ra*wb < rb*wa
	}
	if a.job.spec.Priority != b.job.spec.Priority {
		return a.job.spec.Priority > b.job.spec.Priority
	}
	return a.seq < b.seq
}

// pruneLocked drops cancelled leases from a queue in place.
func pruneLocked(q []*queuedLease) []*queuedLease {
	kept := q[:0]
	for _, ql := range q {
		if !ql.cancelled {
			kept = append(kept, ql)
		}
	}
	// Zero the tail so dropped leases don't linger behind the slice.
	for i := len(kept); i < len(q); i++ {
		q[i] = nil
	}
	return kept
}

// grantLocked picks the fair-share-best lease worker w can run (its
// pinned queue plus the any-worker queue) and marks it granted.
func (f *Fleet) grantLocked(w *workerState) (TaskLease, bool) {
	w.pinned = pruneLocked(w.pinned)
	f.unpinned = pruneLocked(f.unpinned)
	var best *queuedLease
	var from *[]*queuedLease
	var at int
	for _, q := range []*[]*queuedLease{&w.pinned, &f.unpinned} {
		for i, ql := range *q {
			if best == nil || f.betterLocked(ql, best) {
				best, from, at = ql, q, i
			}
		}
	}
	if best == nil {
		return TaskLease{}, false
	}
	*from = append((*from)[:at], (*from)[at+1:]...)
	best.pend.worker = w.id
	best.pend.granted = time.Now()
	best.pend.ql = nil
	w.outstanding++
	f.running[best.job.spec.Tenant]++
	return best.lease, true
}

// dropLease abandons a pending lease after its Execute was cancelled;
// a granted lease additionally queues an abort for the worker's next
// heartbeat.
func (f *Fleet) dropLease(key AttemptID, pend *pendingLease) {
	f.mu.Lock()
	if cur, ok := f.pending[key]; ok && cur == pend {
		delete(f.pending, key)
		if pend.worker >= 0 {
			if w := f.workers[pend.worker]; w != nil {
				w.outstanding--
				if !w.dead {
					w.cancels = append(w.cancels, key)
				}
			}
			f.running[pend.job.spec.Tenant]--
		} else if pend.ql != nil {
			pend.ql.cancelled = true
		}
	}
	f.mu.Unlock()
}

// noteUnreachable counts fetch-failure evidence against segment
// servers; enough distinct reports declare the owning worker dead even
// while its heartbeats arrive (wedged data plane).
func (f *Fleet) noteUnreachable(addrs []string) {
	if len(addrs) == 0 {
		return
	}
	var died []*workerState
	f.mu.Lock()
	for _, addr := range addrs {
		for _, w := range f.workers {
			if w.dataAddr != addr || w.dead {
				continue
			}
			if w.unreachable++; w.unreachable >= unreachableThreshold {
				died = append(died, w)
				f.markDeadLocked(w, "segment server unreachable")
			}
		}
	}
	f.mu.Unlock()
	for _, w := range died {
		f.event(Event{Kind: "worker-dead", Worker: w.id, Detail: "unreachable"})
	}
}

// monitorHeartbeats declares workers dead after HeartbeatMiss missed
// intervals and fails their outstanding leases so each job's scheduler
// can retry the work elsewhere.
func (f *Fleet) monitorHeartbeats(ctx context.Context) {
	t := time.NewTicker(f.cfg.HeartbeatEvery)
	defer t.Stop()
	for {
		select {
		case <-t.C:
		case <-ctx.Done():
			return
		}
		limit := time.Duration(f.cfg.HeartbeatMiss) * f.cfg.HeartbeatEvery
		now := time.Now()
		var died []*workerState
		f.mu.Lock()
		for _, w := range f.workers {
			if !w.dead && now.Sub(w.lastBeat) > limit {
				died = append(died, w)
				f.markDeadLocked(w, "missed heartbeats")
			}
		}
		f.mu.Unlock()
		for _, w := range died {
			f.event(Event{Kind: "worker-dead", Worker: w.id, Detail: "missed heartbeats"})
		}
	}
}

// markDeadLocked transitions a worker to dead: its granted leases
// receive synthetic transient failures (each job's scheduler re-places
// them), its queued pinned leases are re-placed the same way, and its
// committed map output will be found lost by the fetch dispatch
// pre-check, triggering re-execution.
func (f *Fleet) markDeadLocked(w *workerState, why string) {
	w.dead = true
	w.draining = true
	if f.cfg.Tracer != nil {
		now := time.Now()
		f.cfg.Tracer.Record(obs.KindHeartbeat, fmt.Sprintf("worker-%d lost", w.id),
			now, now, obs.Str("reason", why))
	}
	if w.span != nil {
		w.span.End(obs.Str("outcome", "dead"), obs.Str("reason", why))
		w.span = nil
	}
	for key, pend := range f.pending {
		if pend.worker != w.id {
			continue
		}
		delete(f.pending, key)
		w.outstanding--
		f.running[pend.job.spec.Tenant]--
		pend.ch <- &ReportArgs{
			WorkerID: w.id, JobID: key.Job, Task: key.Task, Attempt: key.Attempt,
			Errmsg:    fmt.Sprintf("%v: worker %d (%s)", errWorkerLost, w.id, why),
			Transient: true,
		}
	}
	for _, ql := range w.pinned {
		f.failQueuedLocked(ql, fmt.Sprintf("%v: worker %d (%s)", errWorkerLost, w.id, why))
	}
	w.pinned = nil
	wakeLocked(w)
}

// finishJob retires a completed job: it leaves the dispatch tables and
// every live worker is told (on its next heartbeat) to delete the
// job's workspace files and drop its cached build.
func (f *Fleet) finishJob(j *jobRun) {
	f.mu.Lock()
	delete(f.jobs, j.id)
	if !j.spec.RetainWorkspace {
		for _, w := range f.workers {
			if !w.dead {
				w.cleanups = append(w.cleanups, j.id)
			}
		}
	}
	f.mu.Unlock()
}

// ReleaseWorkspace sweeps a RetainWorkspace job's worker-side files —
// called by the pipeline runner once no later stage still reads the
// job's handoff output. Safe to call for unknown or already-swept job
// ids (the worker-side sweep is an idempotent prefix delete).
func (f *Fleet) ReleaseWorkspace(jobID int) {
	f.mu.Lock()
	for _, w := range f.workers {
		if !w.dead {
			w.cleanups = append(w.cleanups, jobID)
		}
	}
	f.mu.Unlock()
}

// Metrics is an obs.Source-shaped snapshot of fleet-wide gauges.
func (f *Fleet) Metrics() map[string]int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	var live, draining, slots, granted int64
	for _, w := range f.workers {
		if w.dead {
			continue
		}
		if w.draining {
			draining++
		} else {
			live++
			slots += int64(w.slots)
		}
		granted += int64(w.outstanding)
	}
	queued := int64(len(f.pending)) - granted
	if queued < 0 {
		queued = 0
	}
	return map[string]int64{
		"workers_live":     live,
		"workers_draining": draining,
		"slots":            slots,
		"leases_running":   granted,
		"leases_queued":    queued,
		"jobs_running":     int64(len(f.jobs)),
	}
}

// clusterRPC is the fleet's RPC surface.
type clusterRPC struct {
	f *Fleet
}

func (r *clusterRPC) Register(args *RegisterArgs, reply *RegisterReply) error {
	f := r.f
	f.mu.Lock()
	if f.shutdown {
		f.mu.Unlock()
		return errors.New("cluster: fleet is shutting down")
	}
	id := f.nextWorker
	f.nextWorker++
	slots := args.Slots
	if slots <= 0 {
		slots = 1
	}
	w := &workerState{
		id: id, dataAddr: args.DataAddr, slots: slots,
		wake: make(chan struct{}, 1), lastBeat: time.Now(),
	}
	if f.cfg.Tracer != nil {
		w.span = f.cfg.Tracer.Start(obs.KindWorker, fmt.Sprintf("worker-%d", id),
			obs.Str("data_addr", args.DataAddr), obs.Int("slots", int64(slots)))
	}
	f.workers[id] = w
	f.mu.Unlock()

	reply.WorkerID = id
	reply.HeartbeatEvery = f.cfg.HeartbeatEvery
	f.event(Event{Kind: "register", Worker: id, Detail: args.DataAddr})
	select {
	case f.registered <- struct{}{}:
	default:
	}
	return nil
}

func (r *clusterRPC) GetJob(args *GetJobArgs, reply *GetJobReply) error {
	f := r.f
	f.mu.Lock()
	j := f.jobs[args.JobID]
	f.mu.Unlock()
	if j == nil {
		return fmt.Errorf("cluster: no active job %d", args.JobID)
	}
	reply.Ref = j.spec.Ref
	reply.MaxTaskAttempts = j.spec.MaxTaskAttempts
	return nil
}

func (r *clusterRPC) Heartbeat(args *HeartbeatArgs, reply *HeartbeatReply) error {
	f := r.f
	f.mu.Lock()
	w := f.workers[args.WorkerID]
	if w == nil || w.dead || f.shutdown {
		// A declared-dead worker must not rejoin placement: its committed
		// outputs were already rescheduled elsewhere.
		reply.Shutdown = true
		f.mu.Unlock()
		return nil
	}
	w.lastBeat = time.Now()
	reply.Drain = w.draining
	reply.Cancel = w.cancels
	w.cancels = nil
	reply.Cleanup = w.cleanups
	w.cleanups = nil
	f.mu.Unlock()
	return nil
}

func (r *clusterRPC) Lease(args *LeaseArgs, reply *LeaseReply) error {
	f := r.f
	timeout := time.NewTimer(leasePollTimeout)
	defer timeout.Stop()
	for {
		f.mu.Lock()
		w := f.workers[args.WorkerID]
		if w == nil || w.dead || f.shutdown {
			reply.Shutdown = true
			f.mu.Unlock()
			return nil
		}
		if w.draining {
			reply.Drain = true
			f.mu.Unlock()
			return nil
		}
		if lease, ok := f.grantLocked(w); ok {
			reply.Granted = true
			reply.Lease = lease
			f.mu.Unlock()
			return nil
		}
		wake := w.wake
		f.mu.Unlock()
		select {
		case <-wake:
		case <-timeout.C:
			reply.Idle = true
			return nil
		}
	}
}

func (r *clusterRPC) Report(args *ReportArgs, reply *ReportReply) error {
	f := r.f
	key := AttemptID{Job: args.JobID, Task: args.Task, Attempt: args.Attempt}
	f.mu.Lock()
	w := f.workers[args.WorkerID]
	pend := f.pending[key]
	if w == nil || pend == nil || pend.worker != args.WorkerID {
		// Stale: a cancelled attempt, a lost race, or a worker already
		// declared dead. Drop it; the authoritative outcome is elsewhere.
		f.mu.Unlock()
		return nil
	}
	delete(f.pending, key)
	w.outstanding--
	f.running[pend.job.spec.Tenant]--
	w.lastDials = args.PoolDials
	w.lastServed = args.ServedBytes
	w.lastRPCRetries = args.RPCRetries
	w.lastIntegrity = args.IntegrityFaults
	f.mu.Unlock()
	pend.ch <- args
	return nil
}

func (r *clusterRPC) Drain(args *DrainArgs, reply *DrainReply) error {
	f := r.f
	f.mu.Lock()
	if w := f.workers[args.WorkerID]; w != nil && !w.dead {
		f.markDrainingLocked(w)
	}
	f.mu.Unlock()
	return nil
}

func (r *clusterRPC) Deregister(args *DeregisterArgs, reply *DeregisterReply) error {
	f := r.f
	f.mu.Lock()
	w := f.workers[args.WorkerID]
	if w == nil || w.dead {
		f.mu.Unlock()
		return nil
	}
	f.markDeadLocked(w, "drained")
	f.mu.Unlock()
	f.event(Event{Kind: "worker-drained", Worker: args.WorkerID})
	return nil
}
