package cluster

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/iokit"
	"repro/internal/mr"
)

// WorkerOptions configures one worker process (or in-process worker
// goroutine, which tests use to avoid subprocess overhead).
type WorkerOptions struct {
	// Coordinator is the coordinator's RPC address.
	Coordinator string
	// Slots is the number of concurrent task slots (default GOMAXPROCS).
	Slots int
	// FS is the worker's task filesystem (default an in-memory FS; a
	// real deployment would hand each worker its own scratch OSFS).
	FS iokit.FS
	// DataAddr is the segment-server bind address (default loopback).
	DataAddr string
	// WrapListener, when non-nil, wraps the segment server's data-plane
	// listener — the chaos harness's injection point for connection
	// drops, stalls, truncations, and bit-flips.
	WrapListener func(net.Listener) net.Listener
	// RPCTimeout bounds each control-plane call to the coordinator
	// (default 2s). Calls that exceed it are retried with jittered
	// backoff on a fresh connection, so a wedged coordinator cannot
	// block a worker forever.
	RPCTimeout time.Duration
}

// RunWorker joins the cluster at opts.Coordinator and serves task
// leases until told to shut down (job finished), the context is
// cancelled, or the coordinator becomes unreachable. Map output is
// produced into the worker's own filesystem and served to peers via
// mr.SegmentServer; fetch leases pull peer segments through a shared
// mr.ConnPool.
func RunWorker(ctx context.Context, opts WorkerOptions) error {
	if opts.Slots <= 0 {
		opts.Slots = runtime.GOMAXPROCS(0)
	}
	fs := opts.FS
	if fs == nil {
		fs = iokit.NewMemFS()
	}
	dataAddr := opts.DataAddr
	if dataAddr == "" {
		dataAddr = "127.0.0.1:0"
	}

	client := newRPCClient(opts.Coordinator, opts.RPCTimeout)
	defer client.Close()

	serveMeter := &iokit.Meter{}
	ln, err := net.Listen("tcp", dataAddr)
	if err != nil {
		return fmt.Errorf("cluster: starting segment server: %w", err)
	}
	if opts.WrapListener != nil {
		ln = opts.WrapListener(ln)
	}
	srv := mr.NewSegmentServerOn(fs, ln, serveMeter)
	defer srv.Close()
	pool := mr.NewConnPool()
	defer pool.Close()

	var reg RegisterReply
	if err := client.Call(ctx, "Cluster.Register", &RegisterArgs{DataAddr: srv.Addr(), Slots: opts.Slots}, &reg); err != nil {
		return fmt.Errorf("cluster: registering: %w", err)
	}
	job, splits, err := BuildJob(reg.Job)
	if err != nil {
		return fmt.Errorf("cluster: building job: %w", err)
	}
	// The attempt budget shapes task behavior (reduce merges keep their
	// inputs when retries are possible); mirror the coordinator's.
	job.MaxTaskAttempts = reg.MaxTaskAttempts
	hbEvery := reg.HeartbeatEvery
	if hbEvery <= 0 {
		hbEvery = 50 * time.Millisecond
	}

	w := &worker{
		id: reg.WorkerID, job: job, splits: splits,
		fs: fs, pool: pool, srv: srv, serveMeter: serveMeter,
		client:  client,
		running: make(map[AttemptID]context.CancelFunc),
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	// Heartbeat loop: liveness out, cancellations in.
	go func() {
		t := time.NewTicker(hbEvery)
		defer t.Stop()
		for {
			select {
			case <-t.C:
			case <-ctx.Done():
				return
			}
			var hb HeartbeatReply
			if err := client.Call(ctx, "Cluster.Heartbeat", &HeartbeatArgs{WorkerID: w.id}, &hb); err != nil {
				cancel() // coordinator gone (deadline + retries exhausted)
				return
			}
			if hb.Shutdown {
				cancel()
				return
			}
			for _, aid := range hb.Cancel {
				w.cancelAttempt(aid)
			}
		}
	}()

	var wg sync.WaitGroup
	for s := 0; s < opts.Slots; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ctx.Err() == nil {
				var lr LeaseReply
				if err := client.Call(ctx, "Cluster.Lease", &LeaseArgs{WorkerID: w.id}, &lr); err != nil {
					cancel()
					return
				}
				if lr.Shutdown {
					cancel()
					return
				}
				if !lr.Granted {
					continue
				}
				rep := w.runLease(ctx, lr.Lease)
				if ctx.Err() != nil {
					// A crashed or shut-down worker never reports: the attempt
					// died with the process, and the coordinator must discover
					// that through missed heartbeats, not a parting message
					// a real crash could not have sent.
					cancel()
					return
				}
				if err := w.report(ctx, rep); err != nil {
					cancel()
					return
				}
			}
		}()
	}
	wg.Wait()
	return nil
}

type worker struct {
	id         int
	job        *mr.Job
	splits     []mr.Split
	fs         iokit.FS
	pool       *mr.ConnPool
	srv        *mr.SegmentServer
	serveMeter *iokit.Meter
	client     *rpcClient
	integrity  atomic.Int64 // fetches failed by checksum, across attempts

	mu      sync.Mutex
	running map[AttemptID]context.CancelFunc
}

// report delivers an attempt report, stamping the worker's cumulative
// gauges last so the coordinator's view is current: RPC retries spent
// (including on this report's predecessors) and checksum-failed
// fetches, which live on failed attempts whose stats are discarded.
func (w *worker) report(ctx context.Context, rep *ReportArgs) error {
	rep.RPCRetries = w.client.Retries()
	rep.IntegrityFaults = w.integrity.Load()
	var rr ReportReply
	return w.client.Call(ctx, "Cluster.Report", rep, &rr)
}

func (w *worker) cancelAttempt(aid AttemptID) {
	w.mu.Lock()
	cancel := w.running[aid]
	w.mu.Unlock()
	if cancel != nil {
		cancel()
	}
}

// runLease executes one task attempt and builds its report. All
// failures are reported rather than returned: the coordinator owns
// retry policy.
func (w *worker) runLease(ctx context.Context, l TaskLease) *ReportArgs {
	rep := &ReportArgs{WorkerID: w.id, Task: l.Task, Attempt: l.Attempt}
	aid := AttemptID{Task: l.Task, Attempt: l.Attempt}
	actx, acancel := context.WithCancel(ctx)
	w.mu.Lock()
	w.running[aid] = acancel
	w.mu.Unlock()
	defer func() {
		acancel()
		w.mu.Lock()
		delete(w.running, aid)
		w.mu.Unlock()
	}()

	// Fresh counters and disk meter per attempt: the report's Stats is a
	// clean delta, and only committed attempts are summed job-side.
	counters := &mr.Counters{}
	meter := &iokit.Meter{}
	afs := iokit.Metered(w.fs, meter)
	counters.SetDiskMeter(meter)

	t0 := time.Now()
	var err error
	switch l.Group {
	case mr.TaskGroupMap:
		var segs []mr.SegmentInfo
		segs, err = mr.ExecMapTask(actx, w.job, afs, counters, l.MapTask, l.Attempt, w.splits[l.MapTask])
		for _, s := range segs {
			rep.Segs = append(rep.Segs, SegInfo{
				Addr: w.srv.Addr(), File: s.File, Partition: s.Partition,
				Records: s.Records, RawBytes: s.RawBytes,
			})
		}

	case mr.TaskGroupFetch:
		err = w.runFetch(actx, l, rep, counters)
		counters.AddReduceCPU(time.Since(t0)) // fetch work is reduce-phase time

	case mr.TaskGroupReduce:
		var locals []mr.SegmentInfo
		for i, s := range l.Locals {
			if _, serr := w.fs.Size(s.File); serr != nil {
				rep.LostDeps = appendUnique(rep.LostDeps, l.LocalTasks[i])
				continue
			}
			locals = append(locals, mr.SegmentInfo{
				Partition: s.Partition, File: s.File,
				Records: s.Records, RawBytes: s.RawBytes,
			})
		}
		if len(rep.LostDeps) > 0 {
			rep.Errmsg = fmt.Sprintf("cluster: %d reduce input segments missing locally", len(rep.LostDeps))
			return rep
		}
		rep.Records, err = mr.ExecReduceTask(actx, w.job, afs, counters, l.Partition, l.Attempt, locals)
	}

	rep.DurNs = time.Since(t0).Nanoseconds()
	rep.Stats = counters.Snapshot()
	rep.PoolDials = w.pool.Dials()
	rep.ServedBytes = w.serveMeter.ReadBytes()
	if err != nil {
		rep.Errmsg = err.Error()
		// Cancelled attempts are not worth retrying (the coordinator
		// revoked them); anything else might succeed elsewhere or later.
		rep.Transient = actx.Err() == nil
	}
	return rep
}

// runFetch pulls the lease's source segments from peer segment servers
// into worker-local files — the cluster analogue of the pipelined
// scheduler's fetch tasks, with real sockets underneath. Unless the job
// disables checksums, every fetched byte passes through the CRC32C
// verifier before landing on disk, so a corrupted transfer is a fetch
// failure (feeding the coordinator's unreachable blacklist), never a
// poisoned reduce input. A failed attempt removes every file it wrote,
// so retries cannot leak partial segments.
func (w *worker) runFetch(ctx context.Context, l TaskLease, rep *ReportArgs, counters *mr.Counters) error {
	var transferTime time.Duration
	var local []string
	cleanup := func(current string) {
		if current != "" {
			w.fs.Remove(current)
		}
		for _, name := range local {
			w.fs.Remove(name)
		}
	}
	for i, src := range l.Sources {
		fst := time.Now()
		rc, size, err := w.pool.Fetch(ctx, src.Addr, src.File)
		if err != nil {
			cleanup("")
			rep.Unreachable = appendUnique(rep.Unreachable, src.Addr)
			return fmt.Errorf("cluster: fetching %s from %s: %w", src.File, src.Addr, err)
		}
		name := fmt.Sprintf("shuffle/r%04d/m%04d.a%d.%02d", l.Partition, l.MapIndex, l.Attempt, i)
		f, err := w.fs.Create(name)
		if err != nil {
			rc.Close()
			cleanup("")
			return err
		}
		var from io.Reader = rc
		if !w.job.DisableChecksums {
			from = mr.NewIntegrityVerifier(rc)
		}
		n, err := io.Copy(f, from)
		rc.Close()
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			if errors.Is(err, mr.ErrIntegrity) {
				w.integrity.Add(1)
			}
			cleanup(name)
			rep.Unreachable = appendUnique(rep.Unreachable, src.Addr)
			return fmt.Errorf("cluster: copying %s from %s: %w", src.File, src.Addr, err)
		}
		if n != size {
			cleanup(name)
			rep.Unreachable = appendUnique(rep.Unreachable, src.Addr)
			return fmt.Errorf("cluster: fetched %d bytes of %s from %s, want %d", n, src.File, src.Addr, size)
		}
		local = append(local, name)
		transferTime += time.Since(fst)
		counters.AddShuffle(n, src.Records)
		rep.FlowBytes += n
		rep.Segs = append(rep.Segs, SegInfo{
			Addr: w.srv.Addr(), File: name, Partition: src.Partition,
			Records: src.Records, RawBytes: src.RawBytes,
		})
	}
	rep.FetchNs = transferTime.Nanoseconds()
	rep.Fetches = len(l.Sources)
	return nil
}

func appendUnique(list []string, s string) []string {
	for _, have := range list {
		if have == s {
			return list
		}
	}
	return append(list, s)
}
