package cluster

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/iokit"
	"repro/internal/mr"
)

// WorkerOptions configures one worker process (or in-process worker
// goroutine, which tests use to avoid subprocess overhead).
type WorkerOptions struct {
	// Coordinator is the fleet's RPC address.
	Coordinator string
	// Slots is the number of concurrent task slots (default GOMAXPROCS).
	Slots int
	// FS is the worker's task filesystem (default an in-memory FS; a
	// real deployment would hand each worker its own scratch OSFS).
	// Every job's files live under that job's workspace prefix
	// ("j%06d/..."), so many jobs share one FS without collisions and
	// per-job cleanup is a single prefix sweep.
	FS iokit.FS
	// DataAddr is the segment-server bind address (default loopback).
	DataAddr string
	// WrapListener, when non-nil, wraps the segment server's data-plane
	// listener — the chaos harness's injection point for connection
	// drops, stalls, truncations, and bit-flips.
	WrapListener func(net.Listener) net.Listener
	// WireCompression negotiates Snappy compression on this worker's
	// outbound shuffle connections. Transparent to job output; it trades
	// CPU on both sides for bytes on the wire, which is the right trade
	// whenever workers are not sharing a loopback.
	WireCompression bool
	// RPCTimeout bounds each control-plane call to the fleet (default
	// 2s). Calls that exceed it are retried with jittered backoff on a
	// fresh connection, so a wedged fleet cannot block a worker forever.
	RPCTimeout time.Duration
	// Drain, when non-nil, triggers a graceful drain when it becomes
	// receivable (typically: closed by a SIGTERM handler). The worker
	// announces the drain to the fleet, takes no further leases,
	// finishes what it is running, deregisters, and returns nil.
	Drain <-chan struct{}
	// DrainTimeout bounds how long a draining worker lets running
	// attempts finish before force-cancelling them; cancelled attempts
	// are handed back to the fleet as transient failures and re-placed
	// elsewhere (default 30s).
	DrainTimeout time.Duration
}

// RunWorker joins the fleet at opts.Coordinator and serves task leases
// — across every job the fleet runs — until told to shut down, told to
// drain, the context is cancelled, or the fleet becomes unreachable.
// Map output is produced into the worker's own filesystem and served
// to peers via mr.SegmentServer; fetch leases pull peer segments
// through a shared mr.ConnPool. Job build specs are resolved through
// Cluster.GetJob on first contact and cached until the fleet announces
// the job finished (heartbeat Cleanup), at which point the job's
// workspace files are deleted.
func RunWorker(ctx context.Context, opts WorkerOptions) error {
	if opts.Slots <= 0 {
		opts.Slots = runtime.GOMAXPROCS(0)
	}
	if opts.DrainTimeout <= 0 {
		opts.DrainTimeout = 30 * time.Second
	}
	fs := opts.FS
	if fs == nil {
		fs = iokit.NewMemFS()
	}
	dataAddr := opts.DataAddr
	if dataAddr == "" {
		dataAddr = "127.0.0.1:0"
	}

	client := newRPCClient(opts.Coordinator, opts.RPCTimeout)
	defer client.Close()

	serveMeter := &iokit.Meter{}
	ln, err := net.Listen("tcp", dataAddr)
	if err != nil {
		return fmt.Errorf("cluster: starting segment server: %w", err)
	}
	if opts.WrapListener != nil {
		ln = opts.WrapListener(ln)
	}
	srv := mr.NewSegmentServerOn(fs, ln, serveMeter)
	defer srv.Close()
	pool := mr.NewConnPool()
	pool.WireCompression = opts.WireCompression
	defer pool.Close()
	// All segment fetches go through the multiplexer: concurrent slots
	// pulling from the same peer share one connection and one batch.
	fetcher := mr.NewMuxFetcher(pool)

	var reg RegisterReply
	if err := client.Call(ctx, "Cluster.Register", &RegisterArgs{DataAddr: srv.Addr(), Slots: opts.Slots}, &reg); err != nil {
		return fmt.Errorf("cluster: registering: %w", err)
	}
	hbEvery := reg.HeartbeatEvery
	if hbEvery <= 0 {
		hbEvery = 50 * time.Millisecond
	}

	w := &worker{
		id: reg.WorkerID,
		fs: fs, pool: pool, fetcher: fetcher, srv: srv, serveMeter: serveMeter,
		client:  client,
		jobs:    make(map[int]*workerJob),
		running: make(map[AttemptID]context.CancelFunc),
	}

	// Two cancellation scopes: ctx is the hard one (crash semantics —
	// running attempts die, nothing further is reported); pollCtx stops
	// only lease polling, which is how a drain lets running attempts
	// finish and report while no new work arrives.
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	pollCtx, stopPolls := context.WithCancel(ctx)
	defer stopPolls()

	var drainOnce sync.Once
	startDrain := func() {
		drainOnce.Do(func() {
			go func() {
				var dr DrainReply
				// Announce first so the fleet re-places queued leases; a
				// failed announcement still drains locally (the fleet will
				// notice via Deregister or missed heartbeats).
				client.Call(ctx, "Cluster.Drain", &DrainArgs{WorkerID: w.id}, &dr)
				stopPolls()
				select {
				case <-time.After(opts.DrainTimeout):
					w.drainKill.Store(true)
					w.cancelAll()
				case <-ctx.Done():
				}
			}()
		})
	}
	if opts.Drain != nil {
		go func() {
			select {
			case <-opts.Drain:
				startDrain()
			case <-ctx.Done():
			}
		}()
	}

	// Heartbeat loop: liveness out; cancellations, drain requests, and
	// finished-job cleanup announcements in. It keeps beating through a
	// drain so the fleet doesn't declare the worker dead while running
	// attempts finish.
	go func() {
		t := time.NewTicker(hbEvery)
		defer t.Stop()
		for {
			select {
			case <-t.C:
			case <-ctx.Done():
				return
			}
			var hb HeartbeatReply
			if err := client.Call(ctx, "Cluster.Heartbeat", &HeartbeatArgs{WorkerID: w.id}, &hb); err != nil {
				cancel() // fleet gone (deadline + retries exhausted)
				return
			}
			if hb.Shutdown {
				cancel()
				return
			}
			if hb.Drain {
				startDrain()
			}
			for _, aid := range hb.Cancel {
				w.cancelAttempt(aid)
			}
			for _, jobID := range hb.Cleanup {
				w.cleanupJob(jobID)
			}
		}
	}()

	var wg sync.WaitGroup
	for s := 0; s < opts.Slots; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for pollCtx.Err() == nil {
				var lr LeaseReply
				if err := client.Call(pollCtx, "Cluster.Lease", &LeaseArgs{WorkerID: w.id}, &lr); err != nil {
					if pollCtx.Err() != nil && ctx.Err() == nil {
						return // drain stopped polling mid-call
					}
					cancel()
					return
				}
				if lr.Shutdown {
					cancel()
					return
				}
				if lr.Drain {
					startDrain()
					<-pollCtx.Done()
					return
				}
				if !lr.Granted {
					continue
				}
				rep := w.runLease(ctx, lr.Lease)
				if ctx.Err() != nil {
					// A crashed or shut-down worker never reports: the attempt
					// died with the process, and the fleet must discover that
					// through missed heartbeats, not a parting message a real
					// crash could not have sent.
					cancel()
					return
				}
				if err := w.report(ctx, rep); err != nil {
					cancel()
					return
				}
			}
		}()
	}
	wg.Wait()

	// A drained worker (polls stopped, process alive) leaves cleanly:
	// its departure is a deliberate deregistration, not a crash.
	if ctx.Err() == nil {
		var dr DeregisterReply
		client.Call(ctx, "Cluster.Deregister", &DeregisterArgs{WorkerID: w.id}, &dr)
	}
	return nil
}

// workerJob is one job's cached build on a worker.
type workerJob struct {
	job    *mr.Job
	splits []mr.Split
}

type worker struct {
	id         int
	fs         iokit.FS
	pool       *mr.ConnPool
	fetcher    *mr.MuxFetcher
	srv        *mr.SegmentServer
	serveMeter *iokit.Meter
	client     *rpcClient
	integrity  atomic.Int64 // fetches failed by checksum, across attempts
	drainKill  atomic.Bool  // drain timeout fired; cancellations are hand-backs

	mu      sync.Mutex
	jobs    map[int]*workerJob
	running map[AttemptID]context.CancelFunc
}

// getJob resolves a lease's JobID into the job's build, caching it for
// the job's lifetime on this worker. The build is rooted in the job's
// workspace ("j%06d") so concurrent jobs' files stay disjoint.
func (w *worker) getJob(ctx context.Context, id int) (*workerJob, error) {
	w.mu.Lock()
	wj := w.jobs[id]
	w.mu.Unlock()
	if wj != nil {
		return wj, nil
	}
	var gr GetJobReply
	if err := w.client.Call(ctx, "Cluster.GetJob", &GetJobArgs{JobID: id}, &gr); err != nil {
		return nil, fmt.Errorf("cluster: resolving job %d: %w", id, err)
	}
	job, splits, err := BuildJob(gr.Ref)
	if err != nil {
		return nil, fmt.Errorf("cluster: building job %d: %w", id, err)
	}
	// The attempt budget shapes task behavior (reduce merges keep their
	// inputs when retries are possible); mirror the fleet's.
	job.MaxTaskAttempts = gr.MaxTaskAttempts
	job.Workspace = jobWorkspace(id)
	wj = &workerJob{job: job, splits: splits}
	w.mu.Lock()
	if have := w.jobs[id]; have != nil {
		wj = have // lost a build race; keep the first
	} else {
		w.jobs[id] = wj
	}
	w.mu.Unlock()
	return wj, nil
}

// jobWorkspace is the file-name prefix under which all of a job's
// files live on every worker.
func jobWorkspace(id int) string { return fmt.Sprintf("j%06d", id) }

// cleanupJob retires a finished job: cancel any straggling attempts
// (their leases were already dropped fleet-side), drop the cached
// build, then sweep the job's workspace files once those attempts have
// actually stopped — a cancelled attempt may still be mid-write, and a
// sweep racing it would leave orphans. The wait happens off the
// heartbeat loop so liveness is never blocked on a slow attempt.
func (w *worker) cleanupJob(id int) {
	w.mu.Lock()
	for aid, cancel := range w.running {
		if aid.Job == id {
			cancel()
		}
	}
	delete(w.jobs, id)
	w.mu.Unlock()
	go func() {
		deadline := time.Now().Add(10 * time.Second)
		for {
			w.mu.Lock()
			busy := false
			for aid := range w.running {
				if aid.Job == id {
					busy = true
					break
				}
			}
			w.mu.Unlock()
			if !busy || time.Now().After(deadline) {
				break
			}
			time.Sleep(5 * time.Millisecond)
		}
		prefix := jobWorkspace(id) + "/"
		names, err := w.fs.List()
		if err != nil {
			return
		}
		for _, name := range names {
			if strings.HasPrefix(name, prefix) {
				w.fs.Remove(name)
			}
		}
	}()
}

// report delivers an attempt report, stamping the worker's cumulative
// gauges last so the fleet's view is current: RPC retries spent
// (including on this report's predecessors) and checksum-failed
// fetches, which live on failed attempts whose stats are discarded.
func (w *worker) report(ctx context.Context, rep *ReportArgs) error {
	rep.RPCRetries = w.client.Retries()
	rep.IntegrityFaults = w.integrity.Load()
	var rr ReportReply
	return w.client.Call(ctx, "Cluster.Report", rep, &rr)
}

func (w *worker) cancelAttempt(aid AttemptID) {
	w.mu.Lock()
	cancel := w.running[aid]
	w.mu.Unlock()
	if cancel != nil {
		cancel()
	}
}

// cancelAll revokes every running attempt (drain timeout).
func (w *worker) cancelAll() {
	w.mu.Lock()
	cancels := make([]context.CancelFunc, 0, len(w.running))
	for _, cancel := range w.running {
		cancels = append(cancels, cancel)
	}
	w.mu.Unlock()
	for _, cancel := range cancels {
		cancel()
	}
}

// runLease executes one task attempt and builds its report. All
// failures are reported rather than returned: the fleet owns retry
// policy.
func (w *worker) runLease(ctx context.Context, l TaskLease) *ReportArgs {
	rep := &ReportArgs{WorkerID: w.id, JobID: l.JobID, Task: l.Task, Attempt: l.Attempt}
	wj, err := w.getJob(ctx, l.JobID)
	if err != nil {
		rep.Errmsg = err.Error()
		rep.Transient = ctx.Err() == nil
		return rep
	}
	aid := AttemptID{Job: l.JobID, Task: l.Task, Attempt: l.Attempt}
	actx, acancel := context.WithCancel(ctx)
	w.mu.Lock()
	w.running[aid] = acancel
	w.mu.Unlock()
	defer func() {
		acancel()
		w.mu.Lock()
		delete(w.running, aid)
		w.mu.Unlock()
	}()

	// Fresh counters and disk meter per attempt: the report's Stats is a
	// clean delta, and only committed attempts are summed job-side.
	counters := &mr.Counters{}
	meter := &iokit.Meter{}
	afs := iokit.Metered(w.fs, meter)
	counters.SetDiskMeter(meter)

	t0 := time.Now()
	err = nil
	switch l.Group {
	case mr.TaskGroupMap:
		var split mr.Split
		if l.Input != nil {
			// Stage jobs carry their input on the lease (inline records or
			// a handoff reference) instead of registry-built splits.
			split, err = w.stageSplit(actx, wj, l, rep)
			if err != nil {
				break
			}
		} else if l.MapTask < 0 || l.MapTask >= len(wj.splits) {
			err = fmt.Errorf("cluster: job %d has no split %d", l.JobID, l.MapTask)
			break
		} else {
			split = wj.splits[l.MapTask]
		}
		var segs []mr.SegmentInfo
		segs, err = mr.ExecMapTask(actx, wj.job, afs, counters, l.MapTask, l.Attempt, split)
		for _, s := range segs {
			rep.Segs = append(rep.Segs, SegInfo{
				Addr: w.srv.Addr(), File: s.File, Partition: s.Partition,
				Records: s.Records, RawBytes: s.RawBytes,
			})
		}

	case mr.TaskGroupFetch:
		err = w.runFetch(actx, wj, l, rep, counters)
		counters.AddReduceCPU(time.Since(t0)) // fetch work is reduce-phase time

	case mr.TaskGroupReduce:
		var locals []mr.SegmentInfo
		for i, s := range l.Locals {
			if _, serr := w.fs.Size(s.File); serr != nil {
				rep.LostDeps = appendUnique(rep.LostDeps, l.LocalTasks[i])
				continue
			}
			locals = append(locals, mr.SegmentInfo{
				Partition: s.Partition, File: s.File,
				Records: s.Records, RawBytes: s.RawBytes,
			})
		}
		if len(rep.LostDeps) > 0 {
			rep.Errmsg = fmt.Sprintf("cluster: %d reduce input segments missing locally", len(rep.LostDeps))
			return rep
		}
		var recs []mr.Record
		recs, err = mr.ExecReduceTask(actx, wj.job, afs, counters, l.Partition, l.Attempt, locals)
		if err != nil {
			break
		}
		if l.Keep {
			// The output feeds a later pipeline stage: retain it here as a
			// handoff file (attempt-scoped, so a speculative loser's write
			// cannot clobber the winner's) and report its location instead
			// of shipping the records to the driver.
			name := fmt.Sprintf("%s/handoff/p%04d.a%d", wj.job.Workspace, l.Partition, l.Attempt)
			if err = mr.WriteRecordFile(afs, name, recs); err != nil {
				break
			}
			var raw int64
			for _, r := range recs {
				raw += int64(len(r.Key) + len(r.Value))
			}
			rep.Handoff = &SegInfo{
				Addr: w.srv.Addr(), File: name, Partition: l.Partition,
				Records: int64(len(recs)), RawBytes: raw,
			}
		} else {
			rep.Records = recs
		}
	}

	rep.DurNs = time.Since(t0).Nanoseconds()
	rep.Stats = counters.Snapshot()
	rep.PoolDials = w.pool.Dials()
	rep.ServedBytes = w.serveMeter.ReadBytes()
	if err != nil {
		rep.Errmsg = err.Error()
		// Cancelled attempts are not worth retrying (the fleet revoked
		// them) — unless the cancellation was this worker's own drain
		// timeout handing the attempt back for another worker to run.
		rep.Transient = actx.Err() == nil || w.drainKill.Load()
	}
	return rep
}

// stageSplit materializes a stage map lease's input as an mr.Split:
// inline records become a MemSplit; a handoff reference resolves to the
// local record file when this worker holds it (the common, pinned case
// — zero bytes moved between stages), and is otherwise pulled from the
// holder's segment server into this job's workspace. A failed pull
// marks the holder unreachable, feeding the fleet's liveness evidence.
func (w *worker) stageSplit(ctx context.Context, wj *workerJob, l TaskLease, rep *ReportArgs) (mr.Split, error) {
	in := l.Input
	if in.Handoff == nil {
		return &mr.MemSplit{Recs: in.Records}, nil
	}
	h := in.Handoff
	if _, err := w.fs.Size(h.File); err == nil {
		return &mr.RecordFileSplit{FS: w.fs, Name: h.File}, nil
	}
	local := fmt.Sprintf("%s/handin/m%04d.a%d", wj.job.Workspace, l.MapTask, l.Attempt)
	rc, size, err := w.fetcher.Fetch(ctx, h.Addr, h.File)
	if err != nil {
		rep.Unreachable = appendUnique(rep.Unreachable, h.Addr)
		return nil, fmt.Errorf("cluster: fetching handoff %s from %s: %w", h.File, h.Addr, err)
	}
	f, err := w.fs.Create(local)
	if err != nil {
		rc.Close()
		return nil, err
	}
	// Handoff files are length-framed record files, not CRC32C-framed
	// segments, so the transfer is guarded by the size check (and the
	// record framing itself, which a truncated read trips on) rather
	// than the segment integrity verifier.
	n, err := io.Copy(f, rc)
	rc.Close()
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil && n != size {
		err = fmt.Errorf("fetched %d bytes, want %d", n, size)
	}
	if err != nil {
		w.fs.Remove(local)
		rep.Unreachable = appendUnique(rep.Unreachable, h.Addr)
		return nil, fmt.Errorf("cluster: copying handoff %s from %s: %w", h.File, h.Addr, err)
	}
	return &mr.RecordFileSplit{FS: w.fs, Name: local}, nil
}

// runFetch pulls the lease's source segments from peer segment servers
// into worker-local files — the cluster analogue of the pipelined
// scheduler's fetch tasks, with real sockets underneath. Local names
// live under the job's workspace so concurrent jobs sharing this
// worker's filesystem cannot collide. Unless the job disables
// checksums, every fetched byte passes through the CRC32C verifier
// before landing on disk, so a corrupted transfer is a fetch failure
// (feeding the fleet's unreachable blacklist), never a poisoned reduce
// input. A failed attempt removes every file it wrote, so retries
// cannot leak partial segments.
func (w *worker) runFetch(ctx context.Context, wj *workerJob, l TaskLease, rep *ReportArgs, counters *mr.Counters) error {
	var transferTime time.Duration
	var local []string
	cleanup := func(current string) {
		if current != "" {
			w.fs.Remove(current)
		}
		for _, name := range local {
			w.fs.Remove(name)
		}
	}
	for i, src := range l.Sources {
		fst := time.Now()
		rc, size, err := w.fetcher.Fetch(ctx, src.Addr, src.File)
		if err != nil {
			cleanup("")
			rep.Unreachable = appendUnique(rep.Unreachable, src.Addr)
			return fmt.Errorf("cluster: fetching %s from %s: %w", src.File, src.Addr, err)
		}
		name := fmt.Sprintf("%s/shuffle/r%04d/m%04d.a%d.%02d",
			wj.job.Workspace, l.Partition, l.MapIndex, l.Attempt, i)
		f, err := w.fs.Create(name)
		if err != nil {
			rc.Close()
			cleanup("")
			return err
		}
		var from io.Reader = rc
		if !wj.job.DisableChecksums {
			from = mr.NewIntegrityVerifier(rc)
		}
		n, err := io.Copy(f, from)
		if err == nil {
			if wire, ok := mr.WireBytes(rc); ok {
				counters.AddExtra(mr.CounterShuffleRawBytes, n)
				counters.AddExtra(mr.CounterShuffleWireBytes, wire)
			}
		}
		rc.Close()
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			if errors.Is(err, mr.ErrIntegrity) {
				w.integrity.Add(1)
			}
			cleanup(name)
			rep.Unreachable = appendUnique(rep.Unreachable, src.Addr)
			return fmt.Errorf("cluster: copying %s from %s: %w", src.File, src.Addr, err)
		}
		if n != size {
			cleanup(name)
			rep.Unreachable = appendUnique(rep.Unreachable, src.Addr)
			return fmt.Errorf("cluster: fetched %d bytes of %s from %s, want %d", n, src.File, src.Addr, size)
		}
		local = append(local, name)
		transferTime += time.Since(fst)
		counters.AddShuffle(n, src.Records)
		rep.FlowBytes += n
		rep.Segs = append(rep.Segs, SegInfo{
			Addr: w.srv.Addr(), File: name, Partition: src.Partition,
			Records: src.Records, RawBytes: src.RawBytes,
		})
	}
	rep.FetchNs = transferTime.Nanoseconds()
	rep.Fetches = len(l.Sources)
	return nil
}

func appendUnique(list []string, s string) []string {
	for _, have := range list {
		if have == s {
			return list
		}
	}
	return append(list, s)
}
