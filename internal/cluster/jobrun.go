package cluster

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/mr"
	"repro/internal/obs"
	"repro/internal/sched"
)

// JobSpec describes one job submission to a fleet.
type JobSpec struct {
	// Ref names the registry job to run.
	Ref JobRef
	// Tenant is the fair-share accounting bucket (default "default"):
	// lease dispatch equalizes running-lease share across tenants.
	Tenant string
	// Weight scales the tenant's fair share (default 1); dispatch
	// compares running/weight across tenants, so a weight-2 job's tenant
	// sustains twice the running leases of a weight-1 tenant under
	// contention.
	Weight int
	// Priority breaks fair-share ties, higher first.
	Priority int
	// MaxTaskAttempts caps attempts per task, counting both retries and
	// re-executions after output loss (default 4).
	MaxTaskAttempts int
	// Speculative enables speculative duplicates of straggling map tasks.
	Speculative bool
	// Exclusive marks the classic one-shot shape (one fleet, one job):
	// the scheduler is bounded to the fleet's slot count, and the fleet's
	// worker-wide gauges (pool dials, serve-side disk reads, RPC retries,
	// integrity faults) are folded into the Result — attributable only
	// when no other job shares the workers.
	Exclusive bool
	// Inputs, when non-empty, makes this a pipeline stage job: one map
	// task per entry, fed from the entry (inline records or a retained
	// handoff) instead of registry-built splits. The registry builder may
	// then return zero splits.
	Inputs []StageInput
	// KeepOutput retains reduce output as per-partition handoff files in
	// the job's worker workspaces (reported via JobHandle.Handoffs)
	// instead of shipping records to the driver — the no-re-spill path a
	// downstream stage consumes.
	KeepOutput bool
	// RetainWorkspace defers the finished job's workspace sweep until
	// Fleet.ReleaseWorkspace — required while a later stage still reads
	// this job's handoff files.
	RetainWorkspace bool
	// Homes seeds partition→worker placement (a previous stage's homes),
	// so a stage's fetches and reduces land where its inputs already
	// live. Dead or unknown workers are re-elected as usual.
	Homes map[int]int
	// OnEvent, when non-nil, observes this job's task events (in addition
	// to the fleet's OnEvent). It must not call back into the fleet.
	OnEvent func(Event)
}

func (s JobSpec) normalized() JobSpec {
	if s.Tenant == "" {
		s.Tenant = "default"
	}
	if s.Weight <= 0 {
		s.Weight = 1
	}
	if s.MaxTaskAttempts <= 0 {
		s.MaxTaskAttempts = 4
	}
	return s
}

// Progress is a job's task-level completion snapshot.
type Progress struct {
	MapsDone       int `json:"maps_done"`
	MapsTotal      int `json:"maps_total"`
	FetchesDone    int `json:"fetches_done"`
	FetchesTotal   int `json:"fetches_total"`
	ReducesDone    int `json:"reduces_done"`
	ReducesTotal   int `json:"reduces_total"`
	TasksDone      int `json:"tasks_done"`
	TasksTotal     int `json:"tasks_total"`
	FailedAttempts int `json:"failed_attempts"`
}

// JobHandle tracks one submitted job.
type JobHandle struct {
	id   int
	j    *jobRun
	done chan struct{}
	res  *mr.Result
	err  error
}

// ID is the fleet-assigned job id (also the job's workspace name on
// workers: "j%06d").
func (h *JobHandle) ID() int { return h.id }

// Done is closed when the job finishes (either way).
func (h *JobHandle) Done() <-chan struct{} { return h.done }

// Wait blocks until the job finishes and returns its result.
func (h *JobHandle) Wait(ctx context.Context) (*mr.Result, error) {
	select {
	case <-h.done:
		return h.res, h.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// Progress reports the job's current task completion.
func (h *JobHandle) Progress() Progress { return h.j.progress() }

// Handoff locates one kept reduce partition: the worker that holds it
// and the segment describing the retained record file.
type Handoff struct {
	Worker int
	Seg    SegInfo
}

// Handoffs returns the finished job's kept reduce output by partition
// (KeepOutput jobs only; nil otherwise). Valid after Done.
func (h *JobHandle) Handoffs() map[int]Handoff {
	h.j.pmu.Lock()
	defer h.j.pmu.Unlock()
	if h.j.handoffs == nil {
		return nil
	}
	out := make(map[int]Handoff, len(h.j.handoffs))
	for p, hd := range h.j.handoffs {
		out[p] = hd
	}
	return out
}

// Homes returns the job's final partition→worker placement, for seeding
// the next stage's JobSpec.Homes. Valid after Done.
func (h *JobHandle) Homes() map[int]int {
	f := h.j.fleet
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make(map[int]int, len(h.j.partHome))
	for p, w := range h.j.partHome {
		out[p] = w
	}
	return out
}

// Submit registers a job with the fleet and starts running it under
// ctx; cancelling ctx cancels the job (running attempts are revoked on
// workers via heartbeat). The job starts as soon as workers are
// available — Submit itself never blocks on fleet capacity.
func (f *Fleet) Submit(ctx context.Context, spec JobSpec) (*JobHandle, error) {
	spec = spec.normalized()
	job, splits, err := BuildJob(spec.Ref)
	if err != nil {
		return nil, err
	}
	nMap := len(splits)
	if len(spec.Inputs) > 0 {
		// Stage jobs take their inputs from the spec, not the registry.
		nMap = len(spec.Inputs)
	} else if nMap == 0 {
		return nil, fmt.Errorf("cluster: job %q built zero splits", spec.Ref.Name)
	}
	nRed := job.NumReduceTasks
	if nRed <= 0 {
		nRed = 4 // mirror mr's normalization default
	}
	if job.AlignedInput && nMap != nRed {
		return nil, fmt.Errorf("cluster: aligned job %q needs %d inputs, got %d", spec.Ref.Name, nRed, nMap)
	}
	f.mu.Lock()
	if f.shutdown {
		f.mu.Unlock()
		return nil, errors.New("cluster: fleet is shutting down")
	}
	id := f.nextJob
	f.nextJob++
	j := &jobRun{
		id: id, spec: spec, fleet: f, weight: spec.Weight,
		nMap: nMap, nRed: nRed,
		aligned:  job.AlignedInput,
		keep:     spec.KeepOutput,
		meta:     make(map[string]taskMeta),
		partHome: make(map[int]int),
		doneTask: make(map[string]bool),
	}
	for p, wid := range spec.Homes {
		if w := f.workers[wid]; w != nil && !w.dead && !w.draining && p >= 0 && p < nRed {
			j.partHome[p] = wid
		}
	}
	f.jobs[id] = j
	width := f.totalSlotsLocked()
	f.mu.Unlock()

	h := &JobHandle{id: id, j: j, done: make(chan struct{})}
	go func() {
		defer close(h.done)
		h.res, h.err = j.run(ctx, width)
		f.finishJob(j)
	}()
	return h, nil
}

// ErrHandoffLost marks a stage job whose handoff input died with its
// holding worker. It is terminal for this job — the upstream stage's
// output is gone, and only the pipeline runner (which still owns the
// producing stage) can re-run it; dag.Runner converts it into a
// stage-level DepLostError.
var ErrHandoffLost = errors.New("cluster: stage handoff input lost")

type taskMeta struct {
	group     string
	mapTask   int
	partition int
	mapIndex  int
}

// jobRun is one job's private half of the runtime: its task graph and
// metadata, partition homes, progress counters, and result assembly.
// It implements sched.Executor — the job's own scheduler calls Execute,
// which queues a lease with the fleet and blocks for the report.
// partHome and enqueue/dispatch state are guarded by the fleet's mutex;
// progress counters by the job's own.
type jobRun struct {
	id      int
	spec    JobSpec
	fleet   *Fleet
	weight  int
	nMap    int
	nRed    int
	aligned bool // split i's map output routes wholly to partition i
	keep    bool // reduce output retained worker-side as handoff files
	meta    map[string]taskMeta

	partHome map[int]int // reduce partition -> home worker id; fleet.mu

	pmu      sync.Mutex
	doneTask map[string]bool
	failed   int
	handoffs map[int]Handoff // kept reduce output, by partition
}

// fetchTasks enumerates the (partition, map) fetch pairs the job's
// graph contains: all-to-all normally, the diagonal alone when aligned.
func (j *jobRun) fetchTasks(p int) []int {
	if j.aligned {
		return []int{p}
	}
	idx := make([]int, j.nMap)
	for i := range idx {
		idx[i] = i
	}
	return idx
}

func (j *jobRun) progress() Progress {
	j.pmu.Lock()
	defer j.pmu.Unlock()
	fetchesTotal := j.nMap * j.nRed
	if j.aligned {
		fetchesTotal = j.nRed
	}
	p := Progress{
		MapsTotal: j.nMap, FetchesTotal: fetchesTotal, ReducesTotal: j.nRed,
		FailedAttempts: j.failed,
	}
	for name := range j.doneTask {
		switch j.meta[name].group {
		case mr.TaskGroupMap:
			p.MapsDone++
		case mr.TaskGroupFetch:
			p.FetchesDone++
		case mr.TaskGroupReduce:
			p.ReducesDone++
		}
	}
	p.TasksDone = p.MapsDone + p.FetchesDone + p.ReducesDone
	p.TasksTotal = p.MapsTotal + p.FetchesTotal + p.ReducesTotal
	return p
}

func (j *jobRun) event(e Event) {
	j.fleet.event(e)
	if j.spec.OnEvent != nil {
		j.spec.OnEvent(e)
	}
}

// run executes the job's task graph through the fleet and assembles an
// mr.Result whose output is byte-identical to a single-process run of
// the same job — MeasuredShuffle additionally records the real network
// transfer.
func (j *jobRun) run(ctx context.Context, width int) (*mr.Result, error) {
	start := time.Now()
	tracer := j.fleet.cfg.Tracer
	jobSpan := tracer.Start(obs.KindJob, j.spec.Ref.Name+" (cluster)",
		obs.Int("job", int64(j.id)),
		obs.Int("splits", int64(j.nMap)), obs.Int("reducers", int64(j.nRed)))

	tasks := j.buildTasks()
	if !j.spec.Exclusive {
		// Expose every runnable task to the fleet so fair share picks
		// among all jobs' work; the fleet's slot count, not the
		// scheduler's worker bound, is the real concurrency limit.
		width = len(tasks)
	}
	cfg := sched.Config{
		Workers:     width,
		MaxAttempts: j.spec.MaxTaskAttempts,
		Speculate:   j.spec.Speculative,
		Tracer:      tracer,
		Executor:    j,
		Retryable: func(err error) bool {
			var te *taskError
			return errors.As(err, &te) && te.Transient
		},
	}
	report, err := sched.Run(ctx, tasks, cfg)
	if err != nil {
		jobSpan.End(obs.Str("outcome", "failed"), obs.Str("err", err.Error()))
		return nil, err
	}
	res := j.assemble(report, start)
	jobSpan.End(obs.Str("outcome", "success"),
		obs.Int("measured_shuffle_bytes", res.MeasuredShuffle.Bytes))
	return res, nil
}

// buildTasks lays out the same DAG as the in-process pipelined
// scheduler — map/i → fetch/p/i → reduce/p — with nil Run closures, so
// every attempt dispatches through Execute.
func (j *jobRun) buildTasks() []sched.Task {
	tasks := make([]sched.Task, 0, j.nMap+j.nMap*j.nRed+j.nRed)
	for i := 0; i < j.nMap; i++ {
		name := mr.MapTaskName(i)
		j.meta[name] = taskMeta{group: mr.TaskGroupMap, mapTask: i}
		tasks = append(tasks, sched.Task{
			Name: name, Group: mr.TaskGroupMap, Speculatable: j.spec.Speculative,
		})
	}
	for p := 0; p < j.nRed; p++ {
		for _, i := range j.fetchTasks(p) {
			name := mr.FetchTaskName(p, i)
			j.meta[name] = taskMeta{group: mr.TaskGroupFetch, partition: p, mapIndex: i}
			tasks = append(tasks, sched.Task{
				Name: name, Group: mr.TaskGroupFetch, Deps: []string{mr.MapTaskName(i)},
			})
		}
	}
	for p := 0; p < j.nRed; p++ {
		name := mr.ReduceTaskName(p)
		j.meta[name] = taskMeta{group: mr.TaskGroupReduce, partition: p}
		idx := j.fetchTasks(p)
		deps := make([]string, len(idx))
		for d, i := range idx {
			deps[d] = mr.FetchTaskName(p, i)
		}
		tasks = append(tasks, sched.Task{Name: name, Group: mr.TaskGroupReduce, Deps: deps})
	}
	return tasks
}

// Committed task values. Stats ride inside them so only winning
// attempts contribute to job stats (a speculative loser's snapshot is
// discarded with its value).
type mapValue struct {
	worker int
	addr   string
	segs   []SegInfo
	stats  mr.Stats
	dur    time.Duration
}

type fetchValue struct {
	worker    int
	segs      []SegInfo
	flow      int64
	fetchTime time.Duration
	fetches   int
	stats     mr.Stats
}

type reduceValue struct {
	worker  int
	recs    []mr.Record
	handoff *SegInfo // set instead of recs when the lease carried Keep
	stats   mr.Stats
	dur     time.Duration
}

// Execute implements sched.Executor: queue the task as a lease with the
// fleet (pinned to the partition home for fetch and reduce tasks),
// block for the worker's report (or cancellation), and translate the
// outcome into the scheduler's vocabulary — including DepLostError when
// committed upstream output turns out to live on a dead worker.
func (j *jobRun) Execute(ctx context.Context, task *sched.Task, tc *sched.TaskContext) (any, error) {
	f := j.fleet
	meta := j.meta[task.Name]
	lease := TaskLease{JobID: j.id, Task: task.Name, Group: task.Group, Attempt: tc.Attempt}
	pin := -1

	f.mu.Lock()
	if f.shutdown {
		f.mu.Unlock()
		return nil, &taskError{Msg: "cluster: fleet is shutting down", Transient: false}
	}
	switch meta.group {
	case mr.TaskGroupMap:
		lease.MapTask = meta.mapTask // any worker may take it
		if len(j.spec.Inputs) > 0 {
			in := j.spec.Inputs[meta.mapTask]
			lease.Input = &in
			if in.Handoff != nil {
				// A handoff input lives on the worker that reduced the
				// previous stage. Pin the lease there when it is alive so
				// stage-to-stage data never moves; a draining holder still
				// serves segment fetches, so any worker can pull the file
				// remotely. A dead holder means the bytes are gone — only
				// the pipeline runner can rebuild them.
				switch holder := f.workers[in.Worker]; {
				case holder == nil || holder.dead:
					f.mu.Unlock()
					return nil, fmt.Errorf("%w: map %d input on dead worker %d",
						ErrHandoffLost, meta.mapTask, in.Worker)
				case !holder.draining:
					pin = holder.id
				}
			}
		}

	case mr.TaskGroupFetch:
		mv, ok := tc.Dep(mr.MapTaskName(meta.mapIndex)).(mapValue)
		if !ok {
			f.mu.Unlock()
			return nil, fmt.Errorf("cluster: fetch %s missing map value", task.Name)
		}
		if src := f.workers[mv.worker]; src == nil || src.dead {
			f.mu.Unlock()
			return nil, &sched.DepLostError{
				Deps: []string{mr.MapTaskName(meta.mapIndex)},
				Err:  fmt.Errorf("cluster: worker %d holding map output is dead", mv.worker),
			}
		}
		lease.Partition = meta.partition
		lease.MapIndex = meta.mapIndex
		for _, s := range mv.segs {
			if s.Partition == meta.partition {
				lease.Sources = append(lease.Sources, s)
			}
		}
		home := j.homeLocked(meta.partition)
		if home == nil {
			f.mu.Unlock()
			return nil, &taskError{Msg: "cluster: no live workers", Transient: true}
		}
		if len(lease.Sources) == 0 {
			// Nothing to move for this (partition, map) pair: commit an
			// empty fetch value on the home worker without a round trip.
			id := home.id
			f.mu.Unlock()
			return fetchValue{worker: id}, nil
		}
		pin = home.id

	case mr.TaskGroupReduce:
		home, lost, locals, localTasks := j.reduceInputsLocked(meta.partition, tc)
		if len(lost) > 0 {
			f.mu.Unlock()
			return nil, &sched.DepLostError{
				Deps: lost,
				Err:  fmt.Errorf("cluster: partition %d inputs scattered or on dead workers", meta.partition),
			}
		}
		if home == nil {
			f.mu.Unlock()
			return nil, &taskError{Msg: "cluster: no live workers", Transient: true}
		}
		lease.Partition = meta.partition
		lease.Locals = locals
		lease.LocalTasks = localTasks
		lease.Keep = j.keep
		pin = home.id
	}

	key := AttemptID{Job: j.id, Task: task.Name, Attempt: tc.Attempt}
	pend := &pendingLease{job: j, worker: -1, ch: make(chan *ReportArgs, 1)}
	ql := &queuedLease{job: j, lease: lease, pin: pin, pend: pend, seq: f.seq}
	f.seq++
	pend.ql = ql
	f.pending[key] = pend
	f.enqueueLocked(ql)
	f.mu.Unlock()

	select {
	case rep := <-pend.ch:
		return j.settle(task, pend, rep)
	case <-ctx.Done():
		// Revoke: a granted lease is aborted by its worker on the next
		// heartbeat; a queued one is simply pruned.
		f.dropLease(key, pend)
		return nil, ctx.Err()
	}
}

// homeLocked returns partition p's home worker, electing a new one if
// none is assigned or the previous home died or drained. All of a
// partition's fetch and reduce leases go to its home, so reduce inputs
// are local. Election is least-loaded across live workers.
func (j *jobRun) homeLocked(p int) *workerState {
	f := j.fleet
	if id, ok := j.partHome[p]; ok {
		if w := f.workers[id]; w != nil && !w.dead && !w.draining {
			return w
		}
	}
	var best *workerState
	for _, w := range f.workers {
		if w.dead || w.draining {
			continue
		}
		if best == nil || w.outstanding < best.outstanding ||
			(w.outstanding == best.outstanding && w.id < best.id) {
			best = w
		}
	}
	if best != nil {
		j.partHome[p] = best.id
	}
	return best
}

// reduceInputsLocked validates that every fetch value for partition p
// is local to the partition's current live home, returning the lost
// fetch task names otherwise.
func (j *jobRun) reduceInputsLocked(p int, tc *sched.TaskContext) (home *workerState, lost []string, locals []SegInfo, localTasks []string) {
	f := j.fleet
	if id, ok := j.partHome[p]; ok {
		if w := f.workers[id]; w != nil && !w.dead && !w.draining {
			home = w
		}
	}
	for _, i := range j.fetchTasks(p) {
		name := mr.FetchTaskName(p, i)
		fv, ok := tc.Dep(name).(fetchValue)
		if !ok {
			lost = append(lost, name)
			continue
		}
		if home == nil || fv.worker != home.id {
			lost = append(lost, name)
			continue
		}
		for _, s := range fv.segs {
			locals = append(locals, s)
			localTasks = append(localTasks, name)
		}
	}
	return home, lost, locals, localTasks
}

// settle turns a worker's report into Execute's return value.
func (j *jobRun) settle(task *sched.Task, pend *pendingLease, rep *ReportArgs) (any, error) {
	f := j.fleet
	now := time.Now()
	if f.cfg.Tracer != nil && !pend.granted.IsZero() {
		f.cfg.Tracer.Record(obs.KindLease, task.Name, pend.granted, now,
			obs.Int("job", int64(j.id)), obs.Int("worker", int64(rep.WorkerID)),
			obs.Str("group", task.Group), obs.Bool("ok", rep.Errmsg == ""))
	}
	if rep.Errmsg != "" {
		f.noteUnreachable(rep.Unreachable)
		j.pmu.Lock()
		j.failed++
		j.pmu.Unlock()
		j.event(Event{Kind: "task-failed", Worker: rep.WorkerID, Job: j.id,
			Task: task.Name, Attempt: rep.Attempt, Detail: rep.Errmsg})
		if len(rep.LostDeps) > 0 {
			return nil, &sched.DepLostError{Deps: rep.LostDeps, Err: errors.New(rep.Errmsg)}
		}
		return nil, &taskError{Msg: rep.Errmsg, Transient: rep.Transient}
	}
	j.pmu.Lock()
	j.doneTask[task.Name] = true
	j.pmu.Unlock()
	j.event(Event{Kind: "task-done", Worker: rep.WorkerID, Job: j.id,
		Task: task.Name, Attempt: rep.Attempt})
	switch task.Group {
	case mr.TaskGroupMap:
		var addr string
		f.mu.Lock()
		if w := f.workers[rep.WorkerID]; w != nil {
			addr = w.dataAddr
		}
		f.mu.Unlock()
		return mapValue{
			worker: rep.WorkerID, addr: addr, segs: rep.Segs,
			stats: rep.Stats, dur: time.Duration(rep.DurNs),
		}, nil
	case mr.TaskGroupFetch:
		return fetchValue{
			worker: rep.WorkerID, segs: rep.Segs, flow: rep.FlowBytes,
			fetchTime: time.Duration(rep.FetchNs), fetches: rep.Fetches,
			stats: rep.Stats,
		}, nil
	default:
		return reduceValue{
			worker: rep.WorkerID, recs: rep.Records, handoff: rep.Handoff,
			stats: rep.Stats, dur: time.Duration(rep.DurNs),
		}, nil
	}
}

// assemble builds the job Result from committed task values.
func (j *jobRun) assemble(report *sched.Report, start time.Time) *mr.Result {
	res := &mr.Result{
		Output:              make([][]mr.Record, j.nRed),
		ShufflePerPartition: make([]int64, j.nRed),
		ReduceTaskTimes:     make([]time.Duration, j.nRed),
		MapTaskTimes:        make([]time.Duration, j.nMap),
		Timeline:            report.Attempts,
	}
	var stats mr.Stats
	meas := &mr.ShuffleMeasurement{}
	for i := 0; i < j.nMap; i++ {
		mv := report.Value(mr.MapTaskName(i)).(mapValue)
		stats.Accumulate(mv.stats)
		res.MapTaskTimes[i] = mv.dur
	}
	for p := 0; p < j.nRed; p++ {
		for _, i := range j.fetchTasks(p) {
			fv := report.Value(mr.FetchTaskName(p, i)).(fetchValue)
			stats.Accumulate(fv.stats)
			res.ShufflePerPartition[p] += fv.flow
			meas.Bytes += fv.flow
			meas.FetchTime += fv.fetchTime
			meas.Fetches += fv.fetches
		}
		rv := report.Value(mr.ReduceTaskName(p)).(reduceValue)
		stats.Accumulate(rv.stats)
		res.Output[p] = rv.recs // nil when the partition was kept as a handoff
		res.ReduceTaskTimes[p] = rv.dur
		if rv.handoff != nil {
			j.pmu.Lock()
			if j.handoffs == nil {
				j.handoffs = make(map[int]Handoff, j.nRed)
			}
			j.handoffs[p] = Handoff{Worker: rv.worker, Seg: *rv.handoff}
			j.pmu.Unlock()
		}
	}
	if s, e, ok := sched.Span(report.Attempts, mr.TaskGroupFetch); ok {
		meas.Extent = e.Sub(s)
	}
	// Worker-wide gauges (pool dials, serve-side disk reads, RPC
	// retries, integrity faults) are fleet-scoped: a worker serves many
	// jobs, so only an Exclusive job can claim them in its Result.
	if j.spec.Exclusive {
		f := j.fleet
		f.mu.Lock()
		var rpcRetries, integrity int64
		for _, w := range f.workers {
			meas.Dials += w.lastDials
			// Serve-side reads happen on the producing worker's disk,
			// outside any attempt's metered view; fold the gauge in.
			stats.DiskReadBytes += w.lastServed
			rpcRetries += w.lastRPCRetries
			integrity += w.lastIntegrity
		}
		f.mu.Unlock()
		if rpcRetries > 0 || integrity > 0 {
			if stats.Extra == nil {
				stats.Extra = make(map[string]int64, 2)
			}
			if rpcRetries > 0 {
				stats.Extra[CounterRPCRetries] += rpcRetries
			}
			if integrity > 0 {
				stats.Extra[mr.CounterFetchIntegrity] += integrity
			}
		}
	}
	stats.WallTime = time.Since(start)
	res.Stats = stats
	res.MeasuredShuffle = meas
	return res
}
