package cluster

import (
	"context"
	"fmt"
	"testing"
	"time"

	"repro/internal/iokit"
)

// fleetWorkers starts n in-process workers on tracked filesystems and
// returns their trackers plus a channel carrying each worker's exit
// error.
func fleetWorkers(t *testing.T, ctx context.Context, f *Fleet, n, slots int) ([]*iokit.TrackFS, chan error) {
	t.Helper()
	trackers := make([]*iokit.TrackFS, n)
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		trackers[i] = &iokit.TrackFS{Inner: iokit.NewMemFS()}
		fs := trackers[i]
		go func() {
			errs <- RunWorker(ctx, WorkerOptions{Coordinator: f.Addr(), Slots: slots, FS: fs})
		}()
	}
	if err := f.WaitWorkers(ctx, n); err != nil {
		t.Fatal(err)
	}
	return trackers, errs
}

// TestFleetConcurrentJobsByteIdentical runs nine jobs from three
// tenants concurrently over one three-worker fleet. Every job's output
// must be byte-identical to its own single-process run, and when the
// fleet retires the jobs the workers' shared filesystems must come
// back empty (per-job workspace sweeps) with zero leaked handles.
func TestFleetConcurrentJobsByteIdentical(t *testing.T) {
	// Generous miss tolerance: under -race, nine concurrent jobs can
	// stall a heartbeat goroutine past the production default, and a
	// spuriously dead worker (correctly) never gets cleanup announcements.
	f, err := NewFleet(FleetConfig{HeartbeatEvery: 50 * time.Millisecond, HeartbeatMiss: 40})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	trackers, workerErr := fleetWorkers(t, ctx, f, 3, 2)

	tenants := []string{"analytics", "adhoc", "batch"}
	const nJobs = 9
	refs := make([]JobRef, nJobs)
	handles := make([]*JobHandle, nJobs)
	for i := range refs {
		// Distinct specs so jobs cannot accidentally share output.
		refs[i] = JobRef{Name: testJobName, Spec: mustSpec(t, testSpec{
			Splits: 4, Lines: 60 + 10*i, Reducers: 3,
		})}
		h, err := f.Submit(ctx, JobSpec{
			Ref:    refs[i],
			Tenant: tenants[i%len(tenants)],
			Weight: 1 + i%2,
		})
		if err != nil {
			t.Fatal(err)
		}
		handles[i] = h
	}
	for i, h := range handles {
		res, err := h.Wait(ctx)
		if err != nil {
			t.Fatalf("job %d failed: %v", i, err)
		}
		assertSameOutput(t, res, singleProcessRun(t, refs[i]))
		p := h.Progress()
		if p.TasksDone != p.TasksTotal || p.TasksTotal == 0 {
			t.Errorf("job %d progress %d/%d, want complete", i, p.TasksDone, p.TasksTotal)
		}
	}

	// Cleanup announcements ride heartbeats; poll until every worker's
	// filesystem is swept empty.
	deadline := time.Now().Add(10 * time.Second)
	for i, tr := range trackers {
		for {
			files, err := tr.List()
			if err != nil {
				t.Fatal(err)
			}
			if len(files) == 0 {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("worker %d still holds %d files after job cleanup: %v", i, len(files), files[:min(len(files), 5)])
			}
			time.Sleep(20 * time.Millisecond)
		}
		if n := tr.OpenHandles(); n != 0 {
			t.Errorf("worker %d leaked %d file handles", i, n)
		}
	}

	f.Shutdown()
	for i := 0; i < 3; i++ {
		if err := <-workerErr; err != nil {
			t.Errorf("worker: %v", err)
		}
	}
}

// TestFleetFairShare exercises the dispatch comparator directly: the
// tenant with the smaller weighted share of running leases wins, ties
// fall to priority then FIFO order.
func TestFleetFairShare(t *testing.T) {
	f := &Fleet{running: map[string]int{"a": 4, "b": 1}}
	mk := func(tenant string, weight, prio int, seq int64) *queuedLease {
		return &queuedLease{
			job: &jobRun{spec: JobSpec{Tenant: tenant, Priority: prio}, weight: weight},
			seq: seq,
		}
	}
	if !f.betterLocked(mk("b", 1, 0, 9), mk("a", 1, 0, 1)) {
		t.Error("tenant b (1 running) should beat tenant a (4 running)")
	}
	// Weight 4 tenant a: share 4/4 = 1 = b's 1/1; tie falls to FIFO.
	if !f.betterLocked(mk("a", 4, 0, 1), mk("b", 1, 0, 2)) {
		t.Error("equal weighted shares should fall through to FIFO")
	}
	if !f.betterLocked(mk("a", 4, 5, 9), mk("b", 1, 0, 1)) {
		t.Error("equal shares: higher priority should win over FIFO")
	}
	// Weight scales share: a at 4 running with weight 8 has share 1/2,
	// beating b at 1 running weight 1 (share 1).
	if !f.betterLocked(mk("a", 8, 0, 9), mk("b", 1, 0, 1)) {
		t.Error("weight should scale the running-lease share")
	}
}

// TestFleetDrainMidStream drains a worker while jobs are mid-stream:
// every job must still succeed with byte-identical output (zero job
// failures), and the drained worker must deregister and exit nil.
func TestFleetDrainMidStream(t *testing.T) {
	onEvent, ch := events()
	f, err := NewFleet(FleetConfig{HeartbeatEvery: 50 * time.Millisecond, HeartbeatMiss: 40, OnEvent: onEvent})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	_, workerErr := fleetWorkers(t, ctx, f, 3, 2)

	refs := make([]JobRef, 4)
	handles := make([]*JobHandle, len(refs))
	for i := range refs {
		refs[i] = JobRef{Name: testJobName, Spec: mustSpec(t, testSpec{
			Splits: 8, Lines: 100 + 10*i, Reducers: 3, MapDelayUs: 200,
		})}
		h, err := f.Submit(ctx, JobSpec{Ref: refs[i], Tenant: fmt.Sprintf("t%d", i%2)})
		if err != nil {
			t.Fatal(err)
		}
		handles[i] = h
	}

	// Drain the worker that commits the first map task — it holds
	// committed output other jobs' fetches still need.
	e := awaitEvent(t, ch, "first map commit", func(e Event) bool {
		return e.Kind == "task-done" && e.Task != "" && e.Detail == "" && e.Attempt >= 0 &&
			len(e.Task) > 4 && e.Task[:4] == "map/"
	})
	if !f.DrainWorker(e.Worker) {
		t.Fatalf("draining worker %d failed", e.Worker)
	}
	awaitEvent(t, ch, "worker drained", func(ev Event) bool {
		return ev.Kind == "worker-drained" && ev.Worker == e.Worker
	})

	for i, h := range handles {
		res, err := h.Wait(ctx)
		if err != nil {
			t.Fatalf("job %d failed after drain: %v", i, err)
		}
		assertSameOutput(t, res, singleProcessRun(t, refs[i]))
	}

	f.Shutdown()
	for i := 0; i < 3; i++ {
		if err := <-workerErr; err != nil {
			t.Errorf("worker: %v", err)
		}
	}
}
