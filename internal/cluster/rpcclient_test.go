package cluster

import (
	"context"
	"net"
	"strings"
	"testing"
	"time"
)

// TestRPCClientWedgedServer pins the control-plane deadline behavior: a
// server that accepts connections but never answers must not block a
// call forever. The client must time out each attempt, retry with
// backoff on a fresh connection, count the retries, and fail within a
// small multiple of the per-call timeout.
func TestRPCClientWedgedServer(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			defer conn.Close() // hold open, never respond
		}
	}()

	c := newRPCClient(ln.Addr().String(), 30*time.Millisecond)
	defer c.Close()
	start := time.Now()
	var reply HeartbeatReply
	err = c.Call(context.Background(), "Cluster.Heartbeat", &HeartbeatArgs{}, &reply)
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("call against wedged server succeeded")
	}
	if !strings.Contains(err.Error(), "timed out") {
		t.Fatalf("error does not report timeout: %v", err)
	}
	// 3 attempts x 30ms plus backoff; anything near a second means a
	// deadline was missed.
	if elapsed > 500*time.Millisecond {
		t.Fatalf("wedged call took %v, deadlines not enforced", elapsed)
	}
	if got := c.Retries(); got != int64(defaultRPCAttempts-1) {
		t.Fatalf("Retries() = %d, want %d", got, defaultRPCAttempts-1)
	}
}

// TestRPCClientCancel pins cancellation: a blocked call returns
// promptly with the context's error.
func TestRPCClientCancel(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		time.Sleep(time.Hour)
	}()

	c := newRPCClient(ln.Addr().String(), time.Hour)
	defer c.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	var reply HeartbeatReply
	start := time.Now()
	err = c.Call(ctx, "Cluster.Heartbeat", &HeartbeatArgs{}, &reply)
	if err != context.DeadlineExceeded {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 500*time.Millisecond {
		t.Fatalf("cancelled call took %v", elapsed)
	}
}
