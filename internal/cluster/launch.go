package cluster

import (
	"context"
	"fmt"
	"os"
	"os/exec"
	"strconv"
)

// Worker processes are launched by re-executing the current binary
// with these environment variables set — the test binary and antibench
// both become workers when spawned this way, so no separate worker
// binary is needed for self-hosted clusters (cmd/antwork exists for
// running workers on other machines or under other supervisors).
const (
	envWorker = "ANTCLUSTER_WORKER"
	envSlots  = "ANTCLUSTER_SLOTS"
)

// WorkerMainIfSpawned turns the current process into a cluster worker
// when it was spawned by SpawnSelf, never returning in that case. Call
// it first thing in main (or TestMain), before flag parsing.
func WorkerMainIfSpawned() {
	addr := os.Getenv(envWorker)
	if addr == "" {
		return
	}
	slots, _ := strconv.Atoi(os.Getenv(envSlots))
	if err := RunWorker(context.Background(), WorkerOptions{Coordinator: addr, Slots: slots}); err != nil {
		fmt.Fprintln(os.Stderr, "antcluster worker:", err)
		os.Exit(1)
	}
	os.Exit(0)
}

// Process is a spawned worker subprocess.
type Process struct {
	cmd *exec.Cmd
}

// SpawnSelf launches the current executable as a worker subprocess
// connected to the coordinator at addr.
func SpawnSelf(addr string, slots int) (*Process, error) {
	exe, err := os.Executable()
	if err != nil {
		return nil, err
	}
	cmd := exec.Command(exe)
	cmd.Env = append(os.Environ(),
		envWorker+"="+addr,
		envSlots+"="+strconv.Itoa(slots))
	cmd.Stdout = os.Stderr
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	return &Process{cmd: cmd}, nil
}

// Pid returns the subprocess id.
func (p *Process) Pid() int { return p.cmd.Process.Pid }

// Kill terminates the worker with SIGKILL — the failure-injection
// path: no cleanup, no deregistration, exactly like a machine loss —
// and reaps it.
func (p *Process) Kill() error {
	if err := p.cmd.Process.Kill(); err != nil {
		return err
	}
	p.cmd.Wait() // reap; the error (killed) is expected
	return nil
}

// Wait blocks until the worker exits on its own (job shutdown).
func (p *Process) Wait() error { return p.cmd.Wait() }
