package cluster

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/rpc"
	"sync"
	"time"

	"repro/internal/backoff"
)

// CounterRPCRetries is the extra stats counter summing control-plane RPC
// retries across all workers: calls that timed out or hit a broken
// connection and were re-dialed. A nonzero value under chaos shows the
// deadline/backoff path ran; a large value in a clean run flags a sick
// control plane.
const CounterRPCRetries = "cluster.rpcRetries"

const (
	defaultRPCTimeout  = 2 * time.Second
	defaultRPCAttempts = 3
	defaultRPCBackoff  = 5 * time.Millisecond
	rpcBackoffCeiling  = 1 * time.Second
)

// rpcClient wraps net/rpc's client with per-call deadlines, bounded
// retries, and jittered backoff. net/rpc calls block for as long as the
// connection lives — against a wedged (accepted-but-unresponsive)
// coordinator that is forever — so every call races a timer; on timeout
// or transport failure the connection is torn down and the next attempt
// re-dials. An rpc.ServerError is authoritative (the server received
// the call and answered) and is never retried, so non-idempotent
// handlers see at most one delivered application error.
type rpcClient struct {
	addr     string
	timeout  time.Duration
	attempts int
	backoff  time.Duration

	mu      sync.Mutex
	c       *rpc.Client
	retries int64
	closed  bool
}

func newRPCClient(addr string, timeout time.Duration) *rpcClient {
	if timeout <= 0 {
		timeout = defaultRPCTimeout
	}
	return &rpcClient{
		addr:     addr,
		timeout:  timeout,
		attempts: defaultRPCAttempts,
		backoff:  defaultRPCBackoff,
	}
}

// conn returns the live connection, dialing (with the call deadline) if
// none exists.
func (r *rpcClient) conn() (*rpc.Client, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return nil, rpc.ErrShutdown
	}
	if r.c != nil {
		return r.c, nil
	}
	nc, err := net.DialTimeout("tcp", r.addr, r.timeout)
	if err != nil {
		return nil, err
	}
	r.c = rpc.NewClient(nc)
	return r.c, nil
}

// drop discards a connection observed broken, so the next call
// re-dials. Only the observed client is dropped: a concurrent call may
// already have replaced it.
func (r *rpcClient) drop(c *rpc.Client) {
	r.mu.Lock()
	if r.c == c {
		r.c = nil
	}
	r.mu.Unlock()
	c.Close()
}

// Call invokes method with a deadline per attempt and jittered backoff
// between attempts. It returns ctx's error on cancellation, the
// server's error verbatim when one arrives, and the last transport
// error once attempts are exhausted.
func (r *rpcClient) Call(ctx context.Context, method string, args, reply any) error {
	if err := ctx.Err(); err != nil {
		return err // already cancelled: never race a ready Done channel
	}
	var lastErr error
	for attempt := 1; attempt <= r.attempts; attempt++ {
		if attempt > 1 {
			r.mu.Lock()
			r.retries++
			r.mu.Unlock()
			// The shared policy: exponential with full jitter, capped.
			select {
			case <-time.After(backoff.Exp(r.backoff, attempt-1, rpcBackoffCeiling)):
			case <-ctx.Done():
				return ctx.Err()
			}
		}
		c, err := r.conn()
		if err != nil {
			lastErr = err
			continue
		}
		call := c.Go(method, args, reply, make(chan *rpc.Call, 1))
		timer := time.NewTimer(r.timeout)
		select {
		case <-call.Done:
			timer.Stop()
			if call.Error == nil {
				return nil
			}
			var se rpc.ServerError
			if errors.As(call.Error, &se) {
				return call.Error // the server answered; don't retry
			}
			r.drop(c) // transport-level failure: connection is suspect
			lastErr = call.Error
		case <-timer.C:
			r.drop(c) // unblocks the pending call with ErrShutdown
			lastErr = fmt.Errorf("cluster: %s to %s timed out after %v", method, r.addr, r.timeout)
		case <-ctx.Done():
			timer.Stop()
			r.drop(c)
			return ctx.Err()
		}
	}
	return fmt.Errorf("cluster: %s to %s failed after %d attempts: %w",
		method, r.addr, r.attempts, lastErr)
}

// Retries reports how many call attempts were retried so far.
func (r *rpcClient) Retries() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.retries
}

// Close tears down the connection; subsequent calls fail.
func (r *rpcClient) Close() error {
	r.mu.Lock()
	c := r.c
	r.c = nil
	r.closed = true
	r.mu.Unlock()
	if c != nil {
		return c.Close()
	}
	return nil
}
