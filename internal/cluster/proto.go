// Package cluster is the multi-process MapReduce runtime: a Fleet owns
// one pool of worker processes and runs many jobs over it concurrently.
// Workers register once, heartbeat, long-poll for task leases, execute
// map/fetch/reduce attempts against the internal/mr task code, and
// serve their map-output segments to peers through mr.SegmentServer.
// Each job keeps its own task graph, placement, and stats (a jobRun
// implementing sched.Executor, so internal/sched's retries, backoff,
// speculation, and DepLostError re-execution all apply per job), while
// the fleet arbitrates task leases across jobs with per-tenant
// weighted fair share. Worker death is recovered the way Hadoop
// re-runs completed maps when a tasktracker is lost; workers can also
// leave gracefully (drain: finish in-flight attempts, deregister) and
// join at any time, so the fleet resizes under load.
//
// The single-job Coordinator API (New/Run) is kept as a thin wrapper —
// one fleet, one exclusive job — for antibench, the chaos harness, and
// anything else that wants the classic one-shot shape.
package cluster

import (
	"time"

	"repro/internal/mr"
)

// JobRef names a registry-registered job plus its opaque build spec;
// both coordinator and workers rebuild the identical job (and splits)
// from it, so leases never ship closures or input data.
type JobRef struct {
	Name string
	Spec []byte
}

// AttemptID identifies one attempt of one task of one job.
type AttemptID struct {
	Job     int
	Task    string
	Attempt int
}

// SegInfo describes one map-output segment: where it lives (a worker's
// segment-server address), its file name in that worker's filesystem,
// and its framed record count / pre-codec size.
type SegInfo struct {
	Addr      string
	File      string
	Partition int
	Records   int64
	RawBytes  int64
}

// RegisterArgs / RegisterReply: a worker joins the fleet. Job specs are
// not part of registration any more — leases carry a JobID and workers
// fetch (and cache) each job's build reference on first contact, so one
// registration serves many jobs over the worker's lifetime.
type RegisterArgs struct {
	DataAddr string // the worker's segment-server address
	Slots    int    // concurrent task slots offered
}

type RegisterReply struct {
	WorkerID       int
	HeartbeatEvery time.Duration
}

// GetJobArgs / GetJobReply: a worker resolves a lease's JobID into the
// job's registry reference and per-job execution knobs.
type GetJobArgs struct {
	JobID int
}

type GetJobReply struct {
	Ref JobRef
	// MaxTaskAttempts shapes task behavior (reduce merges keep their
	// inputs when retries are possible); workers mirror the job's.
	MaxTaskAttempts int
}

// HeartbeatArgs / HeartbeatReply: liveness plus the fleet's worker-bound
// back-channels — attempt cancellations (lost speculative races,
// cancelled jobs), finished-job cleanup announcements, and
// fleet-initiated drain requests all piggyback on heartbeat replies.
type HeartbeatArgs struct {
	WorkerID int
}

type HeartbeatReply struct {
	// Shutdown tells the worker to exit (fleet closed, or the fleet
	// declared it dead and a revival would corrupt placement).
	Shutdown bool
	// Drain asks the worker to drain gracefully: stop taking leases,
	// finish (or hand back) what it is running, deregister, exit.
	Drain  bool
	Cancel []AttemptID
	// Cleanup lists job IDs that finished: the worker may delete every
	// local file in those jobs' workspaces and drop its cached builds.
	Cleanup []int
}

// LeaseArgs / LeaseReply: workers long-poll for task leases.
type LeaseArgs struct {
	WorkerID int
}

type LeaseReply struct {
	Shutdown bool
	// Drain mirrors HeartbeatReply.Drain so a draining worker parked in
	// a lease long-poll learns immediately instead of on its next beat.
	Drain   bool
	Idle    bool // poll timed out; ask again
	Granted bool
	Lease   TaskLease
}

// StageInput is one map task's input when a job runs as a pipeline
// stage: either inline records shipped from the driver (a pipeline's
// initial input) or a handoff — a previous stage job's reduce output,
// retained as a framed record file in that job's workspace on the
// worker that reduced it. Handoff inputs are leased to the holding
// worker when it is alive, so stage-to-stage data never moves; a
// draining holder's file is fetched over the segment server instead.
type StageInput struct {
	Records []mr.Record
	Handoff *SegInfo
	// Worker is the handoff holder's worker id (for liveness checks and
	// placement pinning).
	Worker int
}

// TaskLease is one task attempt of one job assigned to a worker.
type TaskLease struct {
	JobID   int
	Task    string
	Group   string // mr.TaskGroupMap / Fetch / Reduce
	Attempt int

	// Map leases: the split index. Workers rebuild splits from the job
	// registry, so only the index travels — except for pipeline stage
	// jobs, whose Input carries the stage's real input (inline records
	// or a handoff reference) instead.
	MapTask int
	Input   *StageInput

	// Keep marks a reduce lease of a stage job whose output feeds a
	// later stage: the worker writes the reduce output to a handoff
	// file in the job's workspace and reports its SegInfo instead of
	// shipping the records to the driver.
	Keep bool

	// Fetch leases: pull Sources (segments on peer workers) to local
	// files. MapIndex is the producing map task, for stable local names.
	Partition int
	MapIndex  int
	Sources   []SegInfo

	// Reduce leases: merge Locals, which the fleet placed on this
	// worker via earlier fetch leases. LocalTasks names the fetch task
	// that produced each Locals entry, so a missing file can be reported
	// as that task's lost output.
	Locals     []SegInfo
	LocalTasks []string
}

// ReportArgs delivers an attempt's outcome back to the fleet.
type ReportArgs struct {
	WorkerID int
	JobID    int
	Task     string
	Attempt  int

	// Failure: Errmsg is non-empty; Transient marks errors worth
	// retrying; LostDeps names tasks whose committed output this worker
	// found missing; Unreachable lists segment-server addresses that
	// could not be fetched from (evidence toward declaring a peer dead).
	Errmsg      string
	Transient   bool
	LostDeps    []string
	Unreachable []string

	// Success payloads by task group.
	Segs      []SegInfo   // map: produced segments; fetch: localized segments
	FlowBytes int64       // fetch: payload bytes moved over the wire
	FetchNs   int64       // fetch: time spent in transfers
	Fetches   int         // fetch: segment transfers performed
	Records   []mr.Record // reduce: emitted output
	Handoff   *SegInfo    // reduce with Keep: the retained handoff file

	// Stats is the attempt's counter snapshot (fresh counters per
	// attempt, so deltas sum cleanly across committed attempts).
	Stats mr.Stats
	DurNs int64

	// Cumulative per-worker gauges, reported on every report so the
	// fleet's last observation is current: connection-pool dials,
	// serve-side disk bytes read by the segment server, control-plane
	// RPC retries spent by this worker, and fetches that failed checksum
	// verification. The last two ride as gauges, not attempt stats,
	// because the attempts that produce them fail — and failed attempts'
	// stats are (rightly) discarded. Gauges are fleet-wide (a worker
	// serves many jobs), so only an Exclusive job folds them into its
	// Result.
	PoolDials       int64
	ServedBytes     int64
	RPCRetries      int64
	IntegrityFaults int64
}

type ReportReply struct{}

// DrainArgs / DrainReply: a worker announces it is draining (SIGTERM):
// the fleet stops granting it leases and re-places anything still
// queued for it. The worker finishes or hands back running attempts,
// then calls Deregister.
type DrainArgs struct {
	WorkerID int
}

type DrainReply struct{}

// DeregisterArgs / DeregisterReply: a drained worker leaves the fleet.
// Map output it served dies with it; jobs that still need those
// segments recover through the existing DepLostError re-execution path.
type DeregisterArgs struct {
	WorkerID int
}

type DeregisterReply struct{}
