// Package cluster is the multi-process MapReduce runtime: a
// coordinator process owns the task graph and leases map/fetch/reduce
// tasks over TCP RPC to worker processes, which execute them against
// the internal/mr task code and serve their map-output segments to
// peers through mr.SegmentServer. The coordinator reuses internal/
// sched's event loop — retries, backoff, speculative execution — by
// implementing sched.Executor, and recovers from worker death by
// re-executing map tasks whose segments became unfetchable
// (sched.DepLostError), the way Hadoop re-runs completed maps when a
// tasktracker is lost.
package cluster

import (
	"time"

	"repro/internal/mr"
)

// JobRef names a registry-registered job plus its opaque build spec;
// both coordinator and workers rebuild the identical job (and splits)
// from it, so leases never ship closures or input data.
type JobRef struct {
	Name string
	Spec []byte
}

// AttemptID identifies one attempt of one task.
type AttemptID struct {
	Task    string
	Attempt int
}

// SegInfo describes one map-output segment: where it lives (a worker's
// segment-server address), its file name in that worker's filesystem,
// and its framed record count / pre-codec size.
type SegInfo struct {
	Addr      string
	File      string
	Partition int
	Records   int64
	RawBytes  int64
}

// RegisterArgs / RegisterReply: a worker joins the cluster. The reply
// carries the job reference so the worker can build its executable
// form, plus the heartbeat interval it must honor.
type RegisterArgs struct {
	DataAddr string // the worker's segment-server address
	Slots    int    // concurrent task slots offered
}

type RegisterReply struct {
	WorkerID        int
	Job             JobRef
	HeartbeatEvery  time.Duration
	MaxTaskAttempts int
}

// HeartbeatArgs / HeartbeatReply: liveness plus the cancellation
// back-channel — the coordinator piggybacks attempts to abort (lost
// speculative races, failed jobs) on heartbeat replies.
type HeartbeatArgs struct {
	WorkerID int
}

type HeartbeatReply struct {
	// Shutdown tells the worker to exit (job done, or the coordinator
	// declared it dead and a revival would corrupt placement).
	Shutdown bool
	Cancel   []AttemptID
}

// LeaseArgs / LeaseReply: workers long-poll for task leases.
type LeaseArgs struct {
	WorkerID int
}

type LeaseReply struct {
	Shutdown bool
	Idle     bool // poll timed out; ask again
	Granted  bool
	Lease    TaskLease
}

// TaskLease is one task attempt assigned to a worker.
type TaskLease struct {
	Task    string
	Group   string // mr.TaskGroupMap / Fetch / Reduce
	Attempt int

	// Map leases: the split index. Workers rebuild splits from the job
	// registry, so only the index travels.
	MapTask int

	// Fetch leases: pull Sources (segments on peer workers) to local
	// files. MapIndex is the producing map task, for stable local names.
	Partition int
	MapIndex  int
	Sources   []SegInfo

	// Reduce leases: merge Locals, which the coordinator placed on this
	// worker via earlier fetch leases. LocalTasks names the fetch task
	// that produced each Locals entry, so a missing file can be reported
	// as that task's lost output.
	Locals     []SegInfo
	LocalTasks []string
}

// ReportArgs delivers an attempt's outcome back to the coordinator.
type ReportArgs struct {
	WorkerID int
	Task     string
	Attempt  int

	// Failure: Errmsg is non-empty; Transient marks errors worth
	// retrying; LostDeps names tasks whose committed output this worker
	// found missing; Unreachable lists segment-server addresses that
	// could not be fetched from (evidence toward declaring a peer dead).
	Errmsg      string
	Transient   bool
	LostDeps    []string
	Unreachable []string

	// Success payloads by task group.
	Segs      []SegInfo   // map: produced segments; fetch: localized segments
	FlowBytes int64       // fetch: payload bytes moved over the wire
	FetchNs   int64       // fetch: time spent in transfers
	Fetches   int         // fetch: segment transfers performed
	Records   []mr.Record // reduce: emitted output

	// Stats is the attempt's counter snapshot (fresh counters per
	// attempt, so deltas sum cleanly across committed attempts).
	Stats mr.Stats
	DurNs int64

	// Cumulative per-worker gauges, reported on every report so the
	// coordinator's last observation is current: connection-pool dials,
	// serve-side disk bytes read by the segment server, control-plane
	// RPC retries spent by this worker, and fetches that failed checksum
	// verification. The last two ride as gauges, not attempt stats,
	// because the attempts that produce them fail — and failed attempts'
	// stats are (rightly) discarded.
	PoolDials       int64
	ServedBytes     int64
	RPCRetries      int64
	IntegrityFaults int64
}

type ReportReply struct{}
