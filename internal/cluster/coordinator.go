package cluster

import (
	"context"
	"fmt"
	"time"

	"repro/internal/mr"
	"repro/internal/obs"
)

// Config tunes a single-job coordinator — the classic one-shot shape:
// one fleet, one exclusive job, workers released when it finishes.
type Config struct {
	// Job names the registry job the cluster will run.
	Job JobRef
	// Addr is the RPC listen address (default "127.0.0.1:0").
	Addr string
	// MinWorkers is how many registered workers Run waits for before
	// scheduling tasks (default 1).
	MinWorkers int
	// MaxTaskAttempts caps attempts per task, counting both retries and
	// re-executions after output loss (default 4).
	MaxTaskAttempts int
	// Speculative enables speculative duplicates of straggling map tasks.
	Speculative bool
	// HeartbeatEvery is the worker heartbeat interval (default 50ms);
	// HeartbeatMiss is how many missed intervals declare a worker dead
	// (default 4).
	HeartbeatEvery time.Duration
	HeartbeatMiss  int
	// Tracer, when non-nil, receives job/worker/heartbeat/lease spans in
	// addition to the scheduler's per-attempt spans.
	Tracer *obs.Tracer
	// OnEvent, when non-nil, observes coordinator lifecycle events
	// (worker registration and death, task reports). Tests use it to
	// synchronize fault injection with job progress; it must not call
	// back into the coordinator.
	OnEvent func(Event)
}

func (c Config) normalized() Config {
	if c.MinWorkers <= 0 {
		c.MinWorkers = 1
	}
	if c.MaxTaskAttempts <= 0 {
		c.MaxTaskAttempts = 4
	}
	return c
}

// Coordinator runs one job over a private fleet. It is a thin wrapper
// around Fleet + Submit kept for the one-shot callers (antibench, the
// chaos harness, experiments): the fleet half owns workers and lease
// dispatch, the job half owns the task graph and result assembly.
type Coordinator struct {
	cfg   Config
	fleet *Fleet
}

// New builds a coordinator for cfg and starts its fleet's RPC
// listener, so Addr is dialable before Run is called (workers may be
// launched first). The job is materialized from the registry up front
// to fail fast on unknown jobs; the coordinator never executes task
// code itself.
func New(cfg Config) (*Coordinator, error) {
	cfg = cfg.normalized()
	_, splits, err := BuildJob(cfg.Job)
	if err != nil {
		return nil, err
	}
	if len(splits) == 0 {
		return nil, fmt.Errorf("cluster: job %q built zero splits", cfg.Job.Name)
	}
	fleet, err := NewFleet(FleetConfig{
		Addr:           cfg.Addr,
		HeartbeatEvery: cfg.HeartbeatEvery,
		HeartbeatMiss:  cfg.HeartbeatMiss,
		Tracer:         cfg.Tracer,
		OnEvent:        cfg.OnEvent,
	})
	if err != nil {
		return nil, err
	}
	return &Coordinator{cfg: cfg, fleet: fleet}, nil
}

// Addr is the coordinator's dialable RPC address.
func (c *Coordinator) Addr() string { return c.fleet.Addr() }

// Close stops the RPC listener and marks the coordinator shut down;
// workers learn of it through their next lease or heartbeat.
func (c *Coordinator) Close() error { return c.fleet.Close() }

// Run waits for MinWorkers workers, executes the job's task graph
// through them, and assembles an mr.Result whose output is
// byte-identical to a single-process run of the same job —
// MeasuredShuffle additionally records the real network transfer. On
// return, workers are told to shut down via their next poll.
func (c *Coordinator) Run(ctx context.Context) (*mr.Result, error) {
	if err := c.fleet.WaitWorkers(ctx, c.cfg.MinWorkers); err != nil {
		return nil, err
	}
	h, err := c.fleet.Submit(ctx, JobSpec{
		Ref:             c.cfg.Job,
		MaxTaskAttempts: c.cfg.MaxTaskAttempts,
		Speculative:     c.cfg.Speculative,
		Exclusive:       true,
	})
	if err != nil {
		return nil, err
	}
	res, err := h.Wait(ctx)
	// Job over (either way): release workers.
	c.fleet.Shutdown()
	return res, err
}
