package cluster

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/rpc"
	"sync"
	"time"

	"repro/internal/mr"
	"repro/internal/obs"
	"repro/internal/sched"
)

// Config tunes a coordinator.
type Config struct {
	// Job names the registry job the cluster will run.
	Job JobRef
	// Addr is the RPC listen address (default "127.0.0.1:0").
	Addr string
	// MinWorkers is how many registered workers Run waits for before
	// scheduling tasks (default 1).
	MinWorkers int
	// MaxTaskAttempts caps attempts per task, counting both retries and
	// re-executions after output loss (default 4).
	MaxTaskAttempts int
	// Speculative enables speculative duplicates of straggling map tasks.
	Speculative bool
	// HeartbeatEvery is the worker heartbeat interval (default 50ms);
	// HeartbeatMiss is how many missed intervals declare a worker dead
	// (default 4).
	HeartbeatEvery time.Duration
	HeartbeatMiss  int
	// Tracer, when non-nil, receives job/worker/heartbeat/lease spans in
	// addition to the scheduler's per-attempt spans.
	Tracer *obs.Tracer
	// OnEvent, when non-nil, observes coordinator lifecycle events
	// (worker registration and death, task reports). Tests use it to
	// synchronize fault injection with job progress; it must not call
	// back into the coordinator.
	OnEvent func(Event)
}

// Event is one coordinator lifecycle observation.
type Event struct {
	// Kind is "register", "worker-dead", "task-done", or "task-failed".
	Kind    string
	Worker  int
	Task    string
	Attempt int
	Detail  string
}

func (c Config) normalized() Config {
	if c.Addr == "" {
		c.Addr = "127.0.0.1:0"
	}
	if c.MinWorkers <= 0 {
		c.MinWorkers = 1
	}
	if c.MaxTaskAttempts <= 0 {
		c.MaxTaskAttempts = 4
	}
	if c.HeartbeatEvery <= 0 {
		c.HeartbeatEvery = 50 * time.Millisecond
	}
	if c.HeartbeatMiss <= 0 {
		c.HeartbeatMiss = 4
	}
	return c
}

// unreachableThreshold is how many distinct fetch-failure reports
// against one worker's segment server declare that worker dead even
// while its heartbeats still arrive (a half-dead worker: alive control
// plane, wedged data plane) — Hadoop's fetch-failure blacklisting.
const unreachableThreshold = 3

// leasePollTimeout bounds one Lease long-poll on the server side.
const leasePollTimeout = 200 * time.Millisecond

// taskError is a worker-reported attempt failure; Transient ones are
// retried by the scheduler.
type taskError struct {
	Msg       string
	Transient bool
}

func (e *taskError) Error() string { return e.Msg }

// errWorkerLost is the synthetic failure delivered to leases
// outstanding on a worker declared dead.
var errWorkerLost = errors.New("cluster: worker lost")

type workerState struct {
	id       int
	dataAddr string
	slots    int
	leaseQ   chan TaskLease

	dead        bool
	lastBeat    time.Time
	outstanding int         // granted leases not yet reported
	cancels     []AttemptID // delivered on next heartbeat
	unreachable int         // fetch-failure reports against this worker

	// Last-observed cumulative gauges from this worker's reports.
	lastDials      int64
	lastServed     int64
	lastRPCRetries int64
	lastIntegrity  int64

	span *obs.SpanRef
}

type pendingLease struct {
	worker  int
	granted time.Time
	ch      chan *ReportArgs
}

type taskMeta struct {
	group     string
	mapTask   int
	partition int
	mapIndex  int
}

// Coordinator owns the cluster's task graph and placement state. It
// implements sched.Executor: the scheduler's worker slots call Execute,
// which leases the task to a worker process and blocks for its report.
type Coordinator struct {
	cfg    Config
	job    *mr.Job
	splits []mr.Split
	nMap   int
	nRed   int
	meta   map[string]taskMeta

	ln net.Listener

	mu         sync.Mutex
	workers    map[int]*workerState
	nextWorker int
	partHome   map[int]int // reduce partition -> home worker id
	pending    map[AttemptID]*pendingLease
	registered chan struct{} // signaled once per registration
	shutdown   bool
}

// New builds a coordinator for cfg and starts its RPC listener, so
// Addr is dialable before Run is called (workers may be launched
// first). The job is materialized from the registry to learn the task
// graph's shape; the coordinator itself never executes task code.
func New(cfg Config) (*Coordinator, error) {
	cfg = cfg.normalized()
	job, splits, err := BuildJob(cfg.Job)
	if err != nil {
		return nil, err
	}
	if len(splits) == 0 {
		return nil, fmt.Errorf("cluster: job %q built zero splits", cfg.Job.Name)
	}
	nRed := job.NumReduceTasks
	if nRed <= 0 {
		nRed = 4 // mirror mr's normalization default
	}
	c := &Coordinator{
		cfg:        cfg,
		job:        job,
		splits:     splits,
		nMap:       len(splits),
		nRed:       nRed,
		meta:       make(map[string]taskMeta),
		workers:    make(map[int]*workerState),
		partHome:   make(map[int]int),
		pending:    make(map[AttemptID]*pendingLease),
		registered: make(chan struct{}, 64),
	}
	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		return nil, err
	}
	c.ln = ln
	srv := rpc.NewServer()
	if err := srv.RegisterName("Cluster", &clusterRPC{c: c}); err != nil {
		ln.Close()
		return nil, err
	}
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go srv.ServeConn(conn)
		}
	}()
	return c, nil
}

// Addr is the coordinator's dialable RPC address.
func (c *Coordinator) Addr() string { return c.ln.Addr().String() }

// Close stops the RPC listener and marks the coordinator shut down;
// workers learn of it through their next lease or heartbeat.
func (c *Coordinator) Close() error {
	c.mu.Lock()
	c.shutdown = true
	c.mu.Unlock()
	return c.ln.Close()
}

func (c *Coordinator) event(e Event) {
	if c.cfg.OnEvent != nil {
		c.cfg.OnEvent(e)
	}
}

// Run waits for MinWorkers workers, executes the job's task graph
// through them, and assembles an mr.Result whose output is
// byte-identical to a single-process run of the same job —
// MeasuredShuffle additionally records the real network transfer. On
// return, workers are told to shut down via their next poll.
func (c *Coordinator) Run(ctx context.Context) (*mr.Result, error) {
	start := time.Now()
	jobSpan := c.cfg.Tracer.Start(obs.KindJob, c.cfg.Job.Name+" (cluster)",
		obs.Int("splits", int64(c.nMap)), obs.Int("reducers", int64(c.nRed)))

	if err := c.waitForWorkers(ctx); err != nil {
		jobSpan.End(obs.Str("outcome", "failed"), obs.Str("err", err.Error()))
		return nil, err
	}

	monCtx, stopMon := context.WithCancel(context.Background())
	defer stopMon()
	go c.monitorHeartbeats(monCtx)

	tasks, slots := c.buildTasks()
	cfg := sched.Config{
		Workers:     slots,
		MaxAttempts: c.cfg.MaxTaskAttempts,
		Speculate:   c.cfg.Speculative,
		Tracer:      c.cfg.Tracer,
		Executor:    c,
		Retryable: func(err error) bool {
			var te *taskError
			return errors.As(err, &te) && te.Transient
		},
	}
	report, err := sched.Run(ctx, tasks, cfg)

	// Job over (either way): release workers.
	c.mu.Lock()
	c.shutdown = true
	c.mu.Unlock()

	if err != nil {
		jobSpan.End(obs.Str("outcome", "failed"), obs.Str("err", err.Error()))
		return nil, err
	}
	res := c.assemble(report, start)
	jobSpan.End(obs.Str("outcome", "success"),
		obs.Int("measured_shuffle_bytes", res.MeasuredShuffle.Bytes))
	return res, nil
}

func (c *Coordinator) waitForWorkers(ctx context.Context) error {
	for {
		c.mu.Lock()
		n := 0
		for _, w := range c.workers {
			if !w.dead {
				n++
			}
		}
		c.mu.Unlock()
		if n >= c.cfg.MinWorkers {
			return nil
		}
		select {
		case <-c.registered:
		case <-ctx.Done():
			return fmt.Errorf("cluster: waiting for %d workers: %w", c.cfg.MinWorkers, ctx.Err())
		}
	}
}

// buildTasks lays out the same DAG as the in-process pipelined
// scheduler — map/i → fetch/p/i → reduce/p — with nil Run closures, so
// every attempt dispatches through Execute. slots is the cluster's
// total task capacity, used as the scheduler's worker bound.
func (c *Coordinator) buildTasks() ([]sched.Task, int) {
	tasks := make([]sched.Task, 0, c.nMap+c.nMap*c.nRed+c.nRed)
	for i := 0; i < c.nMap; i++ {
		name := mr.MapTaskName(i)
		c.meta[name] = taskMeta{group: mr.TaskGroupMap, mapTask: i}
		tasks = append(tasks, sched.Task{
			Name: name, Group: mr.TaskGroupMap, Speculatable: c.cfg.Speculative,
		})
	}
	for p := 0; p < c.nRed; p++ {
		for i := 0; i < c.nMap; i++ {
			name := mr.FetchTaskName(p, i)
			c.meta[name] = taskMeta{group: mr.TaskGroupFetch, partition: p, mapIndex: i}
			tasks = append(tasks, sched.Task{
				Name: name, Group: mr.TaskGroupFetch, Deps: []string{mr.MapTaskName(i)},
			})
		}
	}
	for p := 0; p < c.nRed; p++ {
		name := mr.ReduceTaskName(p)
		c.meta[name] = taskMeta{group: mr.TaskGroupReduce, partition: p}
		deps := make([]string, c.nMap)
		for i := range deps {
			deps[i] = mr.FetchTaskName(p, i)
		}
		tasks = append(tasks, sched.Task{Name: name, Group: mr.TaskGroupReduce, Deps: deps})
	}
	c.mu.Lock()
	slots := 0
	for _, w := range c.workers {
		if !w.dead {
			slots += w.slots
		}
	}
	c.mu.Unlock()
	if slots < 1 {
		slots = 1
	}
	return tasks, slots
}

// Committed task values. Stats ride inside them so only winning
// attempts contribute to job stats (a speculative loser's snapshot is
// discarded with its value).
type mapValue struct {
	worker int
	addr   string
	segs   []SegInfo
	stats  mr.Stats
	dur    time.Duration
}

type fetchValue struct {
	worker    int
	segs      []SegInfo
	flow      int64
	fetchTime time.Duration
	fetches   int
	stats     mr.Stats
}

type reduceValue struct {
	worker int
	recs   []mr.Record
	stats  mr.Stats
	dur    time.Duration
}

// Execute implements sched.Executor: lease the task to a worker, block
// for its report (or cancellation), and translate the outcome into the
// scheduler's vocabulary — including DepLostError when committed
// upstream output turns out to live on a dead worker.
func (c *Coordinator) Execute(ctx context.Context, task *sched.Task, tc *sched.TaskContext) (any, error) {
	meta := c.meta[task.Name]
	lease := TaskLease{Task: task.Name, Group: task.Group, Attempt: tc.Attempt}

	c.mu.Lock()
	var w *workerState
	switch meta.group {
	case mr.TaskGroupMap:
		lease.MapTask = meta.mapTask
		w = c.pickWorkerLocked()

	case mr.TaskGroupFetch:
		mv, ok := tc.Dep(mr.MapTaskName(meta.mapIndex)).(mapValue)
		if !ok {
			c.mu.Unlock()
			return nil, fmt.Errorf("cluster: fetch %s missing map value", task.Name)
		}
		if src := c.workers[mv.worker]; src == nil || src.dead {
			c.mu.Unlock()
			return nil, &sched.DepLostError{
				Deps: []string{mr.MapTaskName(meta.mapIndex)},
				Err:  fmt.Errorf("cluster: worker %d holding map output is dead", mv.worker),
			}
		}
		lease.Partition = meta.partition
		lease.MapIndex = meta.mapIndex
		for _, s := range mv.segs {
			if s.Partition == meta.partition {
				lease.Sources = append(lease.Sources, s)
			}
		}
		home := c.homeLocked(meta.partition)
		if home != nil && len(lease.Sources) == 0 {
			// Nothing to move for this (partition, map) pair: commit an
			// empty fetch value on the home worker without a round trip.
			id := home.id
			c.mu.Unlock()
			return fetchValue{worker: id}, nil
		}
		w = home

	case mr.TaskGroupReduce:
		home, lost, locals, localTasks := c.reduceInputsLocked(meta.partition, tc)
		if len(lost) > 0 {
			c.mu.Unlock()
			return nil, &sched.DepLostError{
				Deps: lost,
				Err:  fmt.Errorf("cluster: partition %d inputs scattered or on dead workers", meta.partition),
			}
		}
		lease.Partition = meta.partition
		lease.Locals = locals
		lease.LocalTasks = localTasks
		w = home
	}
	if w == nil {
		c.mu.Unlock()
		return nil, &taskError{Msg: "cluster: no live workers", Transient: true}
	}

	key := AttemptID{Task: task.Name, Attempt: tc.Attempt}
	pend := &pendingLease{worker: w.id, granted: time.Now(), ch: make(chan *ReportArgs, 1)}
	c.pending[key] = pend
	w.outstanding++
	c.mu.Unlock()

	// Enqueue; a synthetic worker-lost report may beat the enqueue.
	select {
	case w.leaseQ <- lease:
	case rep := <-pend.ch:
		return c.settle(task, w, pend, rep)
	case <-ctx.Done():
		c.dropLease(key, w, false)
		return nil, ctx.Err()
	}

	select {
	case rep := <-pend.ch:
		return c.settle(task, w, pend, rep)
	case <-ctx.Done():
		// Revoke: the worker aborts the attempt on its next heartbeat.
		c.dropLease(key, w, true)
		return nil, ctx.Err()
	}
}

// dropLease abandons a pending lease after cancellation; cancelRemote
// queues an abort for the worker's next heartbeat.
func (c *Coordinator) dropLease(key AttemptID, w *workerState, cancelRemote bool) {
	c.mu.Lock()
	if _, ok := c.pending[key]; ok {
		delete(c.pending, key)
		w.outstanding--
	}
	if cancelRemote && !w.dead {
		w.cancels = append(w.cancels, key)
	}
	c.mu.Unlock()
}

// settle turns a worker's report into Execute's return value.
func (c *Coordinator) settle(task *sched.Task, w *workerState, pend *pendingLease, rep *ReportArgs) (any, error) {
	now := time.Now()
	if c.cfg.Tracer != nil {
		c.cfg.Tracer.Record(obs.KindLease, task.Name, pend.granted, now,
			obs.Int("worker", int64(w.id)), obs.Str("group", task.Group),
			obs.Bool("ok", rep.Errmsg == ""))
	}
	if rep.Errmsg != "" {
		c.noteUnreachable(rep.Unreachable)
		c.event(Event{Kind: "task-failed", Worker: w.id, Task: task.Name, Attempt: rep.Attempt, Detail: rep.Errmsg})
		if len(rep.LostDeps) > 0 {
			return nil, &sched.DepLostError{Deps: rep.LostDeps, Err: errors.New(rep.Errmsg)}
		}
		return nil, &taskError{Msg: rep.Errmsg, Transient: rep.Transient}
	}
	c.event(Event{Kind: "task-done", Worker: w.id, Task: task.Name, Attempt: rep.Attempt})
	switch task.Group {
	case mr.TaskGroupMap:
		return mapValue{
			worker: w.id, addr: w.dataAddr, segs: rep.Segs,
			stats: rep.Stats, dur: time.Duration(rep.DurNs),
		}, nil
	case mr.TaskGroupFetch:
		return fetchValue{
			worker: w.id, segs: rep.Segs, flow: rep.FlowBytes,
			fetchTime: time.Duration(rep.FetchNs), fetches: rep.Fetches,
			stats: rep.Stats,
		}, nil
	default:
		return reduceValue{
			worker: w.id, recs: rep.Records,
			stats: rep.Stats, dur: time.Duration(rep.DurNs),
		}, nil
	}
}

// noteUnreachable counts fetch-failure evidence against segment
// servers; enough distinct reports declare the owning worker dead even
// while its heartbeats arrive (wedged data plane).
func (c *Coordinator) noteUnreachable(addrs []string) {
	if len(addrs) == 0 {
		return
	}
	var died []*workerState
	c.mu.Lock()
	for _, addr := range addrs {
		for _, w := range c.workers {
			if w.dataAddr != addr || w.dead {
				continue
			}
			if w.unreachable++; w.unreachable >= unreachableThreshold {
				died = append(died, w)
				c.markDeadLocked(w, "segment server unreachable")
			}
		}
	}
	c.mu.Unlock()
	for _, w := range died {
		c.event(Event{Kind: "worker-dead", Worker: w.id, Detail: "unreachable"})
	}
}

// pickWorkerLocked returns the least-loaded live worker, or nil.
func (c *Coordinator) pickWorkerLocked() *workerState {
	var best *workerState
	for _, w := range c.workers {
		if w.dead {
			continue
		}
		if best == nil || w.outstanding < best.outstanding ||
			(w.outstanding == best.outstanding && w.id < best.id) {
			best = w
		}
	}
	return best
}

// homeLocked returns partition p's home worker, electing a new one if
// none is assigned or the previous home died. All of a partition's
// fetch and reduce leases go to its home, so reduce inputs are local.
func (c *Coordinator) homeLocked(p int) *workerState {
	if id, ok := c.partHome[p]; ok {
		if w := c.workers[id]; w != nil && !w.dead {
			return w
		}
	}
	w := c.pickWorkerLocked()
	if w != nil {
		c.partHome[p] = w.id
	}
	return w
}

// reduceInputsLocked validates that every fetch value for partition p
// is local to the partition's current live home, returning the lost
// fetch task names otherwise.
func (c *Coordinator) reduceInputsLocked(p int, tc *sched.TaskContext) (home *workerState, lost []string, locals []SegInfo, localTasks []string) {
	if id, ok := c.partHome[p]; ok {
		if w := c.workers[id]; w != nil && !w.dead {
			home = w
		}
	}
	for i := 0; i < c.nMap; i++ {
		name := mr.FetchTaskName(p, i)
		fv, ok := tc.Dep(name).(fetchValue)
		if !ok {
			lost = append(lost, name)
			continue
		}
		if home == nil || fv.worker != home.id {
			lost = append(lost, name)
			continue
		}
		for _, s := range fv.segs {
			locals = append(locals, s)
			localTasks = append(localTasks, name)
		}
	}
	return home, lost, locals, localTasks
}

// monitorHeartbeats declares workers dead after HeartbeatMiss missed
// intervals and fails their outstanding leases so the scheduler can
// retry the work elsewhere.
func (c *Coordinator) monitorHeartbeats(ctx context.Context) {
	t := time.NewTicker(c.cfg.HeartbeatEvery)
	defer t.Stop()
	for {
		select {
		case <-t.C:
		case <-ctx.Done():
			return
		}
		limit := time.Duration(c.cfg.HeartbeatMiss) * c.cfg.HeartbeatEvery
		now := time.Now()
		var died []*workerState
		c.mu.Lock()
		for _, w := range c.workers {
			if !w.dead && now.Sub(w.lastBeat) > limit {
				died = append(died, w)
				c.markDeadLocked(w, "missed heartbeats")
			}
		}
		c.mu.Unlock()
		for _, w := range died {
			c.event(Event{Kind: "worker-dead", Worker: w.id, Detail: "missed heartbeats"})
		}
	}
}

// markDeadLocked transitions a worker to dead: its outstanding leases
// receive synthetic transient failures (the scheduler will re-place
// them), and its committed map output will be found lost by the fetch
// dispatch pre-check, triggering re-execution.
func (c *Coordinator) markDeadLocked(w *workerState, why string) {
	w.dead = true
	if c.cfg.Tracer != nil {
		now := time.Now()
		c.cfg.Tracer.Record(obs.KindHeartbeat, fmt.Sprintf("worker-%d lost", w.id),
			now, now, obs.Str("reason", why))
	}
	if w.span != nil {
		w.span.End(obs.Str("outcome", "dead"), obs.Str("reason", why))
		w.span = nil
	}
	for key, pend := range c.pending {
		if pend.worker != w.id {
			continue
		}
		delete(c.pending, key)
		w.outstanding--
		pend.ch <- &ReportArgs{
			WorkerID: w.id, Task: key.Task, Attempt: key.Attempt,
			Errmsg:    fmt.Sprintf("%v: worker %d (%s)", errWorkerLost, w.id, why),
			Transient: true,
		}
	}
}

// assemble builds the job Result from committed task values.
func (c *Coordinator) assemble(report *sched.Report, start time.Time) *mr.Result {
	res := &mr.Result{
		Output:              make([][]mr.Record, c.nRed),
		ShufflePerPartition: make([]int64, c.nRed),
		ReduceTaskTimes:     make([]time.Duration, c.nRed),
		MapTaskTimes:        make([]time.Duration, c.nMap),
		Timeline:            report.Attempts,
	}
	var stats mr.Stats
	meas := &mr.ShuffleMeasurement{}
	for i := 0; i < c.nMap; i++ {
		mv := report.Value(mr.MapTaskName(i)).(mapValue)
		stats.Accumulate(mv.stats)
		res.MapTaskTimes[i] = mv.dur
	}
	for p := 0; p < c.nRed; p++ {
		for i := 0; i < c.nMap; i++ {
			fv := report.Value(mr.FetchTaskName(p, i)).(fetchValue)
			stats.Accumulate(fv.stats)
			res.ShufflePerPartition[p] += fv.flow
			meas.Bytes += fv.flow
			meas.FetchTime += fv.fetchTime
			meas.Fetches += fv.fetches
		}
		rv := report.Value(mr.ReduceTaskName(p)).(reduceValue)
		stats.Accumulate(rv.stats)
		res.Output[p] = rv.recs
		res.ReduceTaskTimes[p] = rv.dur
	}
	if s, e, ok := sched.Span(report.Attempts, mr.TaskGroupFetch); ok {
		meas.Extent = e.Sub(s)
	}
	c.mu.Lock()
	var rpcRetries, integrity int64
	for _, w := range c.workers {
		meas.Dials += w.lastDials
		// Serve-side reads happen on the producing worker's disk, outside
		// any attempt's metered view; fold the cumulative gauge in.
		stats.DiskReadBytes += w.lastServed
		rpcRetries += w.lastRPCRetries
		integrity += w.lastIntegrity
	}
	c.mu.Unlock()
	if rpcRetries > 0 || integrity > 0 {
		if stats.Extra == nil {
			stats.Extra = make(map[string]int64, 2)
		}
		if rpcRetries > 0 {
			stats.Extra[CounterRPCRetries] += rpcRetries
		}
		if integrity > 0 {
			stats.Extra[mr.CounterFetchIntegrity] += integrity
		}
	}
	stats.WallTime = time.Since(start)
	res.Stats = stats
	res.MeasuredShuffle = meas
	return res
}

// clusterRPC is the coordinator's RPC surface.
type clusterRPC struct {
	c *Coordinator
}

func (r *clusterRPC) Register(args *RegisterArgs, reply *RegisterReply) error {
	c := r.c
	c.mu.Lock()
	if c.shutdown {
		c.mu.Unlock()
		return errors.New("cluster: coordinator is shutting down")
	}
	id := c.nextWorker
	c.nextWorker++
	slots := args.Slots
	if slots <= 0 {
		slots = 1
	}
	w := &workerState{
		id: id, dataAddr: args.DataAddr, slots: slots,
		leaseQ: make(chan TaskLease, 256), lastBeat: time.Now(),
	}
	if c.cfg.Tracer != nil {
		w.span = c.cfg.Tracer.Start(obs.KindWorker, fmt.Sprintf("worker-%d", id),
			obs.Str("data_addr", args.DataAddr), obs.Int("slots", int64(slots)))
	}
	c.workers[id] = w
	c.mu.Unlock()

	reply.WorkerID = id
	reply.Job = c.cfg.Job
	reply.HeartbeatEvery = c.cfg.HeartbeatEvery
	reply.MaxTaskAttempts = c.cfg.MaxTaskAttempts
	c.event(Event{Kind: "register", Worker: id, Detail: args.DataAddr})
	select {
	case c.registered <- struct{}{}:
	default:
	}
	return nil
}

func (r *clusterRPC) Heartbeat(args *HeartbeatArgs, reply *HeartbeatReply) error {
	c := r.c
	c.mu.Lock()
	w := c.workers[args.WorkerID]
	if w == nil || w.dead || c.shutdown {
		// A declared-dead worker must not rejoin placement: its committed
		// outputs were already rescheduled elsewhere.
		reply.Shutdown = true
		c.mu.Unlock()
		return nil
	}
	w.lastBeat = time.Now()
	reply.Cancel = w.cancels
	w.cancels = nil
	c.mu.Unlock()
	return nil
}

func (r *clusterRPC) Lease(args *LeaseArgs, reply *LeaseReply) error {
	c := r.c
	c.mu.Lock()
	w := c.workers[args.WorkerID]
	if w == nil || w.dead || c.shutdown {
		reply.Shutdown = true
		c.mu.Unlock()
		return nil
	}
	q := w.leaseQ
	c.mu.Unlock()
	select {
	case l := <-q:
		reply.Granted = true
		reply.Lease = l
	case <-time.After(leasePollTimeout):
		reply.Idle = true
	}
	return nil
}

func (r *clusterRPC) Report(args *ReportArgs, reply *ReportReply) error {
	c := r.c
	key := AttemptID{Task: args.Task, Attempt: args.Attempt}
	c.mu.Lock()
	w := c.workers[args.WorkerID]
	pend := c.pending[key]
	if w == nil || pend == nil || pend.worker != args.WorkerID {
		// Stale: a cancelled attempt, a lost race, or a worker already
		// declared dead. Drop it; the authoritative outcome is elsewhere.
		c.mu.Unlock()
		return nil
	}
	delete(c.pending, key)
	w.outstanding--
	w.lastDials = args.PoolDials
	w.lastServed = args.ServedBytes
	w.lastRPCRetries = args.RPCRetries
	w.lastIntegrity = args.IntegrityFaults
	c.mu.Unlock()
	pend.ch <- args
	return nil
}
