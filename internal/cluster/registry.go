package cluster

import (
	"fmt"
	"sync"

	"repro/internal/mr"
)

// The job registry maps JobRef names to builder functions. Coordinator
// and worker processes must both register the same builders (usually
// via a shared package's init), so a JobRef rebuilds the identical job
// and splits everywhere — the cluster protocol ships specs, never
// closures or input data. Builders must be deterministic in the spec:
// workers rely on split i being the same records in every process.
var (
	regMu    sync.RWMutex
	builders = make(map[string]func(spec []byte) (*mr.Job, []mr.Split, error))
)

// RegisterJob installs a job builder under name. Registering the same
// name twice panics: it means two packages disagree about what the
// name builds, which would corrupt cluster runs silently.
func RegisterJob(name string, build func(spec []byte) (*mr.Job, []mr.Split, error)) {
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := builders[name]; dup {
		panic(fmt.Sprintf("cluster: job %q registered twice", name))
	}
	builders[name] = build
}

// BuildJob materializes a JobRef through its registered builder.
func BuildJob(ref JobRef) (*mr.Job, []mr.Split, error) {
	regMu.RLock()
	build := builders[ref.Name]
	regMu.RUnlock()
	if build == nil {
		return nil, nil, fmt.Errorf("cluster: no job registered as %q", ref.Name)
	}
	return build(ref.Spec)
}

// ValidateJob checks that a JobRef builds a runnable job (registered
// name, spec the builder accepts, at least one split) without running
// it — admission-time validation for job services.
func ValidateJob(ref JobRef) error {
	_, splits, err := BuildJob(ref)
	if err != nil {
		return err
	}
	if len(splits) == 0 {
		return fmt.Errorf("cluster: job %q built zero splits", ref.Name)
	}
	return nil
}
