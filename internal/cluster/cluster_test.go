package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/mr"
	"repro/internal/sched"
)

// TestMain lets the test binary serve as its own worker executable:
// subprocess tests spawn it with the cluster env vars set, and
// WorkerMainIfSpawned diverts those copies into RunWorker before any
// test runs.
func TestMain(m *testing.M) {
	WorkerMainIfSpawned()
	os.Exit(m.Run())
}

// testSpec parameterizes the registered test job. Both the test
// process (coordinator) and spawned workers rebuild identical jobs and
// splits from it.
type testSpec struct {
	Splits     int
	Lines      int // per split
	Reducers   int
	MapDelayUs int // per-record mapper sleep, to stretch map tasks
}

const testJobName = "cluster-test-wordcount"

func init() {
	RegisterJob(testJobName, buildTestJob)
}

func buildTestJob(spec []byte) (*mr.Job, []mr.Split, error) {
	var s testSpec
	if err := json.Unmarshal(spec, &s); err != nil {
		return nil, nil, err
	}
	words := []string{
		"ant", "bee", "cat", "dog", "eel", "fox", "gnu", "hen",
		"ibex", "jay", "kite", "lynx", "mole", "newt", "owl", "pug",
	}
	// Deterministic LCG so every process derives identical splits.
	seed := uint64(0x5eed)
	next := func() uint64 {
		seed = seed*6364136223846793005 + 1442695040888963407
		return seed >> 33
	}
	splits := make([]mr.Split, s.Splits)
	for i := range splits {
		recs := make([]mr.Record, s.Lines)
		for l := range recs {
			var b strings.Builder
			for w := 0; w < 8; w++ {
				if w > 0 {
					b.WriteByte(' ')
				}
				b.WriteString(words[next()%uint64(len(words))])
			}
			recs[l] = mr.Record{Value: []byte(b.String())}
		}
		splits[i] = &mr.MemSplit{Recs: recs}
	}
	delay := time.Duration(s.MapDelayUs) * time.Microsecond
	sum := mr.NewReduceFunc(func(key []byte, values mr.ValueIter, out mr.Emitter) error {
		total := 0
		for {
			v, ok := values.Next()
			if !ok {
				break
			}
			n, err := strconv.Atoi(string(v))
			if err != nil {
				return err
			}
			total += n
		}
		return out.Emit(key, []byte(strconv.Itoa(total)))
	})
	job := &mr.Job{
		Name: testJobName,
		NewMapper: mr.NewMapFunc(func(key, value []byte, out mr.Emitter) error {
			if delay > 0 {
				time.Sleep(delay)
			}
			for _, w := range strings.Fields(string(value)) {
				if err := out.Emit([]byte(w), []byte("1")); err != nil {
					return err
				}
			}
			return nil
		}),
		NewReducer:     sum,
		NumReduceTasks: s.Reducers,
		Deterministic:  true,
	}
	return job, splits, nil
}

func mustSpec(t *testing.T, s testSpec) []byte {
	t.Helper()
	b, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// singleProcessRun is the reference: the same registry job executed by
// the in-process engine.
func singleProcessRun(t *testing.T, ref JobRef) *mr.Result {
	t.Helper()
	job, splits, err := BuildJob(ref)
	if err != nil {
		t.Fatal(err)
	}
	res, err := mr.Run(job, splits)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func assertSameOutput(t *testing.T, got, want *mr.Result) {
	t.Helper()
	g, w := got.SortedOutput(), want.SortedOutput()
	if len(g) != len(w) {
		t.Fatalf("output length %d, want %d", len(g), len(w))
	}
	for i := range g {
		if !bytes.Equal(g[i].Key, w[i].Key) || !bytes.Equal(g[i].Value, w[i].Value) {
			t.Fatalf("record %d: got %s, want %s", i, mr.FormatRecord(g[i]), mr.FormatRecord(w[i]))
		}
	}
}

// events wires a coordinator's OnEvent to a drop-on-full channel.
func events() (func(Event), <-chan Event) {
	ch := make(chan Event, 4096)
	return func(e Event) {
		select {
		case ch <- e:
		default:
		}
	}, ch
}

// awaitEvent blocks for the first event matching pred.
func awaitEvent(t *testing.T, ch <-chan Event, what string, pred func(Event) bool) Event {
	t.Helper()
	deadline := time.After(30 * time.Second)
	for {
		select {
		case e := <-ch:
			if pred(e) {
				return e
			}
		case <-deadline:
			t.Fatalf("timed out waiting for %s", what)
		}
	}
}

// TestClusterMatchesSingleProcess: two in-process workers execute the
// job over real TCP shuffle; output must be byte-identical to the
// single-process engine, and the measured shuffle must be populated
// with pooled (dials < fetches) transfers.
func TestClusterMatchesSingleProcess(t *testing.T) {
	ref := JobRef{Name: testJobName, Spec: mustSpec(t, testSpec{
		Splits: 8, Lines: 120, Reducers: 4,
	})}
	coord, err := New(Config{Job: ref, MinWorkers: 2, HeartbeatEvery: 25 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	workerErr := make(chan error, 2)
	for i := 0; i < 2; i++ {
		go func() {
			workerErr <- RunWorker(ctx, WorkerOptions{Coordinator: coord.Addr(), Slots: 2})
		}()
	}

	res, err := coord.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if err := <-workerErr; err != nil {
			t.Errorf("worker: %v", err)
		}
	}

	assertSameOutput(t, res, singleProcessRun(t, ref))

	m := res.MeasuredShuffle
	if m == nil {
		t.Fatal("cluster run must populate MeasuredShuffle")
	}
	if m.Bytes <= 0 || m.Fetches <= 0 {
		t.Errorf("measured shuffle empty: %+v", m)
	}
	if m.Bytes != res.Stats.ShuffleBytes {
		t.Errorf("measured bytes %d != metered shuffle bytes %d", m.Bytes, res.Stats.ShuffleBytes)
	}
	if m.Dials <= 0 || m.Dials >= int64(m.Fetches) {
		t.Errorf("dials %d vs fetches %d: connection pool should dial fewer times than it fetches", m.Dials, m.Fetches)
	}
	if m.Extent <= 0 || m.FetchTime <= 0 {
		t.Errorf("measured shuffle times empty: %+v", m)
	}
	var shufflePer int64
	for _, b := range res.ShufflePerPartition {
		shufflePer += b
	}
	if shufflePer != m.Bytes {
		t.Errorf("ShufflePerPartition sums to %d, measured %d", shufflePer, m.Bytes)
	}
}

// TestClusterRejectsUnknownJob: a coordinator for an unregistered job
// fails to construct instead of hanging workers.
func TestClusterRejectsUnknownJob(t *testing.T) {
	if _, err := New(Config{Job: JobRef{Name: "no-such-job"}}); err == nil {
		t.Fatal("expected unknown-job error")
	}
}

// killableCluster spawns n subprocess workers one at a time, waiting
// for each registration so worker IDs map to processes
// deterministically (ID i ↔ procs[i]).
func killableCluster(t *testing.T, coord *Coordinator, ch <-chan Event, n int) []*Process {
	t.Helper()
	procs := make([]*Process, n)
	for i := 0; i < n; i++ {
		p, err := SpawnSelf(coord.Addr(), 2)
		if err != nil {
			t.Fatalf("spawning worker: %v", err)
		}
		procs[i] = p
		want := i
		awaitEvent(t, ch, fmt.Sprintf("worker %d registration", i), func(e Event) bool {
			return e.Kind == "register" && e.Worker == want
		})
	}
	t.Cleanup(func() {
		for _, p := range procs {
			p.Kill() // idempotent enough: already-exited workers just reap
		}
	})
	return procs
}

// TestWorkerKillMidMap kills a worker right after it commits its first
// map task, while map tasks are still running everywhere. The
// coordinator must detect the death via missed heartbeats, re-place
// the worker's in-flight leases, re-execute lost map output if any
// fetches still needed it, and deliver byte-identical output.
func TestWorkerKillMidMap(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess cluster test; skipped in -short mode")
	}
	ref := JobRef{Name: testJobName, Spec: mustSpec(t, testSpec{
		Splits: 12, Lines: 150, Reducers: 4, MapDelayUs: 300,
	})}
	onEvent, ch := events()
	coord, err := New(Config{
		Job: ref, MinWorkers: 3,
		HeartbeatEvery: 25 * time.Millisecond,
		OnEvent:        onEvent,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	procs := killableCluster(t, coord, ch, 3)

	done := make(chan struct{})
	var res *mr.Result
	var runErr error
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	go func() {
		res, runErr = coord.Run(ctx)
		close(done)
	}()

	// Kill the worker that commits the first map task.
	e := awaitEvent(t, ch, "first map commit", func(e Event) bool {
		return e.Kind == "task-done" && strings.HasPrefix(e.Task, "map/")
	})
	if err := procs[e.Worker].Kill(); err != nil {
		t.Fatalf("killing worker %d: %v", e.Worker, err)
	}
	awaitEvent(t, ch, "worker death detection", func(ev Event) bool {
		return ev.Kind == "worker-dead" && ev.Worker == e.Worker
	})

	<-done
	if runErr != nil {
		t.Fatalf("job failed after worker kill: %v", runErr)
	}
	assertSameOutput(t, res, singleProcessRun(t, ref))
}

// TestWorkerKillMidShuffle kills the worker that just localized the
// first fetch — a reduce partition's home. Its fetched segments and
// map outputs die with it; the coordinator must re-home the partition,
// re-execute the lost dependencies (visible as dep-lost attempts in
// the timeline), and still produce byte-identical output.
func TestWorkerKillMidShuffle(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess cluster test; skipped in -short mode")
	}
	ref := JobRef{Name: testJobName, Spec: mustSpec(t, testSpec{
		Splits: 12, Lines: 150, Reducers: 4, MapDelayUs: 300,
	})}
	onEvent, ch := events()
	coord, err := New(Config{
		Job: ref, MinWorkers: 3,
		HeartbeatEvery: 25 * time.Millisecond,
		OnEvent:        onEvent,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	procs := killableCluster(t, coord, ch, 3)

	done := make(chan struct{})
	var res *mr.Result
	var runErr error
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	go func() {
		res, runErr = coord.Run(ctx)
		close(done)
	}()

	e := awaitEvent(t, ch, "first fetch commit", func(e Event) bool {
		return e.Kind == "task-done" && strings.HasPrefix(e.Task, "fetch/")
	})
	if err := procs[e.Worker].Kill(); err != nil {
		t.Fatalf("killing worker %d: %v", e.Worker, err)
	}
	awaitEvent(t, ch, "worker death detection", func(ev Event) bool {
		return ev.Kind == "worker-dead" && ev.Worker == e.Worker
	})

	<-done
	if runErr != nil {
		t.Fatalf("job failed after worker kill: %v", runErr)
	}
	assertSameOutput(t, res, singleProcessRun(t, ref))

	// The killed worker held committed fetch output (that's what we
	// waited for), so its partition's reduce — or a later fetch — must
	// have hit the dependency-loss path.
	sawDepLost := false
	for _, a := range res.Timeline {
		if a.Outcome == sched.OutcomeDepLost {
			sawDepLost = true
			break
		}
	}
	if !sawDepLost {
		t.Error("timeline shows no dep-lost attempt; worker kill did not exercise re-execution")
	}
}
