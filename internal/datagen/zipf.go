package datagen

import "math"

// Zipf samples ranks 0..n-1 with probability proportional to
// 1/(rank+1)^s, via a precomputed cumulative table and binary search.
// Skewed inputs are what give Anti-Combining its headroom (the paper
// calls out skewed graphs and query logs explicitly), so the sampler is
// used by all generators.
type Zipf struct {
	cum []float64
}

// NewZipf builds a sampler over n ranks with exponent s > 0.
func NewZipf(n int, s float64) *Zipf {
	if n <= 0 {
		panic("datagen: Zipf with non-positive n")
	}
	cum := make([]float64, n)
	total := 0.0
	for i := 0; i < n; i++ {
		total += 1 / math.Pow(float64(i+1), s)
		cum[i] = total
	}
	for i := range cum {
		cum[i] /= total
	}
	return &Zipf{cum: cum}
}

// Sample draws one rank using rng.
func (z *Zipf) Sample(rng *RNG) int {
	u := rng.Float64()
	lo, hi := 0, len(z.cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cum[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// N reports the number of ranks.
func (z *Zipf) N() int { return len(z.cum) }
