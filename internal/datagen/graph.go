package datagen

// GraphConfig shapes the ClueWeb09 substitute: a directed graph whose
// out-degrees follow a power law, the skew §1 credits for
// Anti-Combining's PageRank wins ("graphs tend to be very skewed").
type GraphConfig struct {
	// Seed makes the graph reproducible.
	Seed uint64
	// Nodes is the node count.
	Nodes int
	// AvgOutDegree is the target mean out-degree. Defaults to 8.
	AvgOutDegree int
	// Skew is the Zipf exponent of the degree distribution.
	// Defaults to 1.3.
	Skew float64
}

func (c GraphConfig) normalized() GraphConfig {
	if c.AvgOutDegree <= 0 {
		c.AvgOutDegree = 8
	}
	if c.Skew == 0 {
		c.Skew = 1.3
	}
	return c
}

// Graph is an adjacency-list directed graph.
type Graph struct {
	// Out holds each node's outgoing edge targets.
	Out [][]int32
}

// NewGraph samples a power-law graph: node degree ranks are shuffled so
// hub nodes are spread across the id space, edge targets are uniform.
func NewGraph(cfg GraphConfig) *Graph {
	cfg = cfg.normalized()
	rng := NewRNG(cfg.Seed)
	n := cfg.Nodes

	// Degree for rank r follows r^-skew, scaled to hit the average; a
	// permutation assigns ranks to node ids.
	zipf := NewZipf(n, cfg.Skew)
	counts := make([]int, n)
	totalEdges := n * cfg.AvgOutDegree
	for i := 0; i < totalEdges; i++ {
		counts[zipf.Sample(rng)]++
	}
	perm := make([]int32, n)
	for i := range perm {
		perm[i] = int32(i)
	}
	for i := n - 1; i > 0; i-- {
		j := rng.Intn(i + 1)
		perm[i], perm[j] = perm[j], perm[i]
	}

	out := make([][]int32, n)
	for rank, deg := range counts {
		node := perm[rank]
		if deg == 0 {
			continue
		}
		adj := make([]int32, deg)
		for e := range adj {
			adj[e] = int32(rng.Intn(n))
		}
		out[node] = adj
	}
	return &Graph{Out: out}
}

// Edges reports the total edge count.
func (g *Graph) Edges() int {
	total := 0
	for _, adj := range g.Out {
		total += len(adj)
	}
	return total
}

// MaxOutDegree reports the largest out-degree (skew sanity checks).
func (g *Graph) MaxOutDegree() int {
	maxDeg := 0
	for _, adj := range g.Out {
		if len(adj) > maxDeg {
			maxDeg = len(adj)
		}
	}
	return maxDeg
}
