package datagen

import "strings"

// RandomTextConfig shapes the RandomText substitute: lines of random
// words drawn from a Zipfian vocabulary, like Hadoop's RandomTextWriter.
type RandomTextConfig struct {
	// Seed makes the text reproducible.
	Seed uint64
	// Lines is the number of text lines to produce.
	Lines int
	// WordsPerLine is the mean words per line. Defaults to 20.
	WordsPerLine int
	// VocabWords is the vocabulary size. Defaults to 10000.
	VocabWords int
}

func (c RandomTextConfig) normalized() RandomTextConfig {
	if c.WordsPerLine <= 0 {
		c.WordsPerLine = 20
	}
	if c.VocabWords <= 0 {
		c.VocabWords = 10000
	}
	return c
}

// RandomText is a deterministic random-text generator.
type RandomText struct {
	cfg   RandomTextConfig
	vocab []string
	zipf  *Zipf
}

// NewRandomText builds the vocabulary.
func NewRandomText(cfg RandomTextConfig) *RandomText {
	cfg = cfg.normalized()
	rng := NewRNG(cfg.Seed)
	vocab := make([]string, cfg.VocabWords)
	for i := range vocab {
		n := 3 + rng.Intn(8)
		var sb strings.Builder
		for j := 0; j < n; j++ {
			sb.WriteByte(byte('a' + rng.Intn(26)))
		}
		vocab[i] = sb.String()
	}
	return &RandomText{cfg: cfg, vocab: vocab, zipf: NewZipf(len(vocab), 1.05)}
}

// Line generates text line i.
func (t *RandomText) Line(i int) string {
	rng := NewRNG(t.cfg.Seed ^ 0x7e7e).Fork(uint64(i) + 1)
	words := t.cfg.WordsPerLine/2 + rng.Intn(t.cfg.WordsPerLine)
	if words < 1 {
		words = 1
	}
	parts := make([]string, words)
	for j := range parts {
		parts[j] = t.vocab[t.zipf.Sample(rng)]
	}
	return strings.Join(parts, " ")
}

// Len reports the configured number of lines.
func (t *RandomText) Len() int { return t.cfg.Lines }
