package datagen

import (
	"strconv"
	"strings"
)

// QueryLogConfig shapes the synthetic QLog substitute: real query logs
// have a Zipfian query-popularity distribution over a large pool of
// distinct queries averaging ~19 characters (the paper's QLog averages
// 19.07).
type QueryLogConfig struct {
	// Seed makes the log reproducible.
	Seed uint64
	// Queries is the number of log records to produce.
	Queries int
	// DistinctQueries is the pool of distinct query strings.
	// Defaults to max(1000, Queries/10).
	DistinctQueries int
	// VocabWords is the word vocabulary size. Defaults to 5000.
	VocabWords int
	// Skew is the Zipf exponent of query popularity. Defaults to 1.1.
	Skew float64
}

func (c QueryLogConfig) normalized() QueryLogConfig {
	if c.DistinctQueries <= 0 {
		c.DistinctQueries = max(1000, c.Queries/10)
	}
	if c.VocabWords <= 0 {
		c.VocabWords = 5000
	}
	if c.Skew == 0 {
		c.Skew = 1.1
	}
	return c
}

// QueryLogRecord is one search-log entry, mirroring QLog's schema:
// an anonymous user id, the query string, and two query features.
type QueryLogRecord struct {
	UserID      uint32
	Query       string
	Occurrences uint32 // total occurrences of the query in search logs
	Clicks      uint32 // total resulting links users browsed
}

// Line renders the record in QLog's tab-separated input format.
func (r QueryLogRecord) Line() string {
	var b strings.Builder
	b.WriteString("u")
	b.WriteString(strconv.FormatUint(uint64(r.UserID), 10))
	b.WriteByte('\t')
	b.WriteString(r.Query)
	b.WriteByte('\t')
	b.WriteString(strconv.FormatUint(uint64(r.Occurrences), 10))
	b.WriteByte('\t')
	b.WriteString(strconv.FormatUint(uint64(r.Clicks), 10))
	return b.String()
}

// ParseQueryLine extracts the query string from a QLog-format line.
func ParseQueryLine(line []byte) []byte {
	first := -1
	for i, c := range line {
		if c != '\t' {
			continue
		}
		if first < 0 {
			first = i
			continue
		}
		return line[first+1 : i]
	}
	if first >= 0 {
		return line[first+1:]
	}
	return line
}

// QueryLog is a deterministic generator over the synthetic search log.
type QueryLog struct {
	cfg     QueryLogConfig
	queries []string
	zipf    *Zipf
}

// NewQueryLog builds the query pool (words composed into 1-5 word
// queries, average length tuned near 19 chars) and its popularity
// distribution.
func NewQueryLog(cfg QueryLogConfig) *QueryLog {
	cfg = cfg.normalized()
	rng := NewRNG(cfg.Seed)

	vocab := make([]string, cfg.VocabWords)
	for i := range vocab {
		n := 2 + rng.Intn(7) // word length 2..8
		var sb strings.Builder
		for j := 0; j < n; j++ {
			sb.WriteByte(byte('a' + rng.Intn(26)))
		}
		vocab[i] = sb.String()
	}
	wordZipf := NewZipf(len(vocab), 1.0)

	queries := make([]string, cfg.DistinctQueries)
	for i := range queries {
		words := 1 + rng.Intn(5)
		parts := make([]string, words)
		for j := range parts {
			parts[j] = vocab[wordZipf.Sample(rng)]
		}
		queries[i] = strings.Join(parts, " ")
	}
	return &QueryLog{cfg: cfg, queries: queries, zipf: NewZipf(len(queries), cfg.Skew)}
}

// Record generates log entry i. Independent of other records, so splits
// can generate lazily and in parallel.
func (q *QueryLog) Record(i int) QueryLogRecord {
	rng := NewRNG(q.cfg.Seed ^ 0xabcd).Fork(uint64(i) + 1)
	query := q.queries[q.zipf.Sample(rng)]
	return QueryLogRecord{
		UserID:      uint32(rng.Intn(1 << 20)),
		Query:       query,
		Occurrences: uint32(rng.Intn(100000)),
		Clicks:      uint32(rng.Intn(1000)),
	}
}

// Len reports the configured number of records.
func (q *QueryLog) Len() int { return q.cfg.Queries }

// AvgQueryLen reports the mean distinct-query length in characters.
func (q *QueryLog) AvgQueryLen() float64 {
	total := 0
	for _, s := range q.queries {
		total += len(s)
	}
	return float64(total) / float64(len(q.queries))
}
