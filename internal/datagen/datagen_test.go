package datagen

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestRNGDeterministic(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed must give same stream")
		}
	}
	c := NewRNG(43)
	same := 0
	a = NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("different seeds produced %d collisions", same)
	}
}

func TestRNGUniformity(t *testing.T) {
	rng := NewRNG(1)
	buckets := make([]int, 10)
	const n = 100000
	for i := 0; i < n; i++ {
		buckets[rng.Intn(10)]++
	}
	for i, c := range buckets {
		if math.Abs(float64(c)-n/10) > n/100 {
			t.Errorf("bucket %d = %d, expected ~%d", i, c, n/10)
		}
	}
}

func TestRNGFloat64Range(t *testing.T) {
	rng := NewRNG(2)
	for i := 0; i < 10000; i++ {
		f := rng.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %f", f)
		}
	}
}

func TestRNGForkIndependence(t *testing.T) {
	base := NewRNG(7)
	f1 := base.Fork(1)
	base2 := NewRNG(7)
	_ = base2.Uint64() // consume what Fork consumed
	f1b := NewRNG(7).Fork(1)
	if f1.Uint64() != f1b.Uint64() {
		t.Error("Fork must be deterministic per (seed, stream)")
	}
}

func TestHash64Stable(t *testing.T) {
	h1 := Hash64([]byte("anti-combining"))
	h2 := Hash64([]byte("anti-combining"))
	if h1 != h2 {
		t.Error("Hash64 must be deterministic")
	}
	if Hash64([]byte("a")) == Hash64([]byte("b")) {
		t.Error("trivial collision")
	}
}

func TestZipfSkew(t *testing.T) {
	z := NewZipf(1000, 1.2)
	rng := NewRNG(3)
	counts := make([]int, 1000)
	const n = 200000
	for i := 0; i < n; i++ {
		counts[z.Sample(rng)]++
	}
	if counts[0] < counts[100]*10 {
		t.Errorf("rank 0 (%d) should dominate rank 100 (%d)", counts[0], counts[100])
	}
	// Monotone on average: head heavier than tail.
	head, tail := 0, 0
	for i := 0; i < 10; i++ {
		head += counts[i]
	}
	for i := 990; i < 1000; i++ {
		tail += counts[i]
	}
	if head < tail*20 {
		t.Errorf("head %d vs tail %d: not skewed enough", head, tail)
	}
}

func TestZipfRangeProperty(t *testing.T) {
	z := NewZipf(50, 1.0)
	rng := NewRNG(4)
	f := func(_ uint8) bool {
		s := z.Sample(rng)
		return s >= 0 && s < 50
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQueryLog(t *testing.T) {
	q := NewQueryLog(QueryLogConfig{Seed: 1, Queries: 5000})
	if q.Len() != 5000 {
		t.Errorf("Len = %d", q.Len())
	}
	// Deterministic per index.
	if q.Record(17) != q.Record(17) {
		t.Error("Record must be deterministic")
	}
	// Popularity skew: the most frequent query should repeat a lot.
	freq := map[string]int{}
	for i := 0; i < q.Len(); i++ {
		freq[q.Record(i).Query]++
	}
	maxFreq := 0
	for _, f := range freq {
		if f > maxFreq {
			maxFreq = f
		}
	}
	if maxFreq < 50 {
		t.Errorf("top query appears only %d times; want heavy skew", maxFreq)
	}
	// Average length near QLog's 19.07.
	avg := q.AvgQueryLen()
	if avg < 10 || avg > 30 {
		t.Errorf("avg query length %f outside a plausible band", avg)
	}
	// Line format round trip.
	rec := q.Record(3)
	if got := string(ParseQueryLine([]byte(rec.Line()))); got != rec.Query {
		t.Errorf("ParseQueryLine = %q, want %q", got, rec.Query)
	}
}

func TestParseQueryLineDegenerate(t *testing.T) {
	if got := string(ParseQueryLine([]byte("justonefield"))); got != "justonefield" {
		t.Errorf("no tabs: %q", got)
	}
	if got := string(ParseQueryLine([]byte("u1\tquery only"))); got != "query only" {
		t.Errorf("one tab: %q", got)
	}
}

func TestRandomText(t *testing.T) {
	rt := NewRandomText(RandomTextConfig{Seed: 2, Lines: 100})
	if rt.Len() != 100 {
		t.Errorf("Len = %d", rt.Len())
	}
	if rt.Line(5) != rt.Line(5) {
		t.Error("Line must be deterministic")
	}
	if rt.Line(5) == rt.Line(6) {
		t.Error("different lines should differ")
	}
	if len(strings.Fields(rt.Line(0))) == 0 {
		t.Error("line should contain words")
	}
}

func TestGraphSkew(t *testing.T) {
	g := NewGraph(GraphConfig{Seed: 3, Nodes: 2000, AvgOutDegree: 10})
	edges := g.Edges()
	if edges < 15000 || edges > 25000 {
		t.Errorf("edges = %d, want ~20000", edges)
	}
	if g.MaxOutDegree() < 50 {
		t.Errorf("max out-degree %d: power law should create hubs", g.MaxOutDegree())
	}
	for node, adj := range g.Out {
		for _, dst := range adj {
			if dst < 0 || int(dst) >= 2000 {
				t.Fatalf("node %d has out-of-range edge %d", node, dst)
			}
		}
	}
}

func TestCloud(t *testing.T) {
	c := NewCloud(CloudConfig{Seed: 4, Records: 1000, Days: 10, Stations: 20})
	if c.Len() != 1000 {
		t.Errorf("Len = %d", c.Len())
	}
	if c.Record(9) != c.Record(9) {
		t.Error("Record must be deterministic")
	}
	dates := map[int32]bool{}
	for i := 0; i < 1000; i++ {
		r := c.Record(i)
		dates[r.Date] = true
		if r.Latitude < -900 || r.Latitude > 900 {
			t.Fatalf("latitude out of range: %d", r.Latitude)
		}
		if r.Longitude < 0 || r.Longitude >= 3600 {
			t.Fatalf("longitude out of range: %d", r.Longitude)
		}
	}
	if len(dates) != 10 {
		t.Errorf("distinct dates = %d, want 10", len(dates))
	}
	rec := c.Record(0)
	d, lon, lat, ok := ParseCloudLine([]byte(rec.Line()))
	if !ok || d != rec.Date || lon != rec.Longitude || lat != rec.Latitude {
		t.Errorf("ParseCloudLine mismatch: %d %d %d %v", d, lon, lat, ok)
	}
	if n := strings.Count(rec.Line(), ","); n != 27 {
		t.Errorf("record has %d commas, want 27 (28 attributes)", n)
	}
}

func TestParseCloudLineBad(t *testing.T) {
	for _, bad := range []string{"", "1,2", "a,b,c", "1,2,x"} {
		if _, _, _, ok := ParseCloudLine([]byte(bad)); ok {
			t.Errorf("ParseCloudLine(%q) should fail", bad)
		}
	}
}
