package datagen

import (
	"strconv"
	"strings"
)

// CloudConfig shapes the Cloud substitute: extended cloud reports from
// ships and land stations, 28 attributes per record (Hahn & Warren).
// The theta-join of §7.7.3 equi-joins on (date, longitude) and bands on
// latitude, so those three attributes are generated with realistic
// clustering; the remaining 25 are filler measurements.
type CloudConfig struct {
	// Seed makes the data reproducible.
	Seed uint64
	// Records is the record count.
	Records int
	// Days is the number of distinct report dates. Defaults to 30.
	Days int
	// Stations is the number of distinct (longitude) stations per day
	// bucket. Defaults to 100.
	Stations int
}

func (c CloudConfig) normalized() CloudConfig {
	if c.Days <= 0 {
		c.Days = 30
	}
	if c.Stations <= 0 {
		c.Stations = 100
	}
	return c
}

// CloudRecord is one synoptic report. Attr holds the 25 filler
// measurement attributes.
type CloudRecord struct {
	Date      int32 // yyyymmdd
	Longitude int32 // tenths of a degree, 0..3599
	Latitude  int32 // tenths of a degree, -900..900
	Attr      [25]int32
}

// Line renders the record as the comma-separated input format.
func (r CloudRecord) Line() string {
	var b strings.Builder
	b.WriteString(strconv.Itoa(int(r.Date)))
	b.WriteByte(',')
	b.WriteString(strconv.Itoa(int(r.Longitude)))
	b.WriteByte(',')
	b.WriteString(strconv.Itoa(int(r.Latitude)))
	for _, a := range r.Attr {
		b.WriteByte(',')
		b.WriteString(strconv.Itoa(int(a)))
	}
	return b.String()
}

// ParseCloudLine parses the first three attributes of a record line.
func ParseCloudLine(line []byte) (date, longitude, latitude int32, ok bool) {
	fields := strings.SplitN(string(line), ",", 4)
	if len(fields) < 3 {
		return 0, 0, 0, false
	}
	d, err1 := strconv.Atoi(fields[0])
	lon, err2 := strconv.Atoi(fields[1])
	lat, err3 := strconv.Atoi(fields[2])
	if err1 != nil || err2 != nil || err3 != nil {
		return 0, 0, 0, false
	}
	return int32(d), int32(lon), int32(lat), true
}

// Cloud is a deterministic report generator.
type Cloud struct {
	cfg CloudConfig
}

// NewCloud returns a generator.
func NewCloud(cfg CloudConfig) *Cloud { return &Cloud{cfg: cfg.normalized()} }

// Record generates report i.
func (c *Cloud) Record(i int) CloudRecord {
	rng := NewRNG(c.cfg.Seed ^ 0xc10d).Fork(uint64(i) + 1)
	day := rng.Intn(c.cfg.Days)
	rec := CloudRecord{
		Date:      int32(20110301 + day), // a synthetic yyyymmdd run
		Longitude: int32(rng.Intn(c.cfg.Stations) * (3600 / c.cfg.Stations)),
		Latitude:  int32(rng.Intn(1801) - 900),
	}
	for j := range rec.Attr {
		rec.Attr[j] = int32(rng.Intn(1000))
	}
	return rec
}

// Len reports the configured record count.
func (c *Cloud) Len() int { return c.cfg.Records }
