// Package datagen produces the deterministic synthetic datasets standing
// in for the paper's inputs: a Zipfian search-query log (QLog), random
// text (RandomText), a power-law web graph (ClueWeb09), and ship/station
// cloud reports (Cloud). Every generator is a pure function of its seed,
// which also keeps LazySH's determinism requirement easy to satisfy when
// inputs are regenerated.
package datagen

// RNG is a SplitMix64 pseudo-random generator: tiny, fast, and with a
// fixed algorithm so generated datasets never change across Go releases.
type RNG struct {
	state uint64
}

// NewRNG seeds a generator.
func NewRNG(seed uint64) *RNG { return &RNG{state: seed} }

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a uniform int in [0, n). n must be positive.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("datagen: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a uniform float in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Fork derives an independent stream, so record i can be generated
// without generating records 0..i-1.
func (r *RNG) Fork(stream uint64) *RNG {
	return NewRNG(r.Uint64() ^ (stream * 0xd6e8feb86659fd93))
}

// Hash64 mixes a byte string into 64 bits (FNV-1a finished with a
// SplitMix64 scramble). Workloads use it to derive deterministic
// "random" choices from record content, which keeps Map deterministic
// as LazySH requires.
func Hash64(b []byte) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, c := range b {
		h ^= uint64(c)
		h *= prime64
	}
	h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9
	h = (h ^ (h >> 27)) * 0x94d049bb133111eb
	return h ^ (h >> 31)
}
