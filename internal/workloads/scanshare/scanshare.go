// Package scanshare implements the multi-query scan-sharing workload §1
// motivates: several aggregation queries are merged into one MapReduce
// job over a shared input scan (as Pig, Hive, MRShare and CoScan do),
// so a single scanned record "might have to be duplicated many times in
// order to forward it to the downstream operators of the queries
// involved" — one tagged copy per query. Those copies all carry the
// same value (the record), which is exactly Anti-Combining's sharing
// opportunity: EagerSH collapses the per-partition duplicates and
// LazySH ships the scanned record once per reduce task.
//
// The queries are simple group-by aggregations over Cloud reports:
// query q selects records with a hash-derived selectivity, groups them
// by one of the join attributes (date, longitude band, latitude band),
// and computes COUNT and SUM(latitude).
package scanshare

import (
	"fmt"
	"strconv"

	"repro/internal/datagen"
	"repro/internal/mr"
)

// Config shapes the merged job.
type Config struct {
	// Queries is how many downstream queries share the scan.
	// Defaults to 8.
	Queries int
	// SelectivityPct is each query's selection selectivity in percent.
	// Defaults to 100 (every record feeds every query).
	SelectivityPct int
	// Reducers is the number of reduce tasks. Defaults to 8.
	Reducers int
}

func (c Config) normalized() Config {
	if c.Queries <= 0 {
		c.Queries = 8
	}
	if c.SelectivityPct <= 0 || c.SelectivityPct > 100 {
		c.SelectivityPct = 100
	}
	if c.Reducers <= 0 {
		c.Reducers = 8
	}
	return c
}

// groupKey derives query q's group-by key for a record.
func groupKey(q int, date, lon, lat int32) string {
	switch q % 3 {
	case 0:
		return fmt.Sprintf("q%02d|d%d", q, date)
	case 1:
		return fmt.Sprintf("q%02d|x%d", q, lon/360) // 36-degree longitude bands
	default:
		return fmt.Sprintf("q%02d|y%d", q, (lat+900)/300) // 30-degree latitude bands
	}
}

// selected reports whether query q's selection keeps the record,
// deterministically (LazySH re-executes Map on the reducers).
func selected(cfg Config, q int, line []byte) bool {
	if cfg.SelectivityPct >= 100 {
		return true
	}
	h := datagen.Hash64(line) ^ (uint64(q)+1)*0x9e3779b97f4a7c15
	return int(h%100) < cfg.SelectivityPct
}

// mapper forwards each scanned record to every selecting query.
type mapper struct {
	mr.MapperBase
	cfg Config
}

// Map implements mr.Mapper over one Cloud record line.
func (m mapper) Map(key, value []byte, out mr.Emitter) error {
	date, lon, lat, ok := datagen.ParseCloudLine(value)
	if !ok {
		return fmt.Errorf("scanshare: bad record %q", value)
	}
	for q := 0; q < m.cfg.Queries; q++ {
		if !selected(m.cfg, q, value) {
			continue
		}
		// The value component is the record itself — the duplication
		// across queries that Anti-Combining removes.
		if err := out.Emit([]byte(groupKey(q, date, lon, lat)), value); err != nil {
			return err
		}
	}
	return nil
}

// reducer computes COUNT and SUM(latitude) per (query, group).
type reducer struct{ mr.ReducerBase }

// Reduce implements mr.Reducer.
func (reducer) Reduce(key []byte, values mr.ValueIter, out mr.Emitter) error {
	var count, sumLat int64
	for {
		v, ok := values.Next()
		if !ok {
			break
		}
		_, _, lat, ok2 := datagen.ParseCloudLine(v)
		if !ok2 {
			return fmt.Errorf("scanshare: bad record %q", v)
		}
		count++
		sumLat += int64(lat)
	}
	return out.Emit(key, []byte(FormatAgg(count, sumLat)))
}

// FormatAgg renders an aggregate result (shared with Reference).
func FormatAgg(count, sumLat int64) string {
	return strconv.FormatInt(count, 10) + "," + strconv.FormatInt(sumLat, 10)
}

// NewJob builds the merged scan-sharing job.
func NewJob(cfg Config) *mr.Job {
	cfg = cfg.normalized()
	return &mr.Job{
		Name:           "scanshare",
		NewMapper:      func() mr.Mapper { return mapper{cfg: cfg} },
		NewReducer:     func() mr.Reducer { return reducer{} },
		NumReduceTasks: cfg.Reducers,
		Deterministic:  true,
	}
}

// Splits streams Cloud record lines.
func Splits(cloud *datagen.Cloud, numSplits int) []mr.Split {
	if numSplits < 1 {
		numSplits = 1
	}
	per := (cloud.Len() + numSplits - 1) / numSplits
	var splits []mr.Split
	for start := 0; start < cloud.Len(); start += per {
		start, end := start, min(start+per, cloud.Len())
		splits = append(splits, &mr.GenSplit{Gen: func(emit func(k, v []byte) error) error {
			for i := start; i < end; i++ {
				if err := emit(nil, []byte(cloud.Record(i).Line())); err != nil {
					return err
				}
			}
			return nil
		}})
	}
	if len(splits) == 0 {
		splits = []mr.Split{&mr.MemSplit{}}
	}
	return splits
}

// Reference computes the expected per-(query, group) aggregates
// sequentially.
func Reference(cloud *datagen.Cloud, cfg Config) map[string]string {
	cfg = cfg.normalized()
	type agg struct{ count, sumLat int64 }
	aggs := map[string]*agg{}
	for i := 0; i < cloud.Len(); i++ {
		rec := cloud.Record(i)
		line := []byte(rec.Line())
		for q := 0; q < cfg.Queries; q++ {
			if !selected(cfg, q, line) {
				continue
			}
			k := groupKey(q, rec.Date, rec.Longitude, rec.Latitude)
			a, ok := aggs[k]
			if !ok {
				a = &agg{}
				aggs[k] = a
			}
			a.count++
			a.sumLat += int64(rec.Latitude)
		}
	}
	out := make(map[string]string, len(aggs))
	for k, a := range aggs {
		out[k] = FormatAgg(a.count, a.sumLat)
	}
	return out
}
