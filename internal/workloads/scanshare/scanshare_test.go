package scanshare

import (
	"testing"

	"repro/internal/anticombine"
	"repro/internal/datagen"
	"repro/internal/mr"
)

func testCloud() *datagen.Cloud {
	return datagen.NewCloud(datagen.CloudConfig{Seed: 81, Records: 600, Days: 6, Stations: 10})
}

func runAndCheck(t *testing.T, job *mr.Job, cloud *datagen.Cloud, cfg Config) *mr.Result {
	t.Helper()
	res, err := mr.Run(job, Splits(cloud, 4))
	if err != nil {
		t.Fatal(err)
	}
	want := Reference(cloud, cfg)
	got := map[string]string{}
	for _, r := range res.SortedOutput() {
		got[string(r.Key)] = string(r.Value)
	}
	if len(got) != len(want) {
		t.Fatalf("got %d groups, want %d", len(got), len(want))
	}
	for k, v := range want {
		if got[k] != v {
			t.Errorf("group %q: got %q, want %q", k, got[k], v)
		}
	}
	return res
}

func TestMatchesReference(t *testing.T) {
	cloud := testCloud()
	for _, cfg := range []Config{
		{Queries: 6, Reducers: 4},
		{Queries: 12, Reducers: 5, SelectivityPct: 40},
		{Queries: 1, Reducers: 3},
	} {
		runAndCheck(t, NewJob(cfg), cloud, cfg)
	}
}

func TestAntiCombinedMatchesReference(t *testing.T) {
	cloud := testCloud()
	cfg := Config{Queries: 10, Reducers: 4, SelectivityPct: 70}
	for _, opts := range []anticombine.Options{
		anticombine.AdaptiveInf(),
		anticombine.Adaptive0(),
		{Strategy: anticombine.LazyOnly},
	} {
		runAndCheck(t, anticombine.Wrap(NewJob(cfg), opts), cloud, cfg)
	}
}

func TestSharingCollapsesQueryDuplication(t *testing.T) {
	// §1's claim: the shared operator's record is duplicated once per
	// downstream query; Anti-Combining collapses those duplicates to at
	// most one record per touched reduce task.
	cloud := testCloud()
	cfg := Config{Queries: 16, Reducers: 4}
	orig, err := mr.Run(NewJob(cfg), Splits(cloud, 4))
	if err != nil {
		t.Fatal(err)
	}
	anti, err := mr.Run(anticombine.Wrap(NewJob(cfg), anticombine.AdaptiveInf()), Splits(cloud, 4))
	if err != nil {
		t.Fatal(err)
	}
	if orig.Stats.MapOutputRecords != int64(cloud.Len()*cfg.Queries) {
		t.Errorf("original records = %d, want %d", orig.Stats.MapOutputRecords,
			cloud.Len()*cfg.Queries)
	}
	// With 16 queries over 4 reducers, at most 4 records per input.
	if anti.Stats.MapOutputRecords > int64(cloud.Len()*cfg.Reducers) {
		t.Errorf("anti records = %d, want <= %d", anti.Stats.MapOutputRecords,
			cloud.Len()*cfg.Reducers)
	}
	if anti.Stats.MapOutputBytes*3 > orig.Stats.MapOutputBytes {
		t.Errorf("anti bytes %d not well below original %d",
			anti.Stats.MapOutputBytes, orig.Stats.MapOutputBytes)
	}
}

func TestSelectivityIsDeterministic(t *testing.T) {
	cfg := Config{Queries: 4, SelectivityPct: 50}.normalized()
	line := []byte("20110301,720,100,1,2,3")
	for q := 0; q < 4; q++ {
		if selected(cfg, q, line) != selected(cfg, q, line) {
			t.Fatal("selection must be deterministic for LazySH")
		}
	}
}
