// Package wordcount implements the WordCount workload of §7.7.1: Map
// emits (word, 1) per word, a sum Combiner collapses counts per map
// task, Reduce totals the partial sums. Every Map output in a call
// shares the value "1", so Anti-Combining's EagerSH collapses a line's
// words per partition into one record even before the combiner runs.
package wordcount

import (
	"strconv"
	"strings"

	"repro/internal/datagen"
	"repro/internal/mr"
)

type mapper struct{ mr.MapperBase }

// Map implements mr.Mapper over a line of text.
func (mapper) Map(key, value []byte, out mr.Emitter) error {
	for _, w := range strings.Fields(string(value)) {
		if err := out.Emit([]byte(w), []byte("1")); err != nil {
			return err
		}
	}
	return nil
}

type sumReducer struct{ mr.ReducerBase }

// Reduce implements mr.Reducer (and the Combiner contract) by summing
// decimal counts.
func (sumReducer) Reduce(key []byte, values mr.ValueIter, out mr.Emitter) error {
	var total uint64
	for {
		v, ok := values.Next()
		if !ok {
			break
		}
		n, err := strconv.ParseUint(string(v), 10, 64)
		if err != nil {
			return err
		}
		total += n
	}
	return out.Emit(key, []byte(strconv.FormatUint(total, 10)))
}

// NewJob builds the WordCount job with its (highly effective) combiner.
func NewJob(reducers int) *mr.Job {
	if reducers <= 0 {
		reducers = 8
	}
	return &mr.Job{
		Name:           "wordcount",
		NewMapper:      func() mr.Mapper { return mapper{} },
		NewReducer:     func() mr.Reducer { return sumReducer{} },
		NewCombiner:    func() mr.Reducer { return sumReducer{} },
		NumReduceTasks: reducers,
		Deterministic:  true,
	}
}

// Splits streams lines from a random-text generator.
func Splits(text *datagen.RandomText, numSplits int) []mr.Split {
	if numSplits < 1 {
		numSplits = 1
	}
	per := (text.Len() + numSplits - 1) / numSplits
	var splits []mr.Split
	for start := 0; start < text.Len(); start += per {
		start, end := start, min(start+per, text.Len())
		splits = append(splits, &mr.GenSplit{Gen: func(emit func(k, v []byte) error) error {
			for i := start; i < end; i++ {
				if err := emit(nil, []byte(text.Line(i))); err != nil {
					return err
				}
			}
			return nil
		}})
	}
	if len(splits) == 0 {
		splits = []mr.Split{&mr.MemSplit{}}
	}
	return splits
}

// Reference computes exact word counts sequentially for tests.
func Reference(text *datagen.RandomText) map[string]uint64 {
	counts := make(map[string]uint64)
	for i := 0; i < text.Len(); i++ {
		for _, w := range strings.Fields(text.Line(i)) {
			counts[w]++
		}
	}
	return counts
}
