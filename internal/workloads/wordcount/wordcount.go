// Package wordcount implements the WordCount workload of §7.7.1: Map
// emits (word, 1) per word, a sum Combiner collapses counts per map
// task, Reduce totals the partial sums. Every Map output in a call
// shares the value "1", so Anti-Combining's EagerSH collapses a line's
// words per partition into one record even before the combiner runs.
package wordcount

import (
	"strconv"
	"strings"

	"repro/internal/datagen"
	"repro/internal/monoid"
	"repro/internal/mr"
)

type mapper struct{ mr.MapperBase }

// Map implements mr.Mapper over a line of text.
func (mapper) Map(key, value []byte, out mr.Emitter) error {
	for _, w := range strings.Fields(string(value)) {
		if err := out.Emit([]byte(w), []byte("1")); err != nil {
			return err
		}
	}
	return nil
}

// Sum is WordCount's aggregation monoid: decimal counts under addition.
// Combiner and reducer are both derived from it.
type Sum struct{}

// Identity implements monoid.Monoid.
func (Sum) Identity() any { return uint64(0) }

// Absorb implements monoid.Monoid: values are decimal counts ("1" from
// the mapper, partial sums from earlier combiner passes).
func (Sum) Absorb(s any, value []byte) (any, error) {
	n, err := strconv.ParseUint(string(value), 10, 64)
	if err != nil {
		return nil, err
	}
	return s.(uint64) + n, nil
}

// Merge implements monoid.Monoid.
func (Sum) Merge(a, b any) (any, error) { return a.(uint64) + b.(uint64), nil }

// EmitState implements monoid.Monoid.
func (Sum) EmitState(key []byte, s any, out mr.Emitter) error {
	return out.Emit(key, []byte(strconv.FormatUint(s.(uint64), 10)))
}

// CommutativeMonoid marks integer addition as commutative.
func (Sum) CommutativeMonoid() {}

// NewJob builds the WordCount job; combiner and reducer are both
// derived from the Sum monoid.
func NewJob(reducers int) *mr.Job {
	if reducers <= 0 {
		reducers = 8
	}
	return &mr.Job{
		Name:           "wordcount",
		NewMapper:      func() mr.Mapper { return mapper{} },
		NewReducer:     monoid.Reducer(Sum{}, nil),
		NewCombiner:    monoid.Combiner(Sum{}),
		NumReduceTasks: reducers,
		Deterministic:  true,
	}
}

// NewInMapperJob is NewJob with in-mapper combining derived from the
// same monoid declaration in place of the classic combiner.
func NewInMapperJob(reducers, maxEntries int) *mr.Job {
	job := NewJob(reducers)
	job.Name = "wordcount-inmapper"
	job.NewMapper = monoid.InMapper(job.NewMapper, Sum{}, maxEntries)
	job.NewCombiner = nil
	return job
}

// Splits streams lines from a random-text generator.
func Splits(text *datagen.RandomText, numSplits int) []mr.Split {
	if numSplits < 1 {
		numSplits = 1
	}
	per := (text.Len() + numSplits - 1) / numSplits
	var splits []mr.Split
	for start := 0; start < text.Len(); start += per {
		start, end := start, min(start+per, text.Len())
		splits = append(splits, &mr.GenSplit{Gen: func(emit func(k, v []byte) error) error {
			for i := start; i < end; i++ {
				if err := emit(nil, []byte(text.Line(i))); err != nil {
					return err
				}
			}
			return nil
		}})
	}
	if len(splits) == 0 {
		splits = []mr.Split{&mr.MemSplit{}}
	}
	return splits
}

// Reference computes exact word counts sequentially for tests.
func Reference(text *datagen.RandomText) map[string]uint64 {
	counts := make(map[string]uint64)
	for i := 0; i < text.Len(); i++ {
		for _, w := range strings.Fields(text.Line(i)) {
			counts[w]++
		}
	}
	return counts
}
