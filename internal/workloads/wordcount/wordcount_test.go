package wordcount

import (
	"strconv"
	"testing"

	"repro/internal/anticombine"
	"repro/internal/datagen"
	"repro/internal/mr"
)

func testText() *datagen.RandomText {
	return datagen.NewRandomText(datagen.RandomTextConfig{
		Seed: 21, Lines: 300, WordsPerLine: 15, VocabWords: 200,
	})
}

func check(t *testing.T, res *mr.Result, text *datagen.RandomText) {
	t.Helper()
	want := Reference(text)
	got := make(map[string]uint64)
	for _, r := range res.SortedOutput() {
		n, err := strconv.ParseUint(string(r.Value), 10, 64)
		if err != nil {
			t.Fatalf("bad count %q", r.Value)
		}
		got[string(r.Key)] = n
	}
	if len(got) != len(want) {
		t.Fatalf("got %d words, want %d", len(got), len(want))
	}
	for w, n := range want {
		if got[w] != n {
			t.Errorf("%q = %d, want %d", w, got[w], n)
		}
	}
}

func TestEndToEnd(t *testing.T) {
	text := testText()
	res, err := mr.Run(NewJob(4), Splits(text, 5))
	if err != nil {
		t.Fatal(err)
	}
	check(t, res, text)
	if res.Stats.CombineInputRecords == 0 {
		t.Error("combiner should have run")
	}
}

func TestInMapperDerivedFromMonoid(t *testing.T) {
	// The in-mapper combining wrapper derived from the Sum monoid must
	// produce the same counts and actually pre-aggregate map output.
	text := testText()
	res, err := mr.Run(NewInMapperJob(4, 0), Splits(text, 5))
	if err != nil {
		t.Fatal(err)
	}
	check(t, res, text)
	plain, err := mr.Run(NewJob(4), Splits(text, 5))
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.MapOutputRecords >= plain.Stats.MapOutputRecords {
		t.Errorf("in-mapper combining did not shrink map output: %d >= %d",
			res.Stats.MapOutputRecords, plain.Stats.MapOutputRecords)
	}
}

func TestWrapMonoidDerivesCombiner(t *testing.T) {
	// anticombine.WrapMonoid must behave like Wrap over the hand-wired
	// combiner: correct output, encoded map records well below original.
	text := testText()
	base := NewJob(4)
	base.NewCombiner = nil
	job := anticombine.WrapMonoid(base, Sum{}, anticombine.Options{
		Strategy:    anticombine.Adaptive,
		MapCombiner: true,
	})
	res, err := mr.Run(job, Splits(text, 5))
	if err != nil {
		t.Fatal(err)
	}
	check(t, res, text)
	orig := res.Stats.Extra[anticombine.CounterOrigMapRecords]
	if res.Stats.MapOutputRecords*2 > orig {
		t.Errorf("encoded records %d not well below original %d",
			res.Stats.MapOutputRecords, orig)
	}
}

func TestAntiCombinedWithMapCombiner(t *testing.T) {
	// §7.7.1's configuration: effective combiner kept in the map phase
	// (C=1), operating on encoded records via the transformed combiner.
	text := testText()
	job := anticombine.Wrap(NewJob(4), anticombine.Options{
		Strategy:    anticombine.Adaptive,
		MapCombiner: true,
	})
	res, err := mr.Run(job, Splits(text, 5))
	if err != nil {
		t.Fatal(err)
	}
	check(t, res, text)

	// Encoded map output must have fewer records than the original map
	// would emit (the paper's 7× pre-combine reduction).
	orig := res.Stats.Extra[anticombine.CounterOrigMapRecords]
	if res.Stats.MapOutputRecords*2 > orig {
		t.Errorf("encoded records %d not well below original %d",
			res.Stats.MapOutputRecords, orig)
	}
}

func TestAntiCombinedStrategies(t *testing.T) {
	text := testText()
	for _, opts := range []anticombine.Options{
		anticombine.Adaptive0(),
		{Strategy: anticombine.LazyOnly},
	} {
		res, err := mr.Run(anticombine.Wrap(NewJob(4), opts), Splits(text, 5))
		if err != nil {
			t.Fatal(err)
		}
		check(t, res, text)
	}
}
