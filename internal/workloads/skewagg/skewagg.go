// Package skewagg is an adversarially skewed aggregation workload: a
// keyed sum over records whose keys follow a steep Zipf distribution,
// built to break hash partitioning — at the default exponent the top
// key alone carries well over half the map output, so the reducer that
// hashes it inherits several times the mean partition load. It is the
// proving ground for internal/partition: range partitioning isolates
// the hot key but cannot shrink it below one reducer, and heavy-hitter
// splitting fans it out with reduce-side partial aggregation.
//
// The job runs without a map-side combiner by default (MapCombiner
// opts one in): the paper's anti-combining premise is that combiners
// are often ineffective or absent, and an uncombined shuffle is what
// exposes partition skew as real network imbalance. The aggregate —
// count, sum, and an XOR fold of per-record hashes — is a commutative
// monoid, so partial aggregates merge to byte-identical finals
// regardless of how records were grouped, which is exactly the
// contract heavy-hitter splitting needs.
package skewagg

import (
	"bytes"
	"fmt"
	"strconv"

	"repro/internal/datagen"
	"repro/internal/monoid"
	"repro/internal/mr"
)

// Config shapes the generator and job.
type Config struct {
	// Records is the dataset size. Default 20000.
	Records int
	// Keys is the distinct key count. Default 400.
	Keys int
	// Exponent is the Zipf exponent; 2.2 (default) puts ~65% of the
	// mass on the top key.
	Exponent float64
	// ValueBytes pads each record's payload so framing overhead stays
	// proportionally small. Default 64.
	ValueBytes int
	// Reducers is the reduce task count. Default 8.
	Reducers int
	// Seed makes the dataset reproducible. Default 1.
	Seed uint64
	// HeavyRanks, when non-empty, redirects HeavyShare of the records
	// evenly onto the listed key ranks before the Zipf tail draws the
	// rest. It builds the *other* adversarial shape: several mid-weight
	// keys, none larger than a reducer, that collide under the default
	// hash partitioner (ranks 4, 17, and 22 all hash to one partition
	// of 8) — the case range partitioning fixes without splitting.
	HeavyRanks []int
	// HeavyShare is the record fraction HeavyRanks receives. Default
	// 0.4 when HeavyRanks is set.
	HeavyShare float64
	// MapCombiner keeps a map-side combiner on the job. Off by
	// default: combining would collapse each partition to a handful of
	// records and hide the shuffle imbalance under study.
	MapCombiner bool
}

func (c Config) normalized() Config {
	if c.Records <= 0 {
		c.Records = 20000
	}
	if c.Keys <= 0 {
		c.Keys = 400
	}
	if c.Exponent <= 0 {
		c.Exponent = 2.2
	}
	if c.ValueBytes <= 0 {
		c.ValueBytes = 64
	}
	if c.Reducers <= 0 {
		c.Reducers = 8
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if len(c.HeavyRanks) > 0 && c.HeavyShare <= 0 {
		c.HeavyShare = 0.4
	}
	return c
}

// Gen deterministically generates the dataset: record i is a pure
// function of (seed, i), so splits can be cut anywhere.
type Gen struct {
	cfg  Config
	zipf *datagen.Zipf
}

// NewGen builds a generator.
func NewGen(cfg Config) *Gen {
	cfg = cfg.normalized()
	return &Gen{cfg: cfg, zipf: datagen.NewZipf(cfg.Keys, cfg.Exponent)}
}

// Len is the record count.
func (g *Gen) Len() int { return g.cfg.Records }

const pad = "abcdefghijklmnopqrstuvwxyz0123456789"

// Line renders record i: "key<TAB>n:<count>:<payload>".
func (g *Gen) Line(i int) string {
	rng := datagen.NewRNG(g.cfg.Seed).Fork(uint64(i))
	var rank int
	if len(g.cfg.HeavyRanks) > 0 && rng.Float64() < g.cfg.HeavyShare {
		rank = g.cfg.HeavyRanks[rng.Intn(len(g.cfg.HeavyRanks))]
	} else {
		rank = g.zipf.Sample(rng)
	}
	n := rng.Intn(1000)
	var payload bytes.Buffer
	for payload.Len() < g.cfg.ValueBytes {
		payload.WriteByte(pad[rng.Intn(len(pad))])
	}
	return fmt.Sprintf("key%05d\t%d:%s", rank, n, payload.String())
}

// mapper parses "key<TAB>value" lines and emits them keyed.
type mapper struct{ mr.MapperBase }

// Map implements mr.Mapper.
func (mapper) Map(key, value []byte, out mr.Emitter) error {
	tab := bytes.IndexByte(value, '\t')
	if tab < 0 {
		return fmt.Errorf("skewagg: record without tab: %q", value)
	}
	return out.Emit(value[:tab], value[tab+1:])
}

// aggState is the aggregation state of the Agg monoid.
type aggState struct {
	count, sum int64
	xor        uint64
}

// Agg is the workload's aggregation monoid: (count, sum, xor-of-hashes)
// with component-wise addition/XOR. It folds raw records
// ("<n>:<payload>") and partial aggregates ("a:<count>:<sum>:<xor>")
// alike, so its derived combiner can be reapplied at every level —
// count and sum add and the hash fold XORs, so any grouping of the same
// record multiset reduces to identical bytes (the contract heavy-hitter
// splitting needs, now property-tested instead of assumed).
type Agg struct{}

// Identity implements monoid.Monoid.
func (Agg) Identity() any { return &aggState{} }

// Absorb implements monoid.Monoid.
func (Agg) Absorb(s any, v []byte) (any, error) {
	st := s.(*aggState)
	if bytes.HasPrefix(v, []byte("a:")) {
		parts := bytes.Split(v, []byte(":"))
		if len(parts) != 4 {
			return nil, fmt.Errorf("skewagg: bad partial %q", v)
		}
		c, err := strconv.ParseInt(string(parts[1]), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("skewagg: bad partial count %q: %w", v, err)
		}
		sum, err := strconv.ParseInt(string(parts[2]), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("skewagg: bad partial sum %q: %w", v, err)
		}
		x, err := strconv.ParseUint(string(parts[3]), 16, 64)
		if err != nil {
			return nil, fmt.Errorf("skewagg: bad partial xor %q: %w", v, err)
		}
		st.count += c
		st.sum += sum
		st.xor ^= x
		return st, nil
	}
	colon := bytes.IndexByte(v, ':')
	if colon < 0 {
		return nil, fmt.Errorf("skewagg: bad record %q", v)
	}
	n, err := strconv.ParseInt(string(v[:colon]), 10, 64)
	if err != nil {
		return nil, fmt.Errorf("skewagg: bad record count %q: %w", v, err)
	}
	st.count++
	st.sum += n
	st.xor ^= datagen.Hash64(v)
	return st, nil
}

// Merge implements monoid.Monoid.
func (Agg) Merge(a, b any) (any, error) {
	x, y := a.(*aggState), b.(*aggState)
	x.count += y.count
	x.sum += y.sum
	x.xor ^= y.xor
	return x, nil
}

// EmitState implements monoid.Monoid.
func (Agg) EmitState(key []byte, s any, out mr.Emitter) error {
	st := s.(*aggState)
	return out.Emit(key, []byte(fmt.Sprintf("a:%d:%d:%016x", st.count, st.sum, st.xor)))
}

// CommutativeMonoid marks the aggregate as commutative (addition and
// XOR both commute).
func (Agg) CommutativeMonoid() {}

// NewJob builds the skewed aggregation job. The partitioner is left at
// the engine default (hash) — internal/partition.Apply swaps it.
func NewJob(cfg Config) *mr.Job {
	cfg = cfg.normalized()
	j := &mr.Job{
		Name:           "skewagg",
		NewMapper:      func() mr.Mapper { return mapper{} },
		NewReducer:     monoid.Reducer(Agg{}, nil),
		NumReduceTasks: cfg.Reducers,
		Deterministic:  true,
	}
	if cfg.MapCombiner {
		j.NewCombiner = NewCombiner
	}
	return j
}

// NewCombiner is the aggregation's monoid combiner factory — what
// partition.SplitJob uses for reduce-side partial aggregation even
// when the job itself runs combiner-less.
var NewCombiner = monoid.Combiner(Agg{})

// Splits streams generated lines.
func Splits(g *Gen, numSplits int) []mr.Split {
	if numSplits < 1 {
		numSplits = 1
	}
	per := (g.Len() + numSplits - 1) / numSplits
	var splits []mr.Split
	for start := 0; start < g.Len(); start += per {
		start, end := start, min(start+per, g.Len())
		splits = append(splits, &mr.GenSplit{Gen: func(emit func(k, v []byte) error) error {
			for i := start; i < end; i++ {
				if err := emit(nil, []byte(g.Line(i))); err != nil {
					return err
				}
			}
			return nil
		}})
	}
	if len(splits) == 0 {
		splits = []mr.Split{&mr.MemSplit{}}
	}
	return splits
}

// Reference computes the exact aggregate lines sequentially for tests.
func Reference(g *Gen) map[string]string {
	type agg struct {
		count, sum int64
		xor        uint64
	}
	accs := make(map[string]*agg)
	for i := 0; i < g.Len(); i++ {
		line := g.Line(i)
		tab := bytes.IndexByte([]byte(line), '\t')
		key, v := line[:tab], line[tab+1:]
		a := accs[key]
		if a == nil {
			a = &agg{}
			accs[key] = a
		}
		colon := bytes.IndexByte([]byte(v), ':')
		n, _ := strconv.ParseInt(v[:colon], 10, 64)
		a.count++
		a.sum += n
		a.xor ^= datagen.Hash64([]byte(v))
	}
	out := make(map[string]string, len(accs))
	for k, a := range accs {
		out[k] = fmt.Sprintf("a:%d:%d:%016x", a.count, a.sum, a.xor)
	}
	return out
}
