// Package sortwl implements the Hadoop Sort workload used by §7.1's
// overhead analysis: Map emits exactly one output record per input
// record (the record itself), so there are no sharing opportunities and
// Anti-Combining's adaptive encoder must degrade to plain records whose
// only cost is the one-byte encoding flag.
package sortwl

import (
	"repro/internal/datagen"
	"repro/internal/mr"
)

type mapper struct{ mr.MapperBase }

// Map implements mr.Mapper: the line becomes the sort key.
func (mapper) Map(key, value []byte, out mr.Emitter) error {
	return out.Emit(value, nil)
}

type reducer struct{ mr.ReducerBase }

// Reduce implements mr.Reducer, emitting each key once per occurrence.
func (reducer) Reduce(key []byte, values mr.ValueIter, out mr.Emitter) error {
	for {
		if _, ok := values.Next(); !ok {
			return nil
		}
		if err := out.Emit(key, nil); err != nil {
			return err
		}
	}
}

// NewJob builds the Sort job.
func NewJob(reducers int) *mr.Job {
	if reducers <= 0 {
		reducers = 8
	}
	return &mr.Job{
		Name:           "sort",
		NewMapper:      func() mr.Mapper { return mapper{} },
		NewReducer:     func() mr.Reducer { return reducer{} },
		NumReduceTasks: reducers,
		Deterministic:  true,
	}
}

// Splits streams random-text lines as sort input.
func Splits(text *datagen.RandomText, numSplits int) []mr.Split {
	if numSplits < 1 {
		numSplits = 1
	}
	per := (text.Len() + numSplits - 1) / numSplits
	var splits []mr.Split
	for start := 0; start < text.Len(); start += per {
		start, end := start, min(start+per, text.Len())
		splits = append(splits, &mr.GenSplit{Gen: func(emit func(k, v []byte) error) error {
			for i := start; i < end; i++ {
				if err := emit(nil, []byte(text.Line(i))); err != nil {
					return err
				}
			}
			return nil
		}})
	}
	if len(splits) == 0 {
		splits = []mr.Split{&mr.MemSplit{}}
	}
	return splits
}
