package sortwl

import (
	"sort"
	"testing"

	"repro/internal/anticombine"
	"repro/internal/datagen"
	"repro/internal/mr"
)

func testText() *datagen.RandomText {
	return datagen.NewRandomText(datagen.RandomTextConfig{
		Seed: 51, Lines: 400, WordsPerLine: 8, VocabWords: 500,
	})
}

func TestSortProducesSortedRuns(t *testing.T) {
	text := testText()
	res, err := mr.Run(NewJob(3), Splits(text, 4))
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.ReduceOutputRecords != int64(text.Len()) {
		t.Errorf("output records = %d, want %d", res.Stats.ReduceOutputRecords, text.Len())
	}
	for p, part := range res.Output {
		keys := make([]string, len(part))
		for i, r := range part {
			keys[i] = string(r.Key)
		}
		if !sort.StringsAreSorted(keys) {
			t.Errorf("partition %d output not sorted", p)
		}
	}
}

func TestAntiCombiningOverheadIsFlagOnly(t *testing.T) {
	// §7.1: on Sort there are no sharing opportunities; AdaptiveSH must
	// fall back to plain records, and the byte overhead must be exactly
	// the one-byte-per-record encoding flag (framing aside).
	text := testText()
	run := func(wrap bool) *mr.Result {
		job := NewJob(3)
		if wrap {
			job = anticombine.Wrap(job, anticombine.AdaptiveInf())
		}
		res, err := mr.Run(job, Splits(text, 4))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	orig, anti := run(false), run(true)
	if anti.Stats.MapOutputRecords != orig.Stats.MapOutputRecords {
		t.Errorf("record counts differ: %d vs %d",
			anti.Stats.MapOutputRecords, orig.Stats.MapOutputRecords)
	}
	extra := anti.Stats.MapOutputBytes - orig.Stats.MapOutputBytes
	if extra != anti.Stats.MapOutputRecords {
		t.Errorf("overhead = %d bytes over %d records; want exactly 1 byte/record",
			extra, anti.Stats.MapOutputRecords)
	}
	if lazy := anti.Stats.Extra[anticombine.CounterLazyRecords]; lazy != 0 {
		t.Errorf("adaptive chose lazy %d times on Sort; want 0", lazy)
	}
	if eager := anti.Stats.Extra[anticombine.CounterEagerRecords]; eager != 0 {
		t.Errorf("adaptive built eager key sets %d times on Sort; want 0", eager)
	}
	if anti.Stats.ReduceOutputRecords != orig.Stats.ReduceOutputRecords {
		t.Error("outputs differ")
	}
}
