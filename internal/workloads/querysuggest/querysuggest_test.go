package querysuggest

import (
	"testing"

	"repro/internal/anticombine"
	"repro/internal/datagen"
	"repro/internal/mr"
)

func testLog() *datagen.QueryLog {
	return datagen.NewQueryLog(datagen.QueryLogConfig{
		Seed: 11, Queries: 800, DistinctQueries: 120, VocabWords: 300,
	})
}

func runAndCompare(t *testing.T, job *mr.Job, log *datagen.QueryLog) *mr.Result {
	t.Helper()
	res, err := mr.Run(job, Splits(log, 5))
	if err != nil {
		t.Fatal(err)
	}
	want := Reference(log, 5)
	got := make(map[string]string)
	for _, r := range res.SortedOutput() {
		got[string(r.Key)] = string(r.Value)
	}
	if len(got) != len(want) {
		t.Fatalf("got %d prefixes, want %d", len(got), len(want))
	}
	for p, w := range want {
		if got[p] != w {
			t.Errorf("prefix %q: got %q want %q", p, got[p], w)
		}
	}
	return res
}

func TestEndToEndMatchesReference(t *testing.T) {
	log := testLog()
	for _, tc := range []struct {
		name string
		part mr.Partitioner
		comb bool
	}{
		{"hash", nil, false},
		{"hash-combiner", nil, true},
		{"prefix1", PrefixPartitioner{K: 1}, false},
		{"prefix5", PrefixPartitioner{K: 5}, false},
	} {
		t.Run(tc.name, func(t *testing.T) {
			runAndCompare(t, NewJob(Config{Partitioner: tc.part, Reducers: 6}, tc.comb), log)
		})
	}
}

func TestAntiCombinedMatchesReference(t *testing.T) {
	log := testLog()
	for _, tc := range []struct {
		name string
		opts anticombine.Options
	}{
		{"adaptive", anticombine.AdaptiveInf()},
		{"eager", anticombine.Adaptive0()},
		{"lazy", anticombine.Options{Strategy: anticombine.LazyOnly}},
		{"alpha", anticombine.AdaptiveAlpha()},
	} {
		t.Run(tc.name, func(t *testing.T) {
			job := NewJob(Config{Partitioner: PrefixPartitioner{K: 5}, Reducers: 6}, false)
			runAndCompare(t, anticombine.Wrap(job, tc.opts), log)
		})
	}
}

func TestAntiCombinedWithCombinerMatchesReference(t *testing.T) {
	log := testLog()
	// §7.3's setup: combiner present, C = 0 (map combiner off); the
	// combiner still collapses Shared in the reduce phase.
	job := NewJob(Config{Partitioner: PrefixPartitioner{K: 1}, Reducers: 4}, true)
	res := runAndCompare(t, anticombine.Wrap(job, anticombine.AdaptiveInf()), log)
	if res.Stats.CombineInputRecords != 0 {
		t.Error("map-phase combiner should be off under C=0")
	}
}

func TestDataReductionShape(t *testing.T) {
	// Figure 9's qualitative shape: anti-combined map output is much
	// smaller than the original, and Prefix-1 shares more than Hash.
	log := testLog()
	size := func(part mr.Partitioner, wrap bool) int64 {
		job := NewJob(Config{Partitioner: part, Reducers: 6}, false)
		if wrap {
			job = anticombine.Wrap(job, anticombine.AdaptiveInf())
		}
		res, err := mr.Run(job, Splits(log, 5))
		if err != nil {
			t.Fatal(err)
		}
		return res.Stats.MapOutputBytes
	}
	origHash := size(nil, false)
	antiHash := size(nil, true)
	antiP1 := size(PrefixPartitioner{K: 1}, true)
	if antiHash*2 > origHash {
		t.Errorf("anti (hash) %d not well below original %d", antiHash, origHash)
	}
	if antiP1 >= antiHash {
		t.Errorf("prefix-1 (%d) should share more than hash (%d)", antiP1, antiHash)
	}
}

func TestValueCodec(t *testing.T) {
	v := EncodeValue(42, []byte("sigmod"))
	c, q, err := DecodeValue(v)
	if err != nil || c != 42 || string(q) != "sigmod" {
		t.Errorf("decode = %d %q %v", c, q, err)
	}
	if _, _, err := DecodeValue(nil); err == nil {
		t.Error("empty value should fail")
	}
}

func TestPrefixPartitionerGroupsPrefixes(t *testing.T) {
	p := PrefixPartitioner{K: 1}
	a := p.Partition([]byte("mango"), 7)
	b := p.Partition([]byte("map"), 7)
	c := p.Partition([]byte("m"), 7)
	if a != b || b != c {
		t.Errorf("same first letter must share a partition: %d %d %d", a, b, c)
	}
}

func TestFormatTop(t *testing.T) {
	counts := map[string]uint64{"aa": 3, "bb": 3, "cc": 1, "dd": 9}
	got := FormatTop(counts, 3)
	if got != "dd:9|aa:3|bb:3" {
		t.Errorf("FormatTop = %q", got)
	}
	if FormatTop(nil, 5) != "" {
		t.Error("empty counts should format empty")
	}
}
