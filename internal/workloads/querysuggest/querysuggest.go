// Package querysuggest implements the paper's running example (§2): for
// every prefix P of any logged search query, compute the top-k most
// frequent queries starting with P. Map emits (prefix, query) for each
// prefix — output quadratic in the query length — making the
// shuffle-and-sort phase the job's bottleneck and the workload the
// paper's primary evaluation vehicle (Figures 9-11, Tables 1-2).
package querysuggest

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/bytesx"
	"repro/internal/datagen"
	"repro/internal/monoid"
	"repro/internal/mr"
)

// Config shapes the Query-Suggestion job.
type Config struct {
	// TopK is how many suggestions to keep per prefix. Defaults to 5,
	// the paper's choice.
	TopK int
	// Reducers is the number of reduce tasks. Defaults to 8.
	Reducers int
	// Partitioner routes prefixes to reduce tasks; §7.2 compares Hash,
	// Prefix-1, and Prefix-5. Defaults to Hash.
	Partitioner mr.Partitioner
}

func (c Config) normalized() Config {
	if c.TopK <= 0 {
		c.TopK = 5
	}
	if c.Reducers <= 0 {
		c.Reducers = 8
	}
	if c.Partitioner == nil {
		c.Partitioner = mr.HashPartitioner{}
	}
	return c
}

// EncodeValue packs a (count, query) pair into a value component. The
// original Map always emits count 1; the Combiner folds duplicates into
// the paper's "(key, (value, m))" aggregate records.
func EncodeValue(count uint64, query []byte) []byte {
	buf := bytesx.AppendUvarint(nil, count)
	return append(buf, query...)
}

// DecodeValue unpacks a value component. The query aliases buf.
func DecodeValue(buf []byte) (count uint64, query []byte, err error) {
	count, n, err := bytesx.Uvarint(buf)
	if err != nil {
		return 0, nil, fmt.Errorf("querysuggest: bad value: %w", err)
	}
	return count, buf[n:], nil
}

// PrefixPartitioner assigns all keys sharing their first K bytes to the
// same reduce task — the paper's Prefix-1 and Prefix-5 partitioners,
// designed to maximize sharing opportunities (§7.2).
type PrefixPartitioner struct {
	K int
}

// Partition implements mr.Partitioner.
func (p PrefixPartitioner) Partition(key []byte, numPartitions int) int {
	k := min(p.K, len(key))
	return mr.HashPartitioner{}.Partition(key[:k], numPartitions)
}

// mapper emits (prefix, (1, query)) for every prefix of the query.
type mapper struct{ mr.MapperBase }

// Map implements mr.Mapper. The input value is a QLog-format line.
func (mapper) Map(key, value []byte, out mr.Emitter) error {
	query := datagen.ParseQueryLine(value)
	if len(query) == 0 {
		return nil
	}
	encoded := EncodeValue(1, query)
	for i := 1; i <= len(query); i++ {
		if err := out.Emit(query[:i], encoded); err != nil {
			return err
		}
	}
	return nil
}

// Counts is the workload's aggregation monoid: a per-query count table
// merged by per-entry addition. Its state emits MULTIPLE records — one
// aggregate (prefix, (query, m)) per distinct query, sorted for
// determinism — replacing m occurrences of the same (prefix, query)
// exactly as the paper's combiner does (§2). The reducer is the same
// monoid with a top-k rendering final.
type Counts struct{}

// Identity implements monoid.Monoid.
func (Counts) Identity() any { return map[string]uint64{} }

// Absorb implements monoid.Monoid.
func (Counts) Absorb(s any, v []byte) (any, error) {
	counts := s.(map[string]uint64)
	count, query, err := DecodeValue(v)
	if err != nil {
		return nil, err
	}
	counts[string(query)] += count
	return counts, nil
}

// Merge implements monoid.Monoid.
func (Counts) Merge(a, b any) (any, error) {
	x, y := a.(map[string]uint64), b.(map[string]uint64)
	for q, c := range y {
		x[q] += c
	}
	return x, nil
}

// EmitState implements monoid.Monoid.
func (Counts) EmitState(key []byte, s any, out mr.Emitter) error {
	counts := s.(map[string]uint64)
	queries := make([]string, 0, len(counts))
	for q := range counts {
		queries = append(queries, q)
	}
	sort.Strings(queries)
	for _, q := range queries {
		if err := out.Emit(key, EncodeValue(counts[q], []byte(q))); err != nil {
			return err
		}
	}
	return nil
}

// CommutativeMonoid marks per-entry addition as commutative.
func (Counts) CommutativeMonoid() {}

// finalTop renders a fully merged count table as the job's top-k output
// line — the `final` argument to monoid.Reducer.
func finalTop(topK int) func(key []byte, s any, out mr.Emitter) error {
	return func(key []byte, s any, out mr.Emitter) error {
		return out.Emit(key, []byte(FormatTop(s.(map[string]uint64), topK)))
	}
}

// FormatTop renders the top-k queries by (count desc, query asc) as
// "query:count|..." — shared with reference implementations in tests.
func FormatTop(counts map[string]uint64, k int) string {
	type qc struct {
		q string
		c uint64
	}
	all := make([]qc, 0, len(counts))
	for q, c := range counts {
		all = append(all, qc{q, c})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].c != all[j].c {
			return all[i].c > all[j].c
		}
		return all[i].q < all[j].q
	})
	if len(all) > k {
		all = all[:k]
	}
	parts := make([]string, len(all))
	for i, e := range all {
		parts[i] = fmt.Sprintf("%s:%d", e.q, e.c)
	}
	return strings.Join(parts, "|")
}

// NewJob builds the Query-Suggestion job. WithCombiner attaches the
// paper's combiner (off in the base experiments; §7.3 turns it on).
func NewJob(cfg Config, withCombiner bool) *mr.Job {
	cfg = cfg.normalized()
	job := &mr.Job{
		Name:           "querysuggest",
		NewMapper:      func() mr.Mapper { return mapper{} },
		NewReducer:     monoid.Reducer(Counts{}, finalTop(cfg.TopK)),
		Partitioner:    cfg.Partitioner,
		NumReduceTasks: cfg.Reducers,
		Deterministic:  true,
	}
	if withCombiner {
		job.NewCombiner = monoid.Combiner(Counts{})
	}
	return job
}

// Splits builds map input splits streaming from a synthetic query log.
// Following §2, the record value carries the query string alone — "each
// query comes with additional features ... omitted here for simplicity"
// — which also matches §4.1's arithmetic where LazySH ships exactly the
// query. (The full QLog schema is available via QueryLogRecord.Line for
// the datagen CLI.)
func Splits(log *datagen.QueryLog, numSplits int) []mr.Split {
	if numSplits < 1 {
		numSplits = 1
	}
	per := (log.Len() + numSplits - 1) / numSplits
	var splits []mr.Split
	for start := 0; start < log.Len(); start += per {
		start, end := start, min(start+per, log.Len())
		splits = append(splits, &mr.GenSplit{Gen: func(emit func(k, v []byte) error) error {
			for i := start; i < end; i++ {
				if err := emit(nil, []byte(log.Record(i).Query)); err != nil {
					return err
				}
			}
			return nil
		}})
	}
	if len(splits) == 0 {
		splits = []mr.Split{&mr.MemSplit{}}
	}
	return splits
}

// Reference computes the exact expected output on the full log with a
// sequential in-memory implementation, for correctness tests.
func Reference(log *datagen.QueryLog, topK int) map[string]string {
	byPrefix := make(map[string]map[string]uint64)
	for i := 0; i < log.Len(); i++ {
		q := log.Record(i).Query
		for p := 1; p <= len(q); p++ {
			prefix := q[:p]
			m, ok := byPrefix[prefix]
			if !ok {
				m = make(map[string]uint64)
				byPrefix[prefix] = m
			}
			m[q]++
		}
	}
	out := make(map[string]string, len(byPrefix))
	for prefix, counts := range byPrefix {
		out[prefix] = FormatTop(counts, topK)
	}
	return out
}
