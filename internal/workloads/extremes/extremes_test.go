package extremes

import (
	"testing"

	"repro/internal/anticombine"
	"repro/internal/datagen"
	"repro/internal/mr"
)

func testCloud() *datagen.Cloud {
	return datagen.NewCloud(datagen.CloudConfig{Seed: 71, Records: 2000, Days: 12, Stations: 15})
}

func check(t *testing.T, job *mr.Job, cloud *datagen.Cloud) {
	t.Helper()
	res, err := mr.Run(job, Splits(cloud, 4))
	if err != nil {
		t.Fatal(err)
	}
	want := Reference(cloud)
	got := map[string]string{}
	for _, r := range res.SortedOutput() {
		if _, dup := got[string(r.Key)]; dup {
			t.Fatalf("date %s reduced twice", r.Key)
		}
		got[string(r.Key)] = string(r.Value)
	}
	if len(got) != len(want) {
		t.Fatalf("got %d dates, want %d", len(got), len(want))
	}
	for d, v := range want {
		if got[d] != v {
			t.Errorf("date %s: got %s, want %s", d, got[d], v)
		}
	}
}

func TestSecondarySortMatchesReference(t *testing.T) {
	check(t, NewJob(4), testCloud())
}

func TestAntiCombinedPreservesSecondarySort(t *testing.T) {
	// The reducer *errors* if values arrive out of latitude order, so
	// these runs prove the Shared structure honors the grouping
	// comparator and §6.1's key-order guarantee, including when Shared
	// spills to disk.
	cloud := testCloud()
	for _, tc := range []struct {
		name string
		opts anticombine.Options
	}{
		{"adaptive", anticombine.AdaptiveInf()},
		{"eager", anticombine.Adaptive0()},
		{"lazy", anticombine.Options{Strategy: anticombine.LazyOnly}},
		{"tinyShared", anticombine.Options{
			Strategy:            anticombine.LazyOnly,
			SharedMemLimitBytes: 512,
			SharedMergeFactor:   2,
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			check(t, anticombine.Wrap(NewJob(4), tc.opts), cloud)
		})
	}
}

func TestKeyCodec(t *testing.T) {
	k := Key(20110305, -877)
	if KeyDate(k) != 20110305 || KeyLat(k) != -877 {
		t.Errorf("round trip: date=%d lat=%d", KeyDate(k), KeyLat(k))
	}
	// Latitude ordering must survive the unsigned bias.
	if string(Key(1, -900)) >= string(Key(1, 900)) {
		t.Error("negative latitudes must sort below positive")
	}
	if string(Key(1, 900)) >= string(Key(2, -900)) {
		t.Error("date must dominate latitude")
	}
}
