// Package extremes implements a secondary-sort workload over Cloud
// reports: per report date, find the minimum and maximum latitude
// without buffering a day's reports in memory. The composite key is
// (date, latitude) in big-endian order, the sort comparator orders the
// full key, and the grouping comparator groups by date only, so each
// Reduce call streams a day's reports in latitude order — Hadoop's
// secondary-sort design pattern, which §6.1 calls out as the reason the
// Shared structure honors the grouping comparator.
package extremes

import (
	"encoding/binary"
	"fmt"

	"repro/internal/bytesx"
	"repro/internal/datagen"
	"repro/internal/mr"
)

// Key packs (date, latitude) big-endian so raw byte comparison sorts by
// date then latitude.
func Key(date, lat int32) []byte {
	var k [8]byte
	binary.BigEndian.PutUint32(k[:4], uint32(date))
	binary.BigEndian.PutUint32(k[4:], uint32(lat+900)) // bias: latitudes sort unsigned
	return k[:]
}

// KeyDate extracts the date from a composite key.
func KeyDate(key []byte) int32 { return int32(binary.BigEndian.Uint32(key[:4])) }

// KeyLat extracts the latitude from a composite key.
func KeyLat(key []byte) int32 { return int32(binary.BigEndian.Uint32(key[4:])) - 900 }

// GroupByDate compares composite keys by their date component only.
func GroupByDate(a, b []byte) int { return bytesx.Bytes(a[:4], b[:4]) }

// datePartitioner routes by date so one reducer sees a whole day.
type datePartitioner struct{}

// Partition implements mr.Partitioner.
func (datePartitioner) Partition(key []byte, n int) int {
	return mr.HashPartitioner{}.Partition(key[:4], n)
}

type mapper struct{ mr.MapperBase }

// Map implements mr.Mapper over one Cloud record line. The whole line
// rides as the value (several queries of this shape would share it, but
// one suffices to exercise the secondary sort).
func (mapper) Map(key, value []byte, out mr.Emitter) error {
	date, _, lat, ok := datagen.ParseCloudLine(value)
	if !ok {
		return fmt.Errorf("extremes: bad record %q", value)
	}
	return out.Emit(Key(date, lat), value)
}

type reducer struct{ mr.ReducerBase }

// Reduce implements mr.Reducer: values arrive latitude-sorted, so the
// first and last records carry the extremes — no buffering needed.
func (reducer) Reduce(key []byte, values mr.ValueIter, out mr.Emitter) error {
	var first, last int32
	n := 0
	for {
		v, ok := values.Next()
		if !ok {
			break
		}
		_, _, lat, ok2 := datagen.ParseCloudLine(v)
		if !ok2 {
			return fmt.Errorf("extremes: bad record %q", v)
		}
		if n == 0 {
			first = lat
		} else if lat < last {
			return fmt.Errorf("extremes: secondary sort violated: %d after %d", lat, last)
		}
		last = lat
		n++
	}
	date := KeyDate(key)
	return out.Emit([]byte(fmt.Sprintf("%d", date)), []byte(Format(first, last, n)))
}

// Format renders a day's result (shared with Reference).
func Format(minLat, maxLat int32, count int) string {
	return fmt.Sprintf("min=%d,max=%d,n=%d", minLat, maxLat, count)
}

// NewJob builds the secondary-sort job.
func NewJob(reducers int) *mr.Job {
	if reducers <= 0 {
		reducers = 8
	}
	return &mr.Job{
		Name:           "extremes",
		NewMapper:      func() mr.Mapper { return mapper{} },
		NewReducer:     func() mr.Reducer { return reducer{} },
		Partitioner:    datePartitioner{},
		GroupCompare:   GroupByDate,
		NumReduceTasks: reducers,
		Deterministic:  true,
	}
}

// Splits streams Cloud record lines.
func Splits(cloud *datagen.Cloud, numSplits int) []mr.Split {
	if numSplits < 1 {
		numSplits = 1
	}
	per := (cloud.Len() + numSplits - 1) / numSplits
	var splits []mr.Split
	for start := 0; start < cloud.Len(); start += per {
		start, end := start, min(start+per, cloud.Len())
		splits = append(splits, &mr.GenSplit{Gen: func(emit func(k, v []byte) error) error {
			for i := start; i < end; i++ {
				if err := emit(nil, []byte(cloud.Record(i).Line())); err != nil {
					return err
				}
			}
			return nil
		}})
	}
	if len(splits) == 0 {
		splits = []mr.Split{&mr.MemSplit{}}
	}
	return splits
}

// Reference computes per-date extremes sequentially.
func Reference(cloud *datagen.Cloud) map[string]string {
	type agg struct {
		minLat, maxLat int32
		n              int
	}
	aggs := map[int32]*agg{}
	for i := 0; i < cloud.Len(); i++ {
		r := cloud.Record(i)
		a, ok := aggs[r.Date]
		if !ok {
			aggs[r.Date] = &agg{minLat: r.Latitude, maxLat: r.Latitude, n: 1}
			continue
		}
		if r.Latitude < a.minLat {
			a.minLat = r.Latitude
		}
		if r.Latitude > a.maxLat {
			a.maxLat = r.Latitude
		}
		a.n++
	}
	out := make(map[string]string, len(aggs))
	for date, a := range aggs {
		out[fmt.Sprintf("%d", date)] = Format(a.minLat, a.maxLat, a.n)
	}
	return out
}
