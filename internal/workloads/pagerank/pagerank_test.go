package pagerank

import (
	"math"
	"testing"

	"repro/internal/anticombine"
	"repro/internal/datagen"
	"repro/internal/mr"
)

func testGraph() *datagen.Graph {
	return datagen.NewGraph(datagen.GraphConfig{Seed: 31, Nodes: 300, AvgOutDegree: 6})
}

// iterate runs n PageRank iterations through the engine, optionally
// wrapping each iteration's job with Anti-Combining.
func iterate(t *testing.T, g *datagen.Graph, iters int, opts *anticombine.Options) map[int32]float64 {
	t.Helper()
	recs := InitialRecords(g)
	var res *mr.Result
	for i := 0; i < iters; i++ {
		job := NewJob(len(g.Out), 4)
		if opts != nil {
			job = anticombine.Wrap(job, *opts)
		}
		var err error
		res, err = mr.Run(job, mr.SplitRecords(recs, 4))
		if err != nil {
			t.Fatal(err)
		}
		recs = res.SortedOutput()
	}
	ranks, err := RanksFromOutput(res)
	if err != nil {
		t.Fatal(err)
	}
	return ranks
}

func assertRanksClose(t *testing.T, got, want map[int32]float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("got %d nodes, want %d", len(got), len(want))
	}
	for node, w := range want {
		g, ok := got[node]
		if !ok {
			t.Fatalf("node %d missing", node)
		}
		if math.Abs(g-w) > 1e-9 {
			t.Errorf("node %d: rank %.12f, want %.12f", node, g, w)
		}
	}
}

func TestMatchesSequentialReference(t *testing.T) {
	g := testGraph()
	assertRanksClose(t, iterate(t, g, 3, nil), Reference(g, 3))
}

func TestAntiCombinedMatchesReference(t *testing.T) {
	g := testGraph()
	want := Reference(g, 3)
	for _, tc := range []struct {
		name string
		opts anticombine.Options
	}{
		{"adaptive", anticombine.AdaptiveInf()},
		{"eager", anticombine.Adaptive0()},
		{"lazy", anticombine.Options{Strategy: anticombine.LazyOnly}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			assertRanksClose(t, iterate(t, g, 3, &tc.opts), want)
		})
	}
}

func TestRanksSumToOne(t *testing.T) {
	g := testGraph()
	ranks := Reference(g, 5)
	var sum float64
	for _, r := range ranks {
		sum += r
	}
	// Dangling nodes leak mass every iteration (the standard
	// simplification this formulation shares with the paper's
	// description); the sum must stay positive and never exceed 1.
	if sum > 1.0001 || sum <= 0.01 {
		t.Errorf("rank mass = %f", sum)
	}
}

func TestStructCodec(t *testing.T) {
	adj := []int32{5, 0, 999999, 7}
	buf := EncodeStruct(0.125, adj)
	rank, got, err := DecodeStruct(buf)
	if err != nil || rank != 0.125 || len(got) != 4 {
		t.Fatalf("decode: %f %v %v", rank, got, err)
	}
	for i := range adj {
		if got[i] != adj[i] {
			t.Errorf("adj[%d] = %d, want %d", i, got[i], adj[i])
		}
	}
	if _, _, err := DecodeStruct([]byte{'R', 0}); err == nil {
		t.Error("wrong tag should fail")
	}
}

func TestNodeKeyOrdering(t *testing.T) {
	// Big-endian keys must sort numerically under byte comparison.
	if string(NodeKey(3)) >= string(NodeKey(200)) {
		t.Error("key ordering broken")
	}
	if NodeID(NodeKey(123456)) != 123456 {
		t.Error("NodeID round trip failed")
	}
}

func TestEagerSharesHubFanout(t *testing.T) {
	// A hub node's contributions all share one value; EagerSH must
	// shrink map output substantially on a skewed graph.
	g := testGraph()
	recs := InitialRecords(g)
	run := func(wrap bool) int64 {
		job := NewJob(len(g.Out), 4)
		if wrap {
			job = anticombine.Wrap(job, anticombine.Adaptive0())
		}
		res, err := mr.Run(job, mr.SplitRecords(recs, 4))
		if err != nil {
			t.Fatal(err)
		}
		return res.Stats.MapOutputBytes
	}
	orig, anti := run(false), run(true)
	if anti*3 > orig*2 {
		t.Errorf("eager map output %d not meaningfully below original %d", anti, orig)
	}
}
