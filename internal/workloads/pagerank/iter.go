package pagerank

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"math"

	"repro/internal/cluster"
	"repro/internal/dag"
	"repro/internal/datagen"
	"repro/internal/monoid"
	"repro/internal/mr"
)

// Iterative PageRank as a 3-stage-per-iteration pipeline (internal/dag):
//
//	rank  — the classic contribution-spread job, except its output
//	        carries both the new and the previous rank ('P' records) so
//	        convergence is measurable downstream without a second read
//	        of the graph. Its reducer is derived from the RankFold
//	        monoid, so the map-side combiner collapsing a hub's fan-out
//	        comes from the same declaration.
//	delta — partition-preserving (mr.Job.AlignedInput): each map task
//	        folds |rank−prev| over its partition of rank output and
//	        emits exactly one per-partition sum, so the stage's shuffle
//	        collapses to the diagonal.
//	norm  — folds the per-partition sums into one global L1 delta, the
//	        single record the driver's convergence predicate reads.
//
// The rank stage's output is both the delta stage's input and the next
// iteration's carry; with the dag runner the partitions never re-spill
// through the driver between stages.

// tagStructPrev marks a rank-stage output record: current rank,
// previous rank, adjacency.
const tagStructPrev = 'P'

// EncodeStructPrev packs a node's new rank, its previous rank, and its
// adjacency list — the rank stage's output record.
func EncodeStructPrev(rank, prev float64, adj []int32) []byte {
	buf := make([]byte, 0, 17+4*len(adj))
	buf = append(buf, tagStructPrev)
	buf = binary.BigEndian.AppendUint64(buf, math.Float64bits(rank))
	buf = binary.BigEndian.AppendUint64(buf, math.Float64bits(prev))
	rest := EncodeStruct(0, adj)
	return append(buf, rest[9:]...) // adjacency varints only
}

// DecodeStructPrev unpacks a 'P' record.
func DecodeStructPrev(buf []byte) (rank, prev float64, adj []int32, err error) {
	if len(buf) < 17 || buf[0] != tagStructPrev {
		return 0, 0, nil, fmt.Errorf("pagerank: not a struct-prev record")
	}
	rank = math.Float64frombits(binary.BigEndian.Uint64(buf[1:9]))
	prev = math.Float64frombits(binary.BigEndian.Uint64(buf[9:17]))
	// Reuse the struct decoder for the adjacency varints.
	_, adj, err = DecodeStruct(append(EncodeStruct(0, nil)[:9], buf[17:]...))
	return rank, prev, adj, err
}

// DecodeRank reads the current rank and adjacency from either input
// encoding the rank stage accepts: an iteration-0 'S' record or a
// previous iteration's 'P' record.
func DecodeRank(value []byte) (rank float64, adj []int32, err error) {
	if len(value) > 0 && value[0] == tagStructPrev {
		rank, _, adj, err = DecodeStructPrev(value)
		return rank, adj, err
	}
	return DecodeStruct(value)
}

// DeltaKey renders a partition index as a fixed-width big-endian key.
func DeltaKey(i int) []byte { return NodeKey(int32(i)) }

// EncodeDelta packs an L1-delta partial sum.
func EncodeDelta(d float64) []byte {
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], math.Float64bits(d))
	return buf[:]
}

// DecodeDelta unpacks a delta record.
func DecodeDelta(buf []byte) (float64, error) {
	if len(buf) != 8 {
		return 0, fmt.Errorf("pagerank: bad delta record length %d", len(buf))
	}
	return math.Float64frombits(binary.BigEndian.Uint64(buf)), nil
}

// IndexPartitioner routes a big-endian uint32 key to its own index —
// the partitioner that makes DeltaKey(i) land on partition i.
var IndexPartitioner = mr.PartitionerFunc(func(key []byte, parts int) int {
	return int(binary.BigEndian.Uint32(key)) % parts
})

// iterMapper is the rank stage's map side: like the classic mapper it
// spreads rank over out-edges, but it accepts both input encodings and
// forwards the node's current rank inside the struct record so the
// reducer can emit (new, previous) pairs.
type iterMapper struct{ mr.MapperBase }

func (iterMapper) Map(key, value []byte, out mr.Emitter) error {
	rank, adj, err := DecodeRank(value)
	if err != nil {
		return err
	}
	if err := out.Emit(key, EncodeStruct(rank, adj)); err != nil {
		return err
	}
	if len(adj) == 0 {
		return nil
	}
	contrib := EncodeContrib(rank / float64(len(adj)))
	for _, dst := range adj {
		if err := out.Emit(NodeKey(dst), contrib); err != nil {
			return err
		}
	}
	return nil
}

// rankState is RankFold's aggregation state: the contribution sum plus
// the node's forwarded structure (previous rank and adjacency).
type rankState struct {
	sum       float64
	hasStruct bool
	prev      float64
	adj       []int32
}

// RankFold is the rank stage's monoid: contributions add, the struct
// record rides along. Its derived combiner collapses a hub's fan-in
// per map task exactly like the hand-written PageRank combiner of
// §7.7.2 — one declaration serves combiner and reducer. Merge is
// commutative; note float addition is only associative to rounding, so
// its law checks compare with an epsilon.
type RankFold struct{}

// Identity implements monoid.Monoid.
func (RankFold) Identity() any { return &rankState{} }

// Absorb implements monoid.Monoid, accepting the map phase's 'S' and
// 'R' records — which are also exactly what EmitState produces.
func (RankFold) Absorb(s any, value []byte) (any, error) {
	st := s.(*rankState)
	switch {
	case len(value) == 9 && value[0] == tagContrib:
		st.sum += math.Float64frombits(binary.BigEndian.Uint64(value[1:]))
	case len(value) > 0 && value[0] == tagStruct:
		prev, adj, err := DecodeStruct(value)
		if err != nil {
			return nil, err
		}
		st.hasStruct, st.prev, st.adj = true, prev, adj
	default:
		return nil, fmt.Errorf("pagerank: unknown record tag")
	}
	return st, nil
}

// Merge implements monoid.Monoid.
func (RankFold) Merge(a, b any) (any, error) {
	x, y := a.(*rankState), b.(*rankState)
	x.sum += y.sum
	if y.hasStruct {
		x.hasStruct, x.prev, x.adj = true, y.prev, y.adj
	}
	return x, nil
}

// EmitState implements monoid.Monoid: a partial state re-encodes as at
// most one struct and one contribution record, both absorbable.
func (RankFold) EmitState(key []byte, s any, out mr.Emitter) error {
	st := s.(*rankState)
	if st.hasStruct {
		if err := out.Emit(key, EncodeStruct(st.prev, st.adj)); err != nil {
			return err
		}
	}
	if st.sum != 0 {
		return out.Emit(key, EncodeContrib(st.sum))
	}
	return nil
}

// CommutativeMonoid marks RankFold commutative.
func (RankFold) CommutativeMonoid() {}

// finalRank renders the fully merged state as the stage output: a 'P'
// record pairing the damped new rank with the rank the node had.
func finalRank(nodes int) func(key []byte, s any, out mr.Emitter) error {
	return func(key []byte, s any, out mr.Emitter) error {
		st := s.(*rankState)
		if !st.hasStruct {
			return fmt.Errorf("pagerank: contributions for unknown node %d", NodeID(key))
		}
		newRank := (1-Damping)/float64(nodes) + Damping*st.sum
		return out.Emit(key, EncodeStructPrev(newRank, st.prev, st.adj))
	}
}

// NewRankJob builds the rank stage job: one PageRank iteration whose
// output carries (new, previous) rank pairs, combiner derived from
// RankFold.
func NewRankJob(nodes, reducers int) *mr.Job {
	return &mr.Job{
		Name:           "pagerank-rank",
		NewMapper:      func() mr.Mapper { return iterMapper{} },
		NewReducer:     monoid.Reducer(RankFold{}, finalRank(nodes)),
		NewCombiner:    monoid.Combiner(RankFold{}),
		NumReduceTasks: reducers,
		Deterministic:  true,
	}
}

// DeltaSum is the delta and norm stages' monoid: plain float addition
// over EncodeDelta records. Commutative; associative to rounding.
type DeltaSum struct{}

func (DeltaSum) Identity() any { return float64(0) }

func (DeltaSum) Absorb(s any, value []byte) (any, error) {
	d, err := DecodeDelta(value)
	if err != nil {
		return nil, err
	}
	return s.(float64) + d, nil
}

func (DeltaSum) Merge(a, b any) (any, error) { return a.(float64) + b.(float64), nil }

func (DeltaSum) EmitState(key []byte, s any, out mr.Emitter) error {
	return out.Emit(key, EncodeDelta(s.(float64)))
}

// CommutativeMonoid marks DeltaSum commutative.
func (DeltaSum) CommutativeMonoid() {}

// deltaMapper folds |rank−prev| over one partition of rank output and
// emits a single per-partition sum keyed by its own task index — the
// shape that makes the delta stage aligned.
type deltaMapper struct {
	task int
	sum  float64
}

func (m *deltaMapper) Setup(info *mr.TaskInfo, _ mr.Emitter) error {
	m.task = info.TaskID
	m.sum = 0
	return nil
}

func (m *deltaMapper) Map(key, value []byte, _ mr.Emitter) error {
	rank, prev, _, err := DecodeStructPrev(value)
	if err != nil {
		return err
	}
	m.sum += math.Abs(rank - prev)
	return nil
}

func (m *deltaMapper) Cleanup(out mr.Emitter) error {
	return out.Emit(DeltaKey(m.task), EncodeDelta(m.sum))
}

// NewDeltaJob builds the delta stage: partition-preserving fold of the
// rank stage's output into one L1-delta record per partition. With
// AlignedInput the engine prunes the fetch graph to the diagonal — the
// same-partitioning fast path.
func NewDeltaJob(parts int) *mr.Job {
	return &mr.Job{
		Name:           "pagerank-delta",
		NewMapper:      func() mr.Mapper { return &deltaMapper{} },
		NewReducer:     monoid.Reducer(DeltaSum{}, nil),
		Partitioner:    IndexPartitioner,
		NumReduceTasks: parts,
		AlignedInput:   true,
		Deterministic:  true,
	}
}

// NewNormJob builds the norm stage: re-key every per-partition delta
// to one key and fold them into the global L1 delta.
func NewNormJob() *mr.Job {
	return &mr.Job{
		Name: "pagerank-norm",
		NewMapper: mr.NewMapFunc(func(key, value []byte, out mr.Emitter) error {
			return out.Emit(DeltaKey(0), value)
		}),
		NewReducer:     monoid.Reducer(DeltaSum{}, nil),
		Partitioner:    IndexPartitioner,
		NumReduceTasks: 1,
		Deterministic:  true,
	}
}

// TotalDelta reads the norm stage's single output record.
func TotalDelta(terminal map[string][][]mr.Record) (float64, error) {
	parts := terminal["norm"]
	for _, part := range parts {
		for _, rec := range part {
			return DecodeDelta(rec.Value)
		}
	}
	return 0, fmt.Errorf("pagerank: norm stage produced no delta record")
}

// IterSpec parameterizes the registered iterative pipeline and its
// per-stage cluster jobs.
type IterSpec struct {
	Nodes     int     `json:"nodes"`
	AvgDegree int     `json:"avg_degree"`
	Seed      uint64  `json:"seed"`
	Parts     int     `json:"parts"`
	MaxIters  int     `json:"max_iters"`
	Epsilon   float64 `json:"epsilon"`
}

func (s IterSpec) normalized() IterSpec {
	if s.Nodes <= 0 {
		s.Nodes = 1000
	}
	if s.AvgDegree <= 0 {
		s.AvgDegree = 8
	}
	if s.Parts <= 0 {
		s.Parts = 4
	}
	if s.MaxIters <= 0 {
		s.MaxIters = 10
	}
	return s
}

// NewIterPipeline builds the 3-stage iterative pipeline for a spec.
// Stage Build closures serve the in-process engine; stage Refs name
// the registered cluster jobs so the same pipeline runs on a fleet.
func NewIterPipeline(spec IterSpec) *dag.Pipeline {
	spec = spec.normalized()
	raw, _ := json.Marshal(spec)
	ref := func(name string) func(int) cluster.JobRef {
		return func(int) cluster.JobRef { return cluster.JobRef{Name: name, Spec: raw} }
	}
	p := &dag.Pipeline{
		Name: "pagerank-iter",
		Stages: []dag.Stage{
			{
				Name:  "rank",
				Build: func(int) *mr.Job { return NewRankJob(spec.Nodes, spec.Parts) },
				Ref:   ref("pagerank-iter/rank"),
			},
			{
				Name: "delta", From: "rank",
				Build: func(int) *mr.Job { return NewDeltaJob(spec.Parts) },
				Ref:   ref("pagerank-iter/delta"),
			},
			{
				Name: "norm", From: "delta",
				Build: func(int) *mr.Job { return NewNormJob() },
				Ref:   ref("pagerank-iter/norm"),
			},
		},
		Carry:    "rank",
		Output:   "rank",
		MaxIters: spec.MaxIters,
	}
	if spec.Epsilon > 0 {
		p.Until = func(_ int, terminal map[string][][]mr.Record) (bool, error) {
			delta, err := TotalDelta(terminal)
			if err != nil {
				return false, err
			}
			return delta < spec.Epsilon, nil
		}
	}
	return p
}

// IterInputs renders a spec's graph as the pipeline's initial input,
// pre-partitioned with the rank job's partitioner so iteration 0 has
// the same map-task structure as every carried iteration.
func IterInputs(spec IterSpec) [][]mr.Record {
	spec = spec.normalized()
	g := datagen.NewGraph(datagen.GraphConfig{
		Seed: spec.Seed, Nodes: spec.Nodes, AvgOutDegree: spec.AvgDegree,
	})
	return PartitionRecords(InitialRecords(g), spec.Parts)
}

// PartitionRecords splits records into parts groups with the default
// hash partitioner — the same routing the rank stage's shuffle uses.
func PartitionRecords(recs []mr.Record, parts int) [][]mr.Record {
	out := make([][]mr.Record, parts)
	var h mr.HashPartitioner
	for _, r := range recs {
		p := h.Partition(r.Key, parts)
		out[p] = append(out[p], r)
	}
	return out
}

// RanksFromParts extracts node ranks from the pipeline's final output.
func RanksFromParts(parts [][]mr.Record) (map[int32]float64, error) {
	ranks := make(map[int32]float64)
	for _, part := range parts {
		for _, rec := range part {
			rank, _, _, err := DecodeStructPrev(rec.Value)
			if err != nil {
				return nil, err
			}
			ranks[NodeID(rec.Key)] = rank
		}
	}
	return ranks, nil
}

func buildIterSpec(raw []byte) (IterSpec, error) {
	var spec IterSpec
	if len(raw) > 0 {
		if err := json.Unmarshal(raw, &spec); err != nil {
			return spec, fmt.Errorf("pagerank: bad iter spec: %w", err)
		}
	}
	return spec.normalized(), nil
}

func init() {
	// Per-stage cluster jobs: stage inputs arrive via JobSpec.Inputs, so
	// the builders return no splits.
	cluster.RegisterJob("pagerank-iter/rank", func(raw []byte) (*mr.Job, []mr.Split, error) {
		spec, err := buildIterSpec(raw)
		if err != nil {
			return nil, nil, err
		}
		return NewRankJob(spec.Nodes, spec.Parts), nil, nil
	})
	cluster.RegisterJob("pagerank-iter/delta", func(raw []byte) (*mr.Job, []mr.Split, error) {
		spec, err := buildIterSpec(raw)
		if err != nil {
			return nil, nil, err
		}
		return NewDeltaJob(spec.Parts), nil, nil
	})
	cluster.RegisterJob("pagerank-iter/norm", func(raw []byte) (*mr.Job, []mr.Split, error) {
		if _, err := buildIterSpec(raw); err != nil {
			return nil, nil, err
		}
		return NewNormJob(), nil, nil
	})
	dag.RegisterPipeline("pagerank-iter", func(raw []byte) (*dag.Pipeline, [][]mr.Record, error) {
		spec, err := buildIterSpec(raw)
		if err != nil {
			return nil, nil, err
		}
		return NewIterPipeline(spec), IterInputs(spec), nil
	})
}
