// Package pagerank implements the iterative PageRank workload of §7.7.2:
// each iteration's Map divides a node's rank evenly over its outgoing
// edges, emitting every edge with its contribution, and forwards the
// graph structure; Reduce sums contributions and applies the damping
// factor. All of one node's contribution records carry the same value —
// rank/out-degree — so EagerSH collapses a high-out-degree hub's fan-out
// per reduce task into a single record, and LazySH can ship the node
// record itself instead; skewed graphs make both wins large.
package pagerank

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/bytesx"
	"repro/internal/datagen"
	"repro/internal/mr"
)

// Damping is the standard PageRank damping factor.
const Damping = 0.85

// Record-kind tags in value components.
const (
	tagStruct  = 'S'
	tagContrib = 'R'
)

// NodeKey renders a node id as a fixed-width big-endian key, so raw byte
// comparison orders nodes numerically.
func NodeKey(id int32) []byte {
	var k [4]byte
	binary.BigEndian.PutUint32(k[:], uint32(id))
	return k[:]
}

// NodeID parses a node key.
func NodeID(key []byte) int32 { return int32(binary.BigEndian.Uint32(key)) }

// EncodeStruct packs a node's rank and adjacency list.
func EncodeStruct(rank float64, adj []int32) []byte {
	buf := make([]byte, 0, 9+4*len(adj))
	buf = append(buf, tagStruct)
	buf = binary.BigEndian.AppendUint64(buf, math.Float64bits(rank))
	buf = bytesx.AppendUvarint(buf, uint64(len(adj)))
	for _, dst := range adj {
		buf = bytesx.AppendUvarint(buf, uint64(uint32(dst)))
	}
	return buf
}

// DecodeStruct unpacks a structure record.
func DecodeStruct(buf []byte) (rank float64, adj []int32, err error) {
	if len(buf) < 9 || buf[0] != tagStruct {
		return 0, nil, fmt.Errorf("pagerank: not a struct record")
	}
	rank = math.Float64frombits(binary.BigEndian.Uint64(buf[1:9]))
	rest := buf[9:]
	n, used, err := bytesx.Uvarint(rest)
	if err != nil {
		return 0, nil, err
	}
	rest = rest[used:]
	adj = make([]int32, 0, n)
	for i := uint64(0); i < n; i++ {
		v, used, err := bytesx.Uvarint(rest)
		if err != nil {
			return 0, nil, err
		}
		adj = append(adj, int32(uint32(v)))
		rest = rest[used:]
	}
	return rank, adj, nil
}

// EncodeContrib packs a rank contribution.
func EncodeContrib(c float64) []byte {
	var buf [9]byte
	buf[0] = tagContrib
	binary.BigEndian.PutUint64(buf[1:], math.Float64bits(c))
	return buf[:]
}

// mapper forwards structure and spreads rank over out-edges.
type mapper struct{ mr.MapperBase }

// Map implements mr.Mapper: key is the node, value its struct record.
func (mapper) Map(key, value []byte, out mr.Emitter) error {
	rank, adj, err := DecodeStruct(value)
	if err != nil {
		return err
	}
	// Forward the graph structure to the node's own reducer.
	if err := out.Emit(key, EncodeStruct(0, adj)); err != nil {
		return err
	}
	if len(adj) == 0 {
		return nil
	}
	contrib := EncodeContrib(rank / float64(len(adj)))
	for _, dst := range adj {
		if err := out.Emit(NodeKey(dst), contrib); err != nil {
			return err
		}
	}
	return nil
}

// reducer sums contributions and re-attaches structure.
type reducer struct {
	mr.ReducerBase
	nodes int
}

// Reduce implements mr.Reducer.
func (r *reducer) Reduce(key []byte, values mr.ValueIter, out mr.Emitter) error {
	var sum float64
	var adj []int32
	sawStruct := false
	for {
		v, ok := values.Next()
		if !ok {
			break
		}
		switch {
		case len(v) > 0 && v[0] == tagContrib && len(v) == 9:
			sum += math.Float64frombits(binary.BigEndian.Uint64(v[1:]))
		case len(v) > 0 && v[0] == tagStruct:
			_, a, err := DecodeStruct(v)
			if err != nil {
				return err
			}
			adj = a
			sawStruct = true
		default:
			return fmt.Errorf("pagerank: unknown record tag")
		}
	}
	if !sawStruct {
		// A contribution for a node id outside the graph (cannot happen
		// with well-formed input, but fail loudly rather than silently).
		return fmt.Errorf("pagerank: contributions for unknown node %d", NodeID(key))
	}
	newRank := (1-Damping)/float64(r.nodes) + Damping*sum
	return out.Emit(key, EncodeStruct(newRank, adj))
}

// NewJob builds one PageRank iteration over a graph of n nodes.
func NewJob(n, reducers int) *mr.Job {
	if reducers <= 0 {
		reducers = 8
	}
	return &mr.Job{
		Name:           "pagerank",
		NewMapper:      func() mr.Mapper { return mapper{} },
		NewReducer:     func() mr.Reducer { return &reducer{nodes: n} },
		NumReduceTasks: reducers,
		Deterministic:  true,
	}
}

// InitialRecords renders a graph as iteration-0 input with uniform ranks.
func InitialRecords(g *datagen.Graph) []mr.Record {
	n := len(g.Out)
	recs := make([]mr.Record, n)
	r0 := 1 / float64(n)
	for i, adj := range g.Out {
		recs[i] = mr.Record{Key: NodeKey(int32(i)), Value: EncodeStruct(r0, adj)}
	}
	return recs
}

// RanksFromOutput extracts node ranks from a job result.
func RanksFromOutput(res *mr.Result) (map[int32]float64, error) {
	ranks := make(map[int32]float64)
	for _, rec := range res.SortedOutput() {
		rank, _, err := DecodeStruct(rec.Value)
		if err != nil {
			return nil, err
		}
		ranks[NodeID(rec.Key)] = rank
	}
	return ranks, nil
}

// Reference computes PageRank sequentially for the same number of
// iterations, for correctness tests.
func Reference(g *datagen.Graph, iterations int) map[int32]float64 {
	n := len(g.Out)
	ranks := make([]float64, n)
	for i := range ranks {
		ranks[i] = 1 / float64(n)
	}
	for it := 0; it < iterations; it++ {
		next := make([]float64, n)
		for i := range next {
			next[i] = (1 - Damping) / float64(n)
		}
		for node, adj := range g.Out {
			if len(adj) == 0 {
				continue
			}
			share := Damping * ranks[node] / float64(len(adj))
			for _, dst := range adj {
				next[dst] += share
			}
		}
		ranks = next
	}
	out := make(map[int32]float64, n)
	for i, r := range ranks {
		out[int32(i)] = r
	}
	return out
}
