package pagerank_test

import (
	"bytes"
	"encoding/binary"
	"math"
	"math/rand"
	"testing"

	"repro/internal/monoid"
	"repro/internal/mr"
	"repro/internal/workloads/pagerank"
)

// rankRecordsClose compares RankFold emissions with a float epsilon:
// reassociating contribution sums legitimately perturbs low bits, so
// contribution records compare numerically while struct records (which
// Merge moves, never recomputes) stay byte-exact.
func rankRecordsClose(a, b []mr.Record) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !bytes.Equal(a[i].Key, b[i].Key) {
			return false
		}
		av, bv := a[i].Value, b[i].Value
		if len(av) == 9 && len(bv) == 9 && av[0] == 'R' && bv[0] == 'R' {
			x := math.Float64frombits(binary.BigEndian.Uint64(av[1:]))
			y := math.Float64frombits(binary.BigEndian.Uint64(bv[1:]))
			if math.Abs(x-y) > 1e-12*math.Max(1, math.Abs(x)) {
				return false
			}
			continue
		}
		if !bytes.Equal(av, bv) {
			return false
		}
	}
	return true
}

// TestRankFoldLaws property-checks the rank stage's monoid. The
// generator respects the workload invariant that at most one struct
// record exists per key — and that all copies agree — because the
// struct is emitted by the single map task owning the node's input
// record. Contributions are random positive floats.
func TestRankFoldLaws(t *testing.T) {
	strct := pagerank.EncodeStruct(0.25, []int32{1, 2, 3})
	err := monoid.CheckLaws(pagerank.RankFold{}, monoid.LawConfig{
		Seed:   42,
		Trials: 200,
		Values: func(r *rand.Rand) [][]byte {
			n := 1 + r.Intn(4)
			vals := make([][]byte, 0, n+1)
			if r.Intn(2) == 0 {
				vals = append(vals, strct)
			}
			for i := 0; i < n; i++ {
				vals = append(vals, pagerank.EncodeContrib(r.Float64()+0.01))
			}
			return vals
		},
		Equal: rankRecordsClose,
	})
	if err != nil {
		t.Fatal(err)
	}
}

// deltaRecordsClose compares DeltaSum emissions numerically.
func deltaRecordsClose(a, b []mr.Record) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !bytes.Equal(a[i].Key, b[i].Key) {
			return false
		}
		x, err1 := pagerank.DecodeDelta(a[i].Value)
		y, err2 := pagerank.DecodeDelta(b[i].Value)
		if err1 != nil || err2 != nil || math.Abs(x-y) > 1e-12*math.Max(1, math.Abs(x)) {
			return false
		}
	}
	return true
}

// TestDeltaSumLaws property-checks the delta/norm stages' monoid.
func TestDeltaSumLaws(t *testing.T) {
	err := monoid.CheckLaws(pagerank.DeltaSum{}, monoid.LawConfig{
		Seed:   7,
		Trials: 200,
		Values: func(r *rand.Rand) [][]byte {
			n := 1 + r.Intn(5)
			vals := make([][]byte, n)
			for i := range vals {
				vals[i] = pagerank.EncodeDelta(r.Float64())
			}
			return vals
		},
		Equal: deltaRecordsClose,
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestStructPrevRoundTrip(t *testing.T) {
	adj := []int32{3, 1, 4, 1, 5}
	buf := pagerank.EncodeStructPrev(0.75, 0.5, adj)
	rank, prev, gotAdj, err := pagerank.DecodeStructPrev(buf)
	if err != nil {
		t.Fatal(err)
	}
	if rank != 0.75 || prev != 0.5 {
		t.Fatalf("got (%g, %g), want (0.75, 0.5)", rank, prev)
	}
	if len(gotAdj) != len(adj) {
		t.Fatalf("adjacency %v, want %v", gotAdj, adj)
	}
	for i := range adj {
		if gotAdj[i] != adj[i] {
			t.Fatalf("adjacency %v, want %v", gotAdj, adj)
		}
	}
	// Empty adjacency (a dangling node) must round-trip too.
	if _, _, gotAdj, err = pagerank.DecodeStructPrev(pagerank.EncodeStructPrev(1, 2, nil)); err != nil || len(gotAdj) != 0 {
		t.Fatalf("empty adjacency round-trip: adj=%v err=%v", gotAdj, err)
	}
	if _, _, _, err := pagerank.DecodeStructPrev([]byte("x")); err == nil {
		t.Fatal("DecodeStructPrev accepted garbage")
	}
}

// TestDecodeRankBothEncodings: the rank stage's mapper reads
// iteration-0 'S' records and later iterations' 'P' records through
// one accessor.
func TestDecodeRankBothEncodings(t *testing.T) {
	adj := []int32{2, 7}
	for _, tc := range []struct {
		name string
		buf  []byte
	}{
		{"struct", pagerank.EncodeStruct(0.125, adj)},
		{"struct-prev", pagerank.EncodeStructPrev(0.125, 0.25, adj)},
	} {
		rank, gotAdj, err := pagerank.DecodeRank(tc.buf)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if rank != 0.125 || len(gotAdj) != 2 || gotAdj[0] != 2 || gotAdj[1] != 7 {
			t.Fatalf("%s: got rank=%g adj=%v", tc.name, rank, gotAdj)
		}
	}
}

func TestDeltaRoundTrip(t *testing.T) {
	d, err := pagerank.DecodeDelta(pagerank.EncodeDelta(0.0625))
	if err != nil || d != 0.0625 {
		t.Fatalf("got (%g, %v)", d, err)
	}
	if _, err := pagerank.DecodeDelta([]byte("short")); err == nil {
		t.Fatal("DecodeDelta accepted a bad length")
	}
}

func TestIndexPartitioner(t *testing.T) {
	for i := 0; i < 8; i++ {
		if p := pagerank.IndexPartitioner.Partition(pagerank.DeltaKey(i), 4); p != i%4 {
			t.Fatalf("DeltaKey(%d) routed to partition %d, want %d", i, p, i%4)
		}
	}
}
