// Package cpuwork adds the synthetic CPU load of §7.6: before each Map
// call, compute the first 25000·x Fibonacci numbers. Raising x makes
// LazySH's reducer-side Map re-execution increasingly expensive, which
// is what the cost threshold T exists to bound.
package cpuwork

import (
	"sync/atomic"

	"repro/internal/mr"
)

// FibUnit is the paper's busy-work unit: 25000 Fibonacci numbers per x.
const FibUnit = 25000

// fibSink defeats dead-code elimination of the busy loop. Burn runs in
// concurrent map tasks, so the sink is atomic.
var fibSink atomic.Uint64

// Burn computes the first n Fibonacci numbers (mod 2^64).
func Burn(n int) {
	var a, b uint64 = 0, 1
	for i := 0; i < n; i++ {
		a, b = b, a+b
	}
	fibSink.Add(a)
}

// fibMapper delegates to an inner mapper after burning CPU.
type fibMapper struct {
	inner mr.Mapper
	n     int
}

// Setup implements mr.Mapper.
func (m *fibMapper) Setup(info *mr.TaskInfo, out mr.Emitter) error {
	return m.inner.Setup(info, out)
}

// Map implements mr.Mapper.
func (m *fibMapper) Map(key, value []byte, out mr.Emitter) error {
	Burn(m.n)
	return m.inner.Map(key, value, out)
}

// Cleanup implements mr.Mapper.
func (m *fibMapper) Cleanup(out mr.Emitter) error { return m.inner.Cleanup(out) }

// WrapJob returns a copy of job whose Map calls first compute the first
// FibUnit·x Fibonacci numbers. x = 0 returns the job unchanged. The
// wrapper is deterministic, so the job's Deterministic flag survives.
func WrapJob(job *mr.Job, x int) *mr.Job {
	if x <= 0 {
		return job
	}
	w := *job
	inner := job.NewMapper
	w.NewMapper = func() mr.Mapper { return &fibMapper{inner: inner(), n: FibUnit * x} }
	return &w
}
