package cpuwork

import (
	"testing"

	"repro/internal/datagen"
	"repro/internal/mr"
	"repro/internal/workloads/sortwl"
)

func TestBurnScalesWork(t *testing.T) {
	// Just exercise the path; correctness is "it terminates and touches
	// the sink".
	before := fibSink.Load()
	Burn(1000)
	if fibSink.Load() == before {
		t.Log("sink unchanged (possible but astronomically unlikely)")
	}
}

func TestWrapJobPreservesResults(t *testing.T) {
	text := datagen.NewRandomText(datagen.RandomTextConfig{Seed: 61, Lines: 50})
	base := sortwl.NewJob(2)
	plain, err := mr.Run(base, sortwl.Splits(text, 2))
	if err != nil {
		t.Fatal(err)
	}
	wrapped, err := mr.Run(WrapJob(sortwl.NewJob(2), 1), sortwl.Splits(text, 2))
	if err != nil {
		t.Fatal(err)
	}
	if plain.Stats.ReduceOutputRecords != wrapped.Stats.ReduceOutputRecords {
		t.Error("busy work changed results")
	}
	if WrapJob(base, 0) != base {
		t.Error("x=0 should return the job unchanged")
	}
}

func TestWrapJobAddsCPUTime(t *testing.T) {
	text := datagen.NewRandomText(datagen.RandomTextConfig{Seed: 62, Lines: 200})
	run := func(x int) int64 {
		res, err := mr.Run(WrapJob(sortwl.NewJob(2), x), sortwl.Splits(text, 1))
		if err != nil {
			t.Fatal(err)
		}
		return int64(res.Stats.MapCPU)
	}
	light, heavy := run(0), run(16)
	if heavy < light*2 {
		t.Errorf("x=16 map CPU (%d) not well above x=0 (%d)", heavy, light)
	}
}
