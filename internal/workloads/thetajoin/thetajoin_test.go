package thetajoin

import (
	"testing"

	"repro/internal/anticombine"
	"repro/internal/datagen"
	"repro/internal/mr"
)

func testCloud() *datagen.Cloud {
	return datagen.NewCloud(datagen.CloudConfig{
		Seed: 41, Records: 400, Days: 5, Stations: 8,
	})
}

func joinResult(t *testing.T, job *mr.Job, cloud *datagen.Cloud) map[string]int {
	t.Helper()
	res, err := mr.Run(job, Splits(cloud, 4))
	if err != nil {
		t.Fatal(err)
	}
	got := make(map[string]int)
	for _, r := range res.SortedOutput() {
		got[string(r.Value)]++
	}
	return got
}

func assertJoinEqual(t *testing.T, got, want map[string]int) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("distinct rows: got %d, want %d", len(got), len(want))
	}
	for row, n := range want {
		if got[row] != n {
			t.Errorf("row %q: got %d, want %d", row, got[row], n)
		}
	}
}

func TestJoinMatchesReference(t *testing.T) {
	cloud := testCloud()
	want := Reference(cloud, 100)
	if len(want) == 0 {
		t.Fatal("reference join is empty; generator parameters too sparse")
	}
	got := joinResult(t, NewJob(Config{Rows: 4, Cols: 4, Reducers: 5}), cloud)
	assertJoinEqual(t, got, want)
}

func TestJoinGridShapesAgree(t *testing.T) {
	// Every (s, t) pair must meet in exactly one region regardless of
	// the grid tiling.
	cloud := testCloud()
	want := Reference(cloud, 100)
	for _, grid := range []Config{
		{Rows: 1, Cols: 1, Reducers: 1},
		{Rows: 2, Cols: 8, Reducers: 4},
		{Rows: 8, Cols: 2, Reducers: 16},
	} {
		assertJoinEqual(t, joinResult(t, NewJob(grid), cloud), want)
	}
}

func TestAntiCombinedMatchesReference(t *testing.T) {
	cloud := testCloud()
	want := Reference(cloud, 100)
	for _, tc := range []struct {
		name string
		opts anticombine.Options
	}{
		{"adaptive", anticombine.AdaptiveInf()},
		{"eager", anticombine.Adaptive0()},
		{"lazy", anticombine.Options{Strategy: anticombine.LazyOnly}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			job := anticombine.Wrap(NewJob(Config{Rows: 4, Cols: 4, Reducers: 5}), tc.opts)
			assertJoinEqual(t, joinResult(t, job, cloud), want)
		})
	}
}

func TestReplicationFactor(t *testing.T) {
	// 1-Bucket-Theta replicates each tuple Rows + Cols times — the data
	// explosion (~67× in the paper) that Anti-Combining attacks.
	cloud := testCloud()
	cfg := Config{Rows: 6, Cols: 5, Reducers: 6}
	res, err := mr.Run(NewJob(cfg), Splits(cloud, 4))
	if err != nil {
		t.Fatal(err)
	}
	wantRecords := int64(cloud.Len()) * int64(cfg.Rows+cfg.Cols)
	if res.Stats.MapOutputRecords != wantRecords {
		t.Errorf("map output records = %d, want %d", res.Stats.MapOutputRecords, wantRecords)
	}
}

func TestAdaptivePrefersLazy(t *testing.T) {
	// §7.7.3: "AdaptiveSH ended up choosing LazySH encoding for all map
	// output records" — with multiple regions per reduce task, shipping
	// the input once per task always beats carrying region key sets.
	cloud := testCloud()
	job := anticombine.Wrap(NewJob(Config{Rows: 8, Cols: 8, Reducers: 4}), anticombine.AdaptiveInf())
	res, err := mr.Run(job, Splits(cloud, 4))
	if err != nil {
		t.Fatal(err)
	}
	lazy := res.Stats.Extra[anticombine.CounterLazyRecords]
	eager := res.Stats.Extra[anticombine.CounterEagerRecords]
	plain := res.Stats.Extra[anticombine.CounterPlainRecords]
	if lazy == 0 || lazy < (eager+plain)*10 {
		t.Errorf("adaptive choices: lazy=%d eager=%d plain=%d; lazy should dominate",
			lazy, eager, plain)
	}
}

func TestRegionKeyDeterminism(t *testing.T) {
	if string(RegionKey(7)) != string(RegionKey(7)) {
		t.Error("RegionKey must be deterministic")
	}
	if string(RegionKey(1)) >= string(RegionKey(300)) {
		t.Error("RegionKey ordering broken")
	}
}
