// Package thetajoin implements the join workload of §7.7.3: the band
// self-join over Cloud reports
//
//	SELECT S.date, S.longitude, S.latitude, T.latitude
//	FROM Cloud AS S, Cloud AS T
//	WHERE S.date = T.date AND S.longitude = T.longitude
//	  AND ABS(S.latitude - T.latitude) <= 10
//
// executed with the 1-Bucket-Theta algorithm (Okcan & Riedewald,
// SIGMOD 2011): the |S|×|T| join matrix is tiled into a Rows×Cols grid
// of regions; each S tuple is assigned a matrix row and replicated to
// every region in that row, each T tuple a column and replicated down
// it, so every (s, t) pair meets in exactly one region. The resulting
// input replication (Rows + Cols per tuple, ~67× in the paper's setup)
// is exactly the fan-out Anti-Combining targets: all of a tuple's
// S-role copies share one value, and LazySH can ship the tuple once per
// reduce task.
//
// The paper's algorithm assigns rows/columns randomly; here the
// assignment is a hash of the tuple, which is uniform but deterministic
// so LazySH's Map re-execution reproduces the same routing (§6.2's
// determinism requirement).
package thetajoin

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/datagen"
	"repro/internal/mr"
)

// Config shapes the 1-Bucket-Theta join.
type Config struct {
	// Rows and Cols tile the join matrix; the replication factor is
	// Rows (T role) + Cols (S role). Default 8×8.
	Rows, Cols int
	// Reducers is the number of reduce tasks. Defaults to 8.
	Reducers int
	// BandTenths is the latitude band in tenths of a degree.
	// Defaults to 100 (the query's 10 degrees).
	BandTenths int32
	// PlacementSkew warps the deterministic row/column assignment: 0
	// (the default) keeps the historical uniform hash; e > 0 assigns
	// index floor(n·u^(1+e)) from the hash-derived uniform u, so low
	// rows and columns concentrate mass the way value-correlated
	// placement does in real joins — an adversarial load profile for
	// the uniform 1-Bucket-Theta grid (the regime SharesSkew targets).
	PlacementSkew float64
	// Shares, when non-nil, replaces the contiguous block partitioner
	// with a SharesSkew-style weighted share allocation (see
	// BuildSharesPlan), including sub-tiling of hot regions. Join
	// output records are identical either way.
	Shares *SharesPlan
}

func (c Config) normalized() Config {
	if c.Rows <= 0 {
		c.Rows = 8
	}
	if c.Cols <= 0 {
		c.Cols = 8
	}
	if c.Reducers <= 0 {
		c.Reducers = 8
	}
	if c.BandTenths <= 0 {
		c.BandTenths = 100
	}
	return c
}

// RegionKey renders a region id as a fixed-width big-endian key.
func RegionKey(region int) []byte {
	var k [4]byte
	binary.BigEndian.PutUint32(k[:], uint32(region))
	return k[:]
}

// blockPartitioner assigns contiguous region-id ranges to reduce tasks,
// the natural packing when memory-sized regions are handed out to
// reducers in order. Because a matrix row's regions have consecutive
// ids, an S tuple's whole row lands on only a couple of tasks, which is
// what lets LazySH collapse the row's replication to one record per
// task (the paper's 9.5× map-output reduction needs this clustering;
// a hash assignment would scatter the row across every reducer).
type blockPartitioner struct {
	regions int
}

// Partition implements mr.Partitioner.
func (p blockPartitioner) Partition(key []byte, numPartitions int) int {
	region := int(binary.BigEndian.Uint32(key))
	if region >= p.regions {
		region = p.regions - 1
	}
	return region * numPartitions / p.regions
}

// mapper replicates each tuple across its matrix row (as S) and column
// (as T).
type mapper struct {
	mr.MapperBase
	cfg Config
}

// Map implements mr.Mapper over one Cloud record line.
func (m mapper) Map(key, value []byte, out mr.Emitter) error {
	// Deterministic stand-ins for 1-Bucket-Theta's random row/column.
	row := placeIdx(datagen.Hash64(append([]byte("S|"), value...)), m.cfg.Rows, m.cfg.PlacementSkew)
	col := placeIdx(datagen.Hash64(append([]byte("T|"), value...)), m.cfg.Cols, m.cfg.PlacementSkew)

	sVal := append([]byte{'S'}, value...)
	for c := 0; c < m.cfg.Cols; c++ {
		g := row*m.cfg.Cols + c
		if sg := m.cfg.Shares.subOf(g); sg != nil {
			// Sub-tiled region: the S copy fans across the b
			// sub-columns of its hashed sub-row.
			sr := int(datagen.Hash64(append([]byte("sr|"), value...)) % uint64(sg.rows))
			for sc := 0; sc < sg.cols; sc++ {
				if err := out.Emit(subRegionKey(g, sr*sg.cols+sc), sVal); err != nil {
					return err
				}
			}
			continue
		}
		if err := out.Emit(RegionKey(g), sVal); err != nil {
			return err
		}
	}
	tVal := append([]byte{'T'}, value...)
	for r := 0; r < m.cfg.Rows; r++ {
		g := r*m.cfg.Cols + col
		if sg := m.cfg.Shares.subOf(g); sg != nil {
			// The T copy fans down the a sub-rows of its hashed
			// sub-column, meeting each S sub-copy exactly once.
			sc := int(datagen.Hash64(append([]byte("sc|"), value...)) % uint64(sg.cols))
			for sr := 0; sr < sg.rows; sr++ {
				if err := out.Emit(subRegionKey(g, sr*sg.cols+sc), tVal); err != nil {
					return err
				}
			}
			continue
		}
		if err := out.Emit(RegionKey(g), tVal); err != nil {
			return err
		}
	}
	return nil
}

// placeIdx maps a hash to a grid index: uniform at skew 0 (the
// historical byte-identical path), else floor(n·u^(1+skew)).
func placeIdx(h uint64, n int, skew float64) int {
	if skew <= 0 {
		return int(h % uint64(n))
	}
	u := float64(h>>11) / float64(1<<53)
	idx := int(math.Pow(u, 1+skew) * float64(n))
	if idx >= n {
		idx = n - 1
	}
	return idx
}

// tuple is a parsed Cloud record, reduced to the join attributes.
type tuple struct {
	date, lon, lat int32
}

// reducer joins one region's S and T lists with the band predicate.
type reducer struct {
	mr.ReducerBase
	cfg Config
}

// Reduce implements mr.Reducer. The local join is an in-memory
// nested-loop over the region's chunk, like the memory-aware
// 1-Bucket-Theta's per-region join.
func (r reducer) Reduce(key []byte, values mr.ValueIter, out mr.Emitter) error {
	var ss, ts []tuple
	for {
		v, ok := values.Next()
		if !ok {
			break
		}
		if len(v) == 0 {
			return fmt.Errorf("thetajoin: empty value")
		}
		date, lon, lat, ok2 := datagen.ParseCloudLine(v[1:])
		if !ok2 {
			return fmt.Errorf("thetajoin: bad record %q", v)
		}
		switch v[0] {
		case 'S':
			ss = append(ss, tuple{date, lon, lat})
		case 'T':
			ts = append(ts, tuple{date, lon, lat})
		default:
			return fmt.Errorf("thetajoin: unknown role %q", v[0])
		}
	}
	// Sub-tiled groups carry a 5th sub-region index byte; strip it on
	// output so the joined records are byte-identical to an un-tiled
	// run (every (s, t) pair meets exactly once either way).
	outKey := key
	if len(key) == 5 {
		outKey = key[:4]
	}
	for _, s := range ss {
		for _, t := range ts {
			if s.date == t.date && s.lon == t.lon && abs32(s.lat-t.lat) <= r.cfg.BandTenths {
				line := fmt.Sprintf("%d,%d,%d,%d", s.date, s.lon, s.lat, t.lat)
				if err := out.Emit(outKey, []byte(line)); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

func abs32(x int32) int32 {
	if x < 0 {
		return -x
	}
	return x
}

// NewJob builds the 1-Bucket-Theta join job. With cfg.Shares set, the
// share plan replaces the block partitioner (routing and sub-tiling
// stay deterministic, so LazySH remains legal).
func NewJob(cfg Config) *mr.Job {
	cfg = cfg.normalized()
	var part mr.Partitioner = blockPartitioner{regions: cfg.Rows * cfg.Cols}
	if cfg.Shares != nil {
		part = cfg.Shares
	}
	return &mr.Job{
		Name:           "thetajoin",
		NewMapper:      func() mr.Mapper { return mapper{cfg: cfg} },
		NewReducer:     func() mr.Reducer { return reducer{cfg: cfg} },
		Partitioner:    part,
		NumReduceTasks: cfg.Reducers,
		Deterministic:  true,
	}
}

// Splits streams Cloud record lines.
func Splits(cloud *datagen.Cloud, numSplits int) []mr.Split {
	if numSplits < 1 {
		numSplits = 1
	}
	per := (cloud.Len() + numSplits - 1) / numSplits
	var splits []mr.Split
	for start := 0; start < cloud.Len(); start += per {
		start, end := start, min(start+per, cloud.Len())
		splits = append(splits, &mr.GenSplit{Gen: func(emit func(k, v []byte) error) error {
			for i := start; i < end; i++ {
				if err := emit(nil, []byte(cloud.Record(i).Line())); err != nil {
					return err
				}
			}
			return nil
		}})
	}
	if len(splits) == 0 {
		splits = []mr.Split{&mr.MemSplit{}}
	}
	return splits
}

// Reference computes the exact join result multiset sequentially.
func Reference(cloud *datagen.Cloud, band int32) map[string]int {
	recs := make([]tuple, cloud.Len())
	for i := range recs {
		r := cloud.Record(i)
		recs[i] = tuple{r.Date, r.Longitude, r.Latitude}
	}
	out := make(map[string]int)
	for _, s := range recs {
		for _, t := range recs {
			if s.date == t.date && s.lon == t.lon && abs32(s.lat-t.lat) <= band {
				out[fmt.Sprintf("%d,%d,%d,%d", s.date, s.lon, s.lat, t.lat)]++
			}
		}
	}
	return out
}
