package thetajoin

import (
	"encoding/binary"
	"math"

	"repro/internal/partition"
)

// SharesPlan is a SharesSkew-style share allocation (Afrati et al.,
// "SharesSkew: Handling Skew in Join Optimization Using MapReduce")
// for the 1-Bucket-Theta grid: each region's reducer share is
// proportional to its sampled load. A region heavier than the
// per-reducer target gets share > 1, realized as an a×b sub-grid of
// the region — its S tuples are replicated across the b sub-columns of
// their hashed sub-row and its T tuples down the a sub-rows of their
// hashed sub-column, so every (s, t) pair of the region still meets in
// exactly one sub-region and the join output is record-identical to
// the un-tiled run. Regions and sub-regions are then LPT bin-packed
// onto reducers by weight (partition.PackLPT), replacing the uniform
// contiguous block assignment that collapses under placement skew.
type SharesPlan struct {
	regions  int
	reducers int
	assign   []int // region -> reducer (unsub-tiled regions)
	sub      map[int]*subGrid
	loads    []int64
}

// subGrid is one hot region's a×b sub-tiling with per-sub-region
// reducer assignment.
type subGrid struct {
	rows, cols int
	parts      []int
}

// BuildSharesPlan allocates reducers to regions from per-region load
// weights (indexed by region id, e.g. RegionWeights over a sampling
// sketch). hotFactor scales the sub-tiling cut: a region is sub-tiled
// when its weight exceeds hotFactor × (total/reducers); <= 0 means 1.
func BuildSharesPlan(cfg Config, weights []int64, reducers int, hotFactor float64) *SharesPlan {
	cfg = cfg.normalized()
	if reducers < 1 {
		reducers = 1
	}
	if hotFactor <= 0 {
		hotFactor = 1
	}
	regions := cfg.Rows * cfg.Cols
	w := make([]int64, regions)
	copy(w, weights)
	var total int64
	for _, v := range w {
		total += v
	}
	target := total / int64(reducers)
	if target < 1 {
		target = 1
	}
	cut := int64(hotFactor * float64(target))

	// One packing item per region, plus a×b items per sub-tiled region.
	items := make([]int64, 0, regions)
	type hotEnt struct {
		region     int
		rows, cols int
	}
	var hots []hotEnt
	itemOf := make([]int, regions) // region -> its item index (or first sub item)
	for g := 0; g < regions; g++ {
		if w[g] > cut {
			share := int((w[g] + target - 1) / target)
			if share > reducers {
				share = reducers
			}
			if share < 2 {
				share = 2
			}
			a, b := bestGrid(share)
			itemOf[g] = len(items)
			per := w[g] / int64(a*b)
			for i := 0; i < a*b; i++ {
				items = append(items, per)
			}
			hots = append(hots, hotEnt{region: g, rows: a, cols: b})
			continue
		}
		itemOf[g] = len(items)
		items = append(items, w[g])
	}
	assignItems, loads := partition.PackLPT(items, reducers)

	plan := &SharesPlan{
		regions:  regions,
		reducers: reducers,
		assign:   make([]int, regions),
		sub:      make(map[int]*subGrid, len(hots)),
		loads:    loads,
	}
	for g := 0; g < regions; g++ {
		plan.assign[g] = assignItems[itemOf[g]]
	}
	for _, h := range hots {
		n := h.rows * h.cols
		plan.sub[h.region] = &subGrid{
			rows:  h.rows,
			cols:  h.cols,
			parts: append([]int(nil), assignItems[itemOf[h.region]:itemOf[h.region]+n]...),
		}
	}
	return plan
}

// bestGrid factors share into the most-square a×b grid with a*b ==
// share (falling back toward 1×share for primes): squarer grids split
// both roles' replication growth evenly.
func bestGrid(share int) (a, b int) {
	a = int(math.Sqrt(float64(share)))
	for ; a > 1; a-- {
		if share%a == 0 {
			break
		}
	}
	if a < 1 {
		a = 1
	}
	return a, share / a
}

// Partition implements mr.Partitioner over region keys (4 bytes) and
// sub-region keys (5 bytes: region + sub index).
func (p *SharesPlan) Partition(key []byte, numPartitions int) int {
	region := int(binary.BigEndian.Uint32(key[:4]))
	if region >= p.regions {
		region = p.regions - 1
	}
	bin := p.assign[region]
	if len(key) >= 5 {
		if sg := p.sub[region]; sg != nil && int(key[4]) < len(sg.parts) {
			bin = sg.parts[key[4]]
		}
	}
	if numPartitions != p.reducers {
		return bin % numPartitions
	}
	return bin
}

// PredictedLoads is the packer's per-reducer weight prediction.
func (p *SharesPlan) PredictedLoads() []int64 { return append([]int64(nil), p.loads...) }

// SubTiled reports how many regions were sub-tiled.
func (p *SharesPlan) SubTiled() int { return len(p.sub) }

// subOf returns a region's sub-grid, nil when un-tiled (nil-receiver
// safe so the mapper can consult cfg.Shares unconditionally).
func (p *SharesPlan) subOf(region int) *subGrid {
	if p == nil {
		return nil
	}
	return p.sub[region]
}

// subRegionKey renders a sub-region key: the region key plus the
// sub-region index byte (the reducer strips it on output, so joined
// records are byte-identical to the un-tiled run).
func subRegionKey(region, idx int) []byte {
	k := make([]byte, 5)
	binary.BigEndian.PutUint32(k[:4], uint32(region))
	k[4] = byte(idx)
	return k
}

// RegionWeights extracts per-region byte weights from a sampling
// sketch over this workload's map output (keys are RegionKeys).
func RegionWeights(sk *partition.Sketch, cfg Config) []int64 {
	cfg = cfg.normalized()
	out := make([]int64, cfg.Rows*cfg.Cols)
	for _, kw := range sk.Keys(nil) {
		if len(kw.Key) < 4 {
			continue
		}
		g := int(binary.BigEndian.Uint32(kw.Key[:4]))
		if g < len(out) {
			out[g] += kw.Bytes
		}
	}
	return out
}
