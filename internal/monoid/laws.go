package monoid

import (
	"bytes"
	"fmt"
	"math/rand"

	"repro/internal/mr"
)

// LawConfig drives CheckLaws. Values is the only required field: it
// generates one batch of encoded values (as the workload's map phase
// would emit them) from the seeded source.
type LawConfig struct {
	// Seed seeds the deterministic generator (0 = seed 1).
	Seed int64
	// Trials is the number of random trials (0 = 64).
	Trials int
	// Key generates the group key for a trial. Nil = fixed key "k".
	Key func(r *rand.Rand) []byte
	// Values generates a non-empty batch of encoded values for one key.
	Values func(r *rand.Rand) [][]byte
	// Equal compares two emitted encodings. Nil = exact byte equality.
	// Float-valued monoids substitute an epsilon comparison here, since
	// reassociating float sums legitimately perturbs low bits.
	Equal func(a, b []mr.Record) bool
}

// CheckLaws property-tests a monoid declaration under seeded random
// inputs: associativity and identity of Merge, commutativity when the
// Commutative marker is claimed, and closure (EmitState output absorbs
// back into an equivalent state — the property that makes the derived
// combiner safe to reapply). States are compared through their
// canonical encoding (EmitRecords). Returns the first violation found.
func CheckLaws(m Monoid, cfg LawConfig) error {
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	trials := cfg.Trials
	if trials <= 0 {
		trials = 64
	}
	if cfg.Values == nil {
		return fmt.Errorf("monoid: LawConfig.Values is required")
	}
	key := cfg.Key
	if key == nil {
		key = func(*rand.Rand) []byte { return []byte("k") }
	}
	equal := cfg.Equal
	if equal == nil {
		equal = RecordsEqual
	}
	_, isCommutative := m.(Commutative)

	r := rand.New(rand.NewSource(seed))
	for trial := 0; trial < trials; trial++ {
		k := key(r)
		batches := [3][][]byte{cfg.Values(r), cfg.Values(r), cfg.Values(r)}
		// States are rebuilt from their batches before every Merge:
		// Merge may mutate its arguments, so no state is reused across
		// law evaluations.
		build := func(i int) (any, error) {
			s := m.Identity()
			var err error
			for _, v := range batches[i] {
				if s, err = m.Absorb(s, v); err != nil {
					return nil, fmt.Errorf("monoid: Absorb failed (trial %d): %w", trial, err)
				}
			}
			return s, nil
		}
		emit := func(s any) ([]mr.Record, error) {
			recs, err := EmitRecords(m, k, s)
			if err != nil {
				return nil, fmt.Errorf("monoid: EmitState failed (trial %d): %w", trial, err)
			}
			return recs, nil
		}
		merge2 := func(i, j int) (any, error) {
			a, err := build(i)
			if err != nil {
				return nil, err
			}
			b, err := build(j)
			if err != nil {
				return nil, err
			}
			s, err := m.Merge(a, b)
			if err != nil {
				return nil, fmt.Errorf("monoid: Merge failed (trial %d): %w", trial, err)
			}
			return s, nil
		}

		// Associativity: (a·b)·c == a·(b·c).
		left, err := merge2(0, 1)
		if err != nil {
			return err
		}
		c, err := build(2)
		if err != nil {
			return err
		}
		if left, err = m.Merge(left, c); err != nil {
			return fmt.Errorf("monoid: Merge failed (trial %d): %w", trial, err)
		}
		right, err := merge2(1, 2)
		if err != nil {
			return err
		}
		a, err := build(0)
		if err != nil {
			return err
		}
		if right, err = m.Merge(a, right); err != nil {
			return fmt.Errorf("monoid: Merge failed (trial %d): %w", trial, err)
		}
		lrecs, err := emit(left)
		if err != nil {
			return err
		}
		rrecs, err := emit(right)
		if err != nil {
			return err
		}
		if !equal(lrecs, rrecs) {
			return fmt.Errorf("monoid: associativity violated (trial %d, seed %d):\n (a·b)·c = %s\n a·(b·c) = %s",
				trial, seed, formatRecords(lrecs), formatRecords(rrecs))
		}

		// Identity: e·a == a == a·e.
		base, err := build(0)
		if err != nil {
			return err
		}
		baseRecs, err := emit(base)
		if err != nil {
			return err
		}
		for _, side := range []string{"left", "right"} {
			s, err := build(0)
			if err != nil {
				return err
			}
			var merged any
			if side == "left" {
				merged, err = m.Merge(m.Identity(), s)
			} else {
				merged, err = m.Merge(s, m.Identity())
			}
			if err != nil {
				return fmt.Errorf("monoid: Merge with identity failed (trial %d): %w", trial, err)
			}
			got, err := emit(merged)
			if err != nil {
				return err
			}
			if !equal(got, baseRecs) {
				return fmt.Errorf("monoid: %s identity violated (trial %d, seed %d):\n e·a = %s\n   a = %s",
					side, trial, seed, formatRecords(got), formatRecords(baseRecs))
			}
		}

		// Claimed commutativity: a·b == b·a.
		if isCommutative {
			ab, err := merge2(0, 1)
			if err != nil {
				return err
			}
			ba, err := merge2(1, 0)
			if err != nil {
				return err
			}
			abRecs, err := emit(ab)
			if err != nil {
				return err
			}
			baRecs, err := emit(ba)
			if err != nil {
				return err
			}
			if !equal(abRecs, baRecs) {
				return fmt.Errorf("monoid: claimed commutativity violated (trial %d, seed %d):\n a·b = %s\n b·a = %s",
					trial, seed, formatRecords(abRecs), formatRecords(baRecs))
			}
		}

		// Closure: re-absorbing the emitted encoding reproduces the
		// state. This is what lets combiner output feed later combiner
		// passes.
		s := m.Identity()
		for _, rec := range baseRecs {
			if s, err = m.Absorb(s, rec.Value); err != nil {
				return fmt.Errorf("monoid: closure violated — Absorb rejected EmitState output (trial %d, seed %d): %w", trial, seed, err)
			}
		}
		round, err := emit(s)
		if err != nil {
			return err
		}
		if !equal(round, baseRecs) {
			return fmt.Errorf("monoid: closure violated — emit∘absorb∘emit not idempotent (trial %d, seed %d):\n round = %s\n  base = %s",
				trial, seed, formatRecords(round), formatRecords(baseRecs))
		}
	}
	return nil
}

// RecordsEqual is the default state comparison: exact byte equality of
// the emitted records, order-sensitive (EmitState must be
// deterministic).
func RecordsEqual(a, b []mr.Record) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !bytes.Equal(a[i].Key, b[i].Key) || !bytes.Equal(a[i].Value, b[i].Value) {
			return false
		}
	}
	return true
}

func formatRecords(recs []mr.Record) string {
	var buf bytes.Buffer
	buf.WriteByte('[')
	for i, r := range recs {
		if i > 0 {
			buf.WriteByte(' ')
		}
		fmt.Fprintf(&buf, "%q=%q", r.Key, r.Value)
	}
	buf.WriteByte(']')
	return buf.String()
}
