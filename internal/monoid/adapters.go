package monoid

import (
	"repro/internal/mr"
)

// combinerReducer is the mr.Reducer derived from a Monoid: fold every
// value of the group into a fresh state and emit its encoding.
type combinerReducer struct {
	m     Monoid
	final func(key []byte, s any, out mr.Emitter) error
}

func (r *combinerReducer) Setup(*mr.TaskInfo, mr.Emitter) error { return nil }

func (r *combinerReducer) Reduce(key []byte, values mr.ValueIter, out mr.Emitter) error {
	s := r.m.Identity()
	var err error
	for {
		v, ok := values.Next()
		if !ok {
			break
		}
		s, err = r.m.Absorb(s, v)
		if err != nil {
			return err
		}
	}
	if r.final != nil {
		return r.final(key, s, out)
	}
	return r.m.EmitState(key, s, out)
}

func (r *combinerReducer) Cleanup(mr.Emitter) error { return nil }

// Combiner derives the classic map-side combiner from a monoid
// declaration: per key group, absorb all values and emit the partial
// state. Because EmitState round-trips through Absorb, the derived
// combiner is safe to apply repeatedly (map spills, merged spills,
// reduce-side partial aggregation) — exactly the closure property the
// law checkers verify.
func Combiner(m Monoid) func() mr.Reducer {
	return func() mr.Reducer { return &combinerReducer{m: m} }
}

// Reducer derives the final reducer. With final == nil the reduce
// output is the state encoding itself (aggregate jobs like wordcount
// and skewagg, whose reducer IS their combiner). A non-nil final
// renders the fully merged state into the job's output format instead
// (querysuggest's top-k rendering, pagerank's rank update).
func Reducer(m Monoid, final func(key []byte, s any, out mr.Emitter) error) func() mr.Reducer {
	return func() mr.Reducer { return &combinerReducer{m: m, final: final} }
}

// InMapper derives the in-mapper combining wrapper
// (mr.InMapperCombining) from a monoid: the per-mapper hash table's
// fold is FoldValue over m. Requires a single-valued monoid — states
// must emit exactly one record — which holds for sum-like aggregates;
// FoldValue errors loudly otherwise, failing the map task rather than
// silently corrupting output.
func InMapper(newMapper func() mr.Mapper, m Monoid, maxEntries int) func() mr.Mapper {
	combine := func(key, acc, v []byte) ([]byte, error) {
		return FoldValue(m, key, acc, v)
	}
	return mr.InMapperCombiningErr(newMapper, combine, maxEntries)
}
