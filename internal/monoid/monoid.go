// Package monoid defines the algebraic aggregation contract that
// combiners, in-mapper combining, and Anti-Combining's eager partial
// merge are all instances of (Lin's "Monoidify!", PAPERS.md): an
// associative Merge with an Identity element over a workload-defined
// aggregation state. A workload declares its monoid once; the adapters
// in this package derive the classic map-side Combiner, the in-mapper
// combining pattern, and the EagerSH partial-merge wiring from that one
// declaration, and the law checkers verify (rather than assume) the
// algebra every derived strategy depends on.
//
// The contract is byte-oriented on the outside — mr jobs move raw
// []byte values — but state-typed on the inside: Absorb decodes one
// encoded value (a raw map emission or a previously emitted partial)
// into the aggregation state, Merge combines states, and EmitState
// encodes a state back into output records. Workloads whose partials
// collapse to a single record (wordcount's sum, skewagg's
// count/sum/xor) additionally satisfy the single-value fold used by
// in-mapper combining; multi-record states (querysuggest's per-query
// count table) still get the derived Combiner and law checks.
package monoid

import (
	"fmt"

	"repro/internal/mr"
)

// Monoid is the aggregation contract one workload declares once.
//
// Laws (verified by CheckLaws, not assumed):
//
//	Merge(a, Merge(b, c)) == Merge(Merge(a, b), c)   associativity
//	Merge(Identity(), a) == a == Merge(a, Identity()) identity
//
// Absorb must accept every value the workload's map phase emits AND
// every encoding EmitState produces — a combiner's output feeds later
// combiner passes (merged spills, reduce-side partial aggregation), so
// the value space must be closed under partial aggregation.
type Monoid interface {
	// Identity returns the empty aggregation state.
	Identity() any
	// Absorb folds one encoded value into the state, returning the
	// (possibly replaced) state.
	Absorb(s any, value []byte) (any, error)
	// Merge combines two states, returning the merged state. It may
	// mutate and return either argument.
	Merge(a, b any) (any, error)
	// EmitState encodes the state as output records for key. The
	// encoding must round-trip through Absorb.
	EmitState(key []byte, s any, out mr.Emitter) error
}

// Commutative marks a Monoid whose Merge is also commutative:
// Merge(a, b) == Merge(b, a). Commutativity is what lets partial
// aggregates be recombined regardless of grouping order — the contract
// heavy-hitter splitting (internal/partition) and cross-worker partial
// merges rely on. CheckLaws verifies the claim.
type Commutative interface {
	Monoid
	// CommutativeMonoid is a marker; implementations return nothing.
	CommutativeMonoid()
}

// captureEmitter collects EmitState output in memory.
type captureEmitter struct {
	recs []mr.Record
}

// Emit implements mr.Emitter.
func (c *captureEmitter) Emit(key, value []byte) error {
	k := append([]byte(nil), key...)
	v := append([]byte(nil), value...)
	c.recs = append(c.recs, mr.Record{Key: k, Value: v})
	return nil
}

// EmitRecords runs EmitState into memory — the canonical encoding of a
// state, used by the law checkers and the single-value fold.
func EmitRecords(m Monoid, key []byte, s any) ([]mr.Record, error) {
	cap := &captureEmitter{}
	if err := m.EmitState(key, s, cap); err != nil {
		return nil, err
	}
	return cap.recs, nil
}

// FoldValue folds encoded values a and b into one encoded value through
// the monoid: absorb both into a fresh state and emit. It requires the
// state to emit exactly one record (a "single-valued" monoid — true for
// sum-like aggregates, false for e.g. per-query count tables) and is
// the combine function in-mapper combining needs.
func FoldValue(m Monoid, key, a, b []byte) ([]byte, error) {
	s := m.Identity()
	s, err := m.Absorb(s, a)
	if err != nil {
		return nil, err
	}
	s, err = m.Absorb(s, b)
	if err != nil {
		return nil, err
	}
	recs, err := EmitRecords(m, key, s)
	if err != nil {
		return nil, err
	}
	if len(recs) != 1 {
		return nil, fmt.Errorf("monoid: state emitted %d records; in-mapper folding needs a single-valued monoid", len(recs))
	}
	return recs[0].Value, nil
}
