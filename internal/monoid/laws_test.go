package monoid_test

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"
	"testing"

	"repro/internal/monoid"
	"repro/internal/mr"
	"repro/internal/workloads/querysuggest"
	"repro/internal/workloads/skewagg"
	"repro/internal/workloads/wordcount"
)

// TestWordCountSumLaws property-tests wordcount's monoid over mixed raw
// ("1") and partial (decimal sum) values.
func TestWordCountSumLaws(t *testing.T) {
	err := monoid.CheckLaws(wordcount.Sum{}, monoid.LawConfig{
		Seed:   7,
		Trials: 200,
		Values: func(r *rand.Rand) [][]byte {
			n := 1 + r.Intn(8)
			vals := make([][]byte, n)
			for i := range vals {
				if r.Intn(2) == 0 {
					vals[i] = []byte("1")
				} else {
					vals[i] = []byte(strconv.FormatUint(uint64(r.Intn(1_000_000)), 10))
				}
			}
			return vals
		},
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestSkewAggLaws property-tests skewagg's (count, sum, xor) monoid
// over mixed raw records and encoded partials.
func TestSkewAggLaws(t *testing.T) {
	err := monoid.CheckLaws(skewagg.Agg{}, monoid.LawConfig{
		Seed:   11,
		Trials: 200,
		Values: func(r *rand.Rand) [][]byte {
			n := 1 + r.Intn(6)
			vals := make([][]byte, n)
			for i := range vals {
				if r.Intn(3) == 0 {
					vals[i] = []byte(fmt.Sprintf("a:%d:%d:%016x", r.Intn(1000), r.Int63n(1<<40), r.Uint64()))
				} else {
					vals[i] = []byte(fmt.Sprintf("%d:payload%d", r.Intn(1000), r.Intn(1<<20)))
				}
			}
			return vals
		},
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestQuerySuggestCountsLaws property-tests querysuggest's per-query
// count-table monoid — a multi-record state, exercising EmitState's
// deterministic ordering.
func TestQuerySuggestCountsLaws(t *testing.T) {
	queries := []string{"go", "goat", "gopher", "golang", "gold", "golf"}
	err := monoid.CheckLaws(querysuggest.Counts{}, monoid.LawConfig{
		Seed:   13,
		Trials: 200,
		Key:    func(r *rand.Rand) []byte { return []byte("go") },
		Values: func(r *rand.Rand) [][]byte {
			n := 1 + r.Intn(8)
			vals := make([][]byte, n)
			for i := range vals {
				q := queries[r.Intn(len(queries))]
				vals[i] = querysuggest.EncodeValue(1+uint64(r.Intn(50)), []byte(q))
			}
			return vals
		},
	})
	if err != nil {
		t.Fatal(err)
	}
}

// subMonoid claims commutativity but subtracts — CheckLaws must catch
// both the bogus commutativity claim and the broken identity law.
type subMonoid struct{}

func (subMonoid) Identity() any { return int64(0) }
func (subMonoid) Absorb(s any, v []byte) (any, error) {
	n, err := strconv.ParseInt(string(v), 10, 64)
	if err != nil {
		return nil, err
	}
	return s.(int64) + n, nil
}
func (subMonoid) Merge(a, b any) (any, error) { return a.(int64) - b.(int64), nil }
func (subMonoid) EmitState(key []byte, s any, out mr.Emitter) error {
	return out.Emit(key, []byte(strconv.FormatInt(s.(int64), 10)))
}
func (subMonoid) CommutativeMonoid() {}

// firstMonoid keeps the first value — associative and left-identity-
// less: e·a = a holds but only because identity is special-cased wrong.
type firstMonoid struct{}

func (firstMonoid) Identity() any { return []byte(nil) }
func (firstMonoid) Absorb(s any, v []byte) (any, error) {
	if s.([]byte) == nil {
		return append([]byte(nil), v...), nil
	}
	return s, nil
}
func (firstMonoid) Merge(a, b any) (any, error) {
	if a.([]byte) == nil {
		return b, nil
	}
	return a, nil
}
func (firstMonoid) EmitState(key []byte, s any, out mr.Emitter) error {
	return out.Emit(key, s.([]byte))
}
func (firstMonoid) CommutativeMonoid() {}

// TestCheckLawsCatchesViolations proves the checker actually rejects
// broken algebras instead of rubber-stamping them.
func TestCheckLawsCatchesViolations(t *testing.T) {
	decimalValues := func(r *rand.Rand) [][]byte {
		n := 1 + r.Intn(4)
		vals := make([][]byte, n)
		for i := range vals {
			vals[i] = []byte(strconv.Itoa(1 + r.Intn(100)))
		}
		return vals
	}
	if err := monoid.CheckLaws(subMonoid{}, monoid.LawConfig{Values: decimalValues}); err == nil {
		t.Fatal("CheckLaws accepted a subtraction 'monoid'")
	} else if !strings.Contains(err.Error(), "violated") {
		t.Fatalf("unexpected error: %v", err)
	}
	// first-wins is associative but not commutative: the claimed
	// commutativity must be the law that fails.
	err := monoid.CheckLaws(firstMonoid{}, monoid.LawConfig{
		Values: func(r *rand.Rand) [][]byte {
			return [][]byte{[]byte(fmt.Sprintf("v%d", r.Intn(1000)))}
		},
	})
	if err == nil {
		t.Fatal("CheckLaws accepted a bogus commutativity claim")
	}
	if !strings.Contains(err.Error(), "commutativity") {
		t.Fatalf("expected commutativity violation, got: %v", err)
	}
}

// TestDerivedCombinerMatchesHandWritten asserts the monoid-derived
// combiner reproduces the historical hand-written combiner output
// byte-for-byte on a real group.
func TestDerivedCombinerMatchesHandWritten(t *testing.T) {
	// wordcount: ["1" "1" "3"] -> "5"
	red := monoid.Combiner(wordcount.Sum{})()
	var got []mr.Record
	out := mr.EmitterFunc(func(k, v []byte) error {
		got = append(got, mr.Record{Key: append([]byte(nil), k...), Value: append([]byte(nil), v...)})
		return nil
	})
	if err := red.Reduce([]byte("w"), sliceIter{vals: [][]byte{[]byte("1"), []byte("1"), []byte("3")}}.iter(), out); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || string(got[0].Value) != "5" {
		t.Fatalf("derived wordcount combiner: got %v", got)
	}

	// querysuggest: duplicate queries fold into sorted aggregates.
	got = nil
	qred := monoid.Combiner(querysuggest.Counts{})()
	vals := [][]byte{
		querysuggest.EncodeValue(1, []byte("zeta")),
		querysuggest.EncodeValue(1, []byte("alpha")),
		querysuggest.EncodeValue(2, []byte("zeta")),
	}
	if err := qred.Reduce([]byte("p"), sliceIter{vals: vals}.iter(), out); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("expected 2 aggregate records, got %d", len(got))
	}
	c0, q0, _ := querysuggest.DecodeValue(got[0].Value)
	c1, q1, _ := querysuggest.DecodeValue(got[1].Value)
	if string(q0) != "alpha" || c0 != 1 || string(q1) != "zeta" || c1 != 3 {
		t.Fatalf("unexpected aggregates: %s=%d %s=%d", q0, c0, q1, c1)
	}
}

// TestFoldValueSingleValued covers the in-mapper fold: single-valued
// monoids fold, multi-record states error loudly.
func TestFoldValueSingleValued(t *testing.T) {
	v, err := monoid.FoldValue(wordcount.Sum{}, []byte("w"), []byte("2"), []byte("40"))
	if err != nil {
		t.Fatal(err)
	}
	if string(v) != "42" {
		t.Fatalf("FoldValue = %q, want 42", v)
	}
	_, err = monoid.FoldValue(querysuggest.Counts{},
		[]byte("p"),
		querysuggest.EncodeValue(1, []byte("a")),
		querysuggest.EncodeValue(1, []byte("b")))
	if err == nil {
		t.Fatal("FoldValue accepted a multi-record state")
	}
}

type sliceIter struct{ vals [][]byte }

func (s sliceIter) iter() mr.ValueIter { return &sliceIterState{vals: s.vals} }

type sliceIterState struct {
	vals [][]byte
	i    int
}

func (s *sliceIterState) Next() ([]byte, bool) {
	if s.i >= len(s.vals) {
		return nil, false
	}
	v := s.vals[s.i]
	s.i++
	return v, true
}
