package partition

import (
	"fmt"
	"sort"

	"repro/internal/bytesx"
)

// RangeOptions tunes BuildRange.
type RangeOptions struct {
	// RangesPerReducer controls cut granularity: the key space is cut
	// into about reducers*RangesPerReducer equal-weight ranges before
	// bin-packing, so the packer has slack to balance around heavy
	// keys. Default 8.
	RangesPerReducer int
}

func (o RangeOptions) normalized() RangeOptions {
	if o.RangesPerReducer <= 0 {
		o.RangesPerReducer = 8
	}
	return o
}

// RangePartitioner is an mr.Partitioner routing keys by sampled-weight-
// balanced ranges: the sketch's key space is cut into near-equal-weight
// ranges, and ranges are LPT bin-packed onto reducers. A key whose
// range was never sampled still routes deterministically (it falls into
// the enclosing range by comparator order).
type RangePartitioner struct {
	// bounds[i] is range i's inclusive upper bound; the last range is
	// unbounded above, so assign has len(bounds)+1 entries.
	bounds   [][]byte
	assign   []int
	loads    []int64
	reducers int
	cmp      bytesx.Compare
}

// BuildRange builds a balanced range plan from a sketch. cmp must be
// the job's key order (nil means the default byte order).
func BuildRange(sk *Sketch, reducers int, cmp bytesx.Compare, opts RangeOptions) (*RangePartitioner, error) {
	if reducers < 1 {
		return nil, fmt.Errorf("partition: range plan needs >= 1 reducers, got %d", reducers)
	}
	if cmp == nil {
		cmp = bytesx.Bytes
	}
	opts = opts.normalized()
	keys := sk.Keys(cmp)
	if len(keys) == 0 {
		return nil, fmt.Errorf("partition: range plan from an empty sketch")
	}
	bounds, weights := cutRanges(keys, sk.TotalBytes(), reducers*opts.RangesPerReducer)
	assign, loads := PackLPT(weights, reducers)
	return &RangePartitioner{bounds: bounds, assign: assign, loads: loads, reducers: reducers, cmp: cmp}, nil
}

// cutRanges cuts sorted keys into at most targetRanges contiguous
// ranges of near-equal byte weight. A key heavier than the chunk size
// ends its range immediately — range partitioning cannot split inside
// a key, which is exactly the residual skew StrategySplit removes.
func cutRanges(keys []KeyWeight, total int64, targetRanges int) (bounds [][]byte, weights []int64) {
	if targetRanges < 1 {
		targetRanges = 1
	}
	if targetRanges > len(keys) {
		targetRanges = len(keys)
	}
	chunk := total / int64(targetRanges)
	if chunk < 1 {
		chunk = 1
	}
	var acc int64
	for i, kw := range keys {
		acc += kw.Bytes
		last := i == len(keys)-1
		if acc >= chunk && !last {
			bounds = append(bounds, append([]byte(nil), kw.Key...))
			weights = append(weights, acc)
			acc = 0
		}
	}
	weights = append(weights, acc) // the final, unbounded-above range
	return bounds, weights
}

// Partition implements mr.Partitioner.
func (p *RangePartitioner) Partition(key []byte, numPartitions int) int {
	idx := sort.Search(len(p.bounds), func(i int) bool { return p.cmp(key, p.bounds[i]) <= 0 })
	bin := p.assign[idx]
	if numPartitions != p.reducers {
		// The plan was built for p.reducers; degrade deterministically
		// rather than routing out of range.
		return bin % numPartitions
	}
	return bin
}

// PredictedLoads is the packer's per-reducer byte prediction.
func (p *RangePartitioner) PredictedLoads() []int64 {
	return append([]int64(nil), p.loads...)
}

// Ranges reports the cut count (for tables and tests).
func (p *RangePartitioner) Ranges() int { return len(p.bounds) + 1 }
