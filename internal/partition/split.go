package partition

import (
	"fmt"
	"sort"

	"repro/internal/bytesx"
	"repro/internal/iokit"
	"repro/internal/mr"
)

// saltSep separates a hot key from its one-byte salt in the
// intermediate key space. Salted keys sort directly after their base
// key under the default byte order, and the separator never appears as
// a salted key's penultimate byte in an unsalted record unless the
// workload itself emits keys of that shape — SplitJob therefore
// requires the default comparator and keys are checked against the
// plan's hot set, not just the separator.
const saltSep = 0x00

// SplitOptions tunes BuildSplit.
type SplitOptions struct {
	RangeOptions
	// HotFraction: a key is split when its sampled bytes exceed
	// HotFraction × (total/reducers). Default 0.8 — split slightly
	// before a key alone fills a reducer, since range packing cannot
	// place a partial key.
	HotFraction float64
	// MaxFanout caps one key's partitions (<= 0: reducers).
	MaxFanout int
}

func (o SplitOptions) normalized(reducers int) SplitOptions {
	o.RangeOptions = o.RangeOptions.normalized()
	if o.HotFraction <= 0 {
		o.HotFraction = 0.8
	}
	if o.MaxFanout <= 0 || o.MaxFanout > reducers {
		o.MaxFanout = reducers
	}
	return o
}

// hotKey is one split key's per-salt partition assignment.
type hotKey struct {
	parts []int
}

// SplitPlan fans heavy-hitter keys across several partitions: the
// SplitJob mapper wrapper salts a hot key with hash(value)%fanout, the
// plan routes each salt to its packed partition, the SplitJob reducer
// wrapper partially aggregates each salted group with the job's monoid
// combiner, and Recombine folds the partials into final records after
// the run. Non-hot keys route through an embedded range plan built
// over the remaining key space.
type SplitPlan struct {
	base     *RangePartitioner
	hot      map[string]hotKey
	loads    []int64
	reducers int
}

// BuildSplit builds a heavy-hitter splitting plan from a sketch. cmp
// must be nil or bytesx.Bytes: salting appends bytes to keys, which
// only preserves ordering contracts under the default comparator.
func BuildSplit(sk *Sketch, reducers int, cmp bytesx.Compare, opts SplitOptions) (*SplitPlan, error) {
	if reducers < 1 {
		return nil, fmt.Errorf("partition: split plan needs >= 1 reducers, got %d", reducers)
	}
	if cmp == nil {
		cmp = bytesx.Bytes
	}
	opts = opts.normalized(reducers)
	keys := sk.Keys(cmp)
	if len(keys) == 0 {
		return nil, fmt.Errorf("partition: split plan from an empty sketch")
	}
	target := sk.TotalBytes() / int64(reducers)
	if target < 1 {
		target = 1
	}
	hotCut := int64(opts.HotFraction * float64(target))

	var cold []KeyWeight
	type hotEnt struct {
		key    string
		fanout int
		bytes  int64
	}
	var hots []hotEnt
	for _, kw := range keys {
		if kw.Bytes > hotCut {
			fanout := int((kw.Bytes + target - 1) / target)
			if fanout < 2 {
				fanout = 2
			}
			if fanout > opts.MaxFanout {
				fanout = opts.MaxFanout
			}
			hots = append(hots, hotEnt{key: string(kw.Key), fanout: fanout, bytes: kw.Bytes})
			continue
		}
		cold = append(cold, kw)
	}

	var coldTotal int64
	for _, kw := range cold {
		coldTotal += kw.Bytes
	}
	bounds, weights := cutRanges(cold, coldTotal, reducers*opts.RangesPerReducer)
	if len(cold) == 0 {
		// Every key was hot; keep one catch-all zero-weight range so
		// unsampled keys still route.
		bounds, weights = nil, []int64{0}
	}
	nRanges := len(weights)
	for _, h := range hots {
		per := h.bytes / int64(h.fanout)
		for i := 0; i < h.fanout; i++ {
			weights = append(weights, per)
		}
	}
	assign, loads := PackLPT(weights, reducers)

	plan := &SplitPlan{
		base:     &RangePartitioner{bounds: bounds, assign: assign[:nRanges], reducers: reducers, cmp: cmp},
		hot:      make(map[string]hotKey, len(hots)),
		loads:    loads,
		reducers: reducers,
	}
	next := nRanges
	for _, h := range hots {
		plan.hot[h.key] = hotKey{parts: append([]int(nil), assign[next:next+h.fanout]...)}
		next += h.fanout
	}
	return plan, nil
}

// Partition implements mr.Partitioner.
func (p *SplitPlan) Partition(key []byte, numPartitions int) int {
	if base, salt, ok := p.saltOf(key); ok {
		bin := p.hot[string(base)].parts[salt]
		if numPartitions != p.reducers {
			return bin % numPartitions
		}
		return bin
	}
	if hk, ok := p.hot[string(key)]; ok {
		// An unsalted record carrying a hot key (emitted outside the
		// SplitJob mapper wrapper) routes to the key's home partition.
		bin := hk.parts[0]
		if numPartitions != p.reducers {
			return bin % numPartitions
		}
		return bin
	}
	return p.base.Partition(key, numPartitions)
}

// saltOf decodes key as base||saltSep||salt for a planned hot base.
func (p *SplitPlan) saltOf(key []byte) (base []byte, salt int, ok bool) {
	if len(key) < 3 || key[len(key)-2] != saltSep {
		return nil, 0, false
	}
	base = key[:len(key)-2]
	hk, found := p.hot[string(base)]
	if !found {
		return nil, 0, false
	}
	salt = int(key[len(key)-1])
	if salt >= len(hk.parts) {
		return nil, 0, false
	}
	return base, salt, true
}

// PredictedLoads is the packer's per-reducer byte prediction.
func (p *SplitPlan) PredictedLoads() []int64 { return append([]int64(nil), p.loads...) }

// HotKeys returns the split keys with their fanouts, heaviest fanout
// first then byte order — for tables and tests.
func (p *SplitPlan) HotKeys() []struct {
	Key    []byte
	Fanout int
} {
	out := make([]struct {
		Key    []byte
		Fanout int
	}, 0, len(p.hot))
	for k, hk := range p.hot {
		out = append(out, struct {
			Key    []byte
			Fanout int
		}{Key: []byte(k), Fanout: len(hk.parts)})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Fanout != out[j].Fanout {
			return out[i].Fanout > out[j].Fanout
		}
		return string(out[i].Key) < string(out[j].Key)
	})
	return out
}

// home is the partition Recombine appends a hot key's final record to.
func (p *SplitPlan) home(key string) int { return p.hot[key].parts[0] }

// SplitJob wraps job for the plan: the mapper wrapper salts hot keys
// with a deterministic hash of the value (preserving Job.Deterministic,
// so anticombine.Wrap composes and LazySH stays legal), the plan
// becomes the partitioner, and the reducer wrapper partially aggregates
// salted groups under their base key using newCombiner (nil:
// job.NewCombiner — the monoid requirement; jobs without one cannot be
// split). The caller must run Recombine on the job's Result to fold the
// partials into final records. Requires the default key and group
// comparators (salting appends to keys).
func SplitJob(job *mr.Job, plan *SplitPlan, newCombiner func() mr.Reducer) (*mr.Job, error) {
	if newCombiner == nil {
		newCombiner = job.NewCombiner
	}
	if newCombiner == nil {
		return nil, fmt.Errorf("partition: split needs a combiner (monoid partial aggregation) and job %q has none", job.Name)
	}
	if job.KeyCompare != nil || job.GroupCompare != nil {
		return nil, fmt.Errorf("partition: split requires the default key order (job %q sets a comparator)", job.Name)
	}
	inner := *job
	out := *job
	out.Partitioner = plan
	out.NewMapper = func() mr.Mapper { return &saltMapper{inner: inner.NewMapper(), plan: plan} }
	out.NewReducer = func() mr.Reducer {
		return &saltReducer{inner: inner.NewReducer(), agg: newCombiner(), plan: plan}
	}
	return &out, nil
}

// saltMapper rewrites hot-key emissions to their salted form.
type saltMapper struct {
	inner mr.Mapper
	plan  *SplitPlan
	buf   []byte
}

func (m *saltMapper) wrap(out mr.Emitter) mr.Emitter {
	return mr.EmitterFunc(func(k, v []byte) error {
		hk, ok := m.plan.hot[string(k)]
		if !ok {
			return out.Emit(k, v)
		}
		salt := byte(fnv64(v) % uint64(len(hk.parts)))
		m.buf = append(m.buf[:0], k...)
		m.buf = append(m.buf, saltSep, salt)
		return out.Emit(m.buf, v)
	})
}

func (m *saltMapper) Setup(info *mr.TaskInfo, out mr.Emitter) error {
	return m.inner.Setup(info, m.wrap(out))
}
func (m *saltMapper) Map(key, value []byte, out mr.Emitter) error {
	return m.inner.Map(key, value, m.wrap(out))
}
func (m *saltMapper) Cleanup(out mr.Emitter) error { return m.inner.Cleanup(m.wrap(out)) }

// saltReducer partially aggregates salted hot-key groups under their
// base key and hands everything else to the wrapped reducer.
type saltReducer struct {
	inner mr.Reducer
	agg   mr.Reducer
	plan  *SplitPlan
}

func (r *saltReducer) Setup(info *mr.TaskInfo, out mr.Emitter) error {
	if err := r.agg.Setup(info, out); err != nil {
		return err
	}
	return r.inner.Setup(info, out)
}

func (r *saltReducer) Reduce(key []byte, values mr.ValueIter, out mr.Emitter) error {
	if base, _, ok := r.plan.saltOf(key); ok {
		// The partial record (base key, combined value) lands in this
		// salt's partition; Recombine folds the partials afterwards.
		return r.agg.Reduce(base, values, out)
	}
	return r.inner.Reduce(key, values, out)
}

func (r *saltReducer) Cleanup(out mr.Emitter) error {
	if err := r.agg.Cleanup(out); err != nil {
		return err
	}
	return r.inner.Cleanup(out)
}

// Recombine folds a split run's per-salt partial aggregates into final
// records: every output record whose key is in the plan's hot set is a
// partial by construction (all map-side records of a hot key were
// salted, so the key's only reduce path is the partial aggregation);
// the partials are grouped per key in partition order and the job's
// original Reducer runs once per hot key, appending its final records
// to the key's home partition. Output is then record-identical to an
// unsplit run of job (layout aside — compare sorted records).
func Recombine(job *mr.Job, plan *SplitPlan, res *mr.Result) error {
	if plan == nil || len(plan.hot) == 0 || res == nil || len(res.Output) == 0 {
		return nil
	}
	partials := make(map[string][][]byte)
	for pi, part := range res.Output {
		kept := part[:0]
		for _, rec := range part {
			if _, ok := plan.hot[string(rec.Key)]; ok {
				partials[string(rec.Key)] = append(partials[string(rec.Key)], rec.Value)
				continue
			}
			kept = append(kept, rec)
		}
		res.Output[pi] = kept
	}
	keys := make([]string, 0, len(partials))
	for k := range partials {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		home := plan.home(k)
		sink := mr.EmitterFunc(func(rk, rv []byte) error {
			res.Output[home] = append(res.Output[home], mr.Record{
				Key:   append([]byte(nil), rk...),
				Value: append([]byte(nil), rv...),
			})
			return nil
		})
		red := job.NewReducer()
		info := &mr.TaskInfo{
			JobName:       job.Name + "/recombine",
			Workspace:     job.Name + "/recombine",
			Partition:     home,
			NumPartitions: plan.reducers,
			Partitioner:   plan,
			KeyCompare:    bytesx.Bytes,
			GroupCompare:  bytesx.Bytes,
			Counters:      &mr.Counters{},
			FS:            iokit.NewMemFS(),
		}
		if err := red.Setup(info, sink); err != nil {
			return fmt.Errorf("partition: recombine %q setup: %w", k, err)
		}
		if err := red.Reduce([]byte(k), &sliceIter{vals: partials[k]}, sink); err != nil {
			return fmt.Errorf("partition: recombine %q: %w", k, err)
		}
		if err := red.Cleanup(sink); err != nil {
			return fmt.Errorf("partition: recombine %q cleanup: %w", k, err)
		}
	}
	return nil
}

// sliceIter adapts a value slice to mr.ValueIter.
type sliceIter struct {
	vals [][]byte
	i    int
}

func (it *sliceIter) Next() ([]byte, bool) {
	if it.i >= len(it.vals) {
		return nil, false
	}
	v := it.vals[it.i]
	it.i++
	return v, true
}

// fnv64 is FNV-1a, the deterministic value hash behind salt choice.
func fnv64(b []byte) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, c := range b {
		h ^= uint64(c)
		h *= prime64
	}
	return h
}
