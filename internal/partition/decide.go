package partition

import (
	"fmt"

	"repro/internal/bytesx"
	"repro/internal/mr"
)

// Strategy names a partitioning plan.
type Strategy int

const (
	// StrategyHash keeps the engine's default hash partitioner.
	StrategyHash Strategy = iota
	// StrategyRange bin-packs sampled key ranges onto reducers.
	StrategyRange
	// StrategySplit additionally fans heavy-hitter keys across
	// partitions with reduce-side partial aggregation + Recombine.
	StrategySplit
)

// String implements fmt.Stringer.
func (s Strategy) String() string {
	switch s {
	case StrategyHash:
		return "hash"
	case StrategyRange:
		return "range"
	case StrategySplit:
		return "split"
	}
	return "unknown"
}

// DecideOptions tunes Decide and Apply.
type DecideOptions struct {
	// SkewThreshold is the acceptable predicted max/mean partition
	// byte ratio; the cheapest strategy predicted under it wins.
	// Default 1.25.
	SkewThreshold float64
	// Range and Split tune the candidate plans.
	Range RangeOptions
	Split SplitOptions
	// LazyAllowed reports whether the anti-combining layer may pick
	// LazySH for this job (its strategy permits lazy and the job is
	// deterministic). Decide uses it for the §6.2 interaction flag:
	// LazySH re-executes Map on the reducer, so residual partition
	// skew amplifies into reduce-CPU skew and the decision should fall
	// back to EagerSH.
	LazyAllowed bool
}

func (o DecideOptions) normalized() DecideOptions {
	if o.SkewThreshold <= 0 {
		o.SkewThreshold = 1.25
	}
	return o
}

// Decision is Decide's output: the chosen strategy plus the per-
// strategy predictions that justify it.
type Decision struct {
	Strategy Strategy
	// Predicted maps each candidate strategy to its predicted max/mean
	// partition byte ratio from the sketch.
	Predicted map[Strategy]float64
	// LazyCaution is set when even the chosen strategy leaves
	// predicted skew above the threshold while LazySH is on the table:
	// the anti-combining decision should prefer EagerSH (Adaptive-0)
	// for this job, because LazySH would re-execute the hot
	// partition's Map calls on its one overloaded reducer (§6.2).
	LazyCaution bool
	// Reason is a one-line human-readable justification.
	Reason string
}

// Decide predicts each strategy's partition balance from the sketch
// and picks the cheapest one under the skew threshold: hash (no plan,
// no salting) when the keys already spread, range when contiguous
// ranges can balance, split when a heavy hitter must be fanned out.
func Decide(sk *Sketch, reducers int, cmp bytesx.Compare, opts DecideOptions) (Decision, error) {
	opts = opts.normalized()
	if sk == nil || sk.Len() == 0 {
		return Decision{}, fmt.Errorf("partition: decide on an empty sketch")
	}
	if reducers < 1 {
		return Decision{}, fmt.Errorf("partition: decide needs >= 1 reducers, got %d", reducers)
	}

	hashLoads := make([]int64, reducers)
	for _, kw := range sk.Keys(cmp) {
		hashLoads[(mr.HashPartitioner{}).Partition(kw.Key, reducers)] += kw.Bytes
	}
	pred := map[Strategy]float64{StrategyHash: SkewRatio(hashLoads)}

	rp, err := BuildRange(sk, reducers, cmp, opts.Range)
	if err != nil {
		return Decision{}, err
	}
	pred[StrategyRange] = SkewRatio(rp.PredictedLoads())

	sp, err := BuildSplit(sk, reducers, cmp, opts.Split)
	if err != nil {
		return Decision{}, err
	}
	pred[StrategySplit] = SkewRatio(sp.PredictedLoads())

	d := Decision{Predicted: pred}
	switch {
	case pred[StrategyHash] <= opts.SkewThreshold:
		d.Strategy = StrategyHash
		d.Reason = fmt.Sprintf("hash already balanced (predicted max/mean %.2fx <= %.2fx)",
			pred[StrategyHash], opts.SkewThreshold)
	case pred[StrategyRange] <= opts.SkewThreshold:
		d.Strategy = StrategyRange
		d.Reason = fmt.Sprintf("range packing balances %.2fx hash skew to %.2fx",
			pred[StrategyHash], pred[StrategyRange])
	default:
		d.Strategy = StrategySplit
		d.Reason = fmt.Sprintf("heavy hitter exceeds a reducer: splitting %d key(s) predicts %.2fx (range %.2fx)",
			len(sp.hot), pred[StrategySplit], pred[StrategyRange])
	}
	if pred[d.Strategy] > opts.SkewThreshold && opts.LazyAllowed {
		d.LazyCaution = true
		d.Reason += "; residual skew with LazySH available — prefer EagerSH (§6.2)"
	}
	return d, nil
}

// Apply returns a copy of job configured for the strategy, with plans
// built from the sketch. For StrategySplit the returned plan is
// non-nil and the caller must invoke Recombine(job, plan, result)
// after the run (with the original, unwrapped job). StrategyHash
// returns the job unchanged.
func Apply(job *mr.Job, strat Strategy, sk *Sketch, opts DecideOptions) (*mr.Job, *SplitPlan, error) {
	opts = opts.normalized()
	reducers := job.NumReduceTasks
	if reducers <= 0 {
		reducers = 4
	}
	switch strat {
	case StrategyHash:
		return job, nil, nil
	case StrategyRange:
		rp, err := BuildRange(sk, reducers, job.KeyCompare, opts.Range)
		if err != nil {
			return nil, nil, err
		}
		out := *job
		out.Partitioner = rp
		return &out, nil, nil
	case StrategySplit:
		plan, err := BuildSplit(sk, reducers, job.KeyCompare, opts.Split)
		if err != nil {
			return nil, nil, err
		}
		wrapped, err := SplitJob(job, plan, nil)
		if err != nil {
			return nil, nil, err
		}
		return wrapped, plan, nil
	}
	return nil, nil, fmt.Errorf("partition: unknown strategy %d", strat)
}
