// Package partition implements skew-aware partitioning for mr jobs.
// Hash partitioning collapses under the Zipfian key distributions this
// repository's generators produce: one reducer inherits the heavy
// hitters and the shuffle's makespan is its flow. The package builds a
// key-frequency sketch from a map-side sampling pass (Sample) and turns
// it into one of three strategies (Decide / Apply):
//
//   - StrategyRange: balanced range partitioning — sampled key ranges
//     are bin-packed onto reducers by byte weight, following Afrati et
//     al., "Assignment Problems of Different-Sized Inputs in MapReduce".
//   - StrategySplit: heavy-hitter splitting — a hot key is fanned out
//     across several partitions by salting its key with a deterministic
//     hash of the value; each salted group is partially aggregated by
//     the job's (monoid) combiner on the reduce side and the partials
//     are recombined by the driver (Recombine), so final output is
//     byte-identical to an unsplit run.
//   - StrategyHash: the engine default, kept when the sketch predicts
//     no skew.
//
// The same machinery feeds the SharesSkew-style share allocation of
// internal/workloads/thetajoin (region weights from a sketch over
// region keys, PackLPT for the weighted assignment).
package partition

import (
	"sort"

	"repro/internal/bytesx"
)

// KeyWeight is one sketched key with its sampled weight.
type KeyWeight struct {
	Key []byte
	// Bytes is the framed map-output bytes attributed to the key,
	// Records the record count (both scaled to estimate the full input
	// when the sample was strided).
	Bytes   int64
	Records int64
	// ErrBytes bounds the overestimate a Space-Saving counter inherited
	// from evicted entries; Bytes-ErrBytes is a lower bound on the
	// key's true weight.
	ErrBytes int64
}

// Sketch is a Space-Saving heavy-keys sketch (Metwally et al.) over
// map-output keys, weighted by framed record bytes. The counter sum is
// exactly TotalBytes (evictions preserve it), so per-bin load
// predictions from the sketch conserve total mass even past capacity.
// Not safe for concurrent use; build per-split sketches and Merge.
type Sketch struct {
	capacity     int
	items        map[string]*sketchItem
	totalBytes   int64
	totalRecords int64
}

type sketchItem struct {
	bytes, records, errBytes int64
}

// DefaultSketchCapacity bounds tracked keys when NewSketch is given no
// capacity. 4096 distinct counters cover every workload in this
// repository exactly; heavier key spaces degrade gracefully into
// Space-Saving estimates.
const DefaultSketchCapacity = 4096

// NewSketch returns an empty sketch tracking at most capacity keys
// (<= 0 means DefaultSketchCapacity).
func NewSketch(capacity int) *Sketch {
	if capacity <= 0 {
		capacity = DefaultSketchCapacity
	}
	return &Sketch{capacity: capacity, items: make(map[string]*sketchItem)}
}

// Add charges one sampled record's bytes to key.
func (s *Sketch) Add(key []byte, bytes, records int64) {
	if it, ok := s.items[string(key)]; ok {
		it.bytes += bytes
		it.records += records
		s.totalBytes += bytes
		s.totalRecords += records
		return
	}
	s.insert(string(key), bytes, records, 0)
}

func (s *Sketch) insert(key string, bytes, records, errBytes int64) {
	s.totalBytes += bytes
	s.totalRecords += records
	if it, ok := s.items[key]; ok {
		it.bytes += bytes
		it.records += records
		if errBytes > it.errBytes {
			it.errBytes = errBytes
		}
		return
	}
	if len(s.items) < s.capacity {
		s.items[key] = &sketchItem{bytes: bytes, records: records, errBytes: errBytes}
		return
	}
	// Space-Saving eviction: the new key takes over the lightest
	// counter, inheriting its weight as error bound. The min scan is
	// O(capacity) but only runs once the sketch is full, and sampling
	// passes are record-bounded. Ties break on the key so eviction
	// order is independent of map iteration order.
	var minKey string
	var min *sketchItem
	for k, it := range s.items {
		if min == nil || it.bytes < min.bytes || (it.bytes == min.bytes && k < minKey) {
			minKey, min = k, it
		}
	}
	delete(s.items, minKey)
	s.items[key] = &sketchItem{
		bytes:    min.bytes + bytes,
		records:  min.records + records,
		errBytes: maxInt64(min.bytes, errBytes),
	}
}

// Merge folds another sketch into s (deterministically: o's keys are
// folded in byte order, so parallel per-split sketches merge to the
// same result regardless of completion order).
func (s *Sketch) Merge(o *Sketch) {
	keys := make([]string, 0, len(o.items))
	for k := range o.items {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		it := o.items[k]
		s.insert(k, it.bytes, it.records, it.errBytes)
	}
}

// TotalBytes is the sampled (scaled) framed map-output byte total.
func (s *Sketch) TotalBytes() int64 { return s.totalBytes }

// TotalRecords is the sampled (scaled) map-output record total.
func (s *Sketch) TotalRecords() int64 { return s.totalRecords }

// Len is the tracked key count.
func (s *Sketch) Len() int { return len(s.items) }

// Keys returns every tracked key sorted by cmp (nil means byte order).
func (s *Sketch) Keys(cmp bytesx.Compare) []KeyWeight {
	if cmp == nil {
		cmp = bytesx.Bytes
	}
	out := make([]KeyWeight, 0, len(s.items))
	for k, it := range s.items {
		out = append(out, KeyWeight{Key: []byte(k), Bytes: it.bytes, Records: it.records, ErrBytes: it.errBytes})
	}
	sort.Slice(out, func(i, j int) bool { return cmp(out[i].Key, out[j].Key) < 0 })
	return out
}

// HeavyHitters returns the keys whose sampled bytes reach minBytes,
// heaviest first (ties in byte order).
func (s *Sketch) HeavyHitters(minBytes int64) []KeyWeight {
	var out []KeyWeight
	for k, it := range s.items {
		if it.bytes >= minBytes {
			out = append(out, KeyWeight{Key: []byte(k), Bytes: it.bytes, Records: it.records, ErrBytes: it.errBytes})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Bytes != out[j].Bytes {
			return out[i].Bytes > out[j].Bytes
		}
		return string(out[i].Key) < string(out[j].Key)
	})
	return out
}

func maxInt64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
