package partition

import (
	"fmt"

	"repro/internal/bytesx"
	"repro/internal/iokit"
	"repro/internal/mr"
)

// SampleOptions tunes the sampling pass.
type SampleOptions struct {
	// MaxRecordsPerSplit caps how many input records of each split are
	// fed through the mapper at each stride level. <= 0 maps every
	// record: an exact sketch (up to sketch capacity), which is what
	// the experiments use — their splits are already materialized in
	// memory, so a full pass costs one extra map execution.
	MaxRecordsPerSplit int
	// SketchCapacity bounds tracked keys (<= 0: DefaultSketchCapacity).
	SketchCapacity int
}

// Sample runs the job's own mapper over a deterministic sample of each
// split and sketches the emitted keys by framed byte weight — the same
// metering the map path charges to Stats.MapOutputBytes, so sketch
// weights predict real shuffle mass. Sampling is strided: when a split
// yields more than MaxRecordsPerSplit records at the current stride,
// the stride doubles (each emission is weighted by the stride in force,
// so totals estimate the full input). Splits are sampled in order with
// a fresh mapper instance each, making the sketch a pure function of
// job + splits — the determinism Apply needs for LazySH compatibility.
func Sample(job *mr.Job, splits []mr.Split, opts SampleOptions) (*Sketch, error) {
	if job == nil || job.NewMapper == nil {
		return nil, fmt.Errorf("partition: sample needs a job with a mapper")
	}
	sk := NewSketch(opts.SketchCapacity)
	cmp := job.KeyCompare
	if cmp == nil {
		cmp = bytesx.Bytes
	}
	gcmp := job.GroupCompare
	if gcmp == nil {
		gcmp = cmp
	}
	var part mr.Partitioner = mr.HashPartitioner{}
	if job.Partitioner != nil {
		part = job.Partitioner
	}
	reducers := job.NumReduceTasks
	if reducers <= 0 {
		reducers = 4
	}
	for i, split := range splits {
		mapper := job.NewMapper()
		info := &mr.TaskInfo{
			JobName:       job.Name + "/sample",
			Workspace:     job.Name + "/sample",
			TaskID:        i,
			Partition:     -1,
			NumPartitions: reducers,
			Partitioner:   part,
			KeyCompare:    cmp,
			GroupCompare:  gcmp,
			Counters:      &mr.Counters{},
			FS:            iokit.NewMemFS(),
		}
		stride := 1
		mapped := 0
		out := mr.EmitterFunc(func(k, v []byte) error {
			sk.Add(k, int64(bytesx.RecordLen(k, v))*int64(stride), int64(stride))
			return nil
		})
		if err := mapper.Setup(info, out); err != nil {
			return nil, fmt.Errorf("partition: sample split %d setup: %w", i, err)
		}
		idx := 0
		err := split.Records(func(k, v []byte) error {
			take := idx%stride == 0
			idx++
			if !take {
				return nil
			}
			if err := mapper.Map(k, v, out); err != nil {
				return err
			}
			if mapped++; opts.MaxRecordsPerSplit > 0 && mapped%opts.MaxRecordsPerSplit == 0 {
				stride *= 2
			}
			return nil
		})
		if err != nil {
			return nil, fmt.Errorf("partition: sample split %d: %w", i, err)
		}
		if err := mapper.Cleanup(out); err != nil {
			return nil, fmt.Errorf("partition: sample split %d cleanup: %w", i, err)
		}
	}
	return sk, nil
}
