package partition_test

import (
	"bytes"
	"fmt"
	"sort"
	"testing"

	"repro/internal/anticombine"
	"repro/internal/bytesx"
	"repro/internal/mr"
	"repro/internal/partition"
	"repro/internal/workloads/skewagg"
)

func TestSketchExactUnderCapacity(t *testing.T) {
	sk := partition.NewSketch(16)
	sk.Add([]byte("a"), 10, 1)
	sk.Add([]byte("b"), 20, 2)
	sk.Add([]byte("a"), 5, 1)
	if got := sk.TotalBytes(); got != 35 {
		t.Fatalf("TotalBytes = %d, want 35", got)
	}
	if got := sk.TotalRecords(); got != 4 {
		t.Fatalf("TotalRecords = %d, want 4", got)
	}
	keys := sk.Keys(nil)
	if len(keys) != 2 {
		t.Fatalf("Keys len = %d, want 2", len(keys))
	}
	if string(keys[0].Key) != "a" || keys[0].Bytes != 15 || keys[0].ErrBytes != 0 {
		t.Fatalf("key a = %+v", keys[0])
	}
	if string(keys[1].Key) != "b" || keys[1].Bytes != 20 {
		t.Fatalf("key b = %+v", keys[1])
	}
}

func TestSketchEvictionConservesTotal(t *testing.T) {
	sk := partition.NewSketch(2)
	sk.Add([]byte("a"), 100, 1)
	sk.Add([]byte("b"), 1, 1)
	sk.Add([]byte("c"), 50, 1) // evicts b, inherits its weight
	if got := sk.TotalBytes(); got != 151 {
		t.Fatalf("TotalBytes = %d, want 151 (evictions conserve the sum)", got)
	}
	if sk.Len() != 2 {
		t.Fatalf("Len = %d, want 2", sk.Len())
	}
	hh := sk.HeavyHitters(0)
	if string(hh[0].Key) != "a" || hh[0].Bytes != 100 {
		t.Fatalf("heaviest = %+v, want a/100", hh[0])
	}
	if string(hh[1].Key) != "c" || hh[1].Bytes != 51 || hh[1].ErrBytes != 1 {
		t.Fatalf("c = %+v, want bytes 51 (inherited) err 1", hh[1])
	}
}

func TestSketchMergeDeterministic(t *testing.T) {
	build := func(order []int) *partition.Sketch {
		parts := make([]*partition.Sketch, 3)
		for i := range parts {
			parts[i] = partition.NewSketch(4)
			for j := 0; j < 6; j++ {
				parts[i].Add([]byte(fmt.Sprintf("k%d-%d", i, j)), int64(10*(i+1)+j), 1)
			}
		}
		out := partition.NewSketch(4)
		for _, i := range order {
			out.Merge(parts[i])
		}
		return out
	}
	a := build([]int{0, 1, 2})
	b := build([]int{2, 0, 1})
	if a.TotalBytes() != b.TotalBytes() {
		t.Fatalf("merge order changed totals: %d vs %d", a.TotalBytes(), b.TotalBytes())
	}
	ka, kb := a.Keys(nil), b.Keys(nil)
	if len(ka) != len(kb) {
		t.Fatalf("merge order changed key count: %d vs %d", len(ka), len(kb))
	}
}

func TestPackLPT(t *testing.T) {
	weights := []int64{7, 5, 4, 3, 2, 2, 1}
	assign, loads := partition.PackLPT(weights, 3)
	if len(assign) != len(weights) || len(loads) != 3 {
		t.Fatalf("shape: assign %d loads %d", len(assign), len(loads))
	}
	var sum int64
	for _, l := range loads {
		sum += l
	}
	if sum != 24 {
		t.Fatalf("loads sum = %d, want 24", sum)
	}
	if r := partition.SkewRatio(loads); r > 4.0/3 {
		t.Fatalf("LPT ratio = %.3f, beyond the 4/3 bound", r)
	}
	// Deterministic.
	assign2, _ := partition.PackLPT(weights, 3)
	for i := range assign {
		if assign[i] != assign2[i] {
			t.Fatalf("assignment not deterministic at %d", i)
		}
	}
}

func TestRangePartitionerRouting(t *testing.T) {
	sk := partition.NewSketch(0)
	for i := 0; i < 100; i++ {
		sk.Add([]byte(fmt.Sprintf("key%03d", i)), 10, 1)
	}
	rp, err := partition.BuildRange(sk, 4, nil, partition.RangeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if r := partition.SkewRatio(rp.PredictedLoads()); r > 1.25 {
		t.Fatalf("uniform keys should pack near-perfectly, got %.3f", r)
	}
	// Every key routes in range, and unsampled keys (outside the sampled
	// space) still land somewhere valid.
	seen := make(map[int]bool)
	for i := 0; i < 100; i++ {
		p := rp.Partition([]byte(fmt.Sprintf("key%03d", i)), 4)
		if p < 0 || p >= 4 {
			t.Fatalf("partition %d out of range", p)
		}
		seen[p] = true
	}
	if len(seen) != 4 {
		t.Fatalf("only %d partitions used", len(seen))
	}
	if p := rp.Partition([]byte("zzz-unsampled"), 4); p < 0 || p >= 4 {
		t.Fatalf("unsampled key partition %d out of range", p)
	}
}

func TestDecideStrategies(t *testing.T) {
	// Uniform: many same-weight keys spread fine under hash.
	uniform := partition.NewSketch(0)
	for i := 0; i < 1000; i++ {
		uniform.Add([]byte(fmt.Sprintf("key%04d", i)), 100, 1)
	}
	d, err := partition.Decide(uniform, 4, nil, partition.DecideOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if d.Strategy != partition.StrategyHash {
		t.Fatalf("uniform keys: got %v (%s), want hash", d.Strategy, d.Reason)
	}

	// One key dominating past a whole reducer: must split.
	giant := partition.NewSketch(0)
	giant.Add([]byte("hot"), 10000, 100)
	for i := 0; i < 50; i++ {
		giant.Add([]byte(fmt.Sprintf("cold%02d", i)), 100, 1)
	}
	d, err = partition.Decide(giant, 4, nil, partition.DecideOptions{LazyAllowed: true})
	if err != nil {
		t.Fatal(err)
	}
	if d.Strategy != partition.StrategySplit {
		t.Fatalf("giant key: got %v (%s), want split", d.Strategy, d.Reason)
	}
	if d.Predicted[partition.StrategySplit] >= d.Predicted[partition.StrategyHash] {
		t.Fatalf("split predicted %.2f not better than hash %.2f",
			d.Predicted[partition.StrategySplit], d.Predicted[partition.StrategyHash])
	}

	// Few heavy-but-splittable-free keys that collide under hash but
	// pack fine as ranges: range should win.
	skewed := partition.NewSketch(0)
	for i := 0; i < 16; i++ {
		w := int64(100)
		if i < 2 {
			w = 400 // heavy but below a reducer's worth
		}
		skewed.Add([]byte(fmt.Sprintf("key%02d", i)), w, 1)
	}
	d, err = partition.Decide(skewed, 8, nil, partition.DecideOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if d.Strategy == partition.StrategyHash {
		t.Fatalf("skewed keys: hash should not be balanced (predicted %.2f): %s",
			d.Predicted[partition.StrategyHash], d.Reason)
	}
}

func TestSampleExactAndStrided(t *testing.T) {
	scfg := skewagg.Config{Records: 2000, Keys: 50, Reducers: 4, Seed: 7}
	gen := skewagg.NewGen(scfg)
	splits := skewagg.Splits(gen, 4)

	exact, err := partition.Sample(skewagg.NewJob(scfg), splits, partition.SampleOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if exact.TotalRecords() != int64(scfg.Records) {
		t.Fatalf("exact sample records = %d, want %d", exact.TotalRecords(), scfg.Records)
	}

	strided, err := partition.Sample(skewagg.NewJob(scfg), splits, partition.SampleOptions{MaxRecordsPerSplit: 64})
	if err != nil {
		t.Fatal(err)
	}
	// Strided totals estimate the full input: within 2x either way.
	ratio := float64(strided.TotalBytes()) / float64(exact.TotalBytes())
	if ratio < 0.5 || ratio > 2 {
		t.Fatalf("strided estimate off by %.2fx (strided %d exact %d)", ratio, strided.TotalBytes(), exact.TotalBytes())
	}
	// Both must agree on the heavy hitter.
	if !bytes.Equal(exact.HeavyHitters(0)[0].Key, strided.HeavyHitters(0)[0].Key) {
		t.Fatalf("strided sample misses the top key: exact %q strided %q",
			exact.HeavyHitters(0)[0].Key, strided.HeavyHitters(0)[0].Key)
	}
}

// sortedRecords flattens a result's output and sorts it globally —
// Result.SortedOutput keeps partition order, which differs by
// partitioner, so cross-strategy comparison needs a full sort.
func sortedRecords(t *testing.T, res *mr.Result) []mr.Record {
	t.Helper()
	recs := res.SortedOutput()
	sort.Slice(recs, func(i, j int) bool {
		if c := bytes.Compare(recs[i].Key, recs[j].Key); c != 0 {
			return c < 0
		}
		return bytes.Compare(recs[i].Value, recs[j].Value) < 0
	})
	return recs
}

func runStrategy(t *testing.T, scfg skewagg.Config, splits []mr.Split, strat partition.Strategy, sk *partition.Sketch, wrap func(*mr.Job) *mr.Job) *mr.Result {
	t.Helper()
	base := skewagg.NewJob(scfg)
	var job *mr.Job
	var plan *partition.SplitPlan
	var err error
	if strat == partition.StrategySplit {
		plan, err = partition.BuildSplit(sk, scfg.Reducers, nil, partition.SplitOptions{})
		if err != nil {
			t.Fatal(err)
		}
		job, err = partition.SplitJob(base, plan, skewagg.NewCombiner)
		if err != nil {
			t.Fatal(err)
		}
	} else {
		job, plan, err = partition.Apply(base, strat, sk, partition.DecideOptions{})
		if err != nil {
			t.Fatal(err)
		}
	}
	if wrap != nil {
		job = wrap(job)
	}
	res, err := mr.Run(job, splits)
	if err != nil {
		t.Fatal(err)
	}
	if err := partition.Recombine(base, plan, res); err != nil {
		t.Fatal(err)
	}
	return res
}

func TestStrategiesProduceIdenticalRecords(t *testing.T) {
	scfg := skewagg.Config{Records: 4000, Keys: 80, Reducers: 6, Seed: 11}
	gen := skewagg.NewGen(scfg)
	splits := skewagg.Splits(gen, 4)
	sk, err := partition.Sample(skewagg.NewJob(scfg), splits, partition.SampleOptions{})
	if err != nil {
		t.Fatal(err)
	}

	want := sortedRecords(t, runStrategy(t, scfg, splits, partition.StrategyHash, sk, nil))

	// Cross-check against the sequential reference.
	ref := skewagg.Reference(gen)
	if len(want) != len(ref) {
		t.Fatalf("hash run has %d keys, reference %d", len(want), len(ref))
	}
	for _, r := range want {
		if got, ok := ref[string(r.Key)]; !ok || got != string(r.Value) {
			t.Fatalf("hash run disagrees with reference at %q: %q vs %q", r.Key, r.Value, got)
		}
	}

	for _, strat := range []partition.Strategy{partition.StrategyRange, partition.StrategySplit} {
		got := sortedRecords(t, runStrategy(t, scfg, splits, strat, sk, nil))
		if len(got) != len(want) {
			t.Fatalf("%v: %d records, want %d", strat, len(got), len(want))
		}
		for i := range got {
			if !bytes.Equal(got[i].Key, want[i].Key) || !bytes.Equal(got[i].Value, want[i].Value) {
				t.Fatalf("%v record %d = %q=%q, want %q=%q",
					strat, i, got[i].Key, got[i].Value, want[i].Key, want[i].Value)
			}
		}
	}
}

func TestSplitComposesWithAntiCombining(t *testing.T) {
	scfg := skewagg.Config{Records: 3000, Keys: 60, Reducers: 4, Seed: 3}
	gen := skewagg.NewGen(scfg)
	splits := skewagg.Splits(gen, 3)
	sk, err := partition.Sample(skewagg.NewJob(scfg), splits, partition.SampleOptions{})
	if err != nil {
		t.Fatal(err)
	}
	want := sortedRecords(t, runStrategy(t, scfg, splits, partition.StrategyHash, sk, nil))
	for _, wrap := range []func(*mr.Job) *mr.Job{
		func(j *mr.Job) *mr.Job { return anticombine.Wrap(j, anticombine.Adaptive0()) },
		func(j *mr.Job) *mr.Job { return anticombine.Wrap(j, anticombine.AdaptiveInf()) },
	} {
		got := sortedRecords(t, runStrategy(t, scfg, splits, partition.StrategySplit, sk, wrap))
		if len(got) != len(want) {
			t.Fatalf("anticombine-wrapped split: %d records, want %d", len(got), len(want))
		}
		for i := range got {
			if !bytes.Equal(got[i].Key, want[i].Key) || !bytes.Equal(got[i].Value, want[i].Value) {
				t.Fatalf("anticombine-wrapped split record %d = %q=%q, want %q=%q",
					i, got[i].Key, got[i].Value, want[i].Key, want[i].Value)
			}
		}
	}
}

func TestSplitBalancesHeavyHitter(t *testing.T) {
	// Default skewagg: top key carries well over half the output.
	scfg := skewagg.Config{Records: 6000, Reducers: 8, Seed: 5}
	gen := skewagg.NewGen(scfg)
	splits := skewagg.Splits(gen, 4)
	sk, err := partition.Sample(skewagg.NewJob(scfg), splits, partition.SampleOptions{})
	if err != nil {
		t.Fatal(err)
	}

	hashRes := runStrategy(t, scfg, splits, partition.StrategyHash, sk, nil)
	hashSkew := partition.SkewRatio(hashRes.ShufflePerPartition)
	if hashSkew < 3 {
		t.Fatalf("hash skew %.2f, expected the Zipfian top key to overload one reducer (>= 3x)", hashSkew)
	}

	splitRes := runStrategy(t, scfg, splits, partition.StrategySplit, sk, nil)
	splitSkew := partition.SkewRatio(splitRes.ShufflePerPartition)
	if splitSkew > 1.25 {
		t.Fatalf("split skew %.2f, want <= 1.25", splitSkew)
	}
}

func TestSplitJobRejectsBadJobs(t *testing.T) {
	sk := partition.NewSketch(0)
	sk.Add([]byte("hot"), 1000, 10)
	sk.Add([]byte("cold"), 10, 1)
	plan, err := partition.BuildSplit(sk, 2, nil, partition.SplitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	job := skewagg.NewJob(skewagg.Config{})
	if _, err := partition.SplitJob(job, plan, nil); err == nil {
		t.Fatal("SplitJob accepted a combiner-less job")
	}
	job2 := skewagg.NewJob(skewagg.Config{})
	job2.KeyCompare = bytesx.Bytes
	if _, err := partition.SplitJob(job2, plan, skewagg.NewCombiner); err == nil {
		t.Fatal("SplitJob accepted a custom comparator")
	}
}
