package partition

import "sort"

// PackLPT bin-packs weighted items onto bins with the classic
// longest-processing-time greedy: items are placed heaviest-first onto
// the currently least-loaded bin. LPT's makespan is within 4/3 of
// optimal, and with many items lighter than the mean bin load it lands
// within a few percent — the balance guarantee behind both the range
// plan (items = key ranges) and the theta-join share allocation
// (items = regions and sub-regions). Deterministic: weight ties place
// lower item index first, load ties pick the lower bin index.
func PackLPT(weights []int64, bins int) (assign []int, loads []int64) {
	if bins < 1 {
		bins = 1
	}
	order := make([]int, len(weights))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		if weights[order[a]] != weights[order[b]] {
			return weights[order[a]] > weights[order[b]]
		}
		return order[a] < order[b]
	})
	assign = make([]int, len(weights))
	loads = make([]int64, bins)
	for _, item := range order {
		best := 0
		for b := 1; b < bins; b++ {
			if loads[b] < loads[best] {
				best = b
			}
		}
		assign[item] = best
		loads[best] += weights[item]
	}
	return assign, loads
}

// SkewRatio summarizes per-bin loads as max/mean (0 when empty or all
// zero) — the balance figure the acceptance tables report.
func SkewRatio(loads []int64) float64 {
	if len(loads) == 0 {
		return 0
	}
	var maxL, sum int64
	for _, l := range loads {
		if l > maxL {
			maxL = l
		}
		sum += l
	}
	if sum == 0 {
		return 0
	}
	mean := float64(sum) / float64(len(loads))
	return float64(maxL) / mean
}
