// Package bytesx provides byte-level primitives shared across the
// MapReduce engine and the Anti-Combining encodings: unsigned varints,
// length-prefixed key/value record framing, and raw-byte comparators in
// the style of Hadoop's RawComparator.
package bytesx

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
)

// ErrCorrupt is returned when a framed record or varint cannot be decoded.
var ErrCorrupt = errors.New("bytesx: corrupt record framing")

// Compare is a total order over raw keys. Negative means a < b, zero
// means equal, positive means a > b.
type Compare func(a, b []byte) int

// Bytes is the default lexicographic byte comparator.
func Bytes(a, b []byte) int { return bytes.Compare(a, b) }

// AppendUvarint appends v to dst in unsigned varint encoding.
func AppendUvarint(dst []byte, v uint64) []byte {
	return binary.AppendUvarint(dst, v)
}

// Uvarint decodes an unsigned varint from the front of buf, returning the
// value and the number of bytes consumed. Overlong (non-canonical)
// encodings are rejected so that decode∘encode is the identity on every
// accepted input — a property the fuzz targets pin down.
func Uvarint(buf []byte) (uint64, int, error) {
	v, n := binary.Uvarint(buf)
	if n <= 0 {
		return 0, 0, ErrCorrupt
	}
	if n != UvarintLen(v) {
		return 0, 0, fmt.Errorf("%w: non-canonical varint", ErrCorrupt)
	}
	return v, n, nil
}

// UvarintLen reports how many bytes AppendUvarint would use for v.
func UvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

// AppendBytes appends a length-prefixed byte string to dst.
func AppendBytes(dst, b []byte) []byte {
	dst = AppendUvarint(dst, uint64(len(b)))
	return append(dst, b...)
}

// GetBytes decodes a length-prefixed byte string from the front of buf.
// The returned slice aliases buf.
func GetBytes(buf []byte) (b []byte, n int, err error) {
	l, n, err := Uvarint(buf)
	if err != nil {
		return nil, 0, err
	}
	if uint64(len(buf)-n) < l {
		return nil, 0, fmt.Errorf("%w: need %d bytes, have %d", ErrCorrupt, l, len(buf)-n)
	}
	return buf[n : n+int(l)], n + int(l), nil
}

// AppendRecord appends a framed (key, value) record to dst:
// uvarint key length, key bytes, uvarint value length, value bytes.
func AppendRecord(dst, key, value []byte) []byte {
	dst = AppendBytes(dst, key)
	return AppendBytes(dst, value)
}

// RecordLen reports the framed size of a (key, value) record.
func RecordLen(key, value []byte) int {
	return UvarintLen(uint64(len(key))) + len(key) +
		UvarintLen(uint64(len(value))) + len(value)
}

// DecodeRecord decodes a framed record from the front of buf. The
// returned key and value alias buf.
func DecodeRecord(buf []byte) (key, value []byte, n int, err error) {
	key, kn, err := GetBytes(buf)
	if err != nil {
		return nil, nil, 0, err
	}
	value, vn, err := GetBytes(buf[kn:])
	if err != nil {
		return nil, nil, 0, err
	}
	return key, value, kn + vn, nil
}

// Clone returns a copy of b in freshly allocated memory. Clone(nil)
// returns an empty non-nil slice so callers can rely on len semantics.
func Clone(b []byte) []byte {
	c := make([]byte, len(b))
	copy(c, b)
	return c
}
