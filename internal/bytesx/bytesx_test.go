package bytesx

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestUvarintRoundTrip(t *testing.T) {
	cases := []uint64{0, 1, 127, 128, 300, 1 << 20, 1<<63 - 1, 1 << 63, ^uint64(0)}
	for _, v := range cases {
		buf := AppendUvarint(nil, v)
		if got := UvarintLen(v); got != len(buf) {
			t.Errorf("UvarintLen(%d) = %d, encoded %d bytes", v, got, len(buf))
		}
		got, n, err := Uvarint(buf)
		if err != nil || n != len(buf) || got != v {
			t.Errorf("Uvarint(%d): got %d n=%d err=%v", v, got, n, err)
		}
	}
}

func TestUvarintCorrupt(t *testing.T) {
	if _, _, err := Uvarint(nil); err == nil {
		t.Error("Uvarint(nil) should fail")
	}
	if _, _, err := Uvarint([]byte{0x80}); err == nil {
		t.Error("Uvarint(truncated) should fail")
	}
}

func TestRecordRoundTrip(t *testing.T) {
	cases := []struct{ k, v []byte }{
		{nil, nil},
		{[]byte("k"), nil},
		{nil, []byte("v")},
		{[]byte("key"), []byte("value")},
		{bytes.Repeat([]byte{0xff}, 1000), bytes.Repeat([]byte{0}, 5000)},
	}
	for _, c := range cases {
		buf := AppendRecord(nil, c.k, c.v)
		if got := RecordLen(c.k, c.v); got != len(buf) {
			t.Errorf("RecordLen = %d, encoded %d", got, len(buf))
		}
		k, v, n, err := DecodeRecord(buf)
		if err != nil || n != len(buf) {
			t.Fatalf("DecodeRecord: n=%d err=%v", n, err)
		}
		if !bytes.Equal(k, c.k) || !bytes.Equal(v, c.v) {
			t.Errorf("round trip mismatch: %q/%q != %q/%q", k, v, c.k, c.v)
		}
	}
}

func TestRecordCorrupt(t *testing.T) {
	buf := AppendRecord(nil, []byte("key"), []byte("value"))
	for i := 0; i < len(buf)-1; i++ {
		if _, _, _, err := DecodeRecord(buf[:i]); err == nil && i > 0 {
			// Prefixes that happen to decode as a shorter valid record are
			// acceptable only if they consume exactly i bytes.
			_, _, n, _ := DecodeRecord(buf[:i])
			if n != i {
				t.Errorf("truncated record at %d decoded inconsistently", i)
			}
		}
	}
	if _, _, _, err := DecodeRecord([]byte{5, 'a'}); err == nil {
		t.Error("short key should fail")
	}
}

func TestRecordPropertyRoundTrip(t *testing.T) {
	f := func(k, v []byte) bool {
		buf := AppendRecord(nil, k, v)
		gk, gv, n, err := DecodeRecord(buf)
		return err == nil && n == len(buf) && bytes.Equal(gk, k) && bytes.Equal(gv, v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestUvarintPropertyRoundTrip(t *testing.T) {
	f := func(v uint64) bool {
		buf := AppendUvarint(nil, v)
		got, n, err := Uvarint(buf)
		return err == nil && n == len(buf) && n == UvarintLen(v) && got == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStreamRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	type rec struct{ k, v []byte }
	var recs []rec
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for i := 0; i < 1000; i++ {
		k := make([]byte, rng.Intn(50))
		v := make([]byte, rng.Intn(200))
		rng.Read(k)
		rng.Read(v)
		recs = append(recs, rec{k, v})
		if err := w.WriteRecord(k, v); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if w.Records() != 1000 {
		t.Errorf("Records() = %d", w.Records())
	}
	if w.Bytes() != int64(buf.Len()) {
		t.Errorf("Bytes() = %d, buffer has %d", w.Bytes(), buf.Len())
	}
	r := NewReader(&buf)
	for i, want := range recs {
		k, v, err := r.ReadRecord()
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if !bytes.Equal(k, want.k) || !bytes.Equal(v, want.v) {
			t.Fatalf("record %d mismatch", i)
		}
	}
	if _, _, err := r.ReadRecord(); err != io.EOF {
		t.Errorf("expected EOF, got %v", err)
	}
}

func TestStreamTruncated(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.WriteRecord([]byte("hello"), []byte("world")); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()-2]
	r := NewReader(bytes.NewReader(trunc))
	err := func() error { _, _, err := r.ReadRecord(); return err }()
	if !errors.Is(err, ErrCorrupt) {
		t.Errorf("expected ErrCorrupt, got %v", err)
	}
	// The underlying cause must stay matchable too.
	if !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Errorf("underlying cause lost: %v", err)
	}
}

func TestClone(t *testing.T) {
	b := []byte("abc")
	c := Clone(b)
	b[0] = 'x'
	if string(c) != "abc" {
		t.Error("Clone should not alias")
	}
	if Clone(nil) == nil {
		t.Error("Clone(nil) should be non-nil")
	}
}

func TestBytesCompare(t *testing.T) {
	if Bytes([]byte("a"), []byte("b")) >= 0 {
		t.Error("a should sort before b")
	}
	if Bytes([]byte("ab"), []byte("a")) <= 0 {
		t.Error("ab should sort after a")
	}
	if Bytes(nil, nil) != 0 {
		t.Error("nil == nil")
	}
}

func TestUvarintRejectsNonCanonical(t *testing.T) {
	// 0x82 0x00 is an overlong encoding of 2; the framing layer must
	// reject it so decode∘encode stays the identity.
	if _, _, err := Uvarint([]byte{0x82, 0x00}); err == nil {
		t.Error("overlong varint accepted")
	}
	if _, _, err := Uvarint([]byte{0x80, 0x00}); err == nil {
		t.Error("overlong zero accepted")
	}
	if v, n, err := Uvarint([]byte{0x02}); err != nil || v != 2 || n != 1 {
		t.Errorf("canonical decode broken: %d %d %v", v, n, err)
	}
}
