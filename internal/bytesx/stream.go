package bytesx

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Writer writes framed (key, value) records to an underlying stream.
// It buffers internally; callers must Flush (or Close the sink) before
// reading the data back.
type Writer struct {
	w       *bufio.Writer
	scratch []byte
	records int64
	bytes   int64
}

// NewWriter returns a record writer over w.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: bufio.NewWriterSize(w, 64<<10)}
}

// WriteRecord appends one framed record.
func (w *Writer) WriteRecord(key, value []byte) error {
	w.scratch = w.scratch[:0]
	w.scratch = AppendRecord(w.scratch, key, value)
	n, err := w.w.Write(w.scratch)
	w.records++
	w.bytes += int64(n)
	return err
}

// Flush flushes buffered records to the underlying stream.
func (w *Writer) Flush() error { return w.w.Flush() }

// Reset discards any buffered state, retargets the writer at dst, and
// zeroes the record and byte counters, so writers (and their 64 KiB
// buffers) can be pooled across spill runs instead of reallocated.
// Reset(nil) parks the writer without holding a reference to its last
// destination; a parked writer must be Reset again before use.
func (w *Writer) Reset(dst io.Writer) {
	if w.w == nil {
		w.w = bufio.NewWriterSize(dst, 64<<10)
	} else {
		w.w.Reset(dst)
	}
	w.records = 0
	w.bytes = 0
}

// Records reports how many records have been written.
func (w *Writer) Records() int64 { return w.records }

// Bytes reports how many framed bytes have been written.
func (w *Writer) Bytes() int64 { return w.bytes }

// Reader reads framed (key, value) records from an underlying stream.
// The slices returned by ReadRecord are valid until the next call.
type Reader struct {
	r   *bufio.Reader
	key []byte
	val []byte
}

// NewReader returns a record reader over r.
func NewReader(r io.Reader) *Reader {
	return &Reader{r: bufio.NewReaderSize(r, 64<<10)}
}

// Reset retargets the reader at src, discarding any buffered data. The
// key/value scratch buffers are kept, so pooled readers converge on
// steady-state allocation-free record decoding. Reset(nil) parks the
// reader without pinning its last source.
func (r *Reader) Reset(src io.Reader) {
	if r.r == nil {
		r.r = bufio.NewReaderSize(src, 64<<10)
	} else {
		r.r.Reset(src)
	}
}

// ReadRecord reads the next record. It returns io.EOF cleanly at the end
// of the stream and an error wrapping both ErrCorrupt and the underlying
// cause on a truncated or failing stream.
func (r *Reader) ReadRecord() (key, value []byte, err error) {
	kl, err := binary.ReadUvarint(r.r)
	if err != nil {
		if errors.Is(err, io.EOF) {
			return nil, nil, io.EOF
		}
		return nil, nil, corrupt(err)
	}
	r.key = grow(r.key, int(kl))
	if _, err := io.ReadFull(r.r, r.key); err != nil {
		return nil, nil, corrupt(err)
	}
	vl, err := binary.ReadUvarint(r.r)
	if err != nil {
		return nil, nil, corrupt(err)
	}
	r.val = grow(r.val, int(vl))
	if _, err := io.ReadFull(r.r, r.val); err != nil {
		return nil, nil, corrupt(err)
	}
	return r.key, r.val, nil
}

// corrupt wraps a stream failure so callers can match either the framing
// error or the underlying cause (e.g. an injected I/O fault).
func corrupt(cause error) error {
	return fmt.Errorf("%w: %w", ErrCorrupt, cause)
}

func grow(b []byte, n int) []byte {
	if cap(b) < n {
		return make([]byte, n)
	}
	return b[:n]
}
