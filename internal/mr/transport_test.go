package mr

import (
	"context"
	"io"
	"net"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/iokit"
)

func TestTCPTransportFetch(t *testing.T) {
	fs := iokit.NewMemFS()
	w, _ := fs.Create("seg1")
	payload := strings.Repeat("segment data ", 1000)
	w.Write([]byte(payload))
	w.Close()

	tr, err := NewTCPTransport(fs)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	if tr.Addr() == "" {
		t.Error("Addr should be set")
	}

	rc, size, err := tr.Fetch(context.Background(), fs, "seg1")
	if err != nil {
		t.Fatal(err)
	}
	if size != int64(len(payload)) {
		t.Errorf("size = %d, want %d", size, len(payload))
	}
	got, err := io.ReadAll(rc)
	if err != nil {
		t.Fatal(err)
	}
	rc.Close()
	if string(got) != payload {
		t.Error("payload mismatch over TCP")
	}
}

func TestTCPTransportMissingFile(t *testing.T) {
	fs := iokit.NewMemFS()
	tr, err := NewTCPTransport(fs)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	if _, _, err := tr.Fetch(context.Background(), fs, "nope"); err == nil {
		t.Error("missing file should produce a fetch error")
	}
}

func TestTCPTransportConcurrentFetches(t *testing.T) {
	fs := iokit.NewMemFS()
	for _, name := range []string{"a", "b", "c", "d"} {
		w, _ := fs.Create(name)
		w.Write([]byte(strings.Repeat(name, 5000)))
		w.Close()
	}
	tr, err := NewTCPTransport(fs)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	errs := make(chan error, 16)
	for i := 0; i < 16; i++ {
		name := string(rune('a' + i%4))
		go func() {
			rc, size, err := tr.Fetch(context.Background(), fs, name)
			if err != nil {
				errs <- err
				return
			}
			data, err := io.ReadAll(rc)
			rc.Close()
			if err == nil && int64(len(data)) != size {
				err = io.ErrUnexpectedEOF
			}
			errs <- err
		}()
	}
	for i := 0; i < 16; i++ {
		if err := <-errs; err != nil {
			t.Errorf("concurrent fetch: %v", err)
		}
	}
}

// TestConnPoolReusesConnections: sequential fetches to one server reuse
// a single pooled connection — the dial count stays at 1 even though
// many fetches (and one server-reported error, which also returns the
// connection at a clean frame boundary) pass through.
func TestConnPoolReusesConnections(t *testing.T) {
	fs := iokit.NewMemFS()
	w, _ := fs.Create("seg")
	w.Write([]byte(strings.Repeat("pooled ", 2000)))
	w.Close()
	tr, err := NewTCPTransport(fs)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()

	for i := 0; i < 10; i++ {
		rc, _, err := tr.Fetch(context.Background(), fs, "seg")
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, rc)
		rc.Close()
		if _, _, err := tr.Fetch(context.Background(), fs, "missing"); err == nil {
			t.Fatal("expected error for missing segment")
		}
	}
	if d := tr.Dials(); d != 1 {
		t.Errorf("10 fetches + 10 error round-trips dialed %d times, want 1", d)
	}
}

// TestConnPoolIdleTimeout: a connection idle past the timeout is
// discarded, so the next fetch dials fresh.
func TestConnPoolIdleTimeout(t *testing.T) {
	fs := iokit.NewMemFS()
	w, _ := fs.Create("seg")
	w.Write([]byte("x"))
	w.Close()
	srv, err := NewSegmentServer(fs, "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	pool := NewConnPool()
	pool.IdleTimeout = 10 * time.Millisecond
	defer pool.Close()

	fetch := func() {
		rc, _, err := pool.Fetch(context.Background(), srv.Addr(), "seg")
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, rc)
		rc.Close()
	}
	fetch()
	fetch() // immediate reuse
	if d := pool.Dials(); d != 1 {
		t.Fatalf("back-to-back fetches dialed %d times, want 1", d)
	}
	time.Sleep(30 * time.Millisecond)
	fetch() // idle connection expired
	if d := pool.Dials(); d != 2 {
		t.Errorf("post-idle fetch dialed %d times total, want 2", d)
	}
}

// TestFetchCancelledMidTransfer: cancelling the fetch context aborts a
// transfer in flight — the reader's next Read fails with the context's
// error instead of delivering the rest of the body.
func TestFetchCancelledMidTransfer(t *testing.T) {
	fs := iokit.NewMemFS()
	w, _ := fs.Create("big")
	w.Write(make([]byte, 4<<20))
	w.Close()
	srv, err := NewSegmentServer(fs, "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	pool := NewConnPool()
	defer pool.Close()

	ctx, cancel := context.WithCancel(context.Background())
	rc, size, err := pool.Fetch(ctx, srv.Addr(), "big")
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()
	if size != 4<<20 {
		t.Fatalf("size = %d", size)
	}
	buf := make([]byte, 4096)
	if _, err := io.ReadFull(rc, buf); err != nil {
		t.Fatalf("first read: %v", err)
	}
	cancel()
	// The connection is closed asynchronously by AfterFunc; the read loop
	// must observe the cancellation promptly rather than draining 4 MiB.
	deadline := time.Now().Add(2 * time.Second)
	for {
		_, err := rc.Read(buf)
		if err != nil {
			if err != context.Canceled {
				t.Errorf("read error = %v, want context.Canceled", err)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("reads kept succeeding after cancellation")
		}
	}
}

func TestTCPTransportDoubleClose(t *testing.T) {
	tr, err := NewTCPTransport(iokit.NewMemFS())
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	if err := tr.Close(); err != nil {
		t.Errorf("second close: %v", err)
	}
}

func TestLocalTransport(t *testing.T) {
	fs := iokit.NewMemFS()
	w, _ := fs.Create("f")
	w.Write([]byte("data"))
	w.Close()
	rc, size, err := LocalTransport{}.Fetch(context.Background(), fs, "f")
	if err != nil || size != 4 {
		t.Fatalf("Fetch: size=%d err=%v", size, err)
	}
	got, _ := io.ReadAll(rc)
	rc.Close()
	if string(got) != "data" {
		t.Error("local fetch mismatch")
	}
	if err := (LocalTransport{}).Close(); err != nil {
		t.Error(err)
	}
}

func TestJobOverTCPShuffle(t *testing.T) {
	mk := func(tcp bool) *Job {
		job := wordCountJob(true)
		job.TCPShuffle = tcp
		return job
	}
	input := lines(strings.Repeat("network shuffle words ", 500))
	local, err := Run(mk(false), input)
	if err != nil {
		t.Fatal(err)
	}
	networked, err := Run(mk(true), input)
	if err != nil {
		t.Fatal(err)
	}
	got, want := outputMap(t, networked), outputMap(t, local)
	for k, v := range want {
		if got[k] != v {
			t.Errorf("key %q: tcp %q, local %q", k, got[k], v)
		}
	}
	// The fetch phase copies segments to reducer-local files, so the
	// TCP run writes strictly more to disk (Hadoop-like behavior).
	if networked.Stats.DiskWriteBytes <= local.Stats.DiskWriteBytes {
		t.Errorf("tcp disk writes %d should exceed local %d",
			networked.Stats.DiskWriteBytes, local.Stats.DiskWriteBytes)
	}
	if networked.Stats.ShuffleBytes != local.Stats.ShuffleBytes {
		t.Errorf("shuffle accounting differs: %d vs %d",
			networked.Stats.ShuffleBytes, local.Stats.ShuffleBytes)
	}
}

// TestJobShuffleDialsPooled: a multi-reduce shuffle — R concurrent
// reducers each fetching M map segments from one server — must keep the
// dial count well below the fetch count: each reducer's sequential
// fetches share one pooled connection instead of dialing per segment.
func TestJobShuffleDialsPooled(t *testing.T) {
	const nMap, nRed = 4, 8
	fs := iokit.NewMemFS()
	for m := 0; m < nMap; m++ {
		for p := 0; p < nRed; p++ {
			w, _ := fs.Create(segName(m, p))
			w.Write([]byte(strings.Repeat("x", 8<<10)))
			w.Close()
		}
	}
	tr, err := NewTCPTransport(fs)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()

	errs := make(chan error, nRed)
	for p := 0; p < nRed; p++ {
		p := p
		go func() {
			for m := 0; m < nMap; m++ {
				rc, _, err := tr.Fetch(context.Background(), fs, segName(m, p))
				if err != nil {
					errs <- err
					return
				}
				io.Copy(io.Discard, rc)
				rc.Close()
			}
			errs <- nil
		}()
	}
	for p := 0; p < nRed; p++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	fetches := int64(nMap * nRed)
	if d := tr.Dials(); d >= fetches {
		t.Errorf("%d fetches took %d dials; pooling should dial fewer times than fetches", fetches, d)
	} else {
		t.Logf("%d fetches over %d dials", fetches, tr.Dials())
	}
}

func segName(m, p int) string {
	return "job/m" + string(rune('0'+m)) + "/out.p" + string(rune('0'+p))
}

// BenchmarkShuffleFetchPooled measures pooled vs unpooled dial counts
// on a repeated multi-segment fetch: the pooled path reports dials/op
// as a metric, demonstrating the satellite's "fewer dials" claim.
func BenchmarkShuffleFetchPooled(b *testing.B) {
	fs := iokit.NewMemFS()
	var names []string
	for i := 0; i < 16; i++ {
		name := "seg" + string(rune('a'+i))
		w, _ := fs.Create(name)
		w.Write(make([]byte, 32<<10))
		w.Close()
		names = append(names, name)
	}
	run := func(b *testing.B, pooled bool) {
		srv, err := NewSegmentServer(fs, "127.0.0.1:0", nil)
		if err != nil {
			b.Fatal(err)
		}
		defer srv.Close()
		pool := NewConnPool()
		defer pool.Close()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if !pooled {
				pool.Close()
				pool = NewConnPool()
			}
			for _, n := range names {
				rc, _, err := pool.Fetch(context.Background(), srv.Addr(), n)
				if err != nil {
					b.Fatal(err)
				}
				io.Copy(io.Discard, rc)
				rc.Close()
			}
		}
		b.ReportMetric(float64(pool.Dials())/float64(b.N), "dials/op")
	}
	b.Run("pooled", func(b *testing.B) { run(b, true) })
	b.Run("fresh-dials", func(b *testing.B) { run(b, false) })
}

// droppingListener wraps a real listener and proxies connections to a
// backend server, but slams the door on the first N accepted
// connections — modelling a shuffle server whose accept queue hiccups.
type droppingListener struct {
	front   net.Listener
	backend string
	drop    int32
}

func (d *droppingListener) run() {
	for {
		conn, err := d.front.Accept()
		if err != nil {
			return
		}
		if atomic.AddInt32(&d.drop, -1) >= 0 {
			conn.Close() // dropped before any response header
			continue
		}
		go func() {
			defer conn.Close()
			back, err := net.Dial("tcp", d.backend)
			if err != nil {
				return
			}
			defer back.Close()
			// Propagate EOF in both directions so neither endpoint is left
			// blocked on a half-open relay.
			go func() {
				io.Copy(back, conn)
				back.Close()
			}()
			io.Copy(conn, back)
		}()
	}
}

// TestTCPFetchRetriesDroppedConnection: a connection dropped before the
// response header is a retryable fetch failure; the bounded retry in
// ConnPool.Fetch recovers without surfacing an error.
func TestTCPFetchRetriesDroppedConnection(t *testing.T) {
	fs := iokit.NewMemFS()
	payload := strings.Repeat("retryable segment ", 500)
	w, _ := fs.Create("seg")
	w.Write([]byte(payload))
	w.Close()

	backend, err := NewSegmentServer(fs, "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer backend.Close()

	front, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer front.Close()
	dl := &droppingListener{front: front, backend: backend.Addr(), drop: 1}
	go dl.run()

	pool := NewConnPool()
	defer pool.Close()
	rc, size, err := pool.Fetch(context.Background(), front.Addr().String(), "seg")
	if err != nil {
		t.Fatalf("fetch should survive one dropped connection: %v", err)
	}
	got, err := io.ReadAll(rc)
	rc.Close()
	if err != nil || string(got) != payload || size != int64(len(payload)) {
		t.Fatalf("payload mismatch after retry: size=%d err=%v", size, err)
	}

	// Drop more connections than the retry budget: the error must name
	// the exhausted attempts. (Drain the pooled connection first so every
	// attempt really dials the dropping front door.)
	pool.Close()
	pool = NewConnPool()
	defer pool.Close()
	atomic.StoreInt32(&dl.drop, fetchAttempts)
	if _, _, err := pool.Fetch(context.Background(), front.Addr().String(), "seg"); err == nil || !strings.Contains(err.Error(), "attempts") {
		t.Fatalf("fetch beyond retry budget: err = %v", err)
	}
}
