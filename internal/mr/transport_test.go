package mr

import (
	"io"
	"strings"
	"testing"

	"repro/internal/iokit"
)

func TestTCPTransportFetch(t *testing.T) {
	fs := iokit.NewMemFS()
	w, _ := fs.Create("seg1")
	payload := strings.Repeat("segment data ", 1000)
	w.Write([]byte(payload))
	w.Close()

	tr, err := NewTCPTransport(fs)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	if tr.Addr() == "" {
		t.Error("Addr should be set")
	}

	rc, size, err := tr.Fetch(fs, "seg1")
	if err != nil {
		t.Fatal(err)
	}
	if size != int64(len(payload)) {
		t.Errorf("size = %d, want %d", size, len(payload))
	}
	got, err := io.ReadAll(rc)
	if err != nil {
		t.Fatal(err)
	}
	rc.Close()
	if string(got) != payload {
		t.Error("payload mismatch over TCP")
	}
}

func TestTCPTransportMissingFile(t *testing.T) {
	fs := iokit.NewMemFS()
	tr, err := NewTCPTransport(fs)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	if _, _, err := tr.Fetch(fs, "nope"); err == nil {
		t.Error("missing file should produce a fetch error")
	}
}

func TestTCPTransportConcurrentFetches(t *testing.T) {
	fs := iokit.NewMemFS()
	for _, name := range []string{"a", "b", "c", "d"} {
		w, _ := fs.Create(name)
		w.Write([]byte(strings.Repeat(name, 5000)))
		w.Close()
	}
	tr, err := NewTCPTransport(fs)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	errs := make(chan error, 16)
	for i := 0; i < 16; i++ {
		name := string(rune('a' + i%4))
		go func() {
			rc, size, err := tr.Fetch(fs, name)
			if err != nil {
				errs <- err
				return
			}
			data, err := io.ReadAll(rc)
			rc.Close()
			if err == nil && int64(len(data)) != size {
				err = io.ErrUnexpectedEOF
			}
			errs <- err
		}()
	}
	for i := 0; i < 16; i++ {
		if err := <-errs; err != nil {
			t.Errorf("concurrent fetch: %v", err)
		}
	}
}

func TestTCPTransportDoubleClose(t *testing.T) {
	tr, err := NewTCPTransport(iokit.NewMemFS())
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	if err := tr.Close(); err != nil {
		t.Errorf("second close: %v", err)
	}
}

func TestLocalTransport(t *testing.T) {
	fs := iokit.NewMemFS()
	w, _ := fs.Create("f")
	w.Write([]byte("data"))
	w.Close()
	rc, size, err := LocalTransport{}.Fetch(fs, "f")
	if err != nil || size != 4 {
		t.Fatalf("Fetch: size=%d err=%v", size, err)
	}
	got, _ := io.ReadAll(rc)
	rc.Close()
	if string(got) != "data" {
		t.Error("local fetch mismatch")
	}
	if err := (LocalTransport{}).Close(); err != nil {
		t.Error(err)
	}
}

func TestJobOverTCPShuffle(t *testing.T) {
	mk := func(tcp bool) *Job {
		job := wordCountJob(true)
		job.TCPShuffle = tcp
		return job
	}
	input := lines(strings.Repeat("network shuffle words ", 500))
	local, err := Run(mk(false), input)
	if err != nil {
		t.Fatal(err)
	}
	networked, err := Run(mk(true), input)
	if err != nil {
		t.Fatal(err)
	}
	got, want := outputMap(t, networked), outputMap(t, local)
	for k, v := range want {
		if got[k] != v {
			t.Errorf("key %q: tcp %q, local %q", k, got[k], v)
		}
	}
	// The fetch phase copies segments to reducer-local files, so the
	// TCP run writes strictly more to disk (Hadoop-like behavior).
	if networked.Stats.DiskWriteBytes <= local.Stats.DiskWriteBytes {
		t.Errorf("tcp disk writes %d should exceed local %d",
			networked.Stats.DiskWriteBytes, local.Stats.DiskWriteBytes)
	}
	if networked.Stats.ShuffleBytes != local.Stats.ShuffleBytes {
		t.Errorf("shuffle accounting differs: %d vs %d",
			networked.Stats.ShuffleBytes, local.Stats.ShuffleBytes)
	}
}
