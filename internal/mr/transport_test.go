package mr

import (
	"io"
	"net"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/iokit"
)

func TestTCPTransportFetch(t *testing.T) {
	fs := iokit.NewMemFS()
	w, _ := fs.Create("seg1")
	payload := strings.Repeat("segment data ", 1000)
	w.Write([]byte(payload))
	w.Close()

	tr, err := NewTCPTransport(fs)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	if tr.Addr() == "" {
		t.Error("Addr should be set")
	}

	rc, size, err := tr.Fetch(fs, "seg1")
	if err != nil {
		t.Fatal(err)
	}
	if size != int64(len(payload)) {
		t.Errorf("size = %d, want %d", size, len(payload))
	}
	got, err := io.ReadAll(rc)
	if err != nil {
		t.Fatal(err)
	}
	rc.Close()
	if string(got) != payload {
		t.Error("payload mismatch over TCP")
	}
}

func TestTCPTransportMissingFile(t *testing.T) {
	fs := iokit.NewMemFS()
	tr, err := NewTCPTransport(fs)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	if _, _, err := tr.Fetch(fs, "nope"); err == nil {
		t.Error("missing file should produce a fetch error")
	}
}

func TestTCPTransportConcurrentFetches(t *testing.T) {
	fs := iokit.NewMemFS()
	for _, name := range []string{"a", "b", "c", "d"} {
		w, _ := fs.Create(name)
		w.Write([]byte(strings.Repeat(name, 5000)))
		w.Close()
	}
	tr, err := NewTCPTransport(fs)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	errs := make(chan error, 16)
	for i := 0; i < 16; i++ {
		name := string(rune('a' + i%4))
		go func() {
			rc, size, err := tr.Fetch(fs, name)
			if err != nil {
				errs <- err
				return
			}
			data, err := io.ReadAll(rc)
			rc.Close()
			if err == nil && int64(len(data)) != size {
				err = io.ErrUnexpectedEOF
			}
			errs <- err
		}()
	}
	for i := 0; i < 16; i++ {
		if err := <-errs; err != nil {
			t.Errorf("concurrent fetch: %v", err)
		}
	}
}

func TestTCPTransportDoubleClose(t *testing.T) {
	tr, err := NewTCPTransport(iokit.NewMemFS())
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	if err := tr.Close(); err != nil {
		t.Errorf("second close: %v", err)
	}
}

func TestLocalTransport(t *testing.T) {
	fs := iokit.NewMemFS()
	w, _ := fs.Create("f")
	w.Write([]byte("data"))
	w.Close()
	rc, size, err := LocalTransport{}.Fetch(fs, "f")
	if err != nil || size != 4 {
		t.Fatalf("Fetch: size=%d err=%v", size, err)
	}
	got, _ := io.ReadAll(rc)
	rc.Close()
	if string(got) != "data" {
		t.Error("local fetch mismatch")
	}
	if err := (LocalTransport{}).Close(); err != nil {
		t.Error(err)
	}
}

func TestJobOverTCPShuffle(t *testing.T) {
	mk := func(tcp bool) *Job {
		job := wordCountJob(true)
		job.TCPShuffle = tcp
		return job
	}
	input := lines(strings.Repeat("network shuffle words ", 500))
	local, err := Run(mk(false), input)
	if err != nil {
		t.Fatal(err)
	}
	networked, err := Run(mk(true), input)
	if err != nil {
		t.Fatal(err)
	}
	got, want := outputMap(t, networked), outputMap(t, local)
	for k, v := range want {
		if got[k] != v {
			t.Errorf("key %q: tcp %q, local %q", k, got[k], v)
		}
	}
	// The fetch phase copies segments to reducer-local files, so the
	// TCP run writes strictly more to disk (Hadoop-like behavior).
	if networked.Stats.DiskWriteBytes <= local.Stats.DiskWriteBytes {
		t.Errorf("tcp disk writes %d should exceed local %d",
			networked.Stats.DiskWriteBytes, local.Stats.DiskWriteBytes)
	}
	if networked.Stats.ShuffleBytes != local.Stats.ShuffleBytes {
		t.Errorf("shuffle accounting differs: %d vs %d",
			networked.Stats.ShuffleBytes, local.Stats.ShuffleBytes)
	}
}

// droppingListener wraps a real listener and proxies connections to a
// backend transport, but slams the door on the first N accepted
// connections — modelling a shuffle server whose accept queue hiccups.
type droppingListener struct {
	front   net.Listener
	backend string
	drop    int32
}

func (d *droppingListener) run() {
	for {
		conn, err := d.front.Accept()
		if err != nil {
			return
		}
		if atomic.AddInt32(&d.drop, -1) >= 0 {
			conn.Close() // dropped before any response header
			continue
		}
		go func() {
			defer conn.Close()
			back, err := net.Dial("tcp", d.backend)
			if err != nil {
				return
			}
			defer back.Close()
			go io.Copy(back, conn)
			io.Copy(conn, back)
		}()
	}
}

// TestTCPFetchRetriesDroppedConnection: a connection dropped before the
// response header is a retryable fetch failure; the bounded retry in
// TCPTransport.Fetch recovers without surfacing an error.
func TestTCPFetchRetriesDroppedConnection(t *testing.T) {
	fs := iokit.NewMemFS()
	payload := strings.Repeat("retryable segment ", 500)
	w, _ := fs.Create("seg")
	w.Write([]byte(payload))
	w.Close()

	backend, err := NewTCPTransport(fs)
	if err != nil {
		t.Fatal(err)
	}
	defer backend.Close()

	front, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer front.Close()
	dl := &droppingListener{front: front, backend: backend.Addr(), drop: 1}
	go dl.run()

	// A client transport that dials the dropping front door. Fetch only
	// consults ln.Addr, so wiring the listener in directly is enough.
	client := &TCPTransport{fs: fs, ln: front}
	rc, size, err := client.Fetch(fs, "seg")
	if err != nil {
		t.Fatalf("fetch should survive one dropped connection: %v", err)
	}
	got, err := io.ReadAll(rc)
	rc.Close()
	if err != nil || string(got) != payload || size != int64(len(payload)) {
		t.Fatalf("payload mismatch after retry: size=%d err=%v", size, err)
	}

	// Drop more connections than the retry budget: the error must name
	// the exhausted attempts.
	atomic.StoreInt32(&dl.drop, fetchAttempts)
	if _, _, err := client.Fetch(fs, "seg"); err == nil || !strings.Contains(err.Error(), "attempts") {
		t.Fatalf("fetch beyond retry budget: err = %v", err)
	}
}
