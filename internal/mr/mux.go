package mr

import (
	"bufio"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"

	"repro/internal/codec"
)

// Multiplexed fetches. A reduce wave asks one peer for many segments;
// fetching them request-by-request pays a full round trip per segment
// and holds one pooled connection per in-flight fetch. The mux layer
// batches concurrent requests for the same peer onto a single
// connection: the client opens a batch (a control frame listing the
// segment names and a per-stream flow-control window), the server
// interleaves the bodies as framed stream chunks, and the client demuxes
// them back into independent readers.
//
// Client → server, after the batch open:
//
//	grant  := uvarint(idx) uvarint(rawBytes)     // widen stream idx's window
//	ack    := uvarint(count) uvarint(0)          // after DONE: batch finished
//
// Server → client frames:
//
//	HDR    := 0x01 uvarint(idx) uvarint(size+1) [encoding]   // size+1: 0 = error
//	          (on error: uvarint(len) msg instead of encoding)
//	DATA   := 0x02 uvarint(idx) uvarint(len) payload
//	END    := 0x03 uvarint(idx)                  // stream complete
//	ABORT  := 0x04 uvarint(idx) uvarint(len) msg // stream died mid-body
//	DONE   := 0x05                               // all streams complete
//
// DATA payloads are raw chunks, or single self-framed Snappy blocks on
// compression-negotiated connections. Windows count raw bytes, so flow
// control is independent of compression ratio. The final ack exists so
// the server's grant reader can release the connection at a known frame
// boundary, which is what lets the client return it to the pool.
const (
	ctrlBatch = 0x01

	muxHdr   = 0x01
	muxData  = 0x02
	muxEnd   = 0x03
	muxAbort = 0x04
	muxDone  = 0x05

	// maxBatchStreams bounds the streams a server accepts in one batch;
	// maxClientBatch is the smaller batch clients actually open.
	maxBatchStreams = 256
	maxClientBatch  = 32
	// maxPeerSessions caps concurrent sessions per peer. The cap is the
	// group-commit mechanism: while a peer's slots are busy, arriving
	// fetches pool up and depart as one batch when a slot frees.
	maxPeerSessions = 2

	// muxWindow is the client's default per-stream window: how many raw
	// bytes the server may have in flight per stream before a grant.
	muxWindow = 256 << 10
	// maxMuxWindow bounds windows and grants a server will honor.
	maxMuxWindow = 16 << 20
	// maxMuxPayload bounds one DATA payload: a wireChunk raw chunk or
	// its compressed (worst case slightly expanded) block.
	maxMuxPayload = maxWireUnit
)

// handleBatch serves one multiplexed batch on the connection. It
// reports whether the connection ends at a clean frame boundary.
func (s *SegmentServer) handleBatch(conn io.Writer, br *bufio.Reader, caps byte) bool {
	count64, err := binary.ReadUvarint(br)
	if err != nil || count64 == 0 || count64 > maxBatchStreams {
		return false
	}
	window64, err := binary.ReadUvarint(br)
	// Windows below one chunk could never admit a send; reject them
	// instead of deadlocking on them.
	if err != nil || window64 < wireChunk || window64 > maxMuxWindow {
		return false
	}
	count := int(count64)
	names := make([]string, count)
	for i := range names {
		nameBuf, err := readLenPrefixed(br, maxNameFrame)
		if err != nil {
			return false
		}
		names[i] = string(nameBuf)
		putFrameBuf(nameBuf)
	}

	b := &batchSender{s: s, conn: conn, caps: caps, windows: make([]int64, count)}
	b.cond = sync.NewCond(&b.mu)
	for i := range b.windows {
		b.windows[i] = int64(window64)
	}

	// The grant reader owns br until the client's final ack; stream
	// senders never touch the read side.
	ackOK := make(chan bool, 1)
	go func() { ackOK <- b.readGrants(br, count) }()

	var wg sync.WaitGroup
	for i := range names {
		wg.Add(1)
		go func(idx int, name string) {
			defer wg.Done()
			b.serveStream(idx, name)
		}(i, names[i])
	}
	wg.Wait()
	b.write([]byte{muxDone})
	ok := <-ackOK
	b.mu.Lock()
	failed := b.failed
	b.mu.Unlock()
	return ok && !failed
}

// batchSender is the server side of one batch: a write mutex
// serializing frames from concurrent stream senders, and the per-stream
// raw-byte windows replenished by client grants.
type batchSender struct {
	s    *SegmentServer
	conn io.Writer
	caps byte

	wmu sync.Mutex

	mu      sync.Mutex
	cond    *sync.Cond
	windows []int64
	failed  bool
}

// fail poisons the batch: blocked window waits abort and the connection
// is reported unclean.
func (b *batchSender) fail() {
	b.mu.Lock()
	b.failed = true
	b.mu.Unlock()
	b.cond.Broadcast()
}

func (b *batchSender) write(p []byte) bool {
	b.wmu.Lock()
	_, err := b.conn.Write(p)
	b.wmu.Unlock()
	if err != nil {
		b.fail()
		return false
	}
	return true
}

// readGrants consumes window grants until the client acks the batch end
// (idx == count). It reports whether the ack arrived cleanly.
func (b *batchSender) readGrants(br *bufio.Reader, count int) bool {
	for {
		idx, err := binary.ReadUvarint(br)
		if err != nil {
			b.fail()
			return false
		}
		n, err := binary.ReadUvarint(br)
		if err != nil {
			b.fail()
			return false
		}
		if idx == uint64(count) {
			if n != 0 {
				b.fail()
				return false
			}
			return true
		}
		if idx > uint64(count) || n > maxMuxWindow {
			b.fail()
			return false
		}
		b.mu.Lock()
		b.windows[idx] += int64(n)
		b.mu.Unlock()
		b.cond.Broadcast()
	}
}

// acquire blocks until stream idx's window admits n raw bytes.
func (b *batchSender) acquire(idx int, n int64) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	for b.windows[idx] < n && !b.failed {
		b.cond.Wait()
	}
	if b.failed {
		return false
	}
	b.windows[idx] -= n
	return true
}

func (b *batchSender) writeStreamError(frame byte, idx int, err error) {
	msg := err.Error()
	if len(msg) > maxErrFrame {
		msg = msg[:maxErrFrame]
	}
	out := []byte{frame}
	out = binary.AppendUvarint(out, uint64(idx))
	if frame == muxHdr {
		out = binary.AppendUvarint(out, 0)
	}
	out = binary.AppendUvarint(out, uint64(len(msg)))
	out = append(out, msg...)
	b.write(out)
}

// serveStream sends one stream: HDR, windowed DATA chunks, END. Open
// and size errors become error HDRs; a read failure mid-body becomes an
// ABORT, leaving the frame stream intact for the other streams.
func (b *batchSender) serveStream(idx int, name string) {
	size, err := b.s.fs.Size(name)
	if err != nil {
		b.writeStreamError(muxHdr, idx, err)
		return
	}
	f, err := b.s.fs.Open(name)
	if err != nil {
		b.writeStreamError(muxHdr, idx, err)
		return
	}
	defer f.Close()

	compress := b.caps&capCompress != 0 && size >= wireCompressMin
	hdr := []byte{muxHdr}
	hdr = binary.AppendUvarint(hdr, uint64(idx))
	hdr = binary.AppendUvarint(hdr, uint64(size)+1)
	if b.caps&capCompress != 0 {
		if compress {
			hdr = append(hdr, encodingSnappy)
		} else {
			hdr = append(hdr, encodingRaw)
		}
	}
	if !b.write(hdr) {
		return
	}

	chunk := getCopyBuf(nil)
	defer putCopyBuf(nil, chunk)
	var out, block []byte
	var raw, wire int64
	defer func() { b.s.count(raw, wire) }()
	for raw < size {
		n := size - raw
		if n > int64(len(chunk)) {
			n = int64(len(chunk))
		}
		if _, err := io.ReadFull(f, chunk[:n]); err != nil {
			b.writeStreamError(muxAbort, idx, err)
			return
		}
		if !b.acquire(idx, n) {
			return
		}
		payload := chunk[:n]
		if compress {
			block = codec.AppendSnappyBlock(block[:0], chunk[:n])
			payload = block
		}
		out = out[:0]
		out = append(out, muxData)
		out = binary.AppendUvarint(out, uint64(idx))
		out = binary.AppendUvarint(out, uint64(len(payload)))
		out = append(out, payload...)
		if !b.write(out) {
			return
		}
		raw += n
		wire += int64(len(payload))
	}
	end := []byte{muxEnd}
	end = binary.AppendUvarint(end, uint64(idx))
	b.write(end)
}

// MuxFetcher coalesces concurrent fetches to the same peer onto
// multiplexed batches. Fetch has the same contract as ConnPool.Fetch
// and is a drop-in for it: a request that cannot ride a batch — it
// arrived alone, the peer has not negotiated mux, or the batch died
// before this stream's header — falls back transparently to the
// sequential pooled path, keeping its retry semantics. Failures after a
// stream header surface on the stream reader, exactly like a sequential
// fetch failing mid-body.
type MuxFetcher struct {
	pool     *ConnPool
	maxBatch int
	window   int64 // per-stream raw-byte window (tests shrink it)

	mu    sync.Mutex
	peers map[string]*muxPeer

	sessions atomic.Int64
	muxed    atomic.Int64
}

type muxPeer struct {
	pending  []*muxReq
	active   bool
	inflight int
	idle     chan struct{} // signalled when a session slot frees
}

type muxReq struct {
	ctx  context.Context
	name string
	res  chan muxRes
}

type muxRes struct {
	rc       io.ReadCloser
	size     int64
	err      error
	fallback bool
}

// NewMuxFetcher returns a fetcher multiplexing over pool's connections.
func NewMuxFetcher(pool *ConnPool) *MuxFetcher {
	return &MuxFetcher{pool: pool, maxBatch: maxClientBatch, window: muxWindow, peers: make(map[string]*muxPeer)}
}

// Sessions reports how many multiplexed batch sessions have run.
func (m *MuxFetcher) Sessions() int64 { return m.sessions.Load() }

// Muxed reports how many fetches rode a multiplexed batch rather than
// the sequential pooled path.
func (m *MuxFetcher) Muxed() int64 { return m.muxed.Load() }

// Fetch requests one segment, riding a shared batch when other fetches
// to the same peer are in flight (group commit: whatever is pending
// when a dispatcher runs forms one batch — no timer, no added latency).
func (m *MuxFetcher) Fetch(ctx context.Context, addr, name string) (io.ReadCloser, int64, error) {
	if err := ctx.Err(); err != nil {
		return nil, 0, err
	}
	req := &muxReq{ctx: ctx, name: name, res: make(chan muxRes, 1)}
	m.mu.Lock()
	pm := m.peers[addr]
	if pm == nil {
		pm = &muxPeer{idle: make(chan struct{})}
		m.peers[addr] = pm
	}
	pm.pending = append(pm.pending, req)
	if !pm.active {
		pm.active = true
		go m.dispatch(addr, pm)
	}
	m.mu.Unlock()
	select {
	case r := <-req.res:
		if r.fallback {
			return m.pool.Fetch(ctx, addr, name)
		}
		return r.rc, r.size, r.err
	case <-ctx.Done():
		// The dispatcher still owes this request exactly one result; if
		// a body reader arrives after we bail, discard it so its session
		// is not left waiting on window grants.
		go func() {
			if r := <-req.res; r.rc != nil {
				r.rc.Close()
			}
		}()
		return nil, 0, ctx.Err()
	}
}

// dispatch drains a peer's pending requests into batch sessions. It
// exits when the queue is empty; the next Fetch restarts it.
//
// Group commit without a timer: at most maxPeerSessions sessions run
// per peer, so the first request (or two) to an idle peer departs
// immediately, and requests arriving while the peer is busy accumulate
// into one batch that departs the moment a slot frees. Batching emerges
// exactly when it pays — under concurrent load — and a lone fetch never
// waits on a clock.
func (m *MuxFetcher) dispatch(addr string, pm *muxPeer) {
	m.mu.Lock()
	for {
		if len(pm.pending) == 0 {
			pm.active = false
			m.mu.Unlock()
			return
		}
		if pm.inflight >= maxPeerSessions {
			idle := pm.idle
			m.mu.Unlock()
			<-idle
			m.mu.Lock()
			continue
		}
		n := len(pm.pending)
		if n > m.maxBatch {
			n = m.maxBatch
		}
		group := pm.pending[:n:n]
		pm.pending = pm.pending[n:]
		pm.inflight++
		m.mu.Unlock()
		go func() {
			m.runBatch(addr, group)
			m.mu.Lock()
			pm.inflight--
			close(pm.idle)
			pm.idle = make(chan struct{})
			m.mu.Unlock()
		}()
		m.mu.Lock()
	}
}

func (m *MuxFetcher) runBatch(addr string, group []*muxReq) {
	live := make([]*muxReq, 0, len(group))
	for _, r := range group {
		if err := r.ctx.Err(); err != nil {
			r.res <- muxRes{err: err}
		} else {
			live = append(live, r)
		}
	}
	switch len(live) {
	case 0:
	case 1:
		// A batch of one gains nothing from mux framing; the sequential
		// pooled path serves it with one fewer frame layer.
		r := live[0]
		rc, size, err := m.pool.Fetch(r.ctx, addr, r.name)
		r.res <- muxRes{rc: rc, size: size, err: err}
	default:
		m.runMux(addr, live)
	}
}

// runMux opens one batch session and demuxes its frames. Every request
// in group receives exactly one result.
func (m *MuxFetcher) runMux(addr string, group []*muxReq) {
	ctx := group[0].ctx
	delivered := make([]bool, len(group))
	bail := func() {
		for i, r := range group {
			if !delivered[i] {
				delivered[i] = true
				r.res <- muxRes{fallback: true}
			}
		}
	}
	wc, err := m.pool.get(ctx, addr, false)
	if err != nil {
		bail()
		return
	}
	if wc.handshaken && wc.caps&capMux == 0 {
		// This connection negotiated mux away; park it and serve the
		// group sequentially.
		m.pool.put(addr, wc)
		bail()
		return
	}
	stop := context.AfterFunc(ctx, func() { wc.conn.Close() })
	defer stop()

	want := m.pool.clientCaps()
	var req []byte
	if !wc.handshaken {
		req = append(req, wireHello, wireMagic, want)
	}
	req = append(req, wireHello, ctrlBatch)
	req = binary.AppendUvarint(req, uint64(len(group)))
	req = binary.AppendUvarint(req, uint64(m.window))
	for _, r := range group {
		req = binary.AppendUvarint(req, uint64(len(r.name)))
		req = append(req, r.name...)
	}
	if _, err := wc.conn.Write(req); err != nil {
		wc.conn.Close()
		bail()
		return
	}
	if !wc.handshaken {
		if err := wc.readAck(want); err != nil {
			wc.conn.Close()
			bail()
			return
		}
		if wc.caps&capMux == 0 {
			// The server refused mux after the batch frame was already
			// pipelined; it drops the connection, we serve sequentially.
			wc.conn.Close()
			bail()
			return
		}
	}
	m.sessions.Add(1)
	m.muxed.Add(int64(len(group)))

	sess := &muxSession{wc: wc, window: m.window}
	streams := make([]*muxStream, len(group))
	ended := make([]bool, len(group))
	endedCount := 0
	kill := func(err error) {
		sess.finish()
		wc.conn.Close()
		for _, st := range streams {
			if st != nil {
				st.fail(err)
			}
		}
		bail()
	}
	readIdx := func() (int, bool) {
		idx64, err := binary.ReadUvarint(wc.br)
		if err != nil || idx64 >= uint64(len(group)) {
			return 0, false
		}
		return int(idx64), true
	}

	for {
		t, err := wc.br.ReadByte()
		if err != nil {
			if cerr := ctx.Err(); cerr != nil {
				err = cerr
			}
			kill(fmt.Errorf("mr: mux session to %s: %w", addr, unexpectedEOF(err)))
			return
		}
		switch t {
		case muxHdr:
			idx, ok := readIdx()
			if !ok || streams[idx] != nil || ended[idx] || delivered[idx] {
				kill(fmt.Errorf("mr: mux session to %s: bad HDR", addr))
				return
			}
			sizePlus, err := binary.ReadUvarint(wc.br)
			if err != nil {
				kill(unexpectedEOF(err))
				return
			}
			if sizePlus == 0 {
				msg, err := readLenPrefixed(wc.br, maxErrFrame)
				if err != nil {
					kill(unexpectedEOF(err))
					return
				}
				// Server-reported: authoritative, no retry.
				delivered[idx] = true
				ended[idx] = true
				endedCount++
				group[idx].res <- muxRes{err: fmt.Errorf("mr: shuffle fetch %s from %s: %s", group[idx].name, addr, msg)}
				putFrameBuf(msg)
				continue
			}
			size := int64(sizePlus - 1)
			enc := byte(encodingRaw)
			if wc.caps&capCompress != 0 {
				b, err := wc.br.ReadByte()
				if err != nil {
					kill(unexpectedEOF(err))
					return
				}
				if b != encodingRaw && b != encodingSnappy {
					kill(fmt.Errorf("mr: mux session to %s: unknown encoding 0x%02x", addr, b))
					return
				}
				enc = b
			}
			st := newMuxStream(sess, idx, size, enc, group[idx].ctx)
			streams[idx] = st
			delivered[idx] = true
			if cerr := group[idx].ctx.Err(); cerr != nil {
				// The requester is already gone; deliver its error and
				// drain the stream via discard so the batch stays healthy.
				group[idx].res <- muxRes{err: cerr}
				st.Close()
			} else {
				st.stop = context.AfterFunc(group[idx].ctx, func() { st.Close() })
				group[idx].res <- muxRes{rc: st, size: size}
			}
		case muxData:
			idx, ok := readIdx()
			if !ok || streams[idx] == nil || ended[idx] {
				kill(fmt.Errorf("mr: mux session to %s: bad DATA", addr))
				return
			}
			st := streams[idx]
			n, err := binary.ReadUvarint(wc.br)
			if err != nil || n == 0 || n > maxMuxPayload {
				kill(fmt.Errorf("mr: mux session to %s: bad DATA length", addr))
				return
			}
			payload := getFrameBuf(int(n))
			if _, err := io.ReadFull(wc.br, payload); err != nil {
				putFrameBuf(payload)
				kill(unexpectedEOF(err))
				return
			}
			var raw []byte
			if st.enc == encodingSnappy {
				raw, err = codec.DecompressSnappyBlock(payload)
				putFrameBuf(payload)
				if err != nil {
					kill(fmt.Errorf("mr: mux session to %s: %w", addr, err))
					return
				}
			} else {
				// The frame buffer is pooled scratch; the stream queue
				// needs its own copy.
				raw = append([]byte(nil), payload...)
				putFrameBuf(payload)
			}
			if err := st.push(raw, 1+uvarintLen(uint64(idx))+uvarintLen(n)+int64(n)); err != nil {
				kill(err)
				return
			}
		case muxEnd:
			idx, ok := readIdx()
			if !ok || streams[idx] == nil || ended[idx] {
				kill(fmt.Errorf("mr: mux session to %s: bad END", addr))
				return
			}
			ended[idx] = true
			endedCount++
			if err := streams[idx].finish(); err != nil {
				kill(err)
				return
			}
		case muxAbort:
			idx, ok := readIdx()
			if !ok || streams[idx] == nil || ended[idx] {
				kill(fmt.Errorf("mr: mux session to %s: bad ABORT", addr))
				return
			}
			msg, err := readLenPrefixed(wc.br, maxErrFrame)
			if err != nil {
				kill(unexpectedEOF(err))
				return
			}
			ended[idx] = true
			endedCount++
			streams[idx].fail(fmt.Errorf("mr: mux fetch %s from %s aborted mid-body: %s: %w",
				group[idx].name, addr, msg, io.ErrUnexpectedEOF))
			putFrameBuf(msg)
		case muxDone:
			if endedCount != len(group) {
				kill(fmt.Errorf("mr: mux session to %s: DONE with %d of %d streams open",
					addr, len(group)-endedCount, len(group)))
				return
			}
			// Ack under the write mutex, then seal the session: no grant
			// may trail the ack, because the server stops reading after
			// it and the connection goes back to the pool.
			sess.wmu.Lock()
			ack := binary.AppendUvarint(nil, uint64(len(group)))
			ack = binary.AppendUvarint(ack, 0)
			_, werr := wc.conn.Write(ack)
			sess.finished = true
			sess.wmu.Unlock()
			stop()
			if werr == nil {
				m.pool.put(addr, wc)
			} else {
				wc.conn.Close()
			}
			return
		default:
			kill(fmt.Errorf("mr: mux session to %s: unknown frame 0x%02x", addr, t))
			return
		}
	}
}

// muxSession is the client side of one batch: the shared connection and
// the write gate that stops grants once the session is sealed.
type muxSession struct {
	wc     *wireConn
	window int64

	wmu      sync.Mutex
	finished bool
}

func (s *muxSession) write(p []byte) {
	s.wmu.Lock()
	if !s.finished {
		s.wc.conn.Write(p) // a write error surfaces on the demux read side
	}
	s.wmu.Unlock()
}

func (s *muxSession) grant(idx int, n int64) {
	buf := binary.AppendUvarint(nil, uint64(idx))
	buf = binary.AppendUvarint(buf, uint64(n))
	s.write(buf)
}

func (s *muxSession) finish() {
	s.wmu.Lock()
	s.finished = true
	s.wmu.Unlock()
}

// muxStream is one demuxed body: chunks queued by the session's demux
// loop, drained by the caller's Read. Consumption drives window grants;
// a stream abandoned early flips to discard mode — pre-granting the
// server its whole remainder — so one dead requester cannot stall the
// batch's other streams.
type muxStream struct {
	sess *muxSession
	idx  int
	size int64
	enc  byte
	ctx  context.Context
	stop func() bool

	mu        sync.Mutex
	cond      *sync.Cond
	chunks    [][]byte
	received  int64
	delivered int64
	granted   int64 // raw bytes granted beyond the initial window
	wire      int64
	done      bool
	discard   bool
	closed    bool
	err       error
}

func newMuxStream(sess *muxSession, idx int, size int64, enc byte, ctx context.Context) *muxStream {
	st := &muxStream{sess: sess, idx: idx, size: size, enc: enc, ctx: ctx}
	st.cond = sync.NewCond(&st.mu)
	return st
}

// push queues one decoded chunk (demux side).
func (st *muxStream) push(raw []byte, wire int64) error {
	st.mu.Lock()
	if st.received+int64(len(raw)) > st.size {
		st.mu.Unlock()
		return fmt.Errorf("mr: mux stream %d overran its %d-byte body", st.idx, st.size)
	}
	st.received += int64(len(raw))
	st.wire += wire
	if !st.discard {
		st.chunks = append(st.chunks, raw)
	}
	st.mu.Unlock()
	st.cond.Signal()
	return nil
}

// finish marks the stream complete (END frame).
func (st *muxStream) finish() error {
	st.mu.Lock()
	if st.received != st.size {
		st.mu.Unlock()
		return fmt.Errorf("mr: mux stream %d ended at %d of %d bytes: %w",
			st.idx, st.received, st.size, io.ErrUnexpectedEOF)
	}
	st.done = true
	st.mu.Unlock()
	st.cond.Broadcast()
	return nil
}

// fail poisons an incomplete stream; a stream whose body fully arrived
// keeps it — its remaining chunks drain from memory without the
// connection.
func (st *muxStream) fail(err error) {
	st.mu.Lock()
	if !st.done && st.err == nil {
		st.err = err
	}
	st.mu.Unlock()
	st.cond.Broadcast()
}

func (st *muxStream) Read(p []byte) (int, error) {
	st.mu.Lock()
	for {
		if st.closed {
			st.mu.Unlock()
			if cerr := st.ctx.Err(); cerr != nil {
				return 0, cerr
			}
			return 0, errors.New("mr: mux stream read after close")
		}
		if len(st.chunks) > 0 {
			break
		}
		if st.err != nil {
			err := st.err
			st.mu.Unlock()
			return 0, err
		}
		if st.done {
			st.mu.Unlock()
			return 0, io.EOF
		}
		st.cond.Wait()
	}
	c := st.chunks[0]
	n := copy(p, c)
	if n < len(c) {
		st.chunks[0] = c[n:]
	} else {
		st.chunks = st.chunks[1:]
	}
	st.delivered += int64(n)
	// Replenish the server's window in half-window steps once enough has
	// been consumed; a finished stream needs no more grants.
	var g int64
	if !st.done && st.delivered-st.granted >= st.sess.window/2 {
		g = st.delivered - st.granted
		st.granted = st.delivered
	}
	st.mu.Unlock()
	if g > 0 {
		st.sess.grant(st.idx, g)
	}
	return n, nil
}

// WireBytes reports the framed socket bytes this stream consumed.
func (st *muxStream) WireBytes() int64 {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.wire
}

func (st *muxStream) Close() error {
	if st.stop != nil {
		st.stop()
	}
	st.mu.Lock()
	if st.closed {
		st.mu.Unlock()
		return nil
	}
	st.closed = true
	var g int64
	if !(st.err == nil && st.done && st.delivered == st.size) {
		// Abandoned mid-body: discard the rest and pre-grant the whole
		// remainder so the server can run the stream out.
		st.discard = true
		st.chunks = nil
		if !st.done && st.err == nil && st.size > st.granted {
			g = st.size - st.granted
			st.granted = st.size
		}
	}
	st.mu.Unlock()
	st.cond.Broadcast()
	if g > 0 {
		st.sess.grant(st.idx, g)
	}
	return nil
}
