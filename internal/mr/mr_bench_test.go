package mr

import (
	"fmt"
	"io"
	"strings"
	"testing"
	"time"
)

// BenchmarkWordCountPipeline drives the full engine — collect, sort,
// spill, shuffle, merge, reduce — on a medium word-count job.
func BenchmarkWordCountPipeline(b *testing.B) {
	var sb strings.Builder
	for i := 0; i < 200; i++ {
		fmt.Fprintf(&sb, "word%03d ", i%50)
	}
	line := sb.String()
	var splits []Split
	for i := 0; i < 8; i++ {
		recs := make([]Record, 100)
		for j := range recs {
			recs[j] = Record{Value: []byte(line)}
		}
		splits = append(splits, &MemSplit{Recs: recs})
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		job := wordCountJob(true)
		job.DiscardOutput = true
		if _, err := Run(job, splits); err != nil {
			b.Fatal(err)
		}
	}
}

// stallMapper emits word counts like the plain word-count mapper but
// stalls briefly on each input record, modelling a map task whose input
// arrives over a network or a loaded disk. Latency-bound map tasks are
// where scheduling policy shows: the barrier engine leaves the shuffle
// idle during the stalls, while the pipelined scheduler fetches
// finished maps' segments in that window.
type stallMapper struct {
	MapperBase
	stall time.Duration
}

func (m *stallMapper) Map(key, value []byte, out Emitter) error {
	time.Sleep(m.stall)
	for _, w := range strings.Fields(string(value)) {
		if err := out.Emit([]byte(w), []byte("1")); err != nil {
			return err
		}
	}
	return nil
}

// BenchmarkScheduler compares the barrier and pipelined engines on the
// same word-count job: 8 splits (one 4x straggler), 4 workers, TCP
// shuffle, latency-bound maps. Pipelined wall time should be at or
// below barrier — shuffle fetches of completed maps run during the
// straggler's tail instead of after it.
func BenchmarkScheduler(b *testing.B) {
	var sb strings.Builder
	for i := 0; i < 400; i++ {
		fmt.Fprintf(&sb, "word%03d ", i%50)
	}
	line := sb.String()
	var splits []Split
	for i := 0; i < 8; i++ {
		n := 4
		if i == 0 {
			n = 16 // the straggler
		}
		recs := make([]Record, n)
		for j := range recs {
			recs[j] = Record{Value: []byte(line)}
		}
		splits = append(splits, &MemSplit{Recs: recs})
	}
	for _, scheduler := range []string{SchedulerBarrier, SchedulerPipelined} {
		b.Run(scheduler, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				job := wordCountJob(true)
				job.NewMapper = func() Mapper { return &stallMapper{stall: time.Millisecond} }
				job.Scheduler = scheduler
				job.Parallelism = 4
				job.TCPShuffle = true
				job.DiscardOutput = true
				if _, err := Run(job, splits); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkMapBufferSpill isolates the map-side sort-and-spill path.
func BenchmarkMapBufferSpill(b *testing.B) {
	job := wordCountJob(false)
	job.SortBufferBytes = 64 << 10
	j, err := job.normalized()
	if err != nil {
		b.Fatal(err)
	}
	keys := make([][]byte, 1000)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("key%06d", (i*7919)%1000))
	}
	value := []byte("v")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		counters := &Counters{}
		buf := newMapBuffer(j, j.FS, counters, 0, 0)
		for rep := 0; rep < 20; rep++ {
			for _, k := range keys {
				if err := buf.add(int(k[len(k)-1]&3), k, value); err != nil {
					b.Fatal(err)
				}
			}
		}
		if _, err := buf.finish(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMergeIter isolates the k-way merge.
func BenchmarkMergeIter(b *testing.B) {
	mkStream := func(seed int) recordStream {
		i := 0
		return streamFunc(func() ([]byte, []byte, error) {
			if i >= 1000 {
				return nil, nil, io.EOF
			}
			k := []byte(fmt.Sprintf("k%06d", i*16+seed))
			i++
			return k, k, nil
		})
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		streams := make([]recordStream, 16)
		for s := range streams {
			streams[s] = mkStream(s)
		}
		m, err := newMergeIter(streams, func(a, b []byte) int {
			return stringsCompare(string(a), string(b))
		})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := drainStreams(mergeAsStream{m}); err != nil {
			b.Fatal(err)
		}
	}
}

type mergeAsStream struct{ m *mergeIter }

func (s mergeAsStream) next() ([]byte, []byte, error) { return s.m.next() }

func stringsCompare(a, b string) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}
