package mr

import (
	"fmt"
	"io"
	"strings"
	"testing"
	"time"
)

// BenchmarkWordCountPipeline drives the full engine — collect, sort,
// spill, shuffle, merge, reduce — on a medium word-count job.
func BenchmarkWordCountPipeline(b *testing.B) {
	var sb strings.Builder
	for i := 0; i < 200; i++ {
		fmt.Fprintf(&sb, "word%03d ", i%50)
	}
	line := sb.String()
	var splits []Split
	for i := 0; i < 8; i++ {
		recs := make([]Record, 100)
		for j := range recs {
			recs[j] = Record{Value: []byte(line)}
		}
		splits = append(splits, &MemSplit{Recs: recs})
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		job := wordCountJob(true)
		job.DiscardOutput = true
		if _, err := Run(job, splits); err != nil {
			b.Fatal(err)
		}
	}
}

// stallMapper emits word counts like the plain word-count mapper but
// stalls briefly on each input record, modelling a map task whose input
// arrives over a network or a loaded disk. Latency-bound map tasks are
// where scheduling policy shows: the barrier engine leaves the shuffle
// idle during the stalls, while the pipelined scheduler fetches
// finished maps' segments in that window.
type stallMapper struct {
	MapperBase
	stall time.Duration
}

func (m *stallMapper) Map(key, value []byte, out Emitter) error {
	time.Sleep(m.stall)
	for _, w := range strings.Fields(string(value)) {
		if err := out.Emit([]byte(w), []byte("1")); err != nil {
			return err
		}
	}
	return nil
}

// BenchmarkScheduler compares the barrier and pipelined engines on the
// same word-count job: 8 splits (one 4x straggler), 4 workers, TCP
// shuffle, latency-bound maps. Pipelined wall time should be at or
// below barrier — shuffle fetches of completed maps run during the
// straggler's tail instead of after it.
func BenchmarkScheduler(b *testing.B) {
	var sb strings.Builder
	for i := 0; i < 400; i++ {
		fmt.Fprintf(&sb, "word%03d ", i%50)
	}
	line := sb.String()
	var splits []Split
	for i := 0; i < 8; i++ {
		n := 4
		if i == 0 {
			n = 16 // the straggler
		}
		recs := make([]Record, n)
		for j := range recs {
			recs[j] = Record{Value: []byte(line)}
		}
		splits = append(splits, &MemSplit{Recs: recs})
	}
	for _, scheduler := range []string{SchedulerBarrier, SchedulerPipelined} {
		b.Run(scheduler, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				job := wordCountJob(true)
				job.NewMapper = func() Mapper { return &stallMapper{stall: time.Millisecond} }
				job.Scheduler = scheduler
				job.Parallelism = 4
				job.TCPShuffle = true
				job.DiscardOutput = true
				if _, err := Run(job, splits); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkMapBufferSpill isolates the map-side sort-and-spill path.
// The baseline variant pins the historical configuration (sequential
// spills, no pooling, comparator-driven sort); the default variant runs
// the bucketed sort, pooled buffers, and parallel run writes. Both
// produce byte-identical output (TestMapPathEquivalence), so the delta
// is pure hot-loop cost.
func BenchmarkMapBufferSpill(b *testing.B) {
	for _, cfg := range []struct {
		name       string
		sequential bool
	}{{"baseline", true}, {"default", false}} {
		b.Run(cfg.name, func(b *testing.B) {
			job := wordCountJob(false)
			job.NumReduceTasks = 4 // matches the benchmark's &3 partitioner
			job.SortBufferBytes = 64 << 10
			if cfg.sequential {
				job.SpillParallelism = 1
				job.DisablePooling = true
			}
			j, err := job.normalized()
			if err != nil {
				b.Fatal(err)
			}
			keys := make([][]byte, 1000)
			for i := range keys {
				keys[i] = []byte(fmt.Sprintf("key%06d", (i*7919)%1000))
			}
			value := []byte("v")
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				counters := &Counters{}
				buf := newMapBuffer(j, j.FS, counters, 0, 0)
				for rep := 0; rep < 20; rep++ {
					for _, k := range keys {
						if err := buf.add(int(k[len(k)-1]&3), k, value); err != nil {
							b.Fatal(err)
						}
					}
				}
				if _, err := buf.finish(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkMapPathE2E drives full word-count runs with forced spills,
// comparing the historical sequential/unpooled map path against the
// overhauled default end to end (collect, bucketed sort, spill, merge,
// shuffle, reduce).
func BenchmarkMapPathE2E(b *testing.B) {
	var sb strings.Builder
	for i := 0; i < 300; i++ {
		fmt.Fprintf(&sb, "word%03d ", i%80)
	}
	line := sb.String()
	var splits []Split
	for i := 0; i < 4; i++ {
		recs := make([]Record, 60)
		for j := range recs {
			recs[j] = Record{Value: []byte(line)}
		}
		splits = append(splits, &MemSplit{Recs: recs})
	}
	for _, cfg := range []struct {
		name       string
		sequential bool
	}{{"baseline", true}, {"default", false}} {
		b.Run(cfg.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				job := wordCountJob(true)
				job.SortBufferBytes = 32 << 10
				job.DiscardOutput = true
				if cfg.sequential {
					job.SpillParallelism = 1
					job.DisablePooling = true
				}
				if _, err := Run(job, splits); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkMergeIter isolates the k-way merge.
func BenchmarkMergeIter(b *testing.B) {
	mkStream := func(seed int) recordStream {
		i := 0
		return streamFunc(func() ([]byte, []byte, error) {
			if i >= 1000 {
				return nil, nil, io.EOF
			}
			k := []byte(fmt.Sprintf("k%06d", i*16+seed))
			i++
			return k, k, nil
		})
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		streams := make([]recordStream, 16)
		for s := range streams {
			streams[s] = mkStream(s)
		}
		m, err := newMergeIter(streams, func(a, b []byte) int {
			return stringsCompare(string(a), string(b))
		})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := drainStreams(mergeAsStream{m}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMergeIterSegments measures the k-way merge over real segment
// files — the reader side of the pooled record readers — for the
// unpooled baseline and the pooled default.
func BenchmarkMergeIterSegments(b *testing.B) {
	for _, cfg := range []struct {
		name    string
		noPools bool
	}{{"baseline", true}, {"default", false}} {
		b.Run(cfg.name, func(b *testing.B) {
			job := wordCountJob(false)
			job.DisablePooling = cfg.noPools
			j, err := job.normalized()
			if err != nil {
				b.Fatal(err)
			}
			segs := make([]segment, 16)
			for i := range segs {
				seg, err := writeBenchSegment(j, fmt.Sprintf("seg%02d", i), i, 1000)
				if err != nil {
					b.Fatal(err)
				}
				segs[i] = seg
			}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				streams := make([]recordStream, len(segs))
				for s, seg := range segs {
					st, err := openSegment(j, j.FS, seg)
					if err != nil {
						b.Fatal(err)
					}
					streams[s] = st
				}
				m, err := newMergeIter(streams, j.KeyCompare)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := drainStreams(mergeAsStream{m}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// writeBenchSegment writes n framed records with stream-unique keys.
func writeBenchSegment(job *Job, name string, id, n int) (segment, error) {
	f, err := job.FS.Create(name)
	if err != nil {
		return segment{}, err
	}
	w := getRecordWriter(job, f)
	for i := 0; i < n; i++ {
		k := []byte(fmt.Sprintf("k%06d", i*16+id))
		if err := w.WriteRecord(k, k); err != nil {
			f.Close()
			return segment{}, err
		}
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return segment{}, err
	}
	records, rawBytes := w.Records(), w.Bytes()
	putRecordWriter(job, w)
	if err := f.Close(); err != nil {
		return segment{}, err
	}
	return segment{partition: 0, file: name, records: records, rawBytes: rawBytes}, nil
}

type mergeAsStream struct{ m *mergeIter }

func (s mergeAsStream) next() ([]byte, []byte, error) { return s.m.next() }

func stringsCompare(a, b string) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}
