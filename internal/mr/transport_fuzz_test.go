package mr

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"net"
	"strings"
	"testing"
	"time"

	"repro/internal/codec"
	"repro/internal/iokit"
)

// FuzzReadLenPrefixed throws arbitrary byte streams at the wire
// protocol's frame reader. Whatever the input — truncated uvarints,
// oversized length prefixes, embedded garbage — the reader must return
// a frame or an error without panicking, and must never allocate past
// the declared cap even when a hostile prefix advertises gigabytes.
func FuzzReadLenPrefixed(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x00})
	f.Add(binary.AppendUvarint(nil, 5))                           // length with no body
	f.Add(append(binary.AppendUvarint(nil, 3), 'a', 'b', 'c'))    // clean frame
	f.Add(append(binary.AppendUvarint(nil, 4), 'a', 'b'))         // truncated body
	f.Add(binary.AppendUvarint(nil, maxNameFrame+1))              // just over the cap
	f.Add(binary.AppendUvarint(nil, 1<<40))                       // hostile: 1 TiB claim
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff}) // uvarint overflow territory

	f.Fuzz(func(t *testing.T, data []byte) {
		for _, max := range []uint64{0, 1, maxNameFrame, maxErrFrame} {
			buf, err := readLenPrefixed(bytes.NewReader(data), max)
			if err != nil {
				continue
			}
			if uint64(len(buf)) > max {
				t.Fatalf("frame of %d bytes exceeds declared cap %d", len(buf), max)
			}
			// A successful parse must be faithful: the frame is a prefix of
			// the input after its uvarint header.
			hdr := len(binary.AppendUvarint(nil, uint64(len(buf))))
			if !bytes.Equal(buf, data[hdr:hdr+len(buf)]) {
				t.Fatal("frame bytes do not match input body")
			}
		}
	})
}

// FuzzFrameRoundTrip drives full request/response handshakes with
// fuzzed segment names and payloads through an in-memory pipe,
// asserting the framing layer reproduces both sides byte-for-byte and
// rejects (rather than mangles) names over the frame limit.
func FuzzFrameRoundTrip(f *testing.F) {
	f.Add("seg", []byte("payload"))
	f.Add("", []byte{})
	f.Add(strings.Repeat("n", maxNameFrame), []byte{0x00, 0xff})
	f.Add(strings.Repeat("n", maxNameFrame+1), []byte("too long"))
	f.Add("jobs/m0001/out.p0003", bytes.Repeat([]byte{0xab}, 4096))

	f.Fuzz(func(t *testing.T, name string, payload []byte) {
		// Request frame: uvarint(len(name)) + name, as fetchOnce writes it.
		req := binary.AppendUvarint(nil, uint64(len(name)))
		req = append(req, name...)
		got, err := readLenPrefixed(bytes.NewReader(req), maxNameFrame)
		if len(name) > maxNameFrame {
			if err == nil {
				t.Fatalf("name of %d bytes accepted past the %d cap", len(name), maxNameFrame)
			}
		} else {
			if err != nil {
				t.Fatalf("round-tripping %d-byte name: %v", len(name), err)
			}
			if string(got) != name {
				t.Fatal("name mangled in round trip")
			}
		}

		// Error frame: zero marker + uvarint(len(msg)) + msg, as writeError
		// emits it over a real conn — reproduced structurally here.
		msg := name
		if len(msg) > maxErrFrame {
			msg = msg[:maxErrFrame]
		}
		eframe := binary.AppendUvarint(nil, 0)
		eframe = binary.AppendUvarint(eframe, uint64(len(msg)))
		eframe = append(eframe, msg...)
		er := bytes.NewReader(eframe)
		marker, err := binary.ReadUvarint(er)
		if err != nil || marker != 0 {
			t.Fatalf("error marker: %d, %v", marker, err)
		}
		gotMsg, err := readLenPrefixed(er, maxErrFrame)
		if err != nil {
			t.Fatalf("error frame: %v", err)
		}
		if string(gotMsg) != msg {
			t.Fatal("error message mangled in round trip")
		}

		// Response header + body: uvarint(size+1) + payload.
		resp := binary.AppendUvarint(nil, uint64(len(payload))+1)
		resp = append(resp, payload...)
		rbr := &byteReader{r: bytes.NewReader(resp)}
		sizePlus, err := binary.ReadUvarint(rbr)
		if err != nil || sizePlus == 0 {
			t.Fatalf("response header: %d, %v", sizePlus, err)
		}
		body := make([]byte, sizePlus-1)
		if _, err := io.ReadFull(rbr.r, body); err != nil {
			t.Fatalf("response body: %v", err)
		}
		if !bytes.Equal(body, payload) {
			t.Fatal("payload mangled in round trip")
		}

		// Truncated response bodies must surface as an error, not a hang
		// or a silent short read, when framed through readLenPrefixed.
		if len(payload) > 0 {
			trunc := binary.AppendUvarint(nil, uint64(len(payload)))
			trunc = append(trunc, payload[:len(payload)-1]...)
			// io.ReadFull reports EOF when zero body bytes arrive and
			// ErrUnexpectedEOF when some do; either way it must be an error.
			if _, err := readLenPrefixed(bytes.NewReader(trunc), uint64(len(payload))); !errors.Is(err, io.ErrUnexpectedEOF) && !errors.Is(err, io.EOF) {
				t.Fatalf("truncated frame: err = %v, want unexpected EOF", err)
			}
		}
	})
}

// fuzzConn presents a byte slice as the read side of a net.Conn and
// swallows writes, so server connection handlers can be driven with
// hostile input without a socket.
type fuzzConn struct{ r io.Reader }

func (c *fuzzConn) Read(p []byte) (int, error)  { return c.r.Read(p) }
func (c *fuzzConn) Write(p []byte) (int, error) { return len(p), nil }
func (c *fuzzConn) Close() error                { return nil }
func (c *fuzzConn) LocalAddr() net.Addr         { return fuzzAddr{} }
func (c *fuzzConn) RemoteAddr() net.Addr        { return fuzzAddr{} }
func (c *fuzzConn) SetDeadline(time.Time) error { return nil }
func (c *fuzzConn) SetReadDeadline(t time.Time) error {
	return nil
}
func (c *fuzzConn) SetWriteDeadline(t time.Time) error {
	return nil
}

type fuzzAddr struct{}

func (fuzzAddr) Network() string { return "fuzz" }
func (fuzzAddr) String() string  { return "fuzz" }

// FuzzServerConn feeds arbitrary byte streams — hostile hellos, mangled
// capability negotiation, malformed batch-open and grant frames —
// straight into the server's per-connection loop. The server must
// always return (EOF terminates every read path) and never panic, no
// matter how the negotiation or multiplex framing is corrupted.
func FuzzServerConn(f *testing.F) {
	// A clean v1 request, no hello.
	req := binary.AppendUvarint(nil, 3)
	req = append(req, "seg"...)
	f.Add(req)
	// Hello negotiating everything, then the same request.
	f.Add(append([]byte{wireHello, wireMagic, serverCaps}, req...))
	// Hello, then a batch of two streams with a legal window and a
	// couple of grants plus the final ack.
	batch := []byte{wireHello, wireMagic, serverCaps, wireHello, ctrlBatch}
	batch = binary.AppendUvarint(batch, 2)
	batch = binary.AppendUvarint(batch, wireChunk)
	for _, name := range []string{"seg", "z"} {
		batch = binary.AppendUvarint(batch, uint64(len(name)))
		batch = append(batch, name...)
	}
	batch = binary.AppendUvarint(batch, 0) // grant: stream 0
	batch = binary.AppendUvarint(batch, wireChunk)
	batch = binary.AppendUvarint(batch, 2) // final ack: idx == count
	batch = binary.AppendUvarint(batch, 0)
	f.Add(batch)
	// Batch frame without negotiating mux first; undersized window;
	// unknown control byte.
	f.Add([]byte{wireHello, ctrlBatch, 2, 1})
	f.Add([]byte{wireHello, wireMagic, serverCaps, wireHello, ctrlBatch, 1, 1})
	f.Add([]byte{wireHello, 0xEE})

	fs := iokit.NewMemFS()
	w, _ := fs.Create("seg")
	w.Write(bytes.Repeat([]byte("fuzz segment payload "), 200))
	w.Close()
	w, _ = fs.Create("z")
	w.Close()

	f.Fuzz(func(t *testing.T, data []byte) {
		s := &SegmentServer{fs: fs}
		s.handleConn(&fuzzConn{r: bytes.NewReader(data)})
	})
}

// FuzzSnappyUnitReader decodes arbitrary bytes as a compressed body
// stream. However corrupt the unit framing or block contents, the
// reader must error out (or finish) without panicking and without
// yielding more raw bytes than the advertised body size.
func FuzzSnappyUnitReader(f *testing.F) {
	valid := binary.AppendUvarint(nil, 0)
	block := codec.AppendSnappyBlock(nil, bytes.Repeat([]byte("unit "), 100))
	valid = binary.AppendUvarint(valid[:0], uint64(len(block)))
	valid = append(valid, block...)
	f.Add(valid, uint32(500))
	f.Add(valid, uint32(10)) // stream owes fewer bytes than one unit holds
	f.Add([]byte{0x00}, uint32(1))
	f.Add([]byte{0xff, 0xff, 0xff, 0xff}, uint32(64))
	f.Add([]byte(nil), uint32(0))

	f.Fuzz(func(t *testing.T, data []byte, size uint32) {
		remaining := int64(size % (1 << 20))
		d := &snappyUnitReader{br: bufio.NewReaderSize(bytes.NewReader(data), 64), remaining: remaining}
		n, err := io.Copy(io.Discard, d)
		if n > remaining {
			t.Fatalf("decoded %d raw bytes past the advertised %d", n, remaining)
		}
		if err == nil && n != remaining {
			t.Fatalf("clean EOF after %d of %d raw bytes", n, remaining)
		}
	})
}
