package mr

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/iokit"
)

// TestFaultInjectionSurfacesErrors sweeps injected I/O failures across
// the whole pipeline — spill writes, merge reads, shuffle reads — and
// requires every run to either succeed (failure point beyond the job's
// I/O) or return an error wrapping the injected one. Never a panic,
// never a silently wrong result.
func TestFaultInjectionSurfacesErrors(t *testing.T) {
	input := lines(strings.Repeat("fault injection words ", 300))
	baseline, err := Run(jobForFaults(nil), input)
	if err != nil {
		t.Fatal(err)
	}
	want := outputMap(t, baseline)

	for _, mode := range []string{"write", "read"} {
		for n := int64(1); n <= 200; n += 7 {
			flaky := &iokit.FlakyFS{Inner: iokit.NewMemFS()}
			if mode == "write" {
				flaky.FailWriteAt = n
			} else {
				flaky.FailReadAt = n
			}
			res, err := Run(jobForFaults(flaky), input)
			if err != nil {
				if !errors.Is(err, iokit.ErrInjected) {
					t.Fatalf("%s@%d: error does not wrap injection: %v", mode, n, err)
				}
				continue
			}
			got := outputMap(t, res)
			for k, v := range want {
				if got[k] != v {
					t.Fatalf("%s@%d: silent corruption: %q=%q want %q", mode, n, k, got[k], v)
				}
			}
		}
	}
}

// TestFaultInjectionParallelPipelined repeats the sweep under the
// pipelined scheduler with four workers and a retry budget: persistent
// faults must still surface as errors wrapping the injection (retries
// re-fail and exhaust the budget) or the run must succeed with correct
// output — never a panic, deadlock, or silent corruption, even with
// concurrent attempts in flight.
func TestFaultInjectionParallelPipelined(t *testing.T) {
	input := lines(
		strings.Repeat("fault injection words ", 150),
		strings.Repeat("parallel pipelined faults ", 150),
		strings.Repeat("injection sweep again ", 150),
		strings.Repeat("words words words ", 150),
	)
	mk := func(fs iokit.FS) *Job {
		job := jobForFaults(fs)
		job.Parallelism = 4
		job.Scheduler = SchedulerPipelined
		job.MaxTaskAttempts = 3
		job.RetryBackoff = 1
		return job
	}
	baseline, err := Run(mk(nil), input)
	if err != nil {
		t.Fatal(err)
	}
	want := outputMap(t, baseline)

	for _, mode := range []string{"write", "read"} {
		for n := int64(1); n <= 200; n += 13 {
			flaky := &iokit.FlakyFS{Inner: iokit.NewMemFS()}
			if mode == "write" {
				flaky.FailWriteAt = n
			} else {
				flaky.FailReadAt = n
			}
			res, err := Run(mk(flaky), input)
			if err != nil {
				if !errors.Is(err, iokit.ErrInjected) {
					t.Fatalf("%s@%d: error does not wrap injection: %v", mode, n, err)
				}
				continue
			}
			got := outputMap(t, res)
			for k, v := range want {
				if got[k] != v {
					t.Fatalf("%s@%d: silent corruption: %q=%q want %q", mode, n, k, got[k], v)
				}
			}
		}
	}
}

// TestFaultInjectionTransientSweep: with FailOnce faults every run must
// succeed under a retry budget — a single glitch is always recoverable
// regardless of where in the pipeline it lands.
func TestFaultInjectionTransientSweep(t *testing.T) {
	input := lines(strings.Repeat("transient sweep words ", 200))
	baseline, err := Run(jobForFaults(nil), input)
	if err != nil {
		t.Fatal(err)
	}
	want := outputMap(t, baseline)

	for _, mode := range []string{"write", "read"} {
		for n := int64(1); n <= 120; n += 11 {
			flaky := &iokit.FlakyFS{Inner: iokit.NewMemFS(), FailOnce: true}
			if mode == "write" {
				flaky.FailWriteAt = n
			} else {
				flaky.FailReadAt = n
			}
			job := jobForFaults(flaky)
			job.MaxTaskAttempts = 3
			job.RetryBackoff = 1
			res, err := Run(job, input)
			if err != nil {
				t.Fatalf("%s@%d: transient fault not recovered: %v", mode, n, err)
			}
			got := outputMap(t, res)
			for k, v := range want {
				if got[k] != v {
					t.Fatalf("%s@%d: silent corruption after retry: %q=%q want %q", mode, n, k, got[k], v)
				}
			}
		}
	}
}

func jobForFaults(fs iokit.FS) *Job {
	job := wordCountJob(true)
	job.SortBufferBytes = 2 << 10 // force spills and merges
	job.Parallelism = 1
	if fs != nil {
		job.FS = fs
	}
	return job
}
