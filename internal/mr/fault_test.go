package mr

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/iokit"
)

// TestFaultInjectionSurfacesErrors sweeps injected I/O failures across
// the whole pipeline — spill writes, merge reads, shuffle reads — and
// requires every run to either succeed (failure point beyond the job's
// I/O) or return an error wrapping the injected one. Never a panic,
// never a silently wrong result.
func TestFaultInjectionSurfacesErrors(t *testing.T) {
	input := lines(strings.Repeat("fault injection words ", 300))
	baseline, err := Run(jobForFaults(nil), input)
	if err != nil {
		t.Fatal(err)
	}
	want := outputMap(t, baseline)

	for _, mode := range []string{"write", "read"} {
		for n := int64(1); n <= 200; n += 7 {
			flaky := &iokit.FlakyFS{Inner: iokit.NewMemFS()}
			if mode == "write" {
				flaky.FailWriteAt = n
			} else {
				flaky.FailReadAt = n
			}
			res, err := Run(jobForFaults(flaky), input)
			if err != nil {
				if !errors.Is(err, iokit.ErrInjected) {
					t.Fatalf("%s@%d: error does not wrap injection: %v", mode, n, err)
				}
				continue
			}
			got := outputMap(t, res)
			for k, v := range want {
				if got[k] != v {
					t.Fatalf("%s@%d: silent corruption: %q=%q want %q", mode, n, k, got[k], v)
				}
			}
		}
	}
}

func jobForFaults(fs iokit.FS) *Job {
	job := wordCountJob(true)
	job.SortBufferBytes = 2 << 10 // force spills and merges
	job.Parallelism = 1
	if fs != nil {
		job.FS = fs
	}
	return job
}
