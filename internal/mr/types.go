// Package mr is a complete single-process MapReduce engine modeled on
// Hadoop's execution pipeline: map tasks collect output into a sorted
// in-memory buffer that spills to (metered) local disk per partition,
// spills are merged with an optional combiner, reduce tasks fetch and
// merge the sorted segments and invoke Reduce once per key group in
// ascending key order. Keys and values are raw bytes with pluggable key
// and grouping comparators, mirroring Hadoop's RawComparator contract.
//
// The engine exists as the substrate for the Anti-Combining optimization
// (package anticombine); every cost the paper reports — map output bytes,
// shuffle bytes, disk read/write, spill counts, per-phase CPU — is
// metered at the same pipeline points Hadoop meters them.
package mr

import (
	"repro/internal/bytesx"
	"repro/internal/iokit"
	"repro/internal/obs"
)

// Emitter receives intermediate or final records. Implementations copy
// key and value if they retain them; callers may reuse the slices.
type Emitter interface {
	Emit(key, value []byte) error
}

// EmitterFunc adapts a function to the Emitter interface.
type EmitterFunc func(key, value []byte) error

// Emit implements Emitter.
func (f EmitterFunc) Emit(key, value []byte) error { return f(key, value) }

// TaskInfo describes the task a Mapper or Reducer instance runs in. For
// reduce tasks, Partition is the reduce partition number; for map tasks
// it is -1. The partitioner and comparators are exposed so wrappers such
// as Anti-Combining can re-derive record routing, as the paper's
// AntiMapper and AntiReducer do through Hadoop's context object.
type TaskInfo struct {
	JobName string
	// Workspace is the job's file-name prefix (Job.Workspace after
	// normalization) — wrappers that create scratch files must root
	// them here, not under JobName, so concurrent jobs sharing one
	// worker filesystem stay disjoint and per-job cleanup is a single
	// prefix sweep.
	Workspace string
	TaskID    int
	Partition int
	// Attempt is the 0-based execution attempt of the enclosing task
	// (>0 after scheduler retries or for speculative duplicates; always
	// 0 for merge-time combiner instances).
	Attempt       int
	NumPartitions int
	Partitioner   Partitioner
	KeyCompare    bytesx.Compare
	GroupCompare  bytesx.Compare
	Counters      *Counters
	// FS is the task's metered local filesystem, available to wrappers
	// that need scratch files (e.g. Anti-Combining's Shared spills).
	FS iokit.FS
	// Tracer is the job's trace sink (nil when tracing is disabled), so
	// wrappers can emit their own spans — Anti-Combining's Shared uses
	// it for shared-spill / shared-merge spans.
	Tracer *obs.Tracer
}

// Mapper is the Map side of a job. Setup runs once before the first Map
// call of a task, Cleanup once after the last; both may emit.
type Mapper interface {
	Setup(info *TaskInfo, out Emitter) error
	Map(key, value []byte, out Emitter) error
	Cleanup(out Emitter) error
}

// Reducer is the Reduce side of a job (and the Combiner contract).
type Reducer interface {
	Setup(info *TaskInfo, out Emitter) error
	Reduce(key []byte, values ValueIter, out Emitter) error
	Cleanup(out Emitter) error
}

// ValueIter streams the values of one key group. The returned slice is
// valid only until the next call to Next.
type ValueIter interface {
	Next() (value []byte, ok bool)
}

// Partitioner assigns intermediate keys to reduce tasks.
type Partitioner interface {
	Partition(key []byte, numPartitions int) int
}

// PartitionerFunc adapts a function to the Partitioner interface.
type PartitionerFunc func(key []byte, numPartitions int) int

// Partition implements Partitioner.
func (f PartitionerFunc) Partition(key []byte, numPartitions int) int {
	return f(key, numPartitions)
}

// HashPartitioner is the default FNV-1a partitioner, the analogue of
// Hadoop's HashPartitioner.
type HashPartitioner struct{}

// Partition implements Partitioner.
func (HashPartitioner) Partition(key []byte, numPartitions int) int {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, b := range key {
		h ^= uint64(b)
		h *= prime64
	}
	return int(h % uint64(numPartitions))
}

// MapperBase provides no-op Setup and Cleanup for embedding.
type MapperBase struct{}

// Setup implements Mapper.
func (MapperBase) Setup(*TaskInfo, Emitter) error { return nil }

// Cleanup implements Mapper.
func (MapperBase) Cleanup(Emitter) error { return nil }

// ReducerBase provides no-op Setup and Cleanup for embedding.
type ReducerBase struct{}

// Setup implements Reducer.
func (ReducerBase) Setup(*TaskInfo, Emitter) error { return nil }

// Cleanup implements Reducer.
func (ReducerBase) Cleanup(Emitter) error { return nil }

// MapFunc wraps a plain map function as a Mapper.
type MapFunc func(key, value []byte, out Emitter) error

type funcMapper struct {
	MapperBase
	f MapFunc
}

// Map implements Mapper.
func (m *funcMapper) Map(key, value []byte, out Emitter) error { return m.f(key, value, out) }

// NewMapFunc returns a Mapper factory for a stateless map function.
func NewMapFunc(f MapFunc) func() Mapper {
	return func() Mapper { return &funcMapper{f: f} }
}

// ReduceFunc wraps a plain reduce function as a Reducer.
type ReduceFunc func(key []byte, values ValueIter, out Emitter) error

type funcReducer struct {
	ReducerBase
	f ReduceFunc
}

// Reduce implements Reducer.
func (r *funcReducer) Reduce(key []byte, values ValueIter, out Emitter) error {
	return r.f(key, values, out)
}

// NewReduceFunc returns a Reducer factory for a stateless reduce function.
func NewReduceFunc(f ReduceFunc) func() Reducer {
	return func() Reducer { return &funcReducer{f: f} }
}

// Record is a key/value pair.
type Record struct {
	Key   []byte
	Value []byte
}
