package mr

import (
	"errors"
	"fmt"
	"io"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/iokit"
)

// trackFS wraps an FS and counts open handles, so fault-injection tests
// can assert that error paths close every file they opened. It wraps
// the outermost layer (above any fault injector), counting exactly the
// handles the engine sees.
type trackFS struct {
	inner iokit.FS
	open  atomic.Int64
}

func (t *trackFS) Create(name string) (io.WriteCloser, error) {
	w, err := t.inner.Create(name)
	if err != nil {
		return nil, err
	}
	t.open.Add(1)
	return &trackedHandle{fs: t, c: w, w: w}, nil
}

func (t *trackFS) Open(name string) (io.ReadCloser, error) {
	r, err := t.inner.Open(name)
	if err != nil {
		return nil, err
	}
	t.open.Add(1)
	return &trackedHandle{fs: t, c: r, r: r}, nil
}

func (t *trackFS) Remove(name string) error        { return t.inner.Remove(name) }
func (t *trackFS) Size(name string) (int64, error) { return t.inner.Size(name) }
func (t *trackFS) List() ([]string, error)         { return t.inner.List() }

// trackedHandle decrements the open count on first Close only, so
// idempotent double closes do not drive the count negative.
type trackedHandle struct {
	fs     *trackFS
	c      io.Closer
	w      io.Writer
	r      io.Reader
	closed bool
}

func (h *trackedHandle) Write(p []byte) (int, error) { return h.w.Write(p) }
func (h *trackedHandle) Read(p []byte) (int, error)  { return h.r.Read(p) }

func (h *trackedHandle) Close() error {
	if !h.closed {
		h.closed = true
		h.fs.open.Add(-1)
	}
	return h.c.Close()
}

// TestMergeFaultCleanup drives a forced multi-pass merge into injected
// read and write faults at every byte-level op offset, and asserts a
// failed merge leaks nothing: no open file handles, no intermediate
// .pass files, no partial output — and the input segments stay intact
// (keep-inputs mode), so a retry could redo the merge.
func TestMergeFaultCleanup(t *testing.T) {
	// Build the input segments once on a pristine FS; each sweep round
	// copies them into a fresh flaky+tracked stack.
	for _, mode := range []string{"read", "write"} {
		for n := int64(1); ; n++ {
			mem := iokit.NewMemFS()
			flaky := &iokit.FlakyFS{Inner: mem}
			tracked := &trackFS{inner: flaky}
			job := wordCountJob(false)
			job.MergeFactor = 2
			j, err := job.normalized()
			if err != nil {
				t.Fatal(err)
			}
			segs := make([]segment, 6)
			var inputs []string
			for i := range segs {
				name := fmt.Sprintf("in%02d", i)
				seg, err := writeTestSegment(j, mem, name, 0, i, 20+i)
				if err != nil {
					t.Fatal(err)
				}
				segs[i] = seg
				inputs = append(inputs, name)
			}
			if mode == "read" {
				flaky.FailReadAt = n
			} else {
				flaky.FailWriteAt = n
			}
			counters := &Counters{}
			_, err = mergeSegments(j, tracked, counters, "merged", 0, segs, false, 0, false)
			if err == nil {
				if n == 1 {
					t.Fatalf("%s sweep: fault at op 1 did not surface", mode)
				}
				break // fault offset beyond the merge's total ops: sweep done
			}
			if !errors.Is(err, iokit.ErrInjected) {
				t.Fatalf("%s@%d: error does not wrap injection: %v", mode, n, err)
			}
			if open := tracked.open.Load(); open != 0 {
				t.Fatalf("%s@%d: %d file handles left open after failed merge", mode, n, open)
			}
			files, lerr := mem.List()
			if lerr != nil {
				t.Fatal(lerr)
			}
			got := map[string]bool{}
			for _, f := range files {
				got[f] = true
				if strings.Contains(f, ".pass") {
					t.Fatalf("%s@%d: orphaned intermediate %s after failed merge", mode, n, f)
				}
				if f == "merged" {
					t.Fatalf("%s@%d: partial output file survived failed merge", mode, n)
				}
			}
			for _, in := range inputs {
				if !got[in] {
					t.Fatalf("%s@%d: keep-inputs merge lost input %s", mode, n, in)
				}
			}
		}
	}
}

// TestRunFaultHandleLeaks sweeps injected faults across whole runs —
// spills, map-side merges, shuffle reads, reduce merges — and asserts
// that no run, failed or successful, finishes with file handles open.
func TestRunFaultHandleLeaks(t *testing.T) {
	input := lines(
		strings.Repeat("fault injection words ", 150),
		strings.Repeat("leak hunting sweep ", 150),
	)
	for _, mode := range []string{"read", "write"} {
		for n := int64(1); n <= 150; n += 5 {
			flaky := &iokit.FlakyFS{Inner: iokit.NewMemFS()}
			if mode == "read" {
				flaky.FailReadAt = n
			} else {
				flaky.FailWriteAt = n
			}
			tracked := &trackFS{inner: flaky}
			job := wordCountJob(true)
			job.FS = tracked
			job.SortBufferBytes = 2 << 10
			job.MergeFactor = 2
			job.Parallelism = 1
			_, err := Run(job, input)
			if err != nil && !errors.Is(err, iokit.ErrInjected) {
				t.Fatalf("%s@%d: error does not wrap injection: %v", mode, n, err)
			}
			if open := tracked.open.Load(); open != 0 {
				t.Fatalf("%s@%d: %d file handles open after Run (err=%v)", mode, n, open, err)
			}
		}
	}
}
