package mr

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"repro/internal/iokit"
)

// TestMergeFaultCleanup drives a forced multi-pass merge into injected
// read and write faults at every byte-level op offset, and asserts a
// failed merge leaks nothing: no open file handles, no intermediate
// .pass files, no partial output — and the input segments stay intact
// (keep-inputs mode), so a retry could redo the merge.
func TestMergeFaultCleanup(t *testing.T) {
	// Build the input segments once on a pristine FS; each sweep round
	// copies them into a fresh flaky+tracked stack.
	for _, mode := range []string{"read", "write"} {
		for n := int64(1); ; n++ {
			mem := iokit.NewMemFS()
			flaky := &iokit.FlakyFS{Inner: mem}
			tracked := &iokit.TrackFS{Inner: flaky}
			job := wordCountJob(false)
			job.MergeFactor = 2
			j, err := job.normalized()
			if err != nil {
				t.Fatal(err)
			}
			segs := make([]segment, 6)
			var inputs []string
			for i := range segs {
				name := fmt.Sprintf("in%02d", i)
				seg, err := writeTestSegment(j, mem, name, 0, i, 20+i)
				if err != nil {
					t.Fatal(err)
				}
				segs[i] = seg
				inputs = append(inputs, name)
			}
			if mode == "read" {
				flaky.FailReadAt = n
			} else {
				flaky.FailWriteAt = n
			}
			counters := &Counters{}
			_, err = mergeSegments(j, tracked, counters, "merged", 0, segs, false, 0, false)
			if err == nil {
				if n == 1 {
					t.Fatalf("%s sweep: fault at op 1 did not surface", mode)
				}
				break // fault offset beyond the merge's total ops: sweep done
			}
			if !errors.Is(err, iokit.ErrInjected) {
				t.Fatalf("%s@%d: error does not wrap injection: %v", mode, n, err)
			}
			if open := tracked.OpenHandles(); open != 0 {
				t.Fatalf("%s@%d: %d file handles left open after failed merge", mode, n, open)
			}
			files, lerr := mem.List()
			if lerr != nil {
				t.Fatal(lerr)
			}
			got := map[string]bool{}
			for _, f := range files {
				got[f] = true
				if strings.Contains(f, ".pass") {
					t.Fatalf("%s@%d: orphaned intermediate %s after failed merge", mode, n, f)
				}
				if f == "merged" {
					t.Fatalf("%s@%d: partial output file survived failed merge", mode, n)
				}
			}
			for _, in := range inputs {
				if !got[in] {
					t.Fatalf("%s@%d: keep-inputs merge lost input %s", mode, n, in)
				}
			}
		}
	}
}

// TestRunFaultHandleLeaks sweeps injected faults across whole runs —
// spills, map-side merges, shuffle reads, reduce merges — and asserts
// that no run, failed or successful, finishes with file handles open.
func TestRunFaultHandleLeaks(t *testing.T) {
	input := lines(
		strings.Repeat("fault injection words ", 150),
		strings.Repeat("leak hunting sweep ", 150),
	)
	for _, mode := range []string{"read", "write"} {
		for n := int64(1); n <= 150; n += 5 {
			flaky := &iokit.FlakyFS{Inner: iokit.NewMemFS()}
			if mode == "read" {
				flaky.FailReadAt = n
			} else {
				flaky.FailWriteAt = n
			}
			tracked := &iokit.TrackFS{Inner: flaky}
			job := wordCountJob(true)
			job.FS = tracked
			job.SortBufferBytes = 2 << 10
			job.MergeFactor = 2
			job.Parallelism = 1
			_, err := Run(job, input)
			if err != nil && !errors.Is(err, iokit.ErrInjected) {
				t.Fatalf("%s@%d: error does not wrap injection: %v", mode, n, err)
			}
			if open := tracked.OpenHandles(); open != 0 {
				t.Fatalf("%s@%d: %d file handles open after Run (err=%v)", mode, n, open, err)
			}
		}
	}
}
