package mr

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"strings"
	"sync"
	"testing"

	"repro/internal/iokit"
)

// truncatingServer speaks just enough of the wire protocol to betray a
// client: it completes the v2 handshake (granting no capabilities, so
// the body is raw), answers the first request with a header advertising
// the full size, writes only the first keep bytes of the body, and
// slams the connection shut.
func truncatingServer(t *testing.T, payload []byte, keep int) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		r := make([]byte, 3)
		if _, err := io.ReadFull(conn, r); err != nil || r[0] != wireHello || r[1] != wireMagic {
			return
		}
		conn.Write([]byte{wireMagicAck, 0}) // grant nothing: raw body, no mux
		// Request frame: uvarint(len) + name. Names are short; one read
		// suffices for a test client.
		buf := make([]byte, 256)
		if _, err := conn.Read(buf); err != nil {
			return
		}
		out := binary.AppendUvarint(nil, uint64(len(payload))+1)
		out = append(out, payload[:keep]...)
		conn.Write(out)
	}()
	return ln.Addr().String()
}

// TestFetchTruncationIsUnexpectedEOF is the regression test for the
// truncation-masking bug: a server that dies after delivering a valid
// header and a partial body must surface io.ErrUnexpectedEOF from the
// reader — a clean io.EOF would let a short body masquerade as a
// complete one.
func TestFetchTruncationIsUnexpectedEOF(t *testing.T) {
	payload := []byte(strings.Repeat("truncated body ", 200))
	for _, keep := range []int{0, 1, 100, len(payload) - 1} {
		addr := truncatingServer(t, payload, keep)
		pool := NewConnPool()
		rc, size, err := pool.Fetch(context.Background(), addr, "seg")
		if err != nil {
			t.Fatalf("keep=%d: header should arrive intact: %v", keep, err)
		}
		if size != int64(len(payload)) {
			t.Fatalf("keep=%d: advertised size = %d, want %d", keep, size, len(payload))
		}
		got, err := io.ReadAll(rc)
		rc.Close()
		pool.Close()
		if !errors.Is(err, io.ErrUnexpectedEOF) {
			t.Errorf("keep=%d: read error = %v, want io.ErrUnexpectedEOF", keep, err)
		}
		if len(got) > keep {
			t.Errorf("keep=%d: read %d bytes past the truncation point", keep, len(got))
		}
	}
}

// TestFetchZeroByteSegment: a zero-byte segment is a legal body — the
// header advertises size 0, the reader yields immediate EOF, and the
// connection lands back in the pool for reuse, compressed or not.
func TestFetchZeroByteSegment(t *testing.T) {
	fs := iokit.NewMemFS()
	w, _ := fs.Create("empty")
	w.Close()
	w, _ = fs.Create("full")
	w.Write([]byte(strings.Repeat("follow-up ", 200)))
	w.Close()
	srv, err := NewSegmentServer(fs, "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	for _, compress := range []bool{false, true} {
		pool := NewConnPool()
		pool.WireCompression = compress
		rc, size, err := pool.Fetch(context.Background(), srv.Addr(), "empty")
		if err != nil {
			t.Fatalf("compress=%v: %v", compress, err)
		}
		if size != 0 {
			t.Fatalf("compress=%v: size = %d, want 0", compress, size)
		}
		got, err := io.ReadAll(rc)
		if err != nil || len(got) != 0 {
			t.Fatalf("compress=%v: zero-byte body read %d bytes, err %v", compress, len(got), err)
		}
		rc.Close()
		// The connection must be at a clean frame boundary: the next
		// fetch rides it without a new dial.
		rc, _, err = pool.Fetch(context.Background(), srv.Addr(), "full")
		if err != nil {
			t.Fatalf("compress=%v: fetch after zero-byte: %v", compress, err)
		}
		io.Copy(io.Discard, rc)
		rc.Close()
		if d := pool.Dials(); d != 1 {
			t.Errorf("compress=%v: dials = %d, want 1", compress, d)
		}
		pool.Close()
	}
}

// TestPooledReuseAfterErrorFrameCompressed: a server error frame on a
// compression-negotiated connection leaves it at a frame boundary; the
// subsequent fetch reuses it and decodes a compressed body correctly.
func TestPooledReuseAfterErrorFrameCompressed(t *testing.T) {
	fs := iokit.NewMemFS()
	payload := strings.Repeat("compressible error-frame interleaving ", 300)
	w, _ := fs.Create("seg")
	w.Write([]byte(payload))
	w.Close()
	srv, err := NewSegmentServer(fs, "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	pool := NewConnPool()
	pool.WireCompression = true
	defer pool.Close()

	for i := 0; i < 5; i++ {
		if _, _, err := pool.Fetch(context.Background(), srv.Addr(), "missing"); err == nil {
			t.Fatal("missing segment should error")
		}
		rc, size, err := pool.Fetch(context.Background(), srv.Addr(), "seg")
		if err != nil {
			t.Fatal(err)
		}
		got, err := io.ReadAll(rc)
		rc.Close()
		if err != nil || string(got) != payload || size != int64(len(payload)) {
			t.Fatalf("round %d: body mismatch after error frame (err %v)", i, err)
		}
	}
	if d := pool.Dials(); d != 1 {
		t.Errorf("interleaved errors/fetches dialed %d times, want 1", d)
	}
}

// TestConnPoolCloseRacesPut: Close racing a reader's put-back must
// neither panic nor deadlock; run under -race this also proves the
// pool's bookkeeping is data-race-free.
func TestConnPoolCloseRacesPut(t *testing.T) {
	fs := iokit.NewMemFS()
	w, _ := fs.Create("seg")
	w.Write([]byte(strings.Repeat("raced ", 500)))
	w.Close()
	srv, err := NewSegmentServer(fs, "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	for i := 0; i < 50; i++ {
		pool := NewConnPool()
		rc, _, err := pool.Fetch(context.Background(), srv.Addr(), "seg")
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, rc)
		var wg sync.WaitGroup
		wg.Add(2)
		go func() { defer wg.Done(); rc.Close() }() // puts the conn back
		go func() { defer wg.Done(); pool.Close() }()
		wg.Wait()
		pool.Close()
	}
}

// TestWireCompressionRoundTrip: a compression-negotiated fetch delivers
// byte-identical data while moving fewer bytes on the wire, across
// bodies spanning one unit, many units, and the don't-compress floor.
func TestWireCompressionRoundTrip(t *testing.T) {
	fs := iokit.NewMemFS()
	sizes := map[string]int{
		"tiny":  wireCompressMin - 1, // below the floor: sent raw
		"one":   4 << 10,             // single compressed unit
		"multi": 3*wireChunk + 17,    // several units, ragged tail
	}
	bodies := map[string][]byte{}
	for name, n := range sizes {
		body := bytes.Repeat([]byte("wire compression round trip "), n/28+1)[:n]
		bodies[name] = body
		w, _ := fs.Create(name)
		w.Write(body)
		w.Close()
	}
	srv, err := NewSegmentServer(fs, "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	pool := NewConnPool()
	pool.WireCompression = true
	defer pool.Close()

	for name, body := range bodies {
		rc, size, err := pool.Fetch(context.Background(), srv.Addr(), name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		got, err := io.ReadAll(rc)
		if err != nil || !bytes.Equal(got, body) {
			t.Fatalf("%s: body mismatch (%d of %d bytes, err %v)", name, len(got), len(body), err)
		}
		wire, ok := WireBytes(rc)
		rc.Close()
		if !ok {
			t.Fatalf("%s: reader should report wire bytes", name)
		}
		if name == "tiny" {
			if wire != size {
				t.Errorf("tiny: wire = %d, want raw %d (below compression floor)", wire, size)
			}
		} else if wire >= size {
			t.Errorf("%s: wire = %d, want < raw %d", name, wire, size)
		}
	}
	// The server's ledger must agree: raw served exceeds wire served.
	if raw, w := srv.ServedBytes(), srv.ServedWireBytes(); w >= raw {
		t.Errorf("server wire bytes %d should be below raw %d", w, raw)
	}
}

// TestJobOverTCPShuffleCompressed: wire compression is invisible to the
// job — output matches an uncompressed run key for key — while the wire
// byte counters record the savings.
func TestJobOverTCPShuffleCompressed(t *testing.T) {
	mk := func(compress bool) *Job {
		// No combiner: every emission crosses the shuffle, so segments
		// are large enough to clear the compression floor.
		job := wordCountJob(false)
		job.TCPShuffle = true
		job.WireCompression = compress
		return job
	}
	var words strings.Builder
	for i := 0; i < 4000; i++ {
		fmt.Fprintf(&words, "word%05d ", i%1300)
	}
	input := lines(words.String())
	plain, err := Run(mk(false), input)
	if err != nil {
		t.Fatal(err)
	}
	compressed, err := Run(mk(true), input)
	if err != nil {
		t.Fatal(err)
	}
	got, want := outputMap(t, compressed), outputMap(t, plain)
	if len(got) != len(want) {
		t.Fatalf("key count: compressed %d, plain %d", len(got), len(want))
	}
	for k, v := range want {
		if got[k] != v {
			t.Errorf("key %q: compressed %q, plain %q", k, got[k], v)
		}
	}
	raw := compressed.Stats.Extra[CounterShuffleRawBytes]
	wire := compressed.Stats.Extra[CounterShuffleWireBytes]
	if raw == 0 || wire == 0 || wire >= raw {
		t.Errorf("compressed run counters: raw %d, wire %d; want 0 < wire < raw", raw, wire)
	}
	if praw, pwire := plain.Stats.Extra[CounterShuffleRawBytes], plain.Stats.Extra[CounterShuffleWireBytes]; praw != pwire {
		t.Errorf("plain run moved %d wire bytes for %d raw; want equal", pwire, praw)
	}
}

// muxTestServer stands up a MemFS-backed segment server plus a pool and
// fetcher, with distinct per-segment contents sized to span several
// window grants.
func muxTestServer(t testing.TB, n, size int, compress bool) (*SegmentServer, *MuxFetcher, map[string][]byte) {
	t.Helper()
	fs := iokit.NewMemFS()
	bodies := make(map[string][]byte, n)
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("mux/seg%02d", i)
		pat := fmt.Sprintf("segment %02d payload ", i)
		body := bytes.Repeat([]byte(pat), size/len(pat)+1)[:size]
		bodies[name] = body
		w, _ := fs.Create(name)
		w.Write(body)
		w.Close()
	}
	srv, err := NewSegmentServer(fs, "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	pool := NewConnPool()
	pool.WireCompression = compress
	t.Cleanup(func() { pool.Close() })
	return srv, NewMuxFetcher(pool), bodies
}

// TestMuxBatchDelivers drives runMux directly — a deterministic batch
// of every segment on one session — and checks each stream returns its
// exact body, including a zero-byte member, with wire accounting.
func TestMuxBatchDelivers(t *testing.T) {
	for _, compress := range []bool{false, true} {
		srv, m, bodies := muxTestServer(t, 6, int(muxWindow)*2+123, compress)
		w, _ := srv.fs.(*iokit.MemFS).Create("mux/empty")
		w.Close()
		bodies["mux/empty"] = nil

		var names []string
		for name := range bodies {
			names = append(names, name)
		}
		reqs := make([]*muxReq, len(names))
		for i, name := range names {
			reqs[i] = &muxReq{ctx: context.Background(), name: name, res: make(chan muxRes, 1)}
		}
		go m.runMux(srv.Addr(), reqs)
		for i, r := range reqs {
			res := <-r.res
			if res.fallback || res.err != nil {
				t.Fatalf("compress=%v stream %s: fallback=%v err=%v", compress, names[i], res.fallback, res.err)
			}
			got, err := io.ReadAll(res.rc)
			if err != nil {
				t.Fatalf("compress=%v stream %s: %v", compress, names[i], err)
			}
			if !bytes.Equal(got, bodies[names[i]]) {
				t.Fatalf("compress=%v stream %s: body mismatch (%d bytes)", compress, names[i], len(got))
			}
			wire, ok := WireBytes(res.rc)
			if !ok {
				t.Fatalf("compress=%v: mux stream should report wire bytes", compress)
			}
			if compress && res.size >= wireCompressMin && wire >= res.size {
				t.Errorf("compress=%v stream %s: wire %d, want < raw %d", compress, names[i], wire, res.size)
			}
			res.rc.Close()
		}
		if m.Sessions() != 1 || m.Muxed() != int64(len(names)) {
			t.Errorf("compress=%v: sessions=%d muxed=%d, want 1/%d", compress, m.Sessions(), m.Muxed(), len(names))
		}
	}
}

// TestMuxBatchStreamError: a missing segment inside a batch fails only
// its own stream — the siblings deliver, and the session still winds
// down cleanly enough to pool the connection (next fetch, no new dial).
func TestMuxBatchStreamError(t *testing.T) {
	srv, m, bodies := muxTestServer(t, 3, 8<<10, false)
	names := []string{"mux/seg00", "mux/nope", "mux/seg02"}
	reqs := make([]*muxReq, len(names))
	for i, name := range names {
		reqs[i] = &muxReq{ctx: context.Background(), name: name, res: make(chan muxRes, 1)}
	}
	go m.runMux(srv.Addr(), reqs)
	for i, r := range reqs {
		res := <-r.res
		if names[i] == "mux/nope" {
			if res.err == nil || res.fallback {
				t.Fatalf("missing segment: err=%v fallback=%v", res.err, res.fallback)
			}
			continue
		}
		if res.err != nil || res.fallback {
			t.Fatalf("stream %s: err=%v fallback=%v", names[i], res.err, res.fallback)
		}
		got, _ := io.ReadAll(res.rc)
		res.rc.Close()
		if !bytes.Equal(got, bodies[names[i]]) {
			t.Fatalf("stream %s: body mismatch", names[i])
		}
	}
	dials := m.pool.Dials()
	rc, _, err := m.pool.Fetch(context.Background(), srv.Addr(), "mux/seg00")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, rc)
	rc.Close()
	if d := m.pool.Dials(); d != dials {
		t.Errorf("post-batch fetch dialed (total %d, was %d); session should have pooled its conn", d, dials)
	}
}

// TestMuxFetcherConcurrent: the public Fetch path under a concurrent
// burst — every body arrives intact, and the group-commit dispatcher
// coalesces at least one burst into a multiplexed session.
func TestMuxFetcherConcurrent(t *testing.T) {
	srv, m, bodies := muxTestServer(t, 8, 64<<10, false)
	var names []string
	for name := range bodies {
		names = append(names, name)
	}
	for round := 0; round < 20 && m.Sessions() == 0; round++ {
		errs := make(chan error, 2*len(names))
		for i := 0; i < 2*len(names); i++ {
			name := names[i%len(names)]
			go func() {
				rc, size, err := m.Fetch(context.Background(), srv.Addr(), name)
				if err != nil {
					errs <- err
					return
				}
				got, err := io.ReadAll(rc)
				rc.Close()
				if err == nil && (int64(len(got)) != size || !bytes.Equal(got, bodies[name])) {
					err = fmt.Errorf("body mismatch for %s", name)
				}
				errs <- err
			}()
		}
		for i := 0; i < 2*len(names); i++ {
			if err := <-errs; err != nil {
				t.Fatal(err)
			}
		}
	}
	if m.Sessions() == 0 {
		t.Error("20 concurrent bursts never coalesced into a mux session")
	}
	t.Logf("sessions=%d muxed=%d dials=%d", m.Sessions(), m.Muxed(), m.pool.Dials())
}

// TestMuxFetcherSingleUsesSequentialPath: a lone fetch gains nothing
// from mux framing and must ride the plain pooled exchange.
func TestMuxFetcherSingleUsesSequentialPath(t *testing.T) {
	srv, m, bodies := muxTestServer(t, 1, 4<<10, false)
	rc, _, err := m.Fetch(context.Background(), srv.Addr(), "mux/seg00")
	if err != nil {
		t.Fatal(err)
	}
	got, _ := io.ReadAll(rc)
	rc.Close()
	if !bytes.Equal(got, bodies["mux/seg00"]) {
		t.Fatal("body mismatch")
	}
	if m.Muxed() != 0 {
		t.Errorf("single fetch muxed %d streams, want 0", m.Muxed())
	}
}

// BenchmarkShuffleDataPlane measures the shuffle body path end to end
// over loopback TCP: the buffered copy plane (MemFS), the zero-copy
// sendfile plane (OSFS, where the server hands the socket a raw
// *os.File), and the Snappy wire-compression plane. Each variant
// reports bytes-on-wire per op next to throughput, so the
// raw-vs-sendfile-vs-compressed table in EXPERIMENTS.md reads straight
// off this benchmark (BENCH_7.json).
func BenchmarkShuffleDataPlane(b *testing.B) {
	const segSize = 8 << 20
	row := []byte("shuffle data plane benchmark payload row 0123456789 ")
	payload := bytes.Repeat(row, segSize/len(row)+1)[:segSize]

	plant := func(b *testing.B, fs iokit.FS, name string, body []byte) {
		b.Helper()
		w, err := fs.Create(name)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := w.Write(body); err != nil {
			b.Fatal(err)
		}
		w.Close()
	}
	bench := func(b *testing.B, fs iokit.FS, compress bool) {
		plant(b, fs, "seg", payload)
		srv, err := NewSegmentServer(fs, "127.0.0.1:0", nil)
		if err != nil {
			b.Fatal(err)
		}
		defer srv.Close()
		pool := NewConnPool()
		pool.WireCompression = compress
		defer pool.Close()
		b.SetBytes(segSize)
		b.ResetTimer()
		var wire int64
		for i := 0; i < b.N; i++ {
			rc, _, err := pool.Fetch(context.Background(), srv.Addr(), "seg")
			if err != nil {
				b.Fatal(err)
			}
			if n, err := io.Copy(io.Discard, rc); err != nil || n != segSize {
				b.Fatalf("drained %d bytes, err %v", n, err)
			}
			if w, ok := WireBytes(rc); ok {
				wire += w
			}
			rc.Close()
		}
		b.ReportMetric(float64(wire)/float64(b.N), "wireB/op")
	}

	b.Run("raw-memfs", func(b *testing.B) { bench(b, iokit.NewMemFS(), false) })
	b.Run("sendfile-osfs", func(b *testing.B) { bench(b, iokit.NewOSFS(b.TempDir()), false) })
	b.Run("compressed-memfs", func(b *testing.B) { bench(b, iokit.NewMemFS(), true) })
	b.Run("compressed-osfs", func(b *testing.B) { bench(b, iokit.NewOSFS(b.TempDir()), true) })

	// The multiplexed plane: eight concurrent streams batched onto
	// shared sessions instead of eight sequential exchanges.
	b.Run("mux-8way-memfs", func(b *testing.B) {
		const nSeg = 8
		fs := iokit.NewMemFS()
		var names []string
		for i := 0; i < nSeg; i++ {
			name := fmt.Sprintf("seg%d", i)
			plant(b, fs, name, payload[:segSize/nSeg])
			names = append(names, name)
		}
		srv, err := NewSegmentServer(fs, "127.0.0.1:0", nil)
		if err != nil {
			b.Fatal(err)
		}
		defer srv.Close()
		pool := NewConnPool()
		defer pool.Close()
		m := NewMuxFetcher(pool)
		b.SetBytes(segSize)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			errs := make(chan error, nSeg)
			for _, name := range names {
				name := name
				go func() {
					rc, _, err := m.Fetch(context.Background(), srv.Addr(), name)
					if err == nil {
						_, err = io.Copy(io.Discard, rc)
						rc.Close()
					}
					errs <- err
				}()
			}
			for range names {
				if err := <-errs; err != nil {
					b.Fatal(err)
				}
			}
		}
		b.ReportMetric(float64(m.Muxed())/float64(m.Sessions()+1), "streams/session")
	})
}
