package mr

// Split is one map task's input: a stream of key/value records. The
// slices passed to fn are only valid for the duration of the call.
type Split interface {
	Records(fn func(key, value []byte) error) error
}

// MemSplit is an in-memory Split.
type MemSplit struct {
	Recs []Record
}

// Records implements Split.
func (s *MemSplit) Records(fn func(key, value []byte) error) error {
	for _, r := range s.Recs {
		if err := fn(r.Key, r.Value); err != nil {
			return err
		}
	}
	return nil
}

// GenSplit produces records from a generator function, so large inputs
// need never be materialized. The generator is called with an emit
// callback and must forward its error.
type GenSplit struct {
	Gen func(emit func(key, value []byte) error) error
}

// Records implements Split.
func (s *GenSplit) Records(fn func(key, value []byte) error) error {
	return s.Gen(fn)
}

// SplitRecords partitions recs into n roughly equal in-memory splits.
func SplitRecords(recs []Record, n int) []Split {
	if n < 1 {
		n = 1
	}
	splits := make([]Split, 0, n)
	per := (len(recs) + n - 1) / n
	for start := 0; start < len(recs); start += per {
		end := min(start+per, len(recs))
		splits = append(splits, &MemSplit{Recs: recs[start:end]})
	}
	if len(splits) == 0 {
		splits = append(splits, &MemSplit{})
	}
	return splits
}
