package mr

import (
	"sync"
	"testing"
	"time"

	"repro/internal/iokit"
	"repro/internal/obs"
)

// TestCountersSnapshotMidJob is the regression for mid-job Stats: once
// the engine wires the disk meter and start time, a Snapshot taken
// while the job runs must carry disk bytes and wall time, not zeros
// patched on after the run.
func TestCountersSnapshotMidJob(t *testing.T) {
	c := &Counters{}
	if s := c.Snapshot(); s.DiskReadBytes != 0 || s.WallTime != 0 {
		t.Fatalf("zero-value Counters snapshot not zero: %+v", s)
	}
	meter := &iokit.Meter{}
	meter.AddRead(100)
	meter.AddWrite(250)
	c.SetDiskMeter(meter)
	c.MarkStart(time.Now().Add(-time.Second))
	s := c.Snapshot()
	if s.DiskReadBytes != 100 || s.DiskWriteBytes != 250 {
		t.Errorf("disk bytes = %d/%d, want 100/250", s.DiskReadBytes, s.DiskWriteBytes)
	}
	if s.WallTime < time.Second {
		t.Errorf("WallTime = %v, want >= 1s", s.WallTime)
	}
	// MarkEnd freezes the wall clock: later snapshots agree exactly.
	c.MarkEnd(time.Now())
	s1 := c.Snapshot()
	time.Sleep(5 * time.Millisecond)
	s2 := c.Snapshot()
	if s1.WallTime != s2.WallTime {
		t.Errorf("wall clock still ticking after MarkEnd: %v then %v", s1.WallTime, s2.WallTime)
	}
}

// gatedReducer signals on its first Reduce call and blocks until
// released, holding a job mid-flight for an observer to inspect.
type gatedReducer struct {
	ReducerBase
	once    *sync.Once
	reached chan<- struct{}
	release <-chan struct{}
}

func (r *gatedReducer) Reduce(key []byte, values ValueIter, out Emitter) error {
	r.once.Do(func() {
		close(r.reached)
		<-r.release
	})
	for {
		if _, ok := values.Next(); !ok {
			return nil
		}
	}
}

// extraMapper emits the record and bumps an extra counter per record,
// racing AddExtra against concurrent Snapshot calls.
type extraMapper struct {
	MapperBase
	info *TaskInfo
}

func (m *extraMapper) Setup(info *TaskInfo, out Emitter) error {
	m.info = info
	return nil
}

func (m *extraMapper) Map(key, value []byte, out Emitter) error {
	m.info.Counters.AddExtra("test.extra", 1)
	return out.Emit(value, []byte("1"))
}

// TestLiveMetricsMidJobAndFinal drives the full observer path: a
// registry snapshot taken mid-job shows non-zero record and disk
// counters, values never decrease across snapshots, and the final
// snapshot equals the returned Result.Stats exactly. A hammer goroutine
// snapshots concurrently throughout, and the mapper calls AddExtra on
// every record, so `go test -race` exercises Snapshot vs AddExtra vs
// the engine's own counter writes.
func TestLiveMetricsMidJobAndFinal(t *testing.T) {
	reached := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	job := &Job{
		Name:      "observed",
		NewMapper: func() Mapper { return &extraMapper{} },
		NewReducer: func() Reducer {
			return &gatedReducer{once: &once, reached: reached, release: release}
		},
		NumReduceTasks: 2,
		Deterministic:  true,
	}
	reg := obs.NewRegistry()
	job.Metrics = reg

	var recs []Record
	for i := 0; i < 400; i++ {
		recs = append(recs, Record{Value: []byte{byte(i), byte(i >> 8)}})
	}
	splits := SplitRecords(recs, 4)

	// Hammer: concurrent snapshots all through the run.
	stop := make(chan struct{})
	var hammer sync.WaitGroup
	hammer.Add(1)
	go func() {
		defer hammer.Done()
		for {
			select {
			case <-stop:
				return
			default:
				reg.Snapshot()
			}
		}
	}()

	type runResult struct {
		res *Result
		err error
	}
	done := make(chan runResult, 1)
	go func() {
		res, err := Run(job, splits)
		done <- runResult{res, err}
	}()

	<-reached
	mid := reg.Snapshot()
	close(release)
	rr := <-done
	close(stop)
	hammer.Wait()
	if rr.err != nil {
		t.Fatal(rr.err)
	}

	if v := mid.Values["observed/map_input_records"]; v == 0 {
		t.Error("mid-job snapshot has zero map_input_records")
	}
	if v := mid.Values["observed/disk_write_bytes"]; v == 0 {
		t.Error("mid-job snapshot has zero disk_write_bytes (the pre-fix symptom)")
	}

	final := reg.Snapshot()
	for k, v := range mid.Values {
		if fv, ok := final.Values[k]; !ok || fv < v {
			t.Errorf("metric %s not monotonic: mid %d, final %d", k, v, fv)
		}
	}
	want := rr.res.Stats.Labeled()
	for k, v := range want {
		if got := final.Values["observed/"+k]; got != v {
			t.Errorf("final registry %s = %d, Result.Stats has %d", k, got, v)
		}
	}
	if len(final.Values) != len(want) {
		t.Errorf("final snapshot has %d metrics, Result.Stats has %d", len(final.Values), len(want))
	}
}

// TestCountersHammer races AddExtra, Snapshot, and the wiring setters
// directly (run under -race).
func TestCountersHammer(t *testing.T) {
	c := &Counters{}
	meter := &iokit.Meter{}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				switch g % 4 {
				case 0:
					c.AddExtra("x", 1)
				case 1:
					c.Snapshot()
				case 2:
					c.SetDiskMeter(meter)
					c.MarkStart(time.Now())
				case 3:
					c.mapInputRecords.Add(1)
					meter.AddWrite(1)
				}
			}
		}(g)
	}
	wg.Wait()
	if got := c.Extra("x"); got != 1000 {
		t.Errorf("extra counter = %d, want 1000", got)
	}
}

// benchSplits builds a small word-count input reused by the overhead
// benchmarks below.
func benchObsSplits() []Split {
	var recs []Record
	for i := 0; i < 2000; i++ {
		recs = append(recs, Record{Value: []byte("alpha beta gamma delta epsilon zeta")})
	}
	return SplitRecords(recs, 8)
}

// BenchmarkRunNoObs / BenchmarkRunTraced bound the observability tax on
// a full engine run: with no tracer or registry configured every span
// call is a nil-receiver no-op, so the two should be within noise of
// each other (the acceptance bar is <2%).
func BenchmarkRunNoObs(b *testing.B) {
	splits := benchObsSplits()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		job := wordCountJob(false)
		job.DiscardOutput = true
		if _, err := Run(job, splits); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRunTraced(b *testing.B) {
	splits := benchObsSplits()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		job := wordCountJob(false)
		job.DiscardOutput = true
		job.Tracer = obs.NewTracer()
		job.Metrics = obs.NewRegistry()
		if _, err := Run(job, splits); err != nil {
			b.Fatal(err)
		}
	}
}
