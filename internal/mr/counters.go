package mr

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/iokit"
)

// Counters aggregates job metrics across concurrently running tasks.
type Counters struct {
	mapInputRecords   atomic.Int64
	mapOutputRecords  atomic.Int64
	mapOutputBytes    atomic.Int64
	shuffleBytes      atomic.Int64
	spills            atomic.Int64
	combineInRecords  atomic.Int64
	combineOutRecords atomic.Int64
	reduceInRecords   atomic.Int64
	reduceOutRecords  atomic.Int64
	mapTaskNs         atomic.Int64
	reduceTaskNs      atomic.Int64

	// partBytes, sized once by InitPartitions before any task runs,
	// meters framed map-output bytes per reduce partition — the
	// per-partition flow prediction the skew-aware partitioning layer
	// (internal/partition) and its experiments consume. Unsized, the
	// meter is a no-op.
	partBytes []atomic.Int64

	mu    sync.Mutex
	extra map[string]int64
	// meter and start are wired once by the engine before tasks launch
	// so every Snapshot — including one taken mid-job by a live
	// observer — carries consistent disk and wall-time readings instead
	// of zeros patched on after the run. end freezes the wall clock when
	// the job finishes, so post-run snapshots (a reporter's final line)
	// agree exactly with the returned Result.Stats.
	meter *iokit.Meter
	start time.Time
	end   time.Time
}

// SetDiskMeter wires the job's disk meter so snapshots include
// DiskReadBytes / DiskWriteBytes. Call before tasks start.
func (c *Counters) SetDiskMeter(m *iokit.Meter) {
	c.mu.Lock()
	c.meter = m
	c.mu.Unlock()
}

// MarkStart records the job's start time so snapshots include the
// elapsed WallTime. Call before tasks start.
func (c *Counters) MarkStart(t time.Time) {
	c.mu.Lock()
	c.start = t
	c.mu.Unlock()
}

// MarkEnd freezes the wall clock: snapshots taken after it report
// end-start instead of a still-ticking elapsed time.
func (c *Counters) MarkEnd(t time.Time) {
	c.mu.Lock()
	c.end = t
	c.mu.Unlock()
}

// InitPartitions sizes the per-partition map-output meter for n reduce
// partitions. The engine (and ExecMapTask, for cluster workers) calls
// it before any task runs; until then AddMapOutputPartition is a no-op
// and snapshots carry a nil MapOutputPerPartition.
func (c *Counters) InitPartitions(n int) {
	if n <= 0 {
		return
	}
	c.mu.Lock()
	if len(c.partBytes) != n {
		c.partBytes = make([]atomic.Int64, n)
	}
	c.mu.Unlock()
}

// AddMapOutputPartition charges framed map-output bytes to partition
// p's meter. Callers may invoke it unconditionally: out-of-range
// partitions and unsized meters are no-ops.
func (c *Counters) AddMapOutputPartition(p int, bytes int64) {
	if p < 0 || p >= len(c.partBytes) {
		return
	}
	c.partBytes[p].Add(bytes)
}

// AddShuffle meters fetched shuffle data arriving at the reduce side:
// wire bytes (post-codec) and framed record counts. The in-process
// engine calls it through accountShuffle; cluster workers call it when
// a fetch task lands a remote segment locally.
func (c *Counters) AddShuffle(bytes, records int64) {
	c.shuffleBytes.Add(bytes)
	c.reduceInRecords.Add(records)
}

// AddReduceCPU charges d to the reduce-phase CPU total. Remote
// executors use it for fetch work that happens outside ExecReduceTask,
// matching the pipelined scheduler's accounting of fetch-task time.
func (c *Counters) AddReduceCPU(d time.Duration) {
	c.reduceTaskNs.Add(d.Nanoseconds())
}

// AddExtra adds n to a named auxiliary counter (e.g. Anti-Combining's
// encoding-choice and Shared-spill counters).
func (c *Counters) AddExtra(name string, n int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.extra == nil {
		c.extra = make(map[string]int64)
	}
	c.extra[name] += n
}

// Extra reads a named auxiliary counter.
func (c *Counters) Extra(name string) int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.extra[name]
}

// Stats is an immutable snapshot of job metrics.
type Stats struct {
	// MapInputRecords counts records fed to Map calls.
	MapInputRecords int64
	// MapOutputRecords counts records emitted by mappers into the
	// framework (after any Anti-Combining encoding).
	MapOutputRecords int64
	// MapOutputBytes is the framed size of mapper output before
	// compression: the paper's "Total Map Output Size".
	MapOutputBytes int64
	// ShuffleBytes is the on-the-wire size transferred from map to
	// reduce tasks (after the map-output codec).
	ShuffleBytes int64
	// Spills counts map-side buffer spills.
	Spills int64
	// CombineInputRecords / CombineOutputRecords meter the map-phase
	// combiner.
	CombineInputRecords  int64
	CombineOutputRecords int64
	// ReduceInputRecords counts framed records entering reduce tasks
	// (before Anti-Combining decoding).
	ReduceInputRecords int64
	// ReduceOutputRecords counts records emitted by reducers.
	ReduceOutputRecords int64
	// DiskReadBytes / DiskWriteBytes meter all local I/O (spills,
	// merges, shuffle reads, Shared spills).
	DiskReadBytes  int64
	DiskWriteBytes int64
	// MapCPU / ReduceCPU are summed single-threaded task times, the
	// analogue of the paper's "total CPU time" split by phase.
	MapCPU    time.Duration
	ReduceCPU time.Duration
	// MapOutputPerPartition is each reduce partition's framed map-output
	// bytes — the pre-codec flow sizes the skew-aware partitioning layer
	// predicts and balances. Nil when the meter was never sized.
	MapOutputPerPartition []int64
	// WallTime is the end-to-end job time in this process.
	WallTime time.Duration
	// Extra holds auxiliary counters keyed by name.
	Extra map[string]int64
}

// TotalCPU is the summed task CPU across both phases.
func (s Stats) TotalCPU() time.Duration { return s.MapCPU + s.ReduceCPU }

// Accumulate folds another snapshot into s, summing every counter and
// both CPU totals (WallTime is taken as the max, since concurrently
// produced snapshots overlap in time). The cluster coordinator uses it
// to assemble job-level Stats from the per-attempt snapshots of
// committed task attempts.
func (s *Stats) Accumulate(o Stats) {
	s.MapInputRecords += o.MapInputRecords
	s.MapOutputRecords += o.MapOutputRecords
	s.MapOutputBytes += o.MapOutputBytes
	s.ShuffleBytes += o.ShuffleBytes
	s.Spills += o.Spills
	s.CombineInputRecords += o.CombineInputRecords
	s.CombineOutputRecords += o.CombineOutputRecords
	s.ReduceInputRecords += o.ReduceInputRecords
	s.ReduceOutputRecords += o.ReduceOutputRecords
	s.DiskReadBytes += o.DiskReadBytes
	s.DiskWriteBytes += o.DiskWriteBytes
	s.MapCPU += o.MapCPU
	s.ReduceCPU += o.ReduceCPU
	if len(o.MapOutputPerPartition) > 0 {
		if len(s.MapOutputPerPartition) < len(o.MapOutputPerPartition) {
			grown := make([]int64, len(o.MapOutputPerPartition))
			copy(grown, s.MapOutputPerPartition)
			s.MapOutputPerPartition = grown
		}
		for i, v := range o.MapOutputPerPartition {
			s.MapOutputPerPartition[i] += v
		}
	}
	if o.WallTime > s.WallTime {
		s.WallTime = o.WallTime
	}
	if len(o.Extra) > 0 && s.Extra == nil {
		s.Extra = make(map[string]int64, len(o.Extra))
	}
	for k, v := range o.Extra {
		s.Extra[k] += v
	}
}

// Labeled flattens the stats into the snake_case metric map consumed by
// the obs metrics registry. Durations are reported in milliseconds;
// extra counters keep their registered names.
func (s Stats) Labeled() map[string]int64 {
	m := map[string]int64{
		"map_input_records":      s.MapInputRecords,
		"map_output_records":     s.MapOutputRecords,
		"map_output_bytes":       s.MapOutputBytes,
		"shuffle_bytes":          s.ShuffleBytes,
		"spills":                 s.Spills,
		"combine_input_records":  s.CombineInputRecords,
		"combine_output_records": s.CombineOutputRecords,
		"reduce_input_records":   s.ReduceInputRecords,
		"reduce_output_records":  s.ReduceOutputRecords,
		"disk_read_bytes":        s.DiskReadBytes,
		"disk_write_bytes":       s.DiskWriteBytes,
		"map_cpu_ms":             s.MapCPU.Milliseconds(),
		"reduce_cpu_ms":          s.ReduceCPU.Milliseconds(),
		"wall_ms":                s.WallTime.Milliseconds(),
	}
	for k, v := range s.Extra {
		m[k] = v
	}
	return m
}

// String renders the headline stats for logs.
func (s Stats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "mapIn=%d mapOut=%d mapOutBytes=%d shuffleBytes=%d spills=%d reduceIn=%d reduceOut=%d diskR=%d diskW=%d cpu=%s wall=%s",
		s.MapInputRecords, s.MapOutputRecords, s.MapOutputBytes, s.ShuffleBytes,
		s.Spills, s.ReduceInputRecords, s.ReduceOutputRecords,
		s.DiskReadBytes, s.DiskWriteBytes, s.TotalCPU(), s.WallTime)
	if len(s.Extra) > 0 {
		names := make([]string, 0, len(s.Extra))
		for n := range s.Extra {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			fmt.Fprintf(&b, " %s=%d", n, s.Extra[n])
		}
	}
	return b.String()
}

// Snapshot copies current counter values into a Stats. When the engine
// has wired a disk meter and start time, the snapshot is self-
// consistent mid-job: disk bytes and wall time reflect the same moment
// as the record counters rather than being zero until the run ends.
func (c *Counters) Snapshot() Stats {
	c.mu.Lock()
	extra := make(map[string]int64, len(c.extra))
	for k, v := range c.extra {
		extra[k] = v
	}
	meter, start, end := c.meter, c.start, c.end
	parts := c.partBytes
	c.mu.Unlock()
	var perPart []int64
	if len(parts) > 0 {
		perPart = make([]int64, len(parts))
		for i := range parts {
			perPart[i] = parts[i].Load()
		}
	}
	var diskR, diskW int64
	if meter != nil {
		diskR, diskW = meter.ReadBytes(), meter.WriteBytes()
	}
	var wall time.Duration
	switch {
	case !start.IsZero() && !end.IsZero():
		wall = end.Sub(start)
	case !start.IsZero():
		wall = time.Since(start)
	}
	return Stats{
		DiskReadBytes:         diskR,
		DiskWriteBytes:        diskW,
		WallTime:              wall,
		MapInputRecords:       c.mapInputRecords.Load(),
		MapOutputRecords:      c.mapOutputRecords.Load(),
		MapOutputBytes:        c.mapOutputBytes.Load(),
		ShuffleBytes:          c.shuffleBytes.Load(),
		Spills:                c.spills.Load(),
		CombineInputRecords:   c.combineInRecords.Load(),
		CombineOutputRecords:  c.combineOutRecords.Load(),
		ReduceInputRecords:    c.reduceInRecords.Load(),
		ReduceOutputRecords:   c.reduceOutRecords.Load(),
		MapCPU:                time.Duration(c.mapTaskNs.Load()),
		ReduceCPU:             time.Duration(c.reduceTaskNs.Load()),
		MapOutputPerPartition: perPart,
		Extra:                 extra,
	}
}
