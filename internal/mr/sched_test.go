package mr

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/codec"
	"repro/internal/iokit"
	"repro/internal/sched"
)

// TestSchedulerEquivalence is the A/B harness for the pipelined
// scheduler: across codecs, transports, spill pressure, and
// parallelism, the barrier and pipelined engines must produce
// byte-identical sorted output and identical logical counters.
func TestSchedulerEquivalence(t *testing.T) {
	input := lines(
		strings.Repeat("alpha beta gamma delta epsilon ", 120),
		strings.Repeat("beta beta zeta eta theta ", 150),
		strings.Repeat("gamma iota kappa alpha ", 90),
		strings.Repeat("lambda mu nu xi omicron pi ", 110),
		strings.Repeat("alpha omega ", 200),
	)
	for _, cc := range []struct {
		name string
		c    codec.Codec
	}{{"identity", nil}, {"snappy", codec.Snappy{}}} {
		for _, tcp := range []bool{false, true} {
			for _, tinyBuf := range []bool{false, true} {
				for _, par := range []int{1, 4} {
					name := fmt.Sprintf("%s/tcp=%v/tiny=%v/par=%d", cc.name, tcp, tinyBuf, par)
					t.Run(name, func(t *testing.T) {
						mk := func(scheduler string) *Job {
							job := wordCountJob(true)
							job.Scheduler = scheduler
							job.Codec = cc.c
							job.TCPShuffle = tcp
							job.Parallelism = par
							if tinyBuf {
								job.SortBufferBytes = 1 << 10
							}
							return job
						}
						barrier, err := Run(mk(SchedulerBarrier), input)
						if err != nil {
							t.Fatalf("barrier: %v", err)
						}
						pipelined, err := Run(mk(SchedulerPipelined), input)
						if err != nil {
							t.Fatalf("pipelined: %v", err)
						}
						b, p := barrier.SortedOutput(), pipelined.SortedOutput()
						if len(b) != len(p) {
							t.Fatalf("output length differs: barrier %d, pipelined %d", len(b), len(p))
						}
						for i := range b {
							if !bytes.Equal(b[i].Key, p[i].Key) || !bytes.Equal(b[i].Value, p[i].Value) {
								t.Fatalf("record %d differs: barrier %q=%q, pipelined %q=%q",
									i, b[i].Key, b[i].Value, p[i].Key, p[i].Value)
							}
						}
						bs, ps := barrier.Stats, pipelined.Stats
						if bs.MapInputRecords != ps.MapInputRecords ||
							bs.MapOutputBytes != ps.MapOutputBytes ||
							bs.ShuffleBytes != ps.ShuffleBytes ||
							bs.ReduceInputRecords != ps.ReduceInputRecords {
							t.Errorf("logical counters differ:\nbarrier:   in=%d mapout=%d shuffle=%d redin=%d\npipelined: in=%d mapout=%d shuffle=%d redin=%d",
								bs.MapInputRecords, bs.MapOutputBytes, bs.ShuffleBytes, bs.ReduceInputRecords,
								ps.MapInputRecords, ps.MapOutputBytes, ps.ShuffleBytes, ps.ReduceInputRecords)
						}
						if fmt.Sprint(barrier.ShufflePerPartition) != fmt.Sprint(pipelined.ShufflePerPartition) {
							t.Errorf("per-partition flows differ: %v vs %v",
								barrier.ShufflePerPartition, pipelined.ShufflePerPartition)
						}
					})
				}
			}
		}
	}
}

// staggeredMapper sleeps an amount proportional to its task ID before
// emitting, creating deliberate map-phase stragglers.
type staggeredMapper struct {
	MapperBase
	info *TaskInfo
	unit time.Duration
}

func (m *staggeredMapper) Setup(info *TaskInfo, out Emitter) error {
	m.info = info
	return nil
}

func (m *staggeredMapper) Map(key, value []byte, out Emitter) error {
	time.Sleep(time.Duration(m.info.TaskID%4) * m.unit)
	for _, w := range strings.Fields(string(value)) {
		if err := out.Emit([]byte(w), []byte("1")); err != nil {
			return err
		}
	}
	return nil
}

// TestPipelinedShuffleOverlap proves the pipelining claim: with
// staggered map durations, shuffle fetches for early map tasks run
// while later map tasks are still executing — the event timeline shows
// a strictly positive map/fetch overlap, which a global map barrier
// makes impossible.
func TestPipelinedShuffleOverlap(t *testing.T) {
	job := wordCountJob(false)
	job.Parallelism = 4
	job.NewMapper = func() Mapper { return &staggeredMapper{unit: 20 * time.Millisecond} }
	input := lines("one two three", "two three four", "three four five", "four five six")
	res, err := Run(job, input)
	if err != nil {
		t.Fatal(err)
	}
	if ov := sched.Overlap(res.Timeline, TaskGroupMap, TaskGroupFetch); ov <= 0 {
		t.Errorf("map/fetch overlap = %v, want > 0 (fetches should start before the last map finishes)", ov)
	}
	mEnd, _, ok := lastFinish(res.Timeline, TaskGroupMap)
	fStart, _, ok2 := firstStart(res.Timeline, TaskGroupFetch)
	if !ok || !ok2 {
		t.Fatalf("timeline missing map or fetch attempts: %+v", res.Timeline)
	}
	if !fStart.Before(mEnd) {
		t.Errorf("earliest fetch started %v, after the latest map finished %v", fStart, mEnd)
	}
	if got := outputMap(t, res)["three"]; got != "3" {
		t.Errorf("three = %q, want 3", got)
	}
}

func lastFinish(tl []sched.Attempt, group string) (time.Time, string, bool) {
	var best time.Time
	var task string
	for _, a := range tl {
		if a.Group == group && a.Finished.After(best) {
			best, task = a.Finished, a.Task
		}
	}
	return best, task, !best.IsZero()
}

func firstStart(tl []sched.Attempt, group string) (time.Time, string, bool) {
	var best time.Time
	var task string
	for _, a := range tl {
		if a.Group == group && (best.IsZero() || a.Started.Before(best)) {
			best, task = a.Started, a.Task
		}
	}
	return best, task, !best.IsZero()
}

// stragglerMapper is pathologically slow only on the first attempt of
// task 0; retries and speculative duplicates run at full speed.
type stragglerMapper struct {
	MapperBase
	info *TaskInfo
}

func (m *stragglerMapper) Setup(info *TaskInfo, out Emitter) error {
	m.info = info
	return nil
}

func (m *stragglerMapper) Map(key, value []byte, out Emitter) error {
	if m.info.TaskID == 0 && m.info.Attempt == 0 {
		time.Sleep(2 * time.Millisecond)
	}
	for _, w := range strings.Fields(string(value)) {
		if err := out.Emit([]byte(w), []byte("1")); err != nil {
			return err
		}
	}
	return nil
}

// TestSpeculativeExecution: with Job.Speculative set, a straggling map
// attempt is duplicated; the fast duplicate wins, output stays correct,
// and the timeline records both the speculative win and the cancelled
// original.
func TestSpeculativeExecution(t *testing.T) {
	job := wordCountJob(true)
	job.Speculative = true
	job.Parallelism = 4
	job.NewMapper = func() Mapper { return &stragglerMapper{} }
	// Task 0 gets many records so its first attempt crawls well past
	// the speculation threshold and has plenty of cancellation points.
	slow := &MemSplit{Recs: make([]Record, 300)}
	for i := range slow.Recs {
		slow.Recs[i] = Record{Value: []byte("straggle word count")}
	}
	splits := []Split{slow}
	for i := 0; i < 3; i++ {
		splits = append(splits, &MemSplit{Recs: []Record{{Value: []byte("straggle word count")}}})
	}
	res, err := Run(job, splits)
	if err != nil {
		t.Fatal(err)
	}
	if got := outputMap(t, res)["straggle"]; got != "303" {
		t.Errorf("straggle = %q, want 303", got)
	}
	var specWin, lostRace bool
	for _, a := range res.Timeline {
		if a.Task != "map/0" {
			continue
		}
		if a.Speculative && a.Outcome == sched.OutcomeSuccess {
			specWin = true
		}
		if a.Outcome == sched.OutcomeLostRace {
			lostRace = true
		}
	}
	if !specWin {
		t.Skip("straggler finished before speculation kicked in (timing-dependent); no speculative attempt to assert on")
	}
	if !lostRace {
		t.Errorf("speculative attempt won but no attempt recorded as lost-race: %+v", res.Timeline)
	}
}

// TestRetryRecoversTransientFault is the acceptance scenario: a
// transient injected fault kills the job under the barrier engine (no
// retries), while the pipelined scheduler with an attempt budget
// retries the failed task and completes with correct output.
func TestRetryRecoversTransientFault(t *testing.T) {
	input := lines(strings.Repeat("retry recovers faults ", 300))
	want := outputMap(t, mustRun(t, jobForFaults(nil), input))

	mk := func(scheduler string, attempts int) *Job {
		job := jobForFaults(&iokit.FlakyFS{
			Inner:       iokit.NewMemFS(),
			FailWriteAt: 5, // hit an early spill write
			FailOnce:    true,
		})
		job.Scheduler = scheduler
		job.MaxTaskAttempts = attempts
		return job
	}

	// Barrier engine, single attempt: the glitch is fatal.
	if _, err := Run(mk(SchedulerBarrier, 1), input); err == nil {
		t.Fatal("barrier engine should fail on the injected fault")
	}

	// Pipelined scheduler with retries: the task re-runs and succeeds.
	res, err := Run(mk(SchedulerPipelined, 3), input)
	if err != nil {
		t.Fatalf("pipelined with retries should recover: %v", err)
	}
	got := outputMap(t, res)
	for k, v := range want {
		if got[k] != v {
			t.Errorf("key %q = %q, want %q", k, got[k], v)
		}
	}
	var sawRetry bool
	for _, a := range res.Timeline {
		if a.Outcome == sched.OutcomeRetrying {
			sawRetry = true
		}
	}
	if !sawRetry {
		t.Error("timeline records no retrying attempt")
	}
}

func mustRun(t *testing.T, job *Job, splits []Split) *Result {
	t.Helper()
	res, err := Run(job, splits)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestUnknownSchedulerRejected: Job.Scheduler must name a known engine.
func TestUnknownSchedulerRejected(t *testing.T) {
	job := wordCountJob(false)
	job.Scheduler = "bogus"
	if _, err := Run(job, lines("a b c")); err == nil || !strings.Contains(err.Error(), "bogus") {
		t.Fatalf("unknown scheduler: err = %v", err)
	}
}

// TestTimelineShape: every map, fetch, and reduce task appears in the
// timeline with consistent metadata on a plain successful run.
func TestTimelineShape(t *testing.T) {
	job := wordCountJob(true)
	job.Parallelism = 2
	input := lines("a b", "b c", "c d")
	res := mustRun(t, job, input)
	counts := map[string]int{}
	for _, a := range res.Timeline {
		counts[a.Group]++
		if a.Outcome != sched.OutcomeSuccess {
			t.Errorf("attempt %s outcome = %s on a clean run", a.Task, a.Outcome)
		}
		if a.Started.Before(a.Queued) || a.Finished.Before(a.Started) {
			t.Errorf("attempt %s has unordered timestamps", a.Task)
		}
	}
	nMap, nRed := 3, job.NumReduceTasks
	if counts[TaskGroupMap] != nMap || counts[TaskGroupFetch] != nMap*nRed || counts[TaskGroupReduce] != nRed {
		t.Errorf("timeline groups = %v, want map=%d fetch=%d reduce=%d", counts, nMap, nMap*nRed, nRed)
	}
	if len(res.MapTaskTimes) != nMap {
		t.Fatalf("MapTaskTimes = %v", res.MapTaskTimes)
	}
	for i, d := range res.MapTaskTimes {
		if d < 0 {
			t.Errorf("MapTaskTimes[%d] = %v", i, d)
		}
	}
}

// TestBarrierTimeline: the fallback engine also records a timeline (no
// fetch group — its shuffle rides inside the reduce tasks).
func TestBarrierTimeline(t *testing.T) {
	job := wordCountJob(true)
	job.Scheduler = SchedulerBarrier
	res := mustRun(t, job, lines("a b", "b c"))
	counts := map[string]int{}
	for _, a := range res.Timeline {
		counts[a.Group]++
	}
	if counts[TaskGroupMap] != 2 || counts[TaskGroupReduce] != job.NumReduceTasks {
		t.Errorf("barrier timeline groups = %v", counts)
	}
	if len(res.MapTaskTimes) != 2 {
		t.Errorf("MapTaskTimes = %v", res.MapTaskTimes)
	}
	// The barrier engine never overlaps map and reduce.
	if ov := sched.Overlap(res.Timeline, TaskGroupMap, TaskGroupReduce); ov > 0 {
		t.Errorf("barrier map/reduce overlap = %v, want 0", ov)
	}
}

// TestPipelinedConcurrentCounters: under parallelism the metered
// counters must still sum exactly (race-free accounting).
func TestPipelinedConcurrentCounters(t *testing.T) {
	job := wordCountJob(true)
	job.Parallelism = 8
	job.SortBufferBytes = 1 << 10
	var splits []Split
	for i := 0; i < 8; i++ {
		splits = append(splits, &MemSplit{Recs: []Record{{Value: []byte(strings.Repeat("count me now ", 200))}}})
	}
	res := mustRun(t, job, splits)
	if res.Stats.MapInputRecords != 8 {
		t.Errorf("MapInputRecords = %d, want 8", res.Stats.MapInputRecords)
	}
	var perPart int64
	for _, f := range res.ShufflePerPartition {
		perPart += f
	}
	if perPart != res.Stats.ShuffleBytes {
		t.Errorf("per-partition flows sum %d != ShuffleBytes %d", perPart, res.Stats.ShuffleBytes)
	}
	if got := outputMap(t, res)["count"]; got != "1600" {
		t.Errorf("count = %q, want 1600", got)
	}
}
