package mr

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/bytesx"
	"repro/internal/iokit"
	"repro/internal/obs"
)

// segment describes one sorted run of records for one reduce partition,
// stored as a (possibly compressed) file of framed records.
type segment struct {
	partition int
	file      string
	records   int64
	rawBytes  int64 // framed bytes before the codec
}

// mapBuffer is the map-side collect buffer: records accumulate in an
// arena until SortBufferBytes is reached, then the buffer is sorted by
// (partition, key) and spilled to one file per partition, optionally
// running the combiner over each sorted key group — Hadoop's collect /
// sort-and-spill pipeline.
type mapBuffer struct {
	job      *Job
	fs       iokit.FS
	counters *Counters
	taskID   int
	attempt  int
	dir      string // attempt-scoped output directory

	arena   []byte
	entries []bufEntry
	spills  int
	segs    []segment
}

type bufEntry struct {
	partition          int32
	keyOff, keyLen     int32
	valueOff, valueLen int32
}

func newMapBuffer(job *Job, fs iokit.FS, counters *Counters, taskID, attempt int) *mapBuffer {
	return &mapBuffer{
		job: job, fs: fs, counters: counters,
		taskID: taskID, attempt: attempt,
		dir: mapTaskDir(job, taskID, attempt),
	}
}

func (b *mapBuffer) key(e bufEntry) []byte {
	return b.arena[e.keyOff : e.keyOff+e.keyLen]
}

func (b *mapBuffer) value(e bufEntry) []byte {
	return b.arena[e.valueOff : e.valueOff+e.valueLen]
}

// recordMetaBytes charges each buffered record for its index entry,
// mirroring Hadoop's 16-byte kvmeta accounting — record count, not just
// payload, drives spill frequency.
const recordMetaBytes = 16

// add copies one record into the buffer, spilling first if it is full.
func (b *mapBuffer) add(partition int, key, value []byte) error {
	used := len(b.arena) + recordMetaBytes*len(b.entries)
	if used+len(key)+len(value)+recordMetaBytes > b.job.SortBufferBytes && len(b.entries) > 0 {
		if err := b.spill(); err != nil {
			return err
		}
	}
	ko := int32(len(b.arena))
	b.arena = append(b.arena, key...)
	vo := int32(len(b.arena))
	b.arena = append(b.arena, value...)
	b.entries = append(b.entries, bufEntry{
		partition: int32(partition),
		keyOff:    ko, keyLen: int32(len(key)),
		valueOff: vo, valueLen: int32(len(value)),
	})
	return nil
}

// spill sorts the buffered records by (partition, key) and writes one
// sorted segment per non-empty partition.
func (b *mapBuffer) spill() error {
	if len(b.entries) == 0 {
		return nil
	}
	cmp := b.job.KeyCompare
	sort.SliceStable(b.entries, func(i, j int) bool {
		ei, ej := b.entries[i], b.entries[j]
		if ei.partition != ej.partition {
			return ei.partition < ej.partition
		}
		return cmp(b.key(ei), b.key(ej)) < 0
	})

	spillID := b.spills
	b.spills++
	b.counters.spills.Add(1)

	for start := 0; start < len(b.entries); {
		part := b.entries[start].partition
		end := start
		for end < len(b.entries) && b.entries[end].partition == part {
			end++
		}
		name := fmt.Sprintf("%s/spill%04d.p%04d", b.dir, spillID, part)
		seg, err := b.writeRun(name, int(part), b.entries[start:end])
		if err != nil {
			return err
		}
		b.segs = append(b.segs, seg)
		start = end
	}
	b.arena = b.arena[:0]
	b.entries = b.entries[:0]
	return nil
}

// writeRun writes one sorted partition run, applying the combiner when
// configured.
func (b *mapBuffer) writeRun(name string, partition int, entries []bufEntry) (segment, error) {
	f, err := b.fs.Create(name)
	if err != nil {
		return segment{}, err
	}
	cw, err := b.job.Codec.NewWriter(f)
	if err != nil {
		f.Close()
		return segment{}, err
	}
	w := bytesx.NewWriter(cw)

	if b.job.NewCombiner != nil {
		span := b.job.Tracer.Start(obs.KindCombine, name, obs.Int("records_in", int64(len(entries))))
		err = b.combineRun(partition, entries, w)
		if err == nil {
			span.End(obs.Int("records_out", w.Records()))
		}
	} else {
		for _, e := range entries {
			if err = w.WriteRecord(b.key(e), b.value(e)); err != nil {
				break
			}
		}
	}
	if err == nil {
		err = w.Flush()
	}
	if cerr := cw.Close(); err == nil {
		err = cerr
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return segment{}, err
	}
	return segment{partition: partition, file: name, records: w.Records(), rawBytes: w.Bytes()}, nil
}

// combineRun groups the sorted entries by key and runs the combiner over
// each group, writing its output to w.
func (b *mapBuffer) combineRun(partition int, entries []bufEntry, w *bytesx.Writer) error {
	combiner := b.job.NewCombiner()
	info := &TaskInfo{
		JobName:       b.job.Name,
		TaskID:        b.taskID,
		Partition:     partition,
		Attempt:       b.attempt,
		NumPartitions: b.job.NumReduceTasks,
		Partitioner:   b.job.Partitioner,
		KeyCompare:    b.job.KeyCompare,
		GroupCompare:  b.job.GroupCompare,
		Counters:      b.counters,
		FS:            b.fs,
		Tracer:        b.job.Tracer,
	}
	out := EmitterFunc(func(k, v []byte) error {
		b.counters.combineOutRecords.Add(1)
		return w.WriteRecord(k, v)
	})
	if err := combiner.Setup(info, out); err != nil {
		return err
	}
	cmp := b.job.KeyCompare
	for start := 0; start < len(entries); {
		end := start
		key := b.key(entries[start])
		for end < len(entries) && cmp(b.key(entries[end]), key) == 0 {
			end++
		}
		b.counters.combineInRecords.Add(int64(end - start))
		group := entries[start:end]
		i := 0
		vi := valueIterFunc(func() ([]byte, bool) {
			if i >= len(group) {
				return nil, false
			}
			v := b.value(group[i])
			i++
			return v, true
		})
		if err := combiner.Reduce(key, vi, out); err != nil {
			return err
		}
		start = end
	}
	return combiner.Cleanup(out)
}

type valueIterFunc func() ([]byte, bool)

func (f valueIterFunc) Next() ([]byte, bool) { return f() }

// finish spills any buffered records and merges each partition's spill
// segments into a single map output segment, mirroring Hadoop's final
// on-disk merge. With a single spill the spill files are the output.
func (b *mapBuffer) finish() ([]segment, error) {
	if err := b.spill(); err != nil {
		return nil, err
	}
	if b.spills <= 1 {
		return b.segs, nil
	}
	byPart := make(map[int][]segment)
	for _, s := range b.segs {
		byPart[s.partition] = append(byPart[s.partition], s)
	}
	// Hadoop applies the combiner during the final merge only when
	// enough spills occurred (min.num.spills.for.combine, default 3).
	useCombiner := b.job.NewCombiner != nil && b.spills >= 3
	var out []segment
	for part, segs := range byPart {
		merged, err := mergeSegments(b.job, b.fs, b.counters,
			fmt.Sprintf("%s/out.p%04d", b.dir, part),
			part, segs, useCombiner, b.taskID, true)
		if err != nil {
			return nil, err
		}
		out = append(out, merged)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].partition < out[j].partition })
	return out, nil
}

// openSegment opens a segment file for sorted streaming.
func openSegment(job *Job, fs iokit.FS, seg segment) (recordStream, error) {
	f, err := fs.Open(seg.file)
	if err != nil {
		return nil, err
	}
	cr, err := job.Codec.NewReader(f)
	if err != nil {
		f.Close()
		return nil, err
	}
	return &readerStream{r: bytesx.NewReader(cr), close: func() error {
		if err := cr.Close(); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}}, nil
}

// mergeSegments k-way merges sorted segments of one partition into a new
// segment file, optionally combining key groups. removeInputs deletes
// consumed input files (the map-side behaviour); reduce-side merges keep
// them when task retries are enabled so a retried attempt can redo the
// merge from intact files. When the input count exceeds the job's merge
// factor, intermediate passes reduce it first (Hadoop's multi-pass
// merge).
func mergeSegments(job *Job, fs iokit.FS, counters *Counters, name string, partition int, segs []segment, useCombiner bool, taskID int, removeInputs bool) (segment, error) {
	pass := 0
	for len(segs) > job.MergeFactor {
		batch := segs[:job.MergeFactor]
		rest := segs[job.MergeFactor:]
		interName := fmt.Sprintf("%s.pass%04d", name, pass)
		pass++
		inter, err := mergeOnce(job, fs, counters, interName, partition, batch, false, taskID, removeInputs)
		if err != nil {
			return segment{}, err
		}
		segs = append(rest, inter)
	}
	return mergeOnce(job, fs, counters, name, partition, segs, useCombiner, taskID, removeInputs)
}

func mergeOnce(job *Job, fs iokit.FS, counters *Counters, name string, partition int, segs []segment, useCombiner bool, taskID int, removeInputs bool) (segment, error) {
	streams := make([]recordStream, len(segs))
	for i, s := range segs {
		st, err := openSegment(job, fs, s)
		if err != nil {
			return segment{}, err
		}
		streams[i] = st
	}
	merged, err := newMergeIter(streams, job.KeyCompare)
	if err != nil {
		return segment{}, err
	}

	f, err := fs.Create(name)
	if err != nil {
		return segment{}, err
	}
	cw, err := job.Codec.NewWriter(f)
	if err != nil {
		f.Close()
		return segment{}, err
	}
	w := bytesx.NewWriter(cw)

	if useCombiner {
		span := job.Tracer.Start(obs.KindCombine, name)
		err = combineMerged(job, fs, counters, partition, merged, w, taskID)
		if err == nil {
			span.End(obs.Int("records_out", w.Records()))
		}
	} else {
		for {
			k, v, nerr := merged.next()
			if nerr == io.EOF {
				break
			}
			if nerr != nil {
				err = nerr
				break
			}
			if err = w.WriteRecord(k, v); err != nil {
				break
			}
		}
	}
	if err == nil {
		err = w.Flush()
	}
	if cerr := cw.Close(); err == nil {
		err = cerr
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return segment{}, err
	}
	if removeInputs {
		for _, s := range segs {
			if err := fs.Remove(s.file); err != nil {
				return segment{}, err
			}
		}
	}
	return segment{partition: partition, file: name, records: w.Records(), rawBytes: w.Bytes()}, nil
}

// combineMerged runs the combiner over key groups of a merged stream.
func combineMerged(job *Job, fs iokit.FS, counters *Counters, partition int, merged *mergeIter, w *bytesx.Writer, taskID int) error {
	combiner := job.NewCombiner()
	info := &TaskInfo{
		JobName:       job.Name,
		TaskID:        taskID,
		Partition:     partition,
		NumPartitions: job.NumReduceTasks,
		Partitioner:   job.Partitioner,
		KeyCompare:    job.KeyCompare,
		GroupCompare:  job.GroupCompare,
		Counters:      counters,
		FS:            fs,
		Tracer:        job.Tracer,
	}
	out := EmitterFunc(func(k, v []byte) error {
		counters.combineOutRecords.Add(1)
		return w.WriteRecord(k, v)
	})
	if err := combiner.Setup(info, out); err != nil {
		return err
	}
	grouped := newGroupedIter(merged, job.KeyCompare)
	for {
		key, ok, err := grouped.nextGroup()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		vi := grouped.groupValues(key)
		counting := valueIterFunc(func() ([]byte, bool) {
			v, ok := vi.Next()
			if ok {
				counters.combineInRecords.Add(1)
			}
			return v, ok
		})
		if err := combiner.Reduce(key, counting, out); err != nil {
			return err
		}
		if err := vi.drain(); err != nil {
			return err
		}
	}
	return combiner.Cleanup(out)
}
