package mr

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"slices"
	"sort"

	"repro/internal/bytesx"
	"repro/internal/iokit"
	"repro/internal/obs"
)

// segment describes one sorted run of records for one reduce partition,
// stored as a (possibly compressed) file of framed records.
type segment struct {
	partition int
	file      string
	records   int64
	rawBytes  int64 // framed bytes before the codec
}

// mapBuffer is the map-side collect buffer: records accumulate in an
// arena until SortBufferBytes is reached, then the buffer is bucketed
// by partition, key-sorted per bucket, and spilled to one file per
// partition, optionally running the combiner over each sorted key
// group — Hadoop's collect / sort-and-spill pipeline. The arena, entry
// index, and bucketing scratch come from pools (unless the job
// disables pooling) and are released by finish, so steady-state tasks
// reuse each other's buffers instead of growing fresh ones.
type mapBuffer struct {
	job      *Job
	fs       iokit.FS
	counters *Counters
	taskID   int
	attempt  int
	dir      string // attempt-scoped output directory

	arena   []byte
	entries []bufEntry
	scratch []bufEntry // partition-bucketing scatter target
	offs    []int      // per-partition counters/offsets scratch
	spills  int
	segs    []segment
}

type bufEntry struct {
	partition          int32
	keyOff, keyLen     int32
	valueOff, valueLen int32
}

func newMapBuffer(job *Job, fs iokit.FS, counters *Counters, taskID, attempt int) *mapBuffer {
	return &mapBuffer{
		job: job, fs: fs, counters: counters,
		taskID: taskID, attempt: attempt,
		dir:     mapTaskDir(job, taskID, attempt),
		arena:   getArena(job),
		entries: getEntries(job),
		scratch: getEntries(job),
	}
}

// release returns the buffer's pooled memory. Call once, after the last
// spill; the produced segments live on disk and keep no reference.
func (b *mapBuffer) release() {
	putArena(b.job, b.arena)
	putEntries(b.job, b.entries)
	putEntries(b.job, b.scratch)
	b.arena, b.entries, b.scratch, b.offs = nil, nil, nil, nil
}

func (b *mapBuffer) key(e bufEntry) []byte {
	return b.arena[e.keyOff : e.keyOff+e.keyLen]
}

func (b *mapBuffer) value(e bufEntry) []byte {
	return b.arena[e.valueOff : e.valueOff+e.valueLen]
}

// recordMetaBytes charges each buffered record for its index entry,
// mirroring Hadoop's 16-byte kvmeta accounting — record count, not just
// payload, drives spill frequency.
const recordMetaBytes = 16

// add copies one record into the buffer, spilling first if it is full.
func (b *mapBuffer) add(partition int, key, value []byte) error {
	used := len(b.arena) + recordMetaBytes*len(b.entries)
	if used+len(key)+len(value)+recordMetaBytes > b.job.SortBufferBytes && len(b.entries) > 0 {
		if err := b.spill(); err != nil {
			return err
		}
	}
	ko := int32(len(b.arena))
	b.arena = append(b.arena, key...)
	vo := int32(len(b.arena))
	b.arena = append(b.arena, value...)
	b.entries = append(b.entries, bufEntry{
		partition: int32(partition),
		keyOff:    ko, keyLen: int32(len(key)),
		valueOff: vo, valueLen: int32(len(value)),
	})
	return nil
}

// spillWorkers bounds a spill-internal worker pool at the job's spill
// parallelism and the amount of independent work.
func (b *mapBuffer) spillWorkers(n int) int {
	if w := b.job.SpillParallelism; w < n {
		return w
	}
	return n
}

// spill orders the buffered records by (partition, key) — partition
// bucketing followed by an in-bucket key sort — and writes one sorted
// segment per non-empty partition, in parallel across partitions when
// SpillParallelism allows.
func (b *mapBuffer) spill() error {
	if len(b.entries) == 0 {
		return nil
	}
	span := b.job.Tracer.Start(obs.KindSpill,
		fmt.Sprintf("%s/spill%04d", b.dir, b.spills),
		obs.Int("records", int64(len(b.entries))),
		obs.Int("parallelism", int64(b.job.SpillParallelism)))
	ends := b.sortByPartitionKey()

	spillID := b.spills
	b.spills++
	b.counters.spills.Add(1)

	// Cut the ordered entries into per-partition runs. Runs write
	// independent files, so they proceed concurrently; segments are
	// committed in partition order regardless of completion order, which
	// keeps b.segs — and therefore every downstream merge — identical to
	// the sequential path.
	type run struct {
		name    string
		part    int
		entries []bufEntry
	}
	runs := make([]run, 0, len(ends))
	start := 0
	for part, end := range ends {
		if end > start {
			runs = append(runs, run{
				name:    fmt.Sprintf("%s/spill%04d.p%04d", b.dir, spillID, part),
				part:    part,
				entries: b.entries[start:end],
			})
		}
		start = end
	}
	segs := make([]segment, len(runs))
	err := runPool(context.Background(), b.spillWorkers(len(runs)), len(runs), func(_ context.Context, i int) error {
		seg, err := b.writeRun(runs[i].name, runs[i].part, runs[i].entries)
		if err != nil {
			return err
		}
		segs[i] = seg
		return nil
	})
	if err != nil {
		span.End(obs.Str("outcome", "failed"), obs.Str("err", err.Error()))
		return err
	}
	b.segs = append(b.segs, segs...)
	b.arena = b.arena[:0]
	b.entries = b.entries[:0]
	span.End(obs.Int("segments", int64(len(segs))))
	return nil
}

// sortByPartitionKey orders b.entries by (partition, key) and returns
// the per-partition bucket end offsets. Instead of one comparison sort
// over the composite (partition, key), it buckets by partition with a
// stable O(n) counting scatter and then key-sorts each bucket. Within a
// bucket, equal keys keep insertion order: entries are appended to the
// arena in emission order, so keyOff is a unique, monotone insertion
// stamp (entries with equal keyOff are fully empty records, where order
// cannot matter) and serves as the tie-break — an unstable sort with
// this tie-break reproduces the stable sort's order exactly.
func (b *mapBuffer) sortByPartitionKey() []int {
	nPart := b.job.NumReduceTasks
	n := len(b.entries)
	if cap(b.offs) < nPart {
		b.offs = make([]int, nPart)
	}
	offs := b.offs[:nPart]
	for i := range offs {
		offs[i] = 0
	}
	for _, e := range b.entries {
		offs[e.partition]++
	}
	sum := 0
	for p, c := range offs {
		offs[p] = sum
		sum += c
	}
	if cap(b.scratch) < n {
		b.scratch = make([]bufEntry, 0, n)
	}
	scratch := b.scratch[:n]
	for _, e := range b.entries {
		scratch[offs[e.partition]] = e
		offs[e.partition]++
	}
	// After the scatter offs[p] is bucket p's end offset. Swap the
	// scatter target in as the live entry slice; the old one becomes
	// next spill's scratch.
	b.entries, b.scratch = scratch, b.entries[:0]

	if b.job.rawKeyOrder {
		// Fast path: the default raw-bytes order inlines bytes.Compare
		// instead of calling through the comparator function value.
		arena := b.arena
		start := 0
		for _, end := range offs {
			if end-start > 1 {
				slices.SortFunc(b.entries[start:end], func(x, y bufEntry) int {
					if c := bytes.Compare(arena[x.keyOff:x.keyOff+x.keyLen], arena[y.keyOff:y.keyOff+y.keyLen]); c != 0 {
						return c
					}
					return int(x.keyOff - y.keyOff)
				})
			}
			start = end
		}
		return offs
	}
	cmp := b.job.KeyCompare
	start := 0
	for _, end := range offs {
		if end-start > 1 {
			slices.SortFunc(b.entries[start:end], func(x, y bufEntry) int {
				if c := cmp(b.key(x), b.key(y)); c != 0 {
					return c
				}
				return int(x.keyOff - y.keyOff)
			})
		}
		start = end
	}
	return offs
}

// segmentSink is the write side of one segment file: file → optional
// CRC32C framing (the outermost on-disk layer) → codec → framed-record
// writer. It centralizes the layering and the close chain so spill runs
// and merge outputs cannot drift apart.
type segmentSink struct {
	f  io.WriteCloser
	ck *checksumWriter // nil when the job disables checksums
	cw io.WriteCloser  // codec writer
	w  *bytesx.Writer
}

// newSegmentSink creates name on fs and stacks the segment write layers
// over it. On error nothing is left open and the partial file is
// removed.
func newSegmentSink(job *Job, fs iokit.FS, name string) (*segmentSink, error) {
	f, err := fs.Create(name)
	if err != nil {
		return nil, err
	}
	var (
		ck   *checksumWriter
		base io.Writer = f
	)
	if !job.DisableChecksums {
		ck = newChecksumWriter(job, f)
		base = ck
	}
	cw, err := job.Codec.NewWriter(base)
	if err != nil {
		if ck != nil {
			ck.release()
		}
		f.Close()
		removeQuiet(fs, name)
		return nil, err
	}
	return &segmentSink{f: f, ck: ck, cw: cw, w: getRecordWriter(job, cw)}, nil
}

// close flushes and closes every layer in order (err carries the
// caller's write error, if any, so close errors never mask it) and
// reports the framed record count and pre-codec bytes.
func (s *segmentSink) close(job *Job, err error) (records, rawBytes int64, _ error) {
	if err == nil {
		err = s.w.Flush()
	}
	records, rawBytes = s.w.Records(), s.w.Bytes()
	putRecordWriter(job, s.w)
	if cerr := s.cw.Close(); err == nil {
		err = cerr
	}
	if s.ck != nil {
		if cerr := s.ck.Close(); err == nil {
			err = cerr
		}
	}
	if cerr := s.f.Close(); err == nil {
		err = cerr
	}
	return records, rawBytes, err
}

// writeRun writes one sorted partition run, applying the combiner when
// configured. On error the partial run file is removed.
func (b *mapBuffer) writeRun(name string, partition int, entries []bufEntry) (segment, error) {
	sink, err := newSegmentSink(b.job, b.fs, name)
	if err != nil {
		return segment{}, err
	}
	w := sink.w

	if b.job.NewCombiner != nil {
		span := b.job.Tracer.Start(obs.KindCombine, name, obs.Int("records_in", int64(len(entries))))
		err = b.combineRun(partition, entries, w)
		if err == nil {
			span.End(obs.Int("records_out", w.Records()))
		} else {
			span.End(obs.Str("outcome", "failed"), obs.Str("err", err.Error()))
		}
	} else {
		for _, e := range entries {
			if err = w.WriteRecord(b.key(e), b.value(e)); err != nil {
				break
			}
		}
	}
	records, rawBytes, err := sink.close(b.job, err)
	if err != nil {
		removeQuiet(b.fs, name)
		return segment{}, err
	}
	return segment{partition: partition, file: name, records: records, rawBytes: rawBytes}, nil
}

// combineRun groups the sorted entries by key and runs the combiner over
// each group, writing its output to w.
func (b *mapBuffer) combineRun(partition int, entries []bufEntry, w *bytesx.Writer) error {
	combiner := b.job.NewCombiner()
	info := &TaskInfo{
		JobName:       b.job.Name,
		Workspace:     b.job.Workspace,
		TaskID:        b.taskID,
		Partition:     partition,
		Attempt:       b.attempt,
		NumPartitions: b.job.NumReduceTasks,
		Partitioner:   b.job.Partitioner,
		KeyCompare:    b.job.KeyCompare,
		GroupCompare:  b.job.GroupCompare,
		Counters:      b.counters,
		FS:            b.fs,
		Tracer:        b.job.Tracer,
	}
	out := EmitterFunc(func(k, v []byte) error {
		b.counters.combineOutRecords.Add(1)
		return w.WriteRecord(k, v)
	})
	if err := combiner.Setup(info, out); err != nil {
		return err
	}
	cmp := b.job.KeyCompare
	for start := 0; start < len(entries); {
		end := start
		key := b.key(entries[start])
		for end < len(entries) && cmp(b.key(entries[end]), key) == 0 {
			end++
		}
		b.counters.combineInRecords.Add(int64(end - start))
		group := entries[start:end]
		i := 0
		vi := valueIterFunc(func() ([]byte, bool) {
			if i >= len(group) {
				return nil, false
			}
			v := b.value(group[i])
			i++
			return v, true
		})
		if err := combiner.Reduce(key, vi, out); err != nil {
			return err
		}
		start = end
	}
	return combiner.Cleanup(out)
}

type valueIterFunc func() ([]byte, bool)

func (f valueIterFunc) Next() ([]byte, bool) { return f() }

// finish spills any buffered records, releases the pooled buffers, and
// merges each partition's spill segments into a single map output
// segment, mirroring Hadoop's final on-disk merge. Per-partition merges
// are independent and run under the spill-parallelism bound. With a
// single spill the spill files are the output.
func (b *mapBuffer) finish() ([]segment, error) {
	if err := b.spill(); err != nil {
		return nil, err
	}
	b.release()
	if b.spills <= 1 {
		return b.segs, nil
	}
	byPart := make(map[int][]segment)
	for _, s := range b.segs {
		byPart[s.partition] = append(byPart[s.partition], s)
	}
	parts := make([]int, 0, len(byPart))
	for part := range byPart {
		parts = append(parts, part)
	}
	sort.Ints(parts)
	// Hadoop applies the combiner during the final merge only when
	// enough spills occurred (min.num.spills.for.combine, default 3).
	useCombiner := b.job.NewCombiner != nil && b.spills >= 3
	out := make([]segment, len(parts))
	err := runPool(context.Background(), b.spillWorkers(len(parts)), len(parts), func(_ context.Context, i int) error {
		part := parts[i]
		merged, err := mergeSegments(b.job, b.fs, b.counters,
			fmt.Sprintf("%s/out.p%04d", b.dir, part),
			part, byPart[part], useCombiner, b.taskID, true)
		if err != nil {
			return err
		}
		out[i] = merged
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// openSegment opens a segment file for sorted streaming, verifying the
// CRC32C framing as it reads unless the job disabled checksums — every
// local merge read re-checks integrity, not just the shuffle fetch.
func openSegment(job *Job, fs iokit.FS, seg segment) (recordStream, error) {
	f, err := fs.Open(seg.file)
	if err != nil {
		return nil, err
	}
	var (
		ck   *checksumReader
		base io.Reader = f
	)
	if !job.DisableChecksums {
		ck = newChecksumReader(job, f)
		base = ck
	}
	cr, err := job.Codec.NewReader(base)
	if err != nil {
		if ck != nil {
			ck.release()
		}
		f.Close()
		return nil, err
	}
	rd := getRecordReader(job, cr)
	return &readerStream{r: rd, close: func() error {
		putRecordReader(job, rd)
		if ck != nil {
			ck.release()
		}
		if err := cr.Close(); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}}, nil
}

// removeQuiet best-effort deletes a file, tolerating files that were
// never fully created (e.g. a MemFS file whose handle never closed).
func removeQuiet(fs iokit.FS, name string) {
	_ = fs.Remove(name)
}

// mergeSegments k-way merges sorted segments of one partition into a new
// segment file, optionally combining key groups. removeInputs deletes
// consumed input files (the map-side behaviour); reduce-side merges keep
// them when task retries are enabled so a retried attempt can redo the
// merge from intact files. When the input count exceeds the job's merge
// factor, intermediate passes reduce it first (Hadoop's multi-pass
// merge), each pass consuming the smallest candidates — Hadoop's
// Merger policy — so the bytes re-read per extra pass are minimized.
// Intermediate pass files are internal to the merge: they are removed
// once the final pass succeeds, and on any error, so a failed merge
// orphans nothing (the original inputs survive under the reduce-side
// keep-inputs mode, letting a retry redo the merge).
func mergeSegments(job *Job, fs iokit.FS, counters *Counters, name string, partition int, segs []segment, useCombiner bool, taskID int, removeInputs bool) (segment, error) {
	pass := 0
	var intermediates []string
	cleanup := func() {
		for _, f := range intermediates {
			removeQuiet(fs, f)
		}
	}
	for len(segs) > job.MergeFactor {
		if pass == 0 {
			segs = append([]segment(nil), segs...) // callers keep their slices
		}
		// Smallest-first batching; ties break on file name so batch
		// composition — and thus output bytes — stays deterministic.
		sort.SliceStable(segs, func(i, j int) bool {
			if segs[i].rawBytes != segs[j].rawBytes {
				return segs[i].rawBytes < segs[j].rawBytes
			}
			return segs[i].file < segs[j].file
		})
		batch := segs[:job.MergeFactor]
		rest := segs[job.MergeFactor:]
		interName := fmt.Sprintf("%s.pass%04d", name, pass)
		pass++
		inter, err := mergeOnce(job, fs, counters, interName, partition, batch, false, taskID, removeInputs)
		if err != nil {
			cleanup()
			return segment{}, err
		}
		intermediates = append(intermediates, interName)
		segs = append(rest, inter)
	}
	final, err := mergeOnce(job, fs, counters, name, partition, segs, useCombiner, taskID, removeInputs)
	if err != nil {
		cleanup()
		return segment{}, err
	}
	// Pass files already consumed by a removeInputs merge are gone;
	// under keep-inputs mode this is what deletes them.
	cleanup()
	return final, nil
}

// mergeOnce merges segs into one output segment. Every error path
// closes all still-open input streams and removes the partial output,
// so a failed merge leaks neither file handles nor orphan files.
func mergeOnce(job *Job, fs iokit.FS, counters *Counters, name string, partition int, segs []segment, useCombiner bool, taskID int, removeInputs bool) (seg segment, err error) {
	streams := make([]recordStream, 0, len(segs))
	defer func() {
		if err != nil {
			// Streams exhausted to EOF have closed themselves; close the
			// rest and drop whatever partial output exists.
			for _, st := range streams {
				closeRecordStream(st)
			}
			removeQuiet(fs, name)
		}
	}()
	for _, s := range segs {
		st, oerr := openSegment(job, fs, s)
		if oerr != nil {
			err = oerr
			return segment{}, err
		}
		streams = append(streams, st)
	}
	merged, err := newMergeIter(streams, job.KeyCompare)
	if err != nil {
		return segment{}, err
	}

	sink, err := newSegmentSink(job, fs, name)
	if err != nil {
		return segment{}, err
	}
	w := sink.w

	if useCombiner {
		span := job.Tracer.Start(obs.KindCombine, name)
		err = combineMerged(job, fs, counters, partition, merged, w, taskID)
		if err == nil {
			span.End(obs.Int("records_out", w.Records()))
		} else {
			span.End(obs.Str("outcome", "failed"), obs.Str("err", err.Error()))
		}
	} else {
		for {
			k, v, nerr := merged.next()
			if nerr == io.EOF {
				break
			}
			if nerr != nil {
				err = nerr
				break
			}
			if err = w.WriteRecord(k, v); err != nil {
				break
			}
		}
	}
	records, rawBytes, err := sink.close(job, err)
	if err != nil {
		return segment{}, err
	}
	if removeInputs {
		for _, s := range segs {
			if err = fs.Remove(s.file); err != nil {
				return segment{}, err
			}
		}
	}
	return segment{partition: partition, file: name, records: records, rawBytes: rawBytes}, nil
}

// combineMerged runs the combiner over key groups of a merged stream.
func combineMerged(job *Job, fs iokit.FS, counters *Counters, partition int, merged *mergeIter, w *bytesx.Writer, taskID int) error {
	combiner := job.NewCombiner()
	info := &TaskInfo{
		JobName:       job.Name,
		Workspace:     job.Workspace,
		TaskID:        taskID,
		Partition:     partition,
		NumPartitions: job.NumReduceTasks,
		Partitioner:   job.Partitioner,
		KeyCompare:    job.KeyCompare,
		GroupCompare:  job.GroupCompare,
		Counters:      counters,
		FS:            fs,
		Tracer:        job.Tracer,
	}
	out := EmitterFunc(func(k, v []byte) error {
		counters.combineOutRecords.Add(1)
		return w.WriteRecord(k, v)
	})
	if err := combiner.Setup(info, out); err != nil {
		return err
	}
	grouped := newGroupedIter(merged, job.KeyCompare)
	for {
		key, ok, err := grouped.nextGroup()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		vi := grouped.groupValues(key)
		counting := valueIterFunc(func() ([]byte, bool) {
			v, ok := vi.Next()
			if ok {
				counters.combineInRecords.Add(1)
			}
			return v, ok
		})
		if err := combiner.Reduce(key, counting, out); err != nil {
			return err
		}
		if err := vi.drain(); err != nil {
			return err
		}
	}
	return combiner.Cleanup(out)
}
