package mr

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// Segment integrity framing. Every spill, merge, and map-output segment
// is written as a sequence of CRC32C-protected blocks:
//
//	uvarint(len+1) | crc32c (4 bytes, little-endian) | payload
//
// terminated by a single zero byte (len+1 == 0 never occurs for a real
// block, so the terminator is unambiguous). The framing wraps the
// codec-compressed stream — it is the outermost layer on disk — so the
// same bytes a local merge verifies are what the shuffle serves over
// TCP, and a fetcher can verify them without decompressing. A corrupt,
// truncated, or trailing-garbage stream surfaces as ErrIntegrity, which
// the engine classifies as transient: local reads retry the attempt,
// and cluster fetches feed the unreachable-source blacklist and the
// DepLostError re-execution path instead of poisoning reduce output.
// Job.DisableChecksums turns the framing off for byte-identical A/B
// baselines against the historical on-disk layout.

// ErrIntegrity marks structurally corrupt segment data: a bad frame
// length, a checksum mismatch, a truncated frame, or trailing bytes
// after the stream terminator. Underlying I/O errors (e.g. injected
// faults) pass through unwrapped.
var ErrIntegrity = errors.New("mr: segment integrity violation")

// CounterFetchIntegrity is the extra counter incremented once per fetch
// attempt that failed checksum verification.
const CounterFetchIntegrity = "mr.fetchIntegrityFaults"

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

const (
	// checksumBlockSize is the writer's payload size per frame, matching
	// the pooled copy buffers so a frame body always fits one.
	checksumBlockSize = copyBufSize
	// maxChecksumBlock bounds frame lengths the parser accepts, so a
	// corrupt length prefix cannot force a huge allocation.
	maxChecksumBlock = 1 << 20
)

// integrityTruncated classifies a mid-frame read error: EOF means the
// stream ended inside a frame (truncation → ErrIntegrity); anything
// else is a real I/O error and passes through unwrapped so fault
// classification (e.g. iokit.ErrInjected) still sees it.
func integrityTruncated(err error, what string) error {
	if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
		return fmt.Errorf("%w: truncated %s", ErrIntegrity, what)
	}
	return err
}

// checksumWriter frames its input into CRC32C blocks. Close writes the
// pending block and the stream terminator; it never closes the
// underlying writer.
type checksumWriter struct {
	w      io.Writer
	job    *Job
	buf    []byte // pooled block buffer, filled to checksumBlockSize
	closed bool
}

func newChecksumWriter(job *Job, w io.Writer) *checksumWriter {
	return &checksumWriter{w: w, job: job, buf: getCopyBuf(job)[:0]}
}

// Write implements io.Writer, accumulating p into full blocks.
func (c *checksumWriter) Write(p []byte) (int, error) {
	total := len(p)
	for len(p) > 0 {
		n := checksumBlockSize - len(c.buf)
		if n > len(p) {
			n = len(p)
		}
		c.buf = append(c.buf, p[:n]...)
		p = p[n:]
		if len(c.buf) == checksumBlockSize {
			if err := c.flushBlock(); err != nil {
				return 0, err
			}
		}
	}
	return total, nil
}

func (c *checksumWriter) flushBlock() error {
	if len(c.buf) == 0 {
		return nil
	}
	var hdr [binary.MaxVarintLen64 + 4]byte
	n := binary.PutUvarint(hdr[:], uint64(len(c.buf))+1)
	binary.LittleEndian.PutUint32(hdr[n:], crc32.Checksum(c.buf, castagnoli))
	if _, err := c.w.Write(hdr[:n+4]); err != nil {
		return err
	}
	if _, err := c.w.Write(c.buf); err != nil {
		return err
	}
	c.buf = c.buf[:0]
	return nil
}

// Close flushes the pending block and writes the terminator. Idempotent;
// returns the pooled buffer either way.
func (c *checksumWriter) Close() error {
	if c.closed {
		return nil
	}
	c.closed = true
	err := c.flushBlock()
	if err == nil {
		_, err = c.w.Write([]byte{0})
	}
	putCopyBuf(c.job, c.buf)
	c.buf = nil
	return err
}

// release abandons the writer without emitting anything further — for
// tearing down a sink whose setup failed after the writer was built.
func (c *checksumWriter) release() {
	if c.closed {
		return
	}
	c.closed = true
	putCopyBuf(c.job, c.buf)
	c.buf = nil
}

// checksumReader verifies and strips the CRC32C framing, delivering the
// original payload stream. Any structural fault is sticky and surfaces
// as ErrIntegrity; underlying I/O errors pass through unwrapped.
type checksumReader struct {
	br   byteReader
	job  *Job
	buf  []byte // pooled payload buffer
	pos  int
	n    int
	err  error // sticky
	done bool
}

func newChecksumReader(job *Job, r io.Reader) *checksumReader {
	return &checksumReader{br: byteReader{r: r}, job: job, buf: getCopyBuf(job)}
}

// Read implements io.Reader.
func (c *checksumReader) Read(p []byte) (int, error) {
	if c.err != nil {
		return 0, c.err
	}
	for c.pos >= c.n {
		if err := c.fill(); err != nil {
			c.err = err
			return 0, err
		}
	}
	n := copy(p, c.buf[c.pos:c.n])
	c.pos += n
	return n, nil
}

// readFrameLen parses the frame-length uvarint, classifying overflow as
// corruption (binary.ReadUvarint's overflow error is untyped) and EOF
// as truncation.
func (c *checksumReader) readFrameLen() (uint64, error) {
	var x uint64
	var shift uint
	for i := 0; ; i++ {
		b, err := c.br.ReadByte()
		if err != nil {
			return 0, integrityTruncated(err, "frame header")
		}
		if i == binary.MaxVarintLen64-1 && b > 1 {
			return 0, fmt.Errorf("%w: frame header overflow", ErrIntegrity)
		}
		if b < 0x80 {
			return x | uint64(b)<<shift, nil
		}
		if i == binary.MaxVarintLen64-1 {
			return 0, fmt.Errorf("%w: frame header overflow", ErrIntegrity)
		}
		x |= uint64(b&0x7f) << shift
		shift += 7
	}
}

// fill reads and verifies the next frame into c.buf.
func (c *checksumReader) fill() error {
	lenPlus, err := c.readFrameLen()
	if err != nil {
		return err
	}
	if lenPlus == 0 {
		// Terminator. A well-formed stream ends exactly here; any
		// trailing byte is corruption a plain EOF check would miss.
		c.done = true
		var one [1]byte
		switch _, err := io.ReadFull(c.br.r, one[:]); {
		case err == nil:
			return fmt.Errorf("%w: trailing data after segment terminator", ErrIntegrity)
		case errors.Is(err, io.EOF):
			return io.EOF
		default:
			return err
		}
	}
	size := lenPlus - 1
	if size > maxChecksumBlock {
		return fmt.Errorf("%w: frame of %d bytes exceeds limit %d", ErrIntegrity, size, maxChecksumBlock)
	}
	var crcBuf [4]byte
	if _, err := io.ReadFull(c.br.r, crcBuf[:]); err != nil {
		return integrityTruncated(err, "frame checksum")
	}
	want := binary.LittleEndian.Uint32(crcBuf[:])
	if int(size) > cap(c.buf) {
		c.buf = make([]byte, size)
	}
	payload := c.buf[:size]
	if _, err := io.ReadFull(c.br.r, payload); err != nil {
		return integrityTruncated(err, "frame payload")
	}
	if got := crc32.Checksum(payload, castagnoli); got != want {
		return fmt.Errorf("%w: checksum mismatch (got %08x, want %08x)", ErrIntegrity, got, want)
	}
	c.buf = c.buf[:cap(c.buf)]
	c.pos, c.n = 0, int(size)
	return nil
}

// release returns the pooled buffer. The reader is unusable afterwards.
func (c *checksumReader) release() {
	if cap(c.buf) == copyBufSize {
		putCopyBuf(c.job, c.buf)
	}
	c.buf = nil
	c.err = errors.New("mr: checksum reader released")
}

// NewIntegrityVerifier wraps a framed segment stream in a verifying
// pass-through: the returned reader parses and CRC-checks each frame
// but emits the raw bytes unchanged (headers and terminator included),
// so a fetched segment lands on local disk still framed and a later
// local read re-verifies it. No byte of a frame is emitted before the
// whole frame verified, a premature EOF (missing terminator) and
// trailing data both surface as ErrIntegrity, and underlying I/O errors
// pass through unwrapped. The cluster worker's fetch path and the
// in-process shuffle both use it.
func NewIntegrityVerifier(r io.Reader) io.Reader {
	return &verifyReader{r: r}
}

type verifyReader struct {
	r    io.Reader
	out  []byte // verified raw bytes of the current frame
	pos  int
	err  error // sticky
	done bool  // terminator seen
	one  [1]byte
}

// Read implements io.Reader.
func (v *verifyReader) Read(p []byte) (int, error) {
	if v.err != nil {
		return 0, v.err
	}
	for v.pos >= len(v.out) {
		if err := v.fill(); err != nil {
			v.err = err
			return 0, err
		}
	}
	n := copy(p, v.out[v.pos:])
	v.pos += n
	return n, nil
}

// fill parses and verifies one frame, capturing its raw bytes into
// v.out for pass-through delivery.
func (v *verifyReader) fill() error {
	v.out = v.out[:0]
	v.pos = 0
	// Uvarint header, read byte-by-byte so the raw bytes are captured.
	var lenPlus uint64
	var shift uint
	for i := 0; ; i++ {
		if _, err := io.ReadFull(v.r, v.one[:]); err != nil {
			if i == 0 && errors.Is(err, io.EOF) {
				if v.done {
					return io.EOF
				}
				return fmt.Errorf("%w: segment ended without terminator", ErrIntegrity)
			}
			return integrityTruncated(err, "frame header")
		}
		if i >= binary.MaxVarintLen64 {
			return fmt.Errorf("%w: frame header overflow", ErrIntegrity)
		}
		b := v.one[0]
		v.out = append(v.out, b)
		if b < 0x80 {
			lenPlus |= uint64(b) << shift
			break
		}
		lenPlus |= uint64(b&0x7f) << shift
		shift += 7
	}
	if v.done {
		return fmt.Errorf("%w: trailing data after segment terminator", ErrIntegrity)
	}
	if lenPlus == 0 {
		// Terminator: deliver the zero byte; the next fill expects EOF.
		v.done = true
		return nil
	}
	size := lenPlus - 1
	if size > maxChecksumBlock {
		return fmt.Errorf("%w: frame of %d bytes exceeds limit %d", ErrIntegrity, size, maxChecksumBlock)
	}
	hdrLen := len(v.out)
	need := int(size) + 4
	if cap(v.out) < hdrLen+need {
		grown := make([]byte, hdrLen, hdrLen+need)
		copy(grown, v.out)
		v.out = grown
	}
	frame := v.out[hdrLen : hdrLen+need]
	if _, err := io.ReadFull(v.r, frame); err != nil {
		return integrityTruncated(err, "frame payload")
	}
	want := binary.LittleEndian.Uint32(frame[:4])
	if got := crc32.Checksum(frame[4:], castagnoli); got != want {
		return fmt.Errorf("%w: checksum mismatch (got %08x, want %08x)", ErrIntegrity, got, want)
	}
	v.out = v.out[:hdrLen+need]
	return nil
}
