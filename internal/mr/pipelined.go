package mr

import (
	"context"
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/sched"
)

// MapTaskName / FetchTaskName / ReduceTaskName are the canonical task
// names of the engine's task graph, shared with Result.Timeline, trace
// spans, and the cluster runtime's coordinator DAG.
func MapTaskName(i int) string      { return fmt.Sprintf("map/%d", i) }
func FetchTaskName(p, i int) string { return fmt.Sprintf("fetch/%d/%d", p, i) }
func ReduceTaskName(p int) string   { return fmt.Sprintf("reduce/%d", p) }

func mapTaskName(i int) string      { return MapTaskName(i) }
func fetchTaskName(p, i int) string { return FetchTaskName(p, i) }
func reduceTaskName(p int) string   { return ReduceTaskName(p) }

// mapOut is a map task's committed value.
type mapOut struct {
	segs []segment
	dur  time.Duration
}

// runPipelined executes the job as an event-driven task graph:
//
//	map/i  ──►  fetch/p/i  ──►  reduce/p
//
// One fetch task exists per (reduce partition, map task); it becomes
// runnable the moment its map task commits, so shuffle fetches overlap
// still-running map tasks instead of waiting for a global map barrier.
// A reduce task merges once all of its partition's fetches are local.
// Task failures retry with backoff when transient and the job's attempt
// budget allows; straggling map attempts may be speculatively
// re-executed when Job.Speculative is set.
func runPipelined(ctx context.Context, env *runEnv) (*Result, error) {
	j := env.job
	nMap := len(env.splits)
	nRed := j.NumReduceTasks
	_, localTransport := env.transport.(LocalTransport)

	// shufflePer is written concurrently by a partition's fetch tasks.
	shufflePer := make([]int64, nRed)

	tasks := make([]sched.Task, 0, nMap+nMap*nRed+nRed)
	for i := 0; i < nMap; i++ {
		i := i
		tasks = append(tasks, sched.Task{
			Name:         mapTaskName(i),
			Group:        TaskGroupMap,
			Speculatable: j.Speculative,
			Run: func(ctx context.Context, tc *sched.TaskContext) (any, error) {
				t0 := time.Now()
				segs, err := runMapTask(ctx, j, env.fs, env.counters, i, tc.Attempt, env.splits[i])
				if err != nil {
					return nil, err
				}
				return mapOut{segs: segs, dur: time.Since(t0)}, nil
			},
		})
	}
	for p := 0; p < nRed; p++ {
		for i := 0; i < nMap; i++ {
			if j.AlignedInput && i != p {
				// Aligned jobs route map i's output wholly to partition
				// i (enforced in runMapTask), so off-diagonal fetch
				// tasks would only ever carry empty segment lists —
				// skip them and the all-to-all edge set collapses to
				// one pass-through edge per partition.
				continue
			}
			p, i := p, i
			tasks = append(tasks, sched.Task{
				Name:  fetchTaskName(p, i),
				Group: TaskGroupFetch,
				Deps:  []string{mapTaskName(i)},
				Run: func(ctx context.Context, tc *sched.TaskContext) (any, error) {
					t0 := time.Now()
					defer func() { env.counters.reduceTaskNs.Add(time.Since(t0).Nanoseconds()) }()
					var segs []segment
					for _, s := range tc.Dep(mapTaskName(i)).(mapOut).segs {
						if s.partition == p {
							segs = append(segs, s)
						}
					}
					if len(segs) == 0 {
						return []segment(nil), nil
					}
					if err := accountShuffle(env.counters, env.fs, segs); err != nil {
						return nil, err
					}
					var flow int64
					for _, s := range segs {
						size, err := j.FS.Size(s.file)
						if err != nil {
							return nil, err
						}
						flow += size
					}
					atomic.AddInt64(&shufflePer[p], flow)
					if !localTransport {
						prefix := fmt.Sprintf("%s/r%04d/m%04d.a%d.fetch", j.Workspace, p, i, tc.Attempt)
						fetched, err := fetchSegments(ctx, env.fs, env.transport, j, env.counters, p, prefix, segs)
						if err != nil {
							return nil, err
						}
						segs = fetched
					}
					return segs, nil
				},
			})
		}
	}
	for p := 0; p < nRed; p++ {
		p := p
		var deps []string
		if j.AlignedInput {
			deps = []string{fetchTaskName(p, p)}
		} else {
			deps = make([]string, nMap)
			for i := range deps {
				deps[i] = fetchTaskName(p, i)
			}
		}
		fetchDeps := deps
		tasks = append(tasks, sched.Task{
			Name:  reduceTaskName(p),
			Group: TaskGroupReduce,
			Deps:  deps,
			Run: func(ctx context.Context, tc *sched.TaskContext) (any, error) {
				t0 := time.Now()
				defer func() { env.counters.reduceTaskNs.Add(time.Since(t0).Nanoseconds()) }()
				// Assemble segments in map-task order so the k-way merge
				// sees the same stream order as the barrier engine and
				// the two produce byte-identical output.
				var segs []segment
				for _, dep := range fetchDeps {
					segs = append(segs, tc.Dep(dep).([]segment)...)
				}
				return reduceMerge(ctx, j, env.fs, env.counters, p, tc.Attempt, segs)
			},
		})
	}

	cfg := sched.Config{
		Workers:     j.Parallelism,
		MaxAttempts: j.MaxTaskAttempts,
		Backoff:     j.RetryBackoff,
		Speculate:   j.Speculative,
		Tracer:      j.Tracer,
	}
	if j.MaxTaskAttempts > 1 {
		cfg.Retryable = isTransientErr
	}
	report, err := sched.Run(ctx, tasks, cfg)
	if err != nil {
		return nil, err
	}

	mapTimes := make([]time.Duration, nMap)
	for i := 0; i < nMap; i++ {
		mapTimes[i] = report.Value(mapTaskName(i)).(mapOut).dur
	}
	output := make([][]Record, nRed)
	reduceTimes := make([]time.Duration, nRed)
	for p := 0; p < nRed; p++ {
		output[p] = report.Value(reduceTaskName(p)).([]Record)
		reduceTimes[p] = report.TaskDuration(reduceTaskName(p))
	}
	flows := make([]int64, nRed)
	for p := range flows {
		flows[p] = atomic.LoadInt64(&shufflePer[p])
	}
	return &Result{
		Output:              output,
		ShufflePerPartition: flows,
		ReduceTaskTimes:     reduceTimes,
		MapTaskTimes:        mapTimes,
		Timeline:            report.Attempts,
	}, nil
}
