package mr

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/bytesx"
	"repro/internal/codec"
	"repro/internal/iokit"
)

// wordCountJob builds a classic word-count job over lines of text.
func wordCountJob(withCombiner bool) *Job {
	sum := NewReduceFunc(func(key []byte, values ValueIter, out Emitter) error {
		total := 0
		for {
			v, ok := values.Next()
			if !ok {
				break
			}
			n, err := strconv.Atoi(string(v))
			if err != nil {
				return err
			}
			total += n
		}
		return out.Emit(key, []byte(strconv.Itoa(total)))
	})
	job := &Job{
		Name: "wordcount",
		NewMapper: NewMapFunc(func(key, value []byte, out Emitter) error {
			for _, w := range strings.Fields(string(value)) {
				if err := out.Emit([]byte(w), []byte("1")); err != nil {
					return err
				}
			}
			return nil
		}),
		NewReducer:     sum,
		NumReduceTasks: 3,
		Deterministic:  true,
	}
	if withCombiner {
		job.NewCombiner = sum
	}
	return job
}

func lines(ss ...string) []Split {
	var splits []Split
	for _, s := range ss {
		splits = append(splits, &MemSplit{Recs: []Record{{Key: nil, Value: []byte(s)}}})
	}
	return splits
}

func outputMap(t *testing.T, res *Result) map[string]string {
	t.Helper()
	m := make(map[string]string)
	for _, r := range res.SortedOutput() {
		if _, dup := m[string(r.Key)]; dup {
			t.Fatalf("duplicate output key %q", r.Key)
		}
		m[string(r.Key)] = string(r.Value)
	}
	return m
}

func TestWordCountEndToEnd(t *testing.T) {
	for _, combiner := range []bool{false, true} {
		t.Run(fmt.Sprintf("combiner=%v", combiner), func(t *testing.T) {
			res, err := Run(wordCountJob(combiner), lines(
				"the quick brown fox",
				"the lazy dog and the quick cat",
				"dog eats fox",
			))
			if err != nil {
				t.Fatal(err)
			}
			got := outputMap(t, res)
			want := map[string]string{
				"the": "3", "quick": "2", "brown": "1", "fox": "2",
				"lazy": "1", "dog": "2", "and": "1", "cat": "1", "eats": "1",
			}
			if len(got) != len(want) {
				t.Fatalf("got %d keys, want %d: %v", len(got), len(want), got)
			}
			for k, v := range want {
				if got[k] != v {
					t.Errorf("%q = %q, want %q", k, got[k], v)
				}
			}
			if res.Stats.MapInputRecords != 3 {
				t.Errorf("MapInputRecords = %d", res.Stats.MapInputRecords)
			}
			if res.Stats.MapOutputRecords != 14 {
				t.Errorf("MapOutputRecords = %d", res.Stats.MapOutputRecords)
			}
			if combiner && res.Stats.CombineInputRecords == 0 {
				t.Error("combiner never ran")
			}
			if res.Stats.ShuffleBytes <= 0 || res.Stats.MapOutputBytes <= 0 {
				t.Errorf("byte counters: %+v", res.Stats)
			}
		})
	}
}

func TestReduceKeysSortedWithinPartition(t *testing.T) {
	var mu struct {
		keysByPart map[int][]string
	}
	mu.keysByPart = map[int][]string{}
	job := &Job{
		NewMapper: NewMapFunc(func(key, value []byte, out Emitter) error {
			return out.Emit(value, []byte("x"))
		}),
		NewReducer: func() Reducer {
			return &orderRecordingReducer{record: func(part int, key string) {
				mu.keysByPart[part] = append(mu.keysByPart[part], key)
			}}
		},
		NumReduceTasks: 2,
		Parallelism:    1, // serialize so the shared map is safe
	}
	var recs []Record
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 500; i++ {
		recs = append(recs, Record{Value: []byte(fmt.Sprintf("k%04d", rng.Intn(200)))})
	}
	if _, err := Run(job, SplitRecords(recs, 5)); err != nil {
		t.Fatal(err)
	}
	for part, keys := range mu.keysByPart {
		if !sort.StringsAreSorted(keys) {
			t.Errorf("partition %d keys not sorted: %v", part, keys)
		}
		seen := map[string]bool{}
		for _, k := range keys {
			if seen[k] {
				t.Errorf("partition %d: key %q reduced twice", part, k)
			}
			seen[k] = true
		}
	}
}

type orderRecordingReducer struct {
	ReducerBase
	part   int
	record func(part int, key string)
}

func (r *orderRecordingReducer) Setup(info *TaskInfo, _ Emitter) error {
	r.part = info.Partition
	return nil
}

func (r *orderRecordingReducer) Reduce(key []byte, values ValueIter, out Emitter) error {
	r.record(r.part, string(key))
	return nil
}

func TestSpillsProduceSameResult(t *testing.T) {
	text := make([]string, 50)
	rng := rand.New(rand.NewSource(3))
	for i := range text {
		var words []string
		for j := 0; j < 100; j++ {
			words = append(words, fmt.Sprintf("w%03d", rng.Intn(300)))
		}
		text[i] = strings.Join(words, " ")
	}
	baseline, err := Run(wordCountJob(false), lines(text...))
	if err != nil {
		t.Fatal(err)
	}
	spillJob := wordCountJob(false)
	spillJob.SortBufferBytes = 256 // force many spills
	spillJob.MergeFactor = 2       // force multi-pass merges
	spilled, err := Run(spillJob, lines(text...))
	if err != nil {
		t.Fatal(err)
	}
	if spilled.Stats.Spills <= baseline.Stats.Spills {
		t.Errorf("expected more spills: %d vs %d", spilled.Stats.Spills, baseline.Stats.Spills)
	}
	if got, want := outputMap(t, spilled), outputMap(t, baseline); len(got) != len(want) {
		t.Fatalf("output sizes differ: %d vs %d", len(got), len(want))
	} else {
		for k, v := range want {
			if got[k] != v {
				t.Errorf("%q = %q, want %q", k, got[k], v)
			}
		}
	}
}

func TestCombinerReducesShuffle(t *testing.T) {
	// One split with heavy key repetition: combining shrinks the shuffle.
	line := strings.Repeat("alpha beta ", 2000)
	plain, err := Run(wordCountJob(false), lines(line))
	if err != nil {
		t.Fatal(err)
	}
	combined, err := Run(wordCountJob(true), lines(line))
	if err != nil {
		t.Fatal(err)
	}
	if combined.Stats.ShuffleBytes*10 > plain.Stats.ShuffleBytes {
		t.Errorf("combiner shuffle %d not <10%% of plain %d",
			combined.Stats.ShuffleBytes, plain.Stats.ShuffleBytes)
	}
	if got := outputMap(t, combined)["alpha"]; got != "2000" {
		t.Errorf("alpha = %s", got)
	}
}

func TestCodecsEndToEnd(t *testing.T) {
	for _, name := range codec.Names() {
		t.Run(name, func(t *testing.T) {
			c, err := codec.ByName(name)
			if err != nil {
				t.Fatal(err)
			}
			job := wordCountJob(false)
			job.Codec = c
			job.SortBufferBytes = 512 // exercise compressed spills + merges
			res, err := Run(job, lines(strings.Repeat("x y z ", 500)))
			if err != nil {
				t.Fatal(err)
			}
			got := outputMap(t, res)
			if got["x"] != "500" || got["y"] != "500" || got["z"] != "500" {
				t.Errorf("bad counts: %v", got)
			}
		})
	}
}

func TestCompressionShrinksShuffle(t *testing.T) {
	job := wordCountJob(false)
	plain, err := Run(job, lines(strings.Repeat("compressible ", 3000)))
	if err != nil {
		t.Fatal(err)
	}
	gz := wordCountJob(false)
	gz.Codec = codec.Gzip{}
	zipped, err := Run(gz, lines(strings.Repeat("compressible ", 3000)))
	if err != nil {
		t.Fatal(err)
	}
	if zipped.Stats.ShuffleBytes >= plain.Stats.ShuffleBytes/5 {
		t.Errorf("gzip shuffle %d not <20%% of plain %d",
			zipped.Stats.ShuffleBytes, plain.Stats.ShuffleBytes)
	}
	// Map output (pre-codec) is unchanged by compression.
	if zipped.Stats.MapOutputBytes != plain.Stats.MapOutputBytes {
		t.Errorf("MapOutputBytes changed under codec: %d vs %d",
			zipped.Stats.MapOutputBytes, plain.Stats.MapOutputBytes)
	}
}

func TestGroupingComparator(t *testing.T) {
	// Secondary sort: keys are "primary#secondary"; grouping compares the
	// primary part only, so one Reduce call sees all secondaries of a
	// primary in full key order.
	primary := func(k []byte) []byte {
		if i := bytes.IndexByte(k, '#'); i >= 0 {
			return k[:i]
		}
		return k
	}
	job := &Job{
		NewMapper: NewMapFunc(func(key, value []byte, out Emitter) error {
			return out.Emit(value, value)
		}),
		NewReducer: NewReduceFunc(func(key []byte, values ValueIter, out Emitter) error {
			var got []string
			for {
				v, ok := values.Next()
				if !ok {
					break
				}
				got = append(got, string(v))
			}
			return out.Emit(primary(key), []byte(strings.Join(got, ",")))
		}),
		GroupCompare: func(a, b []byte) int {
			return bytes.Compare(primary(a), primary(b))
		},
		Partitioner: PartitionerFunc(func(key []byte, n int) int {
			return HashPartitioner{}.Partition(primary(key), n)
		}),
		NumReduceTasks: 3,
	}
	recs := []Record{
		{Value: []byte("b#2")}, {Value: []byte("a#3")}, {Value: []byte("a#1")},
		{Value: []byte("b#1")}, {Value: []byte("a#2")}, {Value: []byte("c#9")},
	}
	res, err := Run(job, SplitRecords(recs, 2))
	if err != nil {
		t.Fatal(err)
	}
	got := outputMap(t, res)
	want := map[string]string{"a": "a#1,a#2,a#3", "b": "b#1,b#2", "c": "c#9"}
	for k, v := range want {
		if got[k] != v {
			t.Errorf("%q = %q, want %q", k, got[k], v)
		}
	}
}

func TestReducerMayNotDrainValues(t *testing.T) {
	job := &Job{
		NewMapper: NewMapFunc(func(key, value []byte, out Emitter) error {
			return out.Emit(value, value)
		}),
		NewReducer: NewReduceFunc(func(key []byte, values ValueIter, out Emitter) error {
			// Consume only the first value per group.
			values.Next()
			return out.Emit(key, []byte("seen"))
		}),
		NumReduceTasks: 2,
	}
	var recs []Record
	for i := 0; i < 100; i++ {
		recs = append(recs, Record{Value: []byte(fmt.Sprintf("k%d", i%10))})
	}
	res, err := Run(job, SplitRecords(recs, 4))
	if err != nil {
		t.Fatal(err)
	}
	if got := len(outputMap(t, res)); got != 10 {
		t.Errorf("got %d distinct keys, want 10", got)
	}
}

func TestErrorsPropagate(t *testing.T) {
	boom := errors.New("boom")
	cases := map[string]*Job{
		"mapper": {
			NewMapper:  NewMapFunc(func(_, _ []byte, _ Emitter) error { return boom }),
			NewReducer: NewReduceFunc(func(_ []byte, _ ValueIter, _ Emitter) error { return nil }),
		},
		"reducer": {
			NewMapper:  NewMapFunc(func(k, v []byte, out Emitter) error { return out.Emit(v, v) }),
			NewReducer: NewReduceFunc(func(_ []byte, _ ValueIter, _ Emitter) error { return boom }),
		},
		"partitioner": {
			NewMapper:   NewMapFunc(func(k, v []byte, out Emitter) error { return out.Emit(v, v) }),
			NewReducer:  NewReduceFunc(func(_ []byte, _ ValueIter, _ Emitter) error { return nil }),
			Partitioner: PartitionerFunc(func([]byte, int) int { return -1 }),
		},
	}
	for name, job := range cases {
		t.Run(name, func(t *testing.T) {
			_, err := Run(job, lines("x"))
			if err == nil {
				t.Fatal("expected error")
			}
			if name != "partitioner" && !errors.Is(err, boom) {
				t.Errorf("error chain lost: %v", err)
			}
		})
	}
}

func TestInvalidJob(t *testing.T) {
	if _, err := Run(&Job{}, nil); err == nil {
		t.Error("missing mapper should fail")
	}
	if _, err := Run(&Job{NewMapper: NewMapFunc(func(_, _ []byte, _ Emitter) error { return nil })}, nil); err == nil {
		t.Error("missing reducer should fail")
	}
}

func TestEmptyInput(t *testing.T) {
	res, err := Run(wordCountJob(false), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.SortedOutput()) != 0 {
		t.Error("expected no output")
	}
}

func TestDiscardOutput(t *testing.T) {
	job := wordCountJob(false)
	job.DiscardOutput = true
	res, err := Run(job, lines("a b c"))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.SortedOutput()) != 0 {
		t.Error("DiscardOutput should suppress collection")
	}
	if res.Stats.ReduceOutputRecords != 3 {
		t.Errorf("ReduceOutputRecords = %d", res.Stats.ReduceOutputRecords)
	}
}

func TestOSFSBacked(t *testing.T) {
	job := wordCountJob(true)
	job.FS = iokit.NewOSFS(t.TempDir())
	job.SortBufferBytes = 512
	res, err := Run(job, lines(strings.Repeat("disk spill test ", 300)))
	if err != nil {
		t.Fatal(err)
	}
	if got := outputMap(t, res)["spill"]; got != "300" {
		t.Errorf("spill = %s", got)
	}
	if res.Stats.DiskWriteBytes <= 0 || res.Stats.DiskReadBytes <= 0 {
		t.Errorf("disk counters: %+v", res.Stats)
	}
}

// TestEngineAgainstReference runs randomized identity-grouping jobs and
// checks every (key -> multiset of values) against an in-memory
// reference group-by, across buffer/merge/codec configurations.
func TestEngineAgainstReference(t *testing.T) {
	configs := []struct {
		name   string
		mutate func(*Job)
	}{
		{"default", func(*Job) {}},
		{"tinyBuffer", func(j *Job) { j.SortBufferBytes = 128 }},
		{"tinyMerge", func(j *Job) { j.SortBufferBytes = 128; j.MergeFactor = 2 }},
		{"gzip", func(j *Job) { j.Codec = codec.Gzip{}; j.SortBufferBytes = 256 }},
		{"snappy", func(j *Job) { j.Codec = codec.Snappy{}; j.SortBufferBytes = 256 }},
		{"onePartition", func(j *Job) { j.NumReduceTasks = 1 }},
		{"manyPartitions", func(j *Job) { j.NumReduceTasks = 13 }},
	}
	for _, cfg := range configs {
		t.Run(cfg.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(99))
			want := map[string][]string{}
			var recs []Record
			for i := 0; i < 400; i++ {
				k := fmt.Sprintf("key%02d", rng.Intn(40))
				v := fmt.Sprintf("val%04d", rng.Intn(10000))
				want[k] = append(want[k], v)
				recs = append(recs, Record{Key: []byte(k), Value: []byte(v)})
			}
			job := &Job{
				NewMapper: NewMapFunc(func(key, value []byte, out Emitter) error {
					return out.Emit(key, value)
				}),
				NewReducer: NewReduceFunc(func(key []byte, values ValueIter, out Emitter) error {
					var vs []string
					for {
						v, ok := values.Next()
						if !ok {
							break
						}
						vs = append(vs, string(v))
					}
					sort.Strings(vs)
					return out.Emit(key, []byte(strings.Join(vs, ",")))
				}),
				NumReduceTasks: 4,
			}
			cfg.mutate(job)
			res, err := Run(job, SplitRecords(recs, 7))
			if err != nil {
				t.Fatal(err)
			}
			got := outputMap(t, res)
			if len(got) != len(want) {
				t.Fatalf("got %d keys, want %d", len(got), len(want))
			}
			for k, vs := range want {
				sort.Strings(vs)
				if got[k] != strings.Join(vs, ",") {
					t.Errorf("key %q: got %q want %q", k, got[k], strings.Join(vs, ","))
				}
			}
		})
	}
}

func TestHashPartitionerRange(t *testing.T) {
	p := HashPartitioner{}
	counts := make([]int, 7)
	for i := 0; i < 10000; i++ {
		k := []byte(fmt.Sprintf("key-%d", i))
		part := p.Partition(k, 7)
		if part < 0 || part >= 7 {
			t.Fatalf("partition %d out of range", part)
		}
		counts[part]++
	}
	for i, c := range counts {
		if c < 1000 {
			t.Errorf("partition %d badly balanced: %d/10000", i, c)
		}
	}
}

func TestStatsString(t *testing.T) {
	res, err := Run(wordCountJob(false), lines("a b"))
	if err != nil {
		t.Fatal(err)
	}
	s := res.Stats
	s.Extra = map[string]int64{"custom": 1}
	if !strings.Contains(s.String(), "custom=1") {
		t.Errorf("String() missing extra counter: %s", s.String())
	}
}

func TestCountersExtra(t *testing.T) {
	var c Counters
	c.AddExtra("x", 2)
	c.AddExtra("x", 3)
	if c.Extra("x") != 5 {
		t.Errorf("Extra = %d", c.Extra("x"))
	}
	snap := c.Snapshot()
	if snap.Extra["x"] != 5 {
		t.Errorf("Snapshot extra = %d", snap.Extra["x"])
	}
}

func TestRunPool(t *testing.T) {
	n := 100
	seen := make([]bool, n)
	var mu sync.Mutex
	err := runPool(context.Background(), 8, n, func(_ context.Context, i int) error {
		mu.Lock()
		seen[i] = true
		mu.Unlock()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range seen {
		if !s {
			t.Errorf("index %d never ran", i)
		}
	}
	boom := errors.New("boom")
	err = runPool(context.Background(), 4, 50, func(_ context.Context, i int) error {
		if i == 10 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Errorf("pool error = %v", err)
	}
}

// TestRunPoolCancelsInFlightSiblings: when one task fails, siblings
// already dispatched must observe cancellation through their context
// instead of running to completion.
func TestRunPoolCancelsInFlightSiblings(t *testing.T) {
	boom := errors.New("boom")
	siblingRunning := make(chan struct{})
	var sawCancel atomic.Bool
	err := runPool(context.Background(), 2, 2, func(ctx context.Context, i int) error {
		if i == 1 {
			close(siblingRunning)
			select {
			case <-ctx.Done():
				sawCancel.Store(true)
			case <-time.After(5 * time.Second):
			}
			return nil
		}
		<-siblingRunning // fail only once the sibling is in flight
		return boom
	})
	if !errors.Is(err, boom) {
		t.Errorf("pool error = %v, want boom", err)
	}
	if !sawCancel.Load() {
		t.Error("in-flight sibling never observed cancellation")
	}
}

func TestGenSplit(t *testing.T) {
	s := &GenSplit{Gen: func(emit func(k, v []byte) error) error {
		for i := 0; i < 5; i++ {
			if err := emit(nil, []byte(fmt.Sprintf("v%d", i))); err != nil {
				return err
			}
		}
		return nil
	}}
	n := 0
	if err := s.Records(func(k, v []byte) error { n++; return nil }); err != nil {
		t.Fatal(err)
	}
	if n != 5 {
		t.Errorf("got %d records", n)
	}
}

func TestMergeIterOrder(t *testing.T) {
	mk := func(keys ...string) recordStream {
		i := 0
		return streamFunc(func() ([]byte, []byte, error) {
			if i >= len(keys) {
				return nil, nil, io.EOF
			}
			k := keys[i]
			i++
			return []byte(k), []byte("v"), nil
		})
	}
	m, err := newMergeIter([]recordStream{
		mk("a", "c", "e"), mk("b", "c", "d"), mk(), mk("a"),
	}, bytesx.Bytes)
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for {
		k, _, err := m.next()
		if err != nil {
			break
		}
		got = append(got, string(k))
	}
	want := "a,a,b,c,c,d,e"
	if strings.Join(got, ",") != want {
		t.Errorf("merge order = %s, want %s", strings.Join(got, ","), want)
	}
}

type streamFunc func() ([]byte, []byte, error)

func (f streamFunc) next() ([]byte, []byte, error) { return f() }
