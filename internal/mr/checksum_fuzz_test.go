package mr

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

// FuzzSegmentFrames hammers the CRC32C segment-frame parsers with
// arbitrary bytes: both the stripping reader and the pass-through
// verifier must either succeed (and agree byte-for-byte with a
// re-framed round trip) or fail with a typed error — ErrIntegrity for
// structural corruption — and never panic or silently accept a
// malformed stream.
func FuzzSegmentFrames(f *testing.F) {
	job, err := wordCountJob(false).normalized()
	if err != nil {
		f.Fatal(err)
	}
	frame := func(payload []byte) []byte {
		var buf bytes.Buffer
		cw := newChecksumWriter(job, &buf)
		if _, err := cw.Write(payload); err != nil {
			f.Fatal(err)
		}
		if err := cw.Close(); err != nil {
			f.Fatal(err)
		}
		return buf.Bytes()
	}
	f.Add([]byte{})                                                           // empty input: no terminator
	f.Add([]byte{0})                                                          // bare terminator: valid empty stream
	f.Add(frame([]byte("hello frame")))                                       // valid single frame
	f.Add(frame(bytes.Repeat([]byte{0xAB}, 4096)))                            // valid larger frame
	f.Add(frame([]byte("truncate me"))[:5])                                   // mid-frame cut
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x7F}) // huge length prefix
	f.Add(append(frame([]byte("trail")), 'x'))                                // trailing garbage

	f.Fuzz(func(t *testing.T, data []byte) {
		cr := newChecksumReader(job, bytes.NewReader(data))
		payload, rerr := io.ReadAll(cr)
		cr.release()

		raw, verr := io.ReadAll(NewIntegrityVerifier(bytes.NewReader(data)))

		// The two parsers must agree on validity.
		if (rerr == nil) != (verr == nil) {
			t.Fatalf("parsers disagree: reader err %v, verifier err %v", rerr, verr)
		}
		if rerr != nil {
			// Structural failures must be the typed integrity error; the
			// only other legal error class is an underlying I/O failure,
			// which a bytes.Reader never produces.
			if !errors.Is(rerr, ErrIntegrity) {
				t.Fatalf("reader error is not ErrIntegrity: %v", rerr)
			}
			if !errors.Is(verr, ErrIntegrity) {
				t.Fatalf("verifier error is not ErrIntegrity: %v", verr)
			}
			return
		}
		// A valid stream: the verifier is pass-through, and round-tripping
		// the recovered payload through the writer must parse back to the
		// same payload (the framing can differ in block splits).
		if !bytes.Equal(raw, data) {
			t.Fatalf("verifier not pass-through: %d bytes out of %d in", len(raw), len(data))
		}
		cr2 := newChecksumReader(job, bytes.NewReader(frame(payload)))
		payload2, err := io.ReadAll(cr2)
		cr2.release()
		if err != nil {
			t.Fatalf("re-framed payload does not parse: %v", err)
		}
		if !bytes.Equal(payload, payload2) {
			t.Fatalf("payload round trip mismatch: %d bytes, then %d", len(payload), len(payload2))
		}
	})
}
