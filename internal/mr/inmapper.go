package mr

import "repro/internal/bytesx"

// InMapperCombining wraps a Mapper factory with the in-mapper combining
// design pattern (Lin & Dyer, referenced in the paper's §1): emissions
// are folded into a bounded in-memory table keyed by output key, and the
// table is flushed when it reaches maxEntries and at task cleanup. Like
// a Combiner, it only helps when many Map output records in the same
// task share a key — the limitation Anti-Combining was designed around —
// and it composes with Anti-Combining (flushed records are encoded like
// any other emission).
//
// combine must be associative: combine(combine(a,b),c) == combine(a,
// combine(b,c)). The mapper must emit values already in combinable form
// (e.g. counts, not raw tokens).
func InMapperCombining(newMapper func() Mapper, combine func(acc, v []byte) []byte, maxEntries int) func() Mapper {
	return InMapperCombiningErr(newMapper, func(_, acc, v []byte) ([]byte, error) {
		return combine(acc, v), nil
	}, maxEntries)
}

// InMapperCombiningErr is InMapperCombining for fold functions that can
// fail (e.g. decoding structured partials): combine receives the output
// key alongside the accumulated and incoming values, and an error fails
// the map task. internal/monoid derives this fold from a workload's
// monoid declaration.
func InMapperCombiningErr(newMapper func() Mapper, combine func(key, acc, v []byte) ([]byte, error), maxEntries int) func() Mapper {
	if maxEntries <= 0 {
		maxEntries = 64 << 10
	}
	return func() Mapper {
		return &inMapperCombiner{
			inner:      newMapper(),
			combine:    combine,
			maxEntries: maxEntries,
			table:      make(map[string][]byte),
		}
	}
}

type inMapperCombiner struct {
	inner      Mapper
	combine    func(key, acc, v []byte) ([]byte, error)
	maxEntries int
	table      map[string][]byte
}

// Setup implements Mapper.
func (m *inMapperCombiner) Setup(info *TaskInfo, out Emitter) error {
	return m.inner.Setup(info, m.wrap(out))
}

// Map implements Mapper.
func (m *inMapperCombiner) Map(key, value []byte, out Emitter) error {
	wrapped := m.wrap(out)
	if err := m.inner.Map(key, value, wrapped); err != nil {
		return err
	}
	if len(m.table) >= m.maxEntries {
		return m.flush(out)
	}
	return nil
}

// Cleanup implements Mapper: flush the table, then run the inner cleanup.
func (m *inMapperCombiner) Cleanup(out Emitter) error {
	if err := m.flush(out); err != nil {
		return err
	}
	return m.inner.Cleanup(m.wrap(out))
}

func (m *inMapperCombiner) wrap(out Emitter) Emitter {
	return EmitterFunc(func(k, v []byte) error {
		if acc, ok := m.table[string(k)]; ok {
			merged, err := m.combine(k, acc, v)
			if err != nil {
				return err
			}
			m.table[string(k)] = merged
			return nil
		}
		m.table[string(k)] = bytesx.Clone(v)
		return nil
	})
}

func (m *inMapperCombiner) flush(out Emitter) error {
	for k, v := range m.table {
		if err := out.Emit([]byte(k), v); err != nil {
			return err
		}
	}
	clear(m.table)
	return nil
}
