package mr

import (
	"errors"
	"fmt"
	"strings"
	"testing"
)

// alignedTestJob: split i carries keys whose first byte is i, an
// identity mapper passes them through, and the partitioner routes on
// that byte — so split i's output lands wholly in partition i.
func alignedTestJob(n int) (*Job, []Split) {
	job := &Job{
		Name: "aligned",
		NewMapper: NewMapFunc(func(key, value []byte, out Emitter) error {
			return out.Emit(key, value)
		}),
		NewReducer: NewReduceFunc(func(key []byte, values ValueIter, out Emitter) error {
			for {
				v, ok := values.Next()
				if !ok {
					return nil
				}
				if err := out.Emit(key, v); err != nil {
					return err
				}
			}
		}),
		Partitioner: PartitionerFunc(func(key []byte, parts int) int {
			return int(key[0]) % parts
		}),
		NumReduceTasks: n,
		Deterministic:  true,
	}
	splits := make([]Split, n)
	for i := 0; i < n; i++ {
		var recs []Record
		for r := 0; r < 10; r++ {
			recs = append(recs, Record{
				Key:   []byte{byte(i), byte('a' + r)},
				Value: []byte(fmt.Sprintf("v%d.%d", i, r)),
			})
		}
		splits[i] = &MemSplit{Recs: recs}
	}
	return job, splits
}

// TestAlignedInputByteIdentical runs the same aligned dataset with and
// without the fast path and requires byte-identical output, while the
// aligned run must build only the diagonal fetch tasks.
func TestAlignedInputByteIdentical(t *testing.T) {
	const n = 4
	base, splits := alignedTestJob(n)
	baseRes, err := Run(base, splits)
	if err != nil {
		t.Fatal(err)
	}

	fast, fastSplits := alignedTestJob(n)
	fast.AlignedInput = true
	fastRes, err := Run(fast, fastSplits)
	if err != nil {
		t.Fatal(err)
	}

	wantOut, gotOut := baseRes.SortedOutput(), fastRes.SortedOutput()
	if len(wantOut) != len(gotOut) {
		t.Fatalf("output lengths differ: %d vs %d", len(wantOut), len(gotOut))
	}
	for i := range wantOut {
		if string(wantOut[i].Key) != string(gotOut[i].Key) || string(wantOut[i].Value) != string(gotOut[i].Value) {
			t.Fatalf("record %d differs: %q=%q vs %q=%q", i,
				wantOut[i].Key, wantOut[i].Value, gotOut[i].Key, gotOut[i].Value)
		}
	}

	countFetches := func(res *Result) int {
		fetches := 0
		for _, a := range res.Timeline {
			if strings.HasPrefix(a.Task, "fetch/") {
				fetches++
			}
		}
		return fetches
	}
	if got := countFetches(fastRes); got != n {
		t.Errorf("aligned run made %d fetch attempts, want %d (diagonal only)", got, n)
	}
	if got := countFetches(baseRes); got != n*n {
		t.Errorf("baseline run made %d fetch attempts, want %d", got, n*n)
	}
}

// TestAlignedInputViolation proves the aligned claim is enforced: an
// off-diagonal emission fails the job with ErrMisaligned instead of
// silently dropping records the pruned fetch graph would never collect.
func TestAlignedInputViolation(t *testing.T) {
	job, splits := alignedTestJob(4)
	job.AlignedInput = true
	// Poison split 2 with a key that routes to partition 1.
	splits[2].(*MemSplit).Recs = append(splits[2].(*MemSplit).Recs,
		Record{Key: []byte{1, 'z'}, Value: []byte("stray")})
	_, err := Run(job, splits)
	if !errors.Is(err, ErrMisaligned) {
		t.Fatalf("want ErrMisaligned, got %v", err)
	}
}

// TestAlignedInputSplitCount: the fast path requires exactly one split
// per partition.
func TestAlignedInputSplitCount(t *testing.T) {
	job, splits := alignedTestJob(4)
	job.AlignedInput = true
	if _, err := Run(job, splits[:3]); err == nil {
		t.Fatal("want error for 3 splits with 4 reducers")
	}
}
