package mr

import (
	"strconv"
	"strings"
	"testing"
)

func sumCombine(acc, v []byte) []byte {
	a, _ := strconv.Atoi(string(acc))
	b, _ := strconv.Atoi(string(v))
	return []byte(strconv.Itoa(a + b))
}

func TestInMapperCombiningCorrectness(t *testing.T) {
	base := wordCountJob(false)
	input := lines(strings.Repeat("alpha beta gamma alpha ", 500))
	plain, err := Run(base, input)
	if err != nil {
		t.Fatal(err)
	}
	imc := wordCountJob(false)
	imc.NewMapper = InMapperCombining(imc.NewMapper, sumCombine, 0)
	combined, err := Run(imc, input)
	if err != nil {
		t.Fatal(err)
	}
	got, want := outputMap(t, combined), outputMap(t, plain)
	for k, v := range want {
		if got[k] != v {
			t.Errorf("%q: %q != %q", k, got[k], v)
		}
	}
	// The table collapses per-task duplicates, so far fewer records
	// reach the framework.
	if combined.Stats.MapOutputRecords*10 > plain.Stats.MapOutputRecords {
		t.Errorf("in-mapper combining emitted %d records vs %d plain",
			combined.Stats.MapOutputRecords, plain.Stats.MapOutputRecords)
	}
}

func TestInMapperCombiningFlushesAtCapacity(t *testing.T) {
	job := wordCountJob(false)
	job.NewMapper = InMapperCombining(job.NewMapper, sumCombine, 2) // tiny table
	var sb strings.Builder
	for i := 0; i < 100; i++ {
		sb.WriteString("w")
		sb.WriteString(strconv.Itoa(i))
		sb.WriteString(" ")
	}
	res, err := Run(job, lines(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if got := len(outputMap(t, res)); got != 100 {
		t.Errorf("distinct words = %d, want 100", got)
	}
	// With capacity 2 and 100 distinct words, many flushes must occur,
	// so the emission count stays near the raw count.
	if res.Stats.MapOutputRecords < 90 {
		t.Errorf("records = %d; tiny table should flush often", res.Stats.MapOutputRecords)
	}
}
