package mr

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/iokit"
)

func TestLineSplitRoundTrip(t *testing.T) {
	fs := iokit.NewMemFS()
	lines := []string{"first line", "second line", "", "fourth"}
	if err := WriteLines(fs, "input.txt", lines); err != nil {
		t.Fatal(err)
	}
	var got []string
	s := &LineSplit{FS: fs, Name: "input.txt"}
	err := s.Records(func(k, v []byte) error {
		if k != nil {
			t.Error("line split keys should be nil")
		}
		got = append(got, string(v))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(lines) {
		t.Fatalf("got %d lines, want %d", len(got), len(lines))
	}
	for i := range lines {
		if got[i] != lines[i] {
			t.Errorf("line %d: %q != %q", i, got[i], lines[i])
		}
	}
}

func TestLineSplitMissingFile(t *testing.T) {
	s := &LineSplit{FS: iokit.NewMemFS(), Name: "missing"}
	if err := s.Records(func(k, v []byte) error { return nil }); err == nil {
		t.Error("missing file should error")
	}
}

func TestRecordFileRoundTrip(t *testing.T) {
	fs := iokit.NewMemFS()
	recs := []Record{
		{Key: []byte("k1"), Value: []byte("v1")},
		{Key: nil, Value: []byte("v2")},
		{Key: []byte("k3"), Value: nil},
	}
	if err := WriteRecordFile(fs, "recs", recs); err != nil {
		t.Fatal(err)
	}
	var got []Record
	s := &RecordFileSplit{FS: fs, Name: "recs"}
	err := s.Records(func(k, v []byte) error {
		got = append(got, Record{Key: append([]byte(nil), k...), Value: append([]byte(nil), v...)})
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("got %d records", len(got))
	}
	if string(got[0].Key) != "k1" || string(got[2].Key) != "k3" {
		t.Error("key mismatch")
	}
}

func TestJobFromFilesAndWriteOutput(t *testing.T) {
	fs := iokit.NewMemFS()
	for i := 0; i < 3; i++ {
		err := WriteLines(fs, fmt.Sprintf("in/%d.txt", i),
			[]string{strings.Repeat("file words count ", 50)})
		if err != nil {
			t.Fatal(err)
		}
	}
	names, _ := fs.List()
	res, err := Run(wordCountJob(true), FileSplits(fs, names, false))
	if err != nil {
		t.Fatal(err)
	}
	if got := outputMap(t, res)["words"]; got != "150" {
		t.Errorf("words = %s", got)
	}

	outFS := iokit.NewMemFS()
	parts, err := WriteOutput(outFS, "out", res)
	if err != nil {
		t.Fatal(err)
	}
	if len(parts) != 3 {
		t.Fatalf("parts = %v", parts)
	}
	// Read the output back through RecordFileSplit.
	total := 0
	for _, p := range parts {
		s := &RecordFileSplit{FS: outFS, Name: p}
		if err := s.Records(func(k, v []byte) error { total++; return nil }); err != nil {
			t.Fatal(err)
		}
	}
	if total != 3 {
		t.Errorf("output records = %d, want 3 distinct words", total)
	}
}

func TestIterate(t *testing.T) {
	// Each round doubles a counter per key.
	initial := []Record{
		{Key: []byte("a"), Value: []byte("1")},
		{Key: []byte("b"), Value: []byte("1")},
	}
	build := func(round int) *Job {
		return &Job{
			NewMapper: NewMapFunc(func(k, v []byte, out Emitter) error {
				if err := out.Emit(k, v); err != nil {
					return err
				}
				return out.Emit(k, v)
			}),
			NewReducer: NewReduceFunc(func(k []byte, vals ValueIter, out Emitter) error {
				n := 0
				for {
					v, ok := vals.Next()
					if !ok {
						break
					}
					var x int
					fmt.Sscanf(string(v), "%d", &x)
					n += x
				}
				return out.Emit(k, []byte(fmt.Sprintf("%d", n)))
			}),
			NumReduceTasks: 2,
		}
	}
	res, stats, err := Iterate(4, initial, 2, build)
	if err != nil {
		t.Fatal(err)
	}
	got := outputMap(t, res)
	if got["a"] != "16" || got["b"] != "16" { // ×2 per round, 4 rounds
		t.Errorf("final = %v, want 16s", got)
	}
	if stats.MapInputRecords != 8 { // 2 records × 4 rounds
		t.Errorf("summed MapInputRecords = %d", stats.MapInputRecords)
	}
	if stats.WallTime <= 0 {
		t.Error("summed WallTime should be positive")
	}
}

func TestIterateError(t *testing.T) {
	bad := func(round int) *Job { return &Job{} } // invalid: no mapper
	if _, _, err := Iterate(1, nil, 1, bad); err == nil {
		t.Error("invalid job should surface an error")
	}
}
