package mr

import (
	"bytes"
	"errors"
	"io"
	"net"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/iokit"
)

// checksumTestJob returns a normalized job with default (enabled)
// checksum settings, for exercising the framing layers directly.
func checksumTestJob(t *testing.T) *Job {
	t.Helper()
	j, err := wordCountJob(false).normalized()
	if err != nil {
		t.Fatal(err)
	}
	return j
}

// frameStream checksum-frames payload, returning the on-disk bytes.
func frameStream(t *testing.T, job *Job, payload []byte) []byte {
	t.Helper()
	var buf bytes.Buffer
	cw := newChecksumWriter(job, &buf)
	if _, err := cw.Write(payload); err != nil {
		t.Fatal(err)
	}
	if err := cw.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestChecksumRoundTrip frames payloads of several sizes (empty,
// sub-block, exactly one block, multi-block with remainder) and checks
// the reader and the pass-through verifier both recover them exactly.
func TestChecksumRoundTrip(t *testing.T) {
	j := checksumTestJob(t)
	sizes := []int{0, 1, 100, checksumBlockSize, checksumBlockSize + 1, 3*checksumBlockSize + 17}
	for _, n := range sizes {
		payload := make([]byte, n)
		for i := range payload {
			payload[i] = byte(i*31 + 7)
		}
		framed := frameStream(t, j, payload)

		cr := newChecksumReader(j, bytes.NewReader(framed))
		got, err := io.ReadAll(cr)
		cr.release()
		if err != nil {
			t.Fatalf("size %d: read framed stream: %v", n, err)
		}
		if !bytes.Equal(got, payload) {
			t.Fatalf("size %d: round trip mismatch: %d bytes out, want %d", n, len(got), len(payload))
		}

		raw, err := io.ReadAll(NewIntegrityVerifier(bytes.NewReader(framed)))
		if err != nil {
			t.Fatalf("size %d: verifier: %v", n, err)
		}
		if !bytes.Equal(raw, framed) {
			t.Fatalf("size %d: verifier is not pass-through: %d bytes out, want %d", n, len(raw), len(framed))
		}
	}
}

// TestChecksumDetectsCorruption flips each byte of a framed stream in
// turn: both the stripping reader and the pass-through verifier must
// fail with ErrIntegrity (never succeed, never panic) on every offset.
func TestChecksumDetectsCorruption(t *testing.T) {
	j := checksumTestJob(t)
	payload := []byte(strings.Repeat("integrity matters ", 40))
	framed := frameStream(t, j, payload)
	for off := 0; off < len(framed); off++ {
		corrupt := append([]byte(nil), framed...)
		corrupt[off] ^= 0x40

		cr := newChecksumReader(j, bytes.NewReader(corrupt))
		got, err := io.ReadAll(cr)
		cr.release()
		if err == nil {
			// Flipping a bit may never yield a silently valid stream of
			// the same content.
			if bytes.Equal(got, payload) {
				t.Fatalf("offset %d: corruption read back as the original payload", off)
			}
			t.Fatalf("offset %d: corrupt stream read without error", off)
		}
		if !errors.Is(err, ErrIntegrity) {
			t.Fatalf("offset %d: error is not ErrIntegrity: %v", off, err)
		}

		if _, err := io.ReadAll(NewIntegrityVerifier(bytes.NewReader(corrupt))); !errors.Is(err, ErrIntegrity) {
			t.Fatalf("offset %d: verifier error is not ErrIntegrity: %v", off, err)
		}
	}
}

// TestChecksumDetectsTruncation cuts a framed stream at every length:
// any prefix shorter than the full stream must fail with ErrIntegrity.
func TestChecksumDetectsTruncation(t *testing.T) {
	j := checksumTestJob(t)
	framed := frameStream(t, j, []byte(strings.Repeat("cut here ", 30)))
	for n := 0; n < len(framed); n++ {
		cr := newChecksumReader(j, bytes.NewReader(framed[:n]))
		_, err := io.ReadAll(cr)
		cr.release()
		if !errors.Is(err, ErrIntegrity) {
			t.Fatalf("truncated at %d: error is not ErrIntegrity: %v", n, err)
		}
		if _, err := io.ReadAll(NewIntegrityVerifier(bytes.NewReader(framed[:n]))); !errors.Is(err, ErrIntegrity) {
			t.Fatalf("truncated at %d: verifier error is not ErrIntegrity: %v", n, err)
		}
	}
	// Trailing garbage after the terminator is corruption too.
	trailing := append(append([]byte(nil), framed...), 'x')
	cr := newChecksumReader(j, bytes.NewReader(trailing))
	if _, err := io.ReadAll(cr); !errors.Is(err, ErrIntegrity) {
		t.Fatalf("trailing data: error is not ErrIntegrity: %v", err)
	}
	cr.release()
}

// TestChecksumPassesThroughIOErrors pins the error taxonomy: an
// underlying I/O fault (an injected read failure) must surface as
// itself, not be reclassified as corruption.
func TestChecksumPassesThroughIOErrors(t *testing.T) {
	j := checksumTestJob(t)
	mem := iokit.NewMemFS()
	f, err := mem.Create("seg")
	if err != nil {
		t.Fatal(err)
	}
	cw := newChecksumWriter(j, f)
	if _, err := cw.Write([]byte(strings.Repeat("data ", 100))); err != nil {
		t.Fatal(err)
	}
	if err := cw.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	flaky := &iokit.FlakyFS{Inner: mem, FailReadAt: 1}
	r, err := flaky.Open("seg")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	cr := newChecksumReader(j, r)
	defer cr.release()
	_, err = io.ReadAll(cr)
	if !errors.Is(err, iokit.ErrInjected) {
		t.Fatalf("injected fault not passed through: %v", err)
	}
	if errors.Is(err, ErrIntegrity) {
		t.Fatalf("injected fault misclassified as integrity violation: %v", err)
	}
}

// TestDisableChecksumsPreservesRawLayout pins the A/B baseline: with
// checksums disabled a segment file is the raw framed-record stream —
// byte-identical to the historical layout — and with them enabled the
// same records are recovered through the verified path.
func TestDisableChecksumsPreservesRawLayout(t *testing.T) {
	job := wordCountJob(false)
	job.DisableChecksums = true
	j, err := job.normalized()
	if err != nil {
		t.Fatal(err)
	}
	mem := iokit.NewMemFS()
	seg, err := writeTestSegment(j, mem, "seg", 0, 0, 25)
	if err != nil {
		t.Fatal(err)
	}
	size, err := mem.Size("seg")
	if err != nil {
		t.Fatal(err)
	}
	if size != seg.rawBytes {
		t.Fatalf("raw layout: file is %d bytes, framed records are %d", size, seg.rawBytes)
	}

	jc := checksumTestJob(t)
	memc := iokit.NewMemFS()
	segc, err := writeTestSegment(jc, memc, "seg", 0, 0, 25)
	if err != nil {
		t.Fatal(err)
	}
	sizec, err := memc.Size("seg")
	if err != nil {
		t.Fatal(err)
	}
	if sizec <= seg.rawBytes {
		t.Fatalf("checksummed layout: file is %d bytes, want larger than raw %d", sizec, seg.rawBytes)
	}
	st, err := openSegment(jc, memc, segc)
	if err != nil {
		t.Fatal(err)
	}
	n, err := drainStreams(st)
	if err != nil {
		t.Fatal(err)
	}
	if int64(n) != segc.records {
		t.Fatalf("verified read returned %d records, want %d", n, segc.records)
	}
}

// TestFetchCorruptionRetries runs a TCP-shuffle job whose shuffle
// listener flips one bit in the first large payload write: the fetch
// must detect the corruption via checksum, count it, retry, and the job
// must still produce output identical to a clean run.
func TestFetchCorruptionRetries(t *testing.T) {
	input := lines(
		strings.Repeat("alpha beta gamma delta ", 200),
		strings.Repeat("epsilon zeta eta theta ", 200),
	)
	clean, err := Run(wordCountJob(false), input)
	if err != nil {
		t.Fatal(err)
	}

	job := wordCountJob(false)
	job.TCPShuffle = true
	job.MaxTaskAttempts = 4
	job.WrapShuffleListener = corruptOnceListener
	res, err := Run(job, input)
	if err != nil {
		t.Fatalf("job did not survive one-shot corruption: %v", err)
	}
	// Output must be byte-identical; work counters legitimately inflate
	// on the retried fetch, so only the output is compared.
	co, ro := clean.SortedOutput(), res.SortedOutput()
	if len(co) != len(ro) {
		t.Fatalf("output length differs: clean %d, corrupted-once %d", len(co), len(ro))
	}
	for i := range co {
		if !bytes.Equal(co[i].Key, ro[i].Key) || !bytes.Equal(co[i].Value, ro[i].Value) {
			t.Fatalf("record %d differs: clean %q=%q, corrupted-once %q=%q",
				i, co[i].Key, co[i].Value, ro[i].Key, ro[i].Value)
		}
	}
	if got := res.Stats.Extra[CounterFetchIntegrity]; got != 1 {
		t.Errorf("%s = %d, want 1", CounterFetchIntegrity, got)
	}
}

// corruptOnceListener wraps a listener so that exactly one large
// payload write (across all connections) has one bit flipped. Small
// writes — the wire protocol's size headers — are left intact, so the
// corruption hits segment payload, exactly what the checksum layer (and
// nothing else) can catch.
func corruptOnceListener(ln net.Listener) net.Listener {
	return &corruptListener{Listener: ln, state: new(atomic.Bool)}
}

type corruptListener struct {
	net.Listener
	state *atomic.Bool
}

func (l *corruptListener) Accept() (net.Conn, error) {
	conn, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	return &corruptConn{Conn: conn, state: l.state}, nil
}

type corruptConn struct {
	net.Conn
	state *atomic.Bool
}

func (c *corruptConn) Write(p []byte) (int, error) {
	if len(p) >= 64 && c.state.CompareAndSwap(false, true) {
		tampered := append([]byte(nil), p...)
		tampered[len(tampered)/2] ^= 0x04
		n, err := c.Conn.Write(tampered)
		return n, err
	}
	return c.Conn.Write(p)
}
