package mr

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/iokit"
)

// Result carries a finished job's output and metrics.
type Result struct {
	// Stats is the job's metric snapshot.
	Stats Stats
	// Output holds each reduce partition's emitted records in emission
	// order (empty when the job sets DiscardOutput).
	Output [][]Record
	// ShufflePerPartition holds each reduce partition's fetched bytes
	// (post-codec) — the flow sizes the cost model's network simulation
	// consumes.
	ShufflePerPartition []int64
	// ReduceTaskTimes holds each reduce task's single-threaded duration,
	// for load-skew analysis (§6.2 discusses LazySH-induced reducer
	// skew).
	ReduceTaskTimes []time.Duration
}

// Run executes a MapReduce job over the given input splits: all map
// tasks, then all reduce tasks, each phase bounded by Job.Parallelism
// workers. It is the analogue of submitting a job to a Hadoop cluster
// and waiting for completion.
func Run(job *Job, splits []Split) (*Result, error) {
	j, err := job.normalized()
	if err != nil {
		return nil, err
	}
	if len(splits) == 0 {
		splits = []Split{&MemSplit{}}
	}

	start := time.Now()
	meter := &iokit.Meter{}
	fs := iokit.Metered(j.FS, meter)
	counters := &Counters{}

	var transport Transport = LocalTransport{}
	if j.TCPShuffle {
		tcp, err := NewTCPTransport(fs)
		if err != nil {
			return nil, fmt.Errorf("mr: starting shuffle transport: %w", err)
		}
		defer tcp.Close()
		transport = tcp
	}

	// Map phase.
	mapSegs := make([][]segment, len(splits))
	err = runPool(j.Parallelism, len(splits), func(i int) error {
		segs, err := runMapTask(j, fs, counters, i, splits[i])
		mapSegs[i] = segs
		return err
	})
	if err != nil {
		return nil, err
	}

	// Group segments by reduce partition and record shuffle flow sizes
	// before reduce-side merging consumes the files.
	byPart := make([][]segment, j.NumReduceTasks)
	for _, segs := range mapSegs {
		for _, s := range segs {
			byPart[s.partition] = append(byPart[s.partition], s)
		}
	}
	shufflePer := make([]int64, j.NumReduceTasks)
	for p, segs := range byPart {
		for _, s := range segs {
			size, err := j.FS.Size(s.file)
			if err != nil {
				return nil, err
			}
			shufflePer[p] += size
		}
	}

	// Reduce phase.
	output := make([][]Record, j.NumReduceTasks)
	taskTimes := make([]time.Duration, j.NumReduceTasks)
	err = runPool(j.Parallelism, j.NumReduceTasks, func(p int) error {
		taskStart := time.Now()
		recs, err := runReduceTask(j, fs, counters, transport, p, byPart[p])
		taskTimes[p] = time.Since(taskStart)
		output[p] = recs
		return err
	})
	if err != nil {
		return nil, err
	}

	stats := counters.Snapshot()
	stats.DiskReadBytes = meter.ReadBytes()
	stats.DiskWriteBytes = meter.WriteBytes()
	stats.WallTime = time.Since(start)
	return &Result{
		Stats:               stats,
		Output:              output,
		ShufflePerPartition: shufflePer,
		ReduceTaskTimes:     taskTimes,
	}, nil
}

// runPool runs fn(0..n-1) with at most workers goroutines, returning the
// first error encountered.
func runPool(workers, n int, fn func(i int) error) error {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				if err := fn(i); err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
				}
			}
		}()
	}
	for i := 0; i < n; i++ {
		mu.Lock()
		stop := firstErr != nil
		mu.Unlock()
		if stop {
			break
		}
		next <- i
	}
	close(next)
	wg.Wait()
	return firstErr
}

// SortedOutput flattens a result's per-partition output into one slice,
// partition by partition, for deterministic assertions in tests.
func (r *Result) SortedOutput() []Record {
	var out []Record
	for _, part := range r.Output {
		out = append(out, part...)
	}
	return out
}

// FormatRecord renders a record for debugging.
func FormatRecord(r Record) string {
	return fmt.Sprintf("%q=%q", r.Key, r.Value)
}
