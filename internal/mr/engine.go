package mr

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/iokit"
	"repro/internal/obs"
	"repro/internal/sched"
)

// Scheduler names for Job.Scheduler.
const (
	// SchedulerPipelined is the event-driven scheduler with pipelined
	// shuffle, retries, and optional speculative execution (the default).
	SchedulerPipelined = "pipelined"
	// SchedulerBarrier is the classic two-phase engine: all map tasks,
	// a hard barrier, then all reduce tasks.
	SchedulerBarrier = "barrier"
)

// Task timeline groups, as they appear in Result.Timeline.
const (
	TaskGroupMap    = "map"
	TaskGroupFetch  = "fetch"
	TaskGroupReduce = "reduce"
)

// Result carries a finished job's output and metrics.
type Result struct {
	// Stats is the job's metric snapshot.
	Stats Stats
	// Output holds each reduce partition's emitted records in emission
	// order (empty when the job sets DiscardOutput).
	Output [][]Record
	// ShufflePerPartition holds each reduce partition's fetched bytes
	// (post-codec) — the flow sizes the cost model's network simulation
	// consumes.
	ShufflePerPartition []int64
	// ReduceTaskTimes holds each reduce task's single-threaded duration,
	// for load-skew analysis (§6.2 discusses LazySH-induced reducer
	// skew). Under the pipelined scheduler this is the merge+reduce
	// time; the per-map fetch time is on the Timeline's fetch attempts.
	ReduceTaskTimes []time.Duration
	// MapTaskTimes holds each map task's single-threaded duration
	// (winning attempt), so skew analysis covers both phases.
	MapTaskTimes []time.Duration
	// Timeline is the per-attempt task event log: queued/start/finish
	// timestamps and outcome for every map, fetch, and reduce attempt,
	// including retries and speculative duplicates. Consumers (cost
	// model, experiments) can measure real phase overlap from it
	// instead of assuming phase serialization.
	Timeline []sched.Attempt
	// MeasuredShuffle records the real network transfer when the job ran
	// on the cluster runtime (internal/cluster), nil otherwise. It sits
	// next to ShufflePerPartition — the flow sizes the synthetic netsim
	// prediction consumes — so model-vs-measured comparisons need no
	// side channel.
	MeasuredShuffle *ShuffleMeasurement
}

// ShuffleMeasurement is the real-network counterpart of the netsim
// estimate: bytes and time actually spent moving map output between
// worker processes over TCP.
type ShuffleMeasurement struct {
	// Bytes is the payload moved over worker-to-worker sockets.
	Bytes int64
	// FetchTime is the summed per-fetch transfer time (network busy
	// time, the analogue of netsim's per-flow completion work).
	FetchTime time.Duration
	// Extent is the wall-clock span of the fetch phase: first fetch
	// start to last fetch end, the measured analogue of the netsim
	// makespan.
	Extent time.Duration
	// Fetches counts segment transfers; Dials counts TCP dials (the
	// connection pool's miss count).
	Fetches int
	Dials   int64
}

// runEnv bundles the per-run state shared by both schedulers.
type runEnv struct {
	job       *Job
	fs        iokit.FS // metered view of job.FS
	counters  *Counters
	transport Transport
	splits    []Split
}

// Run executes a MapReduce job over the given input splits and waits
// for completion — the analogue of submitting a job to a Hadoop
// cluster. Job.Scheduler picks the engine: the default pipelined
// scheduler starts each reduce partition's segment fetches as soon as
// the map tasks feeding it complete, with per-task retries and optional
// speculative execution; the barrier scheduler runs all map tasks, then
// all reduce tasks. Both are bounded by Job.Parallelism workers and
// produce byte-identical output.
func Run(job *Job, splits []Split) (*Result, error) {
	j, err := job.normalized()
	if err != nil {
		return nil, err
	}
	if len(splits) == 0 {
		splits = []Split{&MemSplit{}}
	}
	if j.AlignedInput && len(splits) != j.NumReduceTasks {
		return nil, fmt.Errorf("%w: AlignedInput needs exactly NumReduceTasks (%d) splits, got %d",
			errJob, j.NumReduceTasks, len(splits))
	}

	start := time.Now()
	meter := &iokit.Meter{}
	fs := iokit.Metered(j.FS, meter)
	counters := &Counters{}
	counters.InitPartitions(j.NumReduceTasks)
	// Wire the disk meter and start time in before any task runs, so a
	// live observer's mid-job Snapshot carries consistent disk and
	// wall-time readings alongside the record counters.
	counters.SetDiskMeter(meter)
	counters.MarkStart(start)
	if j.Metrics != nil {
		// The source is intentionally left registered after the run:
		// its final values keep answering snapshots, so a live
		// reporter's last line agrees with the returned Result.Stats.
		j.Metrics.Register(j.Name, func() map[string]int64 {
			return counters.Snapshot().Labeled()
		})
	}
	jobSpan := j.Tracer.Start(obs.KindJob, j.Name,
		obs.Str("scheduler", j.Scheduler), obs.Int("splits", int64(len(splits))),
		obs.Int("reducers", int64(j.NumReduceTasks)))

	var transport Transport = LocalTransport{}
	if j.TCPShuffle {
		tcp, err := newTCPTransport(fs, j.WrapShuffleListener, j.WireCompression)
		if err != nil {
			return nil, fmt.Errorf("mr: starting shuffle transport: %w", err)
		}
		defer tcp.Close()
		transport = tcp
	}

	env := &runEnv{job: j, fs: fs, counters: counters, transport: transport, splits: splits}
	var res *Result
	switch j.Scheduler {
	case SchedulerBarrier:
		res, err = runBarrier(context.Background(), env)
	default:
		res, err = runPipelined(context.Background(), env)
	}
	if err != nil {
		jobSpan.End(obs.Str("outcome", "failed"), obs.Str("err", err.Error()))
		return nil, err
	}

	// Snapshot reads the wired meter and start time itself, so the
	// final Stats are just the last of the same self-consistent
	// snapshots any mid-job observer saw; MarkEnd freezes the wall
	// clock so later snapshots (a reporter's final line) agree exactly.
	counters.MarkEnd(time.Now())
	res.Stats = counters.Snapshot()
	jobSpan.End(obs.Str("outcome", "success"),
		obs.Int("shuffle_bytes", res.Stats.ShuffleBytes),
		obs.Int("map_output_records", res.Stats.MapOutputRecords))
	return res, nil
}

// runBarrier is the classic two-phase engine: a pool of map tasks, a
// hard barrier, then a pool of reduce tasks. A failed task cancels the
// phase's context so in-flight siblings stop promptly.
func runBarrier(ctx context.Context, env *runEnv) (*Result, error) {
	j := env.job
	nMap := len(env.splits)

	tl := &timelineLog{tracer: j.Tracer}

	// Map phase.
	mapSegs := make([][]segment, nMap)
	mapTimes := make([]time.Duration, nMap)
	err := runPool(ctx, j.Parallelism, nMap, func(ctx context.Context, i int) error {
		done := tl.begin(mapTaskName(i), TaskGroupMap)
		segs, err := runMapTask(ctx, j, env.fs, env.counters, i, 0, env.splits[i])
		mapTimes[i] = done(err)
		mapSegs[i] = segs
		return err
	})
	if err != nil {
		return nil, err
	}

	// Group segments by reduce partition and record shuffle flow sizes
	// before reduce-side merging consumes the files.
	byPart := make([][]segment, j.NumReduceTasks)
	for _, segs := range mapSegs {
		for _, s := range segs {
			byPart[s.partition] = append(byPart[s.partition], s)
		}
	}
	shufflePer := make([]int64, j.NumReduceTasks)
	for p, segs := range byPart {
		for _, s := range segs {
			size, err := j.FS.Size(s.file)
			if err != nil {
				return nil, err
			}
			shufflePer[p] += size
		}
	}

	// Reduce phase.
	output := make([][]Record, j.NumReduceTasks)
	taskTimes := make([]time.Duration, j.NumReduceTasks)
	err = runPool(ctx, j.Parallelism, j.NumReduceTasks, func(ctx context.Context, p int) error {
		done := tl.begin(reduceTaskName(p), TaskGroupReduce)
		recs, err := runReduceTask(ctx, j, env.fs, env.counters, env.transport, p, byPart[p])
		taskTimes[p] = done(err)
		output[p] = recs
		return err
	})
	if err != nil {
		return nil, err
	}

	return &Result{
		Output:              output,
		ShufflePerPartition: shufflePer,
		ReduceTaskTimes:     taskTimes,
		MapTaskTimes:        mapTimes,
		Timeline:            tl.attempts,
	}, nil
}

// timelineLog records per-task attempts for the barrier scheduler so
// both engines expose the same Result.Timeline shape, mirroring each
// attempt into the trace sink when one is configured.
type timelineLog struct {
	tracer   *obs.Tracer
	mu       sync.Mutex
	attempts []sched.Attempt
}

// begin starts timing one task; the returned func finishes the record
// and reports the task duration.
func (t *timelineLog) begin(name, group string) func(err error) time.Duration {
	start := time.Now()
	return func(err error) time.Duration {
		end := time.Now()
		a := sched.Attempt{
			Task: name, Group: group,
			Queued: start, Started: start, Finished: end,
			Outcome: sched.OutcomeSuccess,
		}
		if err != nil {
			a.Outcome = sched.OutcomeFailed
			a.Err = err.Error()
		}
		if t.tracer != nil {
			t.tracer.Record(group, name, start, end, obs.Int("attempt", 0),
				obs.Str("outcome", string(a.Outcome)))
		}
		t.mu.Lock()
		t.attempts = append(t.attempts, a)
		t.mu.Unlock()
		return end.Sub(start)
	}
}

// runPool runs fn(ctx, 0..n-1) with at most workers goroutines,
// returning the first error encountered. The first failure cancels the
// pool's context: queued indices are not dispatched and in-flight tasks
// observe cancellation through the ctx plumbed into them.
func runPool(ctx context.Context, workers, n int, fn func(ctx context.Context, i int) error) error {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := fn(ctx, i); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
			cancel()
		}
		mu.Unlock()
	}
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				if ctx.Err() != nil {
					continue // drain after cancellation
				}
				if err := fn(ctx, i); err != nil {
					fail(err)
				}
			}
		}()
	}
dispatch:
	for i := 0; i < n; i++ {
		select {
		case next <- i:
		case <-ctx.Done():
			break dispatch
		}
	}
	close(next)
	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	if firstErr != nil {
		return firstErr
	}
	return ctx.Err()
}

// SortedOutput flattens a result's per-partition output into one slice,
// partition by partition, for deterministic assertions in tests.
func (r *Result) SortedOutput() []Record {
	var out []Record
	for _, part := range r.Output {
		out = append(out, part...)
	}
	return out
}

// FormatRecord renders a record for debugging.
func FormatRecord(r Record) string {
	return fmt.Sprintf("%q=%q", r.Key, r.Value)
}
