package mr

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"strings"
	"time"

	"repro/internal/bytesx"
	"repro/internal/iokit"
	"repro/internal/obs"
)

// ctxCheckInterval is how many records (or key groups) a task processes
// between context-cancellation checks: frequent enough that a cancelled
// sibling stops promptly, rare enough to stay off the per-record path.
const ctxCheckInterval = 64

// errShortFetch marks a shuffle fetch that delivered fewer bytes than
// the server advertised — a connection-level fault (the peer died or
// its read failed mid-stream), so it is classified transient.
var errShortFetch = errors.New("mr: short shuffle fetch")

// ErrMisaligned reports a Job.AlignedInput violation: a map emission
// routed off its split's diagonal partition. It is permanent (retrying
// re-runs the same deterministic routing), so the job fails loudly
// instead of silently dropping records the pruned fetch graph would
// never collect.
var ErrMisaligned = errors.New("mr: aligned-input job emitted off-diagonal record")

// isTransientErr classifies errors worth retrying: injected I/O faults
// from the fault-injection harness and connection-level shuffle
// failures. Context cancellation is never transient — it means the job
// (or a speculative race) already decided this attempt's fate.
func isTransientErr(err error) bool {
	if err == nil || errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	if errors.Is(err, iokit.ErrInjected) || errors.Is(err, errShortFetch) {
		return true
	}
	// A truncated transfer — the transport surfaced fewer bytes than the
	// peer advertised — is a connection-level fault, same as errShortFetch.
	if errors.Is(err, io.ErrUnexpectedEOF) {
		return true
	}
	// Integrity violations (checksum mismatch, truncation) mean the
	// bytes are bad, not the computation: a retry re-fetches or re-reads
	// and — on the cluster — feeds the source-blacklist/DepLostError
	// re-execution path.
	if errors.Is(err, ErrIntegrity) {
		return true
	}
	var nerr net.Error
	if errors.As(err, &nerr) {
		return true
	}
	var operr *net.OpError
	return errors.As(err, &operr)
}

// mapTaskDir names a map task's output directory. Attempt 0 keeps the
// historical layout; retries and speculative duplicates get their own
// directory so concurrent attempts never clobber each other's files.
func mapTaskDir(job *Job, taskID, attempt int) string {
	if attempt == 0 {
		return fmt.Sprintf("%s/m%04d", job.Workspace, taskID)
	}
	return fmt.Sprintf("%s/m%04d.a%d", job.Workspace, taskID, attempt)
}

// runMapTask executes one attempt of a map task: run the Mapper over
// the split, collect/sort/spill its output, and return the final
// per-partition segments. The task's single-threaded wall time is
// charged as map CPU. ctx cancellation is observed between input
// records so cancelled attempts stop promptly.
func runMapTask(ctx context.Context, job *Job, fs iokit.FS, counters *Counters, taskID, attempt int, split Split) (segs []segment, err error) {
	start := time.Now()
	defer func() { counters.mapTaskNs.Add(time.Since(start).Nanoseconds()) }()
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("mr: map task %d: %w", taskID, err)
	}
	// A failed (or cancelled) attempt deletes its attempt-scoped output
	// directory: spill files from before the fault would otherwise
	// orphan, and the attempt dir is private to this attempt so nothing
	// else can be reading it.
	defer func() {
		if err != nil {
			removePrefix(fs, mapTaskDir(job, taskID, attempt)+"/")
		}
	}()

	buf := newMapBuffer(job, fs, counters, taskID, attempt)
	mapper := job.NewMapper()
	info := &TaskInfo{
		JobName:       job.Name,
		Workspace:     job.Workspace,
		TaskID:        taskID,
		Partition:     -1,
		Attempt:       attempt,
		NumPartitions: job.NumReduceTasks,
		Partitioner:   job.Partitioner,
		KeyCompare:    job.KeyCompare,
		GroupCompare:  job.GroupCompare,
		Counters:      counters,
		FS:            fs,
		Tracer:        job.Tracer,
	}
	out := EmitterFunc(func(k, v []byte) error {
		counters.mapOutputRecords.Add(1)
		rl := int64(bytesx.RecordLen(k, v))
		counters.mapOutputBytes.Add(rl)
		p := job.Partitioner.Partition(k, job.NumReduceTasks)
		if p < 0 || p >= job.NumReduceTasks {
			return fmt.Errorf("mr: partitioner returned %d for %d partitions", p, job.NumReduceTasks)
		}
		if job.AlignedInput && p != taskID {
			return fmt.Errorf("%w: map task %d emitted key %q routed to partition %d", ErrMisaligned, taskID, k, p)
		}
		counters.AddMapOutputPartition(p, rl)
		return buf.add(p, k, v)
	})
	if err := mapper.Setup(info, out); err != nil {
		return nil, fmt.Errorf("mr: map task %d setup: %w", taskID, err)
	}
	var seen int
	err = split.Records(func(k, v []byte) error {
		if seen++; seen%ctxCheckInterval == 0 {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		counters.mapInputRecords.Add(1)
		return mapper.Map(k, v, out)
	})
	if err != nil {
		return nil, fmt.Errorf("mr: map task %d: %w", taskID, err)
	}
	if err := mapper.Cleanup(out); err != nil {
		return nil, fmt.Errorf("mr: map task %d cleanup: %w", taskID, err)
	}
	segs, err = buf.finish()
	if err != nil {
		return nil, fmt.Errorf("mr: map task %d spill/merge: %w", taskID, err)
	}
	return segs, nil
}

// removePrefix best-effort deletes every file under a name prefix —
// failed-attempt cleanup, where listing errors just mean the sweep is
// skipped.
func removePrefix(fs iokit.FS, prefix string) {
	files, err := fs.List()
	if err != nil {
		return
	}
	for _, f := range files {
		if strings.HasPrefix(f, prefix) {
			removeQuiet(fs, f)
		}
	}
}

// accountShuffle meters a reduce partition's incoming segments: wire
// bytes (post-codec) and framed record counts.
func accountShuffle(counters *Counters, fs iokit.FS, segs []segment) error {
	for _, s := range segs {
		size, err := fs.Size(s.file)
		if err != nil {
			return err
		}
		counters.shuffleBytes.Add(size)
		counters.reduceInRecords.Add(s.records)
	}
	return nil
}

// runReduceTask executes one reduce task under the barrier scheduler:
// meter the shuffle, fetch the partition's segments from every map task
// over the transport, merge them in key order, and invoke Reduce per
// key group. (The pipelined scheduler splits this into per-map fetch
// tasks plus a reduceMerge task; see pipelined.go.)
func runReduceTask(ctx context.Context, job *Job, fs iokit.FS, counters *Counters, transport Transport, partition int, segs []segment) ([]Record, error) {
	start := time.Now()
	defer func() { counters.reduceTaskNs.Add(time.Since(start).Nanoseconds()) }()

	if err := accountShuffle(counters, fs, segs); err != nil {
		return nil, err
	}

	// A non-local transport first copies each segment to a reducer-local
	// file through the real network path (Hadoop's fetch phase).
	if _, local := transport.(LocalTransport); !local {
		prefix := fmt.Sprintf("%s/r%04d/fetch", job.Workspace, partition)
		fetched, err := fetchSegments(ctx, fs, transport, job, counters, partition, prefix, segs)
		if err != nil {
			return nil, err
		}
		segs = fetched
	}

	return reduceMerge(ctx, job, fs, counters, partition, 0, segs)
}

// reduceMerge is the compute half of a reduce task: merge the
// partition's (already local) sorted segments and invoke Reduce once
// per key group. attempt scopes intermediate file names so scheduler
// retries never collide with a previous attempt's partial output.
func reduceMerge(ctx context.Context, job *Job, fs iokit.FS, counters *Counters, partition, attempt int, segs []segment) (output []Record, err error) {
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("mr: reduce task %d: %w", partition, err)
	}

	// A very wide shuffle is first merged down on "disk" so the final
	// streaming merge stays within the merge factor (Hadoop's
	// reduce-side merge). When retries are enabled the merge keeps its
	// inputs so a later attempt can redo the pass from intact files.
	var mergedName string
	defer func() {
		// A reduce attempt that fails after its pre-merge succeeded must
		// not orphan the merged file: the name is attempt-scoped, so a
		// retry rebuilds it from the kept inputs.
		if err != nil && mergedName != "" {
			removeQuiet(fs, mergedName)
		}
	}()
	if len(segs) > job.MergeFactor {
		name := fmt.Sprintf("%s/r%04d/merged", job.Workspace, partition)
		if attempt > 0 {
			name = fmt.Sprintf("%s.a%d", name, attempt)
		}
		merged, err := mergeSegments(job, fs, counters, name,
			partition, segs, false, partition, job.MaxTaskAttempts == 1)
		if err != nil {
			return nil, err
		}
		mergedName = name
		segs = []segment{merged}
	}

	streams := make([]recordStream, 0, len(segs))
	// A failed reduce must not hold its inputs open: close whatever
	// streams remain un-exhausted (EOF'd ones have closed themselves).
	defer func() {
		if err != nil {
			for _, st := range streams {
				closeRecordStream(st)
			}
		}
	}()
	for _, s := range segs {
		st, oerr := openSegment(job, fs, s)
		if oerr != nil {
			err = oerr
			return nil, err
		}
		streams = append(streams, st)
	}
	merged, err := newMergeIter(streams, job.KeyCompare)
	if err != nil {
		return nil, err
	}
	grouped := newGroupedIter(merged, job.GroupCompare)

	reducer := job.NewReducer()
	info := &TaskInfo{
		JobName:       job.Name,
		Workspace:     job.Workspace,
		TaskID:        partition,
		Partition:     partition,
		Attempt:       attempt,
		NumPartitions: job.NumReduceTasks,
		Partitioner:   job.Partitioner,
		KeyCompare:    job.KeyCompare,
		GroupCompare:  job.GroupCompare,
		Counters:      counters,
		FS:            fs,
		Tracer:        job.Tracer,
	}
	out := EmitterFunc(func(k, v []byte) error {
		counters.reduceOutRecords.Add(1)
		if !job.DiscardOutput {
			output = append(output, Record{Key: bytesx.Clone(k), Value: bytesx.Clone(v)})
		}
		return nil
	})
	if err := reducer.Setup(info, out); err != nil {
		return nil, fmt.Errorf("mr: reduce task %d setup: %w", partition, err)
	}
	var groups int
	for {
		if groups++; groups%ctxCheckInterval == 0 {
			if err := ctx.Err(); err != nil {
				return nil, fmt.Errorf("mr: reduce task %d: %w", partition, err)
			}
		}
		key, ok, err := grouped.nextGroup()
		if err != nil {
			return nil, fmt.Errorf("mr: reduce task %d merge: %w", partition, err)
		}
		if !ok {
			break
		}
		vi := grouped.groupValues(key)
		if err := reducer.Reduce(key, vi, out); err != nil {
			return nil, fmt.Errorf("mr: reduce task %d: %w", partition, err)
		}
		if err := vi.drain(); err != nil {
			return nil, fmt.Errorf("mr: reduce task %d drain: %w", partition, err)
		}
	}
	if err := reducer.Cleanup(out); err != nil {
		return nil, fmt.Errorf("mr: reduce task %d cleanup: %w", partition, err)
	}
	return output, nil
}

// fetchSegments copies remote segments to reducer-local files over the
// transport, returning local replacements. Local file names are derived
// from prefix, which callers scope per (partition, map task, attempt).
// Unless the job disables checksums, the byte stream is CRC-verified in
// flight (pass-through, so the local copy stays framed): a corrupted or
// truncated transfer fails the fetch with ErrIntegrity — a transient,
// retryable fault — instead of landing bad bytes for the merge to trip
// on. A failed fetch removes every local file the attempt created, so
// no partial attempt orphans files.
func fetchSegments(ctx context.Context, fs iokit.FS, transport Transport, job *Job, counters *Counters, partition int, prefix string, segs []segment) ([]segment, error) {
	local := make([]segment, len(segs))
	copyBuf := getCopyBuf(job)
	defer putCopyBuf(job, copyBuf)
	cleanup := func(fetched int, current string) {
		if current != "" {
			removeQuiet(fs, current)
		}
		for k := 0; k < fetched; k++ {
			removeQuiet(fs, local[k].file)
		}
	}
	for i, s := range segs {
		if err := ctx.Err(); err != nil {
			cleanup(i, "")
			return nil, fmt.Errorf("mr: reduce task %d fetch: %w", partition, err)
		}
		// The transport-level sub-span: one socket copy per segment,
		// nested (time-wise) inside the scheduler's fetch-task span.
		span := job.Tracer.Start(obs.KindFetch, "copy "+s.file,
			obs.Int("partition", int64(partition)))
		rc, size, err := transport.Fetch(ctx, fs, s.file)
		if err != nil {
			span.End(obs.Str("outcome", "failed"), obs.Str("err", err.Error()))
			cleanup(i, "")
			return nil, fmt.Errorf("mr: reduce task %d fetching %s: %w", partition, s.file, err)
		}
		name := fmt.Sprintf("%s%04d", prefix, i)
		f, err := fs.Create(name)
		if err != nil {
			rc.Close()
			span.End(obs.Str("outcome", "failed"), obs.Str("err", err.Error()))
			cleanup(i, name)
			return nil, err
		}
		var src io.Reader = rc
		if !job.DisableChecksums {
			src = NewIntegrityVerifier(rc)
		}
		n, err := io.CopyBuffer(f, src, copyBuf)
		if err == nil {
			countWireBytes(counters, rc, n)
		}
		rc.Close()
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err == nil && n != size {
			err = fmt.Errorf("mr: reduce task %d fetched %d bytes of %s, want %d: %w",
				partition, n, s.file, size, errShortFetch)
		}
		if err != nil {
			if errors.Is(err, ErrIntegrity) {
				counters.AddExtra(CounterFetchIntegrity, 1)
			}
			span.End(obs.Str("outcome", "failed"), obs.Str("err", err.Error()))
			cleanup(i, name)
			return nil, fmt.Errorf("mr: reduce task %d copying %s: %w", partition, s.file, err)
		}
		span.End(obs.Int("bytes", n))
		local[i] = segment{partition: partition, file: name, records: s.records, rawBytes: s.rawBytes}
	}
	return local, nil
}

// drainStreams is a helper for tests: it fully reads a record stream.
func drainStreams(s recordStream) (n int, err error) {
	for {
		_, _, err := s.next()
		if err == io.EOF {
			return n, nil
		}
		if err != nil {
			return n, err
		}
		n++
	}
}
