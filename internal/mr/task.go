package mr

import (
	"fmt"
	"io"
	"time"

	"repro/internal/bytesx"
	"repro/internal/iokit"
)

// runMapTask executes one map task: run the Mapper over the split,
// collect/sort/spill its output, and return the final per-partition
// segments. The task's single-threaded wall time is charged as map CPU.
func runMapTask(job *Job, fs iokit.FS, counters *Counters, taskID int, split Split) ([]segment, error) {
	start := time.Now()
	defer func() { counters.mapTaskNs.Add(time.Since(start).Nanoseconds()) }()

	buf := newMapBuffer(job, fs, counters, taskID)
	mapper := job.NewMapper()
	info := &TaskInfo{
		JobName:       job.Name,
		TaskID:        taskID,
		Partition:     -1,
		NumPartitions: job.NumReduceTasks,
		Partitioner:   job.Partitioner,
		KeyCompare:    job.KeyCompare,
		GroupCompare:  job.GroupCompare,
		Counters:      counters,
		FS:            fs,
	}
	out := EmitterFunc(func(k, v []byte) error {
		counters.mapOutputRecords.Add(1)
		counters.mapOutputBytes.Add(int64(bytesx.RecordLen(k, v)))
		p := job.Partitioner.Partition(k, job.NumReduceTasks)
		if p < 0 || p >= job.NumReduceTasks {
			return fmt.Errorf("mr: partitioner returned %d for %d partitions", p, job.NumReduceTasks)
		}
		return buf.add(p, k, v)
	})
	if err := mapper.Setup(info, out); err != nil {
		return nil, fmt.Errorf("mr: map task %d setup: %w", taskID, err)
	}
	err := split.Records(func(k, v []byte) error {
		counters.mapInputRecords.Add(1)
		return mapper.Map(k, v, out)
	})
	if err != nil {
		return nil, fmt.Errorf("mr: map task %d: %w", taskID, err)
	}
	if err := mapper.Cleanup(out); err != nil {
		return nil, fmt.Errorf("mr: map task %d cleanup: %w", taskID, err)
	}
	segs, err := buf.finish()
	if err != nil {
		return nil, fmt.Errorf("mr: map task %d spill/merge: %w", taskID, err)
	}
	return segs, nil
}

// runReduceTask executes one reduce task: fetch the partition's segments
// from every map task (the shuffle — every fetched byte is metered as
// transfer), merge them in key order, and invoke Reduce per key group.
func runReduceTask(job *Job, fs iokit.FS, counters *Counters, transport Transport, partition int, segs []segment) ([]Record, error) {
	start := time.Now()
	defer func() { counters.reduceTaskNs.Add(time.Since(start).Nanoseconds()) }()

	for _, s := range segs {
		size, err := fs.Size(s.file)
		if err != nil {
			return nil, err
		}
		counters.shuffleBytes.Add(size)
		counters.reduceInRecords.Add(s.records)
	}

	// A non-local transport first copies each segment to a reducer-local
	// file through the real network path (Hadoop's fetch phase).
	if _, local := transport.(LocalTransport); !local {
		fetched, err := fetchSegments(fs, counters, transport, job, partition, segs)
		if err != nil {
			return nil, err
		}
		segs = fetched
	}

	// A very wide shuffle is first merged down on "disk" so the final
	// streaming merge stays within the merge factor (Hadoop's
	// reduce-side merge).
	if len(segs) > job.MergeFactor {
		merged, err := mergeSegments(job, fs, counters,
			fmt.Sprintf("%s/r%04d/merged", job.Name, partition),
			partition, segs, false, partition)
		if err != nil {
			return nil, err
		}
		segs = []segment{merged}
	}

	streams := make([]recordStream, len(segs))
	for i, s := range segs {
		st, err := openSegment(job, fs, s)
		if err != nil {
			return nil, err
		}
		streams[i] = st
	}
	merged, err := newMergeIter(streams, job.KeyCompare)
	if err != nil {
		return nil, err
	}
	grouped := newGroupedIter(merged, job.GroupCompare)

	reducer := job.NewReducer()
	info := &TaskInfo{
		JobName:       job.Name,
		TaskID:        partition,
		Partition:     partition,
		NumPartitions: job.NumReduceTasks,
		Partitioner:   job.Partitioner,
		KeyCompare:    job.KeyCompare,
		GroupCompare:  job.GroupCompare,
		Counters:      counters,
		FS:            fs,
	}
	var output []Record
	out := EmitterFunc(func(k, v []byte) error {
		counters.reduceOutRecords.Add(1)
		if !job.DiscardOutput {
			output = append(output, Record{Key: bytesx.Clone(k), Value: bytesx.Clone(v)})
		}
		return nil
	})
	if err := reducer.Setup(info, out); err != nil {
		return nil, fmt.Errorf("mr: reduce task %d setup: %w", partition, err)
	}
	for {
		key, ok, err := grouped.nextGroup()
		if err != nil {
			return nil, fmt.Errorf("mr: reduce task %d merge: %w", partition, err)
		}
		if !ok {
			break
		}
		vi := grouped.groupValues(key)
		if err := reducer.Reduce(key, vi, out); err != nil {
			return nil, fmt.Errorf("mr: reduce task %d: %w", partition, err)
		}
		if err := vi.drain(); err != nil {
			return nil, fmt.Errorf("mr: reduce task %d drain: %w", partition, err)
		}
	}
	if err := reducer.Cleanup(out); err != nil {
		return nil, fmt.Errorf("mr: reduce task %d cleanup: %w", partition, err)
	}
	return output, nil
}

// fetchSegments copies remote segments to reducer-local files over the
// transport, returning local replacements.
func fetchSegments(fs iokit.FS, counters *Counters, transport Transport, job *Job, partition int, segs []segment) ([]segment, error) {
	local := make([]segment, len(segs))
	for i, s := range segs {
		rc, size, err := transport.Fetch(fs, s.file)
		if err != nil {
			return nil, fmt.Errorf("mr: reduce task %d fetching %s: %w", partition, s.file, err)
		}
		name := fmt.Sprintf("%s/r%04d/fetch%04d", job.Name, partition, i)
		f, err := fs.Create(name)
		if err != nil {
			rc.Close()
			return nil, err
		}
		n, err := io.Copy(f, rc)
		rc.Close()
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return nil, fmt.Errorf("mr: reduce task %d copying %s: %w", partition, s.file, err)
		}
		if n != size {
			return nil, fmt.Errorf("mr: reduce task %d fetched %d bytes of %s, want %d", partition, n, s.file, size)
		}
		local[i] = segment{partition: partition, file: name, records: s.records, rawBytes: s.rawBytes}
	}
	return local, nil
}

// drainStreams is a helper for tests: it fully reads a record stream.
func drainStreams(s recordStream) (n int, err error) {
	for {
		_, _, err := s.next()
		if err == io.EOF {
			return n, nil
		}
		if err != nil {
			return n, err
		}
		n++
	}
}
